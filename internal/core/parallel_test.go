package core

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
)

// TestDeriveStepNonDyadicBounds is the satellite regression test: bounds
// like t=0.3 have no power-of-two step that divides them, so the old
// derivation (d = 2^-m regardless of t and r) made AlgDiscretise fail
// with "t/d must be a positive integer". The rewritten derivation must
// produce a valid commensurable step instead.
func TestDeriveStepNonDyadicBounds(t *testing.T) {
	m := tinyModel(t) // max E = 3 → ceiling 1/24
	for _, tc := range []struct{ t, r float64 }{
		{0.3, 0.7},
		{0.3, 0.3},
		{0.1, 0.25},
		{1.0, 1.0},
		{2.5, 0.5},
		{0.7, 2.1},
	} {
		d, err := deriveStep(m, tc.t, tc.r)
		if err != nil {
			t.Errorf("t=%v r=%v: %v", tc.t, tc.r, err)
			continue
		}
		tq, rq := tc.t/d, tc.r/d
		if math.Abs(tq-math.Round(tq)) > 1e-9*(1+tq) || math.Round(tq) < 1 {
			t.Errorf("t=%v r=%v: d=%v does not divide t (t/d=%v)", tc.t, tc.r, d, tq)
		}
		if math.Abs(rq-math.Round(rq)) > 1e-9*(1+rq) || math.Round(rq) < 1 {
			t.Errorf("t=%v r=%v: d=%v does not divide r (r/d=%v)", tc.t, tc.r, d, rq)
		}
		if d > 1.0/24+1e-15 {
			t.Errorf("t=%v r=%v: d=%v exceeds stability ceiling", tc.t, tc.r, d)
		}
	}
}

// TestDeriveStepIncommensurable: an irrational ratio r/t must surface the
// explicit error rather than silently picking a near-miss grid.
func TestDeriveStepIncommensurable(t *testing.T) {
	m := tinyModel(t)
	_, err := deriveStep(m, 1.0, math.Sqrt2)
	if err == nil {
		t.Fatal("deriveStep(1, √2) succeeded; want an error")
	}
	if !strings.Contains(err.Error(), "DiscretiseStep") {
		t.Errorf("error %q should point at Options.DiscretiseStep", err)
	}
}

// TestDiscretiseNonDyadicEndToEnd drives the fixed derivation through the
// public checker API — this call errored before the fix.
func TestDiscretiseNonDyadicEndToEnd(t *testing.T) {
	opts := DefaultOptions()
	opts.P3 = AlgDiscretise
	c := New(tinyModel(t), opts)
	f := logic.MustParse("P>=0.0 [ ab U{t<=0.3, r<=0.7} c ]")
	if _, err := c.Check(f); err != nil {
		t.Fatalf("non-dyadic bounds t=0.3 r=0.7: %v", err)
	}
}

func TestMemoConcurrentAccess(t *testing.T) {
	m := tinyModel(t)
	memo := newMemo(0)
	phi := mrm.NewStateSetOf(3, 0, 1)
	psi := mrm.NewStateSetOf(3, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := memo.Reduction(m, phi, psi); err != nil {
					t.Errorf("Reduction: %v", err)
					return
				}
				if _, err := memo.Uniformised(m, m.UniformisationRate()); err != nil {
					t.Errorf("Uniformised: %v", err)
					return
				}
				if _, err := memo.Poisson(2.5+float64(i%4), 1e-9); err != nil {
					t.Errorf("Poisson: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMemoNilReceiver(t *testing.T) {
	var memo *memo
	m := tinyModel(t)
	if _, err := memo.Uniformised(m, m.UniformisationRate()); err != nil {
		t.Errorf("nil memo Uniformised: %v", err)
	}
	if _, err := memo.Poisson(3, 1e-9); err != nil {
		t.Errorf("nil memo Poisson: %v", err)
	}
	if _, err := memo.Reduction(m, mrm.NewStateSetOf(3, 0), mrm.NewStateSetOf(3, 2)); err != nil {
		t.Errorf("nil memo Reduction: %v", err)
	}
	// A zero Checker literal (no memo) must still evaluate formulas.
	c := &Checker{m: m, opts: DefaultOptions()}
	if _, err := c.Sat(logic.MustParse("P>=0.1 [ a U{t<=1, r<=1} c ]")); err != nil {
		t.Errorf("zero-literal checker: %v", err)
	}
}

// TestMemoReusedAcrossCornerEvaluations checks that rectangle-until (which
// evaluates up to four corners) gives the same result with and without a
// shared memo — i.e. memoisation changes cost, never values.
func TestMemoReusedAcrossCornerEvaluations(t *testing.T) {
	m := tinyModel(t)
	f := logic.MustParse("P=? [ a U{t in [0.1,0.8], r in [0.05,1.5]} c ]")
	cached := New(m, DefaultOptions())
	got, err := cached.Values(f)
	if err != nil {
		t.Fatal(err)
	}
	plain := &Checker{m: m, opts: cached.opts} // nil memo: uncached
	want, err := plain.Values(f)
	if err != nil {
		t.Fatal(err)
	}
	for s := range got {
		if got[s] != want[s] {
			t.Errorf("state %d: cached %g != uncached %g", s, got[s], want[s])
		}
	}
	if cached.memo.reductions.len() == 0 {
		t.Error("memo saw no reductions; cache is not wired in")
	}
	if cached.memo.uniformised.len() == 0 {
		t.Error("memo saw no uniformised matrices; cache is not wired in")
	}
}

func TestCheckerWorkersEquivalence(t *testing.T) {
	m := tinyModel(t)
	f := logic.MustParse("P=? [ ab U{t<=1, r<=2} c ]")
	for _, alg := range []Algorithm{AlgSericola, AlgErlang, AlgDiscretise} {
		opts := DefaultOptions()
		opts.P3 = alg
		opts.Workers = 1
		seq, err := New(m, opts).Values(f)
		if err != nil {
			t.Fatalf("%v sequential: %v", alg, err)
		}
		opts.Workers = 0
		par, err := New(m, opts).Values(f)
		if err != nil {
			t.Fatalf("%v parallel: %v", alg, err)
		}
		for s := range par {
			if math.Abs(par[s]-seq[s]) > 1e-12 {
				t.Errorf("%v: state %d: parallel %g vs sequential %g", alg, s, par[s], seq[s])
			}
		}
	}
}
