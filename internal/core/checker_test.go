package core

import (
	"errors"
	"math"
	"testing"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sim"
)

// tinyModel is a 3-state chain: 0 --2--> 1 --3--> 2 (absorbing), with
// rewards 1, 2, 0 and labels a@0, b@1, c@2, ab@{0,1}.
func tinyModel(t *testing.T) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 2).Rate(1, 2, 3)
	b.Reward(0, 1).Reward(1, 2).Reward(2, 0)
	b.Label(0, "a").Label(1, "b").Label(2, "c")
	b.Label(0, "ab").Label(1, "ab")
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestSatBoolean(t *testing.T) {
	c := New(tinyModel(t), DefaultOptions())
	tests := []struct {
		give string
		want []int
	}{
		{"true", []int{0, 1, 2}},
		{"false", nil},
		{"a", []int{0}},
		{"a | b", []int{0, 1}},
		{"ab & !a", []int{1}},
		{"a => b", []int{1, 2}},
		{"!(a | b | c)", nil},
		{"nosuchlabel", nil},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			sat, err := c.Sat(logic.MustParse(tt.give))
			if err != nil {
				t.Fatalf("Sat(%s): %v", tt.give, err)
			}
			want := mrm.NewStateSetOf(3, tt.want...)
			if !sat.Equal(want) {
				t.Errorf("Sat(%s) = %v, want %v", tt.give, sat, want)
			}
		})
	}
}

func TestNextClosedForm(t *testing.T) {
	c := New(tinyModel(t), DefaultOptions())
	// From state 0 (E=2, ρ=1): X{t<=1} b requires the jump before time 1:
	// 1 - e^{-2}.
	vals, err := c.Values(logic.MustParse("P=? [ X{t<=1} b ]"))
	if err != nil {
		t.Fatalf("Values: %v", err)
	}
	want := 1 - math.Exp(-2)
	if math.Abs(vals[0]-want) > 1e-12 {
		t.Errorf("state 0: got %v, want %v", vals[0], want)
	}
	if vals[2] != 0 {
		t.Errorf("absorbing state has no next: got %v", vals[2])
	}

	// Reward bound: from state 0, ρ=1, so r<=0.5 caps the jump time at 0.5.
	vals, err = c.Values(logic.MustParse("P=? [ X{t<=1, r<=0.5} b ]"))
	if err != nil {
		t.Fatalf("Values: %v", err)
	}
	want = 1 - math.Exp(-2*0.5)
	if math.Abs(vals[0]-want) > 1e-12 {
		t.Errorf("state 0 with reward bound: got %v, want %v", vals[0], want)
	}

	// General interval (future-work extension): T ∈ [0.5, 1].
	vals, err = c.Values(logic.MustParse("P=? [ X{t in [0.5,1]} b ]"))
	if err != nil {
		t.Fatalf("Values: %v", err)
	}
	want = math.Exp(-2*0.5) - math.Exp(-2*1)
	if math.Abs(vals[0]-want) > 1e-12 {
		t.Errorf("state 0 interval: got %v, want %v", vals[0], want)
	}
}

func TestUnboundedUntilLinearSystem(t *testing.T) {
	// Reduced Q3 model: unbounded until probability is exactly 1/2 by the
	// launch/ring rate symmetry.
	red, err := adhoc.Q3Reduced()
	if err != nil {
		t.Fatalf("Q3Reduced: %v", err)
	}
	c := New(red.Model, DefaultOptions())
	vals, err := c.Values(logic.MustParse("P=? [ F goal ]"))
	if err != nil {
		t.Fatalf("Values: %v", err)
	}
	for s := 0; s < 3; s++ { // the three transient states
		if math.Abs(vals[s]-0.5) > 1e-10 {
			t.Errorf("state %d: unbounded reach = %v, want 0.5 exactly", s, vals[s])
		}
	}
	if vals[red.Goal] != 1 || vals[red.Fail] != 0 {
		t.Errorf("goal/fail values = %v/%v, want 1/0", vals[red.Goal], vals[red.Fail])
	}
}

func TestQ1Q2Q3OnCaseStudy(t *testing.T) {
	m, err := adhoc.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	c := New(m, DefaultOptions())

	// Q2: P>0.5 [ F{t<=24} call_incoming ] — time-bounded only.
	q2 := logic.MustParse("P>0.5 [ F{t<=24} call_incoming ]")
	holds, err := c.Check(q2)
	if err != nil {
		t.Fatalf("Q2: %v", err)
	}
	vals, err := c.Values(logic.MustParse("P=? [ F{t<=24} call_incoming ]"))
	if err != nil {
		t.Fatalf("Q2 values: %v", err)
	}
	t.Logf("Q2 probability from initial state: %0.8f (holds: %v)", vals[0], holds)
	if !holds {
		t.Errorf("Q2 should hold: a ring arrives within 24h with prob %0.4f", vals[0])
	}
	// Cross-check by simulation.
	s := sim.New(m, 3)
	est, err := s.UntilProb(0, mrm.NewStateSet(m.N()).Complement(), m.Label("call_incoming"), 24, math.Inf(1), 100_000)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if math.Abs(est.Value-vals[0]) > est.HalfWidth+1e-3 {
		t.Errorf("Q2 simulation %v vs numeric %0.6f", est, vals[0])
	}

	// Q1: P>0.5 [ F{r<=600} call_incoming ] — reward-bounded via duality.
	q1vals, err := c.Values(logic.MustParse("P=? [ F{r<=600} call_incoming ]"))
	if err != nil {
		t.Fatalf("Q1: %v", err)
	}
	t.Logf("Q1 probability from initial state: %0.8f", q1vals[0])
	estR, err := s.UntilProb(0, mrm.NewStateSet(m.N()).Complement(), m.Label("call_incoming"), math.Inf(1), 600, 100_000)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if math.Abs(estR.Value-q1vals[0]) > estR.HalfWidth+1e-3 {
		t.Errorf("Q1 simulation %v vs numeric %0.6f", estR, q1vals[0])
	}

	// Q3 with the three procedures through the full checker pipeline.
	q3query := logic.MustParse("P=? [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]")
	for _, alg := range []Algorithm{AlgSericola, AlgErlang, AlgDiscretise} {
		opts := DefaultOptions()
		opts.P3 = alg
		opts.ErlangK = 1024
		opts.DiscretiseStep = 1.0 / 64
		cc := New(m, opts)
		vals, err := cc.Values(q3query)
		if err != nil {
			t.Fatalf("Q3 with %v: %v", alg, err)
		}
		t.Logf("Q3 via %v: %0.8f", alg, vals[0])
		tol := 2e-4
		if alg == AlgSericola {
			tol = 1e-7
		}
		if math.Abs(vals[0]-adhoc.Q3TextValue) > tol {
			t.Errorf("Q3 via %v = %0.8f, want %0.8f ± %g", alg, vals[0], adhoc.Q3TextValue, tol)
		}
		// The decision: P>0.5 does NOT hold (the paper's point: the value
		// is just below one half).
		q3 := logic.MustParse("P>0.5 [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]")
		holds, err := cc.Check(q3)
		if err != nil {
			t.Fatalf("Q3 check: %v", err)
		}
		if holds {
			t.Errorf("Q3 should not hold at bound 0.5 (value %0.6f)", vals[0])
		}
	}
}

func TestTimeIntervalUntil(t *testing.T) {
	m := tinyModel(t)
	c := New(m, DefaultOptions())
	// From state 0: ab U{t in [t1,t2]} c. The absorption time into c is
	// T0+T1 with T0~Exp(2), T1~Exp(3) (hypoexponential). A path absorbed
	// strictly before t1 does NOT satisfy the formula: at instants between
	// absorption and t1 it resides in c ∉ Sat(ab), violating the prefix
	// condition. Hence Pr = Pr{T0+T1 ∈ [t1, t2]} = CDF(t2) − CDF(t1).
	t1, t2 := 0.5, 2.0
	vals, err := c.Values(logic.MustParse("P=? [ ab U{t in [0.5,2]} c ]"))
	if err != nil {
		t.Fatalf("Values: %v", err)
	}
	cdf := func(x float64) float64 {
		return 1 - 3*math.Exp(-2*x) + 2*math.Exp(-3*x)
	}
	want := cdf(t2) - cdf(t1)
	if math.Abs(vals[0]-want) > 1e-9 {
		t.Errorf("interval until from 0: got %v, want %v", vals[0], want)
	}
	// Simulation cross-check: with absorbing c the interval probability is
	// the difference of two prefix-until estimates.
	s := sim.New(m, 11)
	estHi, err := s.UntilProb(0, m.Label("ab"), m.Label("c"), t2, math.Inf(1), 100_000)
	if err != nil {
		t.Fatalf("sim t2: %v", err)
	}
	estLo, err := s.UntilProb(0, m.Label("ab"), m.Label("c"), t1, math.Inf(1), 100_000)
	if err != nil {
		t.Fatalf("sim t1: %v", err)
	}
	got := estHi.Value - estLo.Value
	hw := estHi.HalfWidth + estLo.HalfWidth
	if math.Abs(got-want) > hw+1e-3 {
		t.Errorf("simulation %v±%v vs analytic %v", got, hw, want)
	}
}

func TestUnsupportedFragments(t *testing.T) {
	c := New(tinyModel(t), DefaultOptions())
	for _, give := range []string{
		// Doubly-bounded general-interval until needs finite upper bounds.
		"P>0.1 [ a U{t>=1, r<=2} b ]",
		// First-passage reduction requires Sat(Φ)∩Sat(Ψ)=∅; "ab" overlaps b.
		"P>0.1 [ ab U{t in [1,2], r<=2} b ]",
	} {
		_, err := c.Sat(logic.MustParse(give))
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("Sat(%s): err = %v, want ErrUnsupported", give, err)
		}
	}
}

// TestGeneralIntervalUntil exercises the paper's §6 future-work extension:
// time and reward intervals that do not start at 0, validated against the
// exact-semantics Monte-Carlo estimator.
func TestGeneralIntervalUntil(t *testing.T) {
	// A richer model: 0 and 1 cycle (both Φ), absorbing goal 2 and trap 3.
	b := mrm.NewBuilder(4)
	b.Rate(0, 1, 2).Rate(1, 0, 1).Rate(0, 2, 0.7).Rate(1, 2, 0.4).Rate(1, 3, 0.3)
	b.Reward(0, 1).Reward(1, 3)
	b.Label(0, "phi").Label(1, "phi").Label(2, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultOptions())
	s := sim.New(m, 20260706)
	phi, psi := m.Label("phi"), m.Label("psi")

	cases := []struct {
		name           string
		formula        string
		t1, t2, r1, r2 float64
	}{
		{"time-and-reward rectangle", "P=? [ phi U{t in [0.5,3], r in [1,4]} psi ]", 0.5, 3, 1, 4},
		{"time interval, reward bound", "P=? [ phi U{t in [0.5,3], r<=4} psi ]", 0.5, 3, 0, 4},
		{"time bound, reward interval", "P=? [ phi U{t<=3, r in [1,4]} psi ]", 0, 3, 1, 4},
		{"reward interval only (duality)", "P=? [ phi U{r in [1,4]} psi ]", 0, math.Inf(1), 1, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vals, err := c.Values(logic.MustParse(tc.formula))
			if err != nil {
				t.Fatalf("Values: %v", err)
			}
			est, err := s.UntilProbInterval(0, phi, psi,
				sim.Window{Lo: tc.t1, Hi: tc.t2}, sim.Window{Lo: tc.r1, Hi: tc.r2}, 200_000)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			t.Logf("%s: numeric %.6f, simulated %v", tc.formula, vals[0], est)
			if math.Abs(vals[0]-est.Value) > est.HalfWidth+2e-3 {
				t.Errorf("numeric %.6f incompatible with simulation %v", vals[0], est)
			}
		})
	}
}

// TestRectangleConsistency: the rectangle method at degenerate lower
// bounds must coincide with the plain doubly-bounded until.
func TestRectangleConsistency(t *testing.T) {
	b := mrm.NewBuilder(4)
	b.Rate(0, 1, 2).Rate(1, 0, 1).Rate(0, 2, 0.7).Rate(1, 2, 0.4).Rate(1, 3, 0.3)
	b.Reward(0, 1).Reward(1, 3)
	b.Label(0, "phi").Label(1, "phi").Label(2, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultOptions())
	plain, err := c.Values(logic.MustParse("P=? [ phi U{t<=3, r<=4} psi ]"))
	if err != nil {
		t.Fatal(err)
	}
	viaRect, err := c.Values(logic.MustParse("P=? [ phi U{t in [0,3], r in [0,4]} psi ]"))
	if err != nil {
		t.Fatal(err)
	}
	for s := range plain {
		if math.Abs(plain[s]-viaRect[s]) > 1e-9 {
			t.Errorf("state %d: plain %v vs rectangle %v", s, plain[s], viaRect[s])
		}
	}
}

func TestNestedFormula(t *testing.T) {
	// Nesting state and path formulas (paper §2.4 example shape):
	// P>0 [ F{t<=5} (P>0.9 [ X c ]) ] — states from which, within 5 time
	// units, a state is reachable whose next transition surely hits c.
	m := tinyModel(t)
	c := New(m, DefaultOptions())
	// Sat(P>0.9 [X c]) = {1} (state 1 jumps to c with probability 1).
	inner, err := c.Sat(logic.MustParse("P>0.9 [ X c ]"))
	if err != nil {
		t.Fatalf("inner: %v", err)
	}
	if !inner.Equal(mrm.NewStateSetOf(3, 1)) {
		t.Fatalf("Sat(P>0.9[X c]) = %v, want {1}", inner)
	}
	sat, err := c.Sat(logic.MustParse("P>0 [ F{t<=5} (P>0.9 [ X c ]) ]"))
	if err != nil {
		t.Fatalf("outer: %v", err)
	}
	if !sat.Contains(0) || !sat.Contains(1) || sat.Contains(2) {
		t.Errorf("nested Sat = %v, want {0,1}", sat)
	}
}

func TestSteadyOperator(t *testing.T) {
	// Two-state repair model: up --1--> down --10--> up.
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1).Rate(1, 0, 10)
	b.Label(0, "up").Label(1, "down")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	c := New(m, DefaultOptions())
	vals, err := c.Values(logic.MustParse("S=? [ up ]"))
	if err != nil {
		t.Fatalf("S=?: %v", err)
	}
	want := 10.0 / 11.0
	for s, v := range vals {
		if math.Abs(v-want) > 1e-10 {
			t.Errorf("steady from %d: %v, want %v", s, v, want)
		}
	}
	sat, err := c.Sat(logic.MustParse("S>=0.9 [ up ]"))
	if err != nil {
		t.Fatalf("S>=0.9: %v", err)
	}
	if sat.Len() != 2 {
		t.Errorf("S>=0.9[up] should hold in both states, got %v", sat)
	}
}
