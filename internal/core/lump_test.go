package core

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/cluster"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/obs"
)

// lumpTestModel is a small left/right-symmetric workstation cluster with
// rates hot enough that every probability in the crosscheck is far from 0
// and 1: the automatic pre-pass merges the mirror-image states whenever
// the formula's atoms cannot tell left from right.
func lumpTestModel(t *testing.T) *mrm.MRM {
	t.Helper()
	m, err := cluster.Params{N: 2, WorkFail: 0.5, WorkRepair: 1.0, BackFail: 0.2, BackRepair: 2.0}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSatLumpCrosscheck is the Sat-level acceptance test of the automatic
// lumping pre-pass: for each formula class (P1 transient, steady-state,
// and the reward-bounded P3 class under all three procedures), verdict
// sets and per-state probabilities must agree between a lump-off and a
// lump-on checker to 1e-12.
func TestSatLumpCrosscheck(t *testing.T) {
	m := lumpTestModel(t)
	cases := []struct {
		name    string
		bounded string
		query   string
		algs    []Algorithm
	}{
		{"P1 until", "P>=0.2 [ !down U{t<=2} down ]", "P=? [ !down U{t<=2} down ]", nil},
		{"P1 eventually", "P<0.99 [ F{t<=1} degraded ]", "P=? [ F{t<=1} degraded ]", nil},
		{"steady", "S>=0.3 [ qos ]", "S=? [ qos ]", nil},
		{"P3 rectangle", "P>0.05 [ qos U{t<=2, r<=3} down ]", "P=? [ qos U{t<=2, r<=3} down ]",
			[]Algorithm{AlgSericola, AlgErlang, AlgDiscretise}},
	}
	for _, tc := range cases {
		algs := tc.algs
		if algs == nil {
			algs = []Algorithm{AlgSericola}
		}
		for _, alg := range algs {
			t.Run(tc.name, func(t *testing.T) {
				offOpts := DefaultOptions()
				offOpts.Lump = LumpOff
				offOpts.P3 = alg
				offOpts.ErlangK = 64
				off := New(m, offOpts)

				onOpts := offOpts
				onOpts.Lump = LumpOn
				onOpts.Obs = obs.New()
				on := New(m, onOpts)

				bounded := logic.MustParse(tc.bounded)
				query := logic.MustParse(tc.query)

				satOff, err := off.Sat(bounded)
				if err != nil {
					t.Fatal(err)
				}
				satOn, err := on.Sat(bounded)
				if err != nil {
					t.Fatal(err)
				}
				for s := 0; s < m.N(); s++ {
					if satOff.Contains(s) != satOn.Contains(s) {
						t.Errorf("state %d: lump-off sat=%v, lump-on sat=%v", s, satOff.Contains(s), satOn.Contains(s))
					}
				}

				holdsOff, err := off.Check(bounded)
				if err != nil {
					t.Fatal(err)
				}
				holdsOn, err := on.Check(bounded)
				if err != nil {
					t.Fatal(err)
				}
				if holdsOff != holdsOn {
					t.Errorf("Check: lump-off %v, lump-on %v", holdsOff, holdsOn)
				}

				valsOff, err := off.Values(query)
				if err != nil {
					t.Fatal(err)
				}
				valsOn, err := on.Values(query)
				if err != nil {
					t.Fatal(err)
				}
				for s := range valsOff {
					if d := math.Abs(valsOff[s] - valsOn[s]); d > 1e-12 {
						t.Errorf("state %d: |%.15g - %.15g| = %.3g > 1e-12", s, valsOff[s], valsOn[s], d)
					}
				}

				// The pre-pass must have really engaged: fewer blocks than
				// states for these left/right-blind atom sets.
				rep := on.NumericsReport()
				if blocks, states := rep.Gauges["lump.blocks"], rep.Gauges["lump.states"]; !(blocks > 0 && blocks < states) {
					t.Errorf("quotient did not engage: blocks=%g states=%g", blocks, states)
				}
			})
		}
	}
}

// TestSatLumpIdentityQuotient uses a formula whose atoms name every place,
// forcing the identity partition: the pre-pass must decline (recording
// lump.trivial) and the checker must fall back to the unlumped model with
// identical results.
func TestSatLumpIdentityQuotient(t *testing.T) {
	m := lumpTestModel(t)
	// left_up/left_down (and the right/backbone pairs) take three token
	// patterns each across N=2, so these atoms split every state apart.
	f := logic.MustParse("P>=0.0 [ (left_up | left_down) U{t<=1} (right_up & right_down & backbone_up) ]")
	q := logic.MustParse("P=? [ (left_up | left_down) U{t<=1} (right_up & right_down & backbone_up) ]")

	offOpts := DefaultOptions()
	offOpts.Lump = LumpOff
	off := New(m, offOpts)
	onOpts := DefaultOptions()
	onOpts.Lump = LumpOn
	onOpts.Obs = obs.New()
	on := New(m, onOpts)

	satOff, err := off.Sat(f)
	if err != nil {
		t.Fatal(err)
	}
	satOn, err := on.Sat(f)
	if err != nil {
		t.Fatal(err)
	}
	if satOff.Len() != satOn.Len() {
		t.Errorf("sat sizes differ: %d vs %d", satOff.Len(), satOn.Len())
	}
	valsOff, err := off.Values(q)
	if err != nil {
		t.Fatal(err)
	}
	valsOn, err := on.Values(q)
	if err != nil {
		t.Fatal(err)
	}
	for s := range valsOff {
		if d := math.Abs(valsOff[s] - valsOn[s]); d > 1e-12 {
			t.Errorf("state %d differs by %.3g", s, d)
		}
	}
	rep := on.NumericsReport()
	if rep.Counters["lump.trivial"] == 0 {
		t.Errorf("expected the identity quotient to be declined as trivial; counters: %v", rep.Counters)
	}
}

// TestLumpPrePassMemoised checks that repeated formulas over the same atom
// set build the quotient once: the second Sat must hit the lump memo.
func TestLumpPrePassMemoised(t *testing.T) {
	m := lumpTestModel(t)
	opts := DefaultOptions()
	opts.Obs = obs.New()
	c := New(m, opts)
	for i := 0; i < 3; i++ {
		if _, err := c.Sat(logic.MustParse("P>=0.2 [ !down U{t<=2} down ]")); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.NumericsReport()
	if span, ok := rep.Spans["core.lump"]; !ok || span.Count != 1 {
		t.Errorf("expected exactly one quotient build, spans: %v", rep.Spans)
	}
}
