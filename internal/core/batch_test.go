package core

import (
	"math"
	"strings"
	"testing"

	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/obs"
)

// rectModel is the four-state cycle used by the rectangle tests: 0 and 1
// cycle (both Φ), absorbing goal 2 and trap 3.
func rectModel(t *testing.T) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(4)
	b.Rate(0, 1, 2).Rate(1, 0, 1).Rate(0, 2, 0.7).Rate(1, 2, 0.4).Rate(1, 3, 0.3)
	b.Reward(0, 1).Reward(1, 3)
	b.Label(0, "phi").Label(1, "phi").Label(2, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestUntilTimeRewardBatchBitwiseEqualsSingle pins the corner-batching
// contract at the checker level: a batch sharing one time bound must
// return, per reward bound, exactly the vector an unbatched call returns —
// bitwise, across the worker grid and each P3 algorithm.
func TestUntilTimeRewardBatchBitwiseEqualsSingle(t *testing.T) {
	m := rectModel(t)
	phi, psi := m.Label("phi"), m.Label("psi")
	rs := []float64{4, 1, 7.5}
	for _, alg := range []Algorithm{AlgSericola, AlgErlang, AlgDiscretise} {
		for _, workers := range []int{1, 2, 4, 8} {
			opts := DefaultOptions()
			opts.P3 = alg
			opts.Workers = workers
			c := New(m, opts)
			batch, err := c.untilTimeRewardBatch(phi, psi, 3, rs)
			if err != nil {
				t.Fatalf("%v workers=%d: batch: %v", alg, workers, err)
			}
			// A fresh checker per bound so the single path cannot lean on
			// memo state the batch populated.
			for ri, r := range rs {
				single, err := New(m, opts).untilTimeReward(phi, psi, 3, r)
				if err != nil {
					t.Fatalf("%v workers=%d r=%v: single: %v", alg, workers, r, err)
				}
				for s := range single {
					if math.Float64bits(batch[ri][s]) != math.Float64bits(single[s]) {
						t.Fatalf("%v workers=%d r=%v state %d: batch %g vs single %g — must be bitwise equal",
							alg, workers, r, s, batch[ri][s], single[s])
					}
				}
			}
		}
	}
}

// TestClampRectangleResidue pins the ε-scaled residue policy that replaced
// the hard-coded −1e-10 cutoff: residues within −nTerms·ε are legitimate
// cancellation noise (clamped to zero, largest magnitude charged on the
// ledger's indicative side); residues beyond the band are an error, not a
// silent zero.
func TestClampRectangleResidue(t *testing.T) {
	opts := DefaultOptions() // Epsilon = 1e-9
	opts.Obs = obs.New()
	c := New(rectModel(t), opts)

	// Within the band: nTerms = 4 corners → bound 4e-9.
	out := []float64{0.25, -3.9e-9, 0, -1e-12}
	if err := c.clampRectangleResidue(out, 4); err != nil {
		t.Fatalf("in-band residue must clamp, not error: %v", err)
	}
	if out[1] != 0 || out[3] != 0 {
		t.Errorf("in-band residues not clamped to zero: %v", out)
	}
	if out[0] != 0.25 {
		t.Errorf("non-negative entry disturbed: %v", out[0])
	}
	rep := c.NumericsReport()
	var charged bool
	for _, ch := range rep.Indicative {
		if ch.Component == "core" && ch.Term == "rectangle-residue" {
			charged = true
			if ch.Amount != 3.9e-9 {
				t.Errorf("charged %g, want the largest clamped magnitude 3.9e-9", ch.Amount)
			}
		}
	}
	if !charged {
		t.Errorf("clamped residue not on the indicative ledger: %+v", rep.Indicative)
	}

	// Beyond the band: an error naming the bound, not a silent clamp. The
	// old cutoff would have zeroed −5e-9 silently; with two corners the
	// band is 2e-9 and −5e-9 is inconsistent.
	bad := []float64{0.1, -5e-9}
	err := c.clampRectangleResidue(bad, 2)
	if err == nil {
		t.Fatal("out-of-band residue must error")
	}
	if !strings.Contains(err.Error(), "ε-scaled residue bound") {
		t.Errorf("error should name the ε-scaled bound: %v", err)
	}
	if bad[1] != -5e-9 {
		t.Errorf("erroring clamp must not rewrite the vector: %v", bad)
	}

	// The same magnitude is fine when four corners contributed.
	ok := []float64{0.1, -5e-9}
	if err := c.clampRectangleResidue(ok, 6); err != nil {
		t.Fatalf("residue within a wider band must clamp: %v", err)
	}
}

// TestRectangleBatchesCorners asserts the rectangle evaluation reaches its
// four corners through two batch calls (one per distinct time bound): the
// reduction memo sees exactly one miss, and the recorder's ledger stays
// within budget with the rectangle-residue term present only on the
// indicative side.
func TestRectangleBatchesCorners(t *testing.T) {
	opts := DefaultOptions()
	opts.Obs = obs.New()
	c := New(rectModel(t), opts)
	vals, err := c.Values(logic.MustParse("P=? [ phi U{t in [0.5,3], r in [1,4]} psi ]"))
	if err != nil {
		t.Fatal(err)
	}
	for s, v := range vals {
		if v < 0 || v > 1 {
			t.Errorf("state %d: probability %v outside [0,1]", s, v)
		}
	}
	rep := c.NumericsReport()
	if !rep.BudgetOK {
		t.Errorf("rectangle run must stay within budget:\n%s", rep.Format())
	}
	// The second time bound's batch must reuse the first's reduction and
	// uniformised matrix — the memo records at least those two hits. (The
	// miss count aggregates all three memo tables, so it is not pinned.)
	if hits := rep.Gauges["memo.hits"]; hits < 2 {
		t.Errorf("corner batches must share the reduction and uniformised matrix: memo.hits = %v, want >= 2", hits)
	}
	for _, ch := range rep.Budget {
		if ch.Component == "core" {
			t.Errorf("rectangle residue must be indicative, found bounded charge %+v", ch)
		}
	}
}
