package core

import (
	"errors"
	"math"
	"testing"

	"github.com/performability/csrl/internal/duality"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/steady"
)

func TestValuesOnBoundedAndBooleanFormulas(t *testing.T) {
	c := New(tinyModel(t), DefaultOptions())
	// A bounded P-formula still has an underlying value (the bound is
	// simply not applied).
	bounded, err := c.Values(logic.MustParse("P>0.5 [ F b ]"))
	if err != nil {
		t.Fatalf("Values on bounded formula: %v", err)
	}
	query, err := c.Values(logic.MustParse("P=? [ F b ]"))
	if err != nil {
		t.Fatalf("Values on query: %v", err)
	}
	for s := range query {
		if bounded[s] != query[s] {
			t.Errorf("state %d: bounded %v vs query %v", s, bounded[s], query[s])
		}
	}
	// Boolean formulas have no numeric value.
	if _, err := c.Values(logic.MustParse("a & b")); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Values on boolean formula: %v", err)
	}
}

func TestSatRejectsQueryFormula(t *testing.T) {
	c := New(tinyModel(t), DefaultOptions())
	if _, err := c.Sat(logic.MustParse("P=? [ F b ]")); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Sat on query: %v", err)
	}
	if _, err := c.Sat(logic.MustParse("S=? [ a ]")); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Sat on steady query: %v", err)
	}
}

func TestNextRewardLowerBoundOnZeroRewardState(t *testing.T) {
	// State 2 of tinyModel is absorbing; build a variant where a
	// zero-reward state has a transition: a positive reward lower bound can
	// never be met there.
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 3)
	b.Label(1, "b")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultOptions())
	vals, err := c.Values(logic.MustParse("P=? [ X{r in [1,2]} b ]"))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 {
		t.Errorf("zero-reward state with positive reward lower bound: %v, want 0", vals[0])
	}
	// Without the lower bound the constraint is vacuous.
	vals, err = c.Values(logic.MustParse("P=? [ X{r<=2} b ]"))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 1 {
		t.Errorf("vacuous reward bound: %v, want 1", vals[0])
	}
}

func TestP2ErrorOnZeroRewardTransient(t *testing.T) {
	// Reward-bounded until needs the duality transform, which is undefined
	// for zero-reward non-absorbing states; the error must surface.
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1) // reward 0 with a transition
	b.Label(1, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultOptions())
	if _, err := c.Values(logic.MustParse("P=? [ F{r<=1} goal ]")); !errors.Is(err, duality.ErrZeroReward) {
		t.Errorf("want ErrZeroReward, got %v", err)
	}
}

func TestUnboundedUntilMatchesReachability(t *testing.T) {
	// With Φ = true, the unbounded until is plain reachability; compare
	// the checker's linear system against the steady package's
	// independently written solver on the adhoc-like reduced chain.
	b := mrm.NewBuilder(5)
	b.Rate(0, 1, 6).Rate(0, 3, 0.75).Rate(0, 4, 0.75).Rate(0, 2, 12)
	b.Rate(1, 0, 15).Rate(1, 3, 0.75).Rate(1, 4, 0.75)
	b.Rate(2, 0, 3.75)
	b.Label(3, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultOptions())
	vals, err := c.Values(logic.MustParse("P=? [ F goal ]"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := steady.ReachProbability(m, m.Label("goal"))
	if err != nil {
		t.Fatal(err)
	}
	for s := range ref {
		if math.Abs(vals[s]-ref[s]) > 1e-9 {
			t.Errorf("state %d: checker %v vs steady %v", s, vals[s], ref[s])
		}
	}
}

func TestCheckRespectsInitialDistribution(t *testing.T) {
	// A formula that holds in one initial state but not the other: with a
	// split initial distribution, Check must report false.
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	b.Label(1, "b")
	b.InitialProb(0, 0.5).InitialProb(1, 0.5)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultOptions())
	holds, err := c.Check(logic.MustParse("b"))
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("formula b should not hold for a distribution with mass on state 0")
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgSericola.String() != "occupation-time" ||
		AlgErlang.String() != "pseudo-erlang" ||
		AlgDiscretise.String() != "discretisation" {
		t.Error("algorithm names changed; Table benchmarks key on them")
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm must still render")
	}
}

func TestUntilTimeLowerBoundOnly(t *testing.T) {
	// Φ U{t>=t1} Ψ: stay in Φ until t1, then unbounded until. On a chain
	// with absorbing Ψ and everything in Φ this equals Pr{still possible
	// at t1} → here the path is always in Φ∪Ψ, so the value is the plain
	// unbounded until for any t1... unless the trap is hit first.
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 1).Rate(0, 2, 1) // goal vs trap race
	b.Label(0, "phi").Label(1, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultOptions())
	vals, err := c.Values(logic.MustParse("P=? [ phi U{t>=1} psi ]"))
	if err != nil {
		t.Fatal(err)
	}
	// Satisfied iff the first jump happens after t1 AND goes to psi:
	// Pr = e^{-2·1} · 1/2.
	want := math.Exp(-2) / 2
	if math.Abs(vals[0]-want) > 1e-9 {
		t.Errorf("got %v, want %v", vals[0], want)
	}
}
