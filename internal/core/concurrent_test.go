package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/performability/csrl/internal/cluster"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/obs"
)

// concOp is one operation of the concurrency workload: it runs a formula
// through one of the checker entry points and folds the outcome into a
// comparable string so sequential and concurrent runs can be diffed
// bitwise (%x prints the exact float bits via the hex float verb).
type concOp struct {
	name    string
	formula string
	run     func(c *Checker, f logic.StateFormula) (string, error)
	// charges reports whether the op is expected to put provable error
	// terms on its request ledger (numerical procedures do; pure set
	// algebra must not).
	charges bool
}

func concOps() []concOp {
	values := func(c *Checker, f logic.StateFormula) (string, error) {
		vals, err := c.Values(f)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%x", vals), nil
	}
	sat := func(c *Checker, f logic.StateFormula) (string, error) {
		set, err := c.Sat(f)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%q", set.Key()), nil
	}
	check := func(c *Checker, f logic.StateFormula) (string, error) {
		holds, err := c.Check(f)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%v", holds), nil
	}
	return []concOp{
		{"values/p3", "P=? [ !down U{t<=10, r<=5} down ]", values, true},
		{"values/p1", "P=? [ !down U{t<=10} down ]", values, true},
		{"check/truncated", "P<=0.5 [ !down U{t<=10} down ]", check, true},
		{"sat/p3", "P<=0.021 [ !down U{t<=24, r<=12} down ]", sat, true},
		{"sat/boolean", "pristine & !down", sat, false},
		{"check/boolean", "qos | degraded | !degraded", check, false},
		// The steady-state solver converges to tolerance rather than
		// truncating mass, so it puts nothing on the provable ledger.
		{"values/steady", "S>=0.9 [ pristine ]", values, false},
	}
}

// TestCheckerConcurrentHammer is the service-readiness race test: N
// goroutines hammer ONE shared Checker with a mix of Sat, Check and Values
// calls — lumping pre-pass on, truncation on — each call under its own
// per-request recorder. It asserts (run it with -race):
//
//   - every concurrent result is bitwise-identical to the sequential
//     baseline computed on an identically configured private checker;
//   - every request's ledger proves its own Σ charges ≤ ε;
//   - ledgers are disjoint per request: an op with no numerical work sees
//     an EMPTY budget even while neighbours charge theirs, and every
//     numerical op's budget total equals the baseline total for that op
//     alone (a shared/merged ledger would accumulate across requests).
func TestCheckerConcurrentHammer(t *testing.T) {
	m, err := cluster.Params{N: 3, WorkFail: 0.1, WorkRepair: 1.5, BackFail: 0.05, BackRepair: 2.0}.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Epsilon = 1e-8
	opts.Truncate = 1e-12
	// Lump stays at the default (on).

	ops := concOps()
	formulas := make([]logic.StateFormula, len(ops))
	for i, op := range ops {
		formulas[i] = logic.MustParse(op.formula)
	}

	// Sequential baseline on a private checker over the same model value.
	baseline := make([]string, len(ops))
	baseBudget := make([]float64, len(ops))
	seq := New(m, opts)
	for i, op := range ops {
		rec := obs.New()
		got, err := seq.WithRecorder(rec).run(op, formulas[i])
		if err != nil {
			t.Fatalf("sequential %s: %v", op.name, err)
		}
		baseline[i] = got
		rep := rec.Report(opts.Epsilon)
		if !rep.BudgetOK {
			t.Fatalf("sequential %s: budget %g exceeds epsilon %g", op.name, rep.BudgetTotal, opts.Epsilon)
		}
		if op.charges != (len(rep.Budget) > 0) {
			t.Fatalf("sequential %s: charges=%v but ledger has %d rows", op.name, op.charges, len(rep.Budget))
		}
		baseBudget[i] = rep.BudgetTotal
	}

	const (
		goroutines = 8
		rounds     = 4
	)
	shared := New(m, opts)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*rounds*len(ops))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i := range ops {
					// Rotate the starting op per goroutine so distinct ops
					// genuinely overlap in time.
					i := (i + g) % len(ops)
					op := ops[i]
					rec := obs.New()
					got, err := shared.WithRecorder(rec).run(op, formulas[i])
					if err != nil {
						errCh <- fmt.Errorf("g%d %s: %v", g, op.name, err)
						return
					}
					if got != baseline[i] {
						errCh <- fmt.Errorf("g%d %s: concurrent result diverged from sequential baseline", g, op.name)
						return
					}
					rep := rec.Report(opts.Epsilon)
					if !rep.BudgetOK {
						errCh <- fmt.Errorf("g%d %s: per-request budget %g exceeds epsilon", g, op.name, rep.BudgetTotal)
						return
					}
					if !op.charges && len(rep.Budget) > 0 {
						errCh <- fmt.Errorf("g%d %s: boolean op inherited %d foreign charges — ledgers are not disjoint", g, op.name, len(rep.Budget))
						return
					}
					if rep.BudgetTotal != baseBudget[i] {
						errCh <- fmt.Errorf("g%d %s: per-request budget %g != sequential %g — ledger merged across requests", g, op.name, rep.BudgetTotal, baseBudget[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := shared.MemoStats()
	if st.Hits == 0 {
		t.Error("shared checker saw no memo hits across the hammer — cross-request reuse is not happening")
	}
}

// run executes the op through a checker view.
func (c *Checker) run(op concOp, f logic.StateFormula) (string, error) {
	return op.run(c, f)
}

// TestUntilProbBatchMatchesSingles pins the admission-layer contract: a
// batch over several reward bounds is bitwise-identical, column by column,
// to the individual PathProb evaluations it coalesces.
func TestUntilProbBatchMatchesSingles(t *testing.T) {
	m, err := cluster.Params{N: 2, WorkFail: 0.2, WorkRepair: 1.0, BackFail: 0.05, BackRepair: 1.0}.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := New(m, DefaultOptions())
	left := logic.MustParse("!down")
	right := logic.MustParse("down")
	tBound := 8.0
	rs := []float64{2, 5, 9}
	batch, err := c.UntilProbBatch(left, right, tBound, rs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		f := logic.Until{Time: logic.UpTo(tBound), Reward: logic.UpTo(r), Left: left, Right: right}
		want, err := New(m, DefaultOptions()).PathProb(f)
		if err != nil {
			t.Fatalf("single r=%g: %v", r, err)
		}
		for s := range want {
			if batch[i][s] != want[s] {
				t.Fatalf("r=%g state %d: batch %g != single %g", r, s, batch[i][s], want[s])
			}
		}
	}
	if _, err := c.UntilProbBatch(left, right, tBound, nil); err == nil {
		t.Error("empty batch accepted")
	}
}
