// Package core implements the CSRL model checker of the paper (Section 3):
// the recursive computation of satisfaction sets Sat(Φ) over a Markov
// reward model, with the numerical procedures of Section 4 plugged in for
// time- and reward-bounded until formulas:
//
//   - P0 (no bounds):        graph precomputation + linear equation system
//   - P1 (time bound):       transient analysis of a transformed MRM [3]
//   - P2 (reward bound):     duality transformation [4] + P1
//   - P3 (both bounds):      Theorem 1 reduction + one of the pseudo-Erlang,
//     discretisation, or occupation-time procedures
//
// Nesting of state and path formulas is supported throughout, as is the
// steady-state operator and (beyond the paper's evaluation) time intervals
// [t₁,t₂] for time-only bounded until and fully general intervals for the
// next operator.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/performability/csrl/internal/discretise"
	"github.com/performability/csrl/internal/duality"
	"github.com/performability/csrl/internal/erlang"
	"github.com/performability/csrl/internal/graph"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/lump"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/obs"
	"github.com/performability/csrl/internal/parallel"
	"github.com/performability/csrl/internal/sericola"
	"github.com/performability/csrl/internal/sparse"
	"github.com/performability/csrl/internal/steady"
	"github.com/performability/csrl/internal/transient"
)

// Algorithm selects the procedure for P3-type (time- and reward-bounded)
// until formulas.
type Algorithm int

// The three computational procedures of Section 4.
const (
	// AlgSericola is the occupation-time distribution method (§4.4) — the
	// default, being the only one with an a-priori error bound.
	AlgSericola Algorithm = iota + 1
	// AlgErlang is the pseudo-Erlang approximation (§4.2).
	AlgErlang
	// AlgDiscretise is the Tijms–Veldman discretisation (§4.3).
	AlgDiscretise
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case AlgSericola:
		return "occupation-time"
	case AlgErlang:
		return "pseudo-erlang"
	case AlgDiscretise:
		return "discretisation"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// LumpMode controls the automatic lumping pre-pass of the exported
// checking entry points: before evaluating a formula, the checker computes
// the ordinary-lumpability quotient respecting only the formula's atomic
// propositions and evaluates on the quotient, lifting verdicts and
// probabilities back through the block map. The zero value enables the
// pre-pass, so existing Options literals pick it up automatically;
// LumpOff restores direct evaluation on the full model.
type LumpMode int

const (
	// LumpAuto is the default: the pre-pass is enabled.
	LumpAuto LumpMode = iota
	// LumpOn enables the pre-pass explicitly (same behaviour as LumpAuto).
	LumpOn
	// LumpOff disables the pre-pass; formulas are checked on the full model.
	LumpOff
)

// enabled reports whether the mode turns the pre-pass on.
func (l LumpMode) enabled() bool { return l != LumpOff }

// lumpMaxRounds caps the refinement rounds of the automatic pre-pass.
// Refinement needs as many rounds as the distance over which rate
// differences must propagate to separate states — up to O(n) on chains —
// while each round costs a full pass over the rate matrix. A quotient
// that has not stabilised within the cap is abandoned and the formula is
// checked unlumped: the pre-pass must never cost more than the sweep time
// it could save. Explicit lump.QuotientRespecting calls remain uncapped.
const lumpMaxRounds = 64

// Options configures the checker.
type Options struct {
	// P3 selects the procedure for time- and reward-bounded until.
	P3 Algorithm
	// Epsilon is the accuracy for uniformisation-based computations
	// (transient analysis and the occupation-time procedure).
	Epsilon float64
	// ErlangK is the phase count for AlgErlang.
	ErlangK int
	// DiscretiseStep is the step d for AlgDiscretise; 0 derives a step
	// from the bounds t, r and the model's maximal exit rate (see
	// deriveStep).
	DiscretiseStep float64
	// Workers bounds the parallelism of the numerical procedures:
	// 0 = runtime.NumCPU(), 1 = the exact sequential legacy path.
	Workers int
	// SteadyDetect controls steady-state detection in all uniformisation
	// sweeps (see transient.Options.SteadyDetect). The zero value is on;
	// SteadyOff restores the full Fox–Glynn summation.
	SteadyDetect transient.SteadyMode
	// Lump controls the automatic formula-dependent lumping pre-pass of
	// the exported entry points (see LumpMode). The zero value is on.
	Lump LumpMode
	// MemoCap bounds each of the checker memo's tables (reductions,
	// uniformised matrices, Fox–Glynn tables, lump outcomes); the coldest
	// entry is evicted when a table fills. 0 means the CLI-sized default
	// (64 per table); a long-running checker service raises it to keep the
	// hot tables of many recurring queries resident.
	MemoCap int
	// Truncate, when positive, enables state-drop truncation in the
	// forward uniformisation sweeps (see transient.Options.Truncate) and
	// unlocks the initial-state fast path of Check for top-level
	// time-bounded P-until formulas, which evaluates a forward sweep from
	// the initial states instead of a backward sweep over all states. The
	// dropped mass is charged to the truncation/state-drop ledger term
	// inside Epsilon. Zero (the default) keeps every result bitwise
	// unchanged.
	Truncate float64
	// Solve configures the linear solver for unbounded until and
	// steady-state computations.
	Solve numeric.SolveOptions
	// Obs, when non-nil, collects the numerics-observability signals of
	// every procedure the checker runs: the error-budget ledger (Fox–Glynn
	// truncation masses, steady-detection tail charges, Sericola series
	// remainders, indicative scheme terms), counters, gauges and phase
	// spans. Read the aggregate with Checker.NumericsReport; nil (the
	// default) reduces the instrumentation to pointer comparisons.
	Obs *obs.Recorder
}

// DefaultOptions returns the configuration used by the test-suite.
func DefaultOptions() Options {
	return Options{
		P3:      AlgSericola,
		Epsilon: 1e-9,
		ErlangK: 256,
		Solve:   numeric.DefaultSolveOptions(),
	}
}

// ErrUnsupported reports a formula outside the fragment with known
// computational procedures (the paper restricts I and J to intervals
// starting at 0 for until; general intervals are listed as future work).
var ErrUnsupported = errors.New("core: no computational procedure for this formula")

// Checker model-checks CSRL formulas over a fixed MRM.
//
// Concurrency contract: a Checker is safe for concurrent use by multiple
// goroutines. The model is immutable, the memo and the vector pool are
// mutex-guarded, and Options.Obs (when set) is itself race-clean. Results
// are deterministic under concurrency: every cached intermediate (reduction,
// uniformised matrix, Fox–Glynn table, lump quotient) is a pure function of
// its key, so concurrent callers observing a cached versus freshly computed
// entry get bitwise-identical numbers either way. The one shared-state
// caveat is the recorder: Options.Obs is one ledger for every call through
// this checker value, so concurrent requests that each need their own error
// budget proof must run through per-request WithRecorder views — a shared
// recorder would merge their charges and falsify the per-request Σ ≤ ε
// claim. NumericsReport and Reset on a shared recorder are likewise
// whole-checker, not per-call, operations.
type Checker struct {
	m    *mrm.MRM
	opts Options
	// memo caches Theorem 1 reductions, uniformised matrices and
	// Fox–Glynn tables across the repeated corner evaluations of
	// untilRectangle. All memo methods tolerate a nil receiver, so a
	// zero Checker literal degrades to uncached computation.
	memo *memo
	// pool recycles the scratch vectors, Sericola matrix banks and
	// discretisation grids of the numerical procedures across calls — in
	// particular across the four corner evaluations of untilRectangle.
	// VecPool is nil-receiver-safe, so a zero Checker literal degrades to
	// plain allocation.
	pool *sparse.VecPool
}

// New creates a checker for the given model.
func New(m *mrm.MRM, opts Options) *Checker {
	if opts.P3 == 0 {
		opts.P3 = AlgSericola
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = 1e-9
	}
	if opts.ErlangK <= 0 {
		opts.ErlangK = 256
	}
	return &Checker{m: m, opts: opts, memo: newMemo(opts.MemoCap), pool: sparse.NewVecPool()}
}

// Model returns the checker's model.
func (c *Checker) Model() *mrm.MRM { return c.m }

// Epsilon returns the configured accuracy the checker's procedures are
// held to (the ε of the error-budget proof).
func (c *Checker) Epsilon() float64 { return c.opts.Epsilon }

// WithRecorder returns a view of the checker that records its numerics
// signals to r while sharing the model, memo and vector pool with the
// receiver. This is the per-request handle of a concurrent checker
// service: every request gets its own recorder — hence its own error
// ledger and budget proof — while the expensive cross-request state
// (uniformised matrices, Fox–Glynn tables, lump quotients, scratch
// buffers) stays shared. The receiver is not modified. r may be nil to
// obtain an unobserved view.
func (c *Checker) WithRecorder(r *obs.Recorder) *Checker {
	cc := *c
	cc.opts.Obs = r
	return &cc
}

// MemoStats snapshots the checker memo's cumulative hit/miss/eviction
// traffic and live entry count — the cross-request cache-health surface.
// Lump-quotient sub-checkers carry their own memos; their traffic is not
// folded in here, but the lump table's own hits (one per request that
// reuses a quotient) are.
func (c *Checker) MemoStats() MemoStats { return c.memo.stats() }

// NumericsReport folds the memo and pool statistics into the configured
// recorder and returns the aggregate numerics report: the merged
// error-budget ledger checked against Options.Epsilon, plus every counter,
// gauge and span recorded since the last Reset. It returns nil when no
// recorder is configured (Options.Obs == nil).
func (c *Checker) NumericsReport() *obs.Report {
	r := c.opts.Obs
	if r == nil {
		return nil
	}
	ms := c.memo.stats()
	r.Gauge("memo.hits").Set(float64(ms.Hits))
	r.Gauge("memo.misses").Set(float64(ms.Misses))
	r.Gauge("memo.evictions").Set(float64(ms.Evictions))
	r.Gauge("memo.entries").Set(float64(ms.Entries))
	ps := c.pool.Stats()
	r.Gauge("pool.gets").Set(float64(ps.Gets))
	r.Gauge("pool.reuses").Set(float64(ps.Reuses))
	r.Gauge("pool.alloc_bytes").Set(float64(ps.AllocBytes))
	// Process-wide like the worker pool it meters; 0 when every region
	// ran inline (one effective worker or tiny ranges).
	r.Gauge("parallel.chunks").Set(float64(parallel.ChunkCount()))
	return r.Report(c.opts.Epsilon)
}

// Sat computes the satisfaction set Sat(Φ) by the bottom-up traversal of
// the parse tree described in Section 3. Unless Options.Lump is off, a
// lumping pre-pass first quotients the model with respect to the formula's
// atomic propositions (lumpFor) and the traversal runs on the quotient;
// the returned set is lifted back to the original states.
func (c *Checker) Sat(f logic.StateFormula) (*mrm.StateSet, error) {
	q, lr, err := c.lumpFor(logic.Atoms(f))
	if err != nil {
		return nil, err
	}
	sat, err := q.sat(f)
	if err != nil {
		return nil, err
	}
	if lr == nil {
		return sat, nil
	}
	return lr.LiftSet(sat), nil
}

// sat is the traversal body of Sat, running on this checker's own model
// with no lumping indirection — the form every internal call site uses.
func (c *Checker) sat(f logic.StateFormula) (*mrm.StateSet, error) {
	n := c.m.N()
	switch t := f.(type) {
	case logic.True:
		return mrm.NewStateSet(n).Complement(), nil
	case logic.False:
		return mrm.NewStateSet(n), nil
	case logic.Atomic:
		return c.m.Label(t.Name), nil
	case logic.Not:
		sub, err := c.sat(t.Sub)
		if err != nil {
			return nil, err
		}
		return sub.Complement(), nil
	case logic.And:
		l, err := c.sat(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.sat(t.Right)
		if err != nil {
			return nil, err
		}
		return l.Intersect(r), nil
	case logic.Or:
		l, err := c.sat(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.sat(t.Right)
		if err != nil {
			return nil, err
		}
		return l.Union(r), nil
	case logic.Implies:
		l, err := c.sat(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.sat(t.Right)
		if err != nil {
			return nil, err
		}
		return l.Complement().Union(r), nil
	case logic.Prob:
		if t.Query {
			return nil, fmt.Errorf("%w: P=? query has no satisfaction set; use Values", ErrUnsupported)
		}
		probs, err := c.pathProb(t.Path)
		if err != nil {
			return nil, err
		}
		set := mrm.NewStateSet(n)
		for s, p := range probs {
			if t.Complement {
				p = 1 - p
			}
			if t.Op.Compare(p, t.Bound) {
				set.Add(s)
			}
		}
		c.pool.Put(probs)
		return set, nil
	case logic.Steady:
		if t.Query {
			return nil, fmt.Errorf("%w: S=? query has no satisfaction set; use Values", ErrUnsupported)
		}
		probs, err := c.steadyProb(t.Sub)
		if err != nil {
			return nil, err
		}
		set := mrm.NewStateSet(n)
		for s, p := range probs {
			if t.Op.Compare(p, t.Bound) {
				set.Add(s)
			}
		}
		c.pool.Put(probs)
		return set, nil
	default:
		return nil, fmt.Errorf("core: unknown state formula %T", f)
	}
}

// Check evaluates a bounded formula against the model's initial
// distribution: it holds when every state with positive initial probability
// satisfies it. The lumping pre-pass applies as in Sat; no lift-back is
// needed, because a block carries positive initial mass exactly when one of
// its states does and inherits their common verdict.
func (c *Checker) Check(f logic.StateFormula) (bool, error) {
	q, _, err := c.lumpFor(logic.Atoms(f))
	if err != nil {
		return false, err
	}
	return q.check(f)
}

// check is the body of Check on this checker's own model. With truncation
// configured it first tries the initial-state fast path, which answers a
// top-level time-bounded P-until from the initial states alone by forward
// sweeps — without computing the satisfaction set of the whole space.
func (c *Checker) check(f logic.StateFormula) (bool, error) {
	holds, ok, err := c.checkInitFast(f)
	if err != nil {
		return false, err
	}
	if ok {
		return holds, nil
	}
	span := c.opts.Obs.StartSpan("core.sat")
	sat, err := c.sat(f)
	span.End()
	if err != nil {
		return false, err
	}
	for s, p := range c.m.InitView() {
		if p > 0 && !sat.Contains(s) {
			return false, nil
		}
	}
	return true, nil
}

// checkInitFast answers Check for a top-level P▷◁b[Φ U^[0,t] Ψ] (reward
// unbounded) when Options.Truncate is on: instead of one backward sweep
// producing Pr_s(φ) for all n start states, it runs one truncated forward
// sweep per positive-mass initial state via transient.TimeBoundedUntilFrom.
// A forward iterate is a sub-distribution, which is what makes truncation
// sound — and on models whose mass stays near the initial states, the
// active window makes the sweep cost proportional to the window, not to n.
// ok reports whether the fast path applied; when false, the caller falls
// back to the satisfaction-set route.
func (c *Checker) checkInitFast(f logic.StateFormula) (holds, ok bool, err error) {
	p, u, ok := c.initFastShape(f)
	if !ok || p.Query {
		return false, false, nil
	}
	phi, err := c.sat(u.Left)
	if err != nil {
		return false, false, err
	}
	psi, err := c.sat(u.Right)
	if err != nil {
		return false, false, err
	}
	for s, alpha := range c.m.InitView() {
		if alpha <= 0 {
			continue
		}
		pr, err := transient.TimeBoundedUntilFrom(c.m, phi, psi, s, u.Time.Hi, c.transientOpts())
		if err != nil {
			return false, false, err
		}
		if p.Complement {
			pr = 1 - pr
		}
		if !p.Op.Compare(pr, p.Bound) {
			return false, true, nil
		}
	}
	return true, true, nil
}

// initFastShape reports whether f is eligible for the truncated forward
// fast paths (checkInitFast, QueryInitial): truncation must be on and f a
// top-level P-formula over a time-bounded, reward-unbounded until whose
// time interval starts at zero — the shape TimeBoundedUntilFrom computes
// by forward sweeps over the active window.
func (c *Checker) initFastShape(f logic.StateFormula) (logic.Prob, logic.Until, bool) {
	if c.opts.Truncate <= 0 {
		return logic.Prob{}, logic.Until{}, false
	}
	p, isProb := f.(logic.Prob)
	if !isProb {
		return logic.Prob{}, logic.Until{}, false
	}
	u, isUntil := p.Path.(logic.Until)
	if !isUntil || !u.Time.Valid() || !u.Reward.Valid() {
		return logic.Prob{}, logic.Until{}, false
	}
	if u.Time.IsUnbounded() || !u.Time.StartsAtZero() || !u.Reward.IsUnbounded() {
		return logic.Prob{}, logic.Until{}, false
	}
	return p, u, true
}

// QueryInitial evaluates the numeric value of a P-formula from the initial
// distribution alone: Σ_s α(s)·Pr_s(φ), the quantity a P=? query reports
// for the initial state(s). When the truncated forward fast path applies
// (see initFastShape) the value comes from one TimeBoundedUntilFrom sweep
// per positive-mass initial state — cost proportional to the truncation
// window, not to the state count — instead of the dense all-states Values
// computation. ok reports whether the fast path applied; when false the
// caller falls back to Values (and should say so, since the fallback
// defeats the point of truncation).
func (c *Checker) QueryInitial(f logic.StateFormula) (val float64, ok bool, err error) {
	q, _, err := c.lumpFor(logic.Atoms(f))
	if err != nil {
		return 0, false, err
	}
	return q.queryInitial(f)
}

// queryInitial is the body of QueryInitial on this checker's own model.
// No lift-back is needed: the quotient's initial distribution carries each
// block's aggregated mass and every state of a block shares its value, so
// the α-weighted sum agrees with the full model's.
func (c *Checker) queryInitial(f logic.StateFormula) (float64, bool, error) {
	p, u, ok := c.initFastShape(f)
	if !ok {
		return 0, false, nil
	}
	phi, err := c.sat(u.Left)
	if err != nil {
		return 0, false, err
	}
	psi, err := c.sat(u.Right)
	if err != nil {
		return 0, false, err
	}
	var total float64
	for s, alpha := range c.m.InitView() {
		if alpha <= 0 {
			continue
		}
		pr, err := transient.TimeBoundedUntilFrom(c.m, phi, psi, s, u.Time.Hi, c.transientOpts())
		if err != nil {
			return 0, false, err
		}
		if p.Complement {
			pr = 1 - pr
		}
		total += alpha * pr
	}
	return total, true, nil
}

// Values returns the per-state numeric value behind a probabilistic or
// steady-state formula: the path probability for P-formulas (query or
// bounded — the bound is ignored) and the long-run probability for
// S-formulas. Boolean-level formulas have no numeric value. The lumping
// pre-pass applies as in Sat — every state of a block receives its block's
// value — and the returned slice is a plain allocation owned by the caller.
func (c *Checker) Values(f logic.StateFormula) ([]float64, error) {
	q, lr, err := c.lumpFor(logic.Atoms(f))
	if err != nil {
		return nil, err
	}
	vals, err := q.values(f)
	if err != nil {
		return nil, err
	}
	return q.liftOut(lr, vals), nil
}

// values is the body of Values on this checker's own model. The returned
// buffer may be pool-borrowed; the caller puts it back.
func (c *Checker) values(f logic.StateFormula) ([]float64, error) {
	switch t := f.(type) {
	case logic.Prob:
		probs, err := c.pathProb(t.Path)
		if err != nil {
			return nil, err
		}
		if t.Complement {
			for i, p := range probs {
				probs[i] = 1 - p
			}
		}
		return probs, nil
	case logic.Steady:
		return c.steadyProb(t.Sub)
	default:
		return nil, fmt.Errorf("%w: %s is not a P=?/S=? query", ErrUnsupported, f)
	}
}

// PathProb returns Pr_s(φ) for every state s. The lumping pre-pass applies
// as in Sat, respecting the atoms of the path formula's state subformulas.
// The returned slice is a plain allocation owned by the caller: the
// internal procedures hand back buffers borrowed from the checker's vector
// pool, and this exported boundary copies (or lifts) them out and checks
// the borrowed buffer back in, so callers outside the package never hold
// (or leak) pooled memory.
func (c *Checker) PathProb(f logic.PathFormula) ([]float64, error) {
	q, lr, err := c.lumpFor(logic.PathAtoms(f))
	if err != nil {
		return nil, err
	}
	vals, err := q.pathProb(f)
	if err != nil {
		return nil, err
	}
	return q.liftOut(lr, vals), nil
}

// UntilProbBatch computes Pr_s(Φ U^{[0,t]}_{[0,r_i]} Ψ) for every state s
// and a batch of reward bounds r_i sharing one time bound t. One Theorem 1
// reduction serves the whole batch, and with the Sericola procedure every
// bound advances through a single recursion over the memoised uniformised
// matrix (untilTimeRewardBatch) — one matrix sweep for the lot instead of
// one per bound. This is the admission surface a concurrent checker
// service coalesces same-model queries onto: requests that differ only in
// their reward bound ride one numerical computation. results[i] is
// bitwise-identical to PathProb of the corresponding single until. The
// lumping pre-pass applies as in Sat, and each returned slice is a plain
// caller-owned allocation.
func (c *Checker) UntilProbBatch(left, right logic.StateFormula, t float64, rs []float64) ([][]float64, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("core: until batch: no reward bounds")
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("core: until batch: invalid time bound %v", t)
	}
	for _, r := range rs {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("core: until batch: invalid reward bound %v", r)
		}
	}
	atoms := append(logic.Atoms(left), logic.Atoms(right)...)
	q, lr, err := c.lumpFor(atoms)
	if err != nil {
		return nil, err
	}
	phi, err := q.sat(left)
	if err != nil {
		return nil, err
	}
	psi, err := q.sat(right)
	if err != nil {
		return nil, err
	}
	outs, err := q.untilTimeRewardBatch(phi, psi, t, rs)
	if err != nil {
		return nil, err
	}
	lifted := make([][]float64, len(outs))
	for i, v := range outs {
		lifted[i] = q.liftOut(lr, v)
	}
	return lifted, nil
}

// pathProb is the body of PathProb on this checker's own model. The
// returned buffer may be pool-borrowed; the caller puts it back.
func (c *Checker) pathProb(f logic.PathFormula) ([]float64, error) {
	switch t := f.(type) {
	case logic.Next:
		return c.probNext(t)
	case logic.Until:
		return c.probUntil(t)
	default:
		return nil, fmt.Errorf("core: unknown path formula %T", f)
	}
}

// liftOut converts an internal (possibly pool-borrowed) result vector into
// the caller-owned allocation of the exported boundary: lifted through the
// lump result when the pre-pass ran, copied verbatim otherwise.
func (c *Checker) liftOut(lr *lump.Result, vals []float64) []float64 {
	var out []float64
	if lr != nil {
		out = lr.Lift(vals)
	} else {
		out = make([]float64, len(vals))
		copy(out, vals)
	}
	c.pool.Put(vals)
	return out
}

// SteadyProb returns the long-run probability of residing in Sat(Φ) for
// every start state. The lumping pre-pass applies as in Sat: ordinary
// lumpability makes the block process Markov for every start state, so the
// long-run fraction spent in a union of blocks lifts exactly.
func (c *Checker) SteadyProb(f logic.StateFormula) ([]float64, error) {
	q, lr, err := c.lumpFor(logic.Atoms(f))
	if err != nil {
		return nil, err
	}
	vals, err := q.steadyProb(f)
	if err != nil {
		return nil, err
	}
	return q.liftOut(lr, vals), nil
}

// steadyProb is the body of SteadyProb on this checker's own model.
func (c *Checker) steadyProb(f logic.StateFormula) ([]float64, error) {
	sat, err := c.sat(f)
	if err != nil {
		return nil, err
	}
	return steady.Probabilities(c.m, sat)
}

// lumpFor runs the automatic lumping pre-pass for a formula with the given
// atomic propositions: it returns the checker to evaluate on and, when the
// pre-pass produced a proper quotient, the lump result to lift verdicts
// back through (nil when evaluation runs on c itself). Outcomes are
// memoised per sorted atom set, so one quotient serves every formula over
// the same propositions; the quotient sub-checker owns its own memo and
// pool, keyed to the quotient model, and shares the Obs recorder.
func (c *Checker) lumpFor(atoms []string) (*Checker, *lump.Result, error) {
	if !c.opts.Lump.enabled() || c.memo == nil || c.m.HasImpulses() {
		return c, nil, nil
	}
	sort.Strings(atoms)
	key := strings.Join(atoms, "\x00")
	entry := c.memo.lump(key, func() *lumpEntry { return c.buildLump(atoms) })
	if entry == nil || entry.sub == nil {
		return c, nil, nil
	}
	// The cached sub-checker is recorder-free (see lumpEntry); graft this
	// call's recorder onto a view so concurrent requests sharing the
	// quotient still charge disjoint ledgers.
	if c.opts.Obs == nil {
		return entry.sub, entry.res, nil
	}
	return entry.sub.WithRecorder(c.opts.Obs), entry.res, nil
}

// buildLump computes one pre-pass outcome: the capped quotient and its
// sub-checker, or a zero entry when lumping declines — capped refinement
// (ErrRoundsExceeded) or a trivial quotient, where the indirection would
// cost without saving. Both declines are safe: the formula is simply
// checked on the full model.
func (c *Checker) buildLump(atoms []string) *lumpEntry {
	span := c.opts.Obs.StartSpan("core.lump")
	res, err := lump.QuotientLimited(c.m, atoms, lumpMaxRounds)
	span.End()
	if err != nil {
		if c.opts.Obs != nil {
			c.opts.Obs.Counter("lump.declined").Inc()
		}
		return &lumpEntry{}
	}
	if c.opts.Obs != nil {
		c.opts.Obs.Gauge("lump.states").SetMax(float64(c.m.N()))
		c.opts.Obs.Gauge("lump.blocks").SetMax(float64(res.Model.N()))
	}
	if res.Model.N() >= c.m.N() {
		if c.opts.Obs != nil {
			c.opts.Obs.Counter("lump.trivial").Inc()
		}
		return &lumpEntry{}
	}
	subOpts := c.opts
	// The cached entry outlives this request: a baked-in recorder would
	// funnel every later request's charges into the builder's ledger, so
	// the sub-checker is stored recorder-free and lumpFor grafts the
	// caller's recorder on per use.
	subOpts.Obs = nil
	// The quotient is already coarsest for these atoms; re-lumping inside
	// the sub-checker could only waste a refinement pass.
	subOpts.Lump = LumpOff
	sub := New(res.Model, subOpts)
	return &lumpEntry{res: res, sub: sub}
}

// probNext computes Pr_s(X^I_J Φ) in closed form: the single jump must land
// in Sat(Φ) at a time T ~ Exp(E(s)) with T ∈ I and ρ(s)·T ∈ J, i.e. T in
// the intersection of I with J/ρ(s). General (non-zero-origin) intervals
// are supported — the paper's future-work extension is straightforward for
// the next operator.
func (c *Checker) probNext(nx logic.Next) ([]float64, error) {
	if !nx.Time.Valid() || !nx.Reward.Valid() {
		return nil, fmt.Errorf("%w: invalid interval in %s", ErrUnsupported, nx)
	}
	sat, err := c.sat(nx.Sub)
	if err != nil {
		return nil, err
	}
	n := c.m.N()
	out := make([]float64, n)
	for s := 0; s < n; s++ {
		e := c.m.ExitRate(s)
		if e == 0 {
			continue // absorbing: no next state
		}
		lo, hi := nx.Time.Lo, nx.Time.Hi
		switch rho := c.m.Reward(s); {
		case rho > 0:
			lo = math.Max(lo, nx.Reward.Lo/rho)
			hi = math.Min(hi, nx.Reward.Hi/rho)
		case nx.Reward.Lo > 0:
			continue // zero reward rate can never reach a positive bound
		}
		if lo > hi {
			continue
		}
		wLo, err := expNeg(e * lo)
		if err != nil {
			return nil, fmt.Errorf("core: next window at state %d: %w", s, err)
		}
		wHi, err := expNeg(e * hi)
		if err != nil {
			return nil, fmt.Errorf("core: next window at state %d: %w", s, err)
		}
		window := wLo - wHi
		var hit float64
		c.m.Rates().Row(s, func(tgt int, v float64) {
			if sat.Contains(tgt) {
				hit += v
			}
		})
		out[s] = (hit / e) * window
	}
	return out, nil
}

// expNeg returns e^{-x}, mapping x = +∞ to its exact limit 0. A NaN
// argument is an error: math.Exp would propagate it silently into the
// probability vector, where it poisons every comparison downstream (NaN
// fails all threshold tests, so a Sat set would quietly come out empty).
func expNeg(x float64) (float64, error) {
	if math.IsNaN(x) {
		return 0, fmt.Errorf("core: exponent is NaN")
	}
	if math.IsInf(x, 1) {
		return 0, nil
	}
	return math.Exp(-x), nil
}

// probUntil dispatches Φ U^I_J Ψ to the procedure matching its bounds.
func (c *Checker) probUntil(u logic.Until) ([]float64, error) {
	if !u.Time.Valid() || !u.Reward.Valid() {
		return nil, fmt.Errorf("%w: invalid interval in %s", ErrUnsupported, u)
	}
	phi, err := c.sat(u.Left)
	if err != nil {
		return nil, err
	}
	psi, err := c.sat(u.Right)
	if err != nil {
		return nil, err
	}
	timeB, rewB := !u.Time.IsUnbounded(), !u.Reward.IsUnbounded()
	switch {
	case !timeB && !rewB:
		return c.untilUnbounded(phi, psi)
	case timeB && !rewB:
		if u.Time.StartsAtZero() {
			return transient.TimeBoundedUntil(c.m, phi, psi, u.Time.Hi, c.transientOpts())
		}
		return c.untilTimeInterval(phi, psi, u.Time)
	case !timeB && rewB:
		if u.Reward.StartsAtZero() {
			return duality.RewardBoundedUntil(c.m, phi, psi, u.Reward.Hi,
				func(d *mrm.MRM, phi, psi *mrm.StateSet, t float64) ([]float64, error) {
					return transient.TimeBoundedUntil(d, phi, psi, t, c.transientOpts())
				})
		}
		// Reward interval [r1, r2]: the duality transform turns it into a
		// time interval on the dual model, where the exact two-phase
		// computation applies (extension; paper §6 future work).
		d, err := duality.Dual(c.m)
		if err != nil {
			return nil, err
		}
		// New (not a struct literal) so the dual checker gets its own
		// memo — cache entries are keyed to the dual model.
		dual := New(d, c.opts)
		return dual.untilTimeInterval(phi, psi, u.Reward)
	default:
		if u.Time.StartsAtZero() && u.Reward.StartsAtZero() {
			return c.untilTimeReward(phi, psi, u.Time.Hi, u.Reward.Hi)
		}
		return c.untilRectangle(phi, psi, u.Time, u.Reward)
	}
}

func (c *Checker) transientOpts() transient.Options {
	opts := transient.Options{
		Epsilon:      c.opts.Epsilon,
		Workers:      c.opts.Workers,
		SteadyDetect: c.opts.SteadyDetect,
		Truncate:     c.opts.Truncate,
		Pool:         c.pool,
		Obs:          c.opts.Obs,
	}
	if c.memo != nil {
		// Guarded: wrapping a nil *memo in the interface would yield a
		// non-nil transient.Cache whose methods still work (nil-receiver
		// safe), but an honest nil keeps the intent visible.
		opts.Cache = c.memo
	}
	return opts
}

// untilUnbounded implements the P0 procedure (Hansson–Jonsson [13]):
// qualitative precomputation followed by a linear system over the embedded
// DTMC.
func (c *Checker) untilUnbounded(phi, psi *mrm.StateSet) ([]float64, error) {
	n := c.m.N()
	g := graph.FromRates(c.m.Rates())
	prob0 := graph.Prob0(g, phi, psi)
	prob1 := graph.Prob1(g, phi, psi, prob0)
	x := make([]float64, n)
	prob1.Each(func(s int) { x[s] = 1 })
	maybe := prob0.Complement().Minus(prob1)
	if maybe.IsEmpty() {
		return x, nil
	}
	states := maybe.Slice()
	idx := make(map[int]int, len(states))
	for i, s := range states {
		idx[s] = i
	}
	b := make([]float64, len(states))
	builder := sparse.NewBuilder(len(states))
	for i, s := range states {
		e := c.m.ExitRate(s)
		if e == 0 {
			continue
		}
		c.m.Rates().Row(s, func(t int, v float64) {
			p := v / e
			switch {
			case prob1.Contains(t):
				b[i] += p
			case maybe.Contains(t):
				builder.Add(i, idx[t], p)
			}
		})
	}
	a, err := builder.Build()
	if err != nil {
		return nil, fmt.Errorf("core: until system: %w", err)
	}
	sol, err := numeric.SolveGaussSeidel(a, b, c.opts.Solve)
	if err != nil {
		return nil, fmt.Errorf("core: until solve: %w", err)
	}
	for i, s := range states {
		x[s] = sol[i]
	}
	return x, nil
}

// untilTimeInterval computes Φ U^[t1,t2] Ψ (t1 > 0, reward unbounded) by
// the standard two-phase CSL computation: probabilities for the residual
// until of length t2−t1, then a backward transient sweep of length t1 on
// the model with ¬Φ made absorbing.
func (c *Checker) untilTimeInterval(phi, psi *mrm.StateSet, iv logic.Interval) ([]float64, error) {
	if math.IsInf(iv.Hi, 1) {
		// Φ U^[t1,∞) Ψ: stay in Φ for t1, then an unbounded until.
		tail, err := c.untilUnbounded(phi, psi)
		if err != nil {
			return nil, err
		}
		return c.phaseOne(phi, tail, iv.Lo)
	}
	tail, err := transient.TimeBoundedUntil(c.m, phi, psi, iv.Hi-iv.Lo, c.transientOpts())
	if err != nil {
		return nil, err
	}
	// phaseOne masks tail into its own terminal vector; the residual-until
	// buffer goes back to the pool rather than leaking out of the regime.
	res, err := c.phaseOne(phi, tail, iv.Lo)
	c.pool.Put(tail)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// phaseOne performs the first phase of the interval-until computation: a
// backward sweep of duration t1 on M[¬Φ absorbing] with terminal weights
// tail masked to Φ-states.
func (c *Checker) phaseOne(phi *mrm.StateSet, tail []float64, t1 float64) ([]float64, error) {
	restricted, err := c.memo.Absorbing(c.m, phi.Complement(), false)
	if err != nil {
		return nil, err
	}
	v := make([]float64, c.m.N())
	phi.Each(func(s int) { v[s] = tail[s] })
	return transient.BackwardWeighted(restricted, v, t1, c.transientOpts())
}

// untilRectangle computes Φ U^I_J Ψ for a doubly-bounded until whose
// intervals do not both start at 0 — the paper's §6 future-work case. On
// the Theorem 1 reduction, absorption into the goal freezes both the time
// and the accumulated reward at the first Ψ-hit, so the probability of
// hitting within the rectangle I×J is the standard two-dimensional
// difference of the cumulative quantity F(t,r) = Pr{X_t = goal, Y_t ≤ r}:
//
//	Pr{τ ∈ (t1,t2], Y_τ ∈ (r1,r2]} = F(t2,r2) − F(t1,r2) − F(t2,r1) + F(t1,r1)
//
// This equals the CSRL semantics only when no path can satisfy the until at
// an instant other than its FIRST Ψ-hit, i.e. when Sat(Φ) ∩ Sat(Ψ) = ∅
// (otherwise a path may linger in a Φ∧Ψ state into the window); the method
// therefore rejects overlapping Φ/Ψ. Open/closed boundary differences are
// null events unless the accumulated reward has an atom on the boundary.
func (c *Checker) untilRectangle(phi, psi *mrm.StateSet, timeI, rewardJ logic.Interval) ([]float64, error) {
	if timeI.Lo > 0 || rewardJ.Lo > 0 {
		if !phi.Intersect(psi).IsEmpty() {
			return nil, fmt.Errorf("%w: general-interval until requires Sat(Φ)∩Sat(Ψ)=∅ (first-passage reduction)", ErrUnsupported)
		}
	}
	if math.IsInf(timeI.Hi, 1) || math.IsInf(rewardJ.Hi, 1) {
		return nil, fmt.Errorf("%w: a doubly-bounded general-interval until needs finite upper bounds", ErrUnsupported)
	}
	// Lower-bound corner terms are included only when the bound is
	// strictly positive; a zero lower bound imposes no constraint (beyond
	// the τ = 0 case of Ψ-start states, patched below). Corners sharing a
	// time bound also share a reward-bound batch: their goal columns
	// advance together through the memoised uniformised matrix, one P3
	// recursion per distinct t instead of one per corner.
	rs := []float64{rewardJ.Hi}
	if rewardJ.Lo > 0 {
		rs = append(rs, rewardJ.Lo)
	}
	f2, err := c.untilTimeRewardBatch(phi, psi, timeI.Hi, rs)
	if err != nil {
		return nil, err
	}
	out := f2[0] // F(t2, r2)
	nTerms := len(rs)
	if rewardJ.Lo > 0 {
		for s := range out {
			out[s] -= f2[1][s] // − F(t2, r1)
		}
	}
	if timeI.Lo > 0 {
		f1, err := c.untilTimeRewardBatch(phi, psi, timeI.Lo, rs)
		if err != nil {
			return nil, err
		}
		nTerms += len(rs)
		for s := range out {
			out[s] -= f1[0][s] // − F(t1, r2)
		}
		if rewardJ.Lo > 0 {
			for s := range out {
				out[s] += f1[1][s] // + F(t1, r1)
			}
		}
	}
	if err := c.clampRectangleResidue(out, nTerms); err != nil {
		return nil, err
	}
	// States already in Ψ at time 0 satisfy the formula iff 0 ∈ I and
	// 0 ∈ J; the rectangle difference gives 0 for them (they are absorbed
	// at τ = 0), so patch them explicitly.
	psi.Each(func(s int) {
		out[s] = boolTo01(timeI.Contains(0) && rewardJ.Contains(0))
	})
	return out, nil
}

// clampRectangleResidue handles the negative residue of the inclusion–
// exclusion corner difference. Exactly, the difference is a probability in
// [0,1]; numerically each of the nTerms corner evaluations carries up to
// the run's ε of truncation error, so cancellation can leave residues as
// negative as −nTerms·ε. Residues inside that band are legitimate roundoff:
// they are clamped to 0 and the largest clamped magnitude is recorded on
// the ledger's indicative side. Residues beyond it indicate the corner
// values are inconsistent beyond what the accuracy can explain — returning
// them (or silently zeroing them, as the previous hard-coded −1e-10 cutoff
// did for everything below the cutoff) would hand the caller a wrong
// probability, so they are an error.
func (c *Checker) clampRectangleResidue(out []float64, nTerms int) error {
	bound := float64(nTerms) * c.opts.Epsilon
	var residue float64
	for s := range out {
		if out[s] >= 0 {
			continue
		}
		if out[s] < -bound {
			return fmt.Errorf("core: rectangle corner difference at state %d is %g, below the ε-scaled residue bound −%d·ε = %g — corner evaluations are inconsistent beyond the configured accuracy",
				s, out[s], nTerms, -bound)
		}
		if -out[s] > residue {
			residue = -out[s]
		}
		out[s] = 0
	}
	if c.opts.Obs != nil && residue > 0 {
		// Measured cancellation magnitude, not a provable truncation bound:
		// indicative, like sericola's clamp residue.
		c.opts.Obs.ChargeIndicative("core", "rectangle-residue", residue)
	}
	return nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// untilTimeReward implements the P3 procedure: the Theorem 1 reduction
// followed by the configured Section 4 algorithm on the reduced model. It
// is the batch of one.
func (c *Checker) untilTimeReward(phi, psi *mrm.StateSet, t, r float64) ([]float64, error) {
	res, err := c.untilTimeRewardBatch(phi, psi, t, []float64{r})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// untilTimeRewardBatch evaluates the P3 procedure for several reward
// bounds sharing one time bound: one Theorem 1 reduction serves the whole
// batch, and with the Sericola algorithm the bounds advance together
// through a single recursion over the memoised uniformised matrix
// (sericola.ReachProbBatch). The Erlang and discretisation procedures have
// no shared recursion to exploit — their models depend on the bound
// resolution — so they loop, still sharing the reduction. results[ri] is
// bitwise equal to an unbatched untilTimeReward(phi, psi, t, rs[ri]) call.
func (c *Checker) untilTimeRewardBatch(phi, psi *mrm.StateSet, t float64, rs []float64) ([][]float64, error) {
	// The memoised reduction makes the corner evaluations of
	// untilRectangle share one reduced model, which in turn lets the
	// pointer-keyed uniformised-matrix cache hit across them.
	span := c.opts.Obs.StartSpan("core.reduce")
	red, err := c.memo.Reduction(c.m, phi, psi)
	span.End()
	if err != nil {
		return nil, err
	}
	span = c.opts.Obs.StartSpan("core.corner")
	defer span.End()
	goal := mrm.NewStateSetOf(red.Model.N(), red.Goal)
	alg := c.opts.P3
	if red.Model.HasImpulses() {
		// Only the discretisation procedure handles impulse rewards
		// (paper §2.1/§6); the selection is forced rather than failed so
		// impulse models work out of the box.
		alg = AlgDiscretise
	}
	valuesList := make([][]float64, len(rs))
	// putPartial returns the reduced-model vectors computed before a
	// mid-batch failure; the pool must get every buffer back on the error
	// path too.
	putPartial := func(upTo int) {
		for _, v := range valuesList[:upTo] {
			c.pool.Put(v)
		}
	}
	switch alg {
	case AlgSericola:
		var cache sericola.Cache
		if c.memo != nil {
			cache = c.memo
		}
		resList, err := sericola.ReachProbBatch(red.Model, goal, t, rs, sericola.Options{
			Epsilon:      c.opts.Epsilon,
			Workers:      c.opts.Workers,
			SteadyDetect: c.opts.SteadyDetect,
			Truncate:     c.opts.Truncate,
			Cache:        cache,
			Pool:         c.pool,
			Obs:          c.opts.Obs,
		})
		if err != nil {
			return nil, err
		}
		for ri, res := range resList {
			valuesList[ri] = res.Values
		}
	case AlgErlang:
		// The Erlang expansion is a fresh model per call, so the
		// pointer-keyed matrix cache could never hit — strip it to keep
		// the memo from accumulating dead entries.
		topts := c.transientOpts()
		topts.Cache = nil
		for ri, r := range rs {
			values, err := erlang.ReachProbAll(red.Model, goal, t, r, erlang.Options{
				K:         c.opts.ErlangK,
				Transient: topts,
			})
			if err != nil {
				putPartial(ri)
				return nil, err
			}
			valuesList[ri] = values
		}
	case AlgDiscretise:
		for ri, r := range rs {
			d := c.opts.DiscretiseStep
			if d == 0 {
				d, err = deriveStep(red.Model, t, r)
				if err != nil {
					putPartial(ri)
					return nil, err
				}
			}
			values, err := discretise.ReachProbAll(red.Model, goal, t, r, discretise.Options{
				D:       d,
				Workers: c.opts.Workers,
				Pool:    c.pool,
				Obs:     c.opts.Obs,
			})
			if err != nil {
				putPartial(ri)
				return nil, err
			}
			valuesList[ri] = values
		}
	default:
		return nil, fmt.Errorf("core: unknown P3 algorithm %v", c.opts.P3)
	}
	outs := make([][]float64, len(rs))
	for ri, values := range valuesList {
		out := make([]float64, c.m.N())
		for s := range out {
			out[s] = values[red.StateMap[s]]
		}
		// The reduced-model vector is dead once mapped back; feed it to
		// the pool so the next corner evaluation of untilRectangle reuses
		// it.
		c.pool.Put(values)
		outs[ri] = out
	}
	return outs, nil
}

// stepIntTol is the relative tolerance under which a quotient counts as an
// integer when deriving a discretisation step. It matches the intTol the
// discretise package applies to t/d and r/d.
const stepIntTol = 1e-9

// maxStepDenominator bounds the denominator search in deriveStep. The cap
// keeps near-integer rational approximations of irrational ratios (e.g.
// continued-fraction convergents of √2) from slipping under the tolerance
// and silently deriving an absurdly fine grid.
const maxStepDenominator = 4096

// deriveStep picks a discretisation step d that divides both bounds: the
// coarsest d = t/a (a ≤ maxStepDenominator) with r/d within stepIntTol of
// an integer, halved until it clears the stability ceiling 1/(8·max E).
// Halving preserves divisibility exactly, and the relative tolerance keeps
// the integrality check meaningful as the quotients grow. When no such
// step exists — the bounds are not commensurable, e.g. r/t irrational —
// an explicit error tells the caller to set Options.DiscretiseStep.
func deriveStep(m *mrm.MRM, t, r float64) (float64, error) {
	if t <= 0 || r <= 0 {
		return 0, fmt.Errorf("core: derive step: bounds t=%v r=%v must be positive", t, r)
	}
	var maxE float64
	for s := 0; s < m.N(); s++ {
		if e := m.ExitRate(s); e > maxE {
			maxE = e
		}
	}
	if maxE == 0 {
		maxE = 1
	}
	ceiling := 1 / (8 * maxE)
	ratio := r / t
	for a := 1; a <= maxStepDenominator; a++ {
		q := float64(a) * ratio
		if q < 0.5 {
			// r/d would round to 0: the grid cannot resolve the reward
			// bound yet, keep refining.
			continue
		}
		if math.Abs(q-math.Round(q)) > stepIntTol*(1+q) {
			continue
		}
		d := t / float64(a)
		for d > ceiling {
			d /= 2
		}
		return d, nil
	}
	return 0, fmt.Errorf("core: no discretisation step divides both t=%v and r=%v (denominators up to %d tried); set Options.DiscretiseStep explicitly", t, r, maxStepDenominator)
}
