package core

import (
	"testing"

	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/obs"
)

// TestCheckTruncatedAgreesWithDense pins the semantics of the truncated
// Check fast path: for every formula shape — whether it qualifies for the
// forward single-state sweep or falls back to the dense Sat-based check —
// the verdict must match a truncation-free checker. The window gauge
// separates the two routes: sweepForwardTruncated sets it whenever it
// runs, so its presence proves the fast path engaged exactly for the
// eligible time-bounded until formulas.
func TestCheckTruncatedAgreesWithDense(t *testing.T) {
	m := lumpTestModel(t)
	cases := []struct {
		name    string
		formula string
		fast    bool // expected to take the forward-sweep route
	}{
		{"until holds", "P<=0.9 [ !down U{t<=2} down ]", true},
		{"until fails", "P>=0.99 [ !down U{t<=2} down ]", true},
		{"eventually", "P>0.01 [ F{t<=1} degraded ]", true},
		{"strict upper", "P<1.0 [ !down U{t<=2} down ]", true},
		{"reward-bounded falls back", "P>0.001 [ qos U{t<=2, r<=3} down ]", false},
		{"interval time falls back", "P>=0.0 [ !down U{t in [1,2]} down ]", false},
		{"steady falls back", "S>=0.0 [ qos ]", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := logic.MustParse(tc.formula)

			denseOpts := DefaultOptions()
			denseOpts.Lump = LumpOff
			dense, err := New(m, denseOpts).Check(f)
			if err != nil {
				t.Fatal(err)
			}

			truncOpts := denseOpts
			truncOpts.Truncate = 1e-13
			truncOpts.Obs = obs.New()
			trunc := New(m, truncOpts)
			got, err := trunc.Check(f)
			if err != nil {
				t.Fatal(err)
			}
			if got != dense {
				t.Errorf("truncated verdict %v, dense %v", got, dense)
			}
			rep := trunc.NumericsReport()
			_, swept := rep.Gauges["truncation.active-window"]
			if swept != tc.fast {
				t.Errorf("forward sweep ran = %v, want %v; gauges: %v", swept, tc.fast, rep.Gauges)
			}
			if !rep.BudgetOK {
				t.Errorf("budget %g exceeds epsilon", rep.BudgetTotal)
			}
		})
	}
}
