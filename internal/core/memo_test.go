package core

import (
	"testing"
)

func TestLRUTableEvictsColdestOnly(t *testing.T) {
	tab := newLRU[int, int](3)
	var evicted int64
	for k := 1; k <= 3; k++ {
		evicted += tab.put(k, k*10)
	}
	if evicted != 0 {
		t.Fatalf("evictions before the table is full: %d", evicted)
	}
	// Refresh key 1, then overflow: key 2 is now the coldest.
	if v, ok := tab.get(1); !ok || v != 10 {
		t.Fatalf("get(1) = %v, %v", v, ok)
	}
	evicted += tab.put(4, 40)
	if evicted != 1 {
		t.Fatalf("want exactly one eviction, got %d", evicted)
	}
	if _, ok := tab.get(2); ok {
		t.Error("coldest key 2 survived the eviction")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := tab.get(k); !ok {
			t.Errorf("hot key %d was evicted", k)
		}
	}
	if tab.len() != 3 {
		t.Errorf("table holds %d entries, cap is 3", tab.len())
	}
}

func TestLRUTablePutExistingRefreshes(t *testing.T) {
	tab := newLRU[string, int](2)
	tab.put("a", 1)
	tab.put("b", 2)
	if ev := tab.put("a", 3); ev != 0 {
		t.Fatalf("re-put of live key evicted %d entries", ev)
	}
	if v, _ := tab.get("a"); v != 3 {
		t.Errorf("re-put did not update the value: got %d", v)
	}
	tab.put("c", 4) // "b" is coldest now that "a" was refreshed
	if _, ok := tab.get("b"); ok {
		t.Error("expected b to be evicted after a was refreshed")
	}
}

// TestMemoEvictionKeepsHotEntries drives the Poisson table past its cap
// while re-reading one hot key every step: under LRU the hot entry must
// survive the whole sweep (the old clear-on-overflow policy wiped it), the
// eviction counter must account for the overflow exactly, and the table
// must stay within its bound.
func TestMemoEvictionKeepsHotEntries(t *testing.T) {
	const cap = 8
	m := newMemo(cap)
	hotQ := 3.5
	if _, err := m.Poisson(hotQ, 1e-9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*cap; i++ {
		if _, err := m.Poisson(10+float64(i), 1e-9); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Poisson(hotQ, 1e-9); err != nil {
			t.Fatal(err)
		}
	}
	st := m.stats()
	// Every hotQ read after the first must have been a hit.
	if st.Hits < int64(3*cap) {
		t.Errorf("hot key was evicted: only %d hits", st.Hits)
	}
	if st.Misses != int64(1+3*cap) {
		t.Errorf("misses = %d, want %d", st.Misses, 1+3*cap)
	}
	wantEv := int64(1 + 3*cap - cap) // inserts beyond capacity
	if st.Evictions != wantEv {
		t.Errorf("evictions = %d, want %d", st.Evictions, wantEv)
	}
	if st.Entries != cap {
		t.Errorf("entries = %d, want table at cap %d", st.Entries, cap)
	}
}

func TestOptionsMemoCap(t *testing.T) {
	opts := DefaultOptions()
	opts.MemoCap = 2
	c := New(tinyModel(t), opts)
	for i := 0; i < 5; i++ {
		if _, err := c.memo.Poisson(2+float64(i), 1e-9); err != nil {
			t.Fatal(err)
		}
	}
	st := c.MemoStats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want MemoCap 2 respected", st.Entries)
	}
	if st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
}

func TestMemoStatsNil(t *testing.T) {
	var m *memo
	if st := m.stats(); st != (MemoStats{}) {
		t.Errorf("nil memo stats = %+v, want zeroes", st)
	}
}
