package core

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/obs"
)

// TestExpNegRejectsNaN pins the error path of the next-operator window
// helper: the historical version returned math.Exp(-NaN) = NaN, which
// poisons every downstream threshold comparison (a NaN probability fails
// all bounds, silently emptying the Sat set).
func TestExpNegRejectsNaN(t *testing.T) {
	if _, err := expNeg(math.NaN()); err == nil {
		t.Error("expNeg(NaN) must error, not propagate NaN")
	}
	if v, err := expNeg(math.Inf(1)); err != nil || v != 0 {
		t.Errorf("expNeg(+Inf) = %v, %v; want 0, nil", v, err)
	}
	if v, err := expNeg(0); err != nil || v != 1 {
		t.Errorf("expNeg(0) = %v, %v; want 1, nil", v, err)
	}
	if v, err := expNeg(2); err != nil || math.Abs(v-math.Exp(-2)) > 1e-16 {
		t.Errorf("expNeg(2) = %v, %v", v, err)
	}
}

// dualBranchModel is a 3-state chain 0 --1--> 1 --1--> 2 (absorbing) with
// rewards 2, 1, 1 — chosen so that the satisfaction set of the nested
// formula P>=0.5[X{t<=1} b] DIFFERS between the primal model and its dual:
// primal state 0 jumps at rate 1 (hit probability 1−e⁻¹ ≈ 0.632 ≥ 0.5),
// dual state 0 jumps at rate 1/ρ₀ = 0.5 (1−e^{−0.5} ≈ 0.393 < 0.5).
func dualBranchModel(t *testing.T) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 1).Rate(1, 2, 1)
	b.Reward(0, 2).Reward(1, 1).Reward(2, 1)
	b.Label(1, "b").Label(2, "c")
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

// TestRewardIntervalUsesPrimalSats pins that the reward-interval branch of
// probUntil evaluates Φ and Ψ on the PRIMAL model and hands the resulting
// state-index sets to the dual checker. The sets are index sets, so they
// transfer across the duality transform (which preserves state identity);
// re-deriving them on the dual model would be wrong whenever a nested
// probabilistic subformula depends on the rates. Here Sat(Φ) = {0} on the
// primal but ∅ on the dual: with primal sets the value from state 0 is
// Pr{2T ∈ [1,2], T ~ Exp(1)} = e^{−1/2} − e^{−1}; with dual-derived sets
// it would be 0 (state 0 in neither Φ nor Ψ).
func TestRewardIntervalUsesPrimalSats(t *testing.T) {
	c := New(dualBranchModel(t), DefaultOptions())
	vals, err := c.Values(logic.MustParse("P=? [ (P>=0.5 [ X{t<=1} b ]) U{r in [1,2]} (b | c) ]"))
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-0.5) - math.Exp(-1)
	if math.Abs(vals[0]-want) > 1e-9 {
		t.Errorf("value from state 0 = %v, want e^{-1/2}-e^{-1} = %v (0 would mean Φ was recomputed on the dual)", vals[0], want)
	}
}

// TestNumericsReportProvesBudget runs one time-bounded check with a
// recorder attached and asserts the aggregate report: the ledgered
// truncation charges must sum to at most the configured ε, and the memo,
// pool and sweep instruments must have registered the work.
func TestNumericsReportProvesBudget(t *testing.T) {
	opts := DefaultOptions()
	opts.Obs = obs.New()
	c := New(tinyModel(t), opts)
	if _, err := c.Values(logic.MustParse("P=? [ a U{t<=2} c ]")); err != nil {
		t.Fatal(err)
	}
	rep := c.NumericsReport()
	if rep == nil {
		t.Fatal("report must be non-nil when a recorder is configured")
	}
	if !rep.BudgetOK {
		t.Errorf("budget %g must be within eps %g:\n%s", rep.BudgetTotal, opts.Epsilon, rep.Format())
	}
	if rep.BudgetTotal <= 0 {
		t.Error("a uniformisation run must ledger positive truncation mass")
	}
	if len(rep.Budget) == 0 {
		t.Error("no bounded ledger entries recorded")
	}
	if rep.Counters["sweep.products"] == 0 {
		t.Error("sweep.products counter not recorded")
	}
	if rep.Gauges["foxglynn.window"] == 0 {
		t.Error("foxglynn.window gauge not recorded")
	}
	if _, ok := rep.Gauges["memo.misses"]; !ok {
		t.Error("memo stats not folded into the report")
	}
	if _, ok := rep.Gauges["pool.gets"]; !ok {
		t.Error("pool stats not folded into the report")
	}
	// Present even when every region ran inline (0 on a 1-CPU machine).
	if _, ok := rep.Gauges["parallel.chunks"]; !ok {
		t.Error("parallel chunk count not folded into the report")
	}

	// A second identical query hits the memo; the hit-rate is visible.
	if _, err := c.Values(logic.MustParse("P=? [ a U{t<=2} c ]")); err != nil {
		t.Fatal(err)
	}
	rep = c.NumericsReport()
	if rep.Gauges["memo.hits"] == 0 {
		t.Errorf("repeated query must hit the memo: %v", rep.Gauges)
	}

	// A checker without a recorder reports nil — the disabled fast path.
	if r := New(tinyModel(t), DefaultOptions()).NumericsReport(); r != nil {
		t.Errorf("nil-Obs checker must report nil, got %+v", r)
	}
}
