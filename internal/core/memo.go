package core

import (
	"sync"

	"github.com/performability/csrl/internal/lump"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/sparse"
)

// memoCap bounds each memo table. The working set of a formula evaluation
// is tiny (a handful of (λ,t,ε) combinations from the corner evaluations
// of untilRectangle), so when a table overflows the cap it is simply
// cleared rather than tracked with an eviction order.
const memoCap = 64

type uniKey struct {
	m      *mrm.MRM
	lambda float64
}

type poissonKey struct {
	q, eps float64
}

// memo is a goroutine-safe cache for the intermediates shared between the
// repeated untilTimeReward corner evaluations of untilRectangle: Theorem 1
// reductions (keyed by the satisfaction sets), uniformised DTMC matrices
// (keyed by model identity and rate) and Fox–Glynn weight tables (keyed by
// Poisson parameter and accuracy). All methods are nil-receiver-safe: a
// nil *memo computes without caching, so a zero Checker literal still
// works. Memory visibility: every read and write of the maps happens
// under mu, so a value stored by one goroutine is safely published to any
// other goroutine that later looks it up.
//
// The concrete type satisfies both transient.Cache and sericola.Cache.
type memo struct {
	mu          sync.Mutex
	reductions  map[string]*mrm.UntilReduction         // guarded by mu
	uniformised map[uniKey]*sparse.CSR                 // guarded by mu
	poisson     map[poissonKey]*numeric.PoissonWeights // guarded by mu
	lumps       map[string]*lumpEntry                  // guarded by mu
	hits        int64                                  // guarded by mu
	misses      int64                                  // guarded by mu
}

func newMemo() *memo {
	return &memo{
		reductions:  make(map[string]*mrm.UntilReduction),
		uniformised: make(map[uniKey]*sparse.CSR),
		poisson:     make(map[poissonKey]*numeric.PoissonWeights),
		lumps:       make(map[string]*lumpEntry),
	}
}

// lumpEntry is one memoised outcome of the automatic lumping pre-pass for
// a respected-atom set: the quotient and the sub-checker evaluating on it,
// or — when the pre-pass declined (impulse rewards, capped refinement,
// trivial quotient) — a zero entry recording the decision so the pre-pass
// is not retried for the same atoms.
type lumpEntry struct {
	res *lump.Result
	sub *Checker
}

// lump returns the memoised pre-pass outcome for the atom key, building it
// on a miss. A nil memo returns nil: the zero Checker literal checks
// unlumped rather than re-quotienting on every call. The entry's quotient
// model anchors the sub-checker's own memo, so every downstream cache key
// incorporates the quotient by construction.
func (c *memo) lump(key string, build func() *lumpEntry) *lumpEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.lumps[key]; ok {
		c.hits++
		return e
	}
	c.misses++
	e := build()
	if len(c.lumps) >= memoCap {
		c.lumps = make(map[string]*lumpEntry)
	}
	c.lumps[key] = e
	return e
}

// Reduction returns the Theorem 1 reduction for (phi, psi) over m,
// computing it on a miss. The cached UntilReduction is shared between
// callers; it is immutable by convention.
func (c *memo) Reduction(m *mrm.MRM, phi, psi *mrm.StateSet) (*mrm.UntilReduction, error) {
	if c == nil {
		return mrm.ReduceForUntil(m, phi, psi)
	}
	key := phi.Key() + "|" + psi.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	if red, ok := c.reductions[key]; ok {
		c.hits++
		return red, nil
	}
	c.misses++
	red, err := mrm.ReduceForUntil(m, phi, psi)
	if err != nil {
		return nil, err
	}
	if len(c.reductions) >= memoCap {
		c.reductions = make(map[string]*mrm.UntilReduction)
	}
	c.reductions[key] = red
	return red, nil
}

// Uniformised implements transient.Cache and sericola.Cache.
func (c *memo) Uniformised(m *mrm.MRM, lambda float64) (*sparse.CSR, error) {
	if c == nil {
		return m.Uniformised(lambda)
	}
	key := uniKey{m: m, lambda: lambda}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.uniformised[key]; ok {
		c.hits++
		return p, nil
	}
	c.misses++
	p, err := m.Uniformised(lambda)
	if err != nil {
		return nil, err
	}
	if len(c.uniformised) >= memoCap {
		c.uniformised = make(map[uniKey]*sparse.CSR)
	}
	c.uniformised[key] = p
	return p, nil
}

// stats returns the cumulative hit/miss counts across all three tables.
// A nil memo reports zeroes.
func (c *memo) stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Poisson implements transient.Cache and sericola.Cache. Caching does not
// change the numerics: the table still drops the Poisson tails outside the
// Fox–Glynn window, and the charge duty stays with the caller of every hit
// and miss alike.
//
//numerics:truncates foxglynn/left-tail foxglynn/right-tail
func (c *memo) Poisson(q, eps float64) (*numeric.PoissonWeights, error) {
	if c == nil {
		return numeric.FoxGlynn(q, eps)
	}
	key := poissonKey{q: q, eps: eps}
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.poisson[key]; ok {
		c.hits++
		return w, nil
	}
	c.misses++
	w, err := numeric.FoxGlynn(q, eps)
	if err != nil {
		return nil, err
	}
	if len(c.poisson) >= memoCap {
		c.poisson = make(map[poissonKey]*numeric.PoissonWeights)
	}
	c.poisson[key] = w
	return w, nil
}
