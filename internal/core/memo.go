package core

import (
	"container/list"
	"sync"

	"github.com/performability/csrl/internal/lump"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/sparse"
)

// defaultMemoCap bounds each memo table when Options.MemoCap is unset. The
// working set of one formula evaluation is tiny (a handful of (λ,t,ε)
// combinations from the corner evaluations of untilRectangle), so 64 is
// generous for a one-shot CLI run; a long-running checker service raises
// it via Options.MemoCap to hold the hot tables of many recurring queries.
const defaultMemoCap = 64

type uniKey struct {
	m      *mrm.MRM
	lambda float64
}

// absKey identifies a derived absorbing model: the base model (pointer
// identity is sound here — the base is either the checker's own model or a
// memo-cached reduction, both pointer-stable for the checker's lifetime),
// the absorbing set and the reward-zeroing flag.
type absKey struct {
	m    *mrm.MRM
	set  string
	zero bool
}

type poissonKey struct {
	q, eps float64
}

// lruTable is one bounded memo table with least-recently-used eviction:
// a lookup refreshes the entry, an insert past the cap evicts the coldest
// entry alone. The previous clear-on-overflow policy wiped every hot
// Fox–Glynn/uniformisation entry the moment a 65th key arrived — fatal for
// a service whose whole point is keeping cross-request entries warm.
type lruTable[K comparable, V any] struct {
	cap   int
	m     map[K]*list.Element
	order *list.List // front = most recently used
}

type lruEntry[K comparable, V any] struct {
	k K
	v V
}

func newLRU[K comparable, V any](cap int) lruTable[K, V] {
	return lruTable[K, V]{cap: cap, m: make(map[K]*list.Element), order: list.New()}
}

// get returns the cached value and refreshes its recency.
func (t *lruTable[K, V]) get(k K) (V, bool) {
	if el, ok := t.m[k]; ok {
		t.order.MoveToFront(el)
		return el.Value.(lruEntry[K, V]).v, true
	}
	var zero V
	return zero, false
}

// put inserts a fresh entry, evicting the least-recently-used one when the
// table is full. It reports how many entries were evicted (0 or 1).
func (t *lruTable[K, V]) put(k K, v V) int64 {
	if el, ok := t.m[k]; ok {
		el.Value = lruEntry[K, V]{k: k, v: v}
		t.order.MoveToFront(el)
		return 0
	}
	var evicted int64
	if t.order.Len() >= t.cap {
		back := t.order.Back()
		t.order.Remove(back)
		delete(t.m, back.Value.(lruEntry[K, V]).k)
		evicted = 1
	}
	t.m[k] = t.order.PushFront(lruEntry[K, V]{k: k, v: v})
	return evicted
}

func (t *lruTable[K, V]) len() int { return t.order.Len() }

// MemoStats is a snapshot of the checker memo's cumulative traffic, the
// cache-health surface a long-running service exports per model: how many
// lookups hit, how many built a fresh entry, how many entries LRU eviction
// dropped, and how many live in the tables right now.
type MemoStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// memo is a goroutine-safe cache for the intermediates shared between the
// repeated untilTimeReward corner evaluations of untilRectangle — and, in
// service use, between concurrent and successive requests against the same
// model: Theorem 1 reductions (keyed by the satisfaction sets), uniformised
// DTMC matrices (keyed by model identity and rate), Fox–Glynn weight tables
// (keyed by Poisson parameter and accuracy) and lumping pre-pass outcomes
// (keyed by the respected atom set). Each table is LRU-bounded
// independently; see lruTable. All methods are nil-receiver-safe: a nil
// *memo computes without caching, so a zero Checker literal still works.
// Memory visibility: every read and write of the tables happens under mu,
// so a value stored by one goroutine is safely published to any other
// goroutine that later looks it up.
//
// The concrete type satisfies both transient.Cache and sericola.Cache.
type memo struct {
	mu          sync.Mutex
	reductions  lruTable[string, *mrm.UntilReduction]         // guarded by mu
	uniformised lruTable[uniKey, *sparse.CSR]                 // guarded by mu
	poisson     lruTable[poissonKey, *numeric.PoissonWeights] // guarded by mu
	lumps       lruTable[string, *lumpEntry]                  // guarded by mu
	absorbing   lruTable[absKey, *mrm.MRM]                    // guarded by mu
	hits        int64                                         // guarded by mu
	misses      int64                                         // guarded by mu
	evictions   int64                                         // guarded by mu
}

func newMemo(cap int) *memo {
	if cap <= 0 {
		cap = defaultMemoCap
	}
	return &memo{
		reductions:  newLRU[string, *mrm.UntilReduction](cap),
		uniformised: newLRU[uniKey, *sparse.CSR](cap),
		poisson:     newLRU[poissonKey, *numeric.PoissonWeights](cap),
		lumps:       newLRU[string, *lumpEntry](cap),
		absorbing:   newLRU[absKey, *mrm.MRM](cap),
	}
}

// lumpEntry is one memoised outcome of the automatic lumping pre-pass for
// a respected-atom set: the quotient and the sub-checker evaluating on it,
// or — when the pre-pass declined (impulse rewards, capped refinement,
// trivial quotient) — a zero entry recording the decision so the pre-pass
// is not retried for the same atoms. The sub-checker is stored without an
// obs recorder; lumpFor grafts the calling checker's recorder on at each
// use, so one cached quotient serves requests with distinct ledgers.
type lumpEntry struct {
	res *lump.Result
	sub *Checker
}

// lump returns the memoised pre-pass outcome for the atom key, building it
// on a miss. A nil memo returns nil: the zero Checker literal checks
// unlumped rather than re-quotienting on every call. The entry's quotient
// model anchors the sub-checker's own memo, so every downstream cache key
// incorporates the quotient by construction.
func (c *memo) lump(key string, build func() *lumpEntry) *lumpEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.lumps.get(key); ok {
		c.hits++
		return e
	}
	c.misses++
	e := build()
	c.evictions += c.lumps.put(key, e)
	return e
}

// Reduction returns the Theorem 1 reduction for (phi, psi) over m,
// computing it on a miss. The cached UntilReduction is shared between
// callers; it is immutable by convention.
func (c *memo) Reduction(m *mrm.MRM, phi, psi *mrm.StateSet) (*mrm.UntilReduction, error) {
	if c == nil {
		return mrm.ReduceForUntil(m, phi, psi)
	}
	key := phi.Key() + "|" + psi.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	if red, ok := c.reductions.get(key); ok {
		c.hits++
		return red, nil
	}
	c.misses++
	red, err := mrm.ReduceForUntil(m, phi, psi)
	if err != nil {
		return nil, err
	}
	c.evictions += c.reductions.put(key, red)
	return red, nil
}

// Uniformised implements transient.Cache and sericola.Cache.
func (c *memo) Uniformised(m *mrm.MRM, lambda float64) (*sparse.CSR, error) {
	if c == nil {
		return m.Uniformised(lambda)
	}
	key := uniKey{m: m, lambda: lambda}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.uniformised.get(key); ok {
		c.hits++
		return p, nil
	}
	c.misses++
	p, err := m.Uniformised(lambda)
	if err != nil {
		return nil, err
	}
	c.evictions += c.uniformised.put(key, p)
	return p, nil
}

// Absorbing implements transient.Cache: the model with the given set made
// absorbing, derived once per (base model, set, flag). Without this table
// every time-bounded until rebuilds the restricted model, whose fresh
// pointer then misses the pointer-keyed uniformised table — the classic
// way a service quietly re-uniformises the same chain on every request.
// The cached model is shared between callers; immutable by convention,
// like every MRM.
func (c *memo) Absorbing(m *mrm.MRM, set *mrm.StateSet, zeroReward bool) (*mrm.MRM, error) {
	if c == nil {
		return m.MakeAbsorbing(set, zeroReward)
	}
	key := absKey{m: m, set: set.Key(), zero: zeroReward}
	c.mu.Lock()
	defer c.mu.Unlock()
	if abs, ok := c.absorbing.get(key); ok {
		c.hits++
		return abs, nil
	}
	c.misses++
	abs, err := m.MakeAbsorbing(set, zeroReward)
	if err != nil {
		return nil, err
	}
	c.evictions += c.absorbing.put(key, abs)
	return abs, nil
}

// stats returns a snapshot of the cumulative hit/miss/eviction counts and
// the live entry total across all five tables. A nil memo reports zeroes.
func (c *memo) stats() MemoStats {
	if c == nil {
		return MemoStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return MemoStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.reductions.len() + c.uniformised.len() + c.poisson.len() + c.lumps.len() + c.absorbing.len(),
	}
}

// Poisson implements transient.Cache and sericola.Cache. Caching does not
// change the numerics: the table still drops the Poisson tails outside the
// Fox–Glynn window, and the charge duty stays with the caller of every hit
// and miss alike.
//
//numerics:truncates foxglynn/left-tail foxglynn/right-tail
func (c *memo) Poisson(q, eps float64) (*numeric.PoissonWeights, error) {
	if c == nil {
		return numeric.FoxGlynn(q, eps)
	}
	key := poissonKey{q: q, eps: eps}
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.poisson.get(key); ok {
		c.hits++
		return w, nil
	}
	c.misses++
	w, err := numeric.FoxGlynn(q, eps)
	if err != nil {
		return nil, err
	}
	c.evictions += c.poisson.put(key, w)
	return w, nil
}
