package logic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randFormula generates a random CSRL state formula of bounded depth —
// the generator behind the parser round-trip property test.
func randFormula(rng *rand.Rand, depth int) StateFormula {
	atoms := []string{"red", "green", "up", "call_idle", "x1"}
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return True{}
		case 1:
			return False{}
		default:
			return Atomic{Name: atoms[rng.Intn(len(atoms))]}
		}
	}
	switch rng.Intn(8) {
	case 0:
		return Not{Sub: randFormula(rng, depth-1)}
	case 1:
		return And{Left: randFormula(rng, depth-1), Right: randFormula(rng, depth-1)}
	case 2:
		return Or{Left: randFormula(rng, depth-1), Right: randFormula(rng, depth-1)}
	case 3:
		return Implies{Left: randFormula(rng, depth-1), Right: randFormula(rng, depth-1)}
	case 4:
		return Steady{Op: randOp(rng), Bound: randBound(rng), Sub: randFormula(rng, depth-1)}
	case 5:
		return Prob{Op: randOp(rng), Bound: randBound(rng), Path: Next{
			Time:   randInterval(rng),
			Reward: randInterval(rng),
			Sub:    randFormula(rng, depth-1),
		}}
	default:
		return Prob{Op: randOp(rng), Bound: randBound(rng), Path: Until{
			Time:   randInterval(rng),
			Reward: randInterval(rng),
			Left:   randFormula(rng, depth-1),
			Right:  randFormula(rng, depth-1),
		}}
	}
}

func randOp(rng *rand.Rand) ComparisonOp {
	return ComparisonOp(1 + rng.Intn(4))
}

// randBound picks probabilities with short decimal representations so the
// printed form parses back to the identical float.
func randBound(rng *rand.Rand) float64 {
	return float64(rng.Intn(101)) / 100
}

func randInterval(rng *rand.Rand) Interval {
	switch rng.Intn(4) {
	case 0:
		return Unbounded()
	case 1:
		return UpTo(float64(1 + rng.Intn(100)))
	case 2:
		return Interval{Lo: float64(1 + rng.Intn(10)), Hi: math.Inf(1)}
	default:
		lo := float64(rng.Intn(10))
		return Between(lo, lo+float64(1+rng.Intn(20)))
	}
}

// TestRandomFormulaRoundTrip: for arbitrary generated ASTs, the canonical
// String() form parses back to a formula with the identical canonical form
// (String is a right inverse of Parse on its own image).
func TestRandomFormulaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	f := func() bool {
		formula := randFormula(rng, 3)
		canon := formula.String()
		parsed, err := Parse(canon)
		if err != nil {
			t.Logf("failed to re-parse %q: %v", canon, err)
			return false
		}
		if parsed.String() != canon {
			t.Logf("round trip %q -> %q", canon, parsed.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRandomFormulaAtomsSubset: Atoms only reports propositions from the
// generator's alphabet and reports each at most once.
func TestRandomFormulaAtomsSubset(t *testing.T) {
	alphabet := map[string]bool{"red": true, "green": true, "up": true, "call_idle": true, "x1": true}
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		formula := randFormula(rng, 4)
		atoms := Atoms(formula)
		seen := make(map[string]bool)
		for _, a := range atoms {
			if !alphabet[a] || seen[a] {
				return false
			}
			seen[a] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
