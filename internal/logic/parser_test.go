package logic

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestParseAtomsAndBooleans(t *testing.T) {
	tests := []struct {
		give string
		want string // canonical String() output
	}{
		{"true", "true"},
		{"false", "false"},
		{"red", "red"},
		{"!red", "!red"},
		{"red & green", "red & green"},
		{"red && green", "red & green"},
		{"red | green", "red | green"},
		{"red || green", "red | green"},
		{"red => green", "red => green"},
		{"!(red | green)", "!(red | green)"},
		{"a & b & c", "(a & b) & c"},
		{"a | b & c", "a | (b & c)"}, // & binds tighter
		{"a => b => c", "a => (b => c)"},
		{"( a )", "a"},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			f, err := Parse(tt.give)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.give, err)
			}
			if got := f.String(); got != tt.want {
				t.Errorf("String = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParseProbabilisticOperators(t *testing.T) {
	tests := []string{
		"P>0.5 [ a U b ]",
		"P>=0.5 [ a U{t<=24} b ]",
		"P<0.1 [ a U{t<=24, r<=600} b ]",
		"P<=0.9 [ F{r<=600} b ]",
		"P=? [ X{t in [1,2], r<=3} b ]",
		"P>0 [ F (P>0.9 [ X c ]) ]",
		"S>=0.99 [ up ]",
		"S=? [ up & !failed ]",
	}
	for _, give := range tests {
		t.Run(give, func(t *testing.T) {
			f, err := Parse(give)
			if err != nil {
				t.Fatalf("Parse(%q): %v", give, err)
			}
			// Round-trip: the canonical form must re-parse to itself.
			canon := f.String()
			f2, err := Parse(canon)
			if err != nil {
				t.Fatalf("re-parse %q: %v", canon, err)
			}
			if f2.String() != canon {
				t.Errorf("round trip: %q -> %q", canon, f2.String())
			}
		})
	}
}

func TestParseBounds(t *testing.T) {
	f, err := Parse("P>0.5 [ a U{t<=24, r<=600} b ]")
	if err != nil {
		t.Fatal(err)
	}
	u := f.(Prob).Path.(Until)
	if u.Time != UpTo(24) {
		t.Errorf("time = %+v", u.Time)
	}
	if u.Reward != UpTo(600) {
		t.Errorf("reward = %+v", u.Reward)
	}

	f, err = Parse("P>0.5 [ a U{r in [2,6]} b ]")
	if err != nil {
		t.Fatal(err)
	}
	u = f.(Prob).Path.(Until)
	if !u.Time.IsUnbounded() {
		t.Errorf("time should be unbounded: %+v", u.Time)
	}
	if u.Reward != Between(2, 6) {
		t.Errorf("reward = %+v", u.Reward)
	}

	f, err = Parse("P>0.5 [ a U{t>=3} b ]")
	if err != nil {
		t.Fatal(err)
	}
	u = f.(Prob).Path.(Until)
	if u.Time.Lo != 3 || !math.IsInf(u.Time.Hi, 1) {
		t.Errorf("time = %+v", u.Time)
	}
}

func TestGloballyRewrite(t *testing.T) {
	// P>=0.8 [G{t<=5} ok] becomes P<=0.2 [F{t<=5} !ok].
	f, err := Parse("P>=0.8 [ G{t<=5} ok ]")
	if err != nil {
		t.Fatal(err)
	}
	p := f.(Prob)
	if p.Op != LessEq || math.Abs(p.Bound-0.2) > 1e-15 || p.Complement {
		t.Errorf("rewrite wrong: %+v", p)
	}
	u := p.Path.(Until)
	if _, ok := u.Left.(True); !ok {
		t.Errorf("left = %v", u.Left)
	}
	if _, ok := u.Right.(Not); !ok {
		t.Errorf("right = %v", u.Right)
	}
	// Query form keeps the complement flag.
	f, err = Parse("P=? [ G ok ]")
	if err != nil {
		t.Fatal(err)
	}
	if !f.(Prob).Complement {
		t.Error("query globally must set Complement")
	}
	if got := f.String(); got != "P=? [ G ok ]" {
		t.Errorf("String = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"P>0.5",
		"P>0.5 [ a U b",               // missing bracket
		"P>1.5 [ a U b ]",             // bound out of range
		"P>0.5 [ a V b ]",             // not an until
		"P>0.5 [ a U{x<=1} b ]",       // unknown bound name
		"P>0.5 [ a U{t<=1, t<=2} b ]", // duplicate bound
		"P>0.5 [ a U{t in [5,2]} b ]", // inverted interval
		"a &",
		"(a",
		"a ]",
		"P =! [ a U b ]",
		"1.2.3",
		"a @ b",
	}
	for _, give := range bad {
		if _, err := Parse(give); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", give)
		}
	}
	if _, err := Parse("P>0.5 [ a U{t<=1, t<=2} b ]"); !errors.Is(err, ErrSyntax) {
		t.Error("errors should wrap ErrSyntax")
	}
}

func TestComparisonOps(t *testing.T) {
	tests := []struct {
		op   ComparisonOp
		v, b float64
		want bool
	}{
		{Less, 1, 2, true},
		{Less, 2, 2, false},
		{LessEq, 2, 2, true},
		{Greater, 3, 2, true},
		{Greater, 2, 2, false},
		{GreaterEq, 2, 2, true},
	}
	for _, tt := range tests {
		if got := tt.op.Compare(tt.v, tt.b); got != tt.want {
			t.Errorf("%v.Compare(%v,%v) = %v", tt.op, tt.v, tt.b, got)
		}
	}
	if Less.Negate() != Greater || GreaterEq.Negate() != LessEq {
		t.Error("Negate wrong")
	}
}

func TestIntervalHelpers(t *testing.T) {
	if !Unbounded().IsUnbounded() {
		t.Error("Unbounded not unbounded")
	}
	if UpTo(5).IsUnbounded() || !UpTo(5).StartsAtZero() || !UpTo(5).Contains(5) || UpTo(5).Contains(5.1) {
		t.Error("UpTo wrong")
	}
	if Between(2, 1).Valid() || !Between(1, 2).Valid() {
		t.Error("Valid wrong")
	}
}

func TestAtoms(t *testing.T) {
	f := MustParse("P>0.5 [ (a | b) U{t<=1} (a & P<0.1 [ X c ]) ]")
	atoms := Atoms(f)
	want := map[string]bool{"a": true, "b": true, "c": true}
	if len(atoms) != 3 {
		t.Fatalf("Atoms = %v", atoms)
	}
	for _, a := range atoms {
		if !want[a] {
			t.Errorf("unexpected atom %q", a)
		}
	}
}

// Round-trip property: String() output of a parsed formula re-parses to an
// identical canonical form.
func TestRoundTripProperty(t *testing.T) {
	inputs := []string{
		"P>0.5 [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]",
		"P>0.5 [ F{r<=600} call_incoming ]",
		"P>0.5 [ F{t<=24} call_incoming ]",
		"S<0.2 [ !up => down ]",
		"P=? [ X{t in [0.5,1.5]} (a & !b) ]",
		"P<=0.1 [ G{t<=10} green ]",
	}
	idx := 0
	f := func() bool {
		give := inputs[idx%len(inputs)]
		idx++
		formula, err := Parse(give)
		if err != nil {
			return false
		}
		canon := formula.String()
		again, err := Parse(canon)
		if err != nil {
			return false
		}
		return again.String() == canon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: len(inputs)}); err != nil {
		t.Error(err)
	}
}
