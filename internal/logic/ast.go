// Package logic defines the continuous stochastic reward logic CSRL
// (Section 2.2 of the paper): state formulas over atomic propositions with
// boolean connectives, the probabilistic path operator P⋈p(·) over
// next- and until-path-formulas carrying a time interval I and a reward
// interval J, and the steady-state operator S⋈p(·). A recursive-descent
// parser for a PRISM-flavoured concrete syntax is provided in parser.go.
package logic

import (
	"fmt"
	"math"
	"strings"
)

// ComparisonOp is the probability-bound comparison ⋈ ∈ {<, ≤, >, ≥}.
type ComparisonOp int

// Comparison operators.
const (
	Less ComparisonOp = iota + 1
	LessEq
	Greater
	GreaterEq
)

// String renders the operator in concrete syntax.
func (op ComparisonOp) String() string {
	switch op {
	case Less:
		return "<"
	case LessEq:
		return "<="
	case Greater:
		return ">"
	case GreaterEq:
		return ">="
	default:
		return fmt.Sprintf("ComparisonOp(%d)", int(op))
	}
}

// Compare applies the operator to (value, bound).
func (op ComparisonOp) Compare(value, bound float64) bool {
	switch op {
	case Less:
		return value < bound
	case LessEq:
		return value <= bound
	case Greater:
		return value > bound
	case GreaterEq:
		return value >= bound
	default:
		return false
	}
}

// Negate returns the complement operator, used when rewriting G via F:
// P⋈p(G φ) ≡ P⋈̃(1−p)(F ¬φ) with ⋈̃ the negated comparison.
func (op ComparisonOp) Negate() ComparisonOp {
	switch op {
	case Less:
		return Greater
	case LessEq:
		return GreaterEq
	case Greater:
		return Less
	case GreaterEq:
		return LessEq
	default:
		return op
	}
}

// Interval is a closed interval [Lo, Hi] on the non-negative reals;
// Hi = +Inf encodes an unbounded interval. The zero value is invalid; use
// Unbounded or UpTo.
type Interval struct {
	Lo, Hi float64
}

// Unbounded returns [0, ∞) — the vacuous constraint.
func Unbounded() Interval { return Interval{Lo: 0, Hi: math.Inf(1)} }

// UpTo returns [0, hi].
func UpTo(hi float64) Interval { return Interval{Lo: 0, Hi: hi} }

// Between returns [lo, hi].
func Between(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi} }

// IsUnbounded reports whether the interval is [0, ∞).
func (iv Interval) IsUnbounded() bool { return iv.Lo == 0 && math.IsInf(iv.Hi, 1) }

// StartsAtZero reports whether Lo == 0 (the restriction of the paper's
// computational procedures).
func (iv Interval) StartsAtZero() bool { return iv.Lo == 0 }

// Valid reports whether 0 ≤ Lo ≤ Hi.
func (iv Interval) Valid() bool { return iv.Lo >= 0 && iv.Lo <= iv.Hi }

// Contains reports whether v ∈ [Lo, Hi].
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// String renders the interval in the concrete syntax of bounds.
func (iv Interval) String() string {
	if iv.IsUnbounded() {
		return ""
	}
	if iv.Lo == 0 {
		return fmt.Sprintf("<=%g", iv.Hi)
	}
	if math.IsInf(iv.Hi, 1) {
		return fmt.Sprintf(">=%g", iv.Lo)
	}
	return fmt.Sprintf(" in [%g,%g]", iv.Lo, iv.Hi)
}

// StateFormula is a CSRL state formula.
type StateFormula interface {
	fmt.Stringer
	stateFormula()
}

// PathFormula is a CSRL path formula (argument of the P operator).
type PathFormula interface {
	fmt.Stringer
	pathFormula()
}

// True is the formula satisfied by every state.
type True struct{}

// False is the formula satisfied by no state (sugar for ¬true).
type False struct{}

// Atomic is an atomic proposition from the model's labelling.
type Atomic struct{ Name string }

// Not is negation ¬Φ.
type Not struct{ Sub StateFormula }

// And is conjunction Φ ∧ Ψ (definable from ¬ and ∨; kept first-class).
type And struct{ Left, Right StateFormula }

// Or is disjunction Φ ∨ Ψ.
type Or struct{ Left, Right StateFormula }

// Implies is implication Φ → Ψ.
type Implies struct{ Left, Right StateFormula }

// Prob is the probabilistic path operator P⋈p(φ). With Query set, the
// formula carries no bound and evaluates to the probability itself (used by
// the CLI in "P=?" form, following established model-checker practice).
// With Complement set, the semantics are applied to 1 − Pr(φ); the parser
// uses this to reduce the globally operator G to F.
type Prob struct {
	Op         ComparisonOp
	Bound      float64
	Query      bool
	Complement bool
	Path       PathFormula
}

// Steady is the steady-state operator S⋈p(Φ); Query as for Prob.
type Steady struct {
	Op    ComparisonOp
	Bound float64
	Query bool
	Sub   StateFormula
}

// Next is the path formula X^I_J Φ.
type Next struct {
	Time   Interval
	Reward Interval
	Sub    StateFormula
}

// Until is the path formula Φ U^I_J Ψ.
type Until struct {
	Time   Interval
	Reward Interval
	Left   StateFormula
	Right  StateFormula
}

func (True) stateFormula()    {}
func (False) stateFormula()   {}
func (Atomic) stateFormula()  {}
func (Not) stateFormula()     {}
func (And) stateFormula()     {}
func (Or) stateFormula()      {}
func (Implies) stateFormula() {}
func (Prob) stateFormula()    {}
func (Steady) stateFormula()  {}

func (Next) pathFormula()  {}
func (Until) pathFormula() {}

// String renders formulas in the concrete syntax accepted by Parse.
func (True) String() string     { return "true" }
func (False) String() string    { return "false" }
func (a Atomic) String() string { return a.Name }
func (n Not) String() string    { return "!" + paren(n.Sub) }
func (a And) String() string    { return paren(a.Left) + " & " + paren(a.Right) }
func (o Or) String() string     { return paren(o.Left) + " | " + paren(o.Right) }
func (i Implies) String() string {
	return paren(i.Left) + " => " + paren(i.Right)
}

func (p Prob) String() string {
	var b strings.Builder
	b.WriteString("P")
	if p.Query {
		b.WriteString("=?")
	} else {
		fmt.Fprintf(&b, "%v%g", p.Op, p.Bound)
	}
	b.WriteString(" [ ")
	if p.Complement {
		// Re-sugar the complemented eventually back into G where possible.
		if u, ok := p.Path.(Until); ok {
			if _, isTrue := u.Left.(True); isTrue {
				if neg, isNot := u.Right.(Not); isNot {
					b.WriteString("G" + bounds(u.Time, u.Reward) + " " + paren(neg.Sub))
					b.WriteString(" ]")
					return b.String()
				}
			}
		}
		b.WriteString("!(" + p.Path.String() + ")")
	} else {
		b.WriteString(p.Path.String())
	}
	b.WriteString(" ]")
	return b.String()
}

func (s Steady) String() string {
	if s.Query {
		return fmt.Sprintf("S=? [ %s ]", s.Sub)
	}
	return fmt.Sprintf("S%v%g [ %s ]", s.Op, s.Bound, s.Sub)
}

func (n Next) String() string {
	return "X" + bounds(n.Time, n.Reward) + " " + paren(n.Sub)
}

func (u Until) String() string {
	if _, ok := u.Left.(True); ok {
		return "F" + bounds(u.Time, u.Reward) + " " + paren(u.Right)
	}
	return paren(u.Left) + " U" + bounds(u.Time, u.Reward) + " " + paren(u.Right)
}

func bounds(time, reward Interval) string {
	if time.IsUnbounded() && reward.IsUnbounded() {
		return ""
	}
	var parts []string
	if !time.IsUnbounded() {
		parts = append(parts, "t"+time.String())
	}
	if !reward.IsUnbounded() {
		parts = append(parts, "r"+reward.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// paren wraps composite sub-formulas in parentheses for unambiguous output.
func paren(f StateFormula) string {
	switch f.(type) {
	case True, False, Atomic, Not, Prob, Steady:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// Walk applies fn to f and every state sub-formula, depth-first.
func Walk(f StateFormula, fn func(StateFormula)) {
	fn(f)
	switch t := f.(type) {
	case Not:
		Walk(t.Sub, fn)
	case And:
		Walk(t.Left, fn)
		Walk(t.Right, fn)
	case Or:
		Walk(t.Left, fn)
		Walk(t.Right, fn)
	case Implies:
		Walk(t.Left, fn)
		Walk(t.Right, fn)
	case Steady:
		Walk(t.Sub, fn)
	case Prob:
		switch p := t.Path.(type) {
		case Next:
			Walk(p.Sub, fn)
		case Until:
			Walk(p.Left, fn)
			Walk(p.Right, fn)
		}
	}
}

// PathAtoms returns the distinct atomic propositions occurring in the
// state subformulas of a path formula — the respected-atom set for
// formula-dependent lumping of a bare path query.
func PathAtoms(f PathFormula) []string {
	return Atoms(Prob{Path: f})
}

// Atoms returns the distinct atomic propositions occurring in f.
func Atoms(f StateFormula) []string {
	seen := make(map[string]bool)
	var out []string
	Walk(f, func(g StateFormula) {
		if a, ok := g.(Atomic); ok && !seen[a.Name] {
			seen[a.Name] = true
			out = append(out, a.Name)
		}
	})
	return out
}
