package logic

import (
	"errors"
	"fmt"
	"math"
	"strconv"
)

// ErrSyntax reports a parse failure.
var ErrSyntax = errors.New("logic: syntax error")

// Parse parses a CSRL state formula from its concrete syntax. Examples:
//
//	P>0.5 [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]   (Q3)
//	P>0.5 [ F{r<=600} call_incoming ]                              (Q1)
//	P>0.5 [ F{t<=24} call_incoming ]                               (Q2)
//	P=? [ X{t in [1,2]} red ]
//	S>=0.9 [ !failed ]
//	P<=0.1 [ G{t<=10} green ]
//
// Bounds are written in braces: t for the time interval I, r for the
// reward interval J; "t<=24" means [0,24], "t>=2" means [2,∞),
// "t in [2,4]" means [2,4]. The temporal operators are U (until),
// X (next), F (eventually) and G (globally; rewritten via F).
func Parse(input string) (StateFormula, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	f, err := p.stateFormula()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input starting at %q", p.peek().text)
	}
	return f, nil
}

// MustParse is Parse that panics on error, for tests and examples with
// literal formulas.
func MustParse(input string) StateFormula {
	f, err := Parse(input)
	if err != nil {
		//lint:ignore bannedcall panicking on malformed literals is MustParse's documented contract (regexp.MustCompile convention)
		panic(err)
	}
	return f
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) peek() token { return p.toks[p.pos] }

// next consumes and returns the current token; the trailing EOF token is
// sticky so error paths can keep reporting positions safely.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) at(k tokenKind) bool {
	return p.peek().kind == k
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, p.errorf("expected %v, got %v", k, describe(t))
	}
	return t, nil
}

func describe(t token) string {
	switch t.kind {
	case tokIdent, tokNumber:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.kind.String()
	}
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%w: offset %d: %s", ErrSyntax, p.peek().pos, fmt.Sprintf(format, args...))
}

// stateFormula := implies
func (p *parser) stateFormula() (StateFormula, error) {
	return p.implies()
}

// implies := or ("=>" implies)?   — right associative.
func (p *parser) implies() (StateFormula, error) {
	left, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.at(tokImplies) {
		p.next()
		right, err := p.implies()
		if err != nil {
			return nil, err
		}
		return Implies{Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *parser) or() (StateFormula, error) {
	left, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.at(tokOr) {
		p.next()
		right, err := p.and()
		if err != nil {
			return nil, err
		}
		left = Or{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) and() (StateFormula, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(tokAnd) {
		p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = And{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) unary() (StateFormula, error) {
	if p.at(tokNot) {
		p.next()
		sub, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{Sub: sub}, nil
	}
	return p.primary()
}

func (p *parser) primary() (StateFormula, error) {
	t := p.next()
	switch t.kind {
	case tokLParen:
		f, err := p.stateFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	case tokIdent:
		switch t.text {
		case "true":
			return True{}, nil
		case "false":
			return False{}, nil
		case "P":
			return p.probOperator()
		case "S":
			return p.steadyOperator()
		default:
			return Atomic{Name: t.text}, nil
		}
	default:
		return nil, p.errorf("expected a state formula, got %v", describe(t))
	}
}

// probBound := "=?" | cmp number
func (p *parser) probBound() (op ComparisonOp, bound float64, query bool, err error) {
	t := p.next()
	switch t.kind {
	case tokQuery:
		return 0, 0, true, nil
	case tokLess:
		op = Less
	case tokLessEq:
		op = LessEq
	case tokGreater:
		op = Greater
	case tokGreaterEq:
		op = GreaterEq
	default:
		return 0, 0, false, p.errorf("expected probability bound, got %v", describe(t))
	}
	num, err := p.expect(tokNumber)
	if err != nil {
		return 0, 0, false, err
	}
	if num.num < 0 || num.num > 1 {
		return 0, 0, false, p.errorf("probability bound %g outside [0,1]", num.num)
	}
	return op, num.num, false, nil
}

func (p *parser) probOperator() (StateFormula, error) {
	op, bound, query, err := p.probBound()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	path, complement, err := p.pathFormula()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	pr := Prob{Op: op, Bound: bound, Query: query, Path: path, Complement: complement}
	if complement && !query {
		// P⋈p(G φ) ≡ P⋈̃(1−p)(F ¬φ); fold the complement into the bound so
		// the checker sees a plain until. Keep Complement for queries.
		// Snap the folded bound to the shortest decimal (1−0.9 is
		// 0.09999…98 in binary; the user meant 0.1).
		pr.Op = op.Negate()
		folded, err := strconv.ParseFloat(strconv.FormatFloat(1-bound, 'g', 15, 64), 64)
		if err != nil {
			folded = 1 - bound
		}
		pr.Bound = folded
		pr.Complement = false
	}
	return pr, nil
}

func (p *parser) steadyOperator() (StateFormula, error) {
	op, bound, query, err := p.probBound()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	sub, err := p.stateFormula()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	return Steady{Op: op, Bound: bound, Query: query, Sub: sub}, nil
}

// pathFormula parses X/F/G-prefixed formulas or a binary until. The second
// return value reports that the caller must complement the probability
// (globally operator).
func (p *parser) pathFormula() (PathFormula, bool, error) {
	if p.at(tokIdent) {
		t := p.peek()
		switch t.text {
		case "X", "F", "G":
			p.next()
			time, reward, err := p.boundSpec()
			if err != nil {
				return nil, false, err
			}
			sub, err := p.stateFormula()
			if err != nil {
				return nil, false, err
			}
			switch t.text {
			case "X":
				return Next{Time: time, Reward: reward, Sub: sub}, false, nil
			case "F":
				return Until{Time: time, Reward: reward, Left: True{}, Right: sub}, false, nil
			default: // G φ ≡ ¬F ¬φ at path level
				return Until{Time: time, Reward: reward, Left: True{}, Right: Not{Sub: sub}}, true, nil
			}
		}
	}
	left, err := p.stateFormula()
	if err != nil {
		return nil, false, err
	}
	u, err := p.expect(tokIdent)
	if err != nil || u.text != "U" {
		return nil, false, p.errorf("expected 'U' in until path formula")
	}
	time, reward, err := p.boundSpec()
	if err != nil {
		return nil, false, err
	}
	right, err := p.stateFormula()
	if err != nil {
		return nil, false, err
	}
	return Until{Time: time, Reward: reward, Left: left, Right: right}, false, nil
}

// boundSpec := ε | "{" bound ("," bound)* "}"
// bound     := ("t"|"r") (cmp number | "in" "[" number "," number "]")
func (p *parser) boundSpec() (time, reward Interval, err error) {
	time, reward = Unbounded(), Unbounded()
	if !p.at(tokLBrace) {
		return time, reward, nil
	}
	p.next()
	seen := map[string]bool{}
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return time, reward, err
		}
		if id.text != "t" && id.text != "r" {
			return time, reward, p.errorf("bound must start with 't' or 'r', got %q", id.text)
		}
		if seen[id.text] {
			return time, reward, p.errorf("duplicate %q bound", id.text)
		}
		seen[id.text] = true
		iv, err := p.boundInterval()
		if err != nil {
			return time, reward, err
		}
		if id.text == "t" {
			time = iv
		} else {
			reward = iv
		}
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return time, reward, err
	}
	return time, reward, nil
}

func (p *parser) boundInterval() (Interval, error) {
	t := p.next()
	switch t.kind {
	case tokLessEq, tokLess:
		num, err := p.expect(tokNumber)
		if err != nil {
			return Interval{}, err
		}
		return UpTo(num.num), nil
	case tokGreaterEq, tokGreater:
		num, err := p.expect(tokNumber)
		if err != nil {
			return Interval{}, err
		}
		return Interval{Lo: num.num, Hi: math.Inf(1)}, nil
	case tokIdent:
		if t.text != "in" {
			return Interval{}, p.errorf("expected comparison or 'in', got %q", t.text)
		}
		if _, err := p.expect(tokLBracket); err != nil {
			return Interval{}, err
		}
		lo, err := p.expect(tokNumber)
		if err != nil {
			return Interval{}, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return Interval{}, err
		}
		hi, err := p.expect(tokNumber)
		if err != nil {
			return Interval{}, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return Interval{}, err
		}
		iv := Between(lo.num, hi.num)
		if !iv.Valid() {
			return Interval{}, p.errorf("invalid interval [%g,%g]", lo.num, hi.num)
		}
		return iv, nil
	default:
		return Interval{}, p.errorf("expected bound, got %v", describe(t))
	}
}
