package logic

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLBrace
	tokRBrace
	tokComma
	tokNot
	tokAnd
	tokOr
	tokImplies
	tokLess
	tokLessEq
	tokGreater
	tokGreaterEq
	tokQuery // "=?"
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokNot:
		return "'!'"
	case tokAnd:
		return "'&'"
	case tokOr:
		return "'|'"
	case tokImplies:
		return "'=>'"
	case tokLess:
		return "'<'"
	case tokLessEq:
		return "'<='"
	case tokGreater:
		return "'>'"
	case tokGreaterEq:
		return "'>='"
	case tokQuery:
		return "'=?'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

// lex tokenises the input; errors carry the byte offset.
func lex(input string) ([]token, error) {
	var toks []token
	runes := []rune(input)
	i := 0
	for i < len(runes) {
		c := runes[i]
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, pos: i})
			i++
		case c == '[':
			toks = append(toks, token{kind: tokLBracket, pos: i})
			i++
		case c == ']':
			toks = append(toks, token{kind: tokRBracket, pos: i})
			i++
		case c == '{':
			toks = append(toks, token{kind: tokLBrace, pos: i})
			i++
		case c == '}':
			toks = append(toks, token{kind: tokRBrace, pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, pos: i})
			i++
		case c == '!':
			toks = append(toks, token{kind: tokNot, pos: i})
			i++
		case c == '&':
			toks = append(toks, token{kind: tokAnd, pos: i})
			i++
			if i < len(runes) && runes[i] == '&' { // accept && as &
				i++
			}
		case c == '|':
			toks = append(toks, token{kind: tokOr, pos: i})
			i++
			if i < len(runes) && runes[i] == '|' { // accept || as |
				i++
			}
		case c == '=':
			if i+1 < len(runes) && runes[i+1] == '>' {
				toks = append(toks, token{kind: tokImplies, pos: i})
				i += 2
			} else if i+1 < len(runes) && runes[i+1] == '?' {
				toks = append(toks, token{kind: tokQuery, pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("logic: offset %d: unexpected '='", i)
			}
		case c == '<':
			if i+1 < len(runes) && runes[i+1] == '=' {
				toks = append(toks, token{kind: tokLessEq, pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokLess, pos: i})
				i++
			}
		case c == '>':
			if i+1 < len(runes) && runes[i+1] == '=' {
				toks = append(toks, token{kind: tokGreaterEq, pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokGreater, pos: i})
				i++
			}
		case unicode.IsDigit(c) || c == '.':
			j := i
			for j < len(runes) && (unicode.IsDigit(runes[j]) || runes[j] == '.' ||
				runes[j] == 'e' || runes[j] == 'E' ||
				((runes[j] == '+' || runes[j] == '-') && j > i && (runes[j-1] == 'e' || runes[j-1] == 'E'))) {
				j++
			}
			text := string(runes[i:j])
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("logic: offset %d: bad number %q", i, text)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: v, pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(runes) && (unicode.IsLetter(runes[j]) || unicode.IsDigit(runes[j]) || runes[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: string(runes[i:j]), pos: i})
			i = j
		default:
			return nil, fmt.Errorf("logic: offset %d: unexpected character %q", i, string(c))
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(runes)})
	return toks, nil
}
