package graph

import (
	"reflect"
	"sort"
	"testing"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sparse"
)

func digraph(t *testing.T, n int, edges [][2]int) *Digraph {
	t.Helper()
	ts := make([]sparse.Triplet, 0, len(edges))
	for _, e := range edges {
		ts = append(ts, sparse.Triplet{Row: e[0], Col: e[1], Val: 1})
	}
	m, err := sparse.NewFromTriplets(n, ts)
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	return FromRates(m)
}

func TestBackwardReachable(t *testing.T) {
	// 0→1→2, 3→2, 4 isolated.
	g := digraph(t, 5, [][2]int{{0, 1}, {1, 2}, {3, 2}})
	all := mrm.NewStateSet(5).Complement()
	target := mrm.NewStateSetOf(5, 2)
	got := g.BackwardReachable(all, target)
	want := mrm.NewStateSetOf(5, 0, 1, 2, 3)
	if !got.Equal(want) {
		t.Errorf("reach = %v, want %v", got, want)
	}
	// Restrict through-set: block state 1.
	through := mrm.NewStateSetOf(5, 0, 3)
	got = g.BackwardReachable(through, target)
	want = mrm.NewStateSetOf(5, 2, 3)
	if !got.Equal(want) {
		t.Errorf("restricted reach = %v, want %v", got, want)
	}
}

func TestProb0Prob1(t *testing.T) {
	// 0→1, 0→3, 1→2; phi={0,1}, psi={2}.
	// From 0: may go to 3 (dead end) → prob in (0,1). From 1: must reach 2.
	g := digraph(t, 4, [][2]int{{0, 1}, {0, 3}, {1, 2}})
	phi := mrm.NewStateSetOf(4, 0, 1)
	psi := mrm.NewStateSetOf(4, 2)
	p0 := Prob0(g, phi, psi)
	if !p0.Equal(mrm.NewStateSetOf(4, 3)) {
		t.Errorf("Prob0 = %v, want {3}", p0)
	}
	p1 := Prob1(g, phi, psi, p0)
	if !p1.Equal(mrm.NewStateSetOf(4, 1, 2)) {
		t.Errorf("Prob1 = %v, want {1, 2}", p1)
	}
}

func TestProb1CycleEscape(t *testing.T) {
	// 0↔1 cycle with escape 1→2 (psi): from both 0 and 1 the until holds
	// almost surely.
	g := digraph(t, 3, [][2]int{{0, 1}, {1, 0}, {1, 2}})
	phi := mrm.NewStateSetOf(3, 0, 1)
	psi := mrm.NewStateSetOf(3, 2)
	p0 := Prob0(g, phi, psi)
	if !p0.IsEmpty() {
		t.Fatalf("Prob0 = %v, want empty", p0)
	}
	p1 := Prob1(g, phi, psi, p0)
	if p1.Len() != 3 {
		t.Errorf("Prob1 = %v, want all states", p1)
	}
}

func normalise(comps [][]int) [][]int {
	for _, c := range comps {
		sort.Ints(c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

func TestSCCs(t *testing.T) {
	// Two cycles {0,1} and {2,3,4}, plus bridge 1→2 and a sink 5.
	g := digraph(t, 6, [][2]int{
		{0, 1}, {1, 0},
		{1, 2},
		{2, 3}, {3, 4}, {4, 2},
		{4, 5},
	})
	got := normalise(g.SCCs())
	want := [][]int{{0, 1}, {2, 3, 4}, {5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SCCs = %v, want %v", got, want)
	}
}

func TestBSCCs(t *testing.T) {
	g := digraph(t, 6, [][2]int{
		{0, 1}, {1, 0},
		{1, 2},
		{2, 3}, {3, 4}, {4, 2},
		{4, 5},
	})
	got := normalise(g.BSCCs())
	want := [][]int{{5}} // only the absorbing sink is bottom
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BSCCs = %v, want %v", got, want)
	}

	// A closed cycle is a BSCC.
	g2 := digraph(t, 3, [][2]int{{0, 1}, {1, 2}, {2, 1}})
	got = normalise(g2.BSCCs())
	want = [][]int{{1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BSCCs = %v, want %v", got, want)
	}
}

func TestSCCsDeepChain(t *testing.T) {
	// A long path must not overflow anything (iterative Tarjan).
	const n = 200_000
	ts := make([]sparse.Triplet, 0, n-1)
	for i := 0; i < n-1; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i + 1, Val: 1})
	}
	m, err := sparse.NewFromTriplets(n, ts)
	if err != nil {
		t.Fatal(err)
	}
	g := FromRates(m)
	comps := g.SCCs()
	if len(comps) != n {
		t.Errorf("got %d components, want %d", len(comps), n)
	}
	bs := g.BSCCs()
	if len(bs) != 1 || bs[0][0] != n-1 {
		t.Errorf("BSCCs = %v, want [[%d]]", len(bs), n-1)
	}
}
