// Package graph implements the qualitative graph analyses used by the model
// checker: backward reachability (Prob0 precomputation), the Prob1 fixpoint,
// Tarjan's strongly-connected-components algorithm and bottom-SCC (BSCC)
// detection for steady-state analysis.
package graph

import (
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sparse"
)

// Digraph is an adjacency-list view of the non-zero structure of a rate
// matrix.
type Digraph struct {
	n   int
	adj [][]int // successors
	rev [][]int // predecessors
}

// FromRates builds the underlying digraph of a rate matrix.
func FromRates(r *sparse.CSR) *Digraph {
	n := r.Dim()
	g := &Digraph{
		n:   n,
		adj: make([][]int, n),
		rev: make([][]int, n),
	}
	r.Each(func(i, j int, v float64) {
		if v > 0 && i != j {
			g.adj[i] = append(g.adj[i], j)
			g.rev[j] = append(g.rev[j], i)
		}
	})
	return g
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// Successors returns the successor list of v (shared; do not modify).
func (g *Digraph) Successors(v int) []int { return g.adj[v] }

// Predecessors returns the predecessor list of v (shared; do not modify).
func (g *Digraph) Predecessors(v int) []int { return g.rev[v] }

// BackwardReachable returns the set of states that can reach `target` via
// paths whose intermediate states all lie in `through` (the target states
// themselves are always included). This is the standard precomputation for
// until formulas: with through = Sat(Φ) and target = Sat(Ψ) it yields the
// complement of Prob0(Φ U Ψ).
func (g *Digraph) BackwardReachable(through, target *mrm.StateSet) *mrm.StateSet {
	reach := target.Clone()
	queue := target.Slice()
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range g.rev[v] {
			if !reach.Contains(u) && through.Contains(u) {
				reach.Add(u)
				queue = append(queue, u)
			}
		}
	}
	return reach
}

// Prob0 returns the set of states from which Φ U Ψ holds with probability
// exactly 0, i.e. the states that cannot reach Ψ through Φ-states.
func Prob0(g *Digraph, phi, psi *mrm.StateSet) *mrm.StateSet {
	return g.BackwardReachable(phi, psi).Complement()
}

// Prob1 returns the set of states from which Φ U Ψ holds with probability
// exactly 1. Standard fixpoint: iteratively remove states that can escape
// to a state with positive probability of never satisfying the until.
func Prob1(g *Digraph, phi, psi, prob0 *mrm.StateSet) *mrm.StateSet {
	// Start from the candidate set ¬Prob0 and repeatedly remove states that
	// have a transition leaving the candidate set while not being in Ψ, or
	// that can reach such a state through Φ∧¬Ψ states.
	candidate := prob0.Complement()
	for {
		// bad: states in candidate\Ψ with a successor outside candidate.
		bad := mrm.NewStateSet(g.n)
		candidate.Each(func(v int) {
			if psi.Contains(v) {
				return
			}
			for _, u := range g.adj[v] {
				if !candidate.Contains(u) {
					bad.Add(v)
					return
				}
			}
		})
		if bad.IsEmpty() {
			return candidate
		}
		// Remove bad states and everything that reaches them through
		// candidate Φ∧¬Ψ states.
		through := candidate.Intersect(phi).Minus(psi)
		infected := g.BackwardReachable(through, bad)
		candidate = candidate.Minus(infected)
	}
}

// SCCs returns the strongly connected components of the digraph using
// Tarjan's algorithm (iterative, so deep graphs do not overflow the stack).
// Components are returned in reverse topological order.
func (g *Digraph) SCCs() [][]int {
	const unvisited = -1
	var (
		index    = 0
		ids      = make([]int, g.n)
		low      = make([]int, g.n)
		onStack  = make([]bool, g.n)
		stack    []int
		comps    [][]int
		callFrom = make([]int, g.n) // DFS resume position per vertex
	)
	for i := range ids {
		ids[i] = unvisited
	}
	for root := 0; root < g.n; root++ {
		if ids[root] != unvisited {
			continue
		}
		// Iterative Tarjan with an explicit work stack.
		work := []int{root}
		ids[root] = index
		low[root] = index
		index++
		stack = append(stack, root)
		onStack[root] = true
		callFrom[root] = 0
		for len(work) > 0 {
			v := work[len(work)-1]
			advanced := false
			for callFrom[v] < len(g.adj[v]) {
				u := g.adj[v][callFrom[v]]
				callFrom[v]++
				if ids[u] == unvisited {
					ids[u] = index
					low[u] = index
					index++
					stack = append(stack, u)
					onStack[u] = true
					callFrom[u] = 0
					work = append(work, u)
					advanced = true
					break
				}
				if onStack[u] && ids[u] < low[v] {
					low[v] = ids[u]
				}
			}
			if advanced {
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == ids[v] {
				var comp []int
				for {
					u := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[u] = false
					comp = append(comp, u)
					if u == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// BSCCs returns the bottom strongly connected components: SCCs with no
// transition leaving the component. Every CTMC path eventually enters a
// BSCC, which is what the steady-state operator builds on.
func (g *Digraph) BSCCs() [][]int {
	comps := g.SCCs()
	compOf := make([]int, g.n)
	for ci, comp := range comps {
		for _, v := range comp {
			compOf[v] = ci
		}
	}
	var out [][]int
	for ci, comp := range comps {
		bottom := true
	scan:
		for _, v := range comp {
			for _, u := range g.adj[v] {
				if compOf[u] != ci {
					bottom = false
					break scan
				}
			}
		}
		if bottom {
			out = append(out, comp)
		}
	}
	return out
}
