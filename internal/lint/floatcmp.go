package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatcmp flags == and != between floating-point operands. Exact float
// equality is almost never what a numerical procedure wants: iterates that
// agree to 1e-16 still compare unequal, and probabilities computed along
// different paths rarely bit-match. Approved patterns stay silent:
//
//   - comparison against a literal/constant 0 (the sparse-skip idiom
//     `if x == 0 { continue }` on values that were assigned exactly);
//   - the NaN self-test `x != x`;
//   - comparisons inside tolerance helpers themselves (ApproxEqual and
//     friends), which need exact semantics for infinities.
var Floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between floating-point operands; use numeric.ApproxEqual or an explicit tolerance",
	Run:  runFloatcmp,
}

// approvedCmpFuncs are tolerance helpers allowed to compare floats exactly
// (they handle the infinity/NaN edge cases that motivate the exception).
var approvedCmpFuncs = map[string]bool{
	"ApproxEqual": true, "approxEqual": true,
	"AlmostEqual": true, "almostEqual": true,
}

func runFloatcmp(pass *Pass) error {
	pass.Inspect(Mask((*ast.BinaryExpr)(nil)), func(n ast.Node, stack []ast.Node) {
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return
		}
		tx, ty := pass.TypeOf(be.X), pass.TypeOf(be.Y)
		if tx == nil || ty == nil || (!isFloat(tx) && !isFloat(ty)) {
			return
		}
		if isZeroConst(pass.Info, be.X) || isZeroConst(pass.Info, be.Y) {
			return
		}
		if types.ExprString(unparen(be.X)) == types.ExprString(unparen(be.Y)) {
			return // NaN self-test x != x
		}
		if approvedCmpFuncs[enclosingFuncName(stack)] {
			return
		}
		pass.ReportRangef(be.OpPos, be.End(), "floating-point %s comparison on %s; use numeric.ApproxEqual or an explicit tolerance",
			be.Op, types.ExprString(be.X))
	})
	return nil
}
