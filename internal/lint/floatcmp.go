package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatcmp flags == and != between floating-point operands. Exact float
// equality is almost never what a numerical procedure wants: iterates that
// agree to 1e-16 still compare unequal, and probabilities computed along
// different paths rarely bit-match. Approved patterns stay silent:
//
//   - comparison against a literal/constant 0 (the sparse-skip idiom
//     `if x == 0 { continue }` on values that were assigned exactly);
//   - the NaN self-test `x != x`;
//   - comparisons inside tolerance helpers themselves (ApproxEqual and
//     friends), which need exact semantics for infinities — whether the
//     helper is a declared function, a function literal bound to an
//     approved name (cmp := numeric.ApproxEqual-style local aliases), or
//     a bool-returning wrapper that delegates its finite cases to an
//     approved helper.
var Floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between floating-point operands; use numeric.ApproxEqual or an explicit tolerance",
	// Version 2: the tolerance-helper exemption follows local aliases
	// (function literals bound to approved names) and wrappers that
	// delegate to an approved helper.
	Version: 2,
	Run:     runFloatcmp,
}

// approvedCmpFuncs are tolerance helpers allowed to compare floats exactly
// (they handle the infinity/NaN edge cases that motivate the exception).
var approvedCmpFuncs = map[string]bool{
	"ApproxEqual": true, "approxEqual": true,
	"AlmostEqual": true, "almostEqual": true,
}

func runFloatcmp(pass *Pass) error {
	pass.Inspect(Mask((*ast.BinaryExpr)(nil)), func(n ast.Node, stack []ast.Node) {
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return
		}
		tx, ty := pass.TypeOf(be.X), pass.TypeOf(be.Y)
		if tx == nil || ty == nil || (!isFloat(tx) && !isFloat(ty)) {
			return
		}
		if isZeroConst(pass.Info, be.X) || isZeroConst(pass.Info, be.Y) {
			return
		}
		if types.ExprString(unparen(be.X)) == types.ExprString(unparen(be.Y)) {
			return // NaN self-test x != x
		}
		name, fnType, body := enclosingCmpFunc(stack)
		if approvedCmpFuncs[name] {
			return
		}
		if body != nil && returnsBool(pass.Info, fnType) && delegatesToApproved(pass.Info, body) {
			// A tolerance wrapper: it routes the finite cases through an
			// approved helper and needs exact comparison for the
			// infinity/NaN edges it handles itself.
			return
		}
		pass.ReportRangef(be.OpPos, be.End(), "floating-point %s comparison on %s; use numeric.ApproxEqual or an explicit tolerance",
			be.Op, types.ExprString(be.X))
	})
	return nil
}

// enclosingCmpFunc finds the innermost enclosing function on the stack —
// declaration or literal — and resolves its name. A literal's name comes
// from the binding that defines it (aeq := func(...), var aeq = func(...),
// aeq = func(...)), so local aliases of the tolerance helpers carry the
// same exemption as their declared namesakes.
func enclosingCmpFunc(stack []ast.Node) (name string, fnType *ast.FuncType, body *ast.BlockStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Name.Name, f.Type, f.Body
		case *ast.FuncLit:
			if i > 0 {
				name = funcLitName(stack[i-1], f)
			}
			return name, f.Type, f.Body
		}
	}
	return "", nil, nil
}

// funcLitName resolves the identifier a function literal is bound to in
// its immediate parent node, or "".
func funcLitName(parent ast.Node, lit *ast.FuncLit) string {
	match := func(lhs, rhs ast.Expr) string {
		if unparen(rhs) != ast.Expr(lit) {
			return ""
		}
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			return id.Name
		}
		return ""
	}
	switch p := parent.(type) {
	case *ast.AssignStmt:
		if len(p.Lhs) == len(p.Rhs) {
			for i := range p.Rhs {
				if n := match(p.Lhs[i], p.Rhs[i]); n != "" {
					return n
				}
			}
		}
	case *ast.ValueSpec:
		if len(p.Names) == len(p.Values) {
			for i := range p.Values {
				if unparen(p.Values[i]) == ast.Expr(lit) {
					return p.Names[i].Name
				}
			}
		}
	}
	return ""
}

// returnsBool reports whether the function type has a single bool result.
func returnsBool(info *types.Info, ft *ast.FuncType) bool {
	if ft == nil || ft.Results == nil || len(ft.Results.List) != 1 {
		return false
	}
	field := ft.Results.List[0]
	if len(field.Names) > 1 {
		return false
	}
	t := info.TypeOf(field.Type)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// delegatesToApproved reports whether the body calls one of the approved
// tolerance helpers (numeric.ApproxEqual or a namesake).
func delegatesToApproved(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil && approvedCmpFuncs[fn.Name()] {
			found = true
		}
		return !found
	})
	return found
}
