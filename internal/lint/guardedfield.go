package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Guardedfield enforces the repository's shared-state annotation
// convention. A struct field whose comment says
//
//	// guarded by <mu>
//
// (where <mu> names a sync.Mutex or sync.RWMutex field of the same
// struct) may only be read or written while that mutex is held: every
// access must be dominated by a `x.mu.Lock()` — or, for reads under an
// RWMutex, `x.mu.RLock()` — in the same function, with no intervening
// unlock (see lockscan.go for the exact approximation). Removing the lock
// from a memo accessor therefore fails the lint run, not just the race
// detector on a lucky schedule.
//
// The annotation is also *required*: a map- or slice-typed field sitting
// next to a mutex in the same struct is shared state by construction in
// this codebase, and is reported until it either carries a guarded-by
// annotation or a //lint:ignore guardedfield justification (e.g. the
// field is written once before the value is shared).
//
// Initialisation through a composite literal (e.g. newMemo's &memo{...})
// is exempt: the value is not yet shared, and the literal never mentions
// the fields through a selector anyway.
var Guardedfield = &Analyzer{
	Name: "guardedfield",
	Doc:  "enforces `// guarded by <mu>` field annotations: annotated fields only accessed under their mutex, mutex-adjacent maps/slices must be annotated",
	Run:  runGuardedfield,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo is the parsed annotation of one field.
type guardInfo struct {
	muName string
	rw     bool // the guarding mutex is an RWMutex
}

func runGuardedfield(pass *Pass) error {
	guarded := make(map[*types.Var]guardInfo)

	// Phase 1: collect annotations (and report missing/broken ones) from
	// every struct type declaration.
	pass.Inspect(Mask((*ast.TypeSpec)(nil)), func(n ast.Node, stack []ast.Node) {
		ts := n.(*ast.TypeSpec)
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			return
		}
		// The struct's mutex fields, by name.
		mutexes := make(map[string]bool) // name -> isRW
		hasMutex := false
		for _, field := range st.Fields.List {
			mu, rw := isMutexType(pass.TypeOf(field.Type))
			if !mu {
				continue
			}
			hasMutex = true
			for _, name := range field.Names {
				mutexes[name.Name] = rw
			}
		}
		for _, field := range st.Fields.List {
			if mu, _ := isMutexType(pass.TypeOf(field.Type)); mu {
				continue
			}
			ann := fieldAnnotation(field)
			switch {
			case ann != "":
				rw, ok := mutexes[ann]
				if !ok {
					pass.ReportNodef(field, "guarded-by annotation names %q, which is not a mutex field of struct %s", ann, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guarded[v] = guardInfo{muName: ann, rw: rw}
					}
				}
			case hasMutex && isSharedKind(pass.TypeOf(field.Type)):
				for _, name := range field.Names {
					pass.ReportNodef(field, "field %s of mutex-bearing struct %s lacks a `// guarded by <mu>` annotation (or //lint:ignore guardedfield <reason>)",
						name.Name, ts.Name.Name)
				}
			}
		}
	})
	if len(guarded) == 0 {
		return nil
	}

	// Phase 2: enforce the annotations at every selector access.
	pass.Inspect(Mask((*ast.SelectorExpr)(nil)), func(n ast.Node, stack []ast.Node) {
		sel := n.(*ast.SelectorExpr)
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return
		}
		v, ok := selection.Obj().(*types.Var)
		if !ok {
			return
		}
		info, ok := guarded[v]
		if !ok {
			return
		}
		write := isWriteAccess(stack)
		muExpr := types.ExprString(sel.X) + "." + info.muName
		mode := heldLocks(stack)[muExpr]
		switch {
		case mode == lockWrite:
			return // exclusive lock covers everything
		case mode == lockRead && info.rw && !write:
			return // read under RLock is the RWMutex contract
		}
		kind := "read"
		if write {
			kind = "write"
		}
		pass.ReportRangef(sel.Pos(), sel.End(), "%s of %s (guarded by %s) without holding %s.Lock() on this path",
			kind, types.ExprString(sel), info.muName, muExpr)
	})
	return nil
}

// fieldAnnotation extracts the guarded-by mutex name from a field's doc or
// end-of-line comment, or "".
func fieldAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, ignorePrefix) {
				continue // suppression directives are not annotations
			}
			if m := guardedByRe.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// isSharedKind reports whether a field type is mutable shared state that
// the convention requires an annotation for: maps and slices. Scalars and
// pointers can be shared state too, but flagging them wholesale would
// drown the signal; annotate them voluntarily.
func isSharedKind(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

// isWriteAccess reports whether the selector at the top of stack is
// written: it (or an index/slice of it) is assigned, ++/--'d, deleted
// from, or has its address taken.
func isWriteAccess(stack []ast.Node) bool {
	// Walk outward while the node is still the "designator" part of a
	// larger expression (indexing, slicing, parens).
	cur := stack[len(stack)-1].(ast.Expr)
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.IndexExpr:
			if parent.X != cur {
				return false
			}
			cur = parent
		case *ast.SliceExpr:
			if parent.X != cur {
				return false
			}
			cur = parent
		case *ast.ParenExpr:
			cur = parent
		case *ast.StarExpr:
			cur = parent
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return parent.X == cur
		case *ast.UnaryExpr:
			// &x.field escapes; treat as write.
			return parent.Op.String() == "&"
		case *ast.CallExpr:
			// delete(m, k) and append-into mutate the first argument.
			if len(parent.Args) > 0 && parent.Args[0] == cur {
				if id, ok := unparen(parent.Fun).(*ast.Ident); ok && (id.Name == "delete" || id.Name == "append") {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}
