package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Aliasret flags exported functions and methods in the buffer-owning
// packages (internal/sparse, internal/mrm) that return a slice aliasing
// internal state — a struct field, a sub-slice of one, or a package-level
// variable — without copying. Such a return hands the caller a mutable
// window into a matrix or model that the rest of the system treats as
// immutable; the moment solvers run in parallel it becomes a data race.
// Return sparse.Clone(...) / append([]T(nil), s...) instead, or suppress
// with //lint:ignore aliasret <reason> where sharing is the documented
// contract.
var Aliasret = &Analyzer{
	Name: "aliasret",
	Doc:  "flags exported sparse/mrm functions returning internal slices without copying",
	Run:  runAliasret,
}

// aliasretPkgSuffixes are the packages whose exported API must not leak
// internal slice buffers.
var aliasretPkgSuffixes = []string{"internal/sparse", "internal/mrm"}

func runAliasret(pass *Pass) error {
	covered := false
	for _, suffix := range aliasretPkgSuffixes {
		if strings.HasSuffix(pass.PkgPath, suffix) {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}
	pass.Inspect(Mask((*ast.ReturnStmt)(nil)), func(n ast.Node, stack []ast.Node) {
		ret := n.(*ast.ReturnStmt)
		// The return belongs to the innermost function on the stack; only
		// exported declarations (not nested literals) are API surface.
		var fd *ast.FuncDecl
		for i := len(stack) - 2; i >= 0; i-- {
			switch f := stack[i].(type) {
			case *ast.FuncLit:
				return
			case *ast.FuncDecl:
				fd = f
			}
			if fd != nil {
				break
			}
		}
		if fd == nil || !fd.Name.IsExported() {
			return
		}
		for _, res := range ret.Results {
			t := pass.TypeOf(res)
			if t == nil {
				continue
			}
			if _, ok := t.Underlying().(*types.Slice); !ok {
				continue
			}
			if base, ok := aliasBase(pass, res); ok {
				pass.ReportRangef(res.Pos(), res.End(), "exported %s returns internal slice %s without copying; aliasing hazard under concurrent use — copy it (sparse.Clone, append)",
					fd.Name.Name, types.ExprString(base))
			}
		}
	})
	return nil
}

// aliasBase peels slicing/indexing from the returned expression and
// reports whether what remains is internal state: a struct field selector
// or a package-level variable.
func aliasBase(pass *Pass, e ast.Expr) (ast.Expr, bool) {
	for {
		switch x := unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return x, true
			}
			// Qualified identifier (pkg.Var) or method value: resolve the Sel.
			if v, ok := pass.Info.Uses[x.Sel].(*types.Var); ok && isPackageLevel(pass, v) {
				return x, true
			}
			return nil, false
		case *ast.Ident:
			if v, ok := pass.Info.Uses[x].(*types.Var); ok && isPackageLevel(pass, v) {
				return x, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(pass *Pass, v *types.Var) bool {
	return v.Parent() == pass.Pkg.Scope()
}
