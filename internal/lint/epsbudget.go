package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Epsbudget tracks values tainted from ε parameters (and Epsilon-carrying
// option structs) through the CFG and flags any path whose ε-fraction
// multipliers handed to truncating sinks sum to more than 1: the silent
// budget double-spend the error-budget ledger can only catch at runtime.
// Sinks are callees declared truncating by a //numerics:truncates
// annotation or the builtin registry (numeric.FoxGlynn,
// numeric.PoissonTruncation), with per-function summaries making the
// check transitive within the module. eps/2 splits and disjoint constant
// fractions pass; branch alternatives of budget splitters are kept
// correlated per return statement, so a callee returning either (ε/2, ε/2)
// or (ε, 0) never produces the impossible (ε, ε/2) combination.
var Epsbudget = &Analyzer{
	Name:    "epsbudget",
	Doc:     "flags paths whose ε-fraction spends on truncating callees exceed the whole budget",
	Version: 1,
	Run:     runEpsbudget,
}

// epsOverTol is the slack on the Σ fractions ≤ 1 test, absorbing the
// floating-point noise of fraction arithmetic (1/2 + 1/2 is exact, but a
// third-split 3·(1/3) is not).
const epsOverTol = 1e-9

func runEpsbudget(pass *Pass) error {
	s := pass.Summaries()
	seen := make(map[token.Pos]bool)
	report := func(d epsDiag) {
		if seen[d.call.Pos()] {
			return
		}
		seen[d.call.Pos()] = true
		name := "ε"
		if d.origin != nil {
			name = d.origin.Name()
		}
		if d.inLoop {
			pass.ReportNodef(d.call, "ε-spending call inside a loop: the %s budget is spent once per iteration", name)
			return
		}
		pass.ReportNodef(d.call, "ε budget over-committed: along one path %.3g× of budget %q is handed to truncating callees (want ≤ 1; split the budget, e.g. eps/2 per sink)", d.total, name)
	}
	pass.Preorder(Mask((*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)), func(n ast.Node) {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			// Annotated functions have passed the whole budget onward by
			// contract; their own body is not re-measured against it.
			if _, _, annotated := parseTruncates(fn.Doc); annotated {
				return
			}
			var params []*types.Var
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				params = signatureParams(obj)
			}
			res := analyzeEps(s, pass.pkg, fn.Body, params)
			for _, d := range res.diags {
				report(d)
			}
		case *ast.FuncLit:
			res := analyzeEps(s, pass.pkg, fn.Body, funcLitParams(pass.Info, fn.Type))
			for _, d := range res.diags {
				report(d)
			}
		}
	})
	return nil
}

// epsDiag is one over-commitment found by the engine.
type epsDiag struct {
	call   *ast.CallExpr
	origin types.Object
	total  float64
	inLoop bool
}

// epsResult is the outcome of analysing one function body: the summary
// facts (spend per parameter, per-return result fractions) plus the
// diagnostics to report when the body belongs to the linted package.
type epsResult struct {
	spend   []float64
	returns [][]map[int]float64
	diags   []epsDiag
}

// scenarioCap bounds the cartesian enumeration of budget-splitter
// alternatives; choice points beyond it are merged by pointwise max.
const scenarioCap = 32

// analyzeEps runs the ε-taint accumulation over body. params lists the
// function's parameters (receiver first) — taint origins the resulting
// summary is expressed in; origins seeded from captured or local
// ε-variables contribute diagnostics only.
func analyzeEps(s *Summaries, pkg *Package, body *ast.BlockStmt, params []*types.Var) *epsResult {
	cfg := pkg.CFG(body)
	order, back := rpoAndBackEdges(cfg)
	loops := loopMembers(cfg, back)

	paramIdx := make(map[types.Object]int, len(params))
	for i, p := range params {
		paramIdx[p] = i
	}
	ev := &epsEval{
		s:        s,
		info:     pkg.Info,
		paramIdx: paramIdx,
		choices:  make(map[*ast.CallExpr]int),
	}

	// Choice points: calls whose callee summary keeps ≥ 2 correlated
	// return alternatives (budget splitters). Enumerated in source order so
	// scenario numbering is deterministic.
	var choiceCalls []*ast.CallExpr
	var choiceArity []int
	scenarios := 1
	for _, bi := range order {
		for _, node := range cfg.Blocks[bi].Nodes {
			walkCalls(node, func(call *ast.CallExpr) {
				alts := len(ev.calleeReturns(call))
				if alts >= 2 && scenarios*alts <= scenarioCap {
					choiceCalls = append(choiceCalls, call)
					choiceArity = append(choiceArity, alts)
					scenarios *= alts
				}
			})
		}
	}

	res := &epsResult{spend: make([]float64, len(params))}
	maxSpend := make(map[types.Object]float64)
	diagBest := make(map[*ast.CallExpr]epsDiag)

	for sc := 0; sc < scenarios; sc++ {
		rem := sc
		for i, call := range choiceCalls {
			ev.choices[call] = rem % choiceArity[i]
			rem /= choiceArity[i]
		}
		n := len(cfg.Blocks)
		outT := make([]Taint, n)
		outS := make([]map[types.Object]float64, n)
		var alternatives [][]map[int]float64
		for _, bi := range order {
			b := cfg.Blocks[bi]
			taint := Taint{}
			spend := map[types.Object]float64{}
			first := true
			for _, p := range b.Preds {
				if back[[2]int{p.Index, bi}] || outT[p.Index] == nil {
					continue
				}
				if first {
					taint = outT[p.Index].clone()
					for o, v := range outS[p.Index] {
						spend[o] = v
					}
					first = false
					continue
				}
				taint = joinTaint(taint, outT[p.Index])
				for o, v := range outS[p.Index] {
					if v > spend[o] {
						spend[o] = v
					}
				}
			}
			ev.taint, ev.spend = taint, spend
			ev.inLoop = loops[bi]
			for _, node := range b.Nodes {
				ev.node(node, res, diagBest)
				if ret, ok := node.(*ast.ReturnStmt); ok {
					alternatives = append(alternatives, ev.returnFracs(ret))
				}
			}
			if b.Range != nil {
				// Range bindings are fresh per-iteration values; ε taint
				// does not flow through collection elements.
				for _, e := range []ast.Expr{b.Range.Key, b.Range.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						ev.taint[defOrUse(ev.info, id)] = map[types.Object]float64{}
					}
				}
			}
			outT[bi], outS[bi] = ev.taint, ev.spend
			for o, v := range ev.spend {
				if v > maxSpend[o] {
					maxSpend[o] = v
				}
			}
		}
		// Keep the per-return alternatives of the first scenario only: a
		// caller enumerates this callee's scenarios itself through the
		// nested choice points, and mixing scenarios here would break the
		// correlation the tuples exist to preserve.
		if sc == 0 {
			res.returns = alternatives
		}
	}

	for o, v := range maxSpend {
		if i, ok := paramIdx[o]; ok && v > res.spend[i] {
			res.spend[i] = v
		}
	}
	for _, d := range diagBest {
		res.diags = append(res.diags, d)
	}
	return res
}

// epsEval evaluates ε fractions of expressions under one scenario.
type epsEval struct {
	s        *Summaries
	info     *types.Info
	paramIdx map[types.Object]int
	choices  map[*ast.CallExpr]int
	taint    Taint
	spend    map[types.Object]float64
	inLoop   bool
}

// node processes one CFG block node: spends of every call in the subtree,
// then taint updates for assignments and declarations.
func (ev *epsEval) node(node ast.Node, res *epsResult, diagBest map[*ast.CallExpr]epsDiag) {
	walkCalls(node, func(call *ast.CallExpr) { ev.spendCall(call, diagBest) })
	switch st := node.(type) {
	case *ast.AssignStmt:
		ev.assign(st.Lhs, st.Rhs, st.Tok)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					ev.assign(lhs, vs.Values, token.DEFINE)
				}
			}
		}
	}
}

// spendCall charges the callee's per-parameter spend against the caller's
// budget fractions and records a diagnostic when any origin exceeds 1.
func (ev *epsEval) spendCall(call *ast.CallExpr, diagBest map[*ast.CallExpr]epsDiag) {
	sum := ev.s.ForCall(ev.info, call)
	if len(sum.Spend) == 0 {
		return
	}
	args := callArgs(ev.info, call)
	for i, sp := range sum.Spend {
		if sp == 0 || i >= len(args) || args[i] == nil {
			continue
		}
		for origin, f := range ev.fracs(args[i]) {
			add := sp * f
			if add == 0 {
				continue
			}
			if ev.inLoop {
				d := epsDiag{call: call, origin: origin, inLoop: true}
				if _, ok := diagBest[call]; !ok {
					diagBest[call] = d
				}
				continue
			}
			total := ev.spend[origin] + add
			ev.spend[origin] = total
			if total > 1+epsOverTol {
				prev, ok := diagBest[call]
				if !ok || total > prev.total {
					diagBest[call] = epsDiag{call: call, origin: origin, total: total}
				}
			}
		}
	}
}

// assign updates taints for one (possibly parallel or tuple) assignment.
func (ev *epsEval) assign(lhs, rhs []ast.Expr, tok token.Token) {
	write := func(e ast.Expr, fr map[types.Object]float64) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := defOrUse(ev.info, id)
		if obj == nil {
			return
		}
		ev.taint[obj] = fr
	}
	switch {
	case len(lhs) > 1 && len(rhs) == 1:
		// Tuple assignment from one call: per-result fractions of the
		// scenario-selected return alternative.
		call, ok := unparen(rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		results := ev.callResultFracs(call)
		for j, l := range lhs {
			var fr map[types.Object]float64
			if j < len(results) {
				fr = results[j]
			} else {
				fr = map[types.Object]float64{}
			}
			write(l, fr)
		}
	case len(lhs) == len(rhs):
		frs := make([]map[types.Object]float64, len(rhs))
		for i, r := range rhs {
			if tok == token.ADD_ASSIGN {
				frs[i] = addFracs(ev.fracs(lhs[i]), ev.fracs(r))
			} else if tok != token.ASSIGN && tok != token.DEFINE {
				// Other compound ops: keep the left side's fractions (a
				// conservative identity on the budget share).
				frs[i] = ev.fracs(lhs[i])
			} else {
				frs[i] = ev.fracs(r)
			}
		}
		for i, l := range lhs {
			write(l, frs[i])
		}
	}
}

// returnFracs records one return statement as a result-fraction tuple over
// the function's parameters (non-parameter origins are dropped: they are
// not visible to callers).
func (ev *epsEval) returnFracs(ret *ast.ReturnStmt) []map[int]float64 {
	out := make([]map[int]float64, 0, len(ret.Results))
	toIdx := func(fr map[types.Object]float64) map[int]float64 {
		m := make(map[int]float64)
		for o, f := range fr {
			if i, ok := ev.paramIdx[o]; ok && f != 0 {
				m[i] = f
			}
		}
		return m
	}
	if len(ret.Results) == 1 {
		if call, ok := unparen(ret.Results[0]).(*ast.CallExpr); ok {
			if results := ev.callResultFracs(call); len(results) > 1 {
				for _, fr := range results {
					out = append(out, toIdx(fr))
				}
				return out
			}
		}
	}
	for _, r := range ret.Results {
		out = append(out, toIdx(ev.fracs(r)))
	}
	return out
}

// calleeReturns fetches the callee's per-return alternatives.
func (ev *epsEval) calleeReturns(call *ast.CallExpr) [][]map[int]float64 {
	return ev.s.ForCall(ev.info, call).Returns
}

// callResultFracs composes the callee's return fractions (of its own
// parameters) with the fractions of the actual arguments, yielding
// per-result fractions in the caller's origins. The scenario's chosen
// alternative is used for registered choice points; other callees merge
// their alternatives by pointwise max.
func (ev *epsEval) callResultFracs(call *ast.CallExpr) []map[types.Object]float64 {
	alts := ev.calleeReturns(call)
	if len(alts) == 0 {
		return nil
	}
	alt := alts[0]
	if choice, ok := ev.choices[call]; ok && choice < len(alts) {
		alt = alts[choice]
	} else if len(alts) > 1 {
		alt = mergeAlternatives(alts)
	}
	args := callArgs(ev.info, call)
	out := make([]map[types.Object]float64, len(alt))
	for j, retFr := range alt {
		m := make(map[types.Object]float64)
		for i, f := range retFr {
			if i >= len(args) || args[i] == nil {
				continue
			}
			for origin, af := range ev.fracs(args[i]) {
				if v := f * af; v > m[origin] {
					m[origin] = v
				}
			}
		}
		out[j] = m
	}
	return out
}

// mergeAlternatives collapses return alternatives by pointwise max (the
// scenario-free fallback; loses correlation, never under-counts).
func mergeAlternatives(alts [][]map[int]float64) []map[int]float64 {
	width := 0
	for _, a := range alts {
		if len(a) > width {
			width = len(a)
		}
	}
	out := make([]map[int]float64, width)
	for j := range out {
		out[j] = make(map[int]float64)
	}
	for _, a := range alts {
		for j, m := range a {
			for i, f := range m {
				if f > out[j][i] {
					out[j][i] = f
				}
			}
		}
	}
	return out
}

// fracs computes the ε-origin fractions of an expression: for each origin
// (an ε parameter, an Epsilon-carrying struct parameter, or a captured
// ε variable) the constant multiplier the expression applies to it.
// Non-constant factors are taken as 1, a deliberate under-approximation:
// the analyzer only ever flags budget shares provable from constants.
func (ev *epsEval) fracs(e ast.Expr) map[types.Object]float64 {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := defOrUse(ev.info, x)
		if obj == nil {
			return nil
		}
		if fr, ok := ev.taint[obj]; ok {
			return fr
		}
		if v, ok := obj.(*types.Var); ok && (isEpsParam(v) || carriesEpsField(v.Type())) {
			return map[types.Object]float64{obj: 1}
		}
		return nil
	case *ast.SelectorExpr:
		if epsFieldName(x.Sel.Name) && (isFloat(ev.typeOf(x)) || carriesEpsField(ev.typeOf(x))) {
			return ev.fracs(x.X)
		}
		if carriesEpsField(ev.typeOf(x)) {
			// Budget-carrying struct reached through a field (c.opts):
			// follow the chain to its root.
			return ev.fracs(x.X)
		}
		return nil
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD:
			return addFracs(ev.fracs(x.X), ev.fracs(x.Y))
		case token.SUB:
			return ev.fracs(x.X)
		case token.MUL:
			if f, ok := constFloat(ev.info, x.Y); ok {
				return scaleFracs(ev.fracs(x.X), f)
			}
			if f, ok := constFloat(ev.info, x.X); ok {
				return scaleFracs(ev.fracs(x.Y), f)
			}
			return maxFracs(ev.fracs(x.X), ev.fracs(x.Y))
		case token.QUO:
			if f, ok := constFloat(ev.info, x.Y); ok && f != 0 {
				return scaleFracs(ev.fracs(x.X), 1/f)
			}
			return ev.fracs(x.X)
		}
		return nil
	case *ast.UnaryExpr:
		return ev.fracs(x.X)
	case *ast.CallExpr:
		results := ev.callResultFracs(x)
		if len(results) == 1 {
			return results[0]
		}
		return nil
	case *ast.CompositeLit:
		// An options struct built in place: the budget share is whatever
		// lands in its ε field.
		for _, el := range x.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && epsFieldName(key.Name) {
				return ev.fracs(kv.Value)
			}
		}
		return nil
	}
	return nil
}

func (ev *epsEval) typeOf(e ast.Expr) types.Type { return ev.info.TypeOf(e) }

func addFracs(a, b map[types.Object]float64) map[types.Object]float64 {
	out := make(map[types.Object]float64, len(a)+len(b))
	for o, f := range a {
		out[o] += f
	}
	for o, f := range b {
		out[o] += f
	}
	return out
}

func maxFracs(a, b map[types.Object]float64) map[types.Object]float64 {
	out := make(map[types.Object]float64, len(a)+len(b))
	for o, f := range a {
		out[o] = f
	}
	for o, f := range b {
		if f > out[o] {
			out[o] = f
		}
	}
	return out
}

func scaleFracs(a map[types.Object]float64, k float64) map[types.Object]float64 {
	if k < 0 {
		k = -k
	}
	out := make(map[types.Object]float64, len(a))
	for o, f := range a {
		out[o] = f * k
	}
	return out
}

// constFloat extracts the float value of a constant expression.
func constFloat(info *types.Info, e ast.Expr) (float64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return 0, false
	}
	f, _ := constant.Float64Val(v)
	return f, true
}

// carriesEpsField reports whether t (through pointers) is a struct with an
// ε-budget float field — an Options-style budget carrier.
func carriesEpsField(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if epsFieldName(f.Name()) && isFloat(f.Type()) {
			return true
		}
	}
	return false
}

// callArgs lists a call's arguments aligned with signatureParams: the
// receiver expression first for method calls, then the ordinary arguments.
// Package-qualified calls (numeric.FoxGlynn) have no receiver slot — the
// selector is a qualifier, not a selection, and prepending it would shift
// every argument off its parameter by one.
func callArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSelection := info.Selections[sel]; isSelection {
			out = append(out, sel.X)
		}
	}
	out = append(out, call.Args...)
	return out
}

// walkCalls visits every call expression within node in source order,
// without descending into function literals (separate functions with their
// own CFGs and analyses).
func walkCalls(node ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			visit(call)
		}
		return true
	})
}

// rpoAndBackEdges returns the reverse-post-order of the blocks reachable
// from Entry and the set of back edges (u→v with v an ancestor of u on the
// DFS stack) — the edges dropped to make the accumulation a DAG pass.
func rpoAndBackEdges(c *CFG) (order []int, back map[[2]int]bool) {
	back = make(map[[2]int]bool)
	state := make([]int, len(c.Blocks)) // 0 unvisited, 1 on stack, 2 done
	var post []int
	var walk func(b *CFGBlock)
	walk = func(b *CFGBlock) {
		state[b.Index] = 1
		for _, s := range b.Succs {
			switch state[s.Index] {
			case 0:
				walk(s)
			case 1:
				back[[2]int{b.Index, s.Index}] = true
			}
		}
		state[b.Index] = 2
		post = append(post, b.Index)
	}
	walk(c.Entry)
	order = make([]int, len(post))
	for i, bi := range post {
		order[len(post)-1-i] = bi
	}
	return order, back
}

// loopMembers marks every block inside a natural loop of some back edge.
func loopMembers(c *CFG, back map[[2]int]bool) map[int]bool {
	members := make(map[int]bool)
	for edge := range back {
		u, v := edge[0], edge[1]
		inLoop := map[int]bool{v: true}
		stack := []int{u}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if inLoop[x] {
				continue
			}
			inLoop[x] = true
			for _, p := range c.Blocks[x].Preds {
				stack = append(stack, p.Index)
			}
		}
		for b := range inLoop {
			members[b] = true
		}
	}
	return members
}
