package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detorder flags floating-point reductions whose summation order depends
// on the worker count of a parallel fan-out. Float addition is not
// associative: a transient probability assembled as Σ over per-worker
// partial buffers changes in the last ulps when the partition changes,
// so a result that must be reproducible across machines (CI baselines,
// the ledger's recorded budgets) cannot silently fold worker-count-many
// partials. The analyzer taints worker-count values (parallel.Resolve
// results, runtime.NumCPU/GOMAXPROCS, parameters named workers, Workers
// fields) through assignments and derivation helpers (rowCuts and
// friends), then reports float accumulations inside worker-count-shaped
// loops whose accumulator outlives the loop, and captured float scalars
// accumulated inside parallel.Do / parallel.For task literals.
//
// A deliberate fan-out-dependent reduction is declared with
//
//	//numerics:order-invariant [fanout=<helper>] <reason>
//
// on the function. The reason is mandatory. The optional fanout=<helper>
// token claims the function draws its partition from <helper>; the
// analyzer verifies the function really calls it with a worker-derived
// argument, which pins invariants like "MulBlockTPar uses the same
// rowCuts fan-out as MulVecTPar" in the annotation itself.
var Detorder = &Analyzer{
	Name: "detorder",
	Doc:  "flags float reductions whose order depends on the parallel worker count",
	Run:  runDetorder,
}

const orderInvariantPrefix = "//numerics:order-invariant"

// parseOrderInvariant extracts a //numerics:order-invariant annotation.
func parseOrderInvariant(doc *ast.CommentGroup) (fanout, reason string, present bool, pos token.Pos) {
	if doc == nil {
		return "", "", false, token.NoPos
	}
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, orderInvariantPrefix) {
			continue
		}
		present = true
		pos = c.Pos()
		rest := strings.TrimSpace(strings.TrimPrefix(c.Text, orderInvariantPrefix))
		if i := strings.Index(rest, "//"); i >= 0 {
			rest = strings.TrimSpace(rest[:i])
		}
		fields := strings.Fields(rest)
		i := 0
		if len(fields) > 0 {
			if f, ok := strings.CutPrefix(fields[0], "fanout="); ok {
				fanout = f
				i = 1
			}
		}
		reason = strings.Join(fields[i:], " ")
	}
	return fanout, reason, present, pos
}

// workerParamNames are parameter names seeding the worker-count taint.
var workerParamNames = map[string]bool{
	"workers": true, "nworkers": true, "numworkers": true,
}

// pkgPathHasSuffix reports whether p's import path is suffix or ends in
// "/"+suffix — module-path-independent matching, like builtinTruncates.
func pkgPathHasSuffix(p *types.Package, suffix string) bool {
	return p != nil && (p.Path() == suffix || strings.HasSuffix(p.Path(), "/"+suffix))
}

// isWorkerSourceCall reports calls that produce a worker count.
func isWorkerSourceCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch {
	case fn.Pkg().Path() == "runtime" && (fn.Name() == "NumCPU" || fn.Name() == "GOMAXPROCS"):
		return true
	case fn.Name() == "Resolve" && pkgPathHasSuffix(fn.Pkg(), "internal/parallel"):
		return true
	}
	return false
}

// workerTaint computes the set of objects in fd carrying a worker count
// (or a worker-count-sized shape: a slice allocated with a tainted
// length, the cut slice a partition helper returns). Object-level taint
// deliberately flows into function literals — captures share the object.
func workerTaint(info *types.Info, fd *ast.FuncDecl, fn *types.Func) map[types.Object]bool {
	taint := make(map[types.Object]bool)
	for _, p := range signatureParams(fn) {
		if workerParamNames[strings.ToLower(p.Name())] {
			taint[p] = true
		}
	}
	mark := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := defOrUse(info, id)
		if obj == nil || taint[obj] {
			return false
		}
		taint[obj] = true
		return true
	}
	var tainted func(e ast.Expr) bool
	tainted = func(e ast.Expr) bool {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return taint[defOrUse(info, x)]
		case *ast.BinaryExpr:
			return tainted(x.X) || tainted(x.Y)
		case *ast.UnaryExpr:
			return tainted(x.X)
		case *ast.SelectorExpr:
			if x.Sel.Name == "Workers" {
				return true
			}
			return taint[info.Uses[x.Sel]]
		case *ast.CallExpr:
			if isWorkerSourceCall(info, x) {
				return true
			}
			if isBuiltin(info, x, "len") || isBuiltin(info, x, "cap") {
				return len(x.Args) == 1 && tainted(x.Args[0])
			}
			if isBuiltin(info, x, "make") {
				for _, a := range x.Args[1:] {
					if tainted(a) {
						return true
					}
				}
				return false
			}
			if isBuiltin(info, x, "append") {
				return len(x.Args) > 0 && tainted(x.Args[0])
			}
			// Derivation helpers (rowCuts, resolveWorkers): a worker count
			// in, a worker-shaped value out.
			for _, a := range x.Args {
				if tainted(a) {
					return true
				}
			}
			return false
		}
		// Indexing a worker-shaped slice yields data, not a worker count:
		// IndexExpr deliberately stops the taint.
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
					if tainted(s.Rhs[0]) {
						for _, lhs := range s.Lhs {
							if mark(lhs) {
								changed = true
							}
						}
					}
					return true
				}
				for i, lhs := range s.Lhs {
					if i < len(s.Rhs) && tainted(s.Rhs[i]) && mark(lhs) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) && tainted(s.Values[i]) && mark(name) {
						changed = true
					}
				}
			}
			return true
		})
	}
	return taint
}

func runDetorder(pass *Pass) error {
	cg := pass.pkg.CallGraph()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			taint := workerTaint(pass.Info, fd, fn)
			fanout, reason, present, pos := parseOrderInvariant(fd.Doc)
			if present {
				if reason == "" {
					pass.Reportf(pos, "//numerics:order-invariant on %s needs a reason", fd.Name.Name)
				}
				if fanout != "" {
					verifyFanoutClaim(pass, cg, fn, fd, fanout, taint, pos)
				}
				continue // declared: reductions here are accepted as-is
			}
			reported := make(map[ast.Node]bool)
			detWalkLoops(pass, taint, fd.Body, nil, reported)
			checkParallelTasks(pass, taint, fd.Body, reported)
		}
	}
	return nil
}

// verifyFanoutClaim checks that an order-invariant annotation claiming
// fanout=<helper> matches the body: the function must call the helper
// with a worker-derived argument.
func verifyFanoutClaim(pass *Pass, cg *CallGraph, fn *types.Func, fd *ast.FuncDecl, fanout string, taint map[types.Object]bool, pos token.Pos) {
	node := cg.Node(fn)
	site := node.CallsNamed(fanout)
	if site == nil {
		pass.Reportf(pos, "//numerics:order-invariant on %s claims fanout=%s but the function never calls %s",
			fd.Name.Name, fanout, fanout)
		return
	}
	info := pass.Info
	var tainted func(e ast.Expr) bool
	tainted = func(e ast.Expr) bool {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return taint[defOrUse(info, x)]
		case *ast.BinaryExpr:
			return tainted(x.X) || tainted(x.Y)
		case *ast.UnaryExpr:
			return tainted(x.X)
		case *ast.CallExpr:
			if isWorkerSourceCall(info, x) {
				return true
			}
			for _, a := range x.Args {
				if tainted(a) {
					return true
				}
			}
		case *ast.SelectorExpr:
			return x.Sel.Name == "Workers" || taint[info.Uses[x.Sel]]
		}
		return false
	}
	for _, a := range site.Call.Args {
		if tainted(a) {
			return
		}
	}
	pass.Reportf(pos, "//numerics:order-invariant on %s claims fanout=%s but no argument of the %s call is worker-derived",
		fd.Name.Name, fanout, fanout)
}

// detWalkLoops walks a body tracking the enclosing worker-count-shaped
// loops and reports float accumulations whose accumulator outlives the
// innermost one. Function literals keep the lexical loop context.
func detWalkLoops(pass *Pass, taint map[types.Object]bool, n ast.Node, loops []ast.Node, reported map[ast.Node]bool) {
	info := pass.Info
	var tainted func(e ast.Expr) bool
	tainted = func(e ast.Expr) bool {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return taint[defOrUse(info, x)]
		case *ast.BinaryExpr:
			return tainted(x.X) || tainted(x.Y)
		case *ast.UnaryExpr:
			return tainted(x.X)
		case *ast.CallExpr:
			if isBuiltin(info, x, "len") || isBuiltin(info, x, "cap") {
				return len(x.Args) == 1 && tainted(x.Args[0])
			}
			if isWorkerSourceCall(info, x) {
				return true
			}
		case *ast.SelectorExpr:
			return x.Sel.Name == "Workers" || taint[info.Uses[x.Sel]]
		}
		return false
	}
	workerFor := func(fs *ast.ForStmt) bool {
		cond, ok := fs.Cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch cond.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
			return tainted(cond.X) || tainted(cond.Y)
		}
		return false
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		switch x := m.(type) {
		case *ast.ForStmt:
			l := loops
			if workerFor(x) {
				l = append(loops, ast.Node(x))
			}
			detWalkLoops(pass, taint, x.Body, l, reported)
			return false
		case *ast.RangeStmt:
			l := loops
			if tainted(x.X) {
				l = append(loops, ast.Node(x))
			}
			detWalkLoops(pass, taint, x.Body, l, reported)
			return false
		case *ast.AssignStmt:
			if len(loops) == 0 {
				return true
			}
			base, ok := accumTarget(info, x)
			if !ok {
				return true
			}
			inner := loops[len(loops)-1]
			obj := defOrUse(info, base)
			if obj == nil || (obj.Pos() >= inner.Pos() && obj.Pos() < inner.End()) {
				return true // a per-iteration accumulator resets each pass
			}
			reported[x] = true
			pass.ReportNodef(x, "float accumulation into %s inside a worker-count-shaped loop: the reduction order changes with the worker count (declare //numerics:order-invariant if intended)",
				base.Name)
		}
		return true
	})
}

// accumTarget returns the base identifier of a float accumulation
// statement (x += e, x -= e, x *= e, or x = x + e), with the target
// either a scalar or an indexed element.
func accumTarget(info *types.Info, as *ast.AssignStmt) (*ast.Ident, bool) {
	if len(as.Lhs) != 1 {
		return nil, false
	}
	lhs := unparen(as.Lhs[0])
	var base *ast.Ident
	switch t := lhs.(type) {
	case *ast.Ident:
		base = t
	case *ast.IndexExpr:
		b, ok := unparen(t.X).(*ast.Ident)
		if !ok {
			return nil, false
		}
		base = b
	default:
		return nil, false
	}
	if t := info.TypeOf(as.Lhs[0]); t == nil || !isFloat(t) {
		return nil, false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		return base, true
	case token.ASSIGN:
		// x = x + e (or e + x).
		be, ok := unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
			return nil, false
		}
		lstr := types.ExprString(lhs)
		if types.ExprString(unparen(be.X)) == lstr || types.ExprString(unparen(be.Y)) == lstr {
			return base, true
		}
	}
	return nil, false
}

// checkParallelTasks reports captured float scalars accumulated inside
// parallel.Do / parallel.For task literals: concurrent tasks folding
// into one captured accumulator have a scheduling-dependent (and racy)
// reduction order. Indexed writes (y[i] += ...) are per-element and stay
// silent here; the loop-shape rule above covers their worker-count
// dependence.
func checkParallelTasks(pass *Pass, taint map[types.Object]bool, body *ast.BlockStmt, reported map[ast.Node]bool) {
	info := pass.Info
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || !pkgPathHasSuffix(fn.Pkg(), "internal/parallel") {
			return true
		}
		if fn.Name() != "Do" && fn.Name() != "For" {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok || reported[as] {
					return true
				}
				base, ok := accumTarget(info, as)
				if !ok {
					return true
				}
				if _, isIdx := unparen(as.Lhs[0]).(*ast.Ident); !isIdx {
					return true // indexed element: per-index, not a shared fold
				}
				obj := defOrUse(info, base)
				if obj == nil || (obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
					return true // task-local accumulator
				}
				reported[as] = true
				pass.ReportNodef(as, "captured float accumulator %s inside a parallel.%s task: concurrent tasks make the reduction order scheduling-dependent",
					base.Name, fn.Name())
				return true
			})
		}
		return true
	})
}
