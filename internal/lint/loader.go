package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Path is the package's import path.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// GoVersion is the module's go directive ("1.22"); version-gated
	// checks treat "" as current.
	GoVersion string

	insp *Inspector
	// deps resolves an already-loaded module-internal import path, so the
	// summary engine can follow cross-package calls. Nil (the golden-file
	// harness) limits summaries to the current package plus the builtin
	// registry.
	deps func(path string) *Package
	sums *Summaries
	cfgs map[*ast.BlockStmt]*CFG
	ssas map[*ast.BlockStmt]*SSA
	cg   *CallGraph
}

// Inspector returns the package's shared traversal, building it on first
// use. Every analyzer replays this one walk (see Inspector).
func (p *Package) Inspector() *Inspector {
	if p.insp == nil {
		p.insp = NewInspector(p.Files)
	}
	return p.insp
}

// Loader parses and type-checks packages of a single module using only the
// standard library: module-internal imports are resolved recursively from
// source, everything else (the standard library) goes through
// go/importer's source importer.
type Loader struct {
	ModuleDir  string
	ModulePath string
	// GoVersion is the module's go directive, e.g. "1.22" ("" if absent).
	GoVersion string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader returns a loader rooted at the module containing dir: it walks
// upward until it finds a go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, goVersion, err := moduleDirectives(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	srcImp, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		GoVersion:  goVersion,
		fset:       fset,
		std:        srcImp,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func moduleDirectives(gomod string) (path, goVersion string, err error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			path = strings.Trim(strings.TrimSpace(rest), `"`)
		} else if rest, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = strings.TrimSpace(rest)
		}
	}
	if path == "" {
		return "", "", fmt.Errorf("lint: no module directive in %s", gomod)
	}
	return path, goVersion, nil
}

// Expand resolves package patterns (a directory, or a prefix ending in
// "/...") relative to dir into the sorted list of package directories.
func (l *Loader) Expand(dir string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(d string) {
		if !seen[d] && hasGoFiles(d) {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(dir, pat)
		}
		base, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(base, l.ModuleDir) {
			return nil, fmt.Errorf("lint: pattern %q escapes module %s", pat, l.ModuleDir)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir (non-test files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	tpkg, info, err := l.TypeCheck(path, files)
	if err != nil {
		return nil, err
	}
	p := &Package{Dir: dir, Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info, GoVersion: l.GoVersion}
	p.deps = func(path string) *Package { return l.pkgs[path] }
	l.pkgs[path] = p
	return p, nil
}

// TypeCheck type-checks the given parsed files as package path, resolving
// imports through the loader. It is exported so the golden-file test
// harness can check testdata sources under a chosen synthetic import path.
func (l *Loader) TypeCheck(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: &chainImporter{l: l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return tpkg, info, nil
}

// chainImporter resolves module-internal import paths via the loader and
// delegates everything else to the standard library source importer.
type chainImporter struct {
	l *Loader
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	l := c.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.ModuleDir, 0)
}
