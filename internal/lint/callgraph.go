package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file adds the interprocedural layer over the per-function
// summaries: a module-aware call graph (static calls, method sets,
// function values tracked through SSA) and the numeric-domain vocabulary
// the domainflow analyzer propagates along it.

// Domain classifies which numeric space a floating-point value lives in.
// The analyzers care about one coarse split — log space versus linear
// space — with three refinements of linear that carry extra obligations:
// probabilities must stay in [0,1] (probrange), rates may mix into
// log-space exponent arithmetic (−qt + n·log(qt) is a legal log-space
// term even though q and t are linear rates), and ε fractions feed the
// budget discipline.
type Domain int8

const (
	// DomUnknown means the analysis could not commit to a space. Unknown
	// never participates in findings: mixing with it is silent.
	DomUnknown Domain = iota
	// DomLinear is a plain linear-space quantity.
	DomLinear
	// DomProb is a linear-space probability mass, contractually in [0,1].
	DomProb
	// DomRate is a linear-space rate or time quantity; legal inside
	// log-space exponent arithmetic.
	DomRate
	// DomEpsFrac is a linear-space fraction of an accuracy budget ε.
	DomEpsFrac
	// DomLog is a log-space quantity (the logarithm of some mass).
	DomLog
)

var domainNames = map[Domain]string{
	DomUnknown: "unknown",
	DomLinear:  "linear",
	DomProb:    "prob",
	DomRate:    "rate",
	DomEpsFrac: "epsfrac",
	DomLog:     "log",
}

func (d Domain) String() string { return domainNames[d] }

// LinearFamily reports whether d is a linear-space domain (prob, rate and
// epsfrac are refinements of linear).
func (d Domain) LinearFamily() bool {
	switch d {
	case DomLinear, DomProb, DomRate, DomEpsFrac:
		return true
	}
	return false
}

// ParseDomain resolves a //numerics:domain token.
func ParseDomain(tok string) (Domain, bool) {
	switch tok {
	case "log":
		return DomLog, true
	case "linear":
		return DomLinear, true
	case "prob":
		return DomProb, true
	case "rate":
		return DomRate, true
	case "epsfrac":
		return DomEpsFrac, true
	}
	return DomUnknown, false
}

// domainPrefix is the annotation that declares the numeric space of a
// function's values:
//
//	//numerics:domain <dom>          // the float (or float-slice) results
//	//numerics:domain <name>=<dom>   // the parameter called <name> (receiver included)
//
// with <dom> one of log, linear, prob, rate, epsfrac. Tokens combine on
// one line: //numerics:domain prob p=prob eps=epsfrac. The summary engine
// propagates result domains bottom-up through unannotated helpers, so
// only entry points and ground-truth kernels need the annotation.
const domainPrefix = "//numerics:domain"

// parseDomains extracts //numerics:domain tokens from a doc comment.
// params lists the function's parameters, receiver first; name=dom tokens
// are resolved against it. Unknown domain names and unknown parameter
// names are reported as BadTerms.
func parseDomains(doc *ast.CommentGroup, params []*types.Var) (paramDoms map[int]Domain, result Domain, bad []BadTerm, annotated bool) {
	if doc == nil {
		return nil, DomUnknown, nil, false
	}
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, domainPrefix) {
			continue
		}
		annotated = true
		rest := strings.TrimSpace(strings.TrimPrefix(c.Text, domainPrefix))
		if i := strings.Index(rest, "//"); i >= 0 {
			rest = strings.TrimSpace(rest[:i])
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			bad = append(bad, BadTerm{Pos: c.Pos(), Term: "", Reason: "missing domain (want log, linear, prob, rate or epsfrac)"})
			continue
		}
		for _, f := range fields {
			name, domTok, isParam := strings.Cut(f, "=")
			if !isParam {
				domTok = f
			}
			dom, ok := ParseDomain(domTok)
			if !ok {
				bad = append(bad, BadTerm{Pos: c.Pos(), Term: f, Reason: "unknown domain " + domTok + " (want log, linear, prob, rate or epsfrac)"})
				continue
			}
			if !isParam {
				result = dom
				continue
			}
			idx := -1
			for i, p := range params {
				if p.Name() == name {
					idx = i
					break
				}
			}
			if idx < 0 {
				bad = append(bad, BadTerm{Pos: c.Pos(), Term: f, Reason: "no parameter named " + name})
				continue
			}
			if paramDoms == nil {
				paramDoms = make(map[int]Domain)
			}
			paramDoms[idx] = dom
		}
	}
	return paramDoms, result, bad, annotated
}

// CallSite is one resolved call expression inside a function.
type CallSite struct {
	Call *ast.CallExpr
	// Callees lists the possible targets: the static callee for direct
	// calls, the SSA-tracked assignments for calls through local function
	// values, and — when the static callee is an interface method — the
	// concrete implementations visible to the package. Empty when nothing
	// resolves (a call through a parameter, field or channel-delivered
	// function value).
	Callees []*types.Func
	// InFuncLit marks sites inside function literals of the enclosing
	// declaration. The literal's calls belong to the declaration for
	// reachability purposes (the closure runs on the declaration's behalf)
	// but run under a different frame.
	InFuncLit bool
}

// CGNode is the call-graph node of one declared function.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Sites lists the node's call expressions in source order.
	Sites []CallSite
	// CalledBy lists the same-package functions with an edge to this node.
	CalledBy []*types.Func

	callees map[*types.Func]bool
}

// Calls reports whether the node has a resolved edge to fn.
func (n *CGNode) Calls(fn *types.Func) bool { return n != nil && n.callees[fn] }

// CallsNamed returns the first site with a resolved callee of the given
// name (any package), or nil. The detorder analyzer uses it to verify
// fanout=<helper> claims of //numerics:order-invariant annotations.
func (n *CGNode) CallsNamed(name string) *CallSite {
	if n == nil {
		return nil
	}
	for i := range n.Sites {
		for _, fn := range n.Sites[i].Callees {
			if fn.Name() == name {
				return &n.Sites[i]
			}
		}
	}
	return nil
}

// CallGraph is the package's call graph: one node per function
// declaration, with call edges resolved statically, through the package's
// method sets, and through SSA-tracked function values.
type CallGraph struct {
	pkg   *Package
	Nodes map[*types.Func]*CGNode

	namedTypes []types.Type // candidate receiver types for method-set expansion
	implCache  map[*types.Func][]*types.Func
}

// CallGraph returns the package's call graph, building it on first use.
func (p *Package) CallGraph() *CallGraph {
	if p.cg != nil {
		return p.cg
	}
	g := &CallGraph{
		pkg:       p,
		Nodes:     make(map[*types.Func]*CGNode),
		implCache: make(map[*types.Func][]*types.Func),
	}
	g.collectNamedTypes()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &CGNode{Fn: fn, Decl: fd, callees: make(map[*types.Func]bool)}
			g.Nodes[fn] = node
			g.walkBody(node, fd.Body, signatureParams(fn), false)
		}
	}
	for fn, node := range g.Nodes {
		for callee := range node.callees {
			if target, ok := g.Nodes[callee]; ok {
				target.CalledBy = append(target.CalledBy, fn)
			}
		}
	}
	for _, node := range g.Nodes {
		sort.Slice(node.CalledBy, func(i, j int) bool {
			return node.CalledBy[i].Pos() < node.CalledBy[j].Pos()
		})
	}
	p.cg = g
	return g
}

// Node returns the graph node of fn, or nil for functions declared
// elsewhere (other packages, interface methods without bodies).
func (g *CallGraph) Node(fn *types.Func) *CGNode { return g.Nodes[fn] }

// walkBody records the call sites of one body, recursing into function
// literals with their own SSA frames.
func (g *CallGraph) walkBody(node *CGNode, body *ast.BlockStmt, params []*types.Var, inLit bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			g.walkBody(node, x.Body, funcLitParams(g.pkg.Info, x.Type), true)
			return false
		case *ast.CallExpr:
			site := CallSite{Call: x, InFuncLit: inLit}
			site.Callees = g.resolveCall(x, body, params)
			node.Sites = append(node.Sites, site)
			for _, fn := range site.Callees {
				node.callees[fn] = true
			}
		}
		return true
	})
}

// resolveCall resolves a call's possible targets: the static callee
// (expanded through the package's method sets when it is an interface
// method), or — for calls through a local function value — the function
// expressions SSA says may have been assigned to it.
func (g *CallGraph) resolveCall(call *ast.CallExpr, body *ast.BlockStmt, params []*types.Var) []*types.Func {
	if fn := calleeFunc(g.pkg.Info, call); fn != nil {
		if impls := g.implementers(fn); len(impls) > 0 {
			return append([]*types.Func{fn}, impls...)
		}
		return []*types.Func{fn}
	}
	// A call through a function value: track the value's definitions
	// through the enclosing frame's SSA.
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if _, isVar := g.pkg.Info.Uses[id].(*types.Var); !isVar {
		return nil
	}
	ssa := g.pkg.SSA(body, params)
	val, ok := ssa.UseVal[id]
	if !ok {
		return nil // a captured variable: its versions live in another frame
	}
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	for _, c := range val.ConcreteValues() {
		if c.Rhs == nil {
			continue
		}
		if fn := funcValueTarget(g.pkg.Info, c.Rhs); fn != nil && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	return out
}

// funcValueTarget resolves a function-typed expression to the declared
// function or method it denotes (f, pkg.F, recv.M as a method value), or
// nil for literals and further indirection.
func funcValueTarget(info *types.Info, e ast.Expr) *types.Func {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[x].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[x.Sel].(*types.Func)
		return fn
	}
	return nil
}

// collectNamedTypes gathers the named (and pointer-to-named) types
// declared by the package and its direct imports, the candidate dynamic
// types for interface-method expansion.
func (g *CallGraph) collectNamedTypes() {
	add := func(scope *types.Scope) {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			g.namedTypes = append(g.namedTypes, named, types.NewPointer(named))
		}
	}
	add(g.pkg.Types.Scope())
	for _, imp := range g.pkg.Types.Imports() {
		add(imp.Scope())
	}
}

// implementers returns the concrete methods implementing m across the
// package's visible named types, when m is an interface method.
func (g *CallGraph) implementers(m *types.Func) []*types.Func {
	if impls, ok := g.implCache[m]; ok {
		return impls
	}
	var out []*types.Func
	sig, _ := m.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			for _, t := range g.namedTypes {
				if !types.Implements(t, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
				if fn, ok := obj.(*types.Func); ok && fn != m {
					out = append(out, fn)
				}
			}
		}
	}
	g.implCache[m] = out
	return out
}

// BottomUp visits the package's nodes in bottom-up call order — callees
// before callers, strongly connected components (recursion cycles)
// visited as arbitrary-order groups — so summary computation can warm the
// cache without re-entering the busy guard. Ordering uses Tarjan's SCC
// algorithm over the same-package edges.
func (g *CallGraph) BottomUp(visit func(*CGNode)) {
	// Deterministic node order: by source position.
	fns := make([]*types.Func, 0, len(g.Nodes))
	for fn := range g.Nodes {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	index := make(map[*types.Func]int)
	low := make(map[*types.Func]int)
	onStack := make(map[*types.Func]bool)
	var stack []*types.Func
	next := 0
	var strongconnect func(fn *types.Func)
	strongconnect = func(fn *types.Func) {
		index[fn] = next
		low[fn] = next
		next++
		stack = append(stack, fn)
		onStack[fn] = true
		node := g.Nodes[fn]
		// Deterministic edge order.
		var callees []*types.Func
		for c := range node.callees {
			if _, ok := g.Nodes[c]; ok {
				callees = append(callees, c)
			}
		}
		sort.Slice(callees, func(i, j int) bool { return callees[i].Pos() < callees[j].Pos() })
		for _, c := range callees {
			if _, seen := index[c]; !seen {
				strongconnect(c)
				if low[c] < low[fn] {
					low[fn] = low[c]
				}
			} else if onStack[c] && index[c] < low[fn] {
				low[fn] = index[c]
			}
		}
		if low[fn] == index[fn] {
			// fn roots an SCC: pop it and visit its members (callees of the
			// component are already visited — Tarjan emits SCCs in reverse
			// topological order of the condensation).
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				visit(g.Nodes[top])
				if top == fn {
					break
				}
			}
		}
	}
	for _, fn := range fns {
		if _, seen := index[fn]; !seen {
			strongconnect(fn)
		}
	}
}
