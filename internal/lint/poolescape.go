package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Poolescape checks that every buffer obtained from a VecPool-style Get —
// directly, or through a callee whose summary marks a result pool-born —
// reaches a Put on every path out of the function, unless ownership
// demonstrably moves on: the buffer is returned to the caller, stored into
// a longer-lived structure, or captured by a closure. The early-error
// return that silently drops a borrowed vector is exactly the leak this
// catches; the pooled hot path only stays allocation-free when no path
// loses a buffer.
var Poolescape = &Analyzer{
	Name:    "poolescape",
	Doc:     "flags pool-borrowed buffers that miss their Put on some path",
	Version: 1,
	Run:     runPoolescape,
}

func runPoolescape(pass *Pass) error {
	s := pass.Summaries()
	pass.Preorder(Mask((*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)), func(n ast.Node) {
		var ft *ast.FuncType
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ft, body = fn.Type, fn.Body
		case *ast.FuncLit:
			ft, body = fn.Type, fn.Body
		}
		if body == nil {
			return
		}
		_, diags := analyzePool(pass.pkg, ft, body, s)
		for _, d := range diags {
			if d.overwrite {
				pass.ReportNodef(d.birth, "pool buffer %q is overwritten while still live (line %d): the previous buffer can no longer be returned to the pool", d.name, pass.Fset.Position(d.leak).Line)
				continue
			}
			pass.ReportNodef(d.birth, "pool buffer %q is not returned to the pool on the path leaving the function at line %d (add a Put, including on early error returns)", d.name, pass.Fset.Position(d.leak).Line)
		}
	})
	return nil
}

// poolBornResults is the summary hook: which of the function's results may
// carry a pool-born buffer to the caller.
func poolBornResults(pkg *Package, ft *ast.FuncType, body *ast.BlockStmt, s *Summaries) []bool {
	born, _ := analyzePool(pkg, ft, body, s)
	return born
}

// poolDiag is one dropped buffer: born at birth, lost at leak.
type poolDiag struct {
	birth     ast.Node
	name      string
	leak      token.Pos
	overwrite bool
}

// poolBirth is one tracked buffer: the object it is bound to, where the
// binding happens, and (for callee-born tuples) the sibling error object
// whose propagation exempts the failure path.
type poolBirth struct {
	obj    types.Object
	block  int
	node   int // index within the block's Nodes; tracking starts after it
	site   ast.Node
	errObj types.Object
}

// analyzePool runs the ownership automaton over body: it discovers pool
// births, walks every path from each birth, and reports paths on which a
// live buffer is dropped. It also derives which function results may hand
// a pool-born buffer to the caller.
func analyzePool(pkg *Package, ft *ast.FuncType, body *ast.BlockStmt, s *Summaries) ([]bool, []poolDiag) {
	info := pkg.Info
	cfg := pkg.CFG(body)
	nResults, namedResult := resultIndex(info, ft)
	born := make([]bool, nResults)

	// Results that are pool-born because a return hands back a pool-born
	// callee result directly (return c.PathProb(p)) — no local binding, so
	// the ownership walk below never sees them.
	for _, b := range cfg.Blocks {
		if b.Return == nil {
			continue
		}
		rs := b.Return
		if len(rs.Results) == 1 && nResults > 1 {
			if call, ok := unparen(rs.Results[0]).(*ast.CallExpr); ok {
				for j, pb := range s.ForCall(info, call).PoolBorn {
					if pb && j < nResults {
						born[j] = true
					}
				}
			}
			continue
		}
		for j, r := range rs.Results {
			if call, ok := unparen(r).(*ast.CallExpr); ok && j < nResults {
				if isPoolGet(info, call) {
					born[j] = true
					continue
				}
				pb := s.ForCall(info, call).PoolBorn
				if len(pb) == 1 && pb[0] {
					born[j] = true
				}
			}
		}
	}

	// Callee-born tracking is gated on the function having a pool to Put
	// into: a caller with no pool in reach receives ownership and the
	// buffer simply leaves the pooled regime (documented caveat).
	canPut := poolInReach(info, body)

	var births []poolBirth
	for bi, b := range cfg.Blocks {
		for ni, node := range b.Nodes {
			as, ok := node.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			if isPoolGet(info, call) && len(as.Lhs) == 1 {
				if obj := lhsObject(info, as.Lhs[0]); obj != nil {
					births = append(births, poolBirth{obj: obj, block: bi, node: ni, site: call})
				}
				continue
			}
			if !canPut {
				continue
			}
			pb := s.ForCall(info, call).PoolBorn
			if len(pb) == 0 {
				continue
			}
			var errObj types.Object
			if last := lhsObject(info, as.Lhs[len(as.Lhs)-1]); last != nil && isErrorType(last.Type()) {
				errObj = last
			}
			for j, isBorn := range pb {
				if !isBorn || j >= len(as.Lhs) {
					continue
				}
				if obj := lhsObject(info, as.Lhs[j]); obj != nil {
					births = append(births, poolBirth{obj: obj, block: bi, node: ni, site: call, errObj: errObj})
				}
			}
		}
	}

	var diags []poolDiag
	for _, birth := range births {
		w := &poolWalker{
			info:        info,
			cfg:         cfg,
			s:           s,
			birth:       birth,
			namedResult: namedResult,
			born:        born,
			visited:     make(map[poolState]bool),
		}
		w.walk(birth.block, birth.node+1, birth.obj, false)
		diags = append(diags, w.diags...)
	}
	return born, diags
}

// poolState memoises the ownership walk: same block, same entry point,
// same current owner, same sharing mode — the continuation is identical.
type poolState struct {
	block  int
	start  int
	owner  types.Object
	shared bool
}

type poolWalker struct {
	info        *types.Info
	cfg         *CFG
	s           *Summaries
	birth       poolBirth
	namedResult map[types.Object]int
	born        []bool
	visited     map[poolState]bool
	diags       []poolDiag
}

func (w *poolWalker) leak(at token.Pos, overwrite bool) {
	name := w.birth.obj.Name()
	for _, d := range w.diags {
		if d.leak == at {
			return
		}
	}
	w.diags = append(w.diags, poolDiag{birth: w.birth.site, name: name, leak: at, overwrite: overwrite})
}

// walk advances the ownership automaton from block b, node index start,
// with the buffer currently bound to owner. shared marks buffers a closure
// has captured: aliased beyond what the walk can see, so leaks are no
// longer provable (and not reported), but a later Put still ends tracking
// and a later return still hands the buffer to the caller.
func (w *poolWalker) walk(bi, start int, owner types.Object, shared bool) {
	st := poolState{block: bi, start: start, owner: owner, shared: shared}
	if w.visited[st] {
		return
	}
	w.visited[st] = true
	b := w.cfg.Blocks[bi]
	for i := start; i < len(b.Nodes); i++ {
		node := b.Nodes[i]
		if ret, ok := node.(*ast.ReturnStmt); ok {
			w.ret(ret, owner, shared)
			return
		}
		switch act, next := w.scanNode(node, owner); act {
		case poolPut:
			return
		case poolEscape:
			return
		case poolShare:
			shared = true
		case poolMove:
			owner = next
		case poolLeak:
			if !shared {
				w.leak(node.Pos(), true)
				return
			}
		}
	}
	if b.Return != nil || b.Panics {
		// Return statements are handled above; panics unwind past the
		// pool's regime (the program is going down anyway).
		return
	}
	if b == w.cfg.Exit {
		// Fell off the end of the function with the buffer still live.
		if !shared {
			w.leak(body_end(w.cfg), false)
		}
		return
	}
	if len(b.Succs) == 0 {
		return
	}
	for _, s := range b.Succs {
		w.walk(s.Index, 0, owner, shared)
	}
}

// body_end picks a position for "the function's end" leaks: the last
// return-ish block, or the entry.
func body_end(c *CFG) token.Pos {
	for i := len(c.Blocks) - 1; i >= 0; i-- {
		for j := len(c.Blocks[i].Nodes) - 1; j >= 0; j-- {
			if p := c.Blocks[i].Nodes[j].Pos(); p.IsValid() {
				return p
			}
		}
	}
	return token.NoPos
}

// ret decides what a return statement does to a live buffer.
func (w *poolWalker) ret(rs *ast.ReturnStmt, owner types.Object, shared bool) {
	if len(rs.Results) == 0 {
		// Naked return: a named result holding the buffer hands it to the
		// caller; otherwise the buffer is dropped.
		if j, ok := w.namedResult[owner]; ok {
			if j < len(w.born) {
				w.born[j] = true
			}
			return
		}
		if !shared {
			w.leak(rs.Pos(), false)
		}
		return
	}
	for j, r := range rs.Results {
		e := unparen(r)
		if sl, ok := e.(*ast.SliceExpr); ok {
			// Reslicing shares the backing array: still a transfer.
			e = unparen(sl.X)
		}
		if id, ok := e.(*ast.Ident); ok && defOrUse(w.info, id) == owner {
			if j < len(w.born) {
				w.born[j] = true
			}
			return
		}
	}
	// The buffer may still escape through a composite in the results
	// (return Result{Values: buf}) — ownership moves into the returned
	// value, not lost.
	for _, r := range rs.Results {
		if exprMentions(w.info, r, owner) {
			return
		}
	}
	if w.birth.errObj != nil {
		// Propagating the sibling error of the birth assignment: on that
		// path the callee failed and no buffer was actually handed out.
		for _, r := range rs.Results {
			if exprMentions(w.info, r, w.birth.errObj) {
				return
			}
		}
	}
	if !shared {
		w.leak(rs.Pos(), false)
	}
}

type poolAction int

const (
	poolNone poolAction = iota
	poolPut
	poolEscape
	poolShare
	poolMove
	poolLeak
)

// scanNode classifies what one block node does to the owned buffer.
func (w *poolWalker) scanNode(node ast.Node, owner types.Object) (poolAction, types.Object) {
	action, next := poolNone, owner

	// Closure capture: the buffer is aliased beyond this walk's sight.
	// Tracking continues in shared mode — a worker-pool pattern hands the
	// buffer to goroutines and still returns (or Puts) it afterwards.
	capture := false
	ast.Inspect(node, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if exprMentions(w.info, lit, owner) {
				capture = true
			}
			return false
		}
		return true
	})
	if capture {
		return poolShare, owner
	}

	put := false
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isPoolPut(w.info, call) && len(call.Args) == 1 {
			if id, ok := unparen(call.Args[0]).(*ast.Ident); ok && defOrUse(w.info, id) == owner {
				put = true
			}
		}
		if lit, ok := n.(*ast.CompositeLit); ok && exprMentions(w.info, lit, owner) {
			// The buffer is packed into a longer-lived value.
			action = poolEscape
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(w.info, call, "append") {
			// append stores the buffer into the destination slice.
			for _, a := range call.Args[1:] {
				if exprMentions(w.info, a, owner) {
					action = poolEscape
				}
			}
		}
		return true
	})
	if put {
		return poolPut, owner
	}
	if action == poolEscape {
		return poolEscape, owner
	}

	if as, ok := node.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
		for i, r := range as.Rhs {
			if id, ok := unparen(r).(*ast.Ident); ok && defOrUse(w.info, id) == owner {
				// The buffer moves (or is additionally aliased) to the
				// i-th target; follow the value, not the name.
				if dst := lhsObject(w.info, as.Lhs[i]); dst != nil {
					return poolMove, dst
				}
				// Stored into a field, map or index expression.
				return poolEscape, owner
			}
		}
		for _, l := range as.Lhs {
			if id, ok := unparen(l).(*ast.Ident); ok && defOrUse(w.info, id) == owner {
				// Overwritten while live and the old value is not on the
				// right-hand side: the buffer is unreachable from here on.
				return poolLeak, owner
			}
		}
	}
	return action, next
}

// lhsObject resolves a bare-identifier assignment target ("_" gives nil).
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return defOrUse(info, id)
}

// exprMentions reports whether the expression subtree references obj.
func exprMentions(info *types.Info, e ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && defOrUse(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isPoolGet matches `p.Get(...)` on a pool type yielding a float vector —
// the VecPool shape — and not sync.Pool (whose Get returns any).
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	if !isPoolMethod(info, call, "Get") {
		return false
	}
	t := info.TypeOf(call)
	sl, ok := t.(*types.Slice)
	return ok && isFloat(sl.Elem())
}

// isPoolPut matches `p.Put(buf)` on a pool type.
func isPoolPut(info *types.Info, call *ast.CallExpr) bool {
	return isPoolMethod(info, call, "Put")
}

func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return isPoolType(info.TypeOf(sel.X))
}

// isPoolType reports whether t (through pointers) is a named type whose
// name ends in "Pool".
func isPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !strings.HasSuffix(named.Obj().Name(), "Pool") {
		return false
	}
	// sync.Pool is an arena of interface{} values, not a vector pool.
	return named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync"
}

// poolInReach reports whether the function can return buffers to a pool:
// its body touches a value that is a pool, or a struct carrying one.
func poolInReach(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		t := info.TypeOf(e)
		if t == nil {
			return true
		}
		if isPoolType(t) || structCarriesPool(t) {
			found = true
			return false
		}
		return true
	})
	return found
}

// structCarriesPool reports whether t (through pointers) is a struct with
// a pool-typed field.
func structCarriesPool(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isPoolType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// resultIndex counts the function's results and maps named-result objects
// to their indices.
func resultIndex(info *types.Info, ft *ast.FuncType) (int, map[types.Object]int) {
	named := make(map[types.Object]int)
	n := 0
	if ft == nil || ft.Results == nil {
		return 0, named
	}
	for _, f := range ft.Results.List {
		if len(f.Names) == 0 {
			n++
			continue
		}
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				named[obj] = n
			}
			n++
		}
	}
	return n, named
}
