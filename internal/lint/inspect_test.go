package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"github.com/performability/csrl/internal/lint"
)

const inspectSrc = `package p

import "sort"

type t struct{ xs []int }

func (v *t) sum(m map[string]float64) float64 {
	var s float64
	for _, x := range m {
		s += x
	}
	sort.Float64s(nil)
	return s + float64(len(v.xs)) + 1.5*2.5
}
`

func parseInspect(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "inspect_src.go", inspectSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// TestInspectorPreorderMatchesAstInspect asserts the replay visits exactly
// the nodes ast.Inspect visits, in the same order, for a filtered and an
// unfiltered mask.
func TestInspectorPreorderMatchesAstInspect(t *testing.T) {
	_, f := parseInspect(t)
	in := lint.NewInspector([]*ast.File{f})

	var want, got []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n != nil {
			want = append(want, n)
		}
		return true
	})
	in.Preorder(^uint64(0), func(n ast.Node) { got = append(got, n) })
	if len(got) != len(want) {
		t.Fatalf("full-mask Preorder visited %d nodes, ast.Inspect %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("node %d: Preorder visited %T, ast.Inspect %T", i, got[i], want[i])
		}
	}

	var wantCalls, gotCalls int
	ast.Inspect(f, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			wantCalls++
		}
		return true
	})
	in.Preorder(lint.Mask((*ast.CallExpr)(nil)), func(n ast.Node) {
		if _, ok := n.(*ast.CallExpr); !ok {
			t.Errorf("filtered Preorder visited %T", n)
		}
		gotCalls++
	})
	if gotCalls != wantCalls {
		t.Errorf("filtered Preorder found %d calls, want %d", gotCalls, wantCalls)
	}
}

// TestInspectorWithStack asserts the ancestor stack ends with the visited
// node and contains its real ancestors, outermost first.
func TestInspectorWithStack(t *testing.T) {
	_, f := parseInspect(t)
	in := lint.NewInspector([]*ast.File{f})

	seen := 0
	in.WithStack(lint.Mask((*ast.BinaryExpr)(nil)), func(n ast.Node, stack []ast.Node) {
		seen++
		if stack[len(stack)-1] != n {
			t.Fatalf("stack top is %T, want the visited node", stack[len(stack)-1])
		}
		if _, ok := stack[0].(*ast.File); !ok {
			t.Fatalf("stack bottom is %T, want *ast.File", stack[0])
		}
		// Each element must syntactically contain the next.
		for i := 0; i+1 < len(stack); i++ {
			if stack[i].Pos() > stack[i+1].Pos() || stack[i].End() < stack[i+1].End() {
				t.Fatalf("stack[%d] (%T) does not contain stack[%d] (%T)", i, stack[i], i+1, stack[i+1])
			}
		}
	})
	// s += x, s + ..., ... + 1.5*2.5, and the 1.5*2.5 factor live in the
	// source; += is an AssignStmt, so three binary expressions remain.
	if seen != 3 {
		t.Errorf("visited %d binary expressions, want 3", seen)
	}
}

// TestMaskBitsDistinct asserts the node types the analyzers rely on get
// distinct filter bits (a shared bit would make Preorder over-visit).
func TestMaskBitsDistinct(t *testing.T) {
	examples := []ast.Node{
		(*ast.AssignStmt)(nil), (*ast.BinaryExpr)(nil), (*ast.CallExpr)(nil),
		(*ast.CompositeLit)(nil), (*ast.DeferStmt)(nil), (*ast.ExprStmt)(nil),
		(*ast.ForStmt)(nil), (*ast.FuncDecl)(nil), (*ast.FuncLit)(nil),
		(*ast.GoStmt)(nil), (*ast.RangeStmt)(nil), (*ast.ReturnStmt)(nil),
		(*ast.SelectorExpr)(nil), (*ast.StructType)(nil), (*ast.TypeSpec)(nil),
		(*ast.UnaryExpr)(nil), (*ast.ValueSpec)(nil), (*ast.IncDecStmt)(nil),
	}
	seen := make(map[uint64]ast.Node)
	for _, n := range examples {
		bit := lint.Mask(n)
		if bit == 0 || bit&(bit-1) != 0 {
			t.Errorf("Mask(%T) = %#x, want a single bit", n, bit)
		}
		if prev, ok := seen[bit]; ok {
			t.Errorf("%T and %T share filter bit %#x", n, prev, bit)
		}
		seen[bit] = n
	}
}
