package lint

import (
	"go/ast"
	"strings"
)

// Bannedcall flags calls that library packages (anything under internal/)
// must not make, plus a performance foot-gun that is banned everywhere:
//
//   - fmt.Print/Printf/Println: libraries report through return values,
//     not stdout; printing belongs to the cmd/ and examples/ layers;
//   - os.Exit: robs callers (and deferred cleanup) of control;
//   - panic: the checking procedures return errors for every expected
//     failure; panics are reserved for programmer-error invariants and
//     need an explicit //lint:ignore bannedcall justification;
//   - the print/println builtins, in any package;
//   - math.Pow(x, n) for small integer constant n, in any package:
//     x*x beats the general pow kernel on the uniformisation hot paths
//     and is exact for the common squares/cubes.
var Bannedcall = &Analyzer{
	Name: "bannedcall",
	Doc:  "flags fmt.Print*/os.Exit/panic in library packages and math.Pow with small constant exponents",
	Run:  runBannedcall,
}

// maxPowExponent is the largest |n| for which math.Pow(x, n) is flagged.
const maxPowExponent = 4

func runBannedcall(pass *Pass) error {
	isLibrary := isInternalPath(pass.PkgPath) && pass.Pkg.Name() != "main"
	pass.Preorder(Mask((*ast.CallExpr)(nil)), func(n ast.Node) {
		call := n.(*ast.CallExpr)
		switch {
		case isBuiltin(pass.Info, call, "print") || isBuiltin(pass.Info, call, "println"):
			pass.ReportNodef(call, "builtin %s writes to stderr and survives into release builds; use fmt or a return value",
				call.Fun.(*ast.Ident).Name)
		case isLibrary && isBuiltin(pass.Info, call, "panic"):
			pass.ReportNodef(call, "panic in library package %s; return an error (//lint:ignore bannedcall <reason> for invariant checks)",
				pass.Pkg.Name())
		case isLibrary && isPkgFunc(pass.Info, call, "os", "Exit"):
			pass.ReportNodef(call, "os.Exit in library package %s skips deferred cleanup and robs callers of control; return an error",
				pass.Pkg.Name())
		case isLibrary && isFmtPrint(pass, call):
			pass.ReportNodef(call, "%s writes to stdout from library package %s; printing belongs in cmd/ or examples/",
				callName(pass, call), pass.Pkg.Name())
		case isPkgFunc(pass.Info, call, "math", "Pow") && len(call.Args) == 2:
			if n, ok := exactIntValue(pass.Info, call.Args[1]); ok && n >= -maxPowExponent && n <= maxPowExponent {
				pass.ReportNodef(call, "math.Pow(x, %d) on a numeric path; multiply out (x*x…) — faster and exact", n)
			}
		}
	})
	return nil
}

func isFmtPrint(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Print")
}
