package lint

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body, at basic-block
// granularity. Blocks[0] is the entry block; Exit is a virtual empty block
// every return, every terminating panic and the fall-off-the-end path feed
// into, so "reaches function exit" is a single-target reachability query.
//
// Block nodes are the statements and header expressions executed in the
// block, in execution order. Compound statements never appear whole:
// an if contributes its init statement and condition expression to the
// block that branches, a for its init/condition/post pieces to the
// respective blocks, a switch its init/tag, a range its operand (plus the
// per-iteration key/value assignment recorded in CFGBlock.Range). Bodies
// live in successor blocks. Walking every block's nodes therefore visits
// each executable node exactly once — function literals excepted: a
// FuncLit appears as an opaque expression in its enclosing block and has
// its own CFG.
type CFG struct {
	Blocks []*CFGBlock
	Entry  *CFGBlock
	Exit   *CFGBlock
}

// CFGBlock is one basic block.
type CFGBlock struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes holds the statements and header expressions of the block in
	// execution order (see the CFG doc comment).
	Nodes []ast.Node
	Succs []*CFGBlock
	Preds []*CFGBlock
	// Return is the return statement terminating the block, if any.
	Return *ast.ReturnStmt
	// Panics marks a block terminated by a call to the builtin panic.
	Panics bool
	// Range, when set, is the range statement whose per-iteration
	// key/value assignment this loop-head block performs.
	Range *ast.RangeStmt
	// Cond, when set, is the boolean expression this block branches on
	// (the condition of an if statement or of a for loop). TrueSucc and
	// FalseSucc are the successors taken when it evaluates true and false
	// respectively; both are also present in Succs. Analyzers use the
	// labels to refine facts along conditional edges (e.g. the probrange
	// interval analysis learns s <= 1 on the false edge of `if s > 1`).
	Cond      ast.Expr
	TrueSucc  *CFGBlock
	FalseSucc *CFGBlock
}

// BuildCFG constructs the CFG of a function body. A nil body (a function
// declared without one) yields a two-block entry→exit graph.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*CFGBlock),
	}
	entry := b.newBlock()
	b.cfg.Entry = entry
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	exit := b.newBlock()
	b.cfg.Exit = exit
	// Fall off the end of the body.
	b.jump(exit)
	for _, ret := range b.returns {
		addEdge(ret, exit)
	}
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			addEdge(g.from, target)
		}
	}
	return b.cfg
}

type pendingGoto struct {
	from  *CFGBlock
	label string
}

// loopCtx is one enclosing breakable (and possibly continuable) construct.
type loopCtx struct {
	label      string
	breakTo    *CFGBlock
	continueTo *CFGBlock // nil for switch/select
}

type cfgBuilder struct {
	cfg     *CFG
	cur     *CFGBlock // nil while the current point is unreachable
	loops   []loopCtx
	labels  map[string]*CFGBlock
	gotos   []pendingGoto
	returns []*CFGBlock // blocks ending in return or panic, wired to Exit last
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func addEdge(from, to *CFGBlock) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target (no-op when the
// current point is unreachable) and leaves the builder unreachable.
func (b *cfgBuilder) jump(target *CFGBlock) {
	if b.cur != nil {
		addEdge(b.cur, target)
	}
	b.cur = nil
}

// startBlock makes target the current block; a reachable current block
// falls through into it first.
func (b *cfgBuilder) startBlock(target *CFGBlock) {
	if b.cur != nil {
		addEdge(b.cur, target)
	}
	b.cur = target
}

// add appends a node to the current block, reviving an unreachable point
// as a fresh predecessor-less block so dead statements still own a block.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// findLoop returns the innermost loop context matching the label (any
// context when label is empty; continue-capable contexts only when
// needContinue is set).
func (b *cfgBuilder) findLoop(label string, needContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if needContinue && lc.continueTo == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.startBlock(lb)
		b.labels[s.Label.Name] = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.add(s)
		b.cur.Return = s
		b.returns = append(b.returns, b.cur)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if lc := b.findLoop(labelName(s.Label), false); lc != nil {
				b.jump(lc.breakTo)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if lc := b.findLoop(labelName(s.Label), true); lc != nil {
				b.jump(lc.continueTo)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: labelName(s.Label)})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the enclosing switch construction; the edge to the
			// next clause is added there. Nothing to record here.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		then := b.newBlock()
		addEdge(condBlk, then)
		condBlk.Cond, condBlk.TrueSucc = s.Cond, then
		b.cur = then
		b.stmtList(s.Body.List)
		b.jump(after)
		if s.Else != nil {
			els := b.newBlock()
			addEdge(condBlk, els)
			condBlk.FalseSucc = els
			b.cur = els
			b.stmt(s.Else, "")
			b.jump(after)
		} else {
			addEdge(condBlk, after)
			condBlk.FalseSucc = after
		}
		if len(after.Preds) > 0 {
			b.cur = after
		} else {
			b.cur = nil
		}

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		if s.Cond != nil {
			addEdge(head, after)
		}
		body := b.newBlock()
		addEdge(head, body)
		if s.Cond != nil {
			head.Cond, head.TrueSucc, head.FalseSucc = s.Cond, body, after
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.jump(post)
		b.loops = b.loops[:len(b.loops)-1]
		addEdge(post, head)
		if len(after.Preds) > 0 {
			b.cur = after
		} else {
			b.cur = nil
		}

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		head.Range = s
		b.startBlock(head)
		after := b.newBlock()
		addEdge(head, after) // the range may be empty / exhausted
		body := b.newBlock()
		addEdge(head, body)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.jump(head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, func(cc *ast.CaseClause, blk *CFGBlock) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, nil)

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		after := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			addEdge(head, blk)
			if comm.Comm != nil {
				blk.Nodes = append(blk.Nodes, comm.Comm)
			}
			b.cur = blk
			b.stmtList(comm.Body)
			b.jump(after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		// A select with no clauses blocks forever; otherwise execution
		// continues at after (possibly only via break).
		if len(after.Preds) > 0 {
			b.cur = after
		} else {
			b.cur = nil
		}

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur.Panics = true
			b.returns = append(b.returns, b.cur)
			b.cur = nil
		}

	default:
		// Assignments, declarations, go/defer/send/incdec/empty: straight-line.
		b.add(s)
	}
}

// switchClauses builds the clause blocks of a switch or type switch. All
// clause blocks hang off the header block (the evaluation order of case
// expressions is over-approximated as a free choice); fallthrough adds an
// edge to the following clause's block. addExprs, when non-nil, records the
// clause's case expressions in its block.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, addExprs func(*ast.CaseClause, *CFGBlock)) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
	blocks := make([]*CFGBlock, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		blocks[i] = b.newBlock()
		addEdge(head, blocks[i])
		if len(cc.List) == 0 {
			hasDefault = true
		}
		if addExprs != nil {
			addExprs(cc, blocks[i])
		}
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(clauses) {
			b.jump(blocks[i+1])
		} else {
			b.jump(after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		addEdge(head, after)
	}
	if len(after.Preds) > 0 {
		b.cur = after
	} else {
		b.cur = nil
	}
}

// fallsThrough reports whether a case body ends in a fallthrough statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func labelName(l *ast.Ident) string {
	if l == nil {
		return ""
	}
	return l.Name
}

// isPanicCall reports whether e is a direct call to the predeclared panic.
// Identifier resolution is unnecessary: shadowing panic is already banned
// by convention, and a false positive only shortens the CFG conservatively.
func isPanicCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// Reachable returns the set of blocks reachable from Entry, indexed by
// block index.
func (c *CFG) Reachable() []bool {
	seen := make([]bool, len(c.Blocks))
	var walk func(*CFGBlock)
	walk = func(b *CFGBlock) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

// Dominators returns dom with dom[b][a] reporting that block a dominates
// block b: every path from Entry to b passes through a. Blocks unreachable
// from Entry are vacuously dominated by everything.
func (c *CFG) Dominators() [][]bool {
	return c.dominance(c.Entry, func(b *CFGBlock) []*CFGBlock { return b.Preds })
}

// PostDominators returns pd with pd[b][a] reporting that block a
// post-dominates block b: every path from b to Exit passes through a.
// Blocks that cannot reach Exit (infinite loops) are vacuously
// post-dominated by everything.
func (c *CFG) PostDominators() [][]bool {
	return c.dominance(c.Exit, func(b *CFGBlock) []*CFGBlock { return b.Succs })
}

// dominance is the standard iterative dataflow computation of dominator
// sets over the graph rooted at root, following flow to enumerate the
// "incoming" neighbours of a block (Preds for dominators over the forward
// graph, Succs for post-dominators over the reverse graph).
func (c *CFG) dominance(root *CFGBlock, flow func(*CFGBlock) []*CFGBlock) [][]bool {
	n := len(c.Blocks)
	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		for j := range dom[i] {
			dom[i][j] = true // start from the universal set; root intersects it away
		}
	}
	for j := range dom[root.Index] {
		dom[root.Index][j] = j == root.Index
	}
	changed := true
	for changed {
		changed = false
		for _, b := range c.Blocks {
			if b == root {
				continue
			}
			ins := flow(b)
			if len(ins) == 0 {
				continue // unreachable in this direction: stays universal
			}
			for j := 0; j < n; j++ {
				if j == b.Index || !dom[b.Index][j] {
					continue
				}
				all := true
				for _, p := range ins {
					if !dom[p.Index][j] {
						all = false
						break
					}
				}
				if !all {
					dom[b.Index][j] = false
					changed = true
				}
			}
		}
	}
	return dom
}
