package lint

import (
	"go/ast"
)

// Inspector is the shared traversal core behind every analyzer: the
// package's files are walked exactly once at construction time into a flat
// event list, and each analyzer then replays the list filtered by the
// concrete node types it cares about. N analyzers therefore cost one AST
// walk per file plus N cheap array scans, instead of N walks — and the
// per-subtree type summaries let a scan skip whole subtrees that cannot
// contain a requested node type.
//
// The design follows golang.org/x/tools/go/ast/inspector, reimplemented
// here because the lint framework is stdlib-only by charter.
type Inspector struct {
	events []inspEvent
}

// inspEvent is one push or pop of the depth-first traversal. A push event
// stores the index of its matching pop (always greater than its own), a
// pop event the index of its matching push, so a replay can skip a whole
// subtree in O(1).
type inspEvent struct {
	node ast.Node
	bits uint64 // type bit of node
	sub  uint64 // union of bits over node and all its descendants (push only)
	pair int32
}

// NewInspector builds the event list for a set of files. It is the single
// AST walk the whole analyzer suite performs per package.
func NewInspector(files []*ast.File) *Inspector {
	var events []inspEvent
	var open []int32 // indices of push events still awaiting their pop
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				i := open[len(open)-1]
				open = open[:len(open)-1]
				events[i].pair = int32(len(events))
				if len(open) > 0 {
					events[open[len(open)-1]].sub |= events[i].sub
				}
				events = append(events, inspEvent{node: events[i].node, bits: events[i].bits, pair: i})
				return true
			}
			b := typeBit(n)
			open = append(open, int32(len(events)))
			events = append(events, inspEvent{node: n, bits: b, sub: b, pair: -1})
			return true
		})
	}
	return &Inspector{events: events}
}

// Preorder calls visit for every node whose concrete type is in mask, in
// depth-first source order.
func (in *Inspector) Preorder(mask uint64, visit func(n ast.Node)) {
	for i := 0; i < len(in.events); i++ {
		ev := in.events[i]
		if int(ev.pair) < i {
			continue // pop
		}
		if ev.sub&mask == 0 {
			i = int(ev.pair) // nothing of interest below; skip the subtree
			continue
		}
		if ev.bits&mask != 0 {
			visit(ev.node)
		}
	}
}

// WithStack is Preorder with the stack of enclosing nodes (outermost
// first, n itself last). The stack is reused between calls: callers must
// not retain it.
func (in *Inspector) WithStack(mask uint64, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for i := 0; i < len(in.events); i++ {
		ev := in.events[i]
		if int(ev.pair) < i {
			stack = stack[:len(stack)-1]
			continue
		}
		if ev.sub&mask == 0 {
			i = int(ev.pair) // skip subtree without touching the stack
			continue
		}
		stack = append(stack, ev.node)
		if ev.bits&mask != 0 {
			visit(ev.node, stack)
		}
	}
}

// Mask returns the type filter selecting the concrete node types of the
// given examples, for Preorder/WithStack. Pass typed nil pointers:
//
//	Mask((*ast.CallExpr)(nil), (*ast.BinaryExpr)(nil))
func Mask(nodes ...ast.Node) uint64 {
	var m uint64
	for _, n := range nodes {
		m |= typeBit(n)
	}
	return m
}

// typeBit maps each concrete ast.Node type to a distinct bit. Every type
// go/ast can produce has its own bit (55 concrete node types fit a
// uint64); the final bit is a catch-all for future node types so a mask
// can never silently drop nodes.
func typeBit(n ast.Node) uint64 {
	switch n.(type) {
	case *ast.ArrayType:
		return 1 << 0
	case *ast.AssignStmt:
		return 1 << 1
	case *ast.BadDecl:
		return 1 << 2
	case *ast.BadExpr:
		return 1 << 3
	case *ast.BadStmt:
		return 1 << 4
	case *ast.BasicLit:
		return 1 << 5
	case *ast.BinaryExpr:
		return 1 << 6
	case *ast.BlockStmt:
		return 1 << 7
	case *ast.BranchStmt:
		return 1 << 8
	case *ast.CallExpr:
		return 1 << 9
	case *ast.CaseClause:
		return 1 << 10
	case *ast.ChanType:
		return 1 << 11
	case *ast.CommClause:
		return 1 << 12
	case *ast.Comment:
		return 1 << 13
	case *ast.CommentGroup:
		return 1 << 14
	case *ast.CompositeLit:
		return 1 << 15
	case *ast.DeclStmt:
		return 1 << 16
	case *ast.DeferStmt:
		return 1 << 17
	case *ast.Ellipsis:
		return 1 << 18
	case *ast.EmptyStmt:
		return 1 << 19
	case *ast.ExprStmt:
		return 1 << 20
	case *ast.Field:
		return 1 << 21
	case *ast.FieldList:
		return 1 << 22
	case *ast.File:
		return 1 << 23
	case *ast.ForStmt:
		return 1 << 24
	case *ast.FuncDecl:
		return 1 << 25
	case *ast.FuncLit:
		return 1 << 26
	case *ast.FuncType:
		return 1 << 27
	case *ast.GenDecl:
		return 1 << 28
	case *ast.GoStmt:
		return 1 << 29
	case *ast.Ident:
		return 1 << 30
	case *ast.IfStmt:
		return 1 << 31
	case *ast.ImportSpec:
		return 1 << 32
	case *ast.IncDecStmt:
		return 1 << 33
	case *ast.IndexExpr:
		return 1 << 34
	case *ast.IndexListExpr:
		return 1 << 35
	case *ast.InterfaceType:
		return 1 << 36
	case *ast.KeyValueExpr:
		return 1 << 37
	case *ast.LabeledStmt:
		return 1 << 38
	case *ast.MapType:
		return 1 << 39
	case *ast.ParenExpr:
		return 1 << 40
	case *ast.RangeStmt:
		return 1 << 41
	case *ast.ReturnStmt:
		return 1 << 42
	case *ast.SelectStmt:
		return 1 << 43
	case *ast.SelectorExpr:
		return 1 << 44
	case *ast.SendStmt:
		return 1 << 45
	case *ast.SliceExpr:
		return 1 << 46
	case *ast.StarExpr:
		return 1 << 47
	case *ast.StructType:
		return 1 << 48
	case *ast.SwitchStmt:
		return 1 << 49
	case *ast.TypeAssertExpr:
		return 1 << 50
	case *ast.TypeSpec:
		return 1 << 51
	case *ast.TypeSwitchStmt:
		return 1 << 52
	case *ast.UnaryExpr:
		return 1 << 53
	case *ast.ValueSpec:
		return 1 << 54
	default:
		return 1 << 63
	}
}
