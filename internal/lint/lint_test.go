package lint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/performability/csrl/internal/lint"
)

// newLoader returns a loader rooted at this module.
func newLoader(t *testing.T) *lint.Loader {
	t.Helper()
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	return l
}

// loadGolden type-checks one testdata/lint file under a synthetic import
// path and runs a single analyzer over it.
func loadGolden(t *testing.T, l *lint.Loader, relFile, pkgPath, analyzer string) []lint.Diagnostic {
	t.Helper()
	return loadGoldenVersion(t, l, relFile, pkgPath, analyzer, "")
}

// loadGoldenVersion is loadGolden with an explicit module go version, for
// analyzers whose checks are gated on the go directive (goVersion ""
// means "current toolchain semantics").
func loadGoldenVersion(t *testing.T, l *lint.Loader, relFile, pkgPath, analyzer, goVersion string) []lint.Diagnostic {
	t.Helper()
	full := filepath.Join(l.ModuleDir, "testdata", "lint", filepath.FromSlash(relFile))
	f, err := parser.ParseFile(l.Fset(), full, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", relFile, err)
	}
	tpkg, info, err := l.TypeCheck(pkgPath, []*ast.File{f})
	if err != nil {
		t.Fatalf("type-check %s: %v", relFile, err)
	}
	a := lint.ByName(analyzer)
	if a == nil {
		t.Fatalf("unknown analyzer %q", analyzer)
	}
	pkg := &lint.Package{
		Dir:       filepath.Dir(full),
		Path:      pkgPath,
		Fset:      l.Fset(),
		Files:     []*ast.File{f},
		Types:     tpkg,
		Info:      info,
		GoVersion: goVersion,
	}
	diags, err := lint.NewRunner([]*lint.Analyzer{a}).RunPackage(pkg)
	if err != nil {
		t.Fatalf("run %s on %s: %v", analyzer, relFile, err)
	}
	return diags
}

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// checkGolden compares diagnostics against the file's `// want "substr"`
// comments: every diagnostic must land on a line with a matching want, and
// every want must be matched by exactly one diagnostic.
func checkGolden(t *testing.T, relFile string, diags []lint.Diagnostic) {
	t.Helper()
	l := newLoader(t)
	full := filepath.Join(l.ModuleDir, "testdata", "lint", filepath.FromSlash(relFile))
	src, err := os.ReadFile(full)
	if err != nil {
		t.Fatalf("read %s: %v", relFile, err)
	}
	type want struct {
		line int
		sub  string
		hit  bool
	}
	var wants []*want
	for i, line := range strings.Split(string(src), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			wants = append(wants, &want{line: i + 1, sub: m[1]})
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.line == d.Pos.Line && strings.Contains(d.Message, w.sub) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)", relFile, d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", relFile, w.line, w.sub)
		}
	}
}

func TestGoldenFiles(t *testing.T) {
	l := newLoader(t)
	fakePath := l.ModulePath + "/internal/fake"
	cases := []struct {
		file      string
		pkgPath   string
		analyzer  string
		goVersion string
	}{
		{file: "floatcmp/positive.go", pkgPath: fakePath, analyzer: "floatcmp"},
		{file: "floatcmp/negative.go", pkgPath: fakePath, analyzer: "floatcmp"},
		{file: "expunderflow/positive.go", pkgPath: fakePath, analyzer: "expunderflow"},
		{file: "expunderflow/negative.go", pkgPath: l.ModulePath + "/internal/numeric", analyzer: "expunderflow"},
		{file: "expunderflow/negative_outside.go", pkgPath: fakePath, analyzer: "expunderflow"},
		{file: "droppederr/positive.go", pkgPath: fakePath, analyzer: "droppederr"},
		{file: "droppederr/negative.go", pkgPath: fakePath, analyzer: "droppederr"},
		{file: "aliasret/positive.go", pkgPath: l.ModulePath + "/internal/sparse", analyzer: "aliasret"},
		{file: "aliasret/negative.go", pkgPath: l.ModulePath + "/internal/sparse", analyzer: "aliasret"},
		{file: "aliasret/negative_otherpkg.go", pkgPath: fakePath, analyzer: "aliasret"},
		{file: "bannedcall/positive.go", pkgPath: fakePath, analyzer: "bannedcall"},
		{file: "bannedcall/negative.go", pkgPath: l.ModulePath + "/cmd/fake", analyzer: "bannedcall"},
		{file: "guardedfield/positive.go", pkgPath: fakePath, analyzer: "guardedfield"},
		{file: "guardedfield/negative.go", pkgPath: fakePath, analyzer: "guardedfield"},
		{file: "goroutinemisuse/positive.go", pkgPath: fakePath, analyzer: "goroutinemisuse"},
		{file: "goroutinemisuse/negative.go", pkgPath: fakePath, analyzer: "goroutinemisuse"},
		{file: "goroutinemisuse/capture_old.go", pkgPath: fakePath, analyzer: "goroutinemisuse", goVersion: "1.21"},
		{file: "maporder/positive.go", pkgPath: fakePath, analyzer: "maporder"},
		{file: "maporder/negative.go", pkgPath: fakePath, analyzer: "maporder"},
		{file: "mutexcopy/positive.go", pkgPath: fakePath, analyzer: "mutexcopy"},
		{file: "mutexcopy/negative.go", pkgPath: fakePath, analyzer: "mutexcopy"},
		{file: "ignore/suppressed.go", pkgPath: fakePath, analyzer: "floatcmp"},
		{file: "ignore/multiline.go", pkgPath: fakePath, analyzer: "floatcmp"},
		{file: "epsbudget/positive.go", pkgPath: fakePath, analyzer: "epsbudget"},
		{file: "epsbudget/negative.go", pkgPath: fakePath, analyzer: "epsbudget"},
		{file: "ledgercharge/positive.go", pkgPath: fakePath, analyzer: "ledgercharge"},
		{file: "ledgercharge/negative.go", pkgPath: fakePath, analyzer: "ledgercharge"},
		{file: "poolescape/positive.go", pkgPath: fakePath, analyzer: "poolescape"},
		{file: "poolescape/negative.go", pkgPath: fakePath, analyzer: "poolescape"},
		{file: "floatcmp/wrappers.go", pkgPath: fakePath, analyzer: "floatcmp"},
		{file: "domainflow/positive.go", pkgPath: fakePath, analyzer: "domainflow"},
		{file: "domainflow/negative.go", pkgPath: fakePath, analyzer: "domainflow"},
		{file: "domainflow/suppressed.go", pkgPath: fakePath, analyzer: "domainflow"},
		{file: "probrange/positive.go", pkgPath: fakePath, analyzer: "probrange"},
		{file: "probrange/negative.go", pkgPath: fakePath, analyzer: "probrange"},
		{file: "probrange/suppressed.go", pkgPath: fakePath, analyzer: "probrange"},
		{file: "detorder/positive.go", pkgPath: fakePath, analyzer: "detorder"},
		{file: "detorder/negative.go", pkgPath: fakePath, analyzer: "detorder"},
		{file: "detorder/suppressed.go", pkgPath: fakePath, analyzer: "detorder"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.ReplaceAll(tc.file, "/", "_"), func(t *testing.T) {
			diags := loadGoldenVersion(t, l, tc.file, tc.pkgPath, tc.analyzer, tc.goVersion)
			checkGolden(t, tc.file, diags)
		})
	}
}

// TestIgnoreDirectives asserts directive validation directly: a directive
// without a reason and one naming an unknown analyzer are both reported,
// and neither suppresses the finding it sits on.
func TestIgnoreDirectives(t *testing.T) {
	l := newLoader(t)
	diags := loadGolden(t, l, "ignore/malformed.go", l.ModulePath+"/internal/fake", "floatcmp")
	var gotMalformed, gotUnknown bool
	var floatcmpCount int
	for _, d := range diags {
		switch {
		case d.Analyzer == "ignore" && strings.Contains(d.Message, "malformed //lint:ignore"):
			gotMalformed = true
		case d.Analyzer == "ignore" && strings.Contains(d.Message, "unknown analyzer"):
			gotUnknown = true
		case d.Analyzer == "floatcmp":
			floatcmpCount++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !gotMalformed {
		t.Error("reason-less directive was not reported as malformed")
	}
	if !gotUnknown {
		t.Error("unknown-analyzer directive was not reported")
	}
	if floatcmpCount != 2 {
		t.Errorf("got %d floatcmp findings, want 2 (invalid directives must not suppress)", floatcmpCount)
	}
}

func TestDiagnosticString(t *testing.T) {
	l := newLoader(t)
	diags := loadGolden(t, l, "floatcmp/positive.go", l.ModulePath+"/internal/fake", "floatcmp")
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	s := diags[0].String()
	if !strings.Contains(s, "positive.go:") || !strings.HasSuffix(s, "(floatcmp)") {
		t.Errorf("diagnostic rendering %q lacks file:line or analyzer suffix", s)
	}
}

func TestAnalyzerRegistry(t *testing.T) {
	all := lint.All()
	if len(all) < 12 {
		t.Fatalf("registry has %d analyzers, want >= 12", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if lint.ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName of an unknown analyzer should be nil")
	}
	for _, required := range []string{
		"floatcmp", "expunderflow", "droppederr", "aliasret", "bannedcall",
		"guardedfield", "goroutinemisuse", "maporder", "mutexcopy",
		"epsbudget", "ledgercharge", "poolescape",
	} {
		if !seen[required] {
			t.Errorf("required analyzer %q missing from registry", required)
		}
	}
}

func TestLoaderExpand(t *testing.T) {
	l := newLoader(t)
	dirs, err := l.Expand(l.ModuleDir, []string{"./..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	var haveSparse, haveDriver bool
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand included testdata directory %s", d)
		}
		if strings.HasSuffix(d, filepath.FromSlash("internal/sparse")) {
			haveSparse = true
		}
		if strings.HasSuffix(d, filepath.FromSlash("cmd/mrmlint")) {
			haveDriver = true
		}
	}
	if !haveSparse || !haveDriver {
		t.Errorf("Expand(./...) missed expected packages (sparse=%v driver=%v) in %d dirs", haveSparse, haveDriver, len(dirs))
	}
}

func TestLoaderLoadDir(t *testing.T) {
	l := newLoader(t)
	pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, "internal", "sparse"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.Types.Name() != "sparse" {
		t.Errorf("package name %q, want sparse", pkg.Types.Name())
	}
	if want := l.ModulePath + "/internal/sparse"; pkg.Path != want {
		t.Errorf("package path %q, want %q", pkg.Path, want)
	}
	if len(pkg.Files) == 0 {
		t.Error("no files loaded")
	}
	// Loading a package that imports another module package exercises the
	// chained importer.
	if _, err := l.LoadDir(filepath.Join(l.ModuleDir, "internal", "numeric")); err != nil {
		t.Fatalf("LoadDir(numeric): %v", err)
	}
}

func TestLoaderRejectsOutsidePattern(t *testing.T) {
	l := newLoader(t)
	if _, err := l.Expand(l.ModuleDir, []string{"../elsewhere"}); err == nil {
		t.Error("pattern escaping the module was accepted")
	}
}

// Example of the suppression syntax for the README: not a test, but keeps
// the documented form compiling in CI.
func Example() {
	fmt.Println("//lint:ignore floatcmp <reason>")
	// Output: //lint:ignore floatcmp <reason>
}
