package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Ledgercharge enforces the error-budget ledger discipline: every call to
// a truncating procedure (declared by //numerics:truncates or the builtin
// registry) must be followed — on every path that completes normally — by
// a bounded Charge on an obs Recorder. Paths that propagate an error or
// panic are exempt (the computation's result is discarded), and a function
// that is itself annotated has passed the charge duty to its callers. The
// usual `if o.Obs != nil { o.Obs.Charge(...) }` guard counts as charging
// on both arms: a nil Recorder means observability is off, not that mass
// went missing.
//
// The analyzer also validates //numerics:truncates labels against the
// canonical ledger vocabulary in internal/obs, so an annotation typo is a
// lint error rather than a silently fragmented report.
var Ledgercharge = &Analyzer{
	Name:    "ledgercharge",
	Doc:     "flags truncating calls whose dropped mass is never charged to the error-budget ledger",
	Version: 1,
	Run:     runLedgercharge,
}

func runLedgercharge(pass *Pass) error {
	s := pass.Summaries()

	// Annotation-label validation for this package's declarations
	// (functions and interface methods alike).
	reportBad := func(doc *ast.CommentGroup) {
		_, bad, _ := parseTruncates(doc)
		for _, b := range bad {
			if b.Term == "" {
				pass.Reportf(b.Pos, "//numerics:truncates without a component/term label")
				continue
			}
			pass.Reportf(b.Pos, "//numerics:truncates label %q: %s", b.Term, b.Reason)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				reportBad(d.Doc)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range it.Methods.List {
						reportBad(m.Doc)
					}
				}
			}
		}
	}

	pass.Preorder(Mask((*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)), func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if _, _, annotated := parseTruncates(fn.Doc); annotated {
				// The annotation moves the charge duty to the callers.
				return
			}
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return
		}
		for _, v := range unchargedSites(pass.pkg, body, s) {
			pass.ReportNodef(v.site, "truncating call (%s) is not charged to the ledger on the path leaving at line %d; add an obs Charge after it or annotate the enclosing function with %s",
				strings.Join(v.terms, ", "), pass.Fset.Position(v.leavePos).Line, truncatesPrefix)
		}
	})
	return nil
}

// chargeViolation is one truncating call with an uncharged normal path.
type chargeViolation struct {
	site     *ast.CallExpr
	terms    []string
	leavePos token.Pos
}

// unchargedSites finds truncating calls in body that some normal
// completion path exits without a ledger charge.
func unchargedSites(pkg *Package, body *ast.BlockStmt, s *Summaries) []chargeViolation {
	info := pkg.Info
	cfg := pkg.CFG(body)

	// Charging markers: blocks containing a bounded Charge call, plus the
	// condition nodes of `if recorder != nil { ... Charge ... }` guards —
	// passing the guard means the charge regime was honoured whichever arm
	// ran.
	guarded := guardedCharges(info, body)
	charging := make([]map[int]bool, len(cfg.Blocks)) // block -> node indices at/after which the path is charged
	for bi, b := range cfg.Blocks {
		for ni, node := range b.Nodes {
			if nodeCharges(info, node) || guarded[nodeExpr(node)] {
				if charging[bi] == nil {
					charging[bi] = make(map[int]bool)
				}
				charging[bi][ni] = true
			}
		}
	}

	var out []chargeViolation
	for bi, b := range cfg.Blocks {
		for ni, node := range b.Nodes {
			walkCalls(node, func(call *ast.CallExpr) {
				sum := s.ForCall(info, call)
				if len(sum.Truncates) == 0 {
					return
				}
				w := &chargeWalker{info: info, cfg: cfg, charging: charging, visited: make(map[[2]int]bool)}
				// The site's own node may also hold the charge (charged
				// result expression); start checking at the same index.
				if pos, ok := w.walk(bi, ni, true); !ok {
					out = append(out, chargeViolation{site: call, terms: sum.Truncates, leavePos: pos})
				}
			})
		}
	}
	return out
}

type chargeWalker struct {
	info     *types.Info
	cfg      *CFG
	charging []map[int]bool
	visited  map[[2]int]bool
}

// walk reports whether every path from block bi (starting at node index
// start) to a normal exit passes a charging marker; on failure it returns
// the position where the first uncharged path leaves the function.
func (w *chargeWalker) walk(bi, start int, first bool) (token.Pos, bool) {
	if !first {
		if w.visited[[2]int{bi, start}] {
			return token.NoPos, true
		}
		w.visited[[2]int{bi, start}] = true
	}
	b := w.cfg.Blocks[bi]
	for i := start; i < len(b.Nodes); i++ {
		if w.charging[bi] != nil && w.charging[bi][i] {
			return token.NoPos, true
		}
		if ret, ok := b.Nodes[i].(*ast.ReturnStmt); ok {
			if isErrorReturn(w.info, ret) {
				return token.NoPos, true
			}
			return ret.Pos(), false
		}
	}
	if b.Panics {
		return token.NoPos, true
	}
	if b == w.cfg.Exit || len(b.Succs) == 0 {
		// Normal completion (fell off the end) without a charge.
		if b == w.cfg.Exit {
			return body_end(w.cfg), false
		}
		return token.NoPos, true // dead block (e.g. select{} forever)
	}
	for _, s := range b.Succs {
		if pos, ok := w.walk(s.Index, 0, false); !ok {
			return pos, false
		}
	}
	return token.NoPos, true
}

// isErrorReturn reports whether a return statement propagates a failure:
// some result in an error position is definitely non-nil (a non-nil
// identifier or a call), or the return is too opaque to judge (naked, or
// forwarding a multi-value call) — opaque returns are exempt rather than
// flagged, keeping the analyzer's false-positive rate at zero.
func isErrorReturn(info *types.Info, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return true // naked return: cannot see the named error's value
	}
	for _, r := range ret.Results {
		e := unparen(r)
		t := info.TypeOf(e)
		if t == nil || !isErrorType(t) {
			// A forwarded call's tuple hides the error value.
			if call, ok := e.(*ast.CallExpr); ok && len(ret.Results) == 1 {
				if tup, ok := info.TypeOf(call).(*types.Tuple); ok {
					for i := 0; i < tup.Len(); i++ {
						if isErrorType(tup.At(i).Type()) {
							return true
						}
					}
				}
			}
			continue
		}
		if id, ok := e.(*ast.Ident); ok {
			if id.Name != "nil" {
				return true // returning an error variable: failure path
			}
			continue
		}
		// fmt.Errorf(...), wrapped errors, etc.
		return true
	}
	return false
}

// nodeCharges reports whether the node contains a bounded ledger charge:
// a call to the Charge method of an obs Recorder (ChargeIndicative is
// advisory and does not discharge the obligation).
func nodeCharges(info *types.Info, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isChargeCall(info, call) {
			found = true
		}
		return !found
	})
	return found
}

// isChargeCall matches r.Charge(...) for a Recorder-like receiver.
func isChargeCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Charge" {
		return false
	}
	return isRecorderType(info.TypeOf(sel.X))
}

// isRecorderType reports whether t (through pointers) is a named type or
// interface that looks like an error-budget recorder ("Recorder" in its
// name, or a Charge method).
func isRecorderType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if strings.Contains(named.Obj().Name(), "Recorder") {
			return true
		}
	}
	for _, t := range []types.Type{t, t.Underlying()} {
		if iface, ok := t.(*types.Interface); ok {
			for i := 0; i < iface.NumMethods(); i++ {
				if iface.Method(i).Name() == "Charge" {
					return true
				}
			}
		}
	}
	return false
}

// guardedCharges finds the `if rec != nil { ... }` guards whose body
// charges the ledger, keyed by their condition expression (the node the
// CFG keeps in the branching block).
func guardedCharges(info *types.Info, body *ast.BlockStmt) map[ast.Expr]bool {
	out := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		bin, ok := unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || bin.Op != token.NEQ {
			return true
		}
		var rec ast.Expr
		switch {
		case isNilIdent(bin.Y):
			rec = bin.X
		case isNilIdent(bin.X):
			rec = bin.Y
		default:
			return true
		}
		if !isRecorderType(info.TypeOf(rec)) {
			return true
		}
		if nodeCharges(info, ifs.Body) {
			out[ifs.Cond] = true
		}
		return true
	})
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// nodeExpr returns node as an expression (CFG blocks store condition
// expressions directly), or nil.
func nodeExpr(node ast.Node) ast.Expr {
	e, _ := node.(ast.Expr)
	return e
}
