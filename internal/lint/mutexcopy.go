package lint

import (
	"go/ast"
	"go/types"
)

// Mutexcopy flags values that carry a sync primitive being copied: a copy
// of a sync.Mutex is a second, independently-unlocked mutex, so the copy
// silently stops guarding anything. Mirrors `go vet -copylocks` so the
// lint run catches it even where vet is not wired in, and so the two can
// be cross-checked in CI. Flagged shapes:
//
//   - methods with a value receiver on a lock-bearing type;
//   - function parameters or results of a lock-bearing (non-pointer) type;
//   - assignments whose right-hand side copies an existing lock-bearing
//     value (`x := *p`, `y = x`) — fresh composite literals and zero
//     values are fine, they have never guarded anything;
//   - range clauses whose value variable copies lock-bearing elements.
var Mutexcopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "flags sync.Mutex/RWMutex/WaitGroup/Once/Cond values copied via receivers, params, results, assignments or range clauses",
	Run:  runMutexcopy,
}

func runMutexcopy(pass *Pass) error {
	mask := Mask((*ast.FuncDecl)(nil), (*ast.AssignStmt)(nil), (*ast.RangeStmt)(nil))
	pass.Preorder(mask, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFuncSignature(pass, n)
		case *ast.AssignStmt:
			checkAssignCopies(pass, n)
		case *ast.RangeStmt:
			if n.Value != nil {
				if name := lockPath(pass.TypeOf(n.Value)); name != "" {
					pass.ReportNodef(n.Value, "range value variable copies %s each iteration; range over indices or use a slice of pointers", name)
				}
			}
		}
	})
	return nil
}

// checkFuncSignature flags value receivers, parameters and results whose
// type embeds a sync primitive.
func checkFuncSignature(pass *Pass, fd *ast.FuncDecl) {
	report := func(field *ast.Field, role string) {
		if name := lockPath(pass.TypeOf(field.Type)); name != "" {
			pass.ReportNodef(field, "%s copies %s; pass a pointer instead", role, name)
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			report(f, "value receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			report(f, "parameter")
		}
	}
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			report(f, "result")
		}
	}
}

// checkAssignCopies flags assignments that duplicate an existing
// lock-bearing value. Sources that construct a fresh value — composite
// literals, conversions of literals, function calls — are exempt: a mutex
// that has never been shared cannot be desynchronised by the copy.
func checkAssignCopies(pass *Pass, as *ast.AssignStmt) {
	n := len(as.Rhs)
	if n == 0 || len(as.Lhs) != n {
		return // x, y := f() — the call constructs fresh values
	}
	for i, rhs := range as.Rhs {
		if id, ok := unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
			continue // discarded, no second copy lives on
		}
		src := unparen(rhs)
		switch src.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			// reads of an existing value: copying these duplicates state
		default:
			continue
		}
		if name := lockPath(pass.TypeOf(src)); name != "" {
			pass.ReportNodef(as.Lhs[i], "assignment copies %s; use a pointer to share the original", name)
		}
	}
}

// lockPath reports a human-readable description of the sync primitive a
// (non-pointer) type carries by value, or "". It recurses through structs
// and arrays, mirroring what an implicit copy duplicates.
func lockPath(t types.Type) string {
	return lockPathDepth(t, 0)
}

func lockPathDepth(t types.Type, depth int) string {
	if t == nil || depth > 10 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockPathDepth(u.Field(i).Type(), depth+1); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockPathDepth(u.Elem(), depth+1)
	}
	return ""
}
