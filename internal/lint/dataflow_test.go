package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typeCheckFunc parses and type-checks a single-function source and returns
// the function body with its type info.
func typeCheckFunc(t *testing.T, src string) (*ast.BlockStmt, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body, info
		}
	}
	t.Fatal("fixture has no function body")
	return nil, nil
}

// defsOf lists the indices of defs of the named variable.
func defsOf(rd *ReachingDefs, name string) []int {
	var out []int
	for i, d := range rd.Defs {
		if d.Obj != nil && d.Obj.Name() == name {
			out = append(out, i)
		}
	}
	return out
}

// blockContaining finds the block holding the given statement.
func blockContaining(t *testing.T, cfg *CFG, match func(ast.Node) bool) *CFGBlock {
	t.Helper()
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if match(n) {
				return b
			}
		}
	}
	t.Fatal("no block contains the requested statement")
	return nil
}

// TestReachingDefsJoin asserts both branch definitions of x survive to the
// join point, and that the then-branch redefinition kills the initial one
// on its own path.
func TestReachingDefsJoin(t *testing.T) {
	body, info := typeCheckFunc(t, `func f(a int) int {
		x := 1
		if a > 0 {
			x = 2
		}
		y := x
		return y
	}`)
	cfg := BuildCFG(body)
	rd := cfg.ComputeReachingDefs(info)

	xDefs := defsOf(rd, "x")
	if len(xDefs) != 2 {
		t.Fatalf("got %d defs of x, want 2", len(xDefs))
	}
	join := blockContaining(t, cfg, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == "y"
	})
	for _, d := range xDefs {
		if !rd.In[join.Index][d] {
			t.Errorf("def %d of x does not reach the join block; In = %v", d, rd.In[join.Index])
		}
	}
	// On the exit of the redefining block, only the second def survives.
	redef := rd.Defs[xDefs[1]]
	out := rd.Out[redef.Block]
	if !out[xDefs[1]] || out[xDefs[0]] {
		t.Errorf("redefining block should kill def %d and generate def %d; Out = %v", xDefs[0], xDefs[1], out)
	}
}

// TestReachingDefsLoop asserts the loop-carried definition flows around the
// back edge: at the return, both the initial and in-loop defs of s reach.
func TestReachingDefsLoop(t *testing.T) {
	body, info := typeCheckFunc(t, `func g(n int) int {
		s := 0
		for i := 0; i < n; i++ {
			s = s + i
		}
		return s
	}`)
	cfg := BuildCFG(body)
	rd := cfg.ComputeReachingDefs(info)

	sDefs := defsOf(rd, "s")
	if len(sDefs) != 2 {
		t.Fatalf("got %d defs of s, want 2", len(sDefs))
	}
	ret := blockContaining(t, cfg, func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
	for _, d := range sDefs {
		if !rd.In[ret.Index][d] {
			t.Errorf("def %d of s does not reach the return; In = %v", d, rd.In[ret.Index])
		}
	}
	// The loop-body definition must also reach its own block entry via the
	// back edge join at the loop head.
	loopDef := rd.Defs[sDefs[1]]
	if !rd.In[loopDef.Block][sDefs[1]] {
		t.Errorf("loop-carried def %d does not flow around the back edge; In = %v", sDefs[1], rd.In[loopDef.Block])
	}
}

// TestRangeBindingDefs asserts range key/value bindings get definition
// sites attributed to the loop-head block.
func TestRangeBindingDefs(t *testing.T) {
	body, info := typeCheckFunc(t, `func h(xs []int) int {
		total := 0
		for _, v := range xs {
			total += v
		}
		return total
	}`)
	cfg := BuildCFG(body)
	rd := cfg.ComputeReachingDefs(info)
	vDefs := defsOf(rd, "v")
	if len(vDefs) != 1 {
		t.Fatalf("got %d defs of v, want 1", len(vDefs))
	}
	if _, ok := rd.Defs[vDefs[0]].Node.(*ast.RangeStmt); !ok {
		t.Errorf("def of v attributed to %T, want *ast.RangeStmt", rd.Defs[vDefs[0]].Node)
	}
}

// fakeOrigin builds distinct types.Object values for taint-lattice tests.
func fakeOrigin(name string) types.Object {
	return types.NewVar(token.NoPos, nil, name, types.Typ[types.Float64])
}

// TestTaintLattice exercises the join/clone/equal operations the epsbudget
// accumulation relies on: join is pointwise max, clone isolates, equality
// is exact.
func TestTaintLattice(t *testing.T) {
	v, o1, o2 := fakeOrigin("v"), fakeOrigin("eps"), fakeOrigin("delta")
	a := Taint{v: {o1: 0.5}}
	b := Taint{v: {o1: 0.25, o2: 1}}

	j := joinTaint(a, b)
	if j[v][o1] != 0.5 || j[v][o2] != 1 {
		t.Errorf("join = %v, want max(0.5,0.25) for eps and 1 for delta", j[v])
	}
	if a[v][o2] != 0 || b[v][o1] != 0.25 {
		t.Error("join mutated its inputs")
	}

	c := a.clone()
	c[v][o1] = 0.75
	if a[v][o1] != 0.5 {
		t.Error("clone shares origin maps with the original")
	}

	if !equalTaint(a, Taint{v: {o1: 0.5}}) {
		t.Error("equalTaint rejects an identical fact")
	}
	if equalTaint(a, b) || equalTaint(a, Taint{}) {
		t.Error("equalTaint accepts differing facts")
	}
}
