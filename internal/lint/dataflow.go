package lint

import (
	"go/ast"
	"go/types"
)

// FlowProblem is a forward dataflow problem over a CFG. Facts flow from a
// block's entry through Transfer to its exit and are combined across
// incoming edges with Join. The solver iterates to a fixed point, so Join
// and Transfer must be monotone and the fact lattice of finite height.
type FlowProblem interface {
	// Entry returns the fact at the function entry.
	Entry() any
	// Transfer maps a block's entry fact to its exit fact. It must not
	// mutate in.
	Transfer(b *CFGBlock, in any) any
	// Join combines two facts flowing into the same block. It must not
	// mutate either argument.
	Join(a, b any) any
	// Equal reports whether two facts are equal (fixed-point test).
	Equal(a, b any) bool
}

// Forward solves a forward dataflow problem over the CFG and returns the
// entry and exit fact of every block, indexed by block index. Blocks
// unreachable from Entry keep nil facts.
func (c *CFG) Forward(p FlowProblem) (in, out []any) {
	n := len(c.Blocks)
	in = make([]any, n)
	out = make([]any, n)
	reach := c.Reachable()
	in[c.Entry.Index] = p.Entry()
	out[c.Entry.Index] = p.Transfer(c.Entry, in[c.Entry.Index])
	changed := true
	for changed {
		changed = false
		for _, b := range c.Blocks {
			if !reach[b.Index] || b == c.Entry {
				continue
			}
			var acc any
			for _, pred := range b.Preds {
				o := out[pred.Index]
				if o == nil {
					continue
				}
				if acc == nil {
					acc = o
				} else {
					acc = p.Join(acc, o)
				}
			}
			if acc == nil {
				continue // all predecessors still unsolved
			}
			if in[b.Index] == nil || !p.Equal(in[b.Index], acc) {
				in[b.Index] = acc
				out[b.Index] = p.Transfer(b, acc)
				changed = true
			}
		}
	}
	return in, out
}

// A Def is one definition site of a variable: an assignment, a short
// variable declaration, a var declaration, or a range key/value binding.
type Def struct {
	// Obj is the defined variable.
	Obj types.Object
	// Node is the statement (or range statement) performing the definition.
	Node ast.Node
	// Block is the index of the block containing the definition.
	Block int
}

// ReachingDefs holds the classic gen/kill reaching-definitions solution:
// which definition sites may still be live at each block boundary.
type ReachingDefs struct {
	// Defs lists every definition site in the function, in block order.
	Defs []Def
	// In[b] and Out[b] are the sets of indices into Defs that reach the
	// entry and exit of block b.
	In, Out []map[int]bool
}

// reachProblem implements FlowProblem for reaching definitions with
// per-block gen sets precomputed from the definition list; the kill set of
// a block is implied (every other definition of an object the block
// defines).
type reachProblem struct {
	gen  []map[int]bool // defs generated in block b
	objs []types.Object // objs[i] is the object Defs[i] defines
}

// ComputeReachingDefs solves reaching definitions for the CFG. info
// resolves identifiers to objects; only variables declared inside the
// function (including parameters bound by range statements) get definition
// sites — package-level state is out of scope.
func (c *CFG) ComputeReachingDefs(info *types.Info) *ReachingDefs {
	rd := &ReachingDefs{}
	defsByObj := make(map[types.Object][]int)
	gen := make([]map[int]bool, len(c.Blocks))
	addDef := func(b *CFGBlock, obj types.Object, node ast.Node) {
		if obj == nil {
			return
		}
		idx := len(rd.Defs)
		rd.Defs = append(rd.Defs, Def{Obj: obj, Node: node, Block: b.Index})
		defsByObj[obj] = append(defsByObj[obj], idx)
		if gen[b.Index] == nil {
			gen[b.Index] = make(map[int]bool)
		}
		// A later definition of the same object in this block kills the
		// earlier one: drop it from gen before adding the new site.
		for _, prior := range defsByObj[obj] {
			delete(gen[b.Index], prior)
		}
		gen[b.Index][idx] = true
	}
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			collectDefs(n, info, func(obj types.Object, node ast.Node) { addDef(b, obj, node) })
		}
		if b.Range != nil {
			for _, e := range []ast.Expr{b.Range.Key, b.Range.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					addDef(b, defOrUse(info, id), b.Range)
				}
			}
		}
	}
	objs := make([]types.Object, len(rd.Defs))
	for i, d := range rd.Defs {
		objs[i] = d.Obj
	}
	p := &reachProblem{gen: gen, objs: objs}
	in, out := c.Forward(p)
	rd.In = make([]map[int]bool, len(c.Blocks))
	rd.Out = make([]map[int]bool, len(c.Blocks))
	for i := range c.Blocks {
		rd.In[i], _ = in[i].(map[int]bool)
		rd.Out[i], _ = out[i].(map[int]bool)
	}
	return rd
}

func (p *reachProblem) Entry() any { return map[int]bool{} }

func (p *reachProblem) Transfer(b *CFGBlock, in any) any {
	set := in.(map[int]bool)
	out := make(map[int]bool, len(set)+len(p.gen[b.Index]))
	// Kill: a def in gen kills every other def of the same object.
	killed := make(map[types.Object]bool)
	for idx := range p.gen[b.Index] {
		killed[p.objs[idx]] = true
	}
	for idx := range set {
		if !killed[p.objs[idx]] {
			out[idx] = true
		}
	}
	for idx := range p.gen[b.Index] {
		out[idx] = true
	}
	return out
}

func (p *reachProblem) Join(a, b any) any {
	x, y := a.(map[int]bool), b.(map[int]bool)
	out := make(map[int]bool, len(x)+len(y))
	for k := range x {
		out[k] = true
	}
	for k := range y {
		out[k] = true
	}
	return out
}

func (p *reachProblem) Equal(a, b any) bool {
	x, y := a.(map[int]bool), b.(map[int]bool)
	if len(x) != len(y) {
		return false
	}
	for k := range x {
		if !y[k] {
			return false
		}
	}
	return true
}

// collectDefs reports the variables a block node defines (assignment LHS
// identifiers, short declarations, var/const specs). Function literals are
// opaque: their bodies are separate functions with their own CFGs.
func collectDefs(n ast.Node, info *types.Info, emit func(types.Object, ast.Node)) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				emit(defOrUse(info, id), s)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if name.Name != "_" {
					emit(info.Defs[name], s)
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := unparen(s.X).(*ast.Ident); ok {
			emit(defOrUse(info, id), s)
		}
	}
}

// defOrUse resolves an identifier on the left of := (a Def) or = (a Use).
func defOrUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// Taint is a value-taint fact: for each tracked variable, the fraction of
// each taint origin the variable carries (join = pointwise max). The
// epsbudget analyzer instantiates origins as ε-parameters and fractions as
// the constant multipliers applied to them.
type Taint map[types.Object]map[types.Object]float64

// clone deep-copies a taint fact.
func (t Taint) clone() Taint {
	out := make(Taint, len(t))
	for v, origins := range t {
		m := make(map[types.Object]float64, len(origins))
		for o, f := range origins {
			m[o] = f
		}
		out[v] = m
	}
	return out
}

// joinTaint merges two taint facts by pointwise max.
func joinTaint(a, b Taint) Taint {
	out := a.clone()
	for v, origins := range b {
		m, ok := out[v]
		if !ok {
			m = make(map[types.Object]float64, len(origins))
			out[v] = m
		}
		for o, f := range origins {
			if f > m[o] {
				m[o] = f
			}
		}
	}
	return out
}

// equalTaint reports pointwise equality of two taint facts.
func equalTaint(a, b Taint) bool {
	if len(a) != len(b) {
		return false
	}
	for v, am := range a {
		bm, ok := b[v]
		if !ok || len(am) != len(bm) {
			return false
		}
		for o, f := range am {
			//lint:ignore floatcmp fixed-point termination wants exact equality: joins are monotone and fractions are copied, not recomputed
			if bm[o] != f {
				return false
			}
		}
	}
	return true
}
