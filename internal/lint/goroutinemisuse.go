package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goroutinemisuse flags concurrency patterns that are either racy or that
// subvert the module's pooled-parallelism design:
//
//   - raw `go` statements outside internal/parallel — all fan-out must go
//     through the pool so Workers=1 remains a strict sequential mode and
//     the caller help-drain protocol is never bypassed;
//   - `wg.Add(...)` inside the spawned function body — the classic race
//     where the goroutine may not have run Add before the parent's Wait;
//   - capturing a loop variable in a spawned function under a module go
//     version below 1.22 (per-iteration loop variables fixed the hazard);
//   - entering a parallel region (parallel.Do / parallel.For) while
//     holding a mutex — the caller help-drains other tasks, so any task
//     that takes the same lock deadlocks;
//   - nesting a parallel region lexically inside a worker body unless the
//     inner call forces workers == 1 — the pool is sized to NumCPU and
//     nested fan-out oversubscribes it.
var Goroutinemisuse = &Analyzer{
	Name: "goroutinemisuse",
	Doc:  "flags raw go statements, wg.Add in the spawned body, old-Go loop-variable capture, and parallel regions entered under a lock or nested in a worker",
	Run:  runGoroutinemisuse,
}

// parallelPkgSuffix identifies the module's pool package; matched by
// suffix so the testdata fake package qualifies too.
const parallelPkgSuffix = "internal/parallel"

func runGoroutinemisuse(pass *Pass) error {
	inParallelPkg := strings.HasSuffix(pass.PkgPath, parallelPkgSuffix)

	mask := Mask((*ast.GoStmt)(nil), (*ast.CallExpr)(nil))
	pass.Inspect(mask, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !inParallelPkg {
				pass.ReportNodef(n, "raw go statement outside internal/parallel; use parallel.Do or parallel.For so Workers=1 stays sequential and the pool is not bypassed")
			}
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				checkSpawnedBody(pass, lit)
			}
		case *ast.CallExpr:
			if !isParallelRegionCall(pass, n) {
				return
			}
			if held := heldLockNames(heldLocks(stack)); len(held) > 0 {
				pass.ReportNodef(n, "parallel region entered while holding %s; the caller help-drains tasks, so a task taking the same lock deadlocks",
					strings.Join(held, ", "))
			}
			checkNestedRegion(pass, n, stack)
			for _, arg := range n.Args {
				if lit, ok := unparen(arg).(*ast.FuncLit); ok {
					checkSpawnedBody(pass, lit)
				}
			}
		}
	})
	return nil
}

// isParallelRegionCall reports whether call is parallel.Do or parallel.For
// (the module's only fan-out entry points).
func isParallelRegionCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), parallelPkgSuffix) {
		return false
	}
	return fn.Name() == "Do" || fn.Name() == "For"
}

// checkSpawnedBody inspects a function literal that will run on another
// goroutine: wg.Add inside it races with the parent's Wait, and loop
// variables captured by it are per-loop (not per-iteration) before go
// 1.22.
func checkSpawnedBody(pass *Pass, lit *ast.FuncLit) {
	perIteration := goVersionAtLeast(pass.GoVersion, 1, 22)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // a nested literal is not (necessarily) spawned
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" && isWaitGroup(pass.TypeOf(sel.X)) {
				pass.ReportNodef(n, "%s.Add inside the spawned goroutine races with Wait; call Add before spawning", types.ExprString(sel.X))
			}
		case *ast.Ident:
			if perIteration {
				return true
			}
			if v, ok := pass.Info.Uses[n].(*types.Var); ok && isLoopVarOutside(pass, v, lit) {
				pass.ReportNodef(n, "goroutine captures loop variable %s; per-iteration semantics need go >= 1.22 (module is %s) — pass it as an argument or shadow it",
					n.Name, pass.GoVersion)
			}
		}
		return true
	})
}

// checkNestedRegion reports call if it sits lexically inside a worker body
// of an enclosing parallel region, unless its workers argument is the
// constant 1 (parallel.For's sequential escape hatch).
func checkNestedRegion(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	fn := calleeFunc(pass.Info, call)
	if fn.Name() == "For" && len(call.Args) > 0 {
		if v, ok := exactIntValue(pass.Info, call.Args[0]); ok && v == 1 {
			return
		}
	}
	// Inside a FuncLit that is an argument of an enclosing parallel call?
	for i := len(stack) - 2; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok || i == 0 {
			continue
		}
		outer, ok := stack[i-1].(*ast.CallExpr)
		if !ok || !isParallelRegionCall(pass, outer) {
			continue
		}
		for _, arg := range outer.Args {
			if unparen(arg) == lit {
				pass.ReportNodef(call, "parallel region nested inside a worker body oversubscribes the pool; hoist it or force workers=1 on the inner call")
				return
			}
		}
	}
}

// isWaitGroup reports whether t is sync.WaitGroup (directly or behind one
// pointer).
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isLoopVarOutside reports whether v is the iteration variable of a for or
// range statement that encloses lit (so the capture outlives iterations).
func isLoopVarOutside(pass *Pass, v *types.Var, lit *ast.FuncLit) bool {
	decl := v.Pos()
	if !decl.IsValid() {
		return false
	}
	for _, f := range pass.Files {
		if f.Pos() > decl || decl > f.End() {
			continue
		}
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.RangeStmt:
				if declaresAt(pass, n.Key, decl) || declaresAt(pass, n.Value, decl) {
					// The literal must be inside the loop body.
					found = n.Body.Pos() <= lit.Pos() && lit.End() <= n.Body.End()
					return false
				}
			case *ast.ForStmt:
				if init, ok := n.Init.(*ast.AssignStmt); ok {
					for _, lhs := range init.Lhs {
						if declaresAt(pass, lhs, decl) {
							found = n.Body.Pos() <= lit.Pos() && lit.End() <= n.Body.End()
							return false
						}
					}
				}
			}
			return true
		})
		return found
	}
	return false
}

// declaresAt reports whether e is an identifier defining an object at pos.
func declaresAt(pass *Pass, e ast.Expr, pos token.Pos) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Defs[id]
	return obj != nil && obj.Pos() == pos
}

// goVersionAtLeast parses a go directive value like "1.22" and compares.
func goVersionAtLeast(version string, major, minor int) bool {
	if version == "" {
		return true // unknown: assume current toolchain semantics
	}
	var ma, mi int
	n, err := fmt.Sscanf(version, "%d.%d", &ma, &mi)
	if err != nil || n < 2 {
		return true
	}
	return ma > major || (ma == major && mi >= minor)
}
