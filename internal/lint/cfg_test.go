package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// cfgFixtures covers the control constructs the builder handles: branches,
// loops with labelled break/continue, switch with fallthrough, select,
// range, goto back edges, panic termination, dead code and infinite loops.
var cfgFixtures = []struct {
	name, src string
}{
	{"straightline", `func f(a int) int {
		x := a + 1
		x *= 2
		return x
	}`},
	{"ifElse", `func f(a int) int {
		x := 0
		if a > 0 {
			x = 1
		} else {
			x = -1
		}
		return x
	}`},
	{"labelledLoops", `func f(xs [][]int) int {
		total := 0
	outer:
		for i := 0; i < len(xs); i++ {
			for j := 0; j < len(xs[i]); j++ {
				if xs[i][j] < 0 {
					break outer
				}
				if xs[i][j] == 0 {
					continue outer
				}
				total += xs[i][j]
			}
		}
		return total
	}`},
	{"switchFallthrough", `func f(a int) int {
		x := 0
		switch a {
		case 0:
			x = 1
			fallthrough
		case 1:
			x += 2
		default:
			x = 9
		}
		return x
	}`},
	{"selectStmt", `func f(a, b chan int) int {
		select {
		case v := <-a:
			return v
		case b <- 1:
		}
		return 0
	}`},
	{"rangeLoop", `func f(xs []int) int {
		total := 0
		for _, v := range xs {
			if v < 0 {
				break
			}
			total += v
		}
		return total
	}`},
	{"gotoLoop", `func f(n int) int {
		i := 0
	loop:
		if i < n {
			i++
			goto loop
		}
		return i
	}`},
	{"panicGuard", `func f(n int) int {
		if n < 0 {
			panic("negative")
		}
		return n
	}`},
	{"deadCode", `func f() int {
		return 1
		x := 2
		return x
	}`},
	{"infiniteLoop", `func f() {
		x := 0
		for {
			x++
		}
	}`},
	{"typeSwitch", `func f(v any) int {
		switch x := v.(type) {
		case int:
			return x
		case string:
			return len(x)
		}
		return 0
	}`},
}

// parseFuncBody parses a single function declaration and returns its body.
func parseFuncBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "fixture.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("fixture has no function body")
	return nil
}

// leafStmts lists the executable leaf statements of a body — the ones the
// CFG contract says must appear in exactly one block's node list. Compound
// statements contribute their pieces instead and function literals are
// opaque.
func leafStmts(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.IncDecStmt,
			*ast.DeclStmt, *ast.GoStmt, *ast.DeferStmt, *ast.SendStmt:
			out = append(out, n.(ast.Stmt))
		}
		return true
	})
	return out
}

// TestCFGStatementCoverage asserts the core block-granularity contract:
// every executable leaf statement lands in exactly one block, dead code
// included (revived blocks keep unreachable statements addressable).
func TestCFGStatementCoverage(t *testing.T) {
	for _, tc := range cfgFixtures {
		t.Run(tc.name, func(t *testing.T) {
			body := parseFuncBody(t, tc.src)
			cfg := BuildCFG(body)
			count := make(map[ast.Node]int)
			for _, b := range cfg.Blocks {
				for _, n := range b.Nodes {
					if _, ok := n.(ast.Stmt); ok {
						count[n]++
					}
				}
			}
			for _, s := range leafStmts(body) {
				if count[s] != 1 {
					t.Errorf("statement at offset %d (%T) appears in %d blocks, want 1", s.Pos(), s, count[s])
				}
			}
		})
	}
}

// TestCFGReachability spot-checks reachability: live statements sit in
// blocks reachable from Entry, statements after an unconditional return do
// not.
func TestCFGReachability(t *testing.T) {
	var deadSrc string
	for _, tc := range cfgFixtures {
		if tc.name == "deadCode" {
			deadSrc = tc.src
		}
	}
	body := parseFuncBody(t, deadSrc)
	cfg := BuildCFG(body)
	reach := cfg.Reachable()
	blockOf := func(s ast.Stmt) *CFGBlock {
		for _, b := range cfg.Blocks {
			for _, n := range b.Nodes {
				if n == s {
					return b
				}
			}
		}
		t.Fatalf("statement %T not placed in any block", s)
		return nil
	}
	stmts := body.List
	if !reach[blockOf(stmts[0]).Index] {
		t.Error("the first return should be reachable")
	}
	for _, s := range stmts[1:] {
		if reach[blockOf(s).Index] {
			t.Errorf("statement after return (%T) should be unreachable", s)
		}
	}
}

// bruteDominance computes dominance by node deletion: a dominates b iff
// a == b or removing a disconnects b from root (walking flow edges). This
// reproduces the solver's vacuous convention for free — a block the root
// cannot reach at all is never reached with or without the deletion, so it
// comes out dominated by everything.
func bruteDominance(c *CFG, root *CFGBlock, flow func(*CFGBlock) []*CFGBlock) [][]bool {
	n := len(c.Blocks)
	dom := make([][]bool, n)
	for b := range dom {
		dom[b] = make([]bool, n)
	}
	for a := 0; a < n; a++ {
		reached := make([]bool, n)
		var walk func(*CFGBlock)
		walk = func(b *CFGBlock) {
			if b.Index == a || reached[b.Index] {
				return
			}
			reached[b.Index] = true
			for _, s := range flow(b) {
				walk(s)
			}
		}
		if root.Index != a {
			walk(root)
		}
		for b := 0; b < n; b++ {
			dom[b][a] = a == b || !reached[b]
		}
	}
	return dom
}

// TestDominanceAgainstBruteForce cross-checks the iterative dominator and
// post-dominator solver against node-deletion reachability on every
// fixture.
func TestDominanceAgainstBruteForce(t *testing.T) {
	for _, tc := range cfgFixtures {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BuildCFG(parseFuncBody(t, tc.src))
			checks := []struct {
				kind string
				got  [][]bool
				want [][]bool
			}{
				{"dominators", cfg.Dominators(), bruteDominance(cfg, cfg.Entry, func(b *CFGBlock) []*CFGBlock { return b.Succs })},
				{"post-dominators", cfg.PostDominators(), bruteDominance(cfg, cfg.Exit, func(b *CFGBlock) []*CFGBlock { return b.Preds })},
			}
			for _, chk := range checks {
				for b := range chk.got {
					for a := range chk.got[b] {
						if chk.got[b][a] != chk.want[b][a] {
							t.Errorf("%s: block %d by block %d: solver %v, brute force %v", chk.kind, b, a, chk.got[b][a], chk.want[b][a])
						}
					}
				}
			}
		})
	}
}

// TestCFGExitWiring asserts every return and panic block feeds Exit, and
// that Exit has no successors.
func TestCFGExitWiring(t *testing.T) {
	for _, tc := range cfgFixtures {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BuildCFG(parseFuncBody(t, tc.src))
			if len(cfg.Exit.Succs) != 0 {
				t.Errorf("exit block has %d successors, want 0", len(cfg.Exit.Succs))
			}
			for _, b := range cfg.Blocks {
				if b.Return == nil && !b.Panics {
					continue
				}
				wired := false
				for _, s := range b.Succs {
					if s == cfg.Exit {
						wired = true
					}
				}
				if !wired {
					t.Errorf("block %d ends in return/panic but is not wired to Exit", b.Index)
				}
			}
		})
	}
}
