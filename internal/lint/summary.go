package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/performability/csrl/internal/obs"
)

// truncatesPrefix is the annotation that declares a function a truncation
// site: it drops probability mass (or otherwise consumes accuracy) bounded
// by its ε argument, and its callers are responsible for charging the loss
// to the error-budget ledger.
//
//	//numerics:truncates <component>/<term> [<component>/<term> ...]
//
// The labels name the ledger rows the caller is expected to charge and are
// validated against the canonical vocabulary in internal/obs.
const truncatesPrefix = "//numerics:truncates"

// builtinTruncates registers truncating callees the annotation cannot
// reach conveniently (the numeric kernels are the ground truth of the
// budget discipline, so the analyzer must know them even when a lint run
// cannot see their sources). Matching is by import-path suffix so the
// registry works under any module path.
var builtinTruncates = []struct {
	pathSuffix, name string
	terms            []string
}{
	{"internal/numeric", "FoxGlynn", []string{"foxglynn/left-tail", "foxglynn/right-tail"}},
	{"internal/numeric", "PoissonTruncation", []string{"sericola/series-remainder"}},
}

// BadTerm is one invalid //numerics:truncates label.
type BadTerm struct {
	Pos  token.Pos
	Term string
	// Reason explains the failure ("unknown component", "unknown term", …).
	Reason string
}

// FuncSummary captures the cheap interprocedural facts one function
// exposes to the dataflow analyzers.
type FuncSummary struct {
	// Truncates lists the component/term labels the function truncates
	// under (annotation or builtin registry); non-empty means the function
	// is an ε-consuming sink whose callers must charge the ledger.
	Truncates []string
	// Annotated reports an explicit //numerics:truncates annotation: the
	// body is exempt from the ledgercharge obligation (it has passed the
	// charge duty to its callers) and every ε parameter counts as fully
	// spent.
	Annotated bool
	// BadTerms lists annotation labels that failed vocabulary validation.
	BadTerms []BadTerm
	// Spend[i] is the worst-case fraction of ε parameter i (receiver
	// first, then the declared parameters) the function spends on
	// truncating sinks along any single path.
	Spend []float64
	// Returns holds, per reachable return statement, per result value, the
	// fraction of each ε parameter flowing into that result. Keeping the
	// per-return tuples (rather than a per-result max) preserves the path
	// correlation of budget splitters: a function returning either
	// (ε/2, ε/2) or (ε, 0) never yields the impossible (ε, ε/2).
	Returns [][]map[int]float64
	// PoolBorn[j] reports that result j may be a pool-born buffer
	// (obtained from a VecPool-style Get and owned by the caller).
	PoolBorn []bool
	// ParamDomains maps parameter index (receiver first) to the declared
	// numeric domain from //numerics:domain name=dom tokens.
	ParamDomains map[int]Domain
	// ResultDomain is the numeric domain of the function's float (or
	// float-slice) results: declared by a bare //numerics:domain token, or
	// inferred bottom-up from the return expressions of an unannotated
	// body. DomUnknown when neither commits.
	ResultDomain Domain
	// DomainAnnotated reports an explicit //numerics:domain annotation.
	DomainAnnotated bool
	// BadDomains lists //numerics:domain tokens that failed validation.
	BadDomains []BadTerm
}

// declSite is where a *types.Func is declared: a FuncDecl, or an
// interface-method field (decl nil), with its doc comment.
type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
	doc  *ast.CommentGroup
}

// Summaries computes and caches FuncSummary values for one lint run. The
// cache resolves module-internal callees through the loader's package
// graph when available; without it (the golden-file harness), summaries
// are limited to same-package declarations plus the builtin registry.
type Summaries struct {
	pkg     *Package
	resolve func(path string) *Package
	sites   map[*types.Func]*declSite
	indexed map[*Package]bool
	sums    map[*types.Func]*FuncSummary
	busy    map[*types.Func]bool
}

// Summaries returns the package's summary cache, building it on first use.
func (p *Package) Summaries() *Summaries {
	if p.sums == nil {
		p.sums = &Summaries{
			pkg:     p,
			resolve: p.deps,
			sites:   make(map[*types.Func]*declSite),
			indexed: make(map[*Package]bool),
			sums:    make(map[*types.Func]*FuncSummary),
			busy:    make(map[*types.Func]bool),
		}
	}
	return p.sums
}

// CFG returns the cached control-flow graph of a function body within this
// package (keyed by body node, so function literals get their own graphs).
func (p *Package) CFG(body *ast.BlockStmt) *CFG {
	if p.cfgs == nil {
		p.cfgs = make(map[*ast.BlockStmt]*CFG)
	}
	if c, ok := p.cfgs[body]; ok {
		return c
	}
	c := BuildCFG(body)
	p.cfgs[body] = c
	return c
}

// SSA returns the cached pruned-SSA form of a function body within this
// package (keyed by body node, like CFG). params lists the function's
// parameters, receiver first; they only matter on the first call for a
// given body.
func (p *Package) SSA(body *ast.BlockStmt, params []*types.Var) *SSA {
	if p.ssas == nil {
		p.ssas = make(map[*ast.BlockStmt]*SSA)
	}
	if s, ok := p.ssas[body]; ok {
		return s
	}
	s := BuildSSA(p.CFG(body), p.Info, params)
	p.ssas[body] = s
	return s
}

// index records the declaration sites of a package's functions, methods
// and interface methods.
func (s *Summaries) index(pkg *Package) {
	if pkg == nil || s.indexed[pkg] {
		return
	}
	s.indexed[pkg] = true
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
					s.sites[fn] = &declSite{pkg: pkg, decl: d, doc: d.Doc}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range it.Methods.List {
						for _, name := range m.Names {
							if fn, ok := pkg.Info.Defs[name].(*types.Func); ok {
								s.sites[fn] = &declSite{pkg: pkg, doc: m.Doc}
							}
						}
					}
				}
			}
		}
	}
}

// site locates fn's declaration, following the loader's package graph for
// module-internal cross-package callees.
func (s *Summaries) site(fn *types.Func) *declSite {
	s.index(s.pkg)
	if site, ok := s.sites[fn]; ok {
		return site
	}
	if fn.Pkg() == nil || fn.Pkg() == s.pkg.Types || s.resolve == nil {
		return nil
	}
	s.index(s.resolve(fn.Pkg().Path()))
	return s.sites[fn]
}

// Of returns the summary of fn, computing it on first use. Recursive call
// chains yield the zero summary for the in-progress function (an
// optimistic under-approximation, documented in DESIGN.md).
func (s *Summaries) Of(fn *types.Func) *FuncSummary {
	if fn == nil {
		return &FuncSummary{}
	}
	if sum, ok := s.sums[fn]; ok {
		return sum
	}
	if s.busy[fn] {
		return &FuncSummary{}
	}
	s.busy[fn] = true
	sum := s.compute(fn)
	delete(s.busy, fn)
	s.sums[fn] = sum
	return sum
}

// ForCall returns the summary of the call's resolved callee (the zero
// summary for indirect calls through function values).
func (s *Summaries) ForCall(info *types.Info, call *ast.CallExpr) *FuncSummary {
	return s.Of(calleeFunc(info, call))
}

func (s *Summaries) compute(fn *types.Func) *FuncSummary {
	sum := &FuncSummary{}
	site := s.site(fn)
	if site != nil {
		sum.Truncates, sum.BadTerms, sum.Annotated = parseTruncates(site.doc)
		sum.ParamDomains, sum.ResultDomain, sum.BadDomains, sum.DomainAnnotated = parseDomains(site.doc, signatureParams(fn))
	}
	if sum.ResultDomain == DomUnknown {
		sum.ResultDomain = builtinDomain(fn)
	}
	if !sum.Annotated {
		if terms := registryTerms(fn); terms != nil {
			sum.Truncates = terms
			sum.Annotated = true // the registry carries the same contract
		}
	}
	params := signatureParams(fn)
	if sum.Annotated {
		// The function's contract is "accuracy ε in, mass ≤ ε dropped": its
		// ε parameters are fully spent, whatever the body does.
		sum.Spend = make([]float64, len(params))
		for i, p := range params {
			if isEpsParam(p) {
				sum.Spend[i] = 1
			}
		}
	}
	if site == nil || site.decl == nil || site.decl.Body == nil {
		return sum
	}
	if !sum.Annotated {
		res := analyzeEps(s, site.pkg, site.decl.Body, params)
		sum.Spend = res.spend
		sum.Returns = res.returns
	}
	sum.PoolBorn = poolBornResults(site.pkg, site.decl.Type, site.decl.Body, s)
	if sum.ResultDomain == DomUnknown {
		// Bottom-up propagation: an unannotated helper returning
		// math.Log(p) of a prob parameter is a log-space producer for its
		// callers without any annotation of its own.
		sum.ResultDomain = inferResultDomain(s, site.pkg, site.decl, params, sum.ParamDomains)
	}
	return sum
}

// registryTerms matches fn against the builtin truncating-callee registry.
func registryTerms(fn *types.Func) []string {
	if fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	for _, r := range builtinTruncates {
		if fn.Name() == r.name && strings.HasSuffix(path, r.pathSuffix) {
			return r.terms
		}
	}
	return nil
}

// parseTruncates extracts //numerics:truncates labels from a doc comment
// and validates them against the ledger vocabulary.
func parseTruncates(doc *ast.CommentGroup) (terms []string, bad []BadTerm, annotated bool) {
	if doc == nil {
		return nil, nil, false
	}
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, truncatesPrefix) {
			continue
		}
		annotated = true
		rest := strings.TrimSpace(strings.TrimPrefix(c.Text, truncatesPrefix))
		// Allow trailing commentary after a second "//" on the same line.
		if i := strings.Index(rest, "//"); i >= 0 {
			rest = strings.TrimSpace(rest[:i])
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			bad = append(bad, BadTerm{Pos: c.Pos(), Term: "", Reason: "missing component/term label"})
			continue
		}
		for _, f := range fields {
			component, term, ok := strings.Cut(f, "/")
			switch {
			case !ok:
				bad = append(bad, BadTerm{Pos: c.Pos(), Term: f, Reason: "want <component>/<term>"})
			case !obs.KnownTerm(component, term):
				reason := "unknown term"
				if kt := obs.KnownTermsOf(component); kt == nil {
					reason = "unknown component (have: " + strings.Join(obs.KnownComponents(), ", ") + ")"
				} else {
					reason = "unknown term (component " + component + " has: " + strings.Join(kt, ", ") + ")"
				}
				bad = append(bad, BadTerm{Pos: c.Pos(), Term: f, Reason: reason})
				terms = append(terms, f)
			default:
				terms = append(terms, f)
			}
		}
	}
	return terms, bad, annotated
}

// signatureParams lists fn's parameter objects, receiver first.
func signatureParams(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// isEpsParam reports whether v is an ε-budget parameter: a float whose
// name marks it as an accuracy ("eps", "fgEps", "epsilon", "accuracy").
func isEpsParam(v *types.Var) bool {
	if v == nil || !isFloat(v.Type()) {
		return false
	}
	name := strings.ToLower(v.Name())
	return strings.Contains(name, "eps") || name == "accuracy"
}

// epsFieldName reports whether a struct field name carries an ε budget.
func epsFieldName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "eps") || l == "accuracy"
}

// funcLitParams lists a function literal's parameter objects.
func funcLitParams(info *types.Info, ft *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}
