package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
)

// Probrange proves that prob-annotated values stay in [0,1], by interval
// analysis over SSA. The bug class is the PR 7 rectangle-residue escape:
// a residual computed as 1−Σmass goes negative once the Σ accumulates
// past 1 in floating point, and the negative "probability" silently
// corrupts every downstream comparison. The analyzer evaluates an
// interval per SSA value (loop φs widened after one descent), refines
// intervals along labelled branch edges (`if s > 1 { s = 1 }` clamps) and
// through math.Min/Max/Abs, and reports at the prob sinks — returns of
// functions declaring //numerics:domain prob and arguments to parameters
// declared prob — when the interval proves a possible escape.
//
// Fully unknown intervals are silent: a finding needs positive evidence
// (a finite bound beyond the contract, or a one-sided unbounded interval
// whose other side is known), never mere ignorance.
var Probrange = &Analyzer{
	Name: "probrange",
	Doc:  "interval analysis proving //numerics:domain prob values stay in [0,1]",
	Run:  runProbrange,
}

// probTol is the slack granted beyond [0,1] before an interval violation
// is reported, covering deliberate epsilon headroom like 1+1e-12 guards.
const probTol = 1e-9

// Interval is a closed floating-point interval; infinities mean
// unbounded. The empty interval (Lo > Hi) is the identity of hull.
type Interval struct{ Lo, Hi float64 }

var (
	fullInterval  = Interval{math.Inf(-1), math.Inf(1)}
	emptyInterval = Interval{math.Inf(1), math.Inf(-1)}
)

func (iv Interval) empty() bool { return iv.Lo > iv.Hi }

// unknown reports a fully unbounded interval — no usable evidence.
func (iv Interval) unknown() bool {
	return math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1)
}

func hull(a, b Interval) Interval {
	return Interval{math.Min(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
}

func intersect(a, b Interval) Interval {
	return Interval{math.Max(a.Lo, b.Lo), math.Min(a.Hi, b.Hi)}
}

// widen keeps the bounds of prev that next did not grow past and drops
// the growing sides to infinity — the one-shot loop widening.
func widen(prev, next Interval) Interval {
	out := prev
	if next.Lo < prev.Lo {
		out.Lo = math.Inf(-1)
	}
	if next.Hi > prev.Hi {
		out.Hi = math.Inf(1)
	}
	return out
}

func addI(a, b Interval) Interval {
	if a.empty() || b.empty() {
		return emptyInterval
	}
	return Interval{safeAdd(a.Lo, b.Lo, -1), safeAdd(a.Hi, b.Hi, 1)}
}

func subI(a, b Interval) Interval {
	if a.empty() || b.empty() {
		return emptyInterval
	}
	return Interval{safeAdd(a.Lo, -b.Hi, -1), safeAdd(a.Hi, -b.Lo, 1)}
}

// safeAdd adds endpoints, resolving Inf−Inf to the unbounded side.
func safeAdd(x, y float64, side int) float64 {
	s := x + y
	if math.IsNaN(s) {
		return math.Inf(side)
	}
	return s
}

func mulI(a, b Interval) Interval {
	if a.empty() || b.empty() {
		return emptyInterval
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range [2]float64{a.Lo, a.Hi} {
		for _, y := range [2]float64{b.Lo, b.Hi} {
			p := x * y
			if math.IsNaN(p) {
				// 0·∞ corner: the product is unbounded toward the infinite
				// factor's reachable signs; widen both ways for safety.
				return fullInterval
			}
			lo, hi = math.Min(lo, p), math.Max(hi, p)
		}
	}
	return Interval{lo, hi}
}

func quoI(a, b Interval) Interval {
	if a.empty() || b.empty() {
		return emptyInterval
	}
	// Only divisors bounded away from zero yield useful quotients.
	if b.Lo > 0 || b.Hi < 0 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range [2]float64{a.Lo, a.Hi} {
			for _, y := range [2]float64{b.Lo, b.Hi} {
				q := x / y
				if math.IsNaN(q) {
					return fullInterval
				}
				lo, hi = math.Min(lo, q), math.Max(hi, q)
			}
		}
		return Interval{lo, hi}
	}
	return fullInterval
}

// domainInterval is the contract interval of a declared domain.
func domainInterval(d Domain) Interval {
	switch d {
	case DomProb, DomEpsFrac:
		return Interval{0, 1}
	case DomRate:
		return Interval{0, math.Inf(1)}
	}
	return fullInterval
}

// intervalEval evaluates value intervals within one function frame.
type intervalEval struct {
	sums     *Summaries
	pkg      *Package
	ssa      *SSA
	paramIvs map[*types.Var]Interval
	memo     map[*SSAValue]Interval
	busy     map[*SSAValue]bool
}

func newIntervalEval(sums *Summaries, pkg *Package, body *ast.BlockStmt, params []*types.Var, paramDoms map[int]Domain) *intervalEval {
	ivs := make(map[*types.Var]Interval)
	for i, d := range paramDoms {
		if i < len(params) {
			ivs[params[i]] = domainInterval(d)
		}
	}
	return &intervalEval{
		sums:     sums,
		pkg:      pkg,
		ssa:      pkg.SSA(body, params),
		paramIvs: ivs,
		memo:     make(map[*SSAValue]Interval),
		busy:     make(map[*SSAValue]bool),
	}
}

// of evaluates the interval of an expression.
func (e *intervalEval) of(x ast.Expr) Interval {
	x = unparen(x)
	if tv, ok := e.pkg.Info.Types[x]; ok && tv.Value != nil {
		if f, ok := constFloatValue(tv.Value); ok {
			return Interval{f, f}
		}
		return fullInterval
	}
	switch x := x.(type) {
	case *ast.Ident:
		if val, ok := e.ssa.UseVal[x]; ok {
			return e.val(val)
		}
		if v, ok := e.pkg.Info.Uses[x].(*types.Var); ok {
			if iv, ok := e.paramIvs[v]; ok {
				return iv // captured parameter: its contract still binds
			}
		}
		return fullInterval
	case *ast.BinaryExpr:
		a, b := e.of(x.X), e.of(x.Y)
		switch x.Op {
		case token.ADD:
			return addI(a, b)
		case token.SUB:
			return subI(a, b)
		case token.MUL:
			return mulI(a, b)
		case token.QUO:
			return quoI(a, b)
		}
		return fullInterval
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			iv := e.of(x.X)
			if iv.empty() {
				return iv
			}
			return Interval{-iv.Hi, -iv.Lo}
		}
		if x.Op == token.ADD {
			return e.of(x.X)
		}
		return fullInterval
	case *ast.CallExpr:
		return e.callInterval(x)
	case *ast.IndexExpr:
		// Elements of a prob slice inherit the slice's domain contract.
		return e.of(x.X)
	}
	return fullInterval
}

// callInterval evaluates calls: the clamping transcendentals precisely,
// everything else by the callee's declared result domain.
func (e *intervalEval) callInterval(call *ast.CallExpr) Interval {
	fn := calleeFunc(e.pkg.Info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && len(call.Args) > 0 {
		switch fn.Name() {
		case "Min":
			if len(call.Args) == 2 {
				a, b := e.of(call.Args[0]), e.of(call.Args[1])
				return Interval{math.Min(a.Lo, b.Lo), math.Min(a.Hi, b.Hi)}
			}
		case "Max":
			if len(call.Args) == 2 {
				a, b := e.of(call.Args[0]), e.of(call.Args[1])
				return Interval{math.Max(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
			}
		case "Abs":
			iv := e.of(call.Args[0])
			if iv.empty() {
				return iv
			}
			hi := math.Max(math.Abs(iv.Lo), math.Abs(iv.Hi))
			lo := 0.0
			if iv.Lo > 0 {
				lo = iv.Lo
			} else if iv.Hi < 0 {
				lo = -iv.Hi
			}
			return Interval{lo, hi}
		case "Exp":
			iv := e.of(call.Args[0])
			if iv.empty() {
				return iv
			}
			return Interval{math.Exp(iv.Lo), math.Exp(iv.Hi)}
		}
	}
	if fn != nil {
		return domainInterval(e.sums.Of(fn).ResultDomain)
	}
	return fullInterval
}

// val evaluates one SSA value's interval, memoised; loop φs get one
// widening pass (descend with the acyclic hull, widen what grew).
func (e *intervalEval) val(v *SSAValue) Interval {
	if v == nil {
		return fullInterval
	}
	if iv, ok := e.memo[v]; ok {
		return iv
	}
	if e.busy[v] {
		// A cyclic reference before the φ has a tentative value: treat the
		// back edge as contributing nothing yet (hull identity).
		return emptyInterval
	}
	e.busy[v] = true
	iv := e.valUncached(v)
	delete(e.busy, v)
	if v.Phi != nil && !iv.empty() {
		// Widening pass: assume the acyclic hull, re-evaluate the
		// arguments (the loop-carried ones now see the tentative value)
		// and widen any side that grew. The widened interval is stable for
		// monotone loop bodies.
		e.memo[v] = iv
		clearStale(e.memo, v)
		next := e.phiHull(v)
		iv = widen(iv, next)
	}
	if iv.empty() && v.Phi != nil {
		iv = fullInterval // no argument flowed in: claim nothing
	}
	// Non-φ values keep emptiness: it marks a cycle participant evaluated
	// under a busy φ, and the join must ignore it, not treat it as full.
	e.memo[v] = iv
	return iv
}

// clearStale drops memo entries computed while the φ held its tentative
// acyclic hull, so the widening pass re-evaluates them; only the φ's own
// tentative entry stays.
func clearStale(memo map[*SSAValue]Interval, phi *SSAValue) {
	for k := range memo {
		if k != phi {
			delete(memo, k)
		}
	}
}

func (e *intervalEval) valUncached(v *SSAValue) Interval {
	if v.Phi != nil {
		return e.phiHull(v)
	}
	if v.Def == nil {
		if iv, ok := e.paramIvs[v.Var]; ok {
			return iv
		}
		return fullInterval
	}
	switch def := v.Def.(type) {
	case *ast.AssignStmt:
		if def.Tok == token.ASSIGN || def.Tok == token.DEFINE {
			if v.Rhs != nil {
				return e.of(v.Rhs)
			}
			return fullInterval
		}
		old := e.compoundOldInterval(def.Lhs[0])
		if v.Rhs == nil {
			return old
		}
		switch compoundOp(def.Tok) {
		case token.ADD:
			return addI(old, e.of(v.Rhs))
		case token.SUB:
			return subI(old, e.of(v.Rhs))
		case token.MUL:
			return mulI(old, e.of(v.Rhs))
		case token.QUO:
			return quoI(old, e.of(v.Rhs))
		}
		return fullInterval
	case *ast.IncDecStmt:
		old := e.compoundOldInterval(def.X)
		delta := Interval{1, 1}
		if def.Tok == token.DEC {
			return subI(old, delta)
		}
		return addI(old, delta)
	case *ast.DeclStmt:
		if v.Rhs != nil {
			return e.of(v.Rhs)
		}
		if isFloat(v.Var.Type()) {
			return Interval{0, 0} // var x float64: the zero value
		}
		return fullInterval
	case *ast.RangeStmt:
		if id, ok := def.Value.(*ast.Ident); ok && defOrUse(e.pkg.Info, id) == types.Object(v.Var) {
			return e.of(def.X)
		}
		return fullInterval
	}
	return fullInterval
}

// phiHull joins a φ's arguments, refining each along its labelled edge.
func (e *intervalEval) phiHull(v *SSAValue) Interval {
	blk := e.ssa.CFG.Blocks[v.Block]
	out := emptyInterval
	for i, a := range v.Phi.Args {
		if a == nil {
			continue
		}
		av := e.val(a)
		if i < len(blk.Preds) {
			av = e.refineEdge(av, blk.Preds[i], blk, a)
		}
		if av.empty() {
			continue
		}
		out = hull(out, av)
	}
	return out
}

// refineEdge narrows an interval flowing from pred into blk using pred's
// branch condition: on the true edge of `s > 1` the value is > 1, on the
// false edge ≤ 1 — the clamp idiom `if s > 1 { s = 1 }` resolves to
// [lo, 1] after the join.
func (e *intervalEval) refineEdge(iv Interval, pred, blk *CFGBlock, val *SSAValue) Interval {
	if pred.Cond == nil {
		return iv
	}
	onTrue := pred.TrueSucc == blk
	onFalse := pred.FalseSucc == blk
	if onTrue == onFalse { // both or neither: no single-edge information
		return iv
	}
	cond, ok := unparen(pred.Cond).(*ast.BinaryExpr)
	if !ok {
		return iv
	}
	// Normalise to ident-op-constant, with the ident resolving to the very
	// SSA value flowing along this edge (a redefinition between the test
	// and the join would otherwise misattribute the constraint).
	id, idOK := unparen(cond.X).(*ast.Ident)
	c, cOK := e.constOf(cond.Y)
	op := cond.Op
	if !idOK || !cOK {
		id, idOK = unparen(cond.Y).(*ast.Ident)
		c, cOK = e.constOf(cond.X)
		op = flipCmp(op)
	}
	if !idOK || !cOK || e.ssa.UseVal[id] != val {
		return iv
	}
	if !onTrue {
		op = negateCmp(op)
	}
	switch op {
	case token.LSS, token.LEQ: // val < c or val ≤ c (closed approximation)
		return intersect(iv, Interval{math.Inf(-1), c})
	case token.GTR, token.GEQ:
		return intersect(iv, Interval{c, math.Inf(1)})
	}
	return iv
}

func (e *intervalEval) constOf(x ast.Expr) (float64, bool) {
	tv, ok := e.pkg.Info.Types[unparen(x)]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constFloatValue(tv.Value)
}

// constFloatValue converts a go/constant numeric value to float64.
func constFloatValue(v constant.Value) (float64, bool) {
	switch v.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(constant.ToFloat(v))
		return f, true
	}
	return 0, false
}

// flipCmp mirrors a comparison when its operands swap sides.
func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// negateCmp negates a comparison (the false edge of the branch).
func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return op
}

func (e *intervalEval) compoundOldInterval(lhs ast.Expr) Interval {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return fullInterval
	}
	if val, ok := e.ssa.UseVal[id]; ok {
		return e.val(val)
	}
	return fullInterval
}

// probViolation classifies an interval against the [0,1] contract; ""
// means no positive evidence of escape.
func probViolation(iv Interval) string {
	if iv.unknown() || iv.empty() {
		return ""
	}
	switch {
	case iv.Lo < -probTol:
		return "may go negative"
	case iv.Hi > 1+probTol:
		return "may exceed 1"
	}
	return ""
}

func runProbrange(pass *Pass) error {
	sums := pass.Summaries()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := sums.Of(fn)
			params := signatureParams(fn)
			checkProbFrame(pass, sums, fd.Body, params, sum.ParamDomains, sum, fd.Name.Name)
		}
	}
	return nil
}

// checkProbFrame checks the prob sinks of one function frame, recursing
// into function literals (their returns have no declared domain, so only
// call-argument sinks apply there).
func checkProbFrame(pass *Pass, sums *Summaries, body *ast.BlockStmt, params []*types.Var, paramDoms map[int]Domain, sum *FuncSummary, name string) {
	eval := newIntervalEval(sums, pass.pkg, body, params, paramDoms)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			checkProbFrame(pass, sums, x.Body, funcLitParams(pass.Info, x.Type), nil, nil, name+" literal")
			return false
		case *ast.ReturnStmt:
			if sum == nil || !sum.DomainAnnotated || sum.ResultDomain != DomProb {
				return true
			}
			for _, res := range x.Results {
				if t := pass.TypeOf(res); t == nil || !isFloat(t) {
					continue
				}
				iv := eval.of(res)
				if why := probViolation(iv); why != "" {
					pass.ReportNodef(res, "return of %s is declared //numerics:domain prob but %s (interval [%.4g, %.4g]); clamp before returning",
						name, why, iv.Lo, iv.Hi)
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, x)
			if fn == nil {
				return true
			}
			csum := eval.sums.Of(fn)
			if len(csum.ParamDomains) == 0 {
				return true
			}
			offset := 0
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				offset = 1
			}
			cparams := signatureParams(fn)
			for j, arg := range x.Args {
				idx := j + offset
				if csum.ParamDomains[idx] != DomProb || idx >= len(cparams) {
					continue
				}
				if t := pass.TypeOf(arg); t == nil || !isFloat(t) {
					continue
				}
				iv := eval.of(arg)
				if why := probViolation(iv); why != "" {
					pass.ReportNodef(arg, "argument to prob parameter %s of %s %s (interval [%.4g, %.4g])",
						cparams[idx].Name(), fn.Name(), why, iv.Lo, iv.Hi)
				}
			}
		}
		return true
	})
}
