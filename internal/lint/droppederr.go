package lint

import (
	"go/ast"
	"go/types"
)

// Droppederr flags error returns that vanish without a trace:
//
//   - a call used as a bare statement whose results include an error
//     (`w.Write(record)` instead of `if err := w.Write(record); ...`);
//   - an error from a module-internal API assigned to the blank
//     identifier (`v, _ := solver.Solve(...)`, `_ = m.Validate()`).
//
// The numerical procedures signal non-convergence and accuracy failure
// through errors; dropping one turns "the answer is wrong" into "the
// answer looks fine". Deliberate discards take a //lint:ignore droppederr
// comment with the justification.
//
// fmt.Print* (and fmt.Fprint* to os.Stdout/os.Stderr) are exempt, as are
// the never-failing writers strings.Builder and bytes.Buffer, and calls in
// defer/go statements (where handling has no useful control path).
var Droppederr = &Analyzer{
	Name: "droppederr",
	Doc:  "flags discarded error returns, including _ = on errors from internal APIs",
	Run:  runDroppederr,
}

func runDroppederr(pass *Pass) error {
	deferred := make(map[*ast.CallExpr]bool)
	pass.Preorder(Mask((*ast.DeferStmt)(nil), (*ast.GoStmt)(nil)), func(n ast.Node) {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.GoStmt:
			deferred[n.Call] = true
		}
	})
	pass.Preorder(Mask((*ast.ExprStmt)(nil), (*ast.AssignStmt)(nil)), func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := unparen(n.X).(*ast.CallExpr)
			if !ok || deferred[call] {
				return
			}
			if !resultHasError(pass, call) || exemptDiscard(pass, call) {
				return
			}
			pass.ReportNodef(call, "%s returns an error that is silently dropped", callName(pass, call))
		case *ast.AssignStmt:
			checkBlankAssign(pass, n)
		}
	})
	return nil
}

// checkBlankAssign reports blank-identifier discards of errors produced by
// module-internal APIs.
func checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	// v, _ := internalCall() — one call, tuple result.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !internalCallee(pass, call) {
			return
		}
		tuple, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if i >= tuple.Len() {
				break
			}
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error from internal API %s discarded with _", callName(pass, call))
			}
		}
		return
	}
	// _ = internalCall() pairs.
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		call, ok := unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok || !internalCallee(pass, call) {
			continue
		}
		if t := pass.TypeOf(call); t != nil && isErrorType(t) {
			pass.Reportf(lhs.Pos(), "error from internal API %s discarded with _", callName(pass, call))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// resultHasError reports whether the call's result type includes an error.
func resultHasError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// internalCallee reports whether the call resolves to a function or method
// defined in an internal/ package (of this module or, within the current
// package, the package itself when it is internal).
func internalCallee(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return isInternalPath(fn.Pkg().Path())
}

// exemptDiscard allows the conventional never-fail or best-effort writers.
func exemptDiscard(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			// Best-effort terminal output is fine in command packages;
			// libraries only get the never-failing in-memory writers.
			if pass.Pkg.Name() == "main" {
				return true
			}
			return len(call.Args) > 0 && (isStdStream(call.Args[0]) || isMemWriter(pass, call.Args[0]))
		}
	}
	// Methods on strings.Builder / bytes.Buffer document err == nil.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		switch rt.String() {
		case "strings.Builder", "bytes.Buffer":
			return true
		}
	}
	return false
}

// isMemWriter reports whether the writer expression is a strings.Builder
// or bytes.Buffer, whose Write methods document err == nil.
func isMemWriter(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t.String() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream matches the expressions os.Stdout and os.Stderr.
func isStdStream(e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "os" && (sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

func callName(pass *Pass, call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
