package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the called function or method of call, or nil for
// conversions, builtins and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether call invokes pkgPath.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// asPkgCall returns e as a call to pkgPath.name, or nil.
func asPkgCall(info *types.Info, e ast.Expr, pkgPath, name string) *ast.CallExpr {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || !isPkgFunc(info, call, pkgPath, name) {
		return nil
	}
	return call
}

// isBuiltin reports whether call invokes the predeclared builtin name.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isFloat reports whether t is a floating-point type (incl. untyped float).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exactIntValue returns the exact integer value of a constant expression,
// if the expression is constant and integral.
func exactIntValue(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// isZeroConst reports whether e is a constant with numeric value exactly 0.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// enclosingFuncName returns the name of the nearest enclosing function
// declaration on the stack, or "".
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// isInternalPath reports whether an import path names a package under an
// internal/ tree (the module's own numerical libraries).
func isInternalPath(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}
