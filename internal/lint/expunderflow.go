package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Expunderflow flags exp/log arithmetic that underflows or loses precision
// in the probability computations this repository lives on:
//
//   - math.Exp(a)*math.Exp(b): each factor can underflow to 0 even when
//     the product exp(a+b) is representable — write math.Exp(a+b);
//   - math.Log(math.Exp(x)) and math.Exp(math.Log(x)): identity round
//     trips that waste precision (and the latter NaNs for x ≤ 0);
//   - hand-rolled log-space probability terms (math.Exp over an expression
//     built from math.Log/math.Lgamma calls or log-named values) outside
//     internal/numeric. Poisson and binomial pmf terms belong next to the
//     Fox–Glynn machinery: use numeric.PoissonPMF, numeric.BinomialPMF,
//     numeric.PoissonPMFTable or numeric.FoxGlynn.
var Expunderflow = &Analyzer{
	Name: "expunderflow",
	Doc:  "flags underflow-prone exp/log arithmetic and hand-rolled log-space pmf terms outside internal/numeric",
	Run:  runExpunderflow,
}

// numericPkgSuffix marks the one package allowed to hand-roll log-space
// terms: it is where the sanctioned helpers live.
const numericPkgSuffix = "internal/numeric"

func runExpunderflow(pass *Pass) error {
	inNumeric := strings.HasSuffix(pass.PkgPath, numericPkgSuffix)
	pass.Inspect(Mask((*ast.BinaryExpr)(nil), (*ast.CallExpr)(nil)), func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.MUL {
				return
			}
			// Only report at the head of a multiplication chain so a
			// product of three factors yields one diagnostic.
			if len(stack) >= 2 {
				if p, ok := stack[len(stack)-2].(*ast.BinaryExpr); ok && p.Op == token.MUL {
					return
				}
			}
			if countExpFactors(pass, n) >= 2 {
				pass.ReportRangef(n.OpPos, n.End(), "product of math.Exp calls underflows before it overflows; use math.Exp(a + b)")
			}
		case *ast.CallExpr:
			switch {
			case isPkgFunc(pass.Info, n, "math", "Log") && len(n.Args) == 1 && asPkgCall(pass.Info, n.Args[0], "math", "Exp") != nil:
				pass.ReportNodef(n, "math.Log(math.Exp(x)) is x with extra rounding; use x directly")
			case isPkgFunc(pass.Info, n, "math", "Exp") && len(n.Args) == 1 && asPkgCall(pass.Info, n.Args[0], "math", "Log") != nil:
				pass.ReportNodef(n, "math.Exp(math.Log(x)) is x with extra rounding (and NaN for x <= 0); use x directly")
			case !inNumeric && isPkgFunc(pass.Info, n, "math", "Exp") && len(n.Args) == 1:
				if mentionsLogSpace(pass, n.Args[0]) {
					pass.ReportNodef(n, "hand-rolled log-space probability term outside %s; use numeric.PoissonPMF, numeric.BinomialPMF or numeric.FoxGlynn", numericPkgSuffix)
				}
			}
		}
	})
	return nil
}

// countExpFactors counts direct math.Exp factors in a * chain.
func countExpFactors(pass *Pass, e ast.Expr) int {
	e = unparen(e)
	if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.MUL {
		return countExpFactors(pass, be.X) + countExpFactors(pass, be.Y)
	}
	if asPkgCall(pass.Info, e, "math", "Exp") != nil {
		return 1
	}
	return 0
}

// mentionsLogSpace reports whether the expression subtree contains a
// math.Log/math.Log1p/math.Lgamma call or a value whose name marks it as a
// log-domain quantity (log*, lf, lg — the conventional names for
// log-factorial tables and cached logarithms).
func mentionsLogSpace(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPkgFunc(pass.Info, n, "math", "Log") ||
				isPkgFunc(pass.Info, n, "math", "Log1p") ||
				isPkgFunc(pass.Info, n, "math", "Lgamma") {
				found = true
				return false
			}
		case *ast.Ident:
			if isLogName(n.Name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isLogName(name string) bool {
	if name == "lf" || name == "lg" {
		return true
	}
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "log") && lower != "log" // `log` alone is usually a logger
}
