package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder flags `for … range` loops over maps whose body is sensitive to
// iteration order. Go randomises map iteration, so such loops are a
// determinism hazard in a codebase whose charter is bitwise-reproducible
// numerics:
//
//   - accumulating into a float across iterations — float addition is not
//     associative, so the rounded sum depends on visit order;
//   - appending to a slice declared outside the loop without sorting it
//     afterwards in the same block — the slice layout leaks the random
//     order to callers;
//   - writing output (fmt print family, Fprint*, or a Write/WriteString
//     method) — logs and reports become non-reproducible.
//
// The fix is the sorted-keys idiom: collect keys, sort, then index the map
// in key order (as mrm.Labels does) — or sort the accumulated slice before
// it escapes. Order-insensitive bodies (pure lookups, integer counting,
// map-to-map copies) are untouched.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flags range-over-map loops whose body accumulates floats, builds unsorted result slices, or writes output",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) error {
	pass.Inspect(Mask((*ast.RangeStmt)(nil)), func(n ast.Node, stack []ast.Node) {
		rng := n.(*ast.RangeStmt)
		t := pass.TypeOf(rng.X)
		if t == nil {
			return
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return
		}
		checkMapRangeBody(pass, rng, stack)
	})
	return nil
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rng {
				return false // the nested loop gets its own visit
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, stack, n)
		case *ast.CallExpr:
			if isOutputCall(pass, n) {
				pass.ReportNodef(n, "output written while ranging over a map; iteration order is randomised — iterate sorted keys instead")
			}
		}
		return true
	})
}

// checkMapRangeAssign flags order-sensitive assignments inside the loop
// body: float accumulation and unsorted appends into outer slices.
func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, stack []ast.Node, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if !isFloat(pass.TypeOf(lhs)) {
				continue
			}
			if v := loopOuterVar(pass, lhs, rng); v != nil {
				pass.ReportNodef(as, "float accumulation into %s while ranging over a map; rounding depends on iteration order — iterate sorted keys (or use a compensated sum over sorted keys)", v.Name())
			}
		}
	case token.ASSIGN:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBuiltin(pass.Info, call, "append") || len(call.Args) == 0 {
			return
		}
		dst := loopOuterVar(pass, as.Lhs[0], rng)
		if dst == nil {
			return
		}
		// `xs = append(xs, …)` growing an outer slice: fine only if the
		// surrounding block sorts xs after the loop.
		if base := loopOuterVar(pass, call.Args[0], rng); base == nil || base != dst {
			return
		}
		if sortedAfterLoop(pass, rng, stack, dst) {
			return
		}
		pass.ReportNodef(as, "append to %s while ranging over a map leaks the randomised order; sort %s after the loop or iterate sorted keys", dst.Name(), dst.Name())
	}
}

// loopOuterVar resolves e to a variable declared outside the range
// statement (so its value survives the loop), or nil.
func loopOuterVar(pass *Pass, e ast.Expr, rng *ast.RangeStmt) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if rng.Pos() <= v.Pos() && v.Pos() < rng.End() {
		return nil // loop-local, dies with the iteration or the loop
	}
	return v
}

// sortedAfterLoop reports whether a statement after rng in its enclosing
// statement list is a sort.*/slices.Sort* call mentioning v.
func sortedAfterLoop(pass *Pass, rng *ast.RangeStmt, stack []ast.Node, v *types.Var) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		var list []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		default:
			continue
		}
		after := false
		for _, stmt := range list {
			if stmt == ast.Stmt(rng) || containsNode(stmt, rng) {
				after = true
				continue
			}
			if after && stmtSorts(pass, stmt, v) {
				return true
			}
		}
		return false
	}
	return false
}

// containsNode reports whether outer's extent covers inner.
func containsNode(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// stmtSorts reports whether stmt calls a sorting function with v among the
// call's arguments (sort.Strings(xs), slices.Sort(xs), sort.Slice(xs, …)).
func stmtSorts(pass *Pass, stmt ast.Stmt, v *types.Var) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" && !strings.HasSuffix(pkg, "/slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := unparen(arg).(*ast.Ident); ok && pass.Info.Uses[id] == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isOutputCall reports whether call writes user-visible output: the fmt
// print family or a Write/WriteString method on anything.
func isOutputCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "F") {
		return true // Fprint, Fprintf, Fprintln — writer-directed output
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}
