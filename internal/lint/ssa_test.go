package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typeCheckFuncDecl is typeCheckFunc returning the declaration, so SSA
// tests can recover the parameter objects.
func typeCheckFuncDecl(t *testing.T, src string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd, info
		}
	}
	t.Fatal("fixture has no function body")
	return nil, nil
}

func buildFixtureSSA(t *testing.T, src string) (*SSA, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fd, info := typeCheckFuncDecl(t, src)
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		t.Fatal("fixture function has no object")
	}
	cfg := BuildCFG(fd.Body)
	return BuildSSA(cfg, info, signatureParams(fn)), fd, info
}

// ssaFixtures are the control-flow shapes shared with the PR 6 dataflow
// tests (join, loop, range) plus the shapes that stress φ placement and
// renaming: nested branches, switch fallthrough, labelled break, goto,
// compound assignment, early return and a dead-at-join variable.
var ssaFixtures = []string{
	`func f(a int) int {
		x := 1
		if a > 0 {
			x = 2
		}
		y := x
		return y
	}`,
	`func g(n int) int {
		s := 0
		for i := 0; i < n; i++ {
			s = s + i
		}
		return s
	}`,
	`func h(xs []int) int {
		total := 0
		for _, v := range xs {
			total += v
		}
		return total
	}`,
	`func nested(a, b int) int {
		x := 0
		if a > 0 {
			if b > 0 {
				x = 1
			} else {
				x = 2
			}
		} else {
			x = 3
		}
		return x
	}`,
	`func sw(a int) int {
		x := 0
		switch a {
		case 1:
			x = 1
			fallthrough
		case 2:
			x += 10
		default:
			x = -1
		}
		return x
	}`,
	`func labelled(n int) int {
		s := 0
	outer:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j > 3 {
					break outer
				}
				s += j
			}
		}
		return s
	}`,
	`func gotos(a int) int {
		x := 1
		if a > 0 {
			goto done
		}
		x = 2
	done:
		return x
	}`,
	`func early(a float64) float64 {
		if a < 0 {
			return -a
		}
		b := a * 2
		for b > 1 {
			b = b / 2
		}
		return b
	}`,
	`func deadjoin(a int) int {
		x := 1
		if a > 0 {
			x = 2
		}
		_ = x
		return a
	}`,
}

// TestDominanceFrontiersBruteForce checks the Cytron-walk frontiers
// against the set definition — y is in DF(n) iff n dominates some
// predecessor of y but does not strictly dominate y — computed directly
// from the iterative Dominators() sets.
func TestDominanceFrontiersBruteForce(t *testing.T) {
	for fi, src := range ssaFixtures {
		fd, _ := typeCheckFuncDecl(t, src)
		cfg := BuildCFG(fd.Body)
		idom := immediateDominators(cfg)
		df := dominanceFrontiers(cfg, idom)
		dom := cfg.Dominators()
		reach := cfg.Reachable()
		for n := range cfg.Blocks {
			want := make(map[int]bool)
			if reach[n] {
				for y, by := range cfg.Blocks {
					if !reach[y] {
						continue
					}
					inFrontier := false
					for _, p := range by.Preds {
						if reach[p.Index] && dom[p.Index][n] {
							inFrontier = true
							break
						}
					}
					strictlyDominates := dom[y][n] && n != y
					if inFrontier && !strictlyDominates {
						want[y] = true
					}
				}
			}
			got := make(map[int]bool)
			for _, y := range df[n] {
				got[y] = true
			}
			for y := range want {
				if !got[y] {
					t.Errorf("fixture %d: DF(%d) missing %d (have %v)", fi, n, y, df[n])
				}
			}
			for y := range got {
				if !want[y] {
					t.Errorf("fixture %d: DF(%d) contains spurious %d", fi, n, y)
				}
			}
		}
	}
}

// TestImmediateDominators checks idom against the Dominators() sets: the
// immediate dominator must strictly dominate its block and be dominated by
// every other strict dominator of it.
func TestImmediateDominators(t *testing.T) {
	for fi, src := range ssaFixtures {
		fd, _ := typeCheckFuncDecl(t, src)
		cfg := BuildCFG(fd.Body)
		idom := immediateDominators(cfg)
		dom := cfg.Dominators()
		reach := cfg.Reachable()
		if idom[cfg.Entry.Index] != -1 {
			t.Errorf("fixture %d: entry has idom %d, want -1", fi, idom[cfg.Entry.Index])
		}
		for b := range cfg.Blocks {
			if !reach[b] || b == cfg.Entry.Index {
				continue
			}
			d := idom[b]
			if d < 0 {
				t.Errorf("fixture %d: reachable block %d has no idom", fi, b)
				continue
			}
			if !dom[b][d] || d == b {
				t.Errorf("fixture %d: idom[%d] = %d does not strictly dominate it", fi, b, d)
			}
			for a := range dom[b] {
				if dom[b][a] && a != b && a != d && reach[a] && !dom[d][a] {
					t.Errorf("fixture %d: strict dominator %d of %d does not dominate idom %d", fi, a, b, d)
				}
			}
		}
	}
}

// TestSSAAgainstReachingDefs cross-checks SSA use resolution against the
// PR 6 gen/kill reaching-definitions solution on the shared fixtures: the
// concrete definition sites behind every SSA use must be a subset of the
// definitions the block-granular solver says may reach that use, and a
// use resolved to a single non-φ definition must be reported reachable by
// the solver too.
func TestSSAAgainstReachingDefs(t *testing.T) {
	for fi, src := range ssaFixtures {
		s, _, info := buildFixtureSSA(t, src)
		cfg := s.CFG
		rd := cfg.ComputeReachingDefs(info)
		// Index the RD defs by (object, node) for membership tests.
		type defKey struct {
			obj  types.Object
			node ast.Node
		}
		rdDef := make(map[defKey]int)
		for i, d := range rd.Defs {
			rdDef[defKey{d.Obj, d.Node}] = i
		}
		for _, b := range cfg.Blocks {
			for k, n := range b.Nodes {
				_, skip := defTargets(n, info)
				ast.Inspect(n, func(x ast.Node) bool {
					if _, ok := x.(*ast.FuncLit); ok {
						return false
					}
					id, ok := x.(*ast.Ident)
					if !ok || skip[id] {
						return true
					}
					v, ok := info.Uses[id].(*types.Var)
					if !ok {
						return true
					}
					val, ok := s.UseVal[id]
					if !ok {
						return true
					}
					if val.Var != v {
						t.Errorf("fixture %d: use %s resolved to variable %v", fi, id.Name, val.Var)
					}
					// Reaching set for this use at block granularity: the
					// latest earlier same-block def if any, else RD.In.
					var allowed map[ast.Node]bool
					for kk := 0; kk < k; kk++ {
						collectDefs(b.Nodes[kk], info, func(obj types.Object, node ast.Node) {
							if obj == v {
								allowed = map[ast.Node]bool{node: true}
							}
						})
					}
					sameBlock := allowed != nil
					if allowed == nil {
						allowed = make(map[ast.Node]bool)
						for di := range rd.In[b.Index] {
							if rd.Defs[di].Obj == v {
								allowed[rd.Defs[di].Node] = true
							}
						}
					}
					for _, c := range val.ConcreteValues() {
						if c.Def == nil {
							continue // parameter entry / zero value: not an RD def
						}
						if !allowed[c.Def] {
							t.Errorf("fixture %d: SSA resolves use of %s to a def the reaching-defs solver rules out (block %d, sameBlock=%v)",
								fi, id.Name, b.Index, sameBlock)
						}
						if _, ok := rdDef[defKey{types.Object(v), c.Def}]; !ok {
							t.Errorf("fixture %d: SSA def of %s at %T unknown to reaching-defs", fi, id.Name, c.Def)
						}
					}
					return true
				})
			}
		}
	}
}

// TestSSAPhiJoin pins the join fixture: the use of x after the if resolves
// to a φ merging exactly the two definitions.
func TestSSAPhiJoin(t *testing.T) {
	s, fd, _ := buildFixtureSSA(t, ssaFixtures[0])
	var use *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if ok && len(as.Lhs) == 1 {
			if lhs, ok := as.Lhs[0].(*ast.Ident); ok && lhs.Name == "y" {
				use = as.Rhs[0].(*ast.Ident)
			}
		}
		return true
	})
	if use == nil {
		t.Fatal("no use of x found")
	}
	val := s.UseVal[use]
	if val == nil || val.Phi == nil {
		t.Fatalf("use of x at join resolved to %+v, want a φ", val)
	}
	concrete := val.ConcreteValues()
	if len(concrete) != 2 {
		t.Fatalf("join φ expands to %d concrete values, want 2", len(concrete))
	}
	versions := map[int]bool{}
	for _, c := range concrete {
		if c.Def == nil {
			t.Errorf("join φ includes an entry value; both inputs are explicit defs")
		}
		versions[c.Version] = true
	}
	if len(versions) != 2 {
		t.Errorf("join φ inputs share a version: %v", versions)
	}
}

// TestSSALoopPhi pins the loop fixture: the right-hand use of s inside
// s = s + i resolves through the loop-head φ to both the initial and the
// loop-carried definition.
func TestSSALoopPhi(t *testing.T) {
	s, fd, _ := buildFixtureSSA(t, ssaFixtures[1])
	var use *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if lhs, ok := as.Lhs[0].(*ast.Ident); ok && lhs.Name == "s" {
				if be, ok := as.Rhs[0].(*ast.BinaryExpr); ok {
					if x, ok := be.X.(*ast.Ident); ok && x.Name == "s" {
						use = x
					}
				}
			}
		}
		return true
	})
	if use == nil {
		t.Fatal("no in-loop use of s found")
	}
	val := s.UseVal[use]
	if val == nil {
		t.Fatal("in-loop use of s not resolved")
	}
	concrete := val.ConcreteValues()
	if len(concrete) != 2 {
		t.Fatalf("loop use of s expands to %d concrete values, want 2 (init + loop-carried)", len(concrete))
	}
}

// TestSSAPrunedPhi asserts the pruned form: a variable dead at the join
// (deadjoin fixture: x is last read by the blank assignment before the
// join... actually x is read at _ = x before return) — variable y in a
// shape where the merged value is never read gets no φ.
func TestSSAPrunedPhi(t *testing.T) {
	s, _, _ := buildFixtureSSA(t, `func pruned(a int) int {
		x := 1
		if a > 0 {
			a += x
			x = 2
			a += x
		}
		return a
	}`)
	for bi, phis := range s.Phis {
		for _, phi := range phis {
			if phi.Val.Var.Name() == "x" {
				t.Errorf("dead variable x got a φ at block %d; pruning should drop it", bi)
			}
		}
	}
}

// TestSSACompoundAssign asserts x += e resolves the target ident to the
// value it reads while recording the new value under Defs.
func TestSSACompoundAssign(t *testing.T) {
	s, fd, _ := buildFixtureSSA(t, `func c(a float64) float64 {
		x := a
		x += 1
		return x
	}`)
	var compound *ast.AssignStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN {
			compound = as
		}
		return true
	})
	if compound == nil {
		t.Fatal("no compound assignment found")
	}
	target := compound.Lhs[0].(*ast.Ident)
	old := s.UseVal[target]
	if old == nil {
		t.Fatal("compound target not resolved as a use")
	}
	defs := s.Defs[compound]
	if len(defs) != 1 {
		t.Fatalf("compound assignment created %d defs, want 1", len(defs))
	}
	if defs[0] == old {
		t.Error("compound assignment's new value aliases the value it reads")
	}
	if defs[0].Version == old.Version {
		t.Error("compound assignment did not bump the version")
	}
	// The return's use sees the post-increment value.
	var retUse *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.ReturnStmt); ok {
			retUse = rs.Results[0].(*ast.Ident)
		}
		return true
	})
	if got := s.UseVal[retUse]; got != defs[0] {
		t.Errorf("return reads version %d, want the compound result %d", got.Version, defs[0].Version)
	}
}

// TestSSAEntryValues asserts parameters carry Version-0 entry values and
// direct parameter uses resolve to them.
func TestSSAEntryValues(t *testing.T) {
	s, fd, _ := buildFixtureSSA(t, `func e(a float64) float64 {
		b := a + 1
		return b
	}`)
	// Parameters are declared in fd.Type, so every "a" inside the body is a
	// use.
	var aUse *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "a" {
			aUse = id
		}
		return true
	})
	if aUse == nil {
		t.Fatal("no use of parameter a")
	}
	val := s.UseVal[aUse]
	if val == nil || val.Version != 0 || val.Def != nil {
		t.Errorf("parameter use resolved to %+v, want the Version-0 entry value", val)
	}
	if len(s.Vars) == 0 || s.Vars[0].Name() != "a" {
		t.Errorf("parameters should lead Vars, got %v", s.Vars)
	}
}
