package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// lockscan is the shared control-flow approximation behind guardedfield
// and goroutinemisuse: which mutexes are held at a given node. It is a
// dominator approximation over the syntax tree — a lock counts as held
// when a `x.Lock()` statement appears in an enclosing statement list
// before the statement containing the node, with no intervening non-
// deferred `x.Unlock()` in that same list. `defer x.Unlock()` keeps the
// lock held for the rest of the function, matching the idiom
//
//	c.mu.Lock()
//	defer c.mu.Unlock()
//
// The scan never crosses a function-literal boundary: a lock taken by the
// enclosing function is not assumed held inside a closure, because the
// closure may run on another goroutine.

// lockMode distinguishes exclusive from read locks.
type lockMode int

const (
	lockRead  lockMode = iota + 1 // RLock
	lockWrite                     // Lock
)

// heldLocks returns the mutexes held at the innermost node of stack,
// keyed by the rendered mutex expression (e.g. "c.mu"). stack is an
// ancestor stack as handed out by Pass.Inspect.
func heldLocks(stack []ast.Node) map[string]lockMode {
	held := make(map[string]lockMode)
	// Only statement lists inside the innermost function matter.
	funcBoundary := 0
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			funcBoundary = i
		}
		if funcBoundary != 0 {
			break
		}
	}
	for i := funcBoundary; i+1 < len(stack); i++ {
		var list []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		next := stack[i+1]
		for _, stmt := range list {
			if stmt == next {
				break
			}
			scanLockStmt(stmt, held)
		}
	}
	return held
}

// scanLockStmt updates held for one statement: top-level Lock/RLock calls
// acquire, top-level Unlock/RUnlock calls release, deferred releases are
// ignored (they fire at function exit, after every dominated access).
func scanLockStmt(stmt ast.Stmt, held map[string]lockMode) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return
	}
	call, ok := unparen(es.X).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return
	}
	target := types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock":
		held[target] = lockWrite
	case "RLock":
		held[target] = lockRead
	case "Unlock", "RUnlock":
		delete(held, target)
	}
}

// heldLockNames renders the held set sorted, for diagnostics.
func heldLockNames(held map[string]lockMode) []string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (directly
// or behind one pointer), and whether it is the RW flavour.
func isMutexType(t types.Type) (mutex, rw bool) {
	if t == nil {
		return false, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}
