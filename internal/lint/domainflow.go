package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Domainflow flags arithmetic that mixes log-space and linear-space
// values. The numeric kernels keep Poisson and binomial terms in log
// space until the last moment (PoissonPMF returns exp(-λ + n·log λ −
// log n!)); a caller that adds such a log-space quantity to a linear
// probability, exponentiates a value that is already linear, or takes
// the log of a value that is already logarithmic produces garbage that
// no later clamp can repair. Domains come from //numerics:domain
// annotations on entry points and are propagated bottom-up through
// unannotated helpers by the summary engine, per-value through each
// function by SSA.
//
// Rate-domain values are exempt from the additive mixing rule: log-space
// exponent arithmetic (−q·t + n·log(q·t)) legitimately adds rates to
// logarithms.
var Domainflow = &Analyzer{
	Name: "domainflow",
	Doc:  "flags arithmetic mixing log-space and linear-space values (declared via //numerics:domain)",
	Run:  runDomainflow,
}

// builtinDomain assigns result domains to the standard-library
// transcendentals that convert between spaces.
func builtinDomain(fn *types.Func) Domain {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
		return DomUnknown
	}
	switch fn.Name() {
	case "Log", "Log2", "Log10", "Log1p":
		return DomLog
	case "Exp", "Exp2", "Expm1":
		return DomLinear
	}
	return DomUnknown
}

// isMathCall reports whether call invokes math.<one of names>.
func isMathCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// domainEval evaluates the numeric domain of expressions within one
// function frame (a declaration body or a function literal body), using
// the frame's SSA to follow values through assignments and φs, and the
// summary engine for callee result domains.
type domainEval struct {
	sums      *Summaries
	pkg       *Package
	ssa       *SSA
	paramDoms map[*types.Var]Domain
	memo      map[*SSAValue]Domain
	busy      map[*SSAValue]bool
}

func newDomainEval(sums *Summaries, pkg *Package, body *ast.BlockStmt, params []*types.Var, paramDoms map[int]Domain) *domainEval {
	byVar := make(map[*types.Var]Domain, len(paramDoms))
	for i, d := range paramDoms {
		if i < len(params) {
			byVar[params[i]] = d
		}
	}
	return &domainEval{
		sums:      sums,
		pkg:       pkg,
		ssa:       pkg.SSA(body, params),
		paramDoms: byVar,
		memo:      make(map[*SSAValue]Domain),
		busy:      make(map[*SSAValue]bool),
	}
}

// of evaluates the domain of an expression. Constants are domain-free
// (adding a constant shifts either space legitimately), so they come back
// DomUnknown and never participate in findings.
func (e *domainEval) of(x ast.Expr) Domain {
	x = unparen(x)
	if tv, ok := e.pkg.Info.Types[x]; ok && tv.Value != nil {
		return DomUnknown
	}
	switch x := x.(type) {
	case *ast.Ident:
		v, ok := e.pkg.Info.Uses[x].(*types.Var)
		if !ok {
			return DomUnknown
		}
		if val, ok := e.ssa.UseVal[x]; ok {
			return e.valDomain(val)
		}
		// A variable captured from an enclosing frame: the only portable
		// fact is its declared parameter domain, if any.
		return e.paramDoms[v]
	case *ast.CallExpr:
		return e.callDomain(x)
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return e.of(x.X)
		}
	case *ast.BinaryExpr:
		return binopDomain(x.Op, e.of(x.X), e.of(x.Y))
	case *ast.IndexExpr:
		// Elements of a domain-tagged slice share the slice's domain.
		return e.of(x.X)
	}
	return DomUnknown
}

// callDomain resolves the result domain of a call through the summary
// engine (annotation, builtin registry, or bottom-up inference).
func (e *domainEval) callDomain(call *ast.CallExpr) Domain {
	fn := calleeFunc(e.pkg.Info, call)
	if fn == nil {
		return DomUnknown
	}
	if d := builtinDomain(fn); d != DomUnknown {
		return d
	}
	return e.sums.Of(fn).ResultDomain
}

// valDomain evaluates the domain of one SSA value, memoised; cycles
// (loop-carried φs) resolve to the join of their acyclic inputs.
func (e *domainEval) valDomain(v *SSAValue) Domain {
	if v == nil {
		return DomUnknown
	}
	if d, ok := e.memo[v]; ok {
		return d
	}
	if e.busy[v] {
		return DomUnknown
	}
	e.busy[v] = true
	d := e.valDomainUncached(v)
	delete(e.busy, v)
	e.memo[v] = d
	return d
}

func (e *domainEval) valDomainUncached(v *SSAValue) Domain {
	if v.Phi != nil {
		// Join: all known inputs must agree; a disagreement (or an unknown
		// input) degrades to unknown rather than guessing.
		out := DomUnknown
		for _, a := range v.Phi.Args {
			if a == nil {
				continue
			}
			if e.busy[a] {
				continue // the loop-carried input; the acyclic ones decide
			}
			ad := e.valDomain(a)
			switch {
			case ad == DomUnknown:
				return DomUnknown
			case out == DomUnknown:
				out = ad
			case out != ad:
				return DomUnknown
			}
		}
		return out
	}
	if v.Def == nil {
		return e.paramDoms[v.Var] // parameter entry value (or untracked zero)
	}
	switch def := v.Def.(type) {
	case *ast.AssignStmt:
		if def.Tok == token.ASSIGN || def.Tok == token.DEFINE {
			if v.Rhs != nil {
				return e.of(v.Rhs)
			}
			return DomUnknown
		}
		// Compound assignment x op= rhs: the new value is old op rhs.
		old := e.compoundOld(def)
		if v.Rhs == nil {
			return old
		}
		return binopDomain(compoundOp(def.Tok), old, e.of(v.Rhs))
	case *ast.IncDecStmt:
		return e.compoundOldIdent(def.X)
	case *ast.DeclStmt:
		if v.Rhs != nil {
			return e.of(v.Rhs)
		}
		return DomUnknown
	case *ast.RangeStmt:
		// The value binding takes the element domain of the ranged
		// expression; the key (an index) has none.
		if id, ok := def.Value.(*ast.Ident); ok && defOrUse(e.pkg.Info, id) == types.Object(v.Var) {
			return e.of(def.X)
		}
		return DomUnknown
	}
	return DomUnknown
}

// compoundOld resolves the pre-assignment value of a compound
// assignment's target.
func (e *domainEval) compoundOld(as *ast.AssignStmt) Domain {
	if len(as.Lhs) == 1 {
		return e.compoundOldIdent(as.Lhs[0])
	}
	return DomUnknown
}

func (e *domainEval) compoundOldIdent(lhs ast.Expr) Domain {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return DomUnknown
	}
	if val, ok := e.ssa.UseVal[id]; ok {
		return e.valDomain(val)
	}
	return DomUnknown
}

// compoundOp maps a compound-assignment token to its binary operator.
func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	}
	return token.ILLEGAL
}

// binopDomain combines operand domains under a binary operator.
func binopDomain(op token.Token, a, b Domain) Domain {
	switch op {
	case token.ADD, token.SUB:
		switch {
		case a == b:
			return a
		case a.LinearFamily() && b.LinearFamily():
			return DomLinear
		case (a == DomLog && b == DomRate) || (a == DomRate && b == DomLog):
			// Exponent arithmetic: −q·t + n·log(q·t) stays log-space.
			return DomLog
		}
		return DomUnknown
	case token.MUL:
		switch {
		case a == DomLog && b == DomLog:
			return DomUnknown // multiplying two logarithms has no space
		case a == DomLog || b == DomLog:
			return DomLog // a scaled log quantity (n·log q)
		case a == DomProb && b == DomProb:
			return DomProb // products of probabilities stay in [0,1]
		case a.LinearFamily() && b.LinearFamily():
			return DomLinear
		}
		return DomUnknown
	case token.QUO:
		switch {
		case a == DomLog && b != DomLog:
			return DomLog
		case a.LinearFamily() && b.LinearFamily():
			return DomLinear
		}
		return DomUnknown
	}
	return DomUnknown
}

// mixes reports an additive log/linear mix: one side logarithmic, the
// other a linear-family value other than a rate.
func mixes(a, b Domain) bool {
	if a == DomLog {
		a, b = b, a
	}
	return b == DomLog && a.LinearFamily() && a != DomRate
}

// producedByExp reports whether the expression (or the SSA values behind
// it) is a result of math.Exp — the double-exponentiation test.
func producedByExp(e *domainEval, x ast.Expr) bool {
	x = unparen(x)
	if call, ok := x.(*ast.CallExpr); ok {
		return isMathCall(e.pkg.Info, call, "Exp", "Exp2", "Expm1")
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	val, ok := e.ssa.UseVal[id]
	if !ok {
		return false
	}
	concrete := val.ConcreteValues()
	if len(concrete) == 0 {
		return false
	}
	for _, c := range concrete {
		if c.Rhs == nil {
			return false
		}
		call, ok := unparen(c.Rhs).(*ast.CallExpr)
		if !ok || !isMathCall(e.pkg.Info, call, "Exp", "Exp2", "Expm1") {
			return false
		}
	}
	return true
}

func runDomainflow(pass *Pass) error {
	sums := pass.Summaries()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := sums.Of(fn)
			for _, bad := range sum.BadDomains {
				pass.Reportf(bad.Pos, "bad //numerics:domain token %q: %s", bad.Term, bad.Reason)
			}
			params := signatureParams(fn)
			checkDomainFrame(pass, sums, fd.Body, params, sum.ParamDomains, sum, fd.Name.Name)
		}
	}
	return nil
}

// checkDomainFrame runs the domain checks over one function frame,
// recursing into function literals with fresh frames (their bodies have
// their own CFGs and SSA; captured values degrade to unknown).
func checkDomainFrame(pass *Pass, sums *Summaries, body *ast.BlockStmt, params []*types.Var, paramDoms map[int]Domain, sum *FuncSummary, name string) {
	eval := newDomainEval(sums, pass.pkg, body, params, paramDoms)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			checkDomainFrame(pass, sums, x.Body, funcLitParams(pass.Info, x.Type), nil, nil, name+" literal")
			return false
		case *ast.BinaryExpr:
			if x.Op != token.ADD && x.Op != token.SUB {
				return true
			}
			if t := pass.TypeOf(x); t == nil || !isFloat(t) {
				return true
			}
			a, b := eval.of(x.X), eval.of(x.Y)
			if mixes(a, b) {
				pass.ReportNodef(x, "mixes log-space and linear-space values: %s operand %s %s operand",
					a, x.Op, b)
			}
		case *ast.CallExpr:
			checkDomainCall(pass, eval, x)
		case *ast.ReturnStmt:
			if sum == nil || !sum.DomainAnnotated || sum.ResultDomain == DomUnknown {
				return true
			}
			for _, res := range x.Results {
				if t := pass.TypeOf(res); t == nil || !(isFloat(t) || isFloatSlice(t)) {
					continue
				}
				got := eval.of(res)
				if got == DomUnknown || got == sum.ResultDomain {
					continue
				}
				if got.LinearFamily() != sum.ResultDomain.LinearFamily() {
					pass.ReportNodef(res, "returns a %s-space value but %s declares //numerics:domain %s",
						got, name, sum.ResultDomain)
				}
			}
		}
		return true
	})
}

// checkDomainCall checks one call: the transcendental conversions, and
// arguments against the callee's declared parameter domains.
func checkDomainCall(pass *Pass, eval *domainEval, call *ast.CallExpr) {
	info := pass.Info
	if isMathCall(info, call, "Exp", "Exp2", "Expm1") && len(call.Args) == 1 {
		arg := call.Args[0]
		if producedByExp(eval, arg) {
			pass.ReportNodef(call, "double exponentiation: math.Exp of a value already produced by math.Exp")
		} else if d := eval.of(arg); d == DomProb {
			pass.ReportNodef(call, "math.Exp applied to a prob-domain value; exponents live in log or rate space")
		}
		return
	}
	if isMathCall(info, call, "Log", "Log2", "Log10", "Log1p") && len(call.Args) == 1 {
		if d := eval.of(call.Args[0]); d == DomLog {
			pass.ReportNodef(call, "math.Log applied to a log-space value")
		}
		return
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	sum := eval.sums.Of(fn)
	if len(sum.ParamDomains) == 0 {
		return
	}
	// Parameter indices are receiver-first; a method call's receiver is in
	// the selector, so argument j maps to parameter j+offset.
	offset := 0
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		offset = 1
	}
	params := signatureParams(fn)
	for j, arg := range call.Args {
		idx := j + offset
		want, ok := sum.ParamDomains[idx]
		if !ok || idx >= len(params) {
			continue
		}
		got := eval.of(arg)
		if got == DomUnknown || got == want {
			continue
		}
		if got.LinearFamily() != want.LinearFamily() {
			pass.ReportNodef(arg, "passes a %s-space value to parameter %s of %s, declared //numerics:domain %s",
				got, params[idx].Name(), fn.Name(), want)
		}
	}
}

// isFloatSlice reports whether t is a slice of floating-point elements.
func isFloatSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isFloat(s.Elem())
}

// inferResultDomain derives the result domain of an unannotated function
// from its return expressions: when every top-level return yields the
// same known domain for the first float (or float-slice) result, the
// function is a producer of that domain for its callers. Called from the
// summary engine under its recursion guard.
func inferResultDomain(s *Summaries, pkg *Package, decl *ast.FuncDecl, params []*types.Var, paramDoms map[int]Domain) Domain {
	if decl.Body == nil || decl.Type.Results == nil {
		return DomUnknown
	}
	// Position of the first float-ish result.
	resIdx := -1
	idx := 0
	for _, field := range decl.Type.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		t := pkg.Info.TypeOf(field.Type)
		if t != nil && (isFloat(t) || isFloatSlice(t)) && resIdx < 0 {
			resIdx = idx
		}
		idx += n
	}
	if resIdx < 0 {
		return DomUnknown
	}
	eval := newDomainEval(s, pkg, decl.Body, params, paramDoms)
	out := DomUnknown
	conflict := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || conflict || resIdx >= len(ret.Results) {
			return true
		}
		d := eval.of(ret.Results[resIdx])
		switch {
		case d == DomUnknown:
			conflict = true // one uncommitted path spoils the inference
		case out == DomUnknown:
			out = d
		case out != d:
			conflict = true
		}
		return true
	})
	if conflict {
		return DomUnknown
	}
	return out
}
