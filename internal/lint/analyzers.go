package lint

// All returns every registered analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Aliasret,
		Bannedcall,
		Detorder,
		Domainflow,
		Droppederr,
		Epsbudget,
		Expunderflow,
		Floatcmp,
		Goroutinemisuse,
		Guardedfield,
		Ledgercharge,
		Maporder,
		Mutexcopy,
		Poolescape,
		Probrange,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
