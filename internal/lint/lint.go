// Package lint is a small static-analysis framework for this repository,
// built on the standard library's go/ast, go/parser and go/types packages
// only — no external analysis dependencies. It exists to enforce the
// numerical-hygiene rules that the model-checking procedures depend on
// (no naked float equality, no underflow-prone exp/log arithmetic outside
// internal/numeric, no silently dropped errors, no aliased internal
// buffers escaping from the matrix/model packages).
//
// The cmd/mrmlint driver runs every registered analyzer over the module.
// Individual findings can be suppressed with a comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it. The
// reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is a single named check that inspects one type-checked package
// at a time and reports diagnostics through its Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable/disable flags
	// and //lint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-line description shown by `mrmlint -list`.
	Doc string
	// Version counts behavioural revisions of the analyzer (new checks,
	// changed heuristics). It feeds RegistryHash so CI baselines notice
	// when recorded suppressions or stored findings predate the current
	// analyzer semantics. The zero value is version 1.
	Version int
	// Run inspects the package held by the pass and reports findings.
	Run func(*Pass) error
}

// version normalises the zero value to 1.
func (a *Analyzer) version() int {
	if a.Version == 0 {
		return 1
	}
	return a.Version
}

// RegistryHash fingerprints the full analyzer registry: an FNV-1a hash
// over the sorted "name@vN" strings of All(). The mrmlint -json mode
// stamps every finding with it, so a CI baseline diffing stored findings
// can tell "the code changed" apart from "the analyzers changed".
func RegistryHash() string {
	names := make([]string, 0, 16)
	for _, a := range All() {
		names = append(names, fmt.Sprintf("%s@v%d", a.Name, a.version()))
	}
	sort.Strings(names)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, s := range names {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= '\n'
		h *= prime64
	}
	return fmt.Sprintf("%016x", h)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files, parsed with comments.
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the package's import path within the module.
	PkgPath string
	// GoVersion is the module's go directive (e.g. "1.22"); "" means
	// unknown, which version-gated checks treat as current.
	GoVersion string

	insp  *Inspector
	pkg   *Package
	diags *[]Diagnostic
}

// CFG returns the control-flow graph of a function body, cached per
// package so the dataflow analyzers share one graph per function.
func (p *Pass) CFG(body *ast.BlockStmt) *CFG { return p.pkg.CFG(body) }

// Summaries returns the package's interprocedural summary cache.
func (p *Pass) Summaries() *Summaries { return p.pkg.Summaries() }

// CallGraph returns the package's call graph (see CallGraph), cached per
// package like CFG and Summaries.
func (p *Pass) CallGraph() *CallGraph { return p.pkg.CallGraph() }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportRangef(pos, pos, format, args...)
}

// ReportRangef records a diagnostic anchored at pos whose construct
// extends to end. The extent only matters for //lint:ignore matching: a
// directive at the end of any line the construct spans suppresses the
// finding, so wrapped statements can carry the directive on their last
// physical line.
func (p *Pass) ReportRangef(pos, end token.Pos, format string, args ...any) {
	d := Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if end.IsValid() {
		d.End = p.Fset.Position(end)
	}
	*p.diags = append(*p.diags, d)
}

// ReportNodef records a diagnostic spanning node n.
func (p *Pass) ReportNodef(n ast.Node, format string, args ...any) {
	p.ReportRangef(n.Pos(), n.End(), format, args...)
}

// Inspect replays the package's shared traversal (one AST walk for the
// whole analyzer suite, see Inspector) for the node types in mask, handing
// visit the stack of enclosing nodes (outermost first, n last).
func (p *Pass) Inspect(mask uint64, visit func(n ast.Node, stack []ast.Node)) {
	p.insp.WithStack(mask, visit)
}

// Preorder is Inspect without the ancestor stack.
func (p *Pass) Preorder(mask uint64, visit func(n ast.Node)) {
	p.insp.Preorder(mask, visit)
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one finding, positioned in the original source.
type Diagnostic struct {
	Pos token.Position
	// End is the position just past the flagged construct; the zero value
	// means the construct is taken to end on Pos.Line.
	End      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// ignoreDirective is a parsed //lint:ignore comment.
type ignoreDirective struct {
	line      int
	analyzers map[string]bool // names the directive suppresses
	used      bool
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts the //lint:ignore directives from a file and
// reports malformed ones (missing analyzer or reason) as diagnostics so
// suppressions stay auditable.
func parseIgnores(fset *token.FileSet, f *ast.File, known map[string]bool, diags *[]Diagnostic) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				*diags = append(*diags, Diagnostic{
					Pos:      pos,
					Analyzer: "ignore",
					Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
				})
				continue
			}
			names := strings.Split(fields[0], ",")
			set := make(map[string]bool, len(names))
			bad := false
			for _, n := range names {
				if !known[n] {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", n),
					})
					bad = true
					continue
				}
				set[n] = true
			}
			if bad && len(set) == 0 {
				continue
			}
			out = append(out, &ignoreDirective{line: pos.Line, analyzers: set})
		}
	}
	return out
}

// Runner applies a set of analyzers to packages.
type Runner struct {
	Analyzers []*Analyzer
}

// NewRunner returns a runner over the given analyzers.
func NewRunner(as []*Analyzer) *Runner { return &Runner{Analyzers: as} }

// RunPackage runs every analyzer over pkg and returns the surviving
// diagnostics, sorted by position, with //lint:ignore suppressions applied.
func (r *Runner) RunPackage(pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	insp := pkg.Inspector()
	for _, a := range r.Analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			PkgPath:   pkg.Path,
			GoVersion: pkg.GoVersion,
			insp:      insp,
			pkg:       pkg,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	// Directives validate against the full registry, not this runner's
	// enabled subset: naming a disabled analyzer is a fine (dormant)
	// suppression, only a name no analyzer has ever had is a typo.
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	// Suppression directives and their diagnostics, per file.
	var directiveDiags []Diagnostic
	ignores := make(map[string][]*ignoreDirective)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		ignores[name] = parseIgnores(pkg.Fset, f, known, &directiveDiags)
	}
	kept := directiveDiags
	for _, d := range diags {
		if !suppressed(d, ignores[d.Pos.Filename]) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept, nil
}

// suppressed reports whether a directive names the diagnostic's analyzer
// from the line immediately above the diagnostic, or from any line the
// flagged construct spans — so an end-of-line directive works on the last
// line of a wrapped statement, not only when it happens to share the
// anchor position's line.
func suppressed(d Diagnostic, dirs []*ignoreDirective) bool {
	last := d.Pos.Line
	if d.End.Line > last && d.End.Filename == d.Pos.Filename {
		last = d.End.Line
	}
	for _, dir := range dirs {
		if dir.line >= d.Pos.Line-1 && dir.line <= last && dir.analyzers[d.Analyzer] {
			dir.used = true
			return true
		}
	}
	return false
}
