package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file grows the PR 6 CFG layer into pruned SSA form. The numeric-
// domain analyzers (domainflow, probrange) need per-use value identity —
// "which assignment produced the value this expression reads" — which the
// block-granular reaching-definitions solution cannot give them: a block
// with two writes to s exposes only the last one, and a use between them
// sees neither. SSA versions every definition, places φ-functions at
// dominance frontiers and resolves every identifier use to exactly one
// SSAValue, so an analyzer can evaluate a fact per value with plain
// memoised recursion instead of a fixed-point sweep.
//
// The construction is the textbook pruned form:
//
//  1. immediate dominators are extracted from the existing iterative
//     Dominators() sets (the unique strict dominator dominated by all
//     other strict dominators);
//  2. dominance frontiers come from the Cytron et al. walk over the
//     dominator tree (for each join block, walk each predecessor's idom
//     chain up to the block's own idom);
//  3. φ-functions are placed with the usual worklist over the iterated
//     frontier of each variable's definition blocks, pruned by a
//     per-block liveness solve so dead φs (variables not live into the
//     join) are never materialised;
//  4. renaming walks the dominator tree with one version stack per
//     variable.
//
// Function literals stay opaque, exactly as in the CFG and dataflow
// layers: a FuncLit body is a separate function with its own CFG and its
// own SSA; uses of captured variables inside it are not versioned (a
// capture observes whatever version is current when the closure runs,
// which no intraprocedural numbering can name).

// SSAValue is one definition of one variable: a parameter's entry value
// (Version 0), an explicit definition site, or a φ-function merging
// versions at a join block.
type SSAValue struct {
	// Var is the source-level variable this value versions.
	Var *types.Var
	// Version numbers the definitions of Var in renaming order; the entry
	// value of a parameter (or the implicit zero value of a local read
	// before any write on some path) is Version 0.
	Version int
	// Def is the node performing the definition (an *ast.AssignStmt,
	// *ast.DeclStmt, *ast.IncDecStmt or *ast.RangeStmt), nil for entry
	// values and φs.
	Def ast.Node
	// Rhs is the expression assigned into this value when the definition
	// syntactically pairs one (x := e, x = e, x op= e — for compound
	// assignments the value is x_old op Rhs, discriminated by the Def
	// statement's token); nil for tuple assignments from calls, range
	// bindings, zero-value declarations, entry values and φs.
	Rhs ast.Expr
	// Phi is non-nil when this value merges versions at a join block.
	Phi *SSAPhi
	// Block is the index of the defining block (the entry block for
	// parameters).
	Block int
}

// SSAPhi is a φ-function: the value of its variable at a join block,
// selecting one argument per incoming edge.
type SSAPhi struct {
	Val *SSAValue
	// Args[i] is the value flowing in along the edge from Preds[i] of the
	// block; nil when that predecessor is unreachable (never executed, so
	// the edge cannot actually deliver a value).
	Args []*SSAValue
}

// SSA is the pruned SSA form of one function body.
type SSA struct {
	CFG *CFG
	// Vars lists the tracked variables (parameters first, then locals in
	// first-definition order). Package-level state is not tracked.
	Vars []*types.Var
	// Entry maps each tracked variable to its Version-0 value.
	Entry map[*types.Var]*SSAValue
	// Phis[b] lists the φ-functions placed at block b, ordered by variable
	// position in Vars.
	Phis [][]*SSAPhi
	// UseVal resolves an identifier use of a tracked variable to the SSA
	// value it reads. Identifiers inside function literals, identifiers of
	// untracked variables, and uses in blocks unreachable from the entry
	// are absent.
	UseVal map[*ast.Ident]*SSAValue
	// Defs lists the values created by each defining node, in LHS order.
	Defs map[ast.Node][]*SSAValue
	// IDom[b] is the immediate dominator of block b (-1 for the entry
	// block and for blocks unreachable from it).
	IDom []int
	// Frontier[b] lists the dominance frontier of block b, sorted.
	Frontier [][]int

	nextVersion map[*types.Var]int
}

// BuildSSA constructs pruned SSA for a function body whose CFG is cfg.
// params lists the function's parameters, receiver first (they hold
// Version-0 values at entry); info resolves identifiers.
func BuildSSA(cfg *CFG, info *types.Info, params []*types.Var) *SSA {
	s := &SSA{
		CFG:         cfg,
		Entry:       make(map[*types.Var]*SSAValue),
		Phis:        make([][]*SSAPhi, len(cfg.Blocks)),
		UseVal:      make(map[*ast.Ident]*SSAValue),
		Defs:        make(map[ast.Node][]*SSAValue),
		nextVersion: make(map[*types.Var]int),
	}
	s.IDom = immediateDominators(cfg)
	s.Frontier = dominanceFrontiers(cfg, s.IDom)

	// Tracked variables and their definition blocks.
	tracked := make(map[*types.Var]bool)
	defBlocks := make(map[*types.Var]map[int]bool)
	addVar := func(v *types.Var, block int) {
		if v == nil {
			return
		}
		if !tracked[v] {
			tracked[v] = true
			s.Vars = append(s.Vars, v)
			defBlocks[v] = make(map[int]bool)
		}
		if block >= 0 {
			defBlocks[v][block] = true
		}
	}
	for _, p := range params {
		addVar(p, -1)
	}
	reach := cfg.Reachable()
	for _, b := range cfg.Blocks {
		if !reach[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			collectDefs(n, info, func(obj types.Object, _ ast.Node) {
				if v, ok := obj.(*types.Var); ok {
					addVar(v, b.Index)
				}
			})
		}
		if b.Range != nil {
			for _, e := range []ast.Expr{b.Range.Key, b.Range.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if v, ok := defOrUse(info, id).(*types.Var); ok {
						addVar(v, b.Index)
					}
				}
			}
		}
	}

	live := blockLiveIn(cfg, info, tracked, reach)

	// φ placement: iterated dominance frontier of each variable's
	// definition blocks, pruned to blocks where the variable is live-in.
	varPos := make(map[*types.Var]int, len(s.Vars))
	for i, v := range s.Vars {
		varPos[v] = i
	}
	phiAt := make([]map[*types.Var]*SSAPhi, len(cfg.Blocks))
	for _, v := range s.Vars {
		work := make([]int, 0, len(defBlocks[v]))
		inWork := make(map[int]bool)
		for b := range defBlocks[v] {
			work = append(work, b)
			inWork[b] = true
		}
		// The entry block is a definition site for parameters.
		if _, isParam := s.entryDefines(v, params); isParam && !inWork[cfg.Entry.Index] {
			work = append(work, cfg.Entry.Index)
			inWork[cfg.Entry.Index] = true
		}
		sort.Ints(work) // deterministic placement order
		placed := make(map[int]bool)
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			for _, f := range s.Frontier[b] {
				if placed[f] || !reach[f] || !live[f][v] {
					continue
				}
				placed[f] = true
				if phiAt[f] == nil {
					phiAt[f] = make(map[*types.Var]*SSAPhi)
				}
				phi := &SSAPhi{Args: make([]*SSAValue, len(cfg.Blocks[f].Preds))}
				phi.Val = s.newValue(v, nil, nil, f)
				phi.Val.Phi = phi
				phiAt[f][v] = phi
				if !inWork[f] {
					work = append(work, f)
					inWork[f] = true
				}
			}
		}
	}
	for bi, m := range phiAt {
		if m == nil {
			continue
		}
		phis := make([]*SSAPhi, 0, len(m))
		for v := range m {
			phis = append(phis, m[v])
		}
		sort.Slice(phis, func(i, j int) bool { return varPos[phis[i].Val.Var] < varPos[phis[j].Val.Var] })
		s.Phis[bi] = phis
	}

	// Renaming over the dominator tree.
	children := make([][]int, len(cfg.Blocks))
	for b, d := range s.IDom {
		if d >= 0 {
			children[d] = append(children[d], b)
		}
	}
	stacks := make(map[*types.Var][]*SSAValue)
	for _, p := range params {
		v := s.newValue(p, nil, nil, cfg.Entry.Index)
		s.Entry[p] = v
		stacks[p] = append(stacks[p], v)
	}
	rn := &renamer{s: s, info: info, tracked: tracked, stacks: stacks}
	rn.block(cfg.Entry.Index, children)
	return s
}

// entryDefines reports whether v is one of the parameters (which hold a
// definition at the entry block).
func (s *SSA) entryDefines(v *types.Var, params []*types.Var) (int, bool) {
	for i, p := range params {
		if p == v {
			return i, true
		}
	}
	return 0, false
}

func (s *SSA) newValue(v *types.Var, def ast.Node, rhs ast.Expr, block int) *SSAValue {
	val := &SSAValue{Var: v, Version: s.nextVersion[v], Def: def, Rhs: rhs, Block: block}
	s.nextVersion[v]++
	return val
}

// ConcreteValues expands a value through φ-functions to the set of non-φ
// values it may hold, cycle-safe (a loop φ contributes its non-φ inputs).
func (v *SSAValue) ConcreteValues() []*SSAValue {
	seen := make(map[*SSAValue]bool)
	var out []*SSAValue
	var walk func(*SSAValue)
	walk = func(x *SSAValue) {
		if x == nil || seen[x] {
			return
		}
		seen[x] = true
		if x.Phi == nil {
			out = append(out, x)
			return
		}
		for _, a := range x.Phi.Args {
			walk(a)
		}
	}
	walk(v)
	return out
}

// renamer carries the version stacks of the dominator-tree walk.
type renamer struct {
	s       *SSA
	info    *types.Info
	tracked map[*types.Var]bool
	stacks  map[*types.Var][]*SSAValue
}

func (r *renamer) top(v *types.Var) *SSAValue {
	st := r.stacks[v]
	if len(st) == 0 {
		// A use on a path with no prior definition (a local read before
		// any write reaches it, possible in dead-ish code): materialise a
		// Version-0 zero value so every use resolves to something.
		val := r.s.newValue(v, nil, nil, r.s.CFG.Entry.Index)
		if val.Version == 0 {
			r.s.Entry[v] = val
		}
		r.stacks[v] = append(r.stacks[v], val)
		return val
	}
	return st[len(st)-1]
}

func (r *renamer) push(v *types.Var, val *SSAValue) {
	r.stacks[v] = append(r.stacks[v], val)
}

// uses resolves every identifier use of a tracked variable within expr,
// skipping function literals and the identifiers in skip (definition
// targets of the same node).
func (r *renamer) uses(n ast.Node, skip map[*ast.Ident]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		obj := r.info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || !r.tracked[v] {
			return true
		}
		r.s.UseVal[id] = r.top(v)
		return true
	})
}

// defTargets returns the plain-identifier definition targets of node, in
// LHS order, with the set form for the use walk to skip.
func defTargets(n ast.Node, info *types.Info) ([]*ast.Ident, map[*ast.Ident]bool) {
	var ids []*ast.Ident
	add := func(e ast.Expr) {
		if id, ok := unparen(e).(*ast.Ident); ok && id.Name != "_" {
			ids = append(ids, id)
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			add(lhs)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						add(name)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		add(s.X)
	}
	set := make(map[*ast.Ident]bool, len(ids))
	// Compound assignments (x += e) and IncDec read the target too; only
	// skip the definition ident for := and = where the LHS is write-only.
	switch s := n.(type) {
	case *ast.AssignStmt:
		if s.Tok.String() == ":=" || s.Tok.String() == "=" {
			for _, id := range ids {
				set[id] = true
			}
		}
	case *ast.DeclStmt:
		for _, id := range ids {
			set[id] = true
		}
	}
	return ids, set
}

// pairedRhs returns the expression assigned to target index i of an
// assignment with matched sides, or nil (tuple call, zero-value decl).
func pairedRhs(n ast.Node, i int) ast.Expr {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) && i < len(s.Rhs) {
			return s.Rhs[i]
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			idx := 0
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for j := range vs.Names {
					if idx == i {
						if len(vs.Values) == len(vs.Names) {
							return vs.Values[j]
						}
						return nil
					}
					idx++
				}
			}
		}
	}
	return nil
}

// block renames one dominator-tree node: φ defs, node-by-node uses and
// defs, φ-argument fill-in for successors, then children, then unwind.
func (r *renamer) block(bi int, children [][]int) {
	var pushed []*types.Var
	for _, phi := range r.s.Phis[bi] {
		r.push(phi.Val.Var, phi.Val)
		pushed = append(pushed, phi.Val.Var)
	}
	b := r.s.CFG.Blocks[bi]
	for _, n := range b.Nodes {
		targets, skip := defTargets(n, r.info)
		r.uses(n, skip)
		for i, id := range targets {
			obj := defOrUse(r.info, id)
			v, ok := obj.(*types.Var)
			if !ok || !r.tracked[v] {
				continue
			}
			val := r.s.newValue(v, n, pairedRhs(n, i), bi)
			r.s.Defs[n] = append(r.s.Defs[n], val)
			if skip[id] {
				// Write-only target (= or :=): the ident resolves to the new
				// value. Compound targets (x += e, x++) already resolved to
				// the value they read; the new one is reachable via Defs.
				r.s.UseVal[id] = val
			}
			r.push(v, val)
			pushed = append(pushed, v)
		}
	}
	if b.Range != nil {
		for _, e := range []ast.Expr{b.Range.Key, b.Range.Value} {
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v, ok := defOrUse(r.info, id).(*types.Var)
			if !ok || !r.tracked[v] {
				continue
			}
			val := r.s.newValue(v, b.Range, nil, bi)
			r.s.Defs[b.Range] = append(r.s.Defs[b.Range], val)
			r.s.UseVal[id] = val
			r.push(v, val)
			pushed = append(pushed, v)
		}
	}
	for _, succ := range b.Succs {
		for _, phi := range r.s.Phis[succ.Index] {
			for i, p := range succ.Preds {
				if p.Index == bi && phi.Args[i] == nil {
					phi.Args[i] = r.top(phi.Val.Var)
				}
			}
		}
	}
	for _, c := range children[bi] {
		r.block(c, children)
	}
	for _, v := range pushed {
		r.stacks[v] = r.stacks[v][:len(r.stacks[v])-1]
	}
}

// immediateDominators extracts idom from the full dominator sets: the
// immediate dominator of b is its unique strict dominator that every other
// strict dominator dominates.
func immediateDominators(cfg *CFG) []int {
	dom := cfg.Dominators()
	reach := cfg.Reachable()
	idom := make([]int, len(cfg.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	for _, b := range cfg.Blocks {
		if !reach[b.Index] || b == cfg.Entry {
			continue
		}
		var strict []int
		for a := range dom[b.Index] {
			if dom[b.Index][a] && a != b.Index && reach[a] {
				strict = append(strict, a)
			}
		}
		for _, c := range strict {
			isIdom := true
			for _, d := range strict {
				if d != c && !dom[c][d] {
					isIdom = false
					break
				}
			}
			if isIdom {
				idom[b.Index] = c
				break
			}
		}
	}
	return idom
}

// dominanceFrontiers computes DF(b) for every block with the standard
// join-point walk: for each block with two or more predecessors, each
// predecessor's idom chain up to (exclusive) the block's own idom gains
// the block in its frontier.
func dominanceFrontiers(cfg *CFG, idom []int) [][]int {
	reach := cfg.Reachable()
	df := make([]map[int]bool, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		if !reach[b.Index] || len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if !reach[p.Index] {
				continue
			}
			runner := p.Index
			for runner != -1 && runner != idom[b.Index] {
				if df[runner] == nil {
					df[runner] = make(map[int]bool)
				}
				df[runner][b.Index] = true
				runner = idom[runner]
			}
		}
	}
	out := make([][]int, len(cfg.Blocks))
	for i, m := range df {
		for b := range m {
			out[i] = append(out[i], b)
		}
		sort.Ints(out[i])
	}
	return out
}

// blockLiveIn solves per-block liveness (backward, union join) for the
// tracked variables: live[b][v] means some path from the entry of b reads
// v before writing it. φ pruning keeps only join blocks where the merged
// variable is actually live.
func blockLiveIn(cfg *CFG, info *types.Info, tracked map[*types.Var]bool, reach []bool) []map[*types.Var]bool {
	n := len(cfg.Blocks)
	use := make([]map[*types.Var]bool, n)
	def := make([]map[*types.Var]bool, n)
	for i := range use {
		use[i] = make(map[*types.Var]bool)
		def[i] = make(map[*types.Var]bool)
	}
	for _, b := range cfg.Blocks {
		record := func(n ast.Node) {
			targets, skip := defTargets(n, info)
			// Upward-exposed uses first, then defs.
			ast.Inspect(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					// A closure may run at any later point; treat captured
					// reads as uses so their variables stay live (and keep
					// their φs) conservatively.
					ast.Inspect(x, func(y ast.Node) bool {
						if id, ok := y.(*ast.Ident); ok {
							if v, ok := info.Uses[id].(*types.Var); ok && tracked[v] && !def[b.Index][v] {
								use[b.Index][v] = true
							}
						}
						return true
					})
					return false
				}
				id, ok := x.(*ast.Ident)
				if !ok || skip[id] {
					return true
				}
				if v, ok := info.Uses[id].(*types.Var); ok && tracked[v] && !def[b.Index][v] {
					use[b.Index][v] = true
				}
				return true
			})
			for _, id := range targets {
				if v, ok := defOrUse(info, id).(*types.Var); ok && tracked[v] {
					def[b.Index][v] = true
				}
			}
		}
		for _, n := range b.Nodes {
			record(n)
		}
		if b.Range != nil {
			for _, e := range []ast.Expr{b.Range.Key, b.Range.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if v, ok := defOrUse(info, id).(*types.Var); ok && tracked[v] {
						def[b.Index][v] = true
					}
				}
			}
		}
	}
	in := make([]map[*types.Var]bool, n)
	for i := range in {
		in[i] = make(map[*types.Var]bool)
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			if !reach[i] {
				continue
			}
			b := cfg.Blocks[i]
			for _, s := range b.Succs {
				for v := range in[s.Index] {
					if !def[i][v] && !in[i][v] {
						in[i][v] = true
						changed = true
					}
				}
			}
			for v := range use[i] {
				if !in[i][v] {
					in[i][v] = true
					changed = true
				}
			}
		}
	}
	return in
}
