package sparse

import (
	"math"

	"github.com/performability/csrl/internal/parallel"
)

// Block is a dense n×g column block: g column vectors of length n stored
// row-major in one slab, so data[i*g+j] is element i of column j. The block
// kernels below advance all g columns through one pass over a CSR matrix —
// one read of the matrix's val/col arrays per row instead of g — which is
// the memory-traffic win the multi-vector callers (Sericola goal columns,
// transient weighting vectors, rectangle-until corners) are after.
//
// Blocks are pool-aware: NewBlock draws the slab from a VecPool (nil-safe)
// and Release returns it. DropCol narrows the block in place; Release still
// returns the original slab, so pool keying by exact length stays intact.
type Block struct {
	n, g int
	data []float64 // active n×g view, row-major
	slab []float64 // original allocation, returned by Release
}

// NewBlock returns a zeroed n×g block whose slab comes from pool (a nil
// pool allocates directly).
func NewBlock(n, g int, pool *VecPool) *Block {
	if n < 0 || g < 0 {
		//lint:ignore bannedcall negative dimensions are a programmer error, same contract as the CSR kernels
		panic("sparse: NewBlock negative dimension")
	}
	slab := pool.Get(n * g)
	return &Block{n: n, g: g, data: slab, slab: slab}
}

// Dim returns the number of rows n.
func (b *Block) Dim() int { return b.n }

// Cols returns the current number of columns g (DropCol shrinks it).
func (b *Block) Cols() int { return b.g }

// Data returns the active row-major slab of length n·g. The slice aliases
// the block; it is invalidated by DropCol.
func (b *Block) Data() []float64 {
	//lint:ignore aliasret aliasing is the documented contract: the slab is the kernels' in/out buffer and a copy per sweep level would defeat the single-slab design
	return b.data
}

// Row returns row i as a slice of length g aliasing the block.
func (b *Block) Row(i int) []float64 {
	//lint:ignore aliasret aliasing is the documented contract: per-row views feed the hot accumulation loops and must not allocate
	return b.data[i*b.g : (i+1)*b.g]
}

// At returns element i of column j.
func (b *Block) At(i, j int) float64 { return b.data[i*b.g+j] }

// Set assigns element i of column j.
func (b *Block) Set(i, j int, v float64) { b.data[i*b.g+j] = v }

// SetCol copies src (length n) into column j.
func (b *Block) SetCol(j int, src []float64) {
	if len(src) != b.n {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: SetCol dimension mismatch")
	}
	for i, v := range src {
		b.data[i*b.g+j] = v
	}
}

// Col copies column j into dst (length n).
func (b *Block) Col(dst []float64, j int) {
	if len(dst) != b.n {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: Col dimension mismatch")
	}
	for i := range dst {
		dst[i] = b.data[i*b.g+j]
	}
}

// ColAXPY accumulates dst += alpha·column j, visiting rows in ascending
// order — the same element order as AXPY on a standalone vector, so the
// block path stays bitwise equal to the per-vector path.
func (b *Block) ColAXPY(alpha float64, j int, dst []float64) {
	if len(dst) != b.n {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: ColAXPY dimension mismatch")
	}
	for i := range dst {
		dst[i] += alpha * b.data[i*b.g+j]
	}
}

// AXPYIntoCol accumulates column j += alpha·src, the in-block mirror of
// ColAXPY, again in ascending row order.
func (b *Block) AXPYIntoCol(alpha float64, j int, src []float64) {
	if len(src) != b.n {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: AXPYIntoCol dimension mismatch")
	}
	for i, v := range src {
		b.data[i*b.g+j] += alpha * v
	}
}

// ColMaxDiff returns max_i |b[i,j] − o[i,j]|, evaluated in the same
// ascending-row order as MaxDiff on standalone vectors so steady-state
// detection decides identically on the block and vector paths.
func (b *Block) ColMaxDiff(o *Block, j int) float64 {
	var mx float64
	for i := 0; i < b.n; i++ {
		if d := math.Abs(b.data[i*b.g+j] - o.data[i*b.g+j]); d > mx {
			mx = d
		}
	}
	return mx
}

// DropCol removes column j in place by left-packing the remaining columns,
// shrinking the block to n×(g−1). The pack walks rows in ascending order,
// so every write lands at or before its read position and no live element
// is clobbered. Slices previously returned by Data or Row are invalidated.
func (b *Block) DropCol(j int) {
	if j < 0 || j >= b.g {
		//lint:ignore bannedcall out-of-range column is a programmer error, same contract as the CSR kernels
		panic("sparse: DropCol column out of range")
	}
	g := b.g
	w := 0
	for i := 0; i < b.n; i++ {
		row := b.data[i*g : (i+1)*g]
		for jj, v := range row {
			if jj == j {
				continue
			}
			b.data[w] = v
			w++
		}
	}
	b.g = g - 1
	b.data = b.data[:b.n*b.g]
}

// Release returns the block's original slab to pool (nil-safe) and clears
// the block. The caller must not use the block afterwards.
func (b *Block) Release(pool *VecPool) {
	pool.Put(b.slab)
	b.data, b.slab, b.n, b.g = nil, nil, 0, 0
}

// MulBlockRows computes rows [lo, hi) of dst = M·src for n×g row-major
// blocks given as raw slabs of length n·g. It is the shared row-range core
// of MulBlock and MulBlockPar, exported so callers that manage their own
// slabs (the Sericola level recursion) can reuse it inside their own
// parallel regions. Each dst row is zeroed and then accumulated in stored-
// entry order, which is the bitwise-identical memory-form of MulVec's
// register accumulation: IEEE-754 rounds each += to a double either way,
// so column j of the result equals MulVec applied to column j of src.
// dst and src must not alias.
func (m *CSR) MulBlockRows(dst, src []float64, g, lo, hi int) {
	if g < 1 || len(dst) != m.n*g || len(src) != m.n*g || lo < 0 || hi < lo || hi > m.n {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: MulBlockRows dimension mismatch")
	}
	if g == 1 {
		// Register specialisation: identical arithmetic, fewer stores.
		for i := lo; i < hi; i++ {
			var s float64
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				s += m.val[k] * src[m.col[k]]
			}
			dst[i] = s
		}
		return
	}
	for i := lo; i < hi; i++ {
		drow := dst[i*g : (i+1)*g]
		for j := range drow {
			drow[j] = 0
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			v := m.val[k]
			srow := src[m.col[k]*g : (m.col[k]+1)*g]
			for j, sv := range srow {
				drow[j] += v * sv
			}
		}
	}
}

// MulBlock computes dst = M·src, advancing all g columns through one pass
// over the matrix. Column j of dst is bitwise equal to MulVec applied to
// column j of src. dst and src must not alias and must agree on shape.
func (m *CSR) MulBlock(dst, src *Block) {
	if dst.n != m.n || src.n != m.n || dst.g != src.g {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: MulBlock dimension mismatch")
	}
	m.MulBlockRows(dst.data, src.data, src.g, 0, m.n)
}

// MulBlockPar computes dst = M·src like MulBlock, partitioned across
// workers with the same nnz-balanced rowCuts as MulVecPar. Each worker
// owns a contiguous row range and evaluates it exactly as the sequential
// kernel does, so the result is bitwise identical to MulBlock — and hence
// to g separate MulVec calls — for every workers value. The fan-out
// threshold scales with g: one block pass does g vectors' worth of work.
func (m *CSR) MulBlockPar(dst, src *Block, workers int) {
	if dst.n != m.n || src.n != m.n || dst.g != src.g {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: MulBlockPar dimension mismatch")
	}
	w := resolveWorkers(workers, m.NNZ()*src.g, m.n)
	if w == 1 {
		m.MulBlockRows(dst.data, src.data, src.g, 0, m.n)
		return
	}
	g := src.g
	cuts := m.rowCuts(w)
	tasks := make([]func(), 0, len(cuts)-1)
	for c := 0; c+1 < len(cuts); c++ {
		lo, hi := cuts[c], cuts[c+1]
		tasks = append(tasks, func() {
			m.MulBlockRows(dst.data, src.data, g, lo, hi)
		})
	}
	parallel.Do(tasks...)
}

// MulBlockT computes dst = Mᵀ·src for n×g blocks: column j of dst is
// bitwise equal to MulVecT applied to column j of src. The per-element
// zero skip mirrors MulVecT's whole-row skip, so each column performs
// exactly the arithmetic the vector kernel would (including the ±0 edge
// cases the skip sidesteps). dst and src must not alias.
func (m *CSR) MulBlockT(dst, src *Block) {
	if dst.n != m.n || src.n != m.n || dst.g != src.g {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: MulBlockT dimension mismatch")
	}
	g := src.g
	mulBlockTRange(m, dst.data, src.data, g, 0, m.n)
}

// mulBlockTRange scatters rows [lo, hi) of src through Mᵀ into dst,
// zeroing dst first. Shared between MulBlockT (full range) and the
// per-worker partitions of MulBlockTPar.
func mulBlockTRange(m *CSR, dst, src []float64, g, lo, hi int) {
	for i := range dst {
		dst[i] = 0
	}
	for i := lo; i < hi; i++ {
		srow := src[i*g : (i+1)*g]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			v := m.val[k]
			drow := dst[m.col[k]*g : (m.col[k]+1)*g]
			for j, sv := range srow {
				if sv == 0 {
					continue
				}
				drow[j] += v * sv
			}
		}
	}
}

// MulBlockTPar computes dst = Mᵀ·src like MulBlockT, partitioned across
// workers exactly as MulVecTPar: each worker scatters its nnz-balanced row
// range into a private n×g buffer, and the buffers are reduced into dst in
// worker order. Column j of the result is bitwise equal to MulVecTPar on
// column j of src at the same workers value (and, like MulVecTPar, agrees
// with the sequential kernel up to roundoff from the worker-order
// reduction). Because the fan-out decision changes the reduction order,
// the grain policy deliberately matches MulVecTPar's — nnz alone, not
// nnz·g — so the two kernels always agree on whether to partition.
//
//numerics:order-invariant fanout=rowCuts the gather folds the same rowCuts partition as MulVecTPar in worker order, keeping the two kernels bitwise equal column by column at a fixed workers value
func (m *CSR) MulBlockTPar(dst, src *Block, workers int) {
	if dst.n != m.n || src.n != m.n || dst.g != src.g {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: MulBlockTPar dimension mismatch")
	}
	w := resolveWorkers(workers, m.NNZ(), m.n)
	if w == 1 {
		m.MulBlockT(dst, src)
		return
	}
	g := src.g
	cuts := m.rowCuts(w)
	nParts := len(cuts) - 1
	bufs := make([][]float64, nParts)
	scatter := make([]func(), 0, nParts)
	for c := 0; c < nParts; c++ {
		c := c
		lo, hi := cuts[c], cuts[c+1]
		scatter = append(scatter, func() {
			buf := scatters.get(m.n * g)
			mulBlockTRange(m, buf, src.data, g, lo, hi)
			bufs[c] = buf
		})
	}
	parallel.Do(scatter...)
	parallel.For(w, m.n*g, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			var s float64
			for _, buf := range bufs {
				s += buf[e]
			}
			dst.data[e] = s
		}
	})
	for _, buf := range bufs {
		scatters.put(buf)
	}
}

// resolveWorkers applies the shared fan-out policy of the parallel
// kernels: work is the stored-entry count scaled by the number of columns
// advanced per pass, and anything under parGrain (or a degenerate matrix)
// runs sequentially.
func resolveWorkers(workers, work, n int) int {
	w := parallel.Resolve(workers)
	if w == 1 || work < parGrain || n < 2 {
		return 1
	}
	return w
}
