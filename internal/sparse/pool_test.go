package sparse

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/parallel"
)

func TestVecPoolRecyclesAndZeroes(t *testing.T) {
	p := NewVecPool()
	v := p.Get(8)
	if len(v) != 8 {
		t.Fatalf("Get(8) returned length %d", len(v))
	}
	for i := range v {
		v[i] = float64(i) + 1
	}
	first := &v[0]
	p.Put(v)
	if got := p.Len(8); got != 1 {
		t.Fatalf("Len(8) = %d after one Put", got)
	}
	w := p.Get(8)
	if &w[0] != first {
		t.Error("Get did not recycle the Put buffer")
	}
	for i, x := range w {
		if math.Float64bits(x) != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, x)
		}
	}
	if got := p.Len(8); got != 0 {
		t.Fatalf("Len(8) = %d after Get drained the pool", got)
	}
}

func TestVecPoolKeysBySize(t *testing.T) {
	p := NewVecPool()
	p.Put(make([]float64, 4))
	p.Put(make([]float64, 9))
	if p.Len(4) != 1 || p.Len(9) != 1 || p.Len(5) != 0 {
		t.Fatalf("size keying broken: Len(4)=%d Len(9)=%d Len(5)=%d", p.Len(4), p.Len(9), p.Len(5))
	}
	if got := len(p.Get(5)); got != 5 {
		t.Fatalf("Get(5) with no free buffer returned length %d", got)
	}
}

func TestVecPoolNilReceiverAndDegenerateInputs(t *testing.T) {
	var p *VecPool
	v := p.Get(3)
	if len(v) != 3 {
		t.Fatalf("nil pool Get(3) returned length %d", len(v))
	}
	p.Put(v) // must not panic
	if p.Len(3) != 0 {
		t.Fatal("nil pool reports stored buffers")
	}
	q := NewVecPool()
	q.Put(nil) // no-op
	q.Put([]float64{})
	if q.Len(0) != 0 {
		t.Fatal("empty buffers must not be pooled")
	}
}

func TestVecPoolCapBoundsRetention(t *testing.T) {
	p := NewVecPool()
	for i := 0; i < poolCapPerSize+10; i++ {
		p.Put(make([]float64, 2))
	}
	if got := p.Len(2); got != poolCapPerSize {
		t.Fatalf("Len(2) = %d, want cap %d", got, poolCapPerSize)
	}
}

// TestVecPoolConcurrent hammers one pool from concurrent tasks; it exists
// for the -race leg of CI. Each task checks buffers out, writes a unique
// stamp, verifies the stamp before check-in — a buffer handed to two owners
// at once fails the verification even without the race detector.
func TestVecPoolConcurrent(t *testing.T) {
	p := NewVecPool()
	const tasks = 8
	errs := make([]error, tasks)
	work := make([]func(), tasks)
	for i := 0; i < tasks; i++ {
		i := i
		work[i] = func() {
			for rep := 0; rep < 200; rep++ {
				v := p.Get(16)
				stamp := float64(i*1000 + rep)
				for j := range v {
					v[j] = stamp
				}
				for j := range v {
					if math.Float64bits(v[j]) != math.Float64bits(stamp) {
						errs[i] = errDoubleOwner(i, rep, j)
						return
					}
				}
				p.Put(v)
			}
		}
	}
	parallel.Do(work...)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

type doubleOwnerErr struct{ task, rep, idx int }

func errDoubleOwner(task, rep, idx int) error { return doubleOwnerErr{task, rep, idx} }

func (e doubleOwnerErr) Error() string {
	return "buffer owned by two tasks at once"
}
