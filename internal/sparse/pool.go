package sparse

import "sync"

// poolCapPerSize bounds how many free buffers of one length the pool
// retains; further Puts are dropped for the garbage collector. The working
// set of a checker run is a handful of vectors plus the Sericola matrix
// banks, all well below this cap — the cap only guards against a caller
// that Puts an unbounded stream of buffers.
const poolCapPerSize = 256

// VecPool recycles float64 scratch buffers across the numerical kernels.
// Buffers are keyed by exact length, so one pool serves mixed sizes (state
// vectors, n×g Sericola bank matrices, n·(R+1) discretisation grids) at
// once. The zero value is not usable; construct with NewVecPool. All
// methods are safe for concurrent use and nil-receiver-safe: a nil *VecPool
// degrades to plain allocation, so every call site can thread an optional
// pool unconditionally.
//
// Ownership rules (see DESIGN.md "Work and memory complexity"):
//   - whoever calls Get owns the buffer and is responsible for Put — or for
//     passing ownership onward explicitly (the uniformisation sweeps return
//     their pool-born accumulator to the caller);
//   - a buffer must never be Put while any other goroutine can still reach
//     it, and never twice;
//   - check-out and check-in must happen on the same side of a parallel
//     region boundary (a worker that Gets inside its chunk Puts inside the
//     chunk; the region owner Gets/Puts outside it).
type VecPool struct {
	mu         sync.Mutex
	free       map[int][][]float64 // guarded by mu
	gets       int64               // guarded by mu
	reuses     int64               // guarded by mu
	allocBytes int64               // guarded by mu
}

// PoolStats is a snapshot of a pool's cumulative traffic, the work
// dimension the observability layer reports: how many buffers were handed
// out, how many of those were recycled rather than freshly allocated, and
// how many bytes the pool had to allocate in total.
type PoolStats struct {
	// Gets counts every Get call.
	Gets int64 `json:"gets"`
	// Reuses counts Gets satisfied from the free list.
	Reuses int64 `json:"reuses"`
	// AllocBytes is the total size of freshly allocated buffers (8 bytes
	// per float64), i.e. the slab traffic the reuse saved everyone else.
	AllocBytes int64 `json:"alloc_bytes"`
}

// NewVecPool returns an empty pool.
func NewVecPool() *VecPool {
	return &VecPool{free: make(map[int][][]float64)}
}

// Get returns a zeroed buffer of length n, recycling a previously Put one
// when available. A nil receiver allocates directly.
func (p *VecPool) Get(n int) []float64 {
	if p == nil {
		return make([]float64, n)
	}
	p.mu.Lock()
	p.gets++
	list := p.free[n]
	if len(list) == 0 {
		p.allocBytes += 8 * int64(n)
		p.mu.Unlock()
		return make([]float64, n)
	}
	p.reuses++
	v := list[len(list)-1]
	list[len(list)-1] = nil
	p.free[n] = list[:len(list)-1]
	p.mu.Unlock()
	for i := range v {
		v[i] = 0
	}
	return v
}

// Put returns a buffer to the pool for reuse by a later Get of the same
// length. The caller must not retain any reference to v. Nil receivers and
// nil or empty buffers are no-ops.
func (p *VecPool) Put(v []float64) {
	if p == nil || len(v) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.free[len(v)]) < poolCapPerSize {
		p.free[len(v)] = append(p.free[len(v)], v)
	}
	p.mu.Unlock()
}

// Stats returns a snapshot of the pool's cumulative traffic. A nil pool
// reports zeroes.
func (p *VecPool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Gets: p.gets, Reuses: p.reuses, AllocBytes: p.allocBytes}
}

// Len reports how many free buffers of length n the pool currently holds
// (diagnostics and tests).
func (p *VecPool) Len(n int) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free[n])
}
