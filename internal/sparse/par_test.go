package sparse

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator so tests need no seeding policy.
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(*r>>11) / float64(1<<53)
}

func randomCSR(t *testing.T, n int, perRow int, seed uint64) *CSR {
	t.Helper()
	r := lcg(seed)
	var ts []Triplet
	for i := 0; i < n; i++ {
		// Skewed rows: row 0 is dense to stress nnz-balanced cuts.
		k := perRow
		if i == 0 {
			k = n / 2
		}
		for j := 0; j < k; j++ {
			col := int(r.next() * float64(n))
			if col >= n {
				col = n - 1
			}
			ts = append(ts, Triplet{Row: i, Col: col, Val: r.next()*2 - 1})
		}
	}
	m, err := NewFromTriplets(n, ts)
	if err != nil {
		t.Fatalf("NewFromTriplets: %v", err)
	}
	return m
}

func randomVec(n int, seed uint64) []float64 {
	r := lcg(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.next()*2 - 1
	}
	return v
}

func TestMulVecParMatchesSequentialBitwise(t *testing.T) {
	for _, n := range []int{1, 3, 50, 400} {
		m := randomCSR(t, n, 8, uint64(n)+1)
		x := randomVec(n, 99)
		want := make([]float64, n)
		m.MulVec(want, x)
		for _, workers := range []int{0, 1, 2, 3, 7, 16, 100} {
			got := make([]float64, n)
			m.MulVecPar(got, x, workers)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: dst[%d] = %g, sequential %g (must be bitwise equal)",
						n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMulVecTParMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 3, 50, 400} {
		m := randomCSR(t, n, 8, uint64(n)+7)
		x := randomVec(n, 42)
		want := make([]float64, n)
		m.MulVecT(want, x)
		for _, workers := range []int{0, 1, 2, 3, 7, 16, 100} {
			got := make([]float64, n)
			m.MulVecTPar(got, x, workers)
			for i := range got {
				if d := math.Abs(got[i] - want[i]); d > 1e-13*(1+math.Abs(want[i])) {
					t.Fatalf("n=%d workers=%d: dst[%d] = %g, sequential %g (Δ=%g)",
						n, workers, i, got[i], want[i], d)
				}
			}
		}
	}
}

func TestRowCutsPartition(t *testing.T) {
	m := randomCSR(t, 200, 10, 5)
	for _, w := range []int{1, 2, 3, 7, 50, 200, 1000} {
		cuts := m.rowCuts(w)
		if cuts[0] != 0 || cuts[len(cuts)-1] != m.Dim() {
			t.Fatalf("w=%d: cuts %v do not span [0,%d]", w, cuts, m.Dim())
		}
		for c := 1; c < len(cuts); c++ {
			if cuts[c] <= cuts[c-1] {
				t.Fatalf("w=%d: cuts %v not strictly increasing", w, cuts)
			}
		}
	}
}

func TestParKernelsSmallMatrixFallback(t *testing.T) {
	// Below the grain the parallel kernels must still be correct (they
	// delegate to the sequential path).
	m := randomCSR(t, 5, 2, 11)
	x := randomVec(5, 3)
	want := make([]float64, 5)
	got := make([]float64, 5)
	m.MulVec(want, x)
	m.MulVecPar(got, x, 8)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("small MulVecPar mismatch at %d", i)
		}
	}
	m.MulVecT(want, x)
	m.MulVecTPar(got, x, 8)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("small MulVecTPar mismatch at %d", i)
		}
	}
}

func BenchmarkMulVec(b *testing.B) {
	m := benchCSR(b, 2000, 20)
	x := randomVec(2000, 1)
	dst := make([]float64, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkMulVecPar(b *testing.B) {
	m := benchCSR(b, 2000, 20)
	x := randomVec(2000, 1)
	dst := make([]float64, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecPar(dst, x, 0)
	}
}

func BenchmarkMulVecT(b *testing.B) {
	m := benchCSR(b, 2000, 20)
	x := randomVec(2000, 1)
	dst := make([]float64, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecT(dst, x)
	}
}

func BenchmarkMulVecTPar(b *testing.B) {
	m := benchCSR(b, 2000, 20)
	x := randomVec(2000, 1)
	dst := make([]float64, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTPar(dst, x, 0)
	}
}

func benchCSR(b *testing.B, n, perRow int) *CSR {
	b.Helper()
	r := lcg(uint64(n))
	var ts []Triplet
	for i := 0; i < n; i++ {
		for j := 0; j < perRow; j++ {
			col := int(r.next() * float64(n))
			if col >= n {
				col = n - 1
			}
			ts = append(ts, Triplet{Row: i, Col: col, Val: r.next()})
		}
	}
	m, err := NewFromTriplets(n, ts)
	if err != nil {
		b.Fatalf("NewFromTriplets: %v", err)
	}
	return m
}
