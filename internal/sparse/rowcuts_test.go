package sparse

import "testing"

// checkRowCuts asserts the rowCuts contract on one matrix/worker pair:
// boundaries are strictly monotone, cover [0, n], and balance the stored
// entries to within one row — no chunk may exceed ⌈NNZ/w⌉ by more than the
// fattest single row, since rows are indivisible.
func checkRowCuts(t *testing.T, m *CSR, w int) {
	t.Helper()
	cuts := m.rowCuts(w)
	n, nnz := m.Dim(), m.NNZ()
	if cuts[0] != 0 || cuts[len(cuts)-1] != n {
		t.Fatalf("w=%d: cuts %v do not span [0,%d]", w, cuts, n)
	}
	if len(cuts)-1 > w {
		t.Fatalf("w=%d: %d chunks exceed the worker count", w, len(cuts)-1)
	}
	maxRow := 0
	for i := 0; i < n; i++ {
		if r := m.rowPtr[i+1] - m.rowPtr[i]; r > maxRow {
			maxRow = r
		}
	}
	// rowCuts clamps the worker count to n, so balance is judged against
	// the effective chunk count.
	we := w
	if we > n {
		we = n
	}
	ideal := (nnz + we - 1) / we
	total := 0
	for c := 1; c < len(cuts); c++ {
		if cuts[c] <= cuts[c-1] {
			t.Fatalf("w=%d: cuts %v not strictly increasing at %d", w, cuts, c)
		}
		chunk := m.rowPtr[cuts[c]] - m.rowPtr[cuts[c-1]]
		total += chunk
		if chunk > ideal+maxRow {
			t.Fatalf("w=%d: chunk [%d,%d) holds %d entries, ideal %d + fattest row %d",
				w, cuts[c-1], cuts[c], chunk, ideal, maxRow)
		}
	}
	if total != nnz {
		t.Fatalf("w=%d: chunks cover %d entries, matrix has %d", w, total, nnz)
	}
}

func TestRowCutsFatRow(t *testing.T) {
	// One row holds far more than NNZ/w entries; it must land alone in a
	// chunk without breaking coverage or monotonicity.
	const n = 40
	var ts []Triplet
	for j := 0; j < n; j++ {
		ts = append(ts, Triplet{Row: 17, Col: j, Val: 1})
	}
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{Row: i, Col: i, Val: 1})
	}
	m := mustCSR(t, n, ts)
	for _, w := range []int{1, 2, 3, 4, 8, 40, 100} {
		checkRowCuts(t, m, w)
	}
}

func TestRowCutsEmptyEdgeRows(t *testing.T) {
	// Leading and trailing all-empty rows exercise the SearchInts clamp:
	// rowPtr has long runs of equal values at both ends.
	const n = 30
	var ts []Triplet
	for i := 10; i < 20; i++ {
		for j := 0; j < 5; j++ {
			ts = append(ts, Triplet{Row: i, Col: (i + j) % n, Val: 1})
		}
	}
	m := mustCSR(t, n, ts)
	for _, w := range []int{1, 2, 3, 7, 30, 64} {
		checkRowCuts(t, m, w)
	}
}

func TestRowCutsMoreWorkersThanRows(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		var ts []Triplet
		for i := 0; i < n; i++ {
			ts = append(ts, Triplet{Row: i, Col: i, Val: 1})
		}
		m := mustCSR(t, n, ts)
		for _, w := range []int{n + 1, 2 * n, 100} {
			checkRowCuts(t, m, w)
		}
	}
}

func TestRowCutsEmptyMatrix(t *testing.T) {
	// A matrix with no stored entries at all must still yield the trivial
	// cover [0, n].
	m := mustCSR(t, 8, nil)
	for _, w := range []int{1, 2, 8, 20} {
		cuts := m.rowCuts(w)
		if cuts[0] != 0 || cuts[len(cuts)-1] != 8 {
			t.Fatalf("w=%d: cuts %v do not span [0,8]", w, cuts)
		}
		for c := 1; c < len(cuts); c++ {
			if cuts[c] <= cuts[c-1] {
				t.Fatalf("w=%d: cuts %v not strictly increasing", w, cuts)
			}
		}
	}
}

func TestRowCutsRandomProperty(t *testing.T) {
	// Random CSRs across a seed grid; every matrix includes the dense row 0
	// skew from randomCSR plus whatever empty rows the sampler produces.
	for seed := uint64(1); seed <= 25; seed++ {
		n := 1 + int(seed*7)%97
		perRow := 1 + int(seed)%9
		m := randomCSR(t, n, perRow, seed)
		for _, w := range []int{1, 2, 3, 4, 8, 16, n, n + 3, 4 * n} {
			checkRowCuts(t, m, w)
		}
	}
}
