package sparse

import "math"

// Vector helpers shared by the numerical procedures. All operate on plain
// []float64 so callers can reuse buffers.

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// AXPY computes y += alpha·x in place.
func AXPY(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// MaxDiff returns max_i |x[i]-y[i]|.
func MaxDiff(x, y []float64) float64 {
	var m float64
	for i, v := range x {
		if d := math.Abs(v - y[i]); d > m {
			m = d
		}
	}
	return m
}

// NormInf returns max_i |x[i]|.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}
