package sparse

import "testing"

func TestScatterCacheBucketsByCapacity(t *testing.T) {
	scatters.reset()
	defer scatters.reset()
	// Simulate a large-model kernel: get and put a big scatter buffer.
	big := scatters.get(100000)
	if cap(big) != 1<<17 {
		t.Fatalf("big buffer capacity %d, want class size %d", cap(big), 1<<17)
	}
	scatters.put(big)
	// A small-model request afterwards must NOT be served the big buffer —
	// that was the leak: sync.Pool handed out whatever fit, so small checks
	// kept O(workers·n_max) memory alive forever.
	small := scatters.get(100)
	if cap(small) != 1<<7 {
		t.Fatalf("small request got capacity %d, want class size %d", cap(small), 1<<7)
	}
	if got := scatters.classLen(17); got != 1 {
		t.Fatalf("big class holds %d buffers, want 1 (untouched by small get)", got)
	}
}

func TestScatterCachePutDropsForeignCapacities(t *testing.T) {
	scatters.reset()
	defer scatters.reset()
	// Non-power-of-two capacity: would under-fill whatever class its
	// rounded size suggests, so it must be dropped.
	scatters.put(make([]float64, 100, 100))
	for cls := 0; cls <= 20; cls++ {
		if got := scatters.classLen(cls); got != 0 {
			t.Fatalf("foreign-capacity buffer filed under class %d", cls)
		}
	}
	// Zero-capacity and nil are no-ops.
	scatters.put(nil)
	scatters.put([]float64{})
}

func TestScatterCacheBoundedPerClass(t *testing.T) {
	scatters.reset()
	defer scatters.reset()
	for i := 0; i < 3*scatterCapPerClass; i++ {
		scatters.put(make([]float64, 64, 64))
	}
	if got := scatters.classLen(6); got != scatterCapPerClass {
		t.Fatalf("class retains %d buffers, want cap %d", got, scatterCapPerClass)
	}
}

func TestScatterCacheReusesWithinClass(t *testing.T) {
	scatters.reset()
	defer scatters.reset()
	buf := scatters.get(1000)
	buf[0] = 42 // mark it
	scatters.put(buf)
	// A same-class request of a different length reuses the slab, resliced.
	again := scatters.get(700)
	if len(again) != 700 || cap(again) != 1<<10 {
		t.Fatalf("reuse: len=%d cap=%d, want len=700 cap=%d", len(again), cap(again), 1<<10)
	}
	if again[0] != 42 {
		t.Fatalf("expected the same slab back within the class")
	}
	if got := scatters.classLen(10); got != 0 {
		t.Fatalf("class still holds %d buffers after get", got)
	}
}
