package sparse

import "fmt"

// Builder accumulates triplets for incremental construction of a CSR matrix.
// The zero value is not usable; create one with NewBuilder.
type Builder struct {
	n  int
	ts []Triplet
}

// NewBuilder returns a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Add records entry (i, j) += v. Out-of-range indices surface as an error
// from Build, so call sites can stay unconditional.
func (b *Builder) Add(i, j int, v float64) {
	b.ts = append(b.ts, Triplet{Row: i, Col: j, Val: v})
}

// Len returns the number of recorded triplets (before duplicate merging).
func (b *Builder) Len() int { return len(b.ts) }

// Build assembles the matrix, merging duplicate entries by summation.
func (b *Builder) Build() (*CSR, error) {
	m, err := NewFromTriplets(b.n, b.ts)
	if err != nil {
		return nil, fmt.Errorf("sparse builder: %w", err)
	}
	return m, nil
}
