package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustCSR(t *testing.T, n int, ts []Triplet) *CSR {
	t.Helper()
	m, err := NewFromTriplets(n, ts)
	if err != nil {
		t.Fatalf("NewFromTriplets: %v", err)
	}
	return m
}

func TestNewFromTriplets(t *testing.T) {
	m := mustCSR(t, 3, []Triplet{
		{Row: 0, Col: 1, Val: 2},
		{Row: 2, Col: 0, Val: 5},
		{Row: 0, Col: 1, Val: 3}, // duplicate: summed
		{Row: 1, Col: 1, Val: -1},
	})
	if got := m.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %v, want 5 (duplicate merge)", got)
	}
	if got := m.At(1, 1); got != -1 {
		t.Errorf("At(1,1) = %v, want -1", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
	if got := m.NNZ(); got != 3 {
		t.Errorf("NNZ = %d, want 3", got)
	}
}

func TestNewFromTripletsRejectsOutOfRange(t *testing.T) {
	if _, err := NewFromTriplets(2, []Triplet{{Row: 2, Col: 0, Val: 1}}); err == nil {
		t.Error("row out of range not rejected")
	}
	if _, err := NewFromTriplets(2, []Triplet{{Row: 0, Col: -1, Val: 1}}); err == nil {
		t.Error("negative column not rejected")
	}
	if _, err := NewFromTriplets(-1, nil); err == nil {
		t.Error("negative dimension not rejected")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := id.At(i, j); got != want {
				t.Errorf("I(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := mustCSR(t, 3, []Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 2, Val: 2},
		{Row: 1, Col: 1, Val: 3},
		{Row: 2, Col: 0, Val: 4},
	})
	x := []float64{1, 2, 3}
	dst := make([]float64, 3)
	m.MulVec(dst, x)
	want := []float64{7, 6, 4}
	if !reflect.DeepEqual(dst, want) {
		t.Errorf("MulVec = %v, want %v", dst, want)
	}
	m.MulVecT(dst, x)
	// Mᵀx = x·M: dst[j] = Σ_i x[i] M[i][j]
	want = []float64{1*1 + 3*4, 2 * 3, 1 * 2}
	if !reflect.DeepEqual(dst, want) {
		t.Errorf("MulVecT = %v, want %v", dst, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		var ts []Triplet
		for k := 0; k < rng.Intn(20); k++ {
			ts = append(ts, Triplet{Row: rng.Intn(n), Col: rng.Intn(n), Val: rng.NormFloat64()})
		}
		m, err := NewFromTriplets(n, ts)
		if err != nil {
			return false
		}
		tt := m.Transpose().Transpose()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.At(i, j) != tt.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		var ts []Triplet
		for k := 0; k < 3*n; k++ {
			ts = append(ts, Triplet{Row: rng.Intn(n), Col: rng.Intn(n), Val: rng.NormFloat64()})
		}
		m, err := NewFromTriplets(n, ts)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a := make([]float64, n)
		b := make([]float64, n)
		m.MulVecT(a, x)
		m.Transpose().MulVec(b, x)
		return MaxDiff(a, b) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMat(t *testing.T) {
	m := mustCSR(t, 2, []Triplet{
		{Row: 0, Col: 1, Val: 2},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
	})
	b := [][]float64{{1, 2}, {3, 4}}
	c := [][]float64{make([]float64, 2), make([]float64, 2)}
	m.MulMat(c, b)
	want := [][]float64{{6, 8}, {4, 6}}
	if !reflect.DeepEqual(c, want) {
		t.Errorf("MulMat = %v, want %v", c, want)
	}
}

func TestScaleAndScaleRows(t *testing.T) {
	m := mustCSR(t, 2, []Triplet{{Row: 0, Col: 1, Val: 2}, {Row: 1, Col: 0, Val: 4}})
	s := m.Scale(0.5)
	if s.At(0, 1) != 1 || s.At(1, 0) != 2 {
		t.Errorf("Scale: got %v/%v", s.At(0, 1), s.At(1, 0))
	}
	if m.At(0, 1) != 2 {
		t.Error("Scale mutated the receiver")
	}
	sr, err := m.ScaleRows([]float64{10, 100})
	if err != nil {
		t.Fatalf("ScaleRows: %v", err)
	}
	if sr.At(0, 1) != 20 || sr.At(1, 0) != 400 {
		t.Errorf("ScaleRows: got %v/%v", sr.At(0, 1), sr.At(1, 0))
	}
	if _, err := m.ScaleRows([]float64{1}); err == nil {
		t.Error("ScaleRows length mismatch not rejected")
	}
}

func TestAddDiagonal(t *testing.T) {
	m := mustCSR(t, 2, []Triplet{{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 2}})
	d, err := m.AddDiagonal([]float64{-1, 5})
	if err != nil {
		t.Fatalf("AddDiagonal: %v", err)
	}
	if d.At(0, 0) != 0 || d.At(1, 1) != 5 || d.At(0, 1) != 2 {
		t.Errorf("AddDiagonal result wrong: %v", d)
	}
}

func TestDense(t *testing.T) {
	m := mustCSR(t, 2, []Triplet{{Row: 0, Col: 1, Val: 3}})
	want := [][]float64{{0, 3}, {0, 0}}
	if got := m.Dense(); !reflect.DeepEqual(got, want) {
		t.Errorf("Dense = %v, want %v", got, want)
	}
}

func TestRowIterationAndSums(t *testing.T) {
	m := mustCSR(t, 3, []Triplet{
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 2, Val: 2.5},
	})
	if got := m.RowSum(1); got != 3.5 {
		t.Errorf("RowSum(1) = %v, want 3.5", got)
	}
	if got := m.RowSum(0); got != 0 {
		t.Errorf("RowSum(0) = %v, want 0", got)
	}
	var cols []int
	m.Row(1, func(j int, v float64) { cols = append(cols, j) })
	if !reflect.DeepEqual(cols, []int{0, 2}) {
		t.Errorf("Row(1) columns = %v, want [0 2]", cols)
	}
	if got := m.MaxAbs(); got != 2.5 {
		t.Errorf("MaxAbs = %v, want 2.5", got)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(0, 1, 2)
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m.At(0, 1) != 3 {
		t.Errorf("built At(0,1) = %v, want 3", m.At(0, 1))
	}
	bad := NewBuilder(2)
	bad.Add(5, 0, 1)
	if _, err := bad.Build(); err == nil {
		t.Error("out-of-range add not surfaced at Build")
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{1, -2, 3}
	y := []float64{4, 5, -6}
	if got := Dot(x, y); got != 1*4-2*5-3*6 {
		t.Errorf("Dot = %v", got)
	}
	z := Clone(y)
	AXPY(2, x, z)
	if !reflect.DeepEqual(z, []float64{6, 1, 0}) {
		t.Errorf("AXPY = %v", z)
	}
	Scale(0.5, z)
	if !reflect.DeepEqual(z, []float64{3, 0.5, 0}) {
		t.Errorf("Scale = %v", z)
	}
	Fill(z, 7)
	if !reflect.DeepEqual(z, []float64{7, 7, 7}) {
		t.Errorf("Fill = %v", z)
	}
	if got := Sum(x); got != 2 {
		t.Errorf("Sum = %v", got)
	}
	if got := MaxDiff(x, []float64{1, 0, 3}); got != 2 {
		t.Errorf("MaxDiff = %v", got)
	}
	if got := NormInf(x); got != 3 {
		t.Errorf("NormInf = %v", got)
	}
	if math.Abs(NormInf(nil)) != 0 {
		t.Error("NormInf(nil) != 0")
	}
}
