package sparse

import "testing"

// blockWorkers is the worker grid the ISSUE pins for the bitwise suite.
var blockWorkers = []int{0, 1, 2, 4, 8}

// randomBlock fills an n×g block with deterministic values; roughly one in
// eight entries is exactly zero so the transpose kernels' zero skip is
// exercised on every shape.
func randomBlock(n, g int, seed uint64) *Block {
	r := lcg(seed)
	b := NewBlock(n, g, nil)
	for i := 0; i < n; i++ {
		for j := 0; j < g; j++ {
			v := r.next()*2 - 1
			if r.next() < 0.125 {
				v = 0
			}
			b.Set(i, j, v)
		}
	}
	return b
}

func TestMulBlockMatchesMulVecBitwise(t *testing.T) {
	for _, n := range []int{1, 3, 50, 400} {
		for _, g := range []int{1, 2, 3, 5} {
			m := randomCSR(t, n, 8, uint64(n*31+g))
			src := randomBlock(n, g, uint64(n+g))
			dst := NewBlock(n, g, nil)
			m.MulBlock(dst, src)
			x := make([]float64, n)
			want := make([]float64, n)
			for j := 0; j < g; j++ {
				src.Col(x, j)
				m.MulVec(want, x)
				for i := 0; i < n; i++ {
					if dst.At(i, j) != want[i] {
						t.Fatalf("n=%d g=%d: dst[%d,%d] = %g, MulVec %g (must be bitwise equal)",
							n, g, i, j, dst.At(i, j), want[i])
					}
				}
			}
		}
	}
}

func TestMulBlockParMatchesMulVecBitwise(t *testing.T) {
	for _, n := range []int{1, 50, 400} {
		for _, g := range []int{1, 3, 6} {
			m := randomCSR(t, n, 8, uint64(n*17+g))
			src := randomBlock(n, g, uint64(n*7+g))
			x := make([]float64, n)
			want := make([]float64, n)
			for _, workers := range blockWorkers {
				dst := NewBlock(n, g, nil)
				m.MulBlockPar(dst, src, workers)
				for j := 0; j < g; j++ {
					src.Col(x, j)
					m.MulVec(want, x)
					for i := 0; i < n; i++ {
						if dst.At(i, j) != want[i] {
							t.Fatalf("n=%d g=%d workers=%d: dst[%d,%d] = %g, MulVec %g (must be bitwise equal)",
								n, g, workers, i, j, dst.At(i, j), want[i])
						}
					}
				}
			}
		}
	}
}

func TestMulBlockTMatchesMulVecTBitwise(t *testing.T) {
	for _, n := range []int{1, 3, 50, 400} {
		for _, g := range []int{1, 2, 5} {
			m := randomCSR(t, n, 8, uint64(n*13+g))
			src := randomBlock(n, g, uint64(n*3+g))
			dst := NewBlock(n, g, nil)
			m.MulBlockT(dst, src)
			x := make([]float64, n)
			want := make([]float64, n)
			for j := 0; j < g; j++ {
				src.Col(x, j)
				m.MulVecT(want, x)
				for i := 0; i < n; i++ {
					if dst.At(i, j) != want[i] {
						t.Fatalf("n=%d g=%d: dst[%d,%d] = %g, MulVecT %g (must be bitwise equal)",
							n, g, i, j, dst.At(i, j), want[i])
					}
				}
			}
		}
	}
}

// MulBlockTPar reassociates the reduction exactly like MulVecTPar, so the
// contract is bitwise equality per column against MulVecTPar at the same
// worker count — not against the sequential kernel.
func TestMulBlockTParMatchesMulVecTParPerColumn(t *testing.T) {
	for _, n := range []int{1, 50, 400} {
		for _, g := range []int{1, 3, 6} {
			m := randomCSR(t, n, 8, uint64(n*11+g))
			src := randomBlock(n, g, uint64(n*5+g))
			x := make([]float64, n)
			want := make([]float64, n)
			for _, workers := range blockWorkers {
				dst := NewBlock(n, g, nil)
				m.MulBlockTPar(dst, src, workers)
				for j := 0; j < g; j++ {
					src.Col(x, j)
					m.MulVecTPar(want, x, workers)
					for i := 0; i < n; i++ {
						if dst.At(i, j) != want[i] {
							t.Fatalf("n=%d g=%d workers=%d: dst[%d,%d] = %g, MulVecTPar %g (must be bitwise equal)",
								n, g, workers, i, j, dst.At(i, j), want[i])
						}
					}
				}
			}
		}
	}
}

func TestBlockColumnOps(t *testing.T) {
	const n, g = 7, 3
	b := NewBlock(n, g, nil)
	col := randomVec(n, 21)
	b.SetCol(1, col)
	got := make([]float64, n)
	b.Col(got, 1)
	for i := range col {
		if got[i] != col[i] {
			t.Fatalf("Col round-trip mismatch at %d: %g != %g", i, got[i], col[i])
		}
	}
	// ColAXPY must equal AXPY on the extracted column, bitwise.
	dst1 := randomVec(n, 5)
	dst2 := make([]float64, n)
	copy(dst2, dst1)
	b.ColAXPY(0.75, 1, dst1)
	AXPY(0.75, col, dst2)
	for i := range dst1 {
		if dst1[i] != dst2[i] {
			t.Fatalf("ColAXPY != AXPY at %d: %g != %g", i, dst1[i], dst2[i])
		}
	}
	// AXPYIntoCol mirrors it into the block.
	src := randomVec(n, 9)
	want := make([]float64, n)
	copy(want, col)
	AXPY(-0.5, src, want)
	b.AXPYIntoCol(-0.5, 1, src)
	b.Col(got, 1)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AXPYIntoCol mismatch at %d: %g != %g", i, got[i], want[i])
		}
	}
	// ColMaxDiff must equal MaxDiff on the extracted columns.
	o := randomBlock(n, g, 77)
	ocol := make([]float64, n)
	o.Col(ocol, 1)
	if d, want := b.ColMaxDiff(o, 1), MaxDiff(got, ocol); d != want {
		t.Fatalf("ColMaxDiff = %g, MaxDiff = %g", d, want)
	}
}

func TestBlockDropCol(t *testing.T) {
	const n, g = 6, 4
	b := randomBlock(n, g, 31)
	cols := make([][]float64, g)
	for j := 0; j < g; j++ {
		cols[j] = make([]float64, n)
		b.Col(cols[j], j)
	}
	b.DropCol(1)
	if b.Cols() != g-1 {
		t.Fatalf("Cols() = %d after DropCol, want %d", b.Cols(), g-1)
	}
	keep := [][]float64{cols[0], cols[2], cols[3]}
	got := make([]float64, n)
	for j, want := range keep {
		b.Col(got, j)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("after DropCol, col %d row %d = %g, want %g", j, i, got[i], want[i])
			}
		}
	}
	// Dropping down to a single column must keep it intact.
	b.DropCol(0)
	b.DropCol(1)
	b.Col(got, 0)
	for i := range got {
		if got[i] != cols[2][i] {
			t.Fatalf("after drops, remaining col row %d = %g, want %g", i, got[i], cols[2][i])
		}
	}
}

func TestBlockPoolRoundTrip(t *testing.T) {
	pool := NewVecPool()
	const n, g = 10, 4
	b := NewBlock(n, g, pool)
	b.DropCol(2) // narrow the view; Release must still return the full slab
	b.Release(pool)
	if got := pool.Len(n * g); got != 1 {
		t.Fatalf("pool holds %d buffers of the original slab length %d, want 1", got, n*g)
	}
	if got := pool.Len(n * (g - 1)); got != 0 {
		t.Fatalf("pool holds %d buffers of the narrowed length, want 0", got)
	}
	// The recycled slab must come back zeroed at full size.
	b2 := NewBlock(n, g, pool)
	for i := 0; i < n; i++ {
		for j := 0; j < g; j++ {
			if b2.At(i, j) != 0 {
				t.Fatalf("recycled block not zeroed at (%d,%d)", i, j)
			}
		}
	}
	stats := pool.Stats()
	if stats.Reuses != 1 {
		t.Fatalf("pool reuses = %d, want 1", stats.Reuses)
	}
}

func BenchmarkMulBlockG4(b *testing.B) {
	m := benchCSR(b, 2000, 20)
	src := randomBlock(2000, 4, 1)
	dst := NewBlock(2000, 4, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulBlock(dst, src)
	}
}

// BenchmarkMulVecG4 is the vector-at-a-time baseline for BenchmarkMulBlockG4:
// the same four columns advanced by four independent matrix passes.
func BenchmarkMulVecG4(b *testing.B) {
	m := benchCSR(b, 2000, 20)
	src := randomBlock(2000, 4, 1)
	xs := make([][]float64, 4)
	dsts := make([][]float64, 4)
	for j := range xs {
		xs[j] = make([]float64, 2000)
		src.Col(xs[j], j)
		dsts[j] = make([]float64, 2000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range xs {
			m.MulVec(dsts[j], xs[j])
		}
	}
}

func BenchmarkMulBlockParG4(b *testing.B) {
	m := benchCSR(b, 2000, 20)
	src := randomBlock(2000, 4, 1)
	dst := NewBlock(2000, 4, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulBlockPar(dst, src, 0)
	}
}

func BenchmarkMulBlockTParG4(b *testing.B) {
	m := benchCSR(b, 2000, 20)
	src := randomBlock(2000, 4, 1)
	dst := NewBlock(2000, 4, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulBlockTPar(dst, src, 0)
	}
}
