package sparse

import (
	"math/bits"
	"sort"
	"sync"

	"github.com/performability/csrl/internal/parallel"
)

// parGrain is the minimum number of stored entries before the parallel
// kernels fan out; below it the scheduling overhead dominates and the
// sequential kernels are used directly.
const parGrain = 1024

// MulVecPar computes dst = M·x like MulVec, partitioned across workers.
// Each worker owns a contiguous row range, and every row's dot product is
// evaluated in the same order as the sequential kernel, so the result is
// bitwise identical to MulVec for every workers value. Row ranges are
// balanced by stored-entry count, not row count, so banded matrices with
// skewed rows (e.g. the pseudo-Erlang expansion) split evenly.
func (m *CSR) MulVecPar(dst, x []float64, workers int) {
	if len(dst) != m.n || len(x) != m.n {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: MulVecPar dimension mismatch")
	}
	w := parallel.Resolve(workers)
	if w == 1 || m.NNZ() < parGrain || m.n < 2 {
		m.MulVec(dst, x)
		return
	}
	cuts := m.rowCuts(w)
	tasks := make([]func(), 0, len(cuts)-1)
	for c := 0; c+1 < len(cuts); c++ {
		lo, hi := cuts[c], cuts[c+1]
		tasks = append(tasks, func() {
			for i := lo; i < hi; i++ {
				var s float64
				for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
					s += m.val[k] * x[m.col[k]]
				}
				dst[i] = s
			}
		})
	}
	parallel.Do(tasks...)
}

// scatterCapPerClass bounds how many free buffers one capacity class
// retains; it only needs to cover the worker fan-out of a single kernel
// call, so a small bound keeps the cache's footprint proportional to the
// models actually in use.
const scatterCapPerClass = 16

// scatterCache recycles the per-worker scatter buffers of the transpose
// kernels, bucketed by power-of-two capacity class. The previous
// sync.Pool-based cache recycled any buffer whose capacity covered the
// request, so after one large model every later small-model check kept
// pinning O(workers·n_max) memory. Bucketing fixes that: a request of
// length n is served only from the class holding capacity 2^⌈log2 n⌉
// (at most 2× the request), large-model buffers stay in their own class,
// and each class is bounded by scatterCapPerClass. Buffers whose capacity
// is not exactly a class size (e.g. resliced by a caller) are dropped on
// put rather than filed under a class they don't fill.
type scatterCache struct {
	mu   sync.Mutex
	free map[int][][]float64 // guarded by mu; capacity class (log2) → free buffers
}

var scatters = scatterCache{free: make(map[int][][]float64)}

// capClass returns the power-of-two capacity class for a request of
// length n: the smallest c with 1<<c ≥ n.
func capClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get returns a buffer of length n with capacity 1<<capClass(n). The
// contents are unspecified; callers zero what they need (the scatter
// kernels overwrite every element anyway).
func (c *scatterCache) get(n int) []float64 {
	cls := capClass(n)
	c.mu.Lock()
	list := c.free[cls]
	if len(list) > 0 {
		buf := list[len(list)-1]
		list[len(list)-1] = nil
		c.free[cls] = list[:len(list)-1]
		c.mu.Unlock()
		return buf[:n]
	}
	c.mu.Unlock()
	return make([]float64, n, 1<<cls)
}

// put files buf back under its capacity class, dropping it when the class
// is full or the capacity is not an exact class size.
func (c *scatterCache) put(buf []float64) {
	cp := cap(buf)
	if cp == 0 || cp&(cp-1) != 0 {
		return
	}
	cls := bits.Len(uint(cp)) - 1
	c.mu.Lock()
	if len(c.free[cls]) < scatterCapPerClass {
		c.free[cls] = append(c.free[cls], buf[:cp])
	}
	c.mu.Unlock()
}

// classLen reports how many free buffers a class holds (tests).
func (c *scatterCache) classLen(cls int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.free[cls])
}

// reset empties the cache (tests).
func (c *scatterCache) reset() {
	c.mu.Lock()
	c.free = make(map[int][][]float64)
	c.mu.Unlock()
}

// MulVecTPar computes dst = Mᵀ·x like MulVecT, partitioned across workers.
// Each worker scatters its row range into a private buffer; the buffers
// are then reduced into dst in a parallel sweep over column ranges. The
// reduction adds per-worker partial sums in worker order, which may
// reassociate floating-point addition relative to MulVecT; results agree
// with the sequential kernel up to roundoff (exactly when each column is
// touched by at most one worker).
//
//numerics:order-invariant fanout=rowCuts the gather folds the rowCuts partition in worker order; results are deterministic at a fixed workers value and agree with MulVecT up to roundoff
func (m *CSR) MulVecTPar(dst, x []float64, workers int) {
	if len(dst) != m.n || len(x) != m.n {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: MulVecTPar dimension mismatch")
	}
	w := parallel.Resolve(workers)
	if w == 1 || m.NNZ() < parGrain || m.n < 2 {
		m.MulVecT(dst, x)
		return
	}
	cuts := m.rowCuts(w)
	nParts := len(cuts) - 1
	bufs := make([][]float64, nParts)
	scatter := make([]func(), 0, nParts)
	for c := 0; c < nParts; c++ {
		c := c
		lo, hi := cuts[c], cuts[c+1]
		scatter = append(scatter, func() {
			buf := scatters.get(m.n)
			for i := range buf {
				buf[i] = 0
			}
			for i := lo; i < hi; i++ {
				xi := x[i]
				if xi == 0 {
					continue
				}
				for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
					buf[m.col[k]] += m.val[k] * xi
				}
			}
			bufs[c] = buf
		})
	}
	parallel.Do(scatter...)
	parallel.For(w, m.n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var s float64
			for _, buf := range bufs {
				s += buf[j]
			}
			dst[j] = s
		}
	})
	for _, buf := range bufs {
		scatters.put(buf)
	}
}

// rowCuts returns w+1 monotone row boundaries [0=c0 <= c1 <= … <= cw=n]
// such that each range [ci, ci+1) holds roughly NNZ/w stored entries.
// The boundaries depend only on the matrix and w, keeping the parallel
// kernels deterministic.
func (m *CSR) rowCuts(w int) []int {
	if w > m.n {
		w = m.n
	}
	cuts := make([]int, w+1)
	nnz := m.NNZ()
	for c := 1; c < w; c++ {
		target := nnz * c / w
		cuts[c] = sort.SearchInts(m.rowPtr, target+1) - 1
	}
	cuts[w] = m.n
	// Deduplicate collapsed boundaries (possible when one row holds more
	// than NNZ/w entries) while keeping monotonicity.
	for c := 1; c <= w; c++ {
		if cuts[c] < cuts[c-1] {
			cuts[c] = cuts[c-1]
		}
	}
	out := cuts[:1]
	for c := 1; c <= w; c++ {
		if cuts[c] > out[len(out)-1] {
			out = append(out, cuts[c])
		}
	}
	return out
}
