// Package sparse provides compressed sparse row (CSR) matrices and the
// vector kernels used throughout the model checker. Matrices are square,
// real-valued and immutable once built; construction goes through either a
// triplet list or the incremental Builder.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Triplet is a single (row, col, value) entry used to assemble a matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a square sparse matrix in compressed sparse row format.
// For row i, the entries are Col[RowPtr[i]:RowPtr[i+1]] with values
// Val[RowPtr[i]:RowPtr[i+1]], sorted by column index.
type CSR struct {
	n      int
	rowPtr []int
	col    []int
	val    []float64
}

// ErrDimension reports an invalid or inconsistent dimension.
var ErrDimension = errors.New("sparse: invalid dimension")

// NewFromTriplets assembles an n×n CSR matrix from triplets. Duplicate
// (row, col) pairs are summed. Entries that sum to exactly zero are kept,
// so the sparsity pattern is predictable for callers.
func NewFromTriplets(n int, ts []Triplet) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrDimension, n)
	}
	for _, t := range ts {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= n {
			return nil, fmt.Errorf("%w: entry (%d,%d) outside %d×%d", ErrDimension, t.Row, t.Col, n, n)
		}
	}
	sorted := make([]Triplet, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})

	m := &CSR{
		n:      n,
		rowPtr: make([]int, n+1),
	}
	// Merge duplicates while copying into the CSR arrays.
	for i := 0; i < len(sorted); {
		j := i + 1
		sum := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			sum += sorted[j].Val
			j++
		}
		m.col = append(m.col, sorted[i].Col)
		m.val = append(m.val, sum)
		m.rowPtr[sorted[i].Row+1]++
		i = j
	}
	for i := 0; i < n; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	m := &CSR{
		n:      n,
		rowPtr: make([]int, n+1),
		col:    make([]int, n),
		val:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.rowPtr[i+1] = i + 1
		m.col[i] = i
		m.val[i] = 1
	}
	return m
}

// Dim returns the dimension n of the square matrix.
func (m *CSR) Dim() int { return m.n }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.val) }

// At returns the entry at (i, j); zero when no entry is stored.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		return 0
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := sort.SearchInts(m.col[lo:hi], j)
	if idx < hi-lo && m.col[lo+idx] == j {
		return m.val[lo+idx]
	}
	return 0
}

// Row calls fn for every stored entry (j, v) in row i.
func (m *CSR) Row(i int, fn func(j int, v float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.col[k], m.val[k])
	}
}

// RowRange returns the stored column indices and values of row i (shared,
// do not modify). The raw slices exist for scatter kernels that walk one
// row per active state — the closure of Row costs an indirect call per
// entry, which dominates when the active window is a few states wide.
func (m *CSR) RowRange(i int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	//lint:ignore aliasret sharing is the documented contract: the row views feed the truncated scatter kernel and a copy per active state would defeat the windowing
	return m.col[lo:hi], m.val[lo:hi]
}

// RowSum returns the sum of the stored entries in row i.
func (m *CSR) RowSum(i int) float64 {
	var s float64
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		s += m.val[k]
	}
	return s
}

// Each calls fn for every stored entry.
func (m *CSR) Each(fn func(i, j int, v float64)) {
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			fn(i, m.col[k], m.val[k])
		}
	}
}

// MulVec computes dst = M·x. dst and x must have length Dim and must not
// alias each other.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.n || len(x) != m.n {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.col[k]]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = Mᵀ·x (equivalently dst = x·M for a row vector x).
// dst and x must have length Dim and must not alias each other.
func (m *CSR) MulVecT(dst, x []float64) {
	if len(dst) != m.n || len(x) != m.n {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: MulVecT dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.n; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			dst[m.col[k]] += m.val[k] * xi
		}
	}
}

// MulMat computes C = M·B where B and C are dense n×n matrices stored
// row-major as [][]float64. C must be preallocated and must not alias B.
func (m *CSR) MulMat(c, b [][]float64) {
	if len(c) != m.n || len(b) != m.n {
		//lint:ignore bannedcall dimension mismatch is a programmer error on the hottest kernel; an error return would tax every caller
		panic("sparse: MulMat dimension mismatch")
	}
	for i := 0; i < m.n; i++ {
		ci := c[i]
		for j := range ci {
			ci[j] = 0
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			v, bj := m.val[k], b[m.col[k]]
			for j, bv := range bj {
				ci[j] += v * bv
			}
		}
	}
}

// Transpose returns a new matrix Mᵀ.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		n:      m.n,
		rowPtr: make([]int, m.n+1),
		col:    make([]int, len(m.col)),
		val:    make([]float64, len(m.val)),
	}
	for _, j := range m.col {
		t.rowPtr[j+1]++
	}
	for i := 0; i < m.n; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int, m.n)
	copy(next, t.rowPtr[:m.n])
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.col[k]
			t.col[next[j]] = i
			t.val[next[j]] = m.val[k]
			next[j]++
		}
	}
	return t
}

// Scale returns a new matrix α·M.
func (m *CSR) Scale(alpha float64) *CSR {
	s := m.clone()
	for i := range s.val {
		s.val[i] *= alpha
	}
	return s
}

// ScaleRows returns a new matrix diag(w)·M, i.e. row i multiplied by w[i].
func (m *CSR) ScaleRows(w []float64) (*CSR, error) {
	if len(w) != m.n {
		return nil, fmt.Errorf("%w: weight length %d for %d×%d matrix", ErrDimension, len(w), m.n, m.n)
	}
	s := m.clone()
	for i := 0; i < s.n; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			s.val[k] *= w[i]
		}
	}
	return s, nil
}

// AddDiagonal returns a new matrix M + diag(d). Diagonal entries that are
// not yet present in the pattern are inserted.
func (m *CSR) AddDiagonal(d []float64) (*CSR, error) {
	if len(d) != m.n {
		return nil, fmt.Errorf("%w: diagonal length %d for %d×%d matrix", ErrDimension, len(d), m.n, m.n)
	}
	ts := make([]Triplet, 0, m.NNZ()+m.n)
	m.Each(func(i, j int, v float64) {
		ts = append(ts, Triplet{Row: i, Col: j, Val: v})
	})
	for i, v := range d {
		if v != 0 {
			ts = append(ts, Triplet{Row: i, Col: i, Val: v})
		}
	}
	return NewFromTriplets(m.n, ts)
}

// Dense returns the matrix as a dense row-major [][]float64.
func (m *CSR) Dense() [][]float64 {
	out := make([][]float64, m.n)
	flat := make([]float64, m.n*m.n)
	for i := 0; i < m.n; i++ {
		out[i] = flat[i*m.n : (i+1)*m.n]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out[i][m.col[k]] = m.val[k]
		}
	}
	return out
}

func (m *CSR) clone() *CSR {
	c := &CSR{
		n:      m.n,
		rowPtr: make([]int, len(m.rowPtr)),
		col:    make([]int, len(m.col)),
		val:    make([]float64, len(m.val)),
	}
	copy(c.rowPtr, m.rowPtr)
	copy(c.col, m.col)
	copy(c.val, m.val)
	return c
}

// MaxAbs returns the largest absolute value of any stored entry,
// or 0 for an empty matrix.
func (m *CSR) MaxAbs() float64 {
	var mx float64
	for _, v := range m.val {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders small matrices for debugging; large matrices are summarised.
func (m *CSR) String() string {
	if m.n > 12 {
		return fmt.Sprintf("CSR{%d×%d, nnz=%d}", m.n, m.n, m.NNZ())
	}
	s := ""
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			s += fmt.Sprintf("%10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
