// Package crosscheck contains the implementation-independent validation of
// the three Section 4 procedures against each other and against Monte-Carlo
// simulation on randomised Markov reward models. Agreement of four
// independently implemented methods on random instances is the repository's
// main defence against a systematic error in any one recursion.
package crosscheck

import (
	"math"
	"math/rand"
	"testing"

	"github.com/performability/csrl/internal/discretise"
	"github.com/performability/csrl/internal/duality"
	"github.com/performability/csrl/internal/erlang"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sericola"
	"github.com/performability/csrl/internal/sim"
	"github.com/performability/csrl/internal/transient"
)

// randomMRM builds a random MRM with integer rewards (so the discretisation
// procedure applies without scaling) and a couple of absorbing zero-reward
// goal states, mimicking the structure produced by the Theorem 1 reduction.
func randomMRM(rng *rand.Rand, n int) (*mrm.MRM, *mrm.StateSet) {
	b := mrm.NewBuilder(n)
	goal := mrm.NewStateSetOf(n, n-1)
	b.Label(n-1, "goal")
	// n-2 is an absorbing "fail" state; 0..n-3 are transient.
	for s := 0; s < n-2; s++ {
		b.Reward(s, float64(1+rng.Intn(5)))
		// Outgoing transitions: to goal, fail and 1–2 other states.
		b.Rate(s, n-1, 0.2+2*rng.Float64())
		b.Rate(s, n-2, 0.2+2*rng.Float64())
		for k := 0; k < 1+rng.Intn(2); k++ {
			to := rng.Intn(n - 2)
			if to != s {
				b.Rate(s, to, 0.5+3*rng.Float64())
			}
		}
	}
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m, goal
}

func TestProceduresAgreeOnRandomModels(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweep is slow")
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(4)
		m, goal := randomMRM(rng, n)
		// Time and reward bounds chosen so neither constraint is vacuous.
		tb := 0.5 + 2*rng.Float64()
		maxR := m.MaxReward() * tb
		rb := math.Ceil((0.2 + 0.6*rng.Float64()) * maxR) // integer multiple-friendly

		res, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{Epsilon: 1e-10})
		if err != nil {
			t.Fatalf("trial %d: sericola: %v", trial, err)
		}
		ser := res.Values[0]

		erl, err := erlang.ReachProb(m, goal, tb, rb, erlang.Options{K: 4096})
		if err != nil {
			t.Fatalf("trial %d: erlang: %v", trial, err)
		}

		// Step dividing both tb and rb: rb is integral; pick d = tb/2048.
		d := tb / 2048
		// rb/d must be integral: rescale d so that it divides rb exactly.
		steps := math.Round(rb / d)
		d = rb / steps
		tSteps := math.Round(tb / d)
		tbAdj := d * tSteps // discretisation evaluates at the grid point
		dis, err := discretise.ReachProb(m, goal, tbAdj, rb, 0, discretise.Options{D: d})
		if err != nil {
			t.Fatalf("trial %d: discretise: %v", trial, err)
		}

		s := sim.New(m, int64(1000+trial))
		est, err := s.ReachProb(0, goal, tb, rb, 60_000)
		if err != nil {
			t.Fatalf("trial %d: sim: %v", trial, err)
		}

		t.Logf("trial %d (n=%d, t=%.3f, r=%.0f): sericola=%.6f erlang=%.6f discretise=%.6f sim=%v",
			trial, n, tb, rb, ser, erl, dis, est)

		if math.Abs(erl-ser) > 2e-3 {
			t.Errorf("trial %d: erlang %v vs sericola %v", trial, erl, ser)
		}
		if math.Abs(dis-ser) > 5e-3 {
			t.Errorf("trial %d: discretise %v vs sericola %v", trial, dis, ser)
		}
		if math.Abs(est.Value-ser) > est.HalfWidth+2e-3 {
			t.Errorf("trial %d: sim %v vs sericola %v", trial, est, ser)
		}
	}
}

func TestVacuousRewardBoundReducesToTransient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, goal := randomMRM(rng, 6)
	tb := 1.5
	// r above the maximal accumulable reward: the constraint is vacuous.
	rb := m.MaxReward()*tb + 10
	res, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := transient.ReachProbAll(m, goal, tb, transient.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for s := range ref {
		if math.Abs(res.Values[s]-ref[s]) > 1e-8 {
			t.Errorf("state %d: %v vs transient %v", s, res.Values[s], ref[s])
		}
	}
	// The Erlang procedure must converge to the same thing.
	erl, err := erlang.ReachProbAll(m, goal, tb, rb, erlang.Options{K: 512})
	if err != nil {
		t.Fatal(err)
	}
	for s := range ref {
		if math.Abs(erl[s]-ref[s]) > 1e-3 {
			t.Errorf("erlang state %d: %v vs transient %v", s, erl[s], ref[s])
		}
	}
}

func TestImpossibleRewardBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, goal := randomMRM(rng, 5)
	// Every transient state earns ≥ 1 per time unit and the initial state
	// is transient, so Y_t ≥ min over paths > 0... with r = 0 the
	// probability of {Y_t ≤ 0, X_t ∈ goal} is 0.
	res, err := sericola.ReachProbAll(m, goal, 2, 0, sericola.Options{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 0 {
		t.Errorf("P{Y≤0} from rewarded state = %v, want 0", res.Values[0])
	}
}

func TestDualityRoundTrip(t *testing.T) {
	// Dual of the dual is the original (on a positive-reward model).
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 2).Rate(1, 2, 3).Rate(1, 0, 1)
	b.Reward(0, 2).Reward(1, 4).Reward(2, 1)
	b.Label(2, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := duality.Dual(m)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := duality.Dual(d)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if math.Abs(dd.Reward(s)-m.Reward(s)) > 1e-12 {
			t.Errorf("reward(%d): %v vs %v", s, dd.Reward(s), m.Reward(s))
		}
		for tgt := 0; tgt < 3; tgt++ {
			if math.Abs(dd.Rates().At(s, tgt)-m.Rates().At(s, tgt)) > 1e-12 {
				t.Errorf("rate(%d,%d): %v vs %v", s, tgt, dd.Rates().At(s, tgt), m.Rates().At(s, tgt))
			}
		}
	}
}

func TestDualityRewardBoundedUntilMatchesSimulation(t *testing.T) {
	// P2-type property checked through the duality transformation against
	// a direct path-semantics Monte-Carlo estimate.
	b := mrm.NewBuilder(4)
	b.Rate(0, 1, 1).Rate(1, 0, 2).Rate(0, 2, 0.5).Rate(1, 3, 0.8)
	b.Reward(0, 1).Reward(1, 3).Reward(2, 2).Reward(3, 1)
	b.Label(0, "phi").Label(1, "phi").Label(3, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	phi := m.Label("phi")
	psi := m.Label("psi")
	const rBound = 4.0
	vals, err := duality.RewardBoundedUntil(m, phi, psi, rBound,
		func(d *mrm.MRM, phi, psi *mrm.StateSet, tb float64) ([]float64, error) {
			return transient.TimeBoundedUntil(d, phi, psi, tb, transient.DefaultOptions())
		})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(m, 99)
	est, err := s.UntilProb(0, phi, psi, math.Inf(1), rBound, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("duality: %.6f, simulation: %v", vals[0], est)
	if math.Abs(vals[0]-est.Value) > est.HalfWidth+1e-3 {
		t.Errorf("duality %v vs simulation %v", vals[0], est)
	}
}

func TestDualityRejectsZeroRewardNonAbsorbing(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	// State 0 has reward 0 and a transition: duality undefined.
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := duality.Dual(m); err == nil {
		t.Error("zero-reward non-absorbing state accepted")
	}
}

// TestSericolaIntervalAvailability exercises the classical 0/1-reward
// special case (Rubino–Sericola interval availability): a two-state
// up/down model where the distribution of up-time can be cross-checked
// against simulation at several reward levels.
func TestSericolaIntervalAvailability(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1).Rate(1, 0, 4)
	b.Reward(0, 1).Reward(1, 0)
	b.Label(0, "up")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	all := mrm.NewStateSet(2).Complement()
	s := sim.New(m, 5)
	for _, frac := range []float64{0.25, 0.5, 0.75, 0.9} {
		tb := 4.0
		rb := frac * tb
		res, err := sericola.ReachProbAll(m, all, tb, rb, sericola.Options{Epsilon: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		est, err := s.ReachProb(0, all, tb, rb, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Values[0]-est.Value) > est.HalfWidth+2e-3 {
			t.Errorf("frac=%v: sericola %v vs sim %v", frac, res.Values[0], est)
		}
	}
}
