package crosscheck

import (
	"errors"
	"math"
	"testing"

	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/duality"
	"github.com/performability/csrl/internal/erlang"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sericola"
	"github.com/performability/csrl/internal/sim"
)

// impulseModel: a Φ-cycle {0,1} with absorbing goal 2 and trap 3, integer
// state rewards and impulses on two transitions.
func impulseModel(t *testing.T) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(4)
	b.Rate(0, 1, 2).Rate(1, 0, 1).Rate(0, 2, 0.7).Rate(1, 2, 0.4).Rate(1, 3, 0.3)
	b.Reward(0, 1).Reward(1, 3)
	b.Impulse(0, 1, 0.5) // paying for the handover
	b.Impulse(1, 2, 1)   // and for the final connection
	b.Label(0, "phi").Label(1, "phi").Label(2, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestImpulseUntilMatchesSimulation(t *testing.T) {
	m := impulseModel(t)
	// The checker must silently route to the discretisation procedure.
	c := core.New(m, core.DefaultOptions())
	f := logic.MustParse("P=? [ phi U{t<=3, r<=4} psi ]")
	vals, err := c.Values(f)
	if err != nil {
		t.Fatalf("Values: %v", err)
	}
	s := sim.New(m, 31)
	est, err := s.UntilProb(0, m.Label("phi"), m.Label("psi"), 3, 4, 300_000)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	t.Logf("impulse until: numeric %.6f, simulated %v", vals[0], est)
	if math.Abs(vals[0]-est.Value) > est.HalfWidth+3e-3 {
		t.Errorf("numeric %.6f incompatible with simulation %v", vals[0], est)
	}
	// Impulses must make a real difference: the impulse-free model gives a
	// strictly larger probability (less reward spent per path).
	b := mrm.NewBuilder(4)
	b.Rate(0, 1, 2).Rate(1, 0, 1).Rate(0, 2, 0.7).Rate(1, 2, 0.4).Rate(1, 3, 0.3)
	b.Reward(0, 1).Reward(1, 3)
	b.Label(0, "phi").Label(1, "phi").Label(2, "psi")
	plain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cp := core.New(plain, core.DefaultOptions())
	pvals, err := cp.Values(f)
	if err != nil {
		t.Fatal(err)
	}
	if !(pvals[0] > vals[0]+1e-3) {
		t.Errorf("impulse-free %v should clearly exceed impulse-laden %v", pvals[0], vals[0])
	}
}

func TestImpulseRejectionByOtherProcedures(t *testing.T) {
	m := impulseModel(t)
	goal := m.Label("psi")
	if _, err := sericola.ReachProbAll(m, goal, 1, 1, sericola.Options{}); !errors.Is(err, mrm.ErrImpulsesUnsupported) {
		t.Errorf("sericola: %v", err)
	}
	if _, err := erlang.ReachProbAll(m, goal, 1, 1, erlang.Options{K: 4}); !errors.Is(err, mrm.ErrImpulsesUnsupported) {
		t.Errorf("erlang: %v", err)
	}
	if _, err := duality.Dual(m); !errors.Is(err, mrm.ErrImpulsesUnsupported) {
		t.Errorf("duality: %v", err)
	}
}

func TestImpulsePreservedThroughReduction(t *testing.T) {
	m := impulseModel(t)
	red, err := mrm.ReduceForUntil(m, m.Label("phi"), m.Label("psi"))
	if err != nil {
		t.Fatalf("reduce: %v", err)
	}
	if !red.Model.HasImpulses() {
		t.Fatal("reduction dropped the impulses")
	}
	// The transient-to-transient impulse survives one-to-one.
	if got := red.Model.Impulse(red.StateMap[0], red.StateMap[1]); got != 0.5 {
		t.Errorf("ι(0,1) = %v, want 0.5", got)
	}
	// The impulse into the goal survives on the amalgamated transition.
	if got := red.Model.Impulse(red.StateMap[1], red.Goal); got != 1 {
		t.Errorf("ι(1,goal) = %v, want 1", got)
	}
}

func TestReductionRejectsConflictingGoalImpulses(t *testing.T) {
	// Two Ψ-states reached from the same state with different impulses
	// cannot be amalgamated.
	b := mrm.NewBuilder(4)
	b.Rate(0, 1, 1).Rate(0, 2, 1).Rate(0, 3, 1)
	b.Reward(0, 1)
	b.Impulse(0, 1, 2)
	b.Impulse(0, 2, 3)
	b.Label(0, "phi").Label(1, "psi").Label(2, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mrm.ReduceForUntil(m, m.Label("phi"), m.Label("psi")); err == nil {
		t.Error("conflicting goal impulses accepted by amalgamation")
	}
}

func TestImpulseOnRatelessTransitionRejected(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	b.Impulse(1, 0, 5) // no rate 1→0
	if _, err := b.Build(); err == nil {
		t.Error("impulse without a transition accepted")
	}
}
