package crosscheck

import (
	"math"
	"runtime"
	"testing"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/erlang"
	"github.com/performability/csrl/internal/parallel"
	"github.com/performability/csrl/internal/sericola"
	"github.com/performability/csrl/internal/sparse"
	"github.com/performability/csrl/internal/transient"
)

// TestSlicedSericolaBitwiseEqualsFullWidth is the PR's exactness gate: on
// the paper's ad-hoc model (Q3's Theorem 1 reduction), the goal-column
// sliced recursion must reproduce the full-width n×n path bit for bit at
// every tested ε. Slicing is a restriction of the same arithmetic — the
// band sweeps are row-local and the P·C products column-wise — so any
// deviation at all, even in the last ulp, means the slicing touched the
// operation order and the test fails.
func TestSlicedSericolaBitwiseEqualsFullWidth(t *testing.T) {
	red, err := adhoc.Q3Reduced()
	if err != nil {
		t.Fatal(err)
	}
	m := red.Model
	goal := m.Label("goal")
	tb, rb := adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound

	for _, eps := range []float64{1e-2, 1e-4, 1e-6, 1e-8} {
		sliced, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{Epsilon: eps})
		if err != nil {
			t.Fatalf("eps=%g sliced: %v", eps, err)
		}
		full, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{Epsilon: eps, FullWidth: true})
		if err != nil {
			t.Fatalf("eps=%g full-width: %v", eps, err)
		}
		if sliced.N != full.N {
			t.Fatalf("eps=%g: truncation N=%d sliced vs %d full-width", eps, sliced.N, full.N)
		}
		for s := range sliced.Values {
			if math.Float64bits(sliced.Values[s]) != math.Float64bits(full.Values[s]) {
				t.Errorf("eps=%g state %d: sliced %v vs full-width %v not bitwise equal",
					eps, s, sliced.Values[s], full.Values[s])
			}
		}
	}
}

// TestSteadyDetectAgreesOnAdhoc pins the steady-state-aware summation to
// the exact full-window results on the ad-hoc model at tight ε: the charged
// Poisson tail may only move a value by the ε the detection threshold was
// derived from.
func TestSteadyDetectAgreesOnAdhoc(t *testing.T) {
	red, err := adhoc.Q3Reduced()
	if err != nil {
		t.Fatal(err)
	}
	m := red.Model
	goal := m.Label("goal")
	tb, rb := adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound
	const eps = 1e-12

	t.Run("transient", func(t *testing.T) {
		off, err := transient.ReachProbAll(m, goal, tb, transient.Options{Epsilon: eps, SteadyDetect: transient.SteadyOff})
		if err != nil {
			t.Fatal(err)
		}
		on, err := transient.ReachProbAll(m, goal, tb, transient.Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		for s := range on {
			if d := math.Abs(on[s] - off[s]); d > 10*eps {
				t.Errorf("state %d: steady on/off differ by %g > %g", s, d, 10*eps)
			}
		}
	})

	t.Run("erlang", func(t *testing.T) {
		offOpts := erlang.Options{K: 256, Transient: transient.Options{Epsilon: eps, SteadyDetect: transient.SteadyOff}}
		off, err := erlang.ReachProbAll(m, goal, tb, rb, offOpts)
		if err != nil {
			t.Fatal(err)
		}
		onOpts := erlang.Options{K: 256, Transient: transient.Options{Epsilon: eps}}
		on, err := erlang.ReachProbAll(m, goal, tb, rb, onOpts)
		if err != nil {
			t.Fatal(err)
		}
		for s := range on {
			if d := math.Abs(on[s] - off[s]); d > 10*eps {
				t.Errorf("state %d: steady on/off differ by %g > %g", s, d, 10*eps)
			}
		}
	})
}

// TestSharedPoolUnderConcurrency exercises the allocation-free hot path the
// way core.Checker drives it: one VecPool shared by concurrent Sericola and
// transient runs at Workers = NumCPU. It runs under -race in CI; the
// results must stay bitwise equal to unpooled Workers = 1 references, so a
// buffer recycled into the wrong hands shows up as a value diff even when
// the schedule happens to avoid a detectable race.
func TestSharedPoolUnderConcurrency(t *testing.T) {
	red, err := adhoc.Q3Reduced()
	if err != nil {
		t.Fatal(err)
	}
	m := red.Model
	goal := m.Label("goal")
	tb, rb := adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound
	const eps = 1e-8

	refSer, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{Epsilon: eps, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refTr, err := transient.ReachProbAll(m, goal, tb, transient.Options{Epsilon: eps, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	pool := sparse.NewVecPool()
	workers := runtime.NumCPU()
	const reps = 4
	serOut := make([]*sericola.Result, reps)
	trOut := make([][]float64, reps)
	errs := make([]error, 2*reps)
	work := make([]func(), 0, 2*reps)
	for i := 0; i < reps; i++ {
		i := i
		work = append(work, func() {
			serOut[i], errs[i] = sericola.ReachProbAll(m, goal, tb, rb,
				sericola.Options{Epsilon: eps, Workers: workers, Pool: pool})
		})
		work = append(work, func() {
			trOut[i], errs[reps+i] = transient.ReachProbAll(m, goal, tb,
				transient.Options{Epsilon: eps, Workers: workers, Pool: pool})
		})
	}
	parallel.Do(work...)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < reps; i++ {
		for s := range serOut[i].Values {
			if math.Float64bits(serOut[i].Values[s]) != math.Float64bits(refSer.Values[s]) {
				t.Errorf("sericola rep %d state %d: pooled %v vs reference %v",
					i, s, serOut[i].Values[s], refSer.Values[s])
			}
		}
		for s := range trOut[i] {
			if math.Float64bits(trOut[i][s]) != math.Float64bits(refTr[s]) {
				t.Errorf("transient rep %d state %d: pooled %v vs reference %v",
					i, s, trOut[i][s], refTr[s])
			}
		}
	}
}
