package crosscheck

import (
	"math"
	"runtime"
	"testing"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/discretise"
	"github.com/performability/csrl/internal/erlang"
	"github.com/performability/csrl/internal/sericola"
	"github.com/performability/csrl/internal/transient"
)

// TestAdhocParallelEquivalence is the sequential-vs-parallel equivalence
// suite of the parallel-engine work: on the paper's ad-hoc case study
// (Q3's Theorem 1 reduction), each of the three P3 procedures must agree
// between Workers: 1 (the exact legacy path) and parallel worker counts
// within 1e-12. It runs under -race in CI, covering every concurrent path.
func TestAdhocParallelEquivalence(t *testing.T) {
	red, err := adhoc.Q3Reduced()
	if err != nil {
		t.Fatal(err)
	}
	m := red.Model
	goal := m.Label("goal")
	tb, rb := adhoc.Q3TimeBound, adhoc.Q3PaperRewardBound
	workerGrid := []int{0, 4, runtime.NumCPU()}

	t.Run("sericola", func(t *testing.T) {
		seq, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{Epsilon: 1e-8, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerGrid {
			par, err := sericola.ReachProbAll(m, goal, tb, rb, sericola.Options{Epsilon: 1e-8, Workers: w})
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			if par.N != seq.N {
				t.Fatalf("workers=%d: truncation N=%d vs sequential %d", w, par.N, seq.N)
			}
			for s := range par.Values {
				if d := math.Abs(par.Values[s] - seq.Values[s]); d > 1e-12 {
					t.Errorf("workers=%d: state %d differs by %g", w, s, d)
				}
			}
		}
	})

	t.Run("erlang", func(t *testing.T) {
		// k = 256 expands to 1281 states / ≈5k transitions: above the
		// sparse kernels' grain, so the sweeps genuinely run in parallel.
		seqOpts := erlang.Options{K: 256, Transient: transient.Options{Epsilon: 1e-12, Workers: 1}}
		seq, err := erlang.ReachProbAll(m, goal, tb, rb, seqOpts)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerGrid {
			parOpts := erlang.Options{K: 256, Transient: transient.Options{Epsilon: 1e-12, Workers: w}}
			par, err := erlang.ReachProbAll(m, goal, tb, rb, parOpts)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			for s := range par {
				if d := math.Abs(par[s] - seq[s]); d > 1e-12 {
					t.Errorf("workers=%d: state %d differs by %g", w, s, d)
				}
			}
		}
	})

	t.Run("discretise", func(t *testing.T) {
		// Shorter bounds than Table 4 keep the d⁻² cost affordable under
		// the race detector; same adhoc model, same code paths (the
		// per-source fan-out plus the per-state inner loop above its
		// grain: n·(R+1) = 9·1601).
		dtb, drb := 2.0, 50.0
		opts := discretise.Options{D: 1.0 / 32, Workers: 1}
		seq, err := discretise.ReachProbAll(m, goal, dtb, drb, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerGrid {
			opts.Workers = w
			par, err := discretise.ReachProbAll(m, goal, dtb, drb, opts)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			for s := range par {
				if d := math.Abs(par[s] - seq[s]); d > 1e-12 {
					t.Errorf("workers=%d: state %d differs by %g", w, s, d)
				}
			}
		}
	})
}
