package crosscheck

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/sericola"
	"github.com/performability/csrl/internal/sparse"
	"github.com/performability/csrl/internal/transient"
)

// TestBatchedSericolaBitwiseEqualsVectorPathOnAdhoc is the PR's exactness
// gate for the block kernels: on the paper's ad-hoc model (Q3's Theorem 1
// reduction), the batched recursion — all reward bounds advancing together
// through one matrix pass per level — must reproduce the single-bound
// vector path bit for bit at every bound and worker count. The block
// kernels keep MulVec's per-row accumulation order, so any deviation, even
// in the last ulp, means the batching touched the arithmetic and the test
// fails.
func TestBatchedSericolaBitwiseEqualsVectorPathOnAdhoc(t *testing.T) {
	red, err := adhoc.Q3Reduced()
	if err != nil {
		t.Fatal(err)
	}
	m := red.Model
	goal := m.Label("goal")
	tb := adhoc.Q3TimeBound
	// Bounds straddling several bands of the paper's Table 2 sweep, the
	// headline bound among them.
	rs := []float64{adhoc.Q3PaperRewardBound, 150, 350, 700}

	for _, workers := range []int{1, 2, 4, 8} {
		opts := sericola.Options{Epsilon: 1e-8, Workers: workers, Pool: sparse.NewVecPool()}
		batch, err := sericola.ReachProbBatch(m, goal, tb, rs, opts)
		if err != nil {
			t.Fatalf("workers=%d: batch: %v", workers, err)
		}
		for ri, rb := range rs {
			single, err := sericola.ReachProbAll(m, goal, tb, rb, opts)
			if err != nil {
				t.Fatalf("workers=%d r=%v: single: %v", workers, rb, err)
			}
			if batch[ri].N != single.N {
				t.Errorf("workers=%d r=%v: truncation N=%d batched vs %d single", workers, rb, batch[ri].N, single.N)
			}
			for s := range single.Values {
				if math.Float64bits(batch[ri].Values[s]) != math.Float64bits(single.Values[s]) {
					t.Errorf("workers=%d r=%v state %d: batched %v vs single %v not bitwise equal",
						workers, rb, s, batch[ri].Values[s], single.Values[s])
				}
			}
		}
	}
}

// TestBlockTransientBitwiseEqualsVectorPathOnAdhoc runs the block-threaded
// transient sweeps on the ad-hoc model against the established
// one-vector-at-a-time path: backward with several weighting vectors
// (among them the goal indicator, i.e. ReachProbAll's input) and forward
// from several initial distributions, with steady-state detection both off
// and in its default mode.
func TestBlockTransientBitwiseEqualsVectorPathOnAdhoc(t *testing.T) {
	red, err := adhoc.Q3Reduced()
	if err != nil {
		t.Fatal(err)
	}
	m := red.Model
	goal := m.Label("goal")
	n := m.N()
	tb := adhoc.Q3TimeBound

	ind := make([]float64, n)
	goal.Each(func(s int) { ind[s] = 1 })
	ramp := make([]float64, n)
	half := make([]float64, n)
	for i := range ramp {
		ramp[i] = float64(i+1) / float64(n)
		half[i] = 0.5
	}
	vs := [][]float64{ind, ramp, half}

	inits := make([][]float64, 2)
	for j := range inits {
		inits[j] = make([]float64, n)
		inits[j][j%n] = 1
	}

	for _, mode := range []transient.SteadyMode{transient.SteadyOff, transient.SteadyAuto} {
		for _, workers := range []int{1, 2, 4, 8} {
			opts := transient.Options{Epsilon: 1e-10, Workers: workers, SteadyDetect: mode, Pool: sparse.NewVecPool()}
			multi, err := transient.BackwardWeightedMulti(m, vs, tb, opts)
			if err != nil {
				t.Fatalf("mode=%v workers=%d: backward multi: %v", mode, workers, err)
			}
			for j, v := range vs {
				single, err := transient.BackwardWeighted(m, v, tb, opts)
				if err != nil {
					t.Fatalf("mode=%v workers=%d vec=%d: backward single: %v", mode, workers, j, err)
				}
				for s := range single {
					if math.Float64bits(multi[j][s]) != math.Float64bits(single[s]) {
						t.Errorf("mode=%v workers=%d vec=%d state %d: block %v vs vector %v not bitwise equal",
							mode, workers, j, s, multi[j][s], single[s])
					}
				}
			}
			fwd, err := transient.DistributionFromMulti(m, inits, tb, opts)
			if err != nil {
				t.Fatalf("mode=%v workers=%d: forward multi: %v", mode, workers, err)
			}
			for j, init := range inits {
				single, err := transient.DistributionFrom(m, init, tb, opts)
				if err != nil {
					t.Fatalf("mode=%v workers=%d init=%d: forward single: %v", mode, workers, j, err)
				}
				for s := range single {
					if math.Float64bits(fwd[j][s]) != math.Float64bits(single[s]) {
						t.Errorf("mode=%v workers=%d init=%d state %d: block %v vs vector %v not bitwise equal",
							mode, workers, j, s, fwd[j][s], single[s])
					}
				}
			}
		}
	}
}
