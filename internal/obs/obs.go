// Package obs is the numerics-observability layer of the checker: a
// zero-dependency (stdlib-only) instrumentation substrate threaded through
// the model-checking core and the Section 4 numerical procedures. It
// carries three kinds of signal:
//
//   - an error-budget ledger: each procedure records named error
//     contributions (Fox–Glynn truncation masses, the steady-state
//     detection tail charge, the Sericola series remainder, …) so a
//     Check/Values call can return a machine-readable report proving that
//     the summed provable contributions stay within the configured ε;
//   - counters and gauges: work measures such as memo hits, pool reuses,
//     Poisson window widths, Sericola levels and matrix–vector products;
//   - spans: wall-clock accounting per pipeline phase (Sat reduction,
//     uniformisation, sweeps, corner evaluations).
//
// Everything is race-clean and nil-safe: a nil *Recorder — the default —
// turns every call into a pointer comparison, so the instrumented hot
// paths cost nothing when observability is off. Call sites therefore
// thread an optional recorder unconditionally, exactly like the
// nil-receiver-safe VecPool.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a ledger charge.
type Kind int

const (
	// Bounded charges are provable error contributions — truncated
	// probability masses and convergence-tail charges with a rigorous
	// bound. Their sum is the quantity the report proves ≤ ε.
	Bounded Kind = iota
	// Indicative charges describe approximation-order terms with no
	// a-priori bound (the Erlang-k coefficient of variation, the O(d)
	// discretisation term, clamped cancellation residue). They are
	// reported for scheme selection but excluded from the budget proof,
	// following Hahn & Hartmanns' distinction between guaranteed and
	// heuristic error accounting.
	Indicative
)

// String names the kind for reports and JSON.
func (k Kind) String() string {
	if k == Indicative {
		return "indicative"
	}
	return "bounded"
}

// MarshalText makes Kind render as its name in JSON reports.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the name back, so reports round-trip through JSON
// (service clients decode the same Report the server encoded).
func (k *Kind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "bounded":
		*k = Bounded
	case "indicative":
		*k = Indicative
	default:
		return fmt.Errorf("obs: unknown charge kind %q", b)
	}
	return nil
}

// Charge is one named error contribution in the ledger.
type Charge struct {
	// Component is the procedure or kernel that produced the error
	// (e.g. "foxglynn", "steady", "sericola", "discretise").
	Component string `json:"component"`
	// Term names the specific contribution within the component
	// (e.g. "left-tail", "right-tail", "series-remainder").
	Term string `json:"term"`
	// Amount is the magnitude of the contribution. For Bounded charges it
	// is an upper bound on lost probability mass; for Indicative charges
	// it is the scheme-order quantity documented per term.
	Amount float64 `json:"amount"`
	// Kind separates provable contributions from indicative ones.
	Kind Kind `json:"kind"`
}

// Counter is a cumulative event count. The zero value is ready to use;
// methods on a nil *Counter are no-ops, so handles obtained from a nil
// Recorder can be used unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value (or running-maximum) float measurement. Methods on
// a nil *Gauge are no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetMax records v only if it exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the gauge's current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// SpanStat aggregates the completed spans of one phase name.
type SpanStat struct {
	// Count is how many spans of this name have ended.
	Count int64 `json:"count"`
	// Nanos is their summed wall-clock duration.
	Nanos int64 `json:"nanos"`
}

// Span is an in-flight phase timing started by Recorder.StartSpan. The
// zero value (from a nil recorder) makes End a no-op; Span is a small
// value type so starting and ending a span allocates nothing.
type Span struct {
	r     *Recorder
	name  string
	start time.Time
}

// End records the span's duration under its phase name.
func (s Span) End() {
	if s.r == nil {
		return
	}
	s.r.recordSpan(s.name, time.Since(s.start))
}

// Recorder collects the three signal kinds for one checker (or one CLI
// invocation). All methods are safe for concurrent use and nil-safe: every
// method on a nil *Recorder returns immediately (handles come back nil and
// are themselves nil-safe), which is the compiled-out fast path for
// disabled observability.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]*Counter  // guarded by mu
	gauges   map[string]*Gauge    // guarded by mu
	spans    map[string]*SpanStat // guarded by mu
	ledger   []Charge             // guarded by mu
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		spans:    make(map[string]*SpanStat),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// recorder returns a nil handle whose methods are no-ops. Hot loops should
// fetch the handle once and Add on it, not look it up per iteration.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil recorder
// returns a nil handle whose methods are no-ops.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Charge appends a Bounded error contribution to the ledger. Amounts from
// repeated calls with the same (component, term) accumulate; Report merges
// them into one row.
func (r *Recorder) Charge(component, term string, amount float64) {
	r.charge(Charge{Component: component, Term: term, Amount: amount, Kind: Bounded})
}

// ChargeIndicative appends an Indicative (unbounded, scheme-order) term.
func (r *Recorder) ChargeIndicative(component, term string, amount float64) {
	r.charge(Charge{Component: component, Term: term, Amount: amount, Kind: Indicative})
}

func (r *Recorder) charge(c Charge) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ledger = append(r.ledger, c)
	r.mu.Unlock()
}

// StartSpan begins timing the named phase; call End on the returned Span.
func (r *Recorder) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, start: time.Now()}
}

func (r *Recorder) recordSpan(name string, d time.Duration) {
	r.mu.Lock()
	st, ok := r.spans[name]
	if !ok {
		st = &SpanStat{}
		r.spans[name] = st
	}
	st.Count++
	st.Nanos += d.Nanoseconds()
	r.mu.Unlock()
}

// Reset clears the ledger, all counters, gauges and span statistics, so
// one recorder can account for successive checks independently.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ledger = nil
	r.spans = make(map[string]*SpanStat)
	counters := make([]*Counter, 0, len(r.counters))
	for _, k := range sortedKeys(r.counters) {
		counters = append(counters, r.counters[k])
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, k := range sortedKeys(r.gauges) {
		gauges = append(gauges, r.gauges[k])
	}
	r.mu.Unlock()
	// Handles stay valid across Reset (call sites may have hoisted them);
	// zero them outside the lock — their own operations are atomic.
	for _, c := range counters {
		c.v.Store(0)
	}
	for _, g := range gauges {
		g.Set(0)
	}
}

// Report is the machine-readable numerics report of one recorder snapshot.
type Report struct {
	// Epsilon is the configured accuracy the budget is proved against
	// (0 when the caller did not supply one).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Budget lists the merged Bounded charges, sorted by component/term.
	Budget []Charge `json:"budget,omitempty"`
	// BudgetTotal is the sum of all Bounded amounts.
	BudgetTotal float64 `json:"budget_total"`
	// BudgetOK reports BudgetTotal ≤ Epsilon (false when Epsilon is 0 and
	// any charge exists — an unconfigured budget proves nothing).
	BudgetOK bool `json:"budget_ok"`
	// Indicative lists the merged Indicative charges.
	Indicative []Charge `json:"indicative,omitempty"`
	// Counters, Gauges and Spans snapshot the work measures.
	Counters map[string]int64    `json:"counters,omitempty"`
	Gauges   map[string]float64  `json:"gauges,omitempty"`
	Spans    map[string]SpanStat `json:"spans,omitempty"`
}

// Report snapshots the recorder into a Report, merging repeated charges of
// the same (component, term, kind) by summing their amounts and proving
// the bounded total against eps. A nil recorder returns nil.
func (r *Recorder) Report(eps float64) *Report {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ledger := make([]Charge, len(r.ledger))
	copy(ledger, r.ledger)
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	spans := make(map[string]SpanStat, len(r.spans))
	for name, st := range r.spans {
		spans[name] = *st
	}
	r.mu.Unlock()

	merged := make(map[[3]string]*Charge)
	var order [][3]string
	for _, c := range ledger {
		key := [3]string{c.Component, c.Term, c.Kind.String()}
		if m, ok := merged[key]; ok {
			m.Amount += c.Amount
			continue
		}
		cc := c
		merged[key] = &cc
		order = append(order, key)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})
	rep := &Report{
		Epsilon:  eps,
		Counters: counters,
		Gauges:   gauges,
		Spans:    spans,
	}
	for _, key := range order {
		c := *merged[key]
		if c.Kind == Bounded {
			rep.Budget = append(rep.Budget, c)
			rep.BudgetTotal += c.Amount
		} else {
			rep.Indicative = append(rep.Indicative, c)
		}
	}
	rep.BudgetOK = rep.BudgetTotal <= eps && !math.IsNaN(rep.BudgetTotal)
	if eps == 0 && len(rep.Budget) > 0 {
		rep.BudgetOK = false
	}
	return rep
}

// Format writes the report in the human-readable layout used by
// `csrlcheck -stats`. It is deterministic (sorted keys) so tests and
// diffs can rely on the ordering.
func (rep *Report) Format() string {
	if rep == nil {
		return ""
	}
	var b []byte
	appendf := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	appendf("numerics report:\n")
	appendf("  error budget (epsilon = %g):\n", rep.Epsilon)
	for _, c := range rep.Budget {
		appendf("    %-34s %.6g\n", c.Component+"/"+c.Term, c.Amount)
	}
	verdict := "EXCEEDED"
	if rep.BudgetOK {
		verdict = "OK"
	}
	appendf("    %-34s %.6g <= %g: %s\n", "total", rep.BudgetTotal, rep.Epsilon, verdict)
	if len(rep.Indicative) > 0 {
		appendf("  indicative terms (not summed into the budget):\n")
		for _, c := range rep.Indicative {
			appendf("    %-34s %.6g\n", c.Component+"/"+c.Term, c.Amount)
		}
	}
	if len(rep.Counters) > 0 {
		appendf("  counters:\n")
		for _, name := range sortedKeys(rep.Counters) {
			appendf("    %-34s %d\n", name, rep.Counters[name])
		}
	}
	if len(rep.Gauges) > 0 {
		appendf("  gauges:\n")
		for _, name := range sortedKeys(rep.Gauges) {
			appendf("    %-34s %g\n", name, rep.Gauges[name])
		}
	}
	if len(rep.Spans) > 0 {
		appendf("  spans:\n")
		for _, name := range sortedKeys(rep.Spans) {
			st := rep.Spans[name]
			appendf("    %-34s %d call(s), %v\n", name, st.Count, time.Duration(st.Nanos))
		}
	}
	return string(b)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
