package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderIsInert pins the disabled fast path: every operation on a
// nil recorder (and on the nil handles it returns) must be a no-op, since
// the numerical kernels thread the recorder unconditionally.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Charge("foxglynn", "left-tail", 1e-12)
	r.ChargeIndicative("discretise", "step", 0.5)
	r.Reset()
	c := r.Counter("memo.hits")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter must stay 0")
	}
	g := r.Gauge("foxglynn.window")
	g.Set(3)
	g.SetMax(7)
	if g.Value() != 0 {
		t.Error("nil gauge must stay 0")
	}
	r.StartSpan("sweep").End()
	if rep := r.Report(1e-9); rep != nil {
		t.Errorf("nil recorder must report nil, got %+v", rep)
	}
}

func TestLedgerMergesAndProvesBudget(t *testing.T) {
	r := New()
	r.Charge("foxglynn", "left-tail", 1e-12)
	r.Charge("foxglynn", "right-tail", 2e-12)
	r.Charge("foxglynn", "left-tail", 1e-12) // same term again: merged
	r.ChargeIndicative("discretise", "step", 1.0/32)

	rep := r.Report(1e-9)
	if len(rep.Budget) != 2 {
		t.Fatalf("want 2 merged bounded rows, got %d: %+v", len(rep.Budget), rep.Budget)
	}
	if rep.Budget[0].Term != "left-tail" || rep.Budget[0].Amount != 2e-12 {
		t.Errorf("merged left-tail row wrong: %+v", rep.Budget[0])
	}
	if want := 4e-12; rep.BudgetTotal != want {
		t.Errorf("budget total %g, want %g", rep.BudgetTotal, want)
	}
	if !rep.BudgetOK {
		t.Error("4e-12 <= 1e-9 must pass")
	}
	if len(rep.Indicative) != 1 || rep.Indicative[0].Component != "discretise" {
		t.Errorf("indicative rows: %+v", rep.Indicative)
	}
	if got := r.Report(1e-12); got.BudgetOK {
		t.Error("4e-12 <= 1e-12 must fail")
	}
	// An unconfigured epsilon proves nothing once charges exist.
	if got := r.Report(0); got.BudgetOK {
		t.Error("eps=0 with charges must not report BudgetOK")
	}
	if got := New().Report(0); !got.BudgetOK {
		t.Error("an empty ledger is trivially within any budget")
	}
}

func TestCountersGaugesSpans(t *testing.T) {
	r := New()
	c := r.Counter("sweep.products")
	c.Add(10)
	c.Inc()
	if r.Counter("sweep.products") != c {
		t.Error("counter handles must be stable per name")
	}
	g := r.Gauge("poisson.window")
	g.Set(5)
	g.SetMax(3) // lower: ignored
	g.SetMax(9)
	s := r.StartSpan("uniformise")
	time.Sleep(time.Millisecond)
	s.End()
	r.StartSpan("uniformise").End()

	rep := r.Report(0)
	if rep.Counters["sweep.products"] != 11 {
		t.Errorf("counter = %d, want 11", rep.Counters["sweep.products"])
	}
	if rep.Gauges["poisson.window"] != 9 {
		t.Errorf("gauge = %g, want 9", rep.Gauges["poisson.window"])
	}
	st := rep.Spans["uniformise"]
	if st.Count != 2 || st.Nanos <= 0 {
		t.Errorf("span stat = %+v", st)
	}
}

func TestResetKeepsHandlesValid(t *testing.T) {
	r := New()
	c := r.Counter("x")
	g := r.Gauge("y")
	c.Add(3)
	g.Set(4)
	r.Charge("a", "b", 1)
	r.StartSpan("s").End()
	r.Reset()
	rep := r.Report(1)
	if rep.BudgetTotal != 0 || len(rep.Spans) != 0 {
		t.Errorf("reset left state behind: %+v", rep)
	}
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("reset must zero existing handles")
	}
	c.Inc() // the hoisted handle keeps working after Reset
	if r.Report(1).Counters["x"] != 1 {
		t.Error("handle detached from the recorder by Reset")
	}
}

// TestConcurrentUse exercises every mutating entry point from many
// goroutines; run under -race (CI does) this is the race-cleanliness gate.
func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("width")
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.SetMax(float64(j))
				r.Charge("foxglynn", "right-tail", 1e-15)
				r.StartSpan("sweep").End()
			}
		}()
	}
	wg.Wait()
	rep := r.Report(1)
	if rep.Counters["hits"] != 8000 {
		t.Errorf("hits = %d, want 8000", rep.Counters["hits"])
	}
	if rep.Gauges["width"] != 999 {
		t.Errorf("width = %g, want 999", rep.Gauges["width"])
	}
	if got, want := rep.BudgetTotal, 8000*1e-15; math.Abs(got-want) > 1e-18 {
		t.Errorf("budget total = %g, want %g", got, want)
	}
	if rep.Spans["sweep"].Count != 8000 {
		t.Errorf("span count = %d, want 8000", rep.Spans["sweep"].Count)
	}
}

func TestReportJSONAndFormat(t *testing.T) {
	r := New()
	r.Charge("foxglynn", "left-tail", 1e-12)
	r.ChargeIndicative("erlang", "k-approximation", 0.0625)
	r.Counter("memo.hits").Add(4)
	rep := r.Report(1e-9)

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report must marshal: %v", err)
	}
	for _, want := range []string{`"budget_ok":true`, `"kind":"bounded"`, `"kind":"indicative"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%s", want, data)
		}
	}
	text := rep.Format()
	for _, want := range []string{"foxglynn/left-tail", "erlang/k-approximation", "OK", "memo.hits"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
}

func TestPublishExpvar(t *testing.T) {
	r := New()
	r.Charge("foxglynn", "right-tail", 1e-13)
	eps := 1e-9
	Publish("test.numerics", r, func() float64 { return eps })
	Publish("test.numerics", r, nil) // duplicate: must not panic
	v := expvar.Get("test.numerics")
	if v == nil {
		t.Fatal("expvar variable not published")
	}
	if got := v.String(); !strings.Contains(got, `"budget_ok":true`) {
		t.Errorf("expvar payload: %s", got)
	}
	var nilRec *Recorder
	Publish("test.numerics.nil", nilRec, nil)
	if expvar.Get("test.numerics.nil") != nil {
		t.Error("nil recorder must not publish")
	}
}
