package obs

import "expvar"

// Publish exposes the recorder's live report on the process-wide expvar
// registry under the given name, so long-running embedders get the
// numerics report over the standard /debug/vars endpoint for free. eps is
// evaluated per scrape, letting the budget verdict track the embedder's
// current accuracy setting. Publishing the same name twice is a no-op
// (expvar itself panics on duplicates); a nil recorder publishes nothing.
func Publish(name string, r *Recorder, eps func() float64) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		var e float64
		if eps != nil {
			e = eps()
		}
		return r.Report(e)
	}))
}
