package obs

import "sort"

// knownTerms is the canonical vocabulary of the error-budget ledger: every
// (component, term) pair the numerical procedures charge. The ledger itself
// accepts any strings — a Recorder must not lose a charge over a label —
// but the static `//numerics:truncates <component>/<term>` annotations are
// validated against this table by mrmlint's ledgercharge analyzer, so a
// typo in an annotation (or a new charge site minted without extending the
// vocabulary) is flagged instead of silently fragmenting the report.
var knownTerms = map[string]map[string]bool{
	"foxglynn": {
		"left-tail":  true, // Poisson mass truncated below the Fox–Glynn window
		"right-tail": true, // Poisson mass truncated above the window
	},
	"steady": {
		"tail-charge": true, // steady-state detection: remaining mass charged to the fixed point
	},
	"sericola": {
		"series-remainder": true, // occupation-time series mass past N_ε
		"clamp-residue":    true, // cancellation noise absorbed by the [0,1] clamp (indicative)
	},
	"core": {
		"rectangle-residue": true, // negative corner-difference residue clamped by untilRectangle (indicative)
	},
	"erlang": {
		"k-approximation": true, // Erlang-k phase-type approximation order (indicative)
	},
	"discretise": {
		"step": true, // O(d) discretisation term (indicative)
	},
	"truncation": {
		"state-drop": true, // probability mass of states dropped from the truncated forward sweep window
	},
}

// KnownTerm reports whether component/term is a canonical ledger label.
func KnownTerm(component, term string) bool {
	return knownTerms[component][term]
}

// KnownComponents returns the canonical component names, sorted.
func KnownComponents() []string {
	out := make([]string, 0, len(knownTerms))
	for c := range knownTerms {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// KnownTermsOf returns the canonical terms of a component, sorted (nil for
// an unknown component).
func KnownTermsOf(component string) []string {
	m := knownTerms[component]
	if m == nil {
		return nil
	}
	out := make([]string, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
