package numeric

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1 + 1e-11, 1e-12, false},
		{0, 0, 0, true},
		{-2, -2.5, 0.5, true},
		{inf, inf, 1e-9, true},
		{inf, -inf, 1e-9, false},
		{inf, 1e308, 1e308, false},
		{nan, nan, math.Inf(1), false},
		{nan, 1, 1, false},
		{1, nan, 1, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestLogFactorials(t *testing.T) {
	lf := LogFactorials(20)
	if len(lf) != 21 {
		t.Fatalf("len = %d, want 21", len(lf))
	}
	fact := 1.0
	for i := 1; i <= 20; i++ {
		fact *= float64(i)
		if math.Abs(lf[i]-math.Log(fact)) > 1e-9 {
			t.Errorf("lf[%d] = %v, want ln(%v) = %v", i, lf[i], fact, math.Log(fact))
		}
	}
	if LogFactorials(-1) != nil {
		t.Error("LogFactorials(-1) should be nil")
	}
}

func TestBinomialPMF(t *testing.T) {
	lf := LogFactorials(40)
	// Against direct evaluation for moderate n.
	binom := func(n, k int) float64 {
		c := 1.0
		for i := 0; i < k; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		return c
	}
	for _, x := range []float64{0.1, 0.5, 0.9} {
		for n := 0; n <= 12; n++ {
			for k := 0; k <= n; k++ {
				want := binom(n, k) * math.Pow(x, float64(k)) * math.Pow(1-x, float64(n-k))
				if got := BinomialPMF(lf, n, k, x); math.Abs(got-want) > 1e-12 {
					t.Fatalf("BinomialPMF(%d, %d, %v) = %v, want %v", n, k, x, got, want)
				}
			}
		}
	}
	// Degenerate probabilities are exact, and out-of-range k is 0.
	if got := BinomialPMF(lf, 5, 0, 0); got != 1 {
		t.Errorf("BinomialPMF(5, 0, x=0) = %v, want 1", got)
	}
	if got := BinomialPMF(lf, 5, 3, 0); got != 0 {
		t.Errorf("BinomialPMF(5, 3, x=0) = %v, want 0", got)
	}
	if got := BinomialPMF(lf, 5, 5, 1); got != 1 {
		t.Errorf("BinomialPMF(5, 5, x=1) = %v, want 1", got)
	}
	if got := BinomialPMF(lf, 5, 2, 1); got != 0 {
		t.Errorf("BinomialPMF(5, 2, x=1) = %v, want 0", got)
	}
	if got := BinomialPMF(lf, 5, -1, 0.5); got != 0 {
		t.Errorf("BinomialPMF(5, -1, 0.5) = %v, want 0", got)
	}
	if got := BinomialPMF(lf, 5, 6, 0.5); got != 0 {
		t.Errorf("BinomialPMF(5, 6, 0.5) = %v, want 0", got)
	}
}

func TestPoissonPMFTable(t *testing.T) {
	pmf, err := PoissonPMFTable(3.5, 60)
	if err != nil {
		t.Fatalf("PoissonPMFTable: %v", err)
	}
	total := 0.0
	for n := 0; n <= 60; n++ {
		got := pmf(n)
		if want := PoissonPMF(3.5, n); math.Abs(got-want) > 1e-14 {
			t.Errorf("pmf(%d) = %v, want %v", n, got, want)
		}
		total += got
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("pmf mass over [0,60] = %v, want ≈1", total)
	}
	if pmf(-1) != 0 || pmf(61) != 0 {
		t.Error("out-of-table arguments should return 0")
	}

	zero, err := PoissonPMFTable(0, 5)
	if err != nil {
		t.Fatalf("PoissonPMFTable(0): %v", err)
	}
	if zero(0) != 1 || zero(1) != 0 {
		t.Error("q=0 pmf should be a point mass at 0")
	}

	for _, q := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := PoissonPMFTable(q, 5); err == nil {
			t.Errorf("rate %v accepted", q)
		}
	}
	if _, err := PoissonPMFTable(1, -1); err == nil {
		t.Error("negative nMax accepted")
	}
}
