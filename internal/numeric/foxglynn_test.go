package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// poissonRef computes the Poisson pmf directly in log space.
func poissonRef(q float64, n int) float64 {
	lg, _ := math.Lgamma(float64(n) + 1)
	return math.Exp(-q + float64(n)*math.Log(q) - lg)
}

func TestFoxGlynnSmallRates(t *testing.T) {
	for _, q := range []float64{0.1, 1, 5, 20, 24.9} {
		w, err := FoxGlynn(q, 1e-12)
		if err != nil {
			t.Fatalf("FoxGlynn(%v): %v", q, err)
		}
		// Weights must match the true pmf pointwise.
		for i := w.Left; i <= w.Right; i++ {
			ref := poissonRef(q, i)
			if got := w.Weight(i); math.Abs(got-ref) > 1e-12*(1+ref) {
				t.Errorf("q=%v: weight(%d) = %v, want %v", q, i, got, ref)
			}
		}
		// Total truncated mass ≥ 1 - eps.
		var mass float64
		for i := w.Left; i <= w.Right; i++ {
			mass += w.Weight(i)
		}
		if mass < 1-1e-10 || mass > 1+1e-10 {
			t.Errorf("q=%v: normalised mass = %v", q, mass)
		}
	}
}

func TestFoxGlynnLargeRates(t *testing.T) {
	for _, q := range []float64{25, 100, 468, 5000, 1e5} {
		w, err := FoxGlynn(q, 1e-10)
		if err != nil {
			t.Fatalf("FoxGlynn(%v): %v", q, err)
		}
		if w.Left < 0 || w.Right <= w.Left {
			t.Fatalf("q=%v: bad window [%d,%d]", q, w.Left, w.Right)
		}
		// The window must contain the mode and hold ≈ all the mass.
		mode := int(q)
		if mode < w.Left || mode > w.Right {
			t.Errorf("q=%v: mode %d outside window [%d,%d]", q, mode, w.Left, w.Right)
		}
		// Compare a few weights around the mode to the reference pmf.
		for _, i := range []int{mode - 1, mode, mode + 1} {
			ref := poissonRef(q, i)
			if got := w.Weight(i); math.Abs(got-ref)/ref > 1e-8 {
				t.Errorf("q=%v: weight(%d) relative error %v", q, i, math.Abs(got-ref)/ref)
			}
		}
		// Window width should be O(sqrt q), not O(q).
		if width := w.Right - w.Left; float64(width) > 30*math.Sqrt(q)+40 {
			t.Errorf("q=%v: window width %d too large", q, width)
		}
	}
}

func TestFoxGlynnRejectsBadInput(t *testing.T) {
	if _, err := FoxGlynn(-1, 1e-6); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := FoxGlynn(math.NaN(), 1e-6); err == nil {
		t.Error("NaN rate accepted")
	}
	if _, err := FoxGlynn(1, 0); err == nil {
		t.Error("zero accuracy accepted")
	}
	if _, err := FoxGlynn(1, 1.5); err == nil {
		t.Error("accuracy > 1 accepted")
	}
}

func TestFoxGlynnZeroRate(t *testing.T) {
	w, err := FoxGlynn(0, 1e-6)
	if err != nil {
		t.Fatalf("FoxGlynn(0): %v", err)
	}
	if w.Weight(0) != 1 || w.Weight(1) != 0 {
		t.Errorf("degenerate weights wrong: %v, %v", w.Weight(0), w.Weight(1))
	}
}

func TestWeightOutsideWindowIsZero(t *testing.T) {
	w, err := FoxGlynn(100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if w.Weight(w.Left-1) != 0 || w.Weight(w.Right+1) != 0 {
		t.Error("weights outside the truncation window must be zero")
	}
}

func TestPoissonTruncation(t *testing.T) {
	// The paper's Table 2 N-column: λt = 19.5·24 = 468.
	rows := []struct {
		eps  float64
		want int
	}{
		{1e-1, 496}, {1e-2, 519}, {1e-3, 536}, {1e-4, 551},
		{1e-5, 563}, {1e-6, 574}, {1e-7, 585}, {1e-8, 594},
	}
	for _, row := range rows {
		got, err := PoissonTruncation(468, row.eps)
		if err != nil {
			t.Fatalf("PoissonTruncation(468, %v): %v", row.eps, err)
		}
		if got != row.want {
			t.Errorf("N(468, %.0e) = %d, paper Table 2 says %d", row.eps, got, row.want)
		}
	}
}

func TestPoissonTruncationProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := rng.Float64() * 200
		n, err := PoissonTruncation(q, 1e-6)
		if err != nil {
			return false
		}
		// Cumulative mass up to n must reach 1-eps; up to n-1 must not.
		var cum float64
		for i := 0; i <= n; i++ {
			cum += poissonRef(q, i)
		}
		if cum < 1-1e-6-1e-12 {
			return false
		}
		if n > 0 {
			cum -= poissonRef(q, n)
			if cum >= 1-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPoissonPMF(t *testing.T) {
	if got := PoissonPMF(0, 0); got != 1 {
		t.Errorf("PMF(0,0) = %v, want 1", got)
	}
	if got := PoissonPMF(0, 3); got != 0 {
		t.Errorf("PMF(0,3) = %v, want 0", got)
	}
	if got, want := PoissonPMF(2, 2), 2*math.Exp(-2); math.Abs(got-want) > 1e-15 {
		t.Errorf("PMF(2,2) = %v, want %v", got, want)
	}
}
