package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// poissonRef computes the Poisson pmf directly in log space.
func poissonRef(q float64, n int) float64 {
	lg, _ := math.Lgamma(float64(n) + 1)
	return math.Exp(-q + float64(n)*math.Log(q) - lg)
}

func TestFoxGlynnSmallRates(t *testing.T) {
	for _, q := range []float64{0.1, 1, 5, 20, 24.9} {
		w, err := FoxGlynn(q, 1e-12)
		if err != nil {
			t.Fatalf("FoxGlynn(%v): %v", q, err)
		}
		// Weights must match the true pmf pointwise.
		for i := w.Left; i <= w.Right; i++ {
			ref := poissonRef(q, i)
			if got := w.Weight(i); math.Abs(got-ref) > 1e-12*(1+ref) {
				t.Errorf("q=%v: weight(%d) = %v, want %v", q, i, got, ref)
			}
		}
		// Total truncated mass ≥ 1 - eps.
		var mass float64
		for i := w.Left; i <= w.Right; i++ {
			mass += w.Weight(i)
		}
		if mass < 1-1e-10 || mass > 1+1e-10 {
			t.Errorf("q=%v: normalised mass = %v", q, mass)
		}
	}
}

func TestFoxGlynnLargeRates(t *testing.T) {
	for _, q := range []float64{25, 100, 468, 5000, 1e5} {
		w, err := FoxGlynn(q, 1e-10)
		if err != nil {
			t.Fatalf("FoxGlynn(%v): %v", q, err)
		}
		if w.Left < 0 || w.Right <= w.Left {
			t.Fatalf("q=%v: bad window [%d,%d]", q, w.Left, w.Right)
		}
		// The window must contain the mode and hold ≈ all the mass.
		mode := int(q)
		if mode < w.Left || mode > w.Right {
			t.Errorf("q=%v: mode %d outside window [%d,%d]", q, mode, w.Left, w.Right)
		}
		// Compare a few weights around the mode to the reference pmf.
		for _, i := range []int{mode - 1, mode, mode + 1} {
			ref := poissonRef(q, i)
			if got := w.Weight(i); math.Abs(got-ref)/ref > 1e-8 {
				t.Errorf("q=%v: weight(%d) relative error %v", q, i, math.Abs(got-ref)/ref)
			}
		}
		// Window width should be O(sqrt q), not O(q).
		if width := w.Right - w.Left; float64(width) > 30*math.Sqrt(q)+40 {
			t.Errorf("q=%v: window width %d too large", q, width)
		}
	}
}

// TestFoxGlynnSmallCumulativeTail is the regression test for the per-term
// truncation bug: the historical small-rate path cut both walks at the
// first term below eps/4, but near q ≈ 25 consecutive terms shrink by only
// ~q/(q+1), so the *cumulative* dropped mass exceeded the advertised eps/2
// per side (at q = 20..24.9 with eps = 1e-1/1e-2 the true tail outside the
// window reached several times eps). The fix truncates on accumulated
// mass, which this test asserts directly against the exact pmf.
func TestFoxGlynnSmallCumulativeTail(t *testing.T) {
	for _, q := range []float64{1, 5, 20, 24.9} {
		for _, eps := range []float64{1e-1, 1e-2, 1e-4, 1e-8, 1e-12} {
			w, err := FoxGlynn(q, eps)
			if err != nil {
				t.Fatalf("FoxGlynn(%v, %v): %v", q, eps, err)
			}
			var kept float64
			for i := w.Left; i <= w.Right; i++ {
				kept += poissonRef(q, i)
			}
			// The mass truly outside [Left, Right] must fit in eps (eps/2
			// per side); 1e-13 absorbs the reference summation rounding.
			if tail := 1 - kept; tail > eps+1e-13 {
				t.Errorf("q=%v eps=%v: true mass outside window [%d,%d] is %g > eps",
					q, eps, w.Left, w.Right, tail)
			}
			// The ledgered per-side masses must bound the true tails and
			// respect the per-side budget.
			if w.LeftTailMass > eps/2 || w.RightTailMass > eps/2 {
				t.Errorf("q=%v eps=%v: ledgered tails %g/%g exceed eps/2",
					q, eps, w.LeftTailMass, w.RightTailMass)
			}
			var lo float64
			for i := 0; i < w.Left; i++ {
				lo += poissonRef(q, i)
			}
			if lo > w.LeftTailMass+1e-13 {
				t.Errorf("q=%v eps=%v: true left tail %g exceeds ledgered %g",
					q, eps, lo, w.LeftTailMass)
			}
			if hi := 1 - kept - lo; hi > w.RightTailMass+1e-13 {
				t.Errorf("q=%v eps=%v: true right tail %g exceeds ledgered %g",
					q, eps, hi, w.RightTailMass)
			}
		}
	}
}

// TestFoxGlynnBoundaryContinuity pins the small/large hand-off at q = 25:
// both paths must reproduce the exact pmf at their own rate on the shared
// support, the large path's left truncation must clamp at 0 (for q just
// above 25 the finder's mode − k·√q − 1.5 is negative), and the two
// windows may not drift apart by more than the pmf's own sensitivity to
// the 2e-6 rate difference.
func TestFoxGlynnBoundaryContinuity(t *testing.T) {
	const eps = 1e-12
	qLo, qHi := 25-1e-6, 25+1e-6
	lo, err := FoxGlynn(qLo, eps) // small-rate path
	if err != nil {
		t.Fatal(err)
	}
	hi, err := FoxGlynn(qHi, eps) // large-rate path
	if err != nil {
		t.Fatal(err)
	}
	if hi.Left != 0 {
		t.Errorf("large path at q=%v: left = %d, want the 0 clamp", qHi, hi.Left)
	}
	if hi.LeftTailMass != 0 {
		t.Errorf("clamped left truncation must ledger zero mass, got %g", hi.LeftTailMass)
	}
	from, to := lo.Left, lo.Right
	if hi.Left > from {
		from = hi.Left
	}
	if hi.Right < to {
		to = hi.Right
	}
	if to-from < 20 {
		t.Fatalf("shared support [%d,%d] suspiciously narrow (windows [%d,%d] and [%d,%d])",
			from, to, lo.Left, lo.Right, hi.Left, hi.Right)
	}
	for i := from; i <= to; i++ {
		refLo, refHi := poissonRef(qLo, i), poissonRef(qHi, i)
		if d := math.Abs(lo.Weight(i) - refLo); d > 1e-12*(1+refLo) {
			t.Errorf("small path weight(%d) off by %g", i, d)
		}
		if d := math.Abs(hi.Weight(i) - refHi); d > 1e-12*(1+refHi) {
			t.Errorf("large path weight(%d) off by %g", i, d)
		}
		// Cross-path continuity: the pmf itself moves by O(Δq·|i−q|/q·pmf)
		// ≈ 1e-7 at most across the 2e-6 rate gap; 1e-6 gives slack.
		if d := math.Abs(lo.Weight(i) - hi.Weight(i)); d > 1e-6 {
			t.Errorf("paths disagree at %d by %g across the q=25 boundary", i, d)
		}
	}
}

func TestFoxGlynnRejectsBadInput(t *testing.T) {
	if _, err := FoxGlynn(-1, 1e-6); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := FoxGlynn(math.NaN(), 1e-6); err == nil {
		t.Error("NaN rate accepted")
	}
	if _, err := FoxGlynn(1, 0); err == nil {
		t.Error("zero accuracy accepted")
	}
	if _, err := FoxGlynn(1, 1.5); err == nil {
		t.Error("accuracy > 1 accepted")
	}
}

func TestFoxGlynnZeroRate(t *testing.T) {
	w, err := FoxGlynn(0, 1e-6)
	if err != nil {
		t.Fatalf("FoxGlynn(0): %v", err)
	}
	if w.Weight(0) != 1 || w.Weight(1) != 0 {
		t.Errorf("degenerate weights wrong: %v, %v", w.Weight(0), w.Weight(1))
	}
}

func TestWeightOutsideWindowIsZero(t *testing.T) {
	w, err := FoxGlynn(100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if w.Weight(w.Left-1) != 0 || w.Weight(w.Right+1) != 0 {
		t.Error("weights outside the truncation window must be zero")
	}
}

func TestPoissonTruncation(t *testing.T) {
	// The paper's Table 2 N-column: λt = 19.5·24 = 468.
	rows := []struct {
		eps  float64
		want int
	}{
		{1e-1, 496}, {1e-2, 519}, {1e-3, 536}, {1e-4, 551},
		{1e-5, 563}, {1e-6, 574}, {1e-7, 585}, {1e-8, 594},
	}
	for _, row := range rows {
		got, err := PoissonTruncation(468, row.eps)
		if err != nil {
			t.Fatalf("PoissonTruncation(468, %v): %v", row.eps, err)
		}
		if got != row.want {
			t.Errorf("N(468, %.0e) = %d, paper Table 2 says %d", row.eps, got, row.want)
		}
	}
}

func TestPoissonTruncationProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := rng.Float64() * 200
		n, err := PoissonTruncation(q, 1e-6)
		if err != nil {
			return false
		}
		// Cumulative mass up to n must reach 1-eps; up to n-1 must not.
		var cum float64
		for i := 0; i <= n; i++ {
			cum += poissonRef(q, i)
		}
		if cum < 1-1e-6-1e-12 {
			return false
		}
		if n > 0 {
			cum -= poissonRef(q, n)
			if cum >= 1-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPoissonPMF(t *testing.T) {
	if got := PoissonPMF(0, 0); got != 1 {
		t.Errorf("PMF(0,0) = %v, want 1", got)
	}
	if got := PoissonPMF(0, 3); got != 0 {
		t.Errorf("PMF(0,3) = %v, want 0", got)
	}
	if got, want := PoissonPMF(2, 2), 2*math.Exp(-2); math.Abs(got-want) > 1e-15 {
		t.Errorf("PMF(2,2) = %v, want %v", got, want)
	}
}
