package numeric

import (
	"fmt"
	"math"
)

// This file holds the sanctioned log-space probability helpers. The
// expunderflow analyzer (internal/lint) flags hand-rolled exp/log pmf
// terms everywhere else in the module and points here: Poisson and
// binomial terms underflow long before their normalised sums do, so they
// are computed as exp of a log-domain sum in exactly one place.

// ApproxEqual reports whether a and b agree to within tol (absolute).
// NaN compares unequal to everything, including itself; infinities are
// equal only to themselves. This is the approved comparison for computed
// floating-point quantities — the floatcmp analyzer flags naked ==/!=.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

// LogFactorials returns the table lf with lf[i] = ln(i!) for 0 ≤ i ≤ n,
// built by the stable running sum lf[i] = lf[i-1] + ln(i).
//
//numerics:domain log
func LogFactorials(n int) []float64 {
	if n < 0 {
		return nil
	}
	lf := make([]float64, n+1)
	for i := 2; i <= n; i++ {
		lf[i] = lf[i-1] + math.Log(float64(i))
	}
	return lf
}

// BinomialPMF returns C(n,k)·x^k·(1-x)^(n-k), evaluated in log space so
// that deep tails underflow gracefully to 0 instead of polluting sums with
// Inf/NaN. lf must hold log-factorials at least up to n (LogFactorials).
// The degenerate success probabilities 0 and 1 short-circuit exactly.
//
//numerics:domain prob lf=log x=prob
func BinomialPMF(lf []float64, n, k int, x float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	switch {
	case x == 0:
		if k == 0 {
			return 1
		}
		return 0
	//lint:ignore floatcmp degenerate success probability is set exactly by callers; the general branch handles x in (0,1)
	case x == 1:
		if k == n {
			return 1
		}
		return 0
	}
	//lint:ignore probrange the exponent is the log of a binomial mass, hence <= 0, so Exp stays in [0,1]; interval analysis cannot bound a log-space exponent
	return math.Exp(lf[n] - lf[k] - lf[n-k] +
		float64(k)*math.Log(x) + float64(n-k)*math.Log1p(-x))
}

// BinomialRow fills dst[k] = BinomialPMF(lf, n, k, x) for 0 ≤ k ≤ n. Entry
// for entry it evaluates the identical log-domain expression as
// BinomialPMF — results are bitwise equal — but hoists log(x) and
// log1p(-x) out of the loop, which matters to callers that need whole rows
// per uniformisation level (the Sericola recursion evaluates O(N²) terms).
//
//numerics:domain lf=log x=prob dst=prob
func BinomialRow(lf []float64, n int, x float64, dst []float64) {
	//lint:ignore floatcmp degenerate success probability is set exactly by callers; the general branch handles x in (0,1)
	if x == 0 || x == 1 {
		for k := 0; k <= n; k++ {
			dst[k] = BinomialPMF(lf, n, k, x)
		}
		return
	}
	lx, l1x := math.Log(x), math.Log1p(-x)
	for k := 0; k <= n; k++ {
		dst[k] = math.Exp(lf[n] - lf[k] - lf[n-k] +
			float64(k)*lx + float64(n-k)*l1x)
	}
}

// PoissonPMFTable returns pmf(n) = e^{-q}·q^n/n! for 0 ≤ n ≤ nMax as a
// closure over a precomputed log-factorial table and cached ln(q) — the
// per-call cost on hot uniformisation loops is one Exp. Arguments outside
// the table range return 0.
//
//numerics:domain q=rate
func PoissonPMFTable(q float64, nMax int) (func(n int) float64, error) {
	if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return nil, fmt.Errorf("numeric: PoissonPMFTable rate %v out of range", q)
	}
	if nMax < 0 {
		return nil, fmt.Errorf("numeric: PoissonPMFTable nMax %d out of range", nMax)
	}
	if q == 0 {
		return func(n int) float64 {
			if n == 0 {
				return 1
			}
			return 0
		}, nil
	}
	lf := LogFactorials(nMax)
	logQ := math.Log(q)
	return func(n int) float64 {
		if n < 0 || n > nMax {
			return 0
		}
		return math.Exp(-q + float64(n)*logQ - lf[n])
	}, nil
}
