package numeric

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/performability/csrl/internal/sparse"
)

func mustCSR(t *testing.T, n int, ts []sparse.Triplet) *sparse.CSR {
	t.Helper()
	m, err := sparse.NewFromTriplets(n, ts)
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	return m
}

// The fixed-point system of a simple random walk: from state 0, reach the
// right end (prob contributes to b) with p=0.5 or bounce left.
func TestSolveGaussSeidelGamblersRuin(t *testing.T) {
	// States 0..3 internal; absorbing win/lose folded into b. Fair coin.
	// x_i = 0.5 x_{i-1} + 0.5 x_{i+1}, x_{-1}=0 (lose), x_4=1 (win).
	n := 4
	var ts []sparse.Triplet
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			ts = append(ts, sparse.Triplet{Row: i, Col: i - 1, Val: 0.5})
		}
		if i < n-1 {
			ts = append(ts, sparse.Triplet{Row: i, Col: i + 1, Val: 0.5})
		} else {
			b[i] = 0.5
		}
	}
	a := mustCSR(t, n, ts)
	x, err := SolveGaussSeidel(a, b, DefaultSolveOptions())
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	for i := 0; i < n; i++ {
		want := float64(i+1) / 5 // classical gambler's ruin
		if math.Abs(x[i]-want) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
}

func TestJacobiMatchesGaussSeidel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		var ts []sparse.Triplet
		b := make([]float64, n)
		// Random substochastic matrix with leak, so (I-A) is an M-matrix.
		for i := 0; i < n; i++ {
			remaining := 0.9 * rng.Float64()
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.5 {
					w := remaining * rng.Float64()
					remaining -= w
					if w > 0 && i != j {
						ts = append(ts, sparse.Triplet{Row: i, Col: j, Val: w})
					}
				}
			}
			b[i] = rng.Float64()
		}
		a, err := sparse.NewFromTriplets(n, ts)
		if err != nil {
			return false
		}
		x1, err1 := SolveGaussSeidel(a, b, DefaultSolveOptions())
		x2, err2 := SolveJacobi(a, b, DefaultSolveOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		return sparse.MaxDiff(x1, x2) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveRejectsBadRHS(t *testing.T) {
	a := mustCSR(t, 2, nil)
	if _, err := SolveGaussSeidel(a, []float64{1}, DefaultSolveOptions()); err == nil {
		t.Error("length mismatch accepted by Gauss-Seidel")
	}
	if _, err := SolveJacobi(a, []float64{1}, DefaultSolveOptions()); err == nil {
		t.Error("length mismatch accepted by Jacobi")
	}
}

func TestSolveNoConvergence(t *testing.T) {
	// x = x + 1 never converges: A = I (diagonal 1 → treated as fixed rows),
	// so instead use a slowly mixing chain with a tiny iteration budget.
	a := mustCSR(t, 2, []sparse.Triplet{
		{Row: 0, Col: 1, Val: 0.999999},
		{Row: 1, Col: 0, Val: 0.999999},
	})
	opts := SolveOptions{Tolerance: 1e-15, MaxIterations: 3}
	if _, err := SolveGaussSeidel(a, []float64{1, 1}, opts); !errors.Is(err, ErrNoConvergence) {
		t.Errorf("want ErrNoConvergence, got %v", err)
	}
}

func TestSolveToleranceDefaults(t *testing.T) {
	// Zero and negative tolerances fall back to the conservative default
	// instead of looping forever (tol 0 can never be undercut) or
	// accepting the first iterate (negative tol).
	a := mustCSR(t, 2, []sparse.Triplet{
		{Row: 0, Col: 1, Val: 0.5},
		{Row: 1, Col: 0, Val: 0.5},
	})
	b := []float64{0.5, 0.5}
	want := []float64{1, 1} // x = 0.5x' + 0.5 with symmetry → x = 1
	for _, tol := range []float64{0, -1, math.Inf(-1)} {
		for name, solve := range map[string]func(*sparse.CSR, []float64, SolveOptions) ([]float64, error){
			"GaussSeidel": SolveGaussSeidel,
			"Jacobi":      SolveJacobi,
		} {
			x, err := solve(a, b, SolveOptions{Tolerance: tol})
			if err != nil {
				t.Fatalf("%s tol=%v: %v", name, tol, err)
			}
			if sparse.MaxDiff(x, want) > 1e-9 {
				t.Errorf("%s tol=%v: x = %v, want %v", name, tol, x, want)
			}
		}
	}
}

func TestSolveIterationCap(t *testing.T) {
	// Both solvers must surface ErrNoConvergence (wrapped, so errors.Is)
	// when the cap is too small, rather than returning the stale iterate.
	a := mustCSR(t, 2, []sparse.Triplet{
		{Row: 0, Col: 1, Val: 0.999999},
		{Row: 1, Col: 0, Val: 0.999999},
	})
	opts := SolveOptions{Tolerance: 1e-15, MaxIterations: 2}
	if _, err := SolveGaussSeidel(a, []float64{1, 1}, opts); !errors.Is(err, ErrNoConvergence) {
		t.Errorf("Gauss-Seidel: want ErrNoConvergence, got %v", err)
	}
	if _, err := SolveJacobi(a, []float64{1, 1}, opts); !errors.Is(err, ErrNoConvergence) {
		t.Errorf("Jacobi: want ErrNoConvergence, got %v", err)
	}
}

func TestSOROmegaValidation(t *testing.T) {
	a := mustCSR(t, 2, []sparse.Triplet{
		{Row: 0, Col: 1, Val: 0.5},
		{Row: 1, Col: 0, Val: 0.5},
	})
	b := []float64{0.5, 0.5}
	for _, omega := range []float64{-0.5, 2, 2.5, math.NaN()} {
		if _, err := SolveGaussSeidel(a, b, SolveOptions{Omega: omega}); err == nil {
			t.Errorf("Omega=%v accepted; want error", omega)
		} else if errors.Is(err, ErrNoConvergence) {
			t.Errorf("Omega=%v reported as non-convergence instead of a parameter error: %v", omega, err)
		}
	}
	// In-range relaxation factors still solve the system, and Omega = 0
	// keeps its backward-compatible meaning "default to Gauss-Seidel".
	for _, omega := range []float64{0, 0.5, 1, 1.5, 1.9} {
		x, err := SolveGaussSeidel(a, b, SolveOptions{Omega: omega})
		if err != nil {
			t.Fatalf("Omega=%v: %v", omega, err)
		}
		if sparse.MaxDiff(x, []float64{1, 1}) > 1e-9 {
			t.Errorf("Omega=%v: x = %v, want [1 1]", omega, x)
		}
	}
}

func TestGaussianEliminate(t *testing.T) {
	m := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	rhs := []float64{8, -11, -3}
	x, err := GaussianEliminate(m, rhs)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestGaussianEliminateSingular(t *testing.T) {
	m := [][]float64{{1, 1}, {2, 2}}
	if _, err := GaussianEliminate(m, []float64{1, 2}); err == nil {
		t.Error("singular matrix accepted")
	}
}

func TestGaussianEliminateNeedsPivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	m := [][]float64{{0, 1}, {1, 0}}
	x, err := GaussianEliminate(m, []float64{3, 4})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if x[0] != 4 || x[1] != 3 {
		t.Errorf("x = %v, want [4 3]", x)
	}
}

func TestPowerIteration(t *testing.T) {
	// Two-state chain with P = [[0.5,0.5],[0.25,0.75]]: stationary (1/3, 2/3).
	p := mustCSR(t, 2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 0.5}, {Row: 0, Col: 1, Val: 0.5},
		{Row: 1, Col: 0, Val: 0.25}, {Row: 1, Col: 1, Val: 0.75},
	})
	pi, err := PowerIteration(p, SolveOptions{})
	if err != nil {
		t.Fatalf("power iteration: %v", err)
	}
	if math.Abs(pi[0]-1.0/3) > 1e-9 || math.Abs(pi[1]-2.0/3) > 1e-9 {
		t.Errorf("pi = %v, want [1/3 2/3]", pi)
	}
}

func TestPowerIterationPeriodicChain(t *testing.T) {
	// A strictly periodic chain only converges thanks to damping.
	p := mustCSR(t, 2, []sparse.Triplet{
		{Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1},
	})
	pi, err := PowerIteration(p, SolveOptions{})
	if err != nil {
		t.Fatalf("power iteration: %v", err)
	}
	if math.Abs(pi[0]-0.5) > 1e-9 {
		t.Errorf("pi = %v, want [0.5 0.5]", pi)
	}
}
