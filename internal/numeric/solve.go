package numeric

import (
	"errors"
	"fmt"
	"math"

	"github.com/performability/csrl/internal/sparse"
)

// Solver options for the iterative linear solvers.
type SolveOptions struct {
	// Tolerance on the max-norm difference between successive iterates.
	Tolerance float64
	// MaxIterations bounds the iteration count.
	MaxIterations int
	// Omega is the SOR relaxation factor; 1 means plain Gauss–Seidel.
	Omega float64
}

// DefaultSolveOptions returns conservative defaults suitable for the
// well-conditioned systems arising in probabilistic model checking.
func DefaultSolveOptions() SolveOptions {
	return SolveOptions{Tolerance: 1e-12, MaxIterations: 100_000, Omega: 1}
}

// ErrNoConvergence reports that an iterative method hit its iteration cap.
var ErrNoConvergence = errors.New("numeric: iterative solver did not converge")

// SolveGaussSeidel solves (I - A)·x = b by Gauss–Seidel / SOR sweeps, the
// standard fixed-point form for unbounded-until probabilities
// (x = A·x + b with A substochastic). A's diagonal entries must be < 1.
func SolveGaussSeidel(a *sparse.CSR, b []float64, opts SolveOptions) ([]float64, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, fmt.Errorf("numeric: rhs length %d for %d×%d system", len(b), n, n)
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-12
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 100_000
	}
	if opts.Omega == 0 {
		opts.Omega = 1
	}
	// SOR diverges outside the classical relaxation window (0, 2); reject
	// (NaN included) instead of iterating to the cap on a divergent sweep.
	if !(opts.Omega > 0 && opts.Omega < 2) {
		return nil, fmt.Errorf("numeric: SOR relaxation factor Omega=%v outside (0, 2)", opts.Omega)
	}
	x := make([]float64, n)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		var maxDelta float64
		for i := 0; i < n; i++ {
			var sum, diag float64
			a.Row(i, func(j int, v float64) {
				if j == i {
					diag = v
					return
				}
				sum += v * x[j]
			})
			denom := 1 - diag
			if denom <= 0 {
				// A absorbing row with self-loop probability 1 contributes
				// x_i = 0 in until systems; treat as fixed.
				continue
			}
			newXi := (b[i] + sum) / denom
			newXi = x[i] + opts.Omega*(newXi-x[i])
			if d := math.Abs(newXi - x[i]); d > maxDelta {
				maxDelta = d
			}
			x[i] = newXi
		}
		if maxDelta < opts.Tolerance {
			return x, nil
		}
	}
	return nil, fmt.Errorf("%w: Gauss-Seidel after %d iterations", ErrNoConvergence, opts.MaxIterations)
}

// SolveJacobi solves (I - A)·x = b by Jacobi iteration. Slower than
// Gauss–Seidel but embarrassingly simple; kept for cross-checking and as an
// ablation baseline.
func SolveJacobi(a *sparse.CSR, b []float64, opts SolveOptions) ([]float64, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, fmt.Errorf("numeric: rhs length %d for %d×%d system", len(b), n, n)
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-12
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 200_000
	}
	x := make([]float64, n)
	next := make([]float64, n)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		for i := 0; i < n; i++ {
			var sum, diag float64
			a.Row(i, func(j int, v float64) {
				if j == i {
					diag = v
					return
				}
				sum += v * x[j]
			})
			denom := 1 - diag
			if denom <= 0 {
				next[i] = x[i]
				continue
			}
			next[i] = (b[i] + sum) / denom
		}
		if sparse.MaxDiff(x, next) < opts.Tolerance {
			return next, nil
		}
		x, next = next, x
	}
	return nil, fmt.Errorf("%w: Jacobi after %d iterations", ErrNoConvergence, opts.MaxIterations)
}

// GaussianEliminate solves the dense linear system M·x = rhs by Gaussian
// elimination with partial pivoting. Used for small systems (stationary
// distributions of BSCCs) where direct solution beats iteration.
// M is modified in place.
func GaussianEliminate(m [][]float64, rhs []float64) ([]float64, error) {
	n := len(m)
	if len(rhs) != n {
		return nil, fmt.Errorf("numeric: rhs length %d for %d×%d system", len(rhs), n, n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-300 {
			return nil, fmt.Errorf("numeric: singular matrix at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			m[r][col] = 0
			for c := col + 1; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// PowerIteration computes the stationary distribution of an irreducible
// stochastic matrix P (row-stochastic) by repeated multiplication π ← π·P
// with aperiodicity enforced through damping: π ← π·((1-θ)I + θP).
func PowerIteration(p *sparse.CSR, opts SolveOptions) ([]float64, error) {
	n := p.Dim()
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-13
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 1_000_000
	}
	const theta = 0.75
	pi := make([]float64, n)
	next := make([]float64, n)
	sparse.Fill(pi, 1/float64(n))
	for iter := 0; iter < opts.MaxIterations; iter++ {
		p.MulVecT(next, pi)
		for i := range next {
			next[i] = (1-theta)*pi[i] + theta*next[i]
		}
		if sparse.MaxDiff(pi, next) < opts.Tolerance {
			// Normalise defensively against drift.
			s := sparse.Sum(next)
			sparse.Scale(1/s, next)
			return next, nil
		}
		pi, next = next, pi
	}
	return nil, fmt.Errorf("%w: power iteration after %d iterations", ErrNoConvergence, opts.MaxIterations)
}
