// Package numeric provides the numerical kernels used by the model-checking
// procedures: Fox–Glynn Poisson weight computation for uniformisation,
// iterative linear solvers, and small utilities.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// PoissonWeights holds truncated, normalised Poisson probabilities as
// produced by FoxGlynn. Weight(i) ≈ e^{-λ}·λ^i/i! for Left ≤ i ≤ Right and
// the total mass outside [Left, Right] is below the requested accuracy.
type PoissonWeights struct {
	Left, Right int
	// W[i-Left] is the unnormalised weight of i; divide by TotalWeight.
	W           []float64
	TotalWeight float64
	// LeftTailMass and RightTailMass bound the true Poisson mass truncated
	// away below Left and above Right. The small-rate path records the
	// exactly accumulated dropped sums; the large-rate path records the
	// Chernoff-style finder bounds it selected the truncation points with.
	// Each is ≤ eps/2 by construction, so their sum is the Fox–Glynn
	// contribution to an error-budget ledger.
	LeftTailMass, RightTailMass float64
}

// Weight returns the normalised Poisson probability of i, or 0 outside the
// truncation window.
//
//numerics:domain prob
func (p *PoissonWeights) Weight(i int) float64 {
	if i < p.Left || i > p.Right {
		return 0
	}
	return p.W[i-p.Left] / p.TotalWeight
}

// ErrAccuracy reports that the requested accuracy cannot be met.
var ErrAccuracy = errors.New("numeric: unachievable accuracy")

// FoxGlynn computes truncated Poisson probabilities for rate q ≥ 0 with total
// truncation error at most eps, following Fox & Glynn, "Computing Poisson
// probabilities", CACM 31(4), 1988. The weights are scaled to avoid
// underflow; normalise by TotalWeight.
//
//numerics:truncates foxglynn/left-tail foxglynn/right-tail
func FoxGlynn(q, eps float64) (*PoissonWeights, error) {
	switch {
	case math.IsNaN(q) || q < 0:
		return nil, fmt.Errorf("numeric: FoxGlynn rate %v out of range", q)
	case eps <= 0 || eps >= 1:
		return nil, fmt.Errorf("numeric: FoxGlynn accuracy %v out of range", eps)
	}
	if q == 0 {
		return &PoissonWeights{Left: 0, Right: 0, W: []float64{1}, TotalWeight: 1}, nil
	}
	if q < 25 {
		// Small rates: direct stable computation in log space; e^{-q} does
		// not underflow and the simple recurrence is accurate.
		return foxGlynnSmall(q, eps)
	}
	return foxGlynnLarge(q, eps)
}

func foxGlynnSmall(q, eps float64) (*PoissonWeights, error) {
	// Truncate on *cumulative* dropped mass, eps/2 per side. A per-term
	// threshold (the historical p < eps/4 test) is wrong here: near q ≈ 25
	// consecutive terms shrink by only ~q/(q+1) per step, so dozens of
	// just-under-threshold terms could jointly exceed the advertised eps/2.
	// For q < 25 the mode is small, so linear scans are cheap.
	mode := int(q)
	logP := -q + float64(mode)*math.Log(q) - logFactorial(mode)
	pMode := math.Exp(logP)

	// Left truncation: pmf(0..mode) by downward recurrence from the mode,
	// then drop the longest low prefix whose summed mass fits in eps/2.
	low := make([]float64, mode+1)
	low[mode] = pMode
	for i := mode - 1; i >= 0; i-- {
		low[i] = low[i+1] * float64(i+1) / q
	}
	left := 0
	var leftMass float64
	for left < mode {
		if leftMass+low[left] > eps/2 {
			break
		}
		leftMass += low[left]
		left++
	}
	// Right truncation: extend until the total accumulated mass — kept
	// window plus the dropped left prefix — leaves a true upper tail of at
	// most eps/2. The ascending sum over the left prefix plus the kept
	// terms keeps the bound honest in floating point.
	total := leftMass
	for i := left; i <= mode; i++ {
		total += low[i]
	}
	right := mode
	p := pMode
	for 1-total > eps/2 {
		right++
		p *= q / float64(right)
		total += p
		if right > mode+10_000_000 {
			return nil, fmt.Errorf("%w: right truncation did not converge for q=%v", ErrAccuracy, q)
		}
	}
	rightMass := 1 - total
	if rightMass < 0 {
		rightMass = 0
	}
	w := make([]float64, right-left+1)
	// Fill weights by recurrence from the mode outwards for stability.
	w[mode-left] = pMode
	for i := mode - 1; i >= left; i-- {
		w[i-left] = w[i-left+1] * float64(i+1) / q
	}
	for i := mode + 1; i <= right; i++ {
		w[i-left] = w[i-left-1] * q / float64(i)
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	return &PoissonWeights{
		Left: left, Right: right, W: w, TotalWeight: sum,
		LeftTailMass: leftMass, RightTailMass: rightMass,
	}, nil
}

func foxGlynnLarge(q, eps float64) (*PoissonWeights, error) {
	mode := int(q)
	// Right truncation point via the Chernoff-style bound of Fox–Glynn
	// (their "finder" with a_λ corrected): choose k such that the right
	// tail mass is below eps/2.
	sqrtQ := math.Sqrt(q)
	var right int
	var rightMass float64
	{
		aLambda := (1 + 1/q) * math.Exp(1.0/16) * math.Sqrt2
		k := 4.0
		for {
			d := 1.0 / (1 - math.Exp(-(2.0/9.0)*(k*math.Sqrt2*sqrtQ+1.5)))
			rightMass = aLambda * d * math.Exp(-k*k/2) / (k * math.Sqrt(2*math.Pi))
			if rightMass <= eps/2 {
				break
			}
			k++
			if k > 1e6 {
				return nil, fmt.Errorf("%w: right truncation for q=%v", ErrAccuracy, q)
			}
		}
		right = int(math.Ceil(float64(mode) + k*math.Sqrt2*sqrtQ + 1.5))
	}
	// Left truncation point: symmetric bound on the lower tail.
	var left int
	var leftMass float64
	{
		bLambda := (1 + 1/q) * math.Exp(1.0/(8*q))
		k := 4.0
		for {
			leftMass = bLambda * math.Exp(-k*k/2) / (k * math.Sqrt(2*math.Pi))
			if leftMass <= eps/2 {
				break
			}
			k++
			if k > 1e6 {
				return nil, fmt.Errorf("%w: left truncation for q=%v", ErrAccuracy, q)
			}
		}
		// For q just above the small/large switch at 25, mode − k·√q − 1.5
		// goes negative (k ≥ 4 ⇒ mode − 4·5 − 1.5 < 0 up to q ≈ 47): the
		// window then starts at 0 and nothing is truncated on the left.
		left = int(math.Floor(float64(mode) - k*sqrtQ - 1.5))
		if left <= 0 {
			left = 0
			leftMass = 0
		}
	}

	w := make([]float64, right-left+1)
	// Scaled weights: start from a large constant at the mode to protect
	// against underflow at the truncation points, then normalise.
	const scale = 1e280
	w[mode-left] = scale * 1e-20
	for i := mode - 1; i >= left; i-- {
		w[i-left] = w[i-left+1] * float64(i+1) / q
	}
	for i := mode + 1; i <= right; i++ {
		w[i-left] = w[i-left-1] * q / float64(i)
	}
	var total float64
	// Sum smallest-to-largest from both ends for accuracy.
	lo, hi := 0, len(w)-1
	for lo < hi {
		if w[lo] <= w[hi] {
			total += w[lo]
			lo++
		} else {
			total += w[hi]
			hi--
		}
	}
	total += w[lo]
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		return nil, fmt.Errorf("%w: weight normalisation failed for q=%v", ErrAccuracy, q)
	}
	return &PoissonWeights{
		Left: left, Right: right, W: w, TotalWeight: total,
		LeftTailMass: leftMass, RightTailMass: rightMass,
	}, nil
}

// PoissonTruncation returns the smallest N such that the Poisson(q)
// distribution has cumulative mass ≥ 1-eps on {0..N}. This is the a-priori
// step bound N_ε used by the occupation-time algorithm (paper §4.4).
//
//numerics:truncates sericola/series-remainder
func PoissonTruncation(q, eps float64) (int, error) {
	if q < 0 || math.IsNaN(q) {
		return 0, fmt.Errorf("numeric: PoissonTruncation rate %v out of range", q)
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("numeric: PoissonTruncation accuracy %v out of range", eps)
	}
	if q == 0 {
		return 0, nil
	}
	// Accumulate pmf in a numerically safe way using log-space terms.
	logTerm := -q // log pmf(0)
	cum := math.Exp(logTerm)
	n := 0
	for cum < 1-eps {
		n++
		logTerm += math.Log(q) - math.Log(float64(n))
		cum += math.Exp(logTerm)
		if n > 100_000_000 {
			return 0, fmt.Errorf("%w: PoissonTruncation for q=%v eps=%v", ErrAccuracy, q, eps)
		}
	}
	return n, nil
}

// PoissonPMF returns the Poisson(q) probability of n, computed in log space.
//
//numerics:domain prob q=rate
func PoissonPMF(q float64, n int) float64 {
	if q == 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	//lint:ignore probrange the exponent -q + n*log(q) - log(n!) is the log of a Poisson mass, hence <= 0, so Exp stays in [0,1]; interval analysis cannot bound a log-space exponent
	return math.Exp(-q + float64(n)*math.Log(q) - logFactorial(n))
}

// logFactorial returns ln(n!) via the log-gamma function.
//
//numerics:domain log
func logFactorial(n int) float64 {
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}
