// Package erlang implements the pseudo-Erlang approximation of Section 4.2
// of the paper: the deterministic reward bound r of a P3-type property is
// approximated by an Erlang-k distributed bound with mean r. Earning reward
// is modelled as advancing through k phases at rate ρ(s)·k/r; completing
// phase k corresponds to hitting the absorbing reward barrier of Figure 1.
// The expanded model is a plain CTMC of |S|·k+1 states solved by standard
// transient analysis, so the machinery of P2/P1 properties applies
// unchanged.
package erlang

import (
	"fmt"
	"math"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/transient"
)

// Expansion is the Erlang-k expanded CTMC of an MRM together with the
// bookkeeping needed to map results back to the original model.
type Expansion struct {
	// Model is the expanded CTMC (rewards all zero; they have been encoded
	// as phase transitions).
	Model *mrm.MRM
	// K is the number of Erlang phases.
	K int
	// Barrier is the index of the absorbing reward-barrier state.
	Barrier int
	// n is the original state count.
	n int
}

// StateIndex returns the expanded index of original state s in phase i.
func (e *Expansion) StateIndex(s, i int) int { return s*e.K + i }

// Expand builds the Erlang-k expansion of m for reward bound r.
//
//numerics:domain r=rate
func Expand(m *mrm.MRM, r float64, k int) (*Expansion, error) {
	if k < 1 {
		return nil, fmt.Errorf("erlang: phase count k=%d must be ≥ 1", k)
	}
	if r <= 0 {
		return nil, fmt.Errorf("erlang: reward bound r=%v must be positive", r)
	}
	if m.HasImpulses() {
		return nil, fmt.Errorf("erlang: %w", mrm.ErrImpulsesUnsupported)
	}
	n := m.N()
	total := n*k + 1
	barrier := n * k
	b := mrm.NewBuilder(total)
	phaseRate := float64(k) / r
	for s := 0; s < n; s++ {
		mu := m.Reward(s) * phaseRate
		for i := 0; i < k; i++ {
			idx := s*k + i
			b.Name(idx, fmt.Sprintf("%s#%d", m.Name(s), i))
			// CTMC transitions stay within the phase.
			m.Rates().Row(s, func(tgt int, v float64) {
				if v != 0 {
					b.Rate(idx, tgt*k+i, v)
				}
			})
			// Reward accumulation advances the phase.
			if mu > 0 {
				if i < k-1 {
					b.Rate(idx, idx+1, mu)
				} else {
					b.Rate(idx, barrier, mu)
				}
			}
		}
	}
	b.Name(barrier, "barrier")
	// Initial distribution: original α placed in phase 0.
	for s, p := range m.InitView() {
		if p > 0 {
			b.InitialProb(s*k+0, p)
		}
	}
	em, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("erlang: expansion: %w", err)
	}
	return &Expansion{Model: em, K: k, Barrier: barrier, n: n}, nil
}

// GoalSet lifts a goal set of the original model to the expansion: a goal
// state in any phase counts (the barrier never does).
func (e *Expansion) GoalSet(goal *mrm.StateSet) *mrm.StateSet {
	lifted := mrm.NewStateSet(e.Model.N())
	goal.Each(func(s int) {
		for i := 0; i < e.K; i++ {
			lifted.Add(e.StateIndex(s, i))
		}
	})
	return lifted
}

// Options configures the approximation.
type Options struct {
	// K is the number of Erlang phases (§4.2: "an appropriate value for k
	// is not known a priori"; Table 3 sweeps it).
	K int
	// Transient configures the inner uniformisation; its Workers field
	// also sets the parallelism of this procedure (the expanded |S|·k+1
	// model makes the uniformisation sweeps the entire cost), and its
	// SteadyDetect and Pool fields flow straight through — steady-state
	// detection pays off particularly well here, since the absorbing
	// barrier makes long sweeps converge before the Fox–Glynn window
	// closes. Leave its Cache nil: the expansion is a fresh model per
	// call, so a pointer-keyed matrix cache can never hit.
	Transient transient.Options
}

// DefaultOptions matches the accuracy regime of Table 3's larger k values.
func DefaultOptions() Options {
	return Options{K: 256, Transient: transient.DefaultOptions()}
}

// ReachProbAll approximates Pr_s{Y_t ≤ r, X_t ∈ goal} for every original
// state s (the quantity of Theorem 2) using the Erlang-k reward bound.
// The caller is expected to pass a model already reduced per Theorem 1
// (goal states absorbing with reward zero), though the computation is
// well-defined for any MRM.
//
//numerics:domain prob t=rate r=rate
func ReachProbAll(m *mrm.MRM, goal *mrm.StateSet, t, r float64, opts Options) ([]float64, error) {
	if opts.K == 0 {
		opts.K = DefaultOptions().K
	}
	if goal.Universe() != m.N() {
		return nil, fmt.Errorf("erlang: goal universe %d for %d states", goal.Universe(), m.N())
	}
	e, err := Expand(m, r, opts.K)
	if err != nil {
		return nil, err
	}
	// The Erlang-k bound has mean r and coefficient of variation 1/√k — the
	// scheme's approximation order (§4.2 gives no computable error bound for
	// it, hence an indicative entry, not part of the ≤ ε proof). The inner
	// uniformisation charges its own truncation masses through Transient.Obs.
	opts.Transient.Obs.Gauge("erlang.k").SetMax(float64(opts.K))
	opts.Transient.Obs.ChargeIndicative("erlang", "k-approximation", 1/math.Sqrt(float64(opts.K)))
	all, err := transient.ReachProbAll(e.Model, e.GoalSet(goal), t, opts.Transient)
	if err != nil {
		return nil, fmt.Errorf("erlang: transient analysis: %w", err)
	}
	out := make([]float64, m.N())
	for s := range out {
		out[s] = all[e.StateIndex(s, 0)]
	}
	// The (|S|·k+1)-sized expansion vector is pool-born when a pool is
	// configured and dead once projected; check it back in.
	opts.Transient.Pool.Put(all)
	return out, nil
}

// ReachProb approximates the Theorem 2 quantity from the model's initial
// distribution.
//
//numerics:domain prob t=rate r=rate
func ReachProb(m *mrm.MRM, goal *mrm.StateSet, t, r float64, opts Options) (float64, error) {
	per, err := ReachProbAll(m, goal, t, r, opts)
	if err != nil {
		return 0, err
	}
	var v float64
	for s, p := range m.InitView() {
		v += p * per[s]
	}
	return v, nil
}
