package erlang

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/transient"
)

func singleJump(t *testing.T, mu float64) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, mu)
	b.Reward(0, 1)
	b.Label(1, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestExpandShape(t *testing.T) {
	m := singleJump(t, 2)
	e, err := Expand(m, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.Model.N() != 2*3+1 {
		t.Fatalf("expansion has %d states, want 7", e.Model.N())
	}
	if e.Barrier != 6 {
		t.Errorf("barrier index %d", e.Barrier)
	}
	// Phase-advance rate is ρ(s)·k/r = 1·3/4.
	idx00 := e.StateIndex(0, 0)
	if got := e.Model.Rates().At(idx00, e.StateIndex(0, 1)); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("phase rate = %v, want 0.75", got)
	}
	// Last phase feeds the barrier.
	if got := e.Model.Rates().At(e.StateIndex(0, 2), e.Barrier); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("barrier rate = %v, want 0.75", got)
	}
	// CTMC transitions stay within the phase.
	if got := e.Model.Rates().At(e.StateIndex(0, 1), e.StateIndex(1, 1)); got != 2 {
		t.Errorf("intra-phase rate = %v, want 2", got)
	}
	// Zero-reward states have no phase transitions.
	if got := e.Model.ExitRate(e.StateIndex(1, 0)); got != 0 {
		t.Errorf("absorbing zero-reward state has exit rate %v", got)
	}
	// The barrier is absorbing.
	if !e.Model.IsAbsorbing(e.Barrier) {
		t.Error("barrier must be absorbing")
	}
}

func TestExpandValidation(t *testing.T) {
	m := singleJump(t, 1)
	if _, err := Expand(m, 1, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Expand(m, 0, 4); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := ReachProbAll(m, mrm.NewStateSet(3), 1, 1, Options{K: 2}); err == nil {
		t.Error("universe mismatch accepted")
	}
}

func TestGoalSetLift(t *testing.T) {
	m := singleJump(t, 1)
	e, err := Expand(m, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	lifted := e.GoalSet(m.Label("goal"))
	if lifted.Len() != 2 {
		t.Errorf("lifted goal has %d states, want 2 (one per phase)", lifted.Len())
	}
	if lifted.Contains(e.Barrier) {
		t.Error("barrier must not be a goal state")
	}
}

// K=1 admits a closed form: the bound is Exp(1/r) and the barrier races the
// jump. Pr{Y ≤ bound at t, X_t = goal} for the single-jump model: the jump
// happens at T ~ Exp(mu), the barrier fires at B ~ Exp(1/r) while in state
// 0 (reward 1). Success = {T ≤ min(B, t)}:
// Pr = mu/(mu+1/r)·(1 − e^{-(mu+1/r)t}).
func TestK1ClosedForm(t *testing.T) {
	const (
		mu = 1.5
		r  = 2.0
		tb = 3.0
	)
	m := singleJump(t, mu)
	v, err := ReachProb(m, m.Label("goal"), tb, r, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	beta := 1 / r
	want := mu / (mu + beta) * (1 - math.Exp(-(mu+beta)*tb))
	if math.Abs(v-want) > 1e-10 {
		t.Errorf("k=1: got %v, want %v", v, want)
	}
}

func TestConvergenceInK(t *testing.T) {
	// As k grows the approximation approaches the exact 1 − e^{-mu r}
	// (for t ≫ r the time bound is inactive).
	const (
		mu = 1.0
		r  = 1.0
		tb = 50.0
	)
	m := singleJump(t, mu)
	exact := 1 - math.Exp(-mu*r)
	prevErr := math.Inf(1)
	for _, k := range []int{1, 4, 16, 64, 256} {
		v, err := ReachProb(m, m.Label("goal"), tb, r, Options{K: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		e := math.Abs(v - exact)
		if e > prevErr+1e-12 {
			t.Errorf("error increased at k=%d: %v > %v", k, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 2e-3 {
		t.Errorf("k=256 error %v too large", prevErr)
	}
}

func TestDefaultKApplied(t *testing.T) {
	m := singleJump(t, 1)
	if _, err := ReachProbAll(m, m.Label("goal"), 1, 1, Options{}); err != nil {
		t.Fatalf("zero-value options must work: %v", err)
	}
}

func TestReachProbAllParallelEquivalence(t *testing.T) {
	// The k=64 expansion of even a 3-state model exceeds the sparse
	// kernels' grain, so the parallel path is genuinely exercised.
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 2).Rate(1, 2, 3).Rate(1, 0, 1)
	b.Reward(0, 1).Reward(1, 2)
	b.Label(2, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	goal := m.Label("goal")
	seqOpts := Options{K: 64, Transient: transient.Options{Epsilon: 1e-12, Workers: 1}}
	seq, err := ReachProbAll(m, goal, 1.0, 1.5, seqOpts)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, workers := range []int{0, 2, 4} {
		parOpts := Options{K: 64, Transient: transient.Options{Epsilon: 1e-12, Workers: workers}}
		par, err := ReachProbAll(m, goal, 1.0, 1.5, parOpts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for s := range par {
			// The backward sweep is row-partitioned and bitwise-stable.
			if par[s] != seq[s] {
				t.Fatalf("workers=%d: state %d: %g != sequential %g", workers, s, par[s], seq[s])
			}
		}
	}
}
