package adhoc

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/discretise"
	"github.com/performability/csrl/internal/erlang"
	"github.com/performability/csrl/internal/sericola"
	"github.com/performability/csrl/internal/sim"
)

func TestModelHasNineRecurrentStates(t *testing.T) {
	m, err := Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	if m.N() != 9 {
		t.Fatalf("got %d states, paper reports 9", m.N())
	}
	for s := 0; s < m.N(); s++ {
		if m.IsAbsorbing(s) {
			t.Errorf("state %d (%s) is absorbing; all 9 states are recurrent", s, m.Name(s))
		}
	}
}

func TestRewardsMatchTable1(t *testing.T) {
	m, err := Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	// Spot checks: initial state (both idle) consumes 100 mA; doze 20 mA;
	// call active + adhoc active = 350 mA.
	if got := m.Reward(0); got != 100 {
		t.Errorf("initial state reward = %v, want 100", got)
	}
	doze := m.Label("doze")
	if doze.Len() != 1 {
		t.Fatalf("doze label covers %d states, want 1", doze.Len())
	}
	doze.Each(func(s int) {
		if got := m.Reward(s); got != 20 {
			t.Errorf("doze reward = %v, want 20", got)
		}
	})
	both := m.Label("adhoc_active").Intersect(m.Label("call_active"))
	if both.Len() != 1 {
		t.Fatalf("adhoc_active∧call_active covers %d states, want 1", both.Len())
	}
	both.Each(func(s int) {
		if got := m.Reward(s); got != 350 {
			t.Errorf("fully-active reward = %v, want 350", got)
		}
	})
}

func TestQ3ReducedShape(t *testing.T) {
	red, err := Q3Reduced()
	if err != nil {
		t.Fatalf("Q3Reduced: %v", err)
	}
	// Paper §5.4: three transient and two absorbing states.
	if red.Model.N() != 5 {
		t.Fatalf("reduced model has %d states, want 5", red.Model.N())
	}
	if red.Fail < 0 {
		t.Fatalf("expected a fail state")
	}
	if !red.Model.IsAbsorbing(red.Goal) || !red.Model.IsAbsorbing(red.Fail) {
		t.Fatalf("goal/fail must be absorbing")
	}
	if red.Model.Reward(red.Goal) != 0 || red.Model.Reward(red.Fail) != 0 {
		t.Fatalf("absorbing states must carry reward 0 (Theorem 1)")
	}
	absorbing := 0
	for s := 0; s < red.Model.N(); s++ {
		if red.Model.IsAbsorbing(s) {
			absorbing++
		}
	}
	if absorbing != 2 {
		t.Fatalf("got %d absorbing states, want 2", absorbing)
	}
	// The paper's uniformisation rate is the maximum exit rate 19.5.
	var maxE float64
	for s := 0; s < red.Model.N(); s++ {
		if e := red.Model.ExitRate(s); e > maxE {
			maxE = e
		}
	}
	if maxE != PaperLambda {
		t.Errorf("max exit rate = %v, want %v", maxE, PaperLambda)
	}
}

// TestQ3PaperTables is the headline reproduction check: with the effective
// reward bound of the paper's evaluation (r = 550, see Q3PaperRewardBound)
// the three computational procedures of Section 4 reproduce the printed
// values of Tables 2–4.
func TestQ3PaperTables(t *testing.T) {
	red, err := Q3Reduced()
	if err != nil {
		t.Fatalf("Q3Reduced: %v", err)
	}
	goal := red.Model.Label("goal")
	init := red.Model.InitialState()
	if init < 0 {
		t.Fatalf("reduced model lost its point-mass initial state")
	}

	t.Run("table2_sericola", func(t *testing.T) {
		rows := []struct {
			eps   float64
			wantN int
			want  float64
		}{
			{1e-1, 496, 0.44831203},
			{1e-2, 519, 0.49068833},
			{1e-4, 551, 0.49536172},
			{1e-8, 594, 0.49540399},
		}
		for _, row := range rows {
			res, err := sericola.ReachProbAll(red.Model, goal, Q3TimeBound, Q3PaperRewardBound,
				sericola.Options{Epsilon: row.eps, Lambda: PaperLambda})
			if err != nil {
				t.Fatalf("sericola eps=%v: %v", row.eps, err)
			}
			got := res.Values[init]
			t.Logf("eps=%.0e: value %0.8f (want %0.8f), N=%d (want %d)", row.eps, got, row.want, res.N, row.wantN)
			if res.N != row.wantN {
				t.Errorf("eps=%.0e: N=%d, paper N=%d", row.eps, res.N, row.wantN)
			}
			// The truncated series under-approximates by up to eps; match
			// the paper row to a small multiple of the printed precision.
			tol := 2e-5 + 0.05*row.eps
			if math.Abs(got-row.want) > tol {
				t.Errorf("eps=%.0e: value %0.8f, paper %0.8f (tol %g)", row.eps, got, row.want, tol)
			}
		}
	})

	t.Run("table3_erlang", func(t *testing.T) {
		rows := []struct {
			k    int
			want float64
			tol  float64
		}{
			{1, 0.41067310, 3e-3},
			{8, 0.48742851, 2e-4},
			{64, 0.49457832, 2e-5},
			{1024, 0.49535410, 5e-6},
		}
		for _, row := range rows {
			got, err := erlang.ReachProb(red.Model, goal, Q3TimeBound, Q3PaperRewardBound, erlang.Options{K: row.k})
			if err != nil {
				t.Fatalf("erlang k=%d: %v", row.k, err)
			}
			t.Logf("k=%4d: value %0.8f (paper %0.8f)", row.k, got, row.want)
			if math.Abs(got-row.want) > row.tol {
				t.Errorf("k=%d: value %0.8f, paper %0.8f (tol %g)", row.k, got, row.want, row.tol)
			}
		}
	})

	t.Run("table4_discretise", func(t *testing.T) {
		rows := []struct {
			d    float64
			want float64
			tol  float64
		}{
			// The paper's step ladder d = 1/16 … 1/128; the first row
			// exceeds 1/max E(s) and needs AllowCoarse.
			{1.0 / 32, 0.49553603, 2e-5},
			{1.0 / 64, 0.49547017, 2e-5},
			{1.0 / 128, 0.49543712, 2e-5},
		}
		for _, row := range rows {
			got, err := discretise.ReachProb(red.Model, goal, Q3TimeBound, Q3PaperRewardBound, init,
				discretise.Options{D: row.d, AllowCoarse: true})
			if err != nil {
				t.Fatalf("discretise d=%v: %v", row.d, err)
			}
			t.Logf("d=%v: value %0.8f (paper %0.8f)", row.d, got, row.want)
			if math.Abs(got-row.want) > row.tol {
				t.Errorf("d=%v: value %0.8f, paper %0.8f (tol %g)", row.d, got, row.want, row.tol)
			}
		}
	})
}

// TestQ3TextBounds cross-validates all procedures on the bounds as stated
// in the paper's text (t=24 h, r=600 mAh = 80% of the battery): the three
// numerical procedures and a Monte-Carlo estimate must agree on
// Q3TextValue.
func TestQ3TextBounds(t *testing.T) {
	red, err := Q3Reduced()
	if err != nil {
		t.Fatalf("Q3Reduced: %v", err)
	}
	goal := red.Model.Label("goal")
	init := red.Model.InitialState()

	v, n, err := sericola.ReachProb(red.Model, goal, Q3TimeBound, Q3RewardBound, sericola.Options{Epsilon: 1e-9})
	if err != nil {
		t.Fatalf("sericola: %v", err)
	}
	t.Logf("sericola: %0.8f (N=%d)", v, n)
	if math.Abs(v-Q3TextValue) > 1e-7 {
		t.Errorf("sericola %0.8f, want %0.8f", v, Q3TextValue)
	}

	ve, err := erlang.ReachProb(red.Model, goal, Q3TimeBound, Q3RewardBound, erlang.Options{K: 1024})
	if err != nil {
		t.Fatalf("erlang: %v", err)
	}
	if math.Abs(ve-Q3TextValue) > 1e-4 {
		t.Errorf("erlang k=1024 %0.8f, want %0.8f ± 1e-4", ve, Q3TextValue)
	}

	vd, err := discretise.ReachProb(red.Model, goal, Q3TimeBound, Q3RewardBound, init, discretise.Options{D: 1.0 / 64})
	if err != nil {
		t.Fatalf("discretise: %v", err)
	}
	if math.Abs(vd-Q3TextValue) > 2e-4 {
		t.Errorf("discretise d=1/64 %0.8f, want %0.8f ± 2e-4", vd, Q3TextValue)
	}

	s := sim.New(red.Model, 42)
	est, err := s.ReachProb(init, goal, Q3TimeBound, Q3RewardBound, 200_000)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	t.Logf("simulation: %v", est)
	if math.Abs(est.Value-Q3TextValue) > est.HalfWidth+1e-3 {
		t.Errorf("simulation %v incompatible with %0.8f", est, Q3TextValue)
	}
}

// TestQ3Theorem1 verifies Theorem 1 end to end: the until probability
// estimated directly on path semantics of the FULL model equals the
// reachability probability on the reduced model.
func TestQ3Theorem1(t *testing.T) {
	full, err := Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	phi := full.Label("call_idle").Union(full.Label("doze"))
	psi := full.Label("call_initiated")
	s := sim.New(full, 7)
	est, err := s.UntilProb(0, phi, psi, Q3TimeBound, Q3RewardBound, 200_000)
	if err != nil {
		t.Fatalf("sim until: %v", err)
	}
	t.Logf("direct until simulation on full model: %v", est)
	if math.Abs(est.Value-Q3TextValue) > est.HalfWidth+1e-3 {
		t.Errorf("direct path-semantics estimate %v incompatible with %0.8f", est, Q3TextValue)
	}
}
