// Package adhoc builds the paper's case study (Section 5): a single
// battery-powered mobile station in an ad-hoc network, modelled as the
// stochastic reward net of Figure 2 with the rates and power-consumption
// rewards of Table 1. The basic time unit is 1 hour and the basic reward
// unit is 1 mA; the battery holds 750 mAh when fully charged.
package adhoc

import (
	"fmt"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/srn"
)

// Place indices of the SRN in Figure 2.
const (
	AdHocIdle = iota
	AdHocActive
	CallIdle
	CallInitiated
	CallIncoming
	CallActive
	Doze
	numPlaces
)

// Rates of Table 1, per hour.
const (
	RateAccept     = 180  // mean 20 s
	RateConnect    = 360  // mean 10 s
	RateDisconnect = 15   // mean 4 min
	RateDoze       = 12   // mean 5 min
	RateGiveUp     = 60   // mean 1 min
	RateInterrupt  = 60   // mean 1 min
	RateLaunch     = 0.75 // mean 80 min
	RateReconfirm  = 15   // mean 4 min
	RateRequest    = 6    // mean 10 min
	RateRing       = 0.75 // mean 80 min
	RateWakeUp     = 3.75 // mean 16 min
)

// Power rewards of Table 1, in mA.
const (
	PowerAdHocActive   = 150
	PowerAdHocIdle     = 50
	PowerCallActive    = 200
	PowerCallIdle      = 50
	PowerCallIncoming  = 150
	PowerCallInitiated = 150
	PowerDoze          = 20
)

// BatteryCapacity is the full battery charge in mAh.
const BatteryCapacity = 750.0

// placeNames matches the atomic propositions used in the CSRL properties.
var placeNames = [numPlaces]string{
	AdHocIdle:     "adhoc_idle",
	AdHocActive:   "adhoc_active",
	CallIdle:      "call_idle",
	CallInitiated: "call_initiated",
	CallIncoming:  "call_incoming",
	CallActive:    "call_active",
	Doze:          "doze",
}

var placePower = [numPlaces]float64{
	AdHocIdle:     PowerAdHocIdle,
	AdHocActive:   PowerAdHocActive,
	CallIdle:      PowerCallIdle,
	CallInitiated: PowerCallInitiated,
	CallIncoming:  PowerCallIncoming,
	CallActive:    PowerCallActive,
	Doze:          PowerDoze,
}

// Net returns the SRN of Figure 2 together with its initial marking
// (both threads idle).
func Net() (*srn.Net, srn.Marking) {
	arc := func(p int) []srn.Arc { return []srn.Arc{{Place: p, Weight: 1}} }
	net := &srn.Net{
		Places: placeNames[:],
		Transitions: []srn.Transition{
			{Name: "request", Rate: RateRequest, In: arc(AdHocIdle), Out: arc(AdHocActive)},
			{Name: "reconfirm", Rate: RateReconfirm, In: arc(AdHocActive), Out: arc(AdHocIdle)},
			{Name: "launch", Rate: RateLaunch, In: arc(CallIdle), Out: arc(CallInitiated)},
			{Name: "connect", Rate: RateConnect, In: arc(CallInitiated), Out: arc(CallActive)},
			{Name: "give_up", Rate: RateGiveUp, In: arc(CallInitiated), Out: arc(CallIdle)},
			{Name: "ring", Rate: RateRing, In: arc(CallIdle), Out: arc(CallIncoming)},
			{Name: "accept", Rate: RateAccept, In: arc(CallIncoming), Out: arc(CallActive)},
			{Name: "interrupt", Rate: RateInterrupt, In: arc(CallIncoming), Out: arc(CallIdle)},
			{Name: "disconnect", Rate: RateDisconnect, In: arc(CallActive), Out: arc(CallIdle)},
			{
				Name: "doze", Rate: RateDoze,
				In:  []srn.Arc{{Place: AdHocIdle, Weight: 1}, {Place: CallIdle, Weight: 1}},
				Out: arc(Doze),
			},
			{
				Name: "wake_up", Rate: RateWakeUp,
				In:  arc(Doze),
				Out: []srn.Arc{{Place: AdHocIdle, Weight: 1}, {Place: CallIdle, Weight: 1}},
			},
		},
	}
	init := make(srn.Marking, numPlaces)
	init[AdHocIdle] = 1
	init[CallIdle] = 1
	return net, init
}

// Power returns the reward rate of a marking: 20 mA in doze mode, otherwise
// the sum of the per-task consumptions of the marked places (paper §5.2:
// power consumption is additive over the two concurrent tasks).
func Power(m srn.Marking) float64 {
	if m[Doze] > 0 {
		return PowerDoze
	}
	var sum float64
	for p, tokens := range m {
		if tokens > 0 {
			sum += placePower[p] * float64(tokens)
		}
	}
	return sum
}

// Model generates the 9-state MRM underlying the SRN via reachability-graph
// construction.
func Model() (*mrm.MRM, error) {
	net, init := Net()
	model, markings, err := net.BuildMRM(init, srn.Options{Reward: Power})
	if err != nil {
		return nil, fmt.Errorf("adhoc: %w", err)
	}
	if len(markings) != 9 {
		return nil, fmt.Errorf("adhoc: expected 9 recurrent states, got %d", len(markings))
	}
	return model, nil
}

// Q3Reduced returns the reduced MRM M' of the paper for property Q3
// (three transient and two absorbing states), built by applying Theorem 1
// to Φ = call_idle ∨ doze and Ψ = call_initiated on the full model.
func Q3Reduced() (*mrm.UntilReduction, error) {
	model, err := Model()
	if err != nil {
		return nil, err
	}
	phi := model.Label("call_idle").Union(model.Label("doze"))
	psi := model.Label("call_initiated")
	red, err := mrm.ReduceForUntil(model, phi, psi)
	if err != nil {
		return nil, fmt.Errorf("adhoc: Q3 reduction: %w", err)
	}
	return red, nil
}

// Q3 bounds as stated in the paper's text: within 24 hours, at most 80% of
// the 750 mAh battery.
const (
	Q3TimeBound   = 24.0
	Q3RewardBound = 0.8 * BatteryCapacity // 600 mAh
)

// Q3PaperRewardBound is the reward bound that actually reproduces the
// numbers printed in Tables 2–4.
//
// Reproduction finding: the paper's text derives r = 0.8·750 = 600 mAh, but
// no parameter set with r = 600 matches the printed tables, while r = 550
// reproduces the converged occupation-time value 0.49540399 to within
// 3·10⁻⁶ and the whole pseudo-Erlang and discretisation ladders to a few
// 10⁻⁶ (large k / small d). All table-reproduction code therefore uses
// r = 550; the text-faithful r = 600 value on this model is
// Q3TextValue = 0.49699673.
const Q3PaperRewardBound = 550.0

// PaperQ3Value is the converged probability for Q3's path formula reported
// in Table 2 (occupation-time algorithm at ε = 1e-8).
const PaperQ3Value = 0.49540399

// Q3TextValue is the probability of Q3's path formula for the bounds as
// literally stated in the text (t = 24 h, r = 600 mAh), computed by all
// three procedures of this package's reproduction (they agree to < 1e-6)
// and confirmed by direct path simulation on the full 9-state model.
const Q3TextValue = 0.49699673

// PaperLambda is the uniformisation rate the paper's implementation used
// (max_s E(s) of the reduced model, without head-room); using it makes the
// N column of Table 2 reproduce exactly.
const PaperLambda = 19.5
