package sericola

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
)

// singleJump is the analytically solvable model used to verify the C(h,n,k)
// recursion coefficients: state 0 with reward 1 jumps at rate mu to the
// absorbing zero-reward state 1. The accumulated reward is Y_t = min(T, t)
// with T ~ Exp(mu), so
//
//	Pr{Y_t ≤ r, X_t = 1} = Pr{T ≤ r}           (r < t)
//	Pr{Y_t ≤ r, X_t = 0} = 0                   (r < t; staying means Y=t>r)
func singleJump(t *testing.T, mu float64) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, mu)
	b.Reward(0, 1)
	b.Label(1, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestSingleJumpAnalytic(t *testing.T) {
	const mu = 1.3
	m := singleJump(t, mu)
	goal := m.Label("goal")
	for _, tc := range []struct{ tb, rb float64 }{
		{2, 0.5}, {2, 1}, {2, 1.9}, {5, 0.1}, {0.7, 0.3},
	} {
		res, err := ReachProbAll(m, goal, tc.tb, tc.rb, Options{Epsilon: 1e-12})
		if err != nil {
			t.Fatalf("t=%v r=%v: %v", tc.tb, tc.rb, err)
		}
		want := 1 - math.Exp(-mu*tc.rb)
		if math.Abs(res.Values[0]-want) > 1e-9 {
			t.Errorf("t=%v r=%v: got %v, want %v", tc.tb, tc.rb, res.Values[0], want)
		}
	}
}

func TestSingleJumpGoalIsRewardedState(t *testing.T) {
	// Pr{Y_t ≤ r, X_t = 0} = 0 for r < t because staying in state 0 until
	// time t accumulates exactly t.
	m := singleJump(t, 2)
	zeroGoal := mrm.NewStateSetOf(2, 0)
	res, err := ReachProbAll(m, zeroGoal, 3, 1, Options{Epsilon: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]) > 1e-9 {
		t.Errorf("got %v, want 0", res.Values[0])
	}
	// And for r ≥ t it is the survival probability e^{-mu t}.
	res, err = ReachProbAll(m, zeroGoal, 3, 5, Options{Epsilon: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-2 * 3.0)
	if math.Abs(res.Values[0]-want) > 1e-9 {
		t.Errorf("got %v, want %v", res.Values[0], want)
	}
}

func TestZeroTime(t *testing.T) {
	m := singleJump(t, 1)
	res, err := ReachProbAll(m, m.Label("goal"), 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At t=0 the chain is still in state 0 ∉ goal.
	if res.Values[0] != 0 || res.Values[1] != 1 {
		t.Errorf("t=0 values = %v", res.Values)
	}
}

func TestNegativeBoundsRejected(t *testing.T) {
	m := singleJump(t, 1)
	if _, err := ReachProbAll(m, m.Label("goal"), -1, 1, Options{}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := ReachProbAll(m, m.Label("goal"), 1, -1, Options{}); err == nil {
		t.Error("negative reward accepted")
	}
	if _, err := ReachProbAll(m, mrm.NewStateSet(5), 1, 1, Options{}); err == nil {
		t.Error("universe mismatch accepted")
	}
}

func TestRewardShiftInvariance(t *testing.T) {
	// Adding a constant c to every reward shifts Y_t by c·t exactly:
	// P{Y ≤ r} on the shifted model with bound r + c·t must match.
	build := func(shift float64) *mrm.MRM {
		b := mrm.NewBuilder(3)
		b.Rate(0, 1, 2).Rate(1, 0, 1).Rate(0, 2, 0.5).Rate(1, 2, 0.5)
		b.Reward(0, 1+shift).Reward(1, 3+shift).Reward(2, shift)
		b.Label(2, "goal")
		m, err := b.Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return m
	}
	tb, rb := 1.5, 2.0
	base, err := ReachProbAll(build(0), build(0).Label("goal"), tb, rb, Options{Epsilon: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	const c = 2.0
	shifted, err := ReachProbAll(build(c), build(c).Label("goal"), tb, rb+c*tb, Options{Epsilon: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	for s := range base.Values {
		if math.Abs(base.Values[s]-shifted.Values[s]) > 1e-8 {
			t.Errorf("state %d: %v vs shifted %v", s, base.Values[s], shifted.Values[s])
		}
	}
}

func TestMonotonicityInBounds(t *testing.T) {
	// The reachability probability is nondecreasing in r.
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 2).Rate(1, 2, 1).Rate(1, 0, 1)
	b.Reward(0, 1).Reward(1, 2)
	b.Label(2, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	goal := m.Label("goal")
	prev := -1.0
	for _, rb := range []float64{0.1, 0.5, 1, 2, 4, 8} {
		res, err := ReachProbAll(m, goal, 3, rb, Options{Epsilon: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		v := res.Values[0]
		if v < prev-1e-10 {
			t.Errorf("probability decreased at r=%v: %v < %v", rb, v, prev)
		}
		if v < 0 || v > 1 {
			t.Errorf("r=%v: value %v outside [0,1]", rb, v)
		}
		prev = v
	}
}

func TestUniformisationRateInvariance(t *testing.T) {
	// The result must not depend on the chosen uniformisation rate λ.
	m := singleJump(t, 1.7)
	goal := m.Label("goal")
	ref, err := ReachProbAll(m, goal, 2, 1, Options{Epsilon: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{1.7, 2.5, 10} {
		res, err := ReachProbAll(m, goal, 2, 1, Options{Epsilon: 1e-11, Lambda: lambda})
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		if math.Abs(res.Values[0]-ref.Values[0]) > 1e-8 {
			t.Errorf("λ=%v: %v vs %v", lambda, res.Values[0], ref.Values[0])
		}
	}
}

func TestNIncreasesWithAccuracy(t *testing.T) {
	m := singleJump(t, 3)
	goal := m.Label("goal")
	prevN := 0
	for _, eps := range []float64{1e-2, 1e-4, 1e-6, 1e-8} {
		res, err := ReachProbAll(m, goal, 5, 2, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if res.N < prevN {
			t.Errorf("N decreased with tighter eps: %d < %d", res.N, prevN)
		}
		prevN = res.N
	}
}

func TestReachProbUsesInitialDistribution(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	b.Reward(0, 1)
	b.Label(1, "goal")
	b.InitialProb(0, 0.5).InitialProb(1, 0.5)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := ReachProb(m, m.Label("goal"), 1, 0.5, Options{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*(1-math.Exp(-0.5)) + 0.5*1
	if math.Abs(v-want) > 1e-8 {
		t.Errorf("mixed-initial value %v, want %v", v, want)
	}
}
