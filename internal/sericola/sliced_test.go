package sericola

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sparse"
)

// fourState builds a small irreducible-ish MRM with three distinct rewards
// (three occupation bands) so the recursion exercises both sweeps.
func fourState(t *testing.T) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(4)
	b.Rate(0, 1, 1.5).Rate(0, 2, 0.5)
	b.Rate(1, 2, 2).Rate(1, 3, 0.25)
	b.Rate(2, 0, 1).Rate(2, 3, 0.75)
	b.Reward(0, 0)
	b.Reward(1, 1)
	b.Reward(2, 2)
	b.Reward(3, 2)
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func bitwiseEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for s := range got {
		if math.Float64bits(got[s]) != math.Float64bits(want[s]) {
			t.Errorf("%s: state %d: %v vs %v not bitwise equal", label, s, got[s], want[s])
		}
	}
}

// TestDegenerateGoalFullWidth covers g = n: with every state in the goal
// set, the sliced recursion carries all n columns, which must coincide
// bitwise with the explicit FullWidth path (there the final sum also runs
// over all columns, in the same ascending order).
func TestDegenerateGoalFullWidth(t *testing.T) {
	m := fourState(t)
	all := mrm.NewStateSet(m.N()).Complement()
	const tb, rb = 1.5, 1.25
	sliced, err := ReachProbAll(m, all, tb, rb, Options{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	full, err := ReachProbAll(m, all, tb, rb, Options{Epsilon: 1e-10, FullWidth: true})
	if err != nil {
		t.Fatal(err)
	}
	if sliced.N != full.N {
		t.Fatalf("truncation N differs: %d vs %d", sliced.N, full.N)
	}
	bitwiseEqual(t, "g=n", sliced.Values, full.Values)
}

// TestSlicedMatchesFullWidthSingleColumn covers the opposite extreme,
// g = 1 (which takes the specialised single-column row product).
func TestSlicedMatchesFullWidthSingleColumn(t *testing.T) {
	m := fourState(t)
	goal := mrm.NewStateSetOf(m.N(), 3)
	for _, rb := range []float64{0.4, 1.25, 2.6} {
		sliced, err := ReachProbAll(m, goal, 1.5, rb, Options{Epsilon: 1e-10})
		if err != nil {
			t.Fatalf("r=%v: %v", rb, err)
		}
		full, err := ReachProbAll(m, goal, 1.5, rb, Options{Epsilon: 1e-10, FullWidth: true})
		if err != nil {
			t.Fatalf("r=%v: %v", rb, err)
		}
		bitwiseEqual(t, "g=1", sliced.Values, full.Values)
	}
}

// TestPoolReuseIsBitwiseStable runs the same computation three times
// through one pool: recycled slabs must not leak state between runs, and
// pooled results must match the unpooled ones bit for bit.
func TestPoolReuseIsBitwiseStable(t *testing.T) {
	m := fourState(t)
	goal := mrm.NewStateSetOf(m.N(), 2, 3)
	const tb, rb = 1.5, 1.25
	plain, err := ReachProbAll(m, goal, tb, rb, Options{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	pool := sparse.NewVecPool()
	for rep := 0; rep < 3; rep++ {
		pooled, err := ReachProbAll(m, goal, tb, rb, Options{Epsilon: 1e-10, Pool: pool})
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		bitwiseEqual(t, "pooled", pooled.Values, plain.Values)
	}
}
