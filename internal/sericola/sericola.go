// Package sericola implements the occupation-time distribution algorithm of
// Section 4.4 of the paper, based on B. Sericola, "Occupation times in
// Markov processes", Stochastic Models 16(5), 2000 (Theorem 5.6).
//
// For an MRM with distinct rewards ρ₀ < ρ₁ < … < ρ_m (ρ₀ = 0) it computes
//
//	H_{ij}(t, r) = Pr{Y_t > r, X_t = j | X₀ = i}
//
// for r in the band [ρ_{h−1}·t, ρ_h·t) via uniformisation:
//
//	H(t,r) = Σ_{n≥0} e^{-λt}(λt)ⁿ/n! · Σ_{k=0}^{n} C(n,k) x_h^k (1-x_h)^{n-k} · C(h,n,k)
//
// with x_h = (r − ρ_{h−1}t)/((ρ_h − ρ_{h−1})t) and matrices C(h,n,k)
// defined by a band-wise convex-combination recursion. The matrices satisfy
// 0 ≤ C(h,n,k) ≤ Pⁿ (Sericola, Cor. 5.8), so the inner sum is bounded by 1
// and the Poisson tail yields the a-priori truncation point N_ε — the only
// one of the paper's three procedures with an a-priori error bound.
//
// Theorem 2 of the paper only ever reads the goal-set columns of H, so the
// recursion is carried on n×g slices (g = |goal|) rather than full n×n
// matrices: the up/down sweeps are row-local and the P·C products act
// column-wise, making the restriction exact — entry for entry, the sliced
// path performs the identical arithmetic as the full-width one (see
// Options.FullWidth and the crosscheck suite).
package sericola

import (
	"fmt"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/obs"
	"github.com/performability/csrl/internal/parallel"
	"github.com/performability/csrl/internal/sparse"
	"github.com/performability/csrl/internal/transient"
)

// Cache memoises uniformised matrices and Fox–Glynn tables across calls.
// It mirrors transient.Cache structurally, so one concrete implementation
// (internal/core's memo) satisfies both. Nil disables memoisation.
type Cache interface {
	Uniformised(m *mrm.MRM, lambda float64) (*sparse.CSR, error)
	// Poisson returns the Fox–Glynn weight table; like the transient
	// package's Cache it truncates the Poisson tails, and its callers owe
	// the ledger the two tail charges.
	//numerics:truncates foxglynn/left-tail foxglynn/right-tail
	Poisson(q, eps float64) (*numeric.PoissonWeights, error)
	// Absorbing mirrors transient.Cache.Absorbing; the Sericola recursion
	// itself never derives absorbing models, but keeping the method sets
	// identical lets one Cache value flow into the transient fallbacks.
	Absorbing(m *mrm.MRM, set *mrm.StateSet, zeroReward bool) (*mrm.MRM, error)
}

// Options configures the computation.
type Options struct {
	// Epsilon is the a-priori truncation error bound ε (Table 2 sweeps it).
	Epsilon float64
	// Lambda overrides the uniformisation rate (0 = automatic).
	Lambda float64
	// Workers bounds the parallelism of the per-level row sweeps:
	// 0 = runtime.NumCPU(), 1 = the exact sequential legacy path. The
	// recursion is partitioned by matrix row, and every row's arithmetic
	// runs in the sequential order, so results are bitwise independent of
	// Workers.
	Workers int
	// FullWidth forces the recursion to carry all n columns instead of only
	// the g goal columns. The sliced default performs the identical
	// arithmetic on the goal columns, so results are bitwise equal; the
	// knob exists for that crosscheck and for the perfbench contrast, not
	// for production use.
	FullWidth bool
	// SteadyDetect is forwarded to the transient fallback taken when the
	// reward bound is vacuous (see transient.Options.SteadyDetect); the
	// C(h,n,k) recursion itself always runs to its a-priori truncation
	// point N_ε.
	SteadyDetect transient.SteadyMode
	// Truncate is forwarded to the transient fallback (see
	// transient.Options.Truncate). It only takes effect on forward sweeps
	// there; the vacuous-bound leg here is a backward sweep and the
	// C(h,n,k) recursion carries conditional distributions whose columns
	// cannot be dropped independently, so neither truncates today. The
	// field keeps the checker's option plumbing uniform.
	Truncate float64
	// Cache, when non-nil, memoises the uniformised matrix and the
	// Poisson weight table.
	Cache Cache
	// Pool, when non-nil, supplies the n×g matrix banks of the recursion
	// and the scratch of the transient fallback. All bank buffers are
	// checked back in before ReachProbAll returns; the result vector is a
	// plain allocation owned by the caller.
	Pool *sparse.VecPool
	// Obs, when non-nil, receives the numerics-observability signals: the
	// Poisson series remainder past N_ε in the error-budget ledger, the
	// clamp residue as an indicative entry, level/band gauges and the
	// recursion span. It is forwarded to the transient fallback.
	Obs *obs.Recorder
}

// DefaultOptions matches the most accurate row of Table 2.
func DefaultOptions() Options { return Options{Epsilon: 1e-8} }

// clampTol is the symmetric tolerance for floating-point cancellation in
// the final goal-column sums: values inside [−clampTol, 0) and
// (1, 1+clampTol] are clamped to the nearest bound, values further outside
// [0,1] are reported as a numerical failure instead of silently returned.
const clampTol = 1e-9

// Result carries the reachability values and the number of uniformisation
// steps N that were needed (column "N" of Table 2).
type Result struct {
	// Values[i] = Pr{Y_t ≤ r, X_t ∈ goal | X₀ = i}.
	Values []float64
	// N is the truncation point N_ε of the uniformisation series.
	N int
}

// ReachProbAll computes Pr{Y_t ≤ r, X_t ∈ goal | X₀ = i} for every state i,
// the quantity required by Theorem 2 of the paper. It is the batch of one:
// see ReachProbBatch for several reward bounds sharing one recursion.
//
//numerics:domain t=rate r=rate
func ReachProbAll(m *mrm.MRM, goal *mrm.StateSet, t, r float64, opts Options) (*Result, error) {
	res, err := ReachProbBatch(m, goal, t, []float64{r}, opts)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// target is one reward bound's coordinates in the recursion: the band h
// with rShift ∈ [ρ_{h−1}t, ρ_h t) and the position x inside it. The
// C(h,n,k) recursion itself never reads r — bounds differ only in which
// band's matrices they read and in their binomial accumulation weights —
// which is exactly why a batch shares one recursion pass.
type target struct {
	h int
	x float64
}

// ReachProbBatch computes ReachProbAll for several reward bounds rs that
// share the model, goal set and time bound t, advancing all of them
// through a single C(h,n,k) recursion: the level matrices and the
// Poisson-weighted transient term are computed once, and each bound only
// adds its own binomial-weighted accumulation. When every bound lands on
// the same leg — all banded, or all vacuous — results[ri] is bitwise
// equal to ReachProbAll(m, goal, t, rs[ri], opts): the per-bound
// accumulators add the identical terms in the identical order, at a
// recursion cost of one instead of len(rs). A mixed batch runs both the
// transient sweep and the recursion, so the ε budget is split half per
// leg (see splitBudget); every result still meets the ε contract, at
// slightly tighter truncation points than the unbatched calls would use.
// Degenerate bounds (certainly exceeded, or vacuous against the maximal
// accumulable reward) are resolved without touching the recursion;
// vacuous bounds share one transient sweep.
//
//numerics:domain t=rate rs=rate
func ReachProbBatch(m *mrm.MRM, goal *mrm.StateSet, t float64, rs []float64, opts Options) ([]*Result, error) {
	if opts.Epsilon <= 0 {
		opts.Epsilon = DefaultOptions().Epsilon
	}
	n := m.N()
	if goal.Universe() != n {
		return nil, fmt.Errorf("sericola: goal universe %d for %d states", goal.Universe(), n)
	}
	if m.HasImpulses() {
		return nil, fmt.Errorf("sericola: %w", mrm.ErrImpulsesUnsupported)
	}
	for _, r := range rs {
		if t < 0 || r < 0 {
			return nil, fmt.Errorf("sericola: negative bound t=%v r=%v", t, r)
		}
	}
	if t < 0 {
		return nil, fmt.Errorf("sericola: negative bound t=%v", t)
	}
	results := make([]*Result, len(rs))
	if len(rs) == 0 {
		return results, nil
	}
	if t == 0 {
		// Y_0 = 0 ≤ r; the chain has not moved.
		for ri := range rs {
			res := &Result{Values: make([]float64, n)}
			goal.Each(func(i int) { res.Values[i] = 1 })
			results[ri] = res
		}
		return results, nil
	}

	// Shift rewards so that the smallest reward is 0 (the theorem requires
	// ρ₀ = 0): Y_t = ρ_min·t + Y'_t deterministically.
	rewards := m.DistinctRewards()
	rhoMin := rewards[0]
	shifted := make([]float64, len(rewards))
	for i, v := range rewards {
		shifted[i] = v - rhoMin
	}
	mBands := len(shifted) - 1 // shifted[0] = 0 = ρ₀

	lambda := opts.Lambda
	if lambda == 0 {
		lambda = m.UniformisationRate()
	}

	// Classify every bound: certainly exceeded (zero result), vacuous
	// (plain transient analysis) or banded (a recursion target).
	var targets []target
	var tgtResult []int // tgtResult[ti] = index into results
	var vacuous []int
	for ri, r := range rs {
		rShift := r - rhoMin*t
		switch {
		case rShift < 0:
			// The accumulated reward exceeds r with certainty.
			results[ri] = &Result{Values: make([]float64, n)}
		case mBands == 0 || rShift >= shifted[mBands]*t:
			// Either all rewards are equal (Y_t = ρ·t ≤ r guaranteed by the
			// rShift check above) or the bound exceeds the maximal
			// accumulable reward: the reward constraint is vacuous and a
			// plain transient analysis suffices.
			vacuous = append(vacuous, ri)
		default:
			// Locate the band h with rShift ∈ [ρ_{h-1}t, ρ_h t).
			h := 1
			for shifted[h]*t <= rShift {
				h++
			}
			x := (rShift - shifted[h-1]*t) / ((shifted[h] - shifted[h-1]) * t)
			targets = append(targets, target{h: h, x: x})
			tgtResult = append(tgtResult, ri)
		}
	}
	sweepEps, bandEps := splitBudget(opts.Epsilon, len(vacuous), len(targets))
	if len(vacuous) > 0 {
		// One backward sweep serves every vacuous bound; each Result owns
		// its Values, so later entries get copies.
		vals, err := transientGoal(m, goal, t, lambda, sweepEps, opts)
		if err != nil {
			return nil, err
		}
		for vi, ri := range vacuous {
			if vi == 0 {
				results[ri] = &Result{Values: vals}
				continue
			}
			cp := make([]float64, n)
			copy(cp, vals)
			results[ri] = &Result{Values: cp}
		}
	}
	if len(targets) == 0 {
		return results, nil
	}

	nSteps, err := numeric.PoissonTruncation(lambda*t, bandEps)
	if err != nil {
		return nil, fmt.Errorf("sericola: %w", err)
	}

	var p *sparse.CSR
	if opts.Cache != nil {
		p, err = opts.Cache.Uniformised(m, lambda)
	} else {
		p, err = m.Uniformised(lambda)
	}
	if err != nil {
		return nil, fmt.Errorf("sericola: %w", err)
	}

	// Per-state shifted rewards and band classification.
	rho := make([]float64, n)
	for s := 0; s < n; s++ {
		rho[s] = m.Reward(s) - rhoMin
	}

	// Poisson and binomial pmf terms come from internal/numeric's log-space
	// helpers (see the expunderflow analyzer): level ≤ nSteps and k ≤ level
	// bound both table sizes.
	poisPMF, err := numeric.PoissonPMFTable(lambda*t, nSteps)
	if err != nil {
		return nil, fmt.Errorf("sericola: %w", err)
	}
	lf := numeric.LogFactorials(nSteps)

	if opts.Obs != nil {
		// The a-priori bound guarantees the mass past N_ε is below ε; the
		// ledger records the actual series remainder 1 − Σ_{n≤N} pois(n),
		// which the inner sums (bounded by 1, Cor. 5.8) cannot exceed. The
		// batch runs the truncated series once, so it charges once.
		var kept float64
		for k := 0; k <= nSteps; k++ {
			kept += poisPMF(k)
		}
		rem := 1 - kept
		if rem < 0 {
			rem = 0
		}
		opts.Obs.Charge("sericola", "series-remainder", rem)
		opts.Obs.Gauge("sericola.levels").SetMax(float64(nSteps))
		opts.Obs.Gauge("sericola.bands").SetMax(float64(mBands))
	}

	// Goal-column slicing: the recursion only needs the columns Theorem 2
	// reads. FullWidth carries every column for the bitwise crosscheck.
	goalIdx := goal.Slice()
	cols := goalIdx
	if opts.FullWidth {
		cols = make([]int, n)
		for i := range cols {
			cols[i] = i
		}
	}
	g := len(cols)

	span := opts.Obs.StartSpan("sericola.recursion")
	hMats, tMat := run(p, rho, shifted, targets, poisPMF, lf, nSteps, opts.Workers, cols, opts.Pool)
	span.End()
	putAll := func() {
		for _, hm := range hMats {
			opts.Pool.Put(hm)
		}
		opts.Pool.Put(tMat)
	}

	for ti := range targets {
		hMat := hMats[ti]
		res := &Result{Values: make([]float64, n), N: nSteps}
		var clampResidue float64
		for i := 0; i < n; i++ {
			var v float64
			for j, col := range cols {
				// In sliced mode every carried column is a goal column; in
				// full-width mode restrict the sum to them, in the same
				// ascending order, so both paths add the identical terms.
				if opts.FullWidth && !goal.Contains(col) {
					continue
				}
				v += tMat[i*g+j] - hMat[i*g+j]
			}
			// Floating-point cancellation can land slightly outside [0,1] on
			// either side; clamp symmetrically within clampTol and refuse to
			// return silently wrong probabilities beyond it.
			switch {
			case v < 0:
				if v < -clampTol {
					putAll()
					return nil, fmt.Errorf("sericola: value %g at state %d is below 0 beyond the %g cancellation tolerance", v, i, clampTol)
				}
				if -v > clampResidue {
					clampResidue = -v
				}
				v = 0
			case v > 1:
				if v > 1+clampTol {
					putAll()
					return nil, fmt.Errorf("sericola: value %g at state %d exceeds 1 beyond the %g cancellation tolerance", v, i, clampTol)
				}
				if v-1 > clampResidue {
					clampResidue = v - 1
				}
				v = 1
			}
			res.Values[i] = v
		}
		if opts.Obs != nil && clampResidue > 0 {
			// Cancellation noise absorbed by the [0,1] clamp — a measured
			// round-off magnitude, not a provable truncation bound, so it
			// rides in the indicative section, one entry per bound exactly
			// as the unbatched calls would charge.
			opts.Obs.ChargeIndicative("sericola", "clamp-residue", clampResidue)
		}
		results[tgtResult[ti]] = res
	}
	putAll()
	return results, nil
}

// ReachProb computes the Theorem 2 quantity from the model's initial
// distribution.
//
//numerics:domain prob t=rate r=rate
func ReachProb(m *mrm.MRM, goal *mrm.StateSet, t, r float64, opts Options) (float64, int, error) {
	res, err := ReachProbAll(m, goal, t, r, opts)
	if err != nil {
		return 0, 0, err
	}
	var v float64
	for s, p := range m.InitView() {
		v += p * res.Values[s]
	}
	return v, res.N, nil
}

// runGrain is the minimum matrix size n·g before the per-level row sweeps
// fan out across workers.
const runGrain = 2048

// run executes the C(h,n,k) recursion restricted to the given column set
// and returns (per-target H matrices, Pois-weighted transient matrix), all
// flattened row-major n×g with column j holding original column cols[j].
// poisPMF and lf are the precomputed Poisson pmf and log-factorial tables
// covering 0..nSteps.
//
// Batching: the level matrices cur[h][k] cover every band h, so they are
// target-independent — a target only selects which band it reads
// (cur[target.h]) and the binomial row binoms[ti] it weights the read
// with. Each additional target therefore costs one extra n×g accumulator
// and one binomial row per level, while the recursion itself (the dominant
// O(m·N²) row products) runs once for the whole batch. For each target the
// accumulation performs the identical floating-point operations in the
// identical order as a single-target run, so batch results are bitwise
// equal to unbatched ones.
//
// Column slicing is exact: every operation of the recursion — the PC
// products (P·C)[i,j] = Σ_l P[i,l]·C[l,j], the Pⁿ update, the up/down
// convex-combination sweeps and the hMat/tMat accumulation — computes
// entry (i,j) from column-j entries only, so restricting to the goal
// columns performs, entry for entry, the identical floating-point
// operations in the identical order as the full-width recursion.
//
// Concurrency: the whole per-level computation is row-independent. For a
// fixed row i, the PC products and the Pⁿ update read only the previous
// level's matrices (immutable within the level), and the up/down sweeps
// read only entries of row i: the up-sweep base C(h,n,0) = C(h−1,n,n)
// stays in row i, and up(h,i) ⇒ up(h−1,i) guarantees that same-row value
// was produced by this row's own band-(h−1) sweep; dually for the
// down-sweep base via ¬up(h,i) ⇒ ¬up(h+1,i). The accumulation into
// hMat/tMat is row-local too, so each level needs exactly one parallel
// region over contiguous row ranges, with every row computed in the
// sequential order — results are bitwise identical for every workers
// value.
//
// Allocation: every n×g buffer is checked out of pool (nil-safe). The
// leased bank buffers are checked back in before run returns — always by
// the goroutine that owns the sequential bank bookkeeping, never inside
// the parallel region; only the returned hMats/tMat stay checked out, and
// ReachProbBatch returns those after summing.
func run(p *sparse.CSR, rho, bands []float64, targets []target, poisPMF func(int) float64, lf []float64, nSteps, workers int, cols []int, pool *sparse.VecPool) (hMats [][]float64, tMat []float64) {
	n := p.Dim()
	g := len(cols)
	mBands := len(bands) - 1
	if n*g < runGrain {
		workers = 1
	}

	// Row classification per band: up(h, i) ⇔ ρ_i ≥ ρ_h. Because bands are
	// consecutive distinct rewards, ¬up(h,i) ⇔ ρ_i ≤ ρ_{h−1}.
	up := make([][]bool, mBands+1)
	for h := 1; h <= mBands; h++ {
		up[h] = make([]bool, n)
		for i := 0; i < n; i++ {
			up[h][i] = rho[i] >= bands[h]
		}
	}

	sz := n * g
	// All n×g buffers of the recursion are carved out of one pooled slab.
	// The live set is known upfront — per band, the PC products hold one
	// buffer per level and the two rotating C banks grow to nSteps+1
	// buffers each, plus Pⁿ and its predecessor — so a single Get covers
	// the whole recursion and one Put checks it back in, regardless of how
	// the bank rotation below aliases the [][]float64 headers.
	nBufs := 2 + mBands*nSteps + 2*mBands*(nSteps+1)
	slab := pool.Get(nBufs * sz)
	off := 0
	newBank := func() []float64 {
		b := slab[off : off+sz : off+sz]
		off += sz
		return b
	}

	// C matrices for the previous and current level: cur[h][k], h ∈ 1..m,
	// k ∈ 0..level. Two banks of matrices are swapped between levels so
	// the O(m·N) matrices are allocated once, not once per level.
	prev := make([][][]float64, mBands+1)
	cur := make([][][]float64, mBands+1)
	spare := make([][][]float64, mBands+1) // bank reused as the next cur
	pc := make([][][]float64, mBands+1)    // pc[h][k] = P·prev[h][k]

	// Pⁿ (restricted to the carried columns) and its predecessor:
	// P⁰[i, cols[j]] = 1 iff i = cols[j].
	pn := newBank()
	for j, col := range cols {
		pn[col*g+j] = 1
	}
	pnNext := newBank()

	hMats = make([][]float64, len(targets))
	for ti := range hMats {
		hMats[ti] = pool.Get(sz)
	}
	tMat = pool.Get(sz)

	// Binomial pmf rows of the current level, one per target, recomputed
	// sequentially before each level's parallel region (read-only inside
	// it) — once per level, not once per worker.
	binoms := make([][]float64, len(targets))
	for ti := range binoms {
		binoms[ti] = make([]float64, nSteps+1)
	}

	// Level n = 0: C(h,0,0) = diag(1{up(h,i)}), restricted columns. The
	// bank headers are sized for the whole run upfront, so the rotation
	// below never re-allocates them.
	for h := 1; h <= mBands; h++ {
		c := newBank()
		for j, col := range cols {
			if up[h][col] {
				c[col*g+j] = 1
			}
		}
		bank := make([][]float64, 1, nSteps+1)
		bank[0] = c
		cur[h] = bank
	}
	accumulate := func(level int) {
		w := poisPMF(level)
		if w == 0 {
			return
		}
		for idx := 0; idx < sz; idx++ {
			tMat[idx] += w * pn[idx]
		}
		for ti := range targets {
			numeric.BinomialRow(lf, level, targets[ti].x, binoms[ti])
			ck := cur[targets[ti].h]
			hM := hMats[ti]
			for k := 0; k <= level; k++ {
				bw := binoms[ti][k]
				if bw == 0 {
					continue
				}
				c := ck[k]
				f := w * bw
				for idx := 0; idx < sz; idx++ {
					hM[idx] += f * c[idx]
				}
			}
		}
	}
	accumulate(0)

	// The per-level parallel body is hoisted out of the level loop (its
	// level-dependent inputs are captured by reference) so the loop does
	// not allocate a fresh closure per level. The row products go through
	// sparse.MulBlockRows — the multi-vector kernel's row-range core, one
	// read of the matrix's stored entries per row for all g carried
	// columns, with a register specialisation at g = 1; its zero-then-
	// accumulate order in CSR entry order keeps the products bitwise
	// identical to the previous hand-rolled flatten.
	var (
		level int
		w     float64
	)
	levelBody := func(lo, hi int) {
		// PC[h][k] = P·C(h, level−1, k) and Pⁿ, rows lo..hi−1.
		for h := 1; h <= mBands; h++ {
			for k := 0; k < level; k++ {
				p.MulBlockRows(pc[h][k], prev[h][k], g, lo, hi)
			}
		}
		p.MulBlockRows(pnNext, pn, g, lo, hi)
		// Up-row sweep: increasing h, increasing k.
		for h := 1; h <= mBands; h++ {
			dh := bands[h] - bands[h-1]
			for i := lo; i < hi; i++ {
				if !up[h][i] {
					continue
				}
				row := i * g
				// Base k = 0.
				var baseRow []float64
				if h == 1 {
					baseRow = pnNext
				} else {
					baseRow = cur[h-1][level]
				}
				copy(cur[h][0][row:row+g], baseRow[row:row+g])
				// k = 1..level.
				a := (rho[i] - bands[h]) / (rho[i] - bands[h-1])
				b := dh / (rho[i] - bands[h-1])
				for k := 1; k <= level; k++ {
					dst := cur[h][k]
					prevK := cur[h][k-1]
					pck := pc[h][k-1]
					for j := 0; j < g; j++ {
						dst[row+j] = a*prevK[row+j] + b*pck[row+j]
					}
				}
			}
		}
		// Down-row sweep: decreasing h, decreasing k.
		for h := mBands; h >= 1; h-- {
			dh := bands[h] - bands[h-1]
			for i := lo; i < hi; i++ {
				if up[h][i] {
					continue
				}
				row := i * g
				// Base k = level: C(h,n,n) = C(h+1,n,0), or 0 in the top
				// band (explicitly cleared — the buffers are recycled).
				if h < mBands {
					copy(cur[h][level][row:row+g], cur[h+1][0][row:row+g])
				} else {
					base := cur[h][level]
					for j := 0; j < g; j++ {
						base[row+j] = 0
					}
				}
				a := (bands[h-1] - rho[i]) / (bands[h] - rho[i])
				b := dh / (bands[h] - rho[i])
				for k := level - 1; k >= 0; k-- {
					dst := cur[h][k]
					nextK := cur[h][k+1]
					pck := pc[h][k]
					for j := 0; j < g; j++ {
						dst[row+j] = a*nextK[row+j] + b*pck[row+j]
					}
				}
			}
		}
		// Accumulate rows lo..hi−1 into tMat and every target's hMat
		// (row-local writes).
		if w == 0 {
			return
		}
		for idx := lo * g; idx < hi*g; idx++ {
			tMat[idx] += w * pnNext[idx]
		}
		for ti := range targets {
			ck := cur[targets[ti].h]
			hM := hMats[ti]
			for k := 0; k <= level; k++ {
				bw := binoms[ti][k]
				if bw == 0 {
					continue
				}
				c := ck[k]
				f := w * bw
				for idx := lo * g; idx < hi*g; idx++ {
					hM[idx] += f * c[idx]
				}
			}
		}
	}

	for level = 1; level <= nSteps; level++ {
		// Bank bookkeeping stays sequential: swap the matrix banks and make
		// sure every buffer the parallel region will write exists.
		for h := 1; h <= mBands; h++ {
			prev[h], spare[h] = cur[h], prev[h]
			if pc[h] == nil {
				pc[h] = make([][]float64, nSteps)
			}
			for k := 0; k < level; k++ {
				if pc[h][k] == nil {
					pc[h][k] = newBank()
				}
			}
			// Recycle the level-2 bank; every entry is fully overwritten
			// by the sweeps below except the explicitly cleared base case.
			bank := spare[h]
			if cap(bank) < level+1 {
				grown := make([][]float64, level+1, nSteps+1)
				copy(grown, bank)
				bank = grown
			}
			bank = bank[:level+1]
			for k := 0; k <= level; k++ {
				if bank[k] == nil {
					bank[k] = newBank()
				}
			}
			cur[h] = bank
		}

		// One parallel region per level: each worker owns a contiguous row
		// range and runs the full per-row pipeline — PC products, the Pⁿ
		// update (into pnNext, which holds P^level until the swap below),
		// the up/down sweeps and the accumulation — in sequential order.
		w = poisPMF(level)
		if w != 0 {
			for ti := range targets {
				numeric.BinomialRow(lf, level, targets[ti].x, binoms[ti])
			}
		}
		parallel.For(workers, n, levelBody)
		pn, pnNext = pnNext, pn
	}
	// Check the slab back in (hMats/tMat stay out; the caller returns them
	// after the goal-column summation).
	pool.Put(slab)
	return hMats, tMat
}

// splitBudget divides the ε budget between the two truncating legs of a
// batch: the transient sweep serving the vacuous bounds and the banded
// C(h,n,k) recursion. A leg that runs alone keeps the whole budget, so a
// batch of one is bitwise-identical to the unbatched call; a mixed batch
// gives each leg ε/2 (the same split discipline as the Fox–Glynn/steady
// division in internal/transient), keeping every path's total spend at ε.
func splitBudget(eps float64, nVacuous, nBanded int) (sweepEps, bandEps float64) {
	if nVacuous == 0 {
		return 0, eps
	}
	if nBanded == 0 {
		return eps, 0
	}
	return eps / 2, eps / 2
}

// transientGoal returns Σ_{j∈goal} Pr_i{X_t = j} for all i by one backward
// uniformisation sweep — the degenerate case where the reward bound is
// vacuous. It delegates to internal/transient, which brings steady-state
// detection and pooled scratch along for free.
func transientGoal(m *mrm.MRM, goal *mrm.StateSet, t, lambda, eps float64, opts Options) ([]float64, error) {
	topts := transient.Options{
		Epsilon:      eps,
		Lambda:       lambda,
		Workers:      opts.Workers,
		SteadyDetect: opts.SteadyDetect,
		Truncate:     opts.Truncate,
		Pool:         opts.Pool,
		Obs:          opts.Obs,
		// Cache's method set is identical to transient.Cache's, so the
		// interface value converts directly; nil stays nil.
		Cache: opts.Cache,
	}
	vals, err := transient.BackwardWeighted(m, goal.Indicator(), t, topts)
	if err != nil {
		return nil, err
	}
	// BackwardWeighted hands back a pool-borrowed buffer, but Options.Pool
	// documents the result vector as a plain allocation owned by the
	// caller — copy out and check the borrowed buffer back in.
	out := make([]float64, len(vals))
	copy(out, vals)
	opts.Pool.Put(vals)
	return out, nil
}
