// Package sericola implements the occupation-time distribution algorithm of
// Section 4.4 of the paper, based on B. Sericola, "Occupation times in
// Markov processes", Stochastic Models 16(5), 2000 (Theorem 5.6).
//
// For an MRM with distinct rewards ρ₀ < ρ₁ < … < ρ_m (ρ₀ = 0) it computes
//
//	H_{ij}(t, r) = Pr{Y_t > r, X_t = j | X₀ = i}
//
// for r in the band [ρ_{h−1}·t, ρ_h·t) via uniformisation:
//
//	H(t,r) = Σ_{n≥0} e^{-λt}(λt)ⁿ/n! · Σ_{k=0}^{n} C(n,k) x_h^k (1-x_h)^{n-k} · C(h,n,k)
//
// with x_h = (r − ρ_{h−1}t)/((ρ_h − ρ_{h−1})t) and matrices C(h,n,k)
// defined by a band-wise convex-combination recursion. The matrices satisfy
// 0 ≤ C(h,n,k) ≤ Pⁿ (Sericola, Cor. 5.8), so the inner sum is bounded by 1
// and the Poisson tail yields the a-priori truncation point N_ε — the only
// one of the paper's three procedures with an a-priori error bound.
package sericola

import (
	"fmt"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/parallel"
	"github.com/performability/csrl/internal/sparse"
)

// Cache memoises uniformised matrices and Fox–Glynn tables across calls.
// It mirrors transient.Cache structurally, so one concrete implementation
// (internal/core's memo) satisfies both. Nil disables memoisation.
type Cache interface {
	Uniformised(m *mrm.MRM, lambda float64) (*sparse.CSR, error)
	Poisson(q, eps float64) (*numeric.PoissonWeights, error)
}

// Options configures the computation.
type Options struct {
	// Epsilon is the a-priori truncation error bound ε (Table 2 sweeps it).
	Epsilon float64
	// Lambda overrides the uniformisation rate (0 = automatic).
	Lambda float64
	// Workers bounds the parallelism of the per-level row sweeps:
	// 0 = runtime.NumCPU(), 1 = the exact sequential legacy path. The
	// recursion is partitioned by matrix row, and every row's arithmetic
	// runs in the sequential order, so results are bitwise independent of
	// Workers.
	Workers int
	// Cache, when non-nil, memoises the uniformised matrix and the
	// Poisson weight table.
	Cache Cache
}

// DefaultOptions matches the most accurate row of Table 2.
func DefaultOptions() Options { return Options{Epsilon: 1e-8} }

// Result carries the reachability values and the number of uniformisation
// steps N that were needed (column "N" of Table 2).
type Result struct {
	// Values[i] = Pr{Y_t ≤ r, X_t ∈ goal | X₀ = i}.
	Values []float64
	// N is the truncation point N_ε of the uniformisation series.
	N int
}

// ReachProbAll computes Pr{Y_t ≤ r, X_t ∈ goal | X₀ = i} for every state i,
// the quantity required by Theorem 2 of the paper.
func ReachProbAll(m *mrm.MRM, goal *mrm.StateSet, t, r float64, opts Options) (*Result, error) {
	if opts.Epsilon <= 0 {
		opts.Epsilon = DefaultOptions().Epsilon
	}
	n := m.N()
	if goal.Universe() != n {
		return nil, fmt.Errorf("sericola: goal universe %d for %d states", goal.Universe(), n)
	}
	if m.HasImpulses() {
		return nil, fmt.Errorf("sericola: %w", mrm.ErrImpulsesUnsupported)
	}
	if t < 0 || r < 0 {
		return nil, fmt.Errorf("sericola: negative bound t=%v r=%v", t, r)
	}
	if t == 0 {
		// Y_0 = 0 ≤ r; the chain has not moved.
		res := &Result{Values: make([]float64, n)}
		goal.Each(func(i int) { res.Values[i] = 1 })
		return res, nil
	}

	// Shift rewards so that the smallest reward is 0 (the theorem requires
	// ρ₀ = 0): Y_t = ρ_min·t + Y'_t deterministically.
	rewards := m.DistinctRewards()
	rhoMin := rewards[0]
	rShift := r - rhoMin*t
	if rShift < 0 {
		// The accumulated reward exceeds r with certainty.
		return &Result{Values: make([]float64, n)}, nil
	}
	shifted := make([]float64, len(rewards))
	for i, v := range rewards {
		shifted[i] = v - rhoMin
	}
	mBands := len(shifted) - 1 // shifted[0] = 0 = ρ₀

	lambda := opts.Lambda
	if lambda == 0 {
		lambda = m.UniformisationRate()
	}

	if mBands == 0 || rShift >= shifted[mBands]*t {
		// Either all rewards are equal (Y_t = ρ·t ≤ r guaranteed by the
		// rShift check above) or the bound exceeds the maximal accumulable
		// reward: the reward constraint is vacuous and a plain transient
		// analysis suffices.
		vals, err := transientGoal(m, goal, t, lambda, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Values: vals}, nil
	}

	// Locate the band h with rShift ∈ [ρ_{h-1}t, ρ_h t).
	h := 1
	for shifted[h]*t <= rShift {
		h++
	}
	x := (rShift - shifted[h-1]*t) / ((shifted[h] - shifted[h-1]) * t)

	nSteps, err := numeric.PoissonTruncation(lambda*t, opts.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("sericola: %w", err)
	}

	var p *sparse.CSR
	if opts.Cache != nil {
		p, err = opts.Cache.Uniformised(m, lambda)
	} else {
		p, err = m.Uniformised(lambda)
	}
	if err != nil {
		return nil, fmt.Errorf("sericola: %w", err)
	}

	// Per-state shifted rewards and band classification.
	rho := make([]float64, n)
	for s := 0; s < n; s++ {
		rho[s] = m.Reward(s) - rhoMin
	}

	// Poisson and binomial pmf terms come from internal/numeric's log-space
	// helpers (see the expunderflow analyzer): level ≤ nSteps and k ≤ level
	// bound both table sizes.
	poisPMF, err := numeric.PoissonPMFTable(lambda*t, nSteps)
	if err != nil {
		return nil, fmt.Errorf("sericola: %w", err)
	}
	lf := numeric.LogFactorials(nSteps)

	hMat, tMat := run(p, rho, shifted, h, x, poisPMF, lf, nSteps, opts.Workers)

	res := &Result{Values: make([]float64, n), N: nSteps}
	goalIdx := goal.Slice()
	for i := 0; i < n; i++ {
		var v float64
		for _, j := range goalIdx {
			v += tMat[i*n+j] - hMat[i*n+j]
		}
		// Clamp tiny negative values from floating-point cancellation.
		if v < 0 && v > -1e-12 {
			v = 0
		}
		res.Values[i] = v
	}
	return res, nil
}

// ReachProb computes the Theorem 2 quantity from the model's initial
// distribution.
func ReachProb(m *mrm.MRM, goal *mrm.StateSet, t, r float64, opts Options) (float64, int, error) {
	res, err := ReachProbAll(m, goal, t, r, opts)
	if err != nil {
		return 0, 0, err
	}
	var v float64
	for s, p := range m.Init() {
		v += p * res.Values[s]
	}
	return v, res.N, nil
}

// runGrain is the minimum matrix size n² before the per-level row sweeps
// fan out across workers.
const runGrain = 2048

// run executes the C(h,n,k) recursion and returns (H, Pois-weighted
// transient matrix), both flattened row-major n×n. poisPMF and lf are the
// precomputed Poisson pmf and log-factorial tables covering 0..nSteps.
//
// Concurrency: the whole per-level computation is row-independent. For a
// fixed row i, the PC products and the Pⁿ update read only the previous
// level's matrices (immutable within the level), and the up/down sweeps
// read only entries of row i: the up-sweep base C(h,n,0) = C(h−1,n,n)
// stays in row i, and up(h,i) ⇒ up(h−1,i) guarantees that same-row value
// was produced by this row's own band-(h−1) sweep; dually for the
// down-sweep base via ¬up(h,i) ⇒ ¬up(h+1,i). The accumulation into
// hMat/tMat is row-local too, so each level needs exactly one parallel
// region over contiguous row ranges, with every row computed in the
// sequential order — results are bitwise identical for every workers
// value.
func run(p *sparse.CSR, rho, bands []float64, hTarget int, x float64, poisPMF func(int) float64, lf []float64, nSteps, workers int) (hMat, tMat []float64) {
	n := p.Dim()
	mBands := len(bands) - 1
	if n*n < runGrain {
		workers = 1
	}

	// Row classification per band: up(h, i) ⇔ ρ_i ≥ ρ_h. Because bands are
	// consecutive distinct rewards, ¬up(h,i) ⇔ ρ_i ≤ ρ_{h−1}.
	up := make([][]bool, mBands+1)
	for h := 1; h <= mBands; h++ {
		up[h] = make([]bool, n)
		for i := 0; i < n; i++ {
			up[h][i] = rho[i] >= bands[h]
		}
	}

	sz := n * n
	newMat := func() []float64 { return make([]float64, sz) }

	// C matrices for the previous and current level: cur[h][k], h ∈ 1..m,
	// k ∈ 0..level. Two banks of matrices are swapped between levels so
	// the O(m·N) matrices are allocated once, not once per level.
	prev := make([][][]float64, mBands+1)
	cur := make([][][]float64, mBands+1)
	spare := make([][][]float64, mBands+1) // bank reused as the next cur
	pc := make([][][]float64, mBands+1)    // pc[h][k] = P·prev[h][k]

	// Pⁿ (dense) and its predecessor.
	pn := newMat()
	for i := 0; i < n; i++ {
		pn[i*n+i] = 1
	}
	pnNext := newMat()

	hMat = newMat()
	tMat = newMat()

	binomPMF := func(nn, k int) float64 { return numeric.BinomialPMF(lf, nn, k, x) }

	// Level n = 0: C(h,0,0) = diag(1{up(h,i)}).
	for h := 1; h <= mBands; h++ {
		c := newMat()
		for i := 0; i < n; i++ {
			if up[h][i] {
				c[i*n+i] = 1
			}
		}
		cur[h] = [][]float64{c}
	}
	accumulate := func(level int) {
		w := poisPMF(level)
		if w == 0 {
			return
		}
		for idx := 0; idx < sz; idx++ {
			tMat[idx] += w * pn[idx]
		}
		ck := cur[hTarget]
		for k := 0; k <= level; k++ {
			bw := binomPMF(level, k)
			if bw == 0 {
				continue
			}
			c := ck[k]
			f := w * bw
			for idx := 0; idx < sz; idx++ {
				hMat[idx] += f * c[idx]
			}
		}
	}
	accumulate(0)

	mulRow := func(dst, src []float64, i int) {
		// dst row i = (P·src) row i.
		base := i * n
		for j := 0; j < n; j++ {
			dst[base+j] = 0
		}
		p.Row(i, func(col int, v float64) {
			srow := col * n
			for j := 0; j < n; j++ {
				dst[base+j] += v * src[srow+j]
			}
		})
	}

	for level := 1; level <= nSteps; level++ {
		// Bank bookkeeping stays sequential: swap the matrix banks and make
		// sure every buffer the parallel region will write exists.
		for h := 1; h <= mBands; h++ {
			prev[h], spare[h] = cur[h], prev[h]
			if pc[h] == nil {
				pc[h] = make([][]float64, nSteps)
			}
			for k := 0; k < level; k++ {
				if pc[h][k] == nil {
					pc[h][k] = newMat()
				}
			}
			// Recycle the level-2 bank; every entry is fully overwritten
			// by the sweeps below except the explicitly cleared base case.
			bank := spare[h]
			if cap(bank) < level+1 {
				grown := make([][]float64, level+1, nSteps+1)
				copy(grown, bank)
				bank = grown
			}
			bank = bank[:level+1]
			for k := 0; k <= level; k++ {
				if bank[k] == nil {
					bank[k] = newMat()
				}
			}
			cur[h] = bank
		}

		// One parallel region per level: each worker owns a contiguous row
		// range and runs the full per-row pipeline — PC products, the Pⁿ
		// update (into pnNext, which holds P^level until the swap below),
		// the up/down sweeps and the accumulation — in sequential order.
		w := poisPMF(level)
		parallel.For(workers, n, func(lo, hi int) {
			// PC[h][k] = P·C(h, level−1, k) and Pⁿ, rows lo..hi−1.
			for i := lo; i < hi; i++ {
				for h := 1; h <= mBands; h++ {
					for k := 0; k < level; k++ {
						mulRow(pc[h][k], prev[h][k], i)
					}
				}
				mulRow(pnNext, pn, i)
			}
			// Up-row sweep: increasing h, increasing k.
			for h := 1; h <= mBands; h++ {
				dh := bands[h] - bands[h-1]
				for i := lo; i < hi; i++ {
					if !up[h][i] {
						continue
					}
					row := i * n
					// Base k = 0.
					var baseRow []float64
					if h == 1 {
						baseRow = pnNext
					} else {
						baseRow = cur[h-1][level]
					}
					copy(cur[h][0][row:row+n], baseRow[row:row+n])
					// k = 1..level.
					a := (rho[i] - bands[h]) / (rho[i] - bands[h-1])
					b := dh / (rho[i] - bands[h-1])
					for k := 1; k <= level; k++ {
						dst := cur[h][k]
						prevK := cur[h][k-1]
						pck := pc[h][k-1]
						for j := 0; j < n; j++ {
							dst[row+j] = a*prevK[row+j] + b*pck[row+j]
						}
					}
				}
			}
			// Down-row sweep: decreasing h, decreasing k.
			for h := mBands; h >= 1; h-- {
				dh := bands[h] - bands[h-1]
				for i := lo; i < hi; i++ {
					if up[h][i] {
						continue
					}
					row := i * n
					// Base k = level: C(h,n,n) = C(h+1,n,0), or 0 in the top
					// band (explicitly cleared — the buffers are recycled).
					if h < mBands {
						copy(cur[h][level][row:row+n], cur[h+1][0][row:row+n])
					} else {
						base := cur[h][level]
						for j := 0; j < n; j++ {
							base[row+j] = 0
						}
					}
					a := (bands[h-1] - rho[i]) / (bands[h] - rho[i])
					b := dh / (bands[h] - rho[i])
					for k := level - 1; k >= 0; k-- {
						dst := cur[h][k]
						nextK := cur[h][k+1]
						pck := pc[h][k]
						for j := 0; j < n; j++ {
							dst[row+j] = a*nextK[row+j] + b*pck[row+j]
						}
					}
				}
			}
			// Accumulate rows lo..hi−1 into tMat/hMat (row-local writes).
			if w == 0 {
				return
			}
			for idx := lo * n; idx < hi*n; idx++ {
				tMat[idx] += w * pnNext[idx]
			}
			ck := cur[hTarget]
			for k := 0; k <= level; k++ {
				bw := binomPMF(level, k)
				if bw == 0 {
					continue
				}
				c := ck[k]
				f := w * bw
				for idx := lo * n; idx < hi*n; idx++ {
					hMat[idx] += f * c[idx]
				}
			}
		})
		pn, pnNext = pnNext, pn
	}
	return hMat, tMat
}

// transientGoal returns Σ_{j∈goal} Pr_i{X_t = j} for all i by backward
// uniformisation — the degenerate case where the reward bound is vacuous.
func transientGoal(m *mrm.MRM, goal *mrm.StateSet, t, lambda float64, opts Options) ([]float64, error) {
	var p *sparse.CSR
	var err error
	if opts.Cache != nil {
		p, err = opts.Cache.Uniformised(m, lambda)
	} else {
		p, err = m.Uniformised(lambda)
	}
	if err != nil {
		return nil, err
	}
	var w *numeric.PoissonWeights
	if opts.Cache != nil {
		w, err = opts.Cache.Poisson(lambda*t, opts.Epsilon)
	} else {
		w, err = numeric.FoxGlynn(lambda*t, opts.Epsilon)
	}
	if err != nil {
		return nil, err
	}
	n := m.N()
	cur := goal.Indicator()
	next := make([]float64, n)
	acc := make([]float64, n)
	for step := 0; step <= w.Right; step++ {
		if step >= w.Left {
			sparse.AXPY(w.Weight(step), cur, acc)
		}
		if step < w.Right {
			p.MulVecPar(next, cur, opts.Workers)
			cur, next = next, cur
		}
	}
	return acc, nil
}
