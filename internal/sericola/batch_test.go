package sericola

import (
	"testing"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sparse"
)

// batchWorkers is the worker grid the ISSUE pins for the bitwise suite.
var batchWorkers = []int{1, 2, 4, 8}

// TestBatchBitwiseEqualsIndividual pins the batching contract: for every
// reward bound in an all-banded batch — several bounds in different
// bands, including a repeated one — the batch result must be bitwise
// equal to the unbatched ReachProbAll call, across the worker grid.
func TestBatchBitwiseEqualsIndividual(t *testing.T) {
	m := fourState(t)
	goal := mrm.NewStateSetOf(m.N(), 1, 3)
	const tb = 1.5
	// Max shifted reward is 2·t = 3: r=0.4 and r=0.9 land in band 1
	// (reward interval [0,1)·t), r=2.2 in band 2. With rhoMin = 0 no
	// bound can be certainly exceeded, so a duplicate banded bound covers
	// repeated targets instead.
	rs := []float64{0.4, 2.2, 0.9, 0.4}
	for _, workers := range batchWorkers {
		opts := Options{Epsilon: 1e-10, Workers: workers, Pool: sparse.NewVecPool()}
		batch, err := ReachProbBatch(m, goal, tb, rs, opts)
		if err != nil {
			t.Fatalf("workers=%d: batch: %v", workers, err)
		}
		if len(batch) != len(rs) {
			t.Fatalf("workers=%d: %d results for %d bounds", workers, len(batch), len(rs))
		}
		for ri, r := range rs {
			single, err := ReachProbAll(m, goal, tb, r, opts)
			if err != nil {
				t.Fatalf("workers=%d r=%v: single: %v", workers, r, err)
			}
			bitwiseEqual(t, "batch vs single", batch[ri].Values, single.Values)
			if batch[ri].N != single.N {
				t.Errorf("workers=%d r=%v: truncation N %d vs %d", workers, r, batch[ri].N, single.N)
			}
		}
	}
}

// TestMixedBatchSplitsBudget pins the mixed-batch contract: when a batch
// needs both the transient sweep (vacuous bounds) and the banded
// recursion, each leg runs on ε/2 (splitBudget), so every result is
// bitwise equal to the unbatched call at half the requested accuracy —
// never looser than the ε contract, and deterministically reproducible.
func TestMixedBatchSplitsBudget(t *testing.T) {
	m := fourState(t)
	goal := mrm.NewStateSetOf(m.N(), 1, 3)
	const (
		tb  = 1.5
		eps = 1e-10
	)
	// r=5 exceeds the maximal accumulable reward 2·t = 3: vacuous. The
	// rest are banded, so the batch exercises both legs on one call.
	rs := []float64{0.4, 2.2, 5.0, 0.9}
	for _, workers := range batchWorkers {
		opts := Options{Epsilon: eps, Workers: workers, Pool: sparse.NewVecPool()}
		batch, err := ReachProbBatch(m, goal, tb, rs, opts)
		if err != nil {
			t.Fatalf("workers=%d: batch: %v", workers, err)
		}
		half := opts
		half.Epsilon = eps / 2
		for ri, r := range rs {
			single, err := ReachProbAll(m, goal, tb, r, half)
			if err != nil {
				t.Fatalf("workers=%d r=%v: single at ε/2: %v", workers, r, err)
			}
			bitwiseEqual(t, "mixed batch vs single at ε/2", batch[ri].Values, single.Values)
			if batch[ri].N != single.N {
				t.Errorf("workers=%d r=%v: truncation N %d vs %d", workers, r, batch[ri].N, single.N)
			}
		}
	}
}

// TestBatchCertainlyExceeded uses a model with rhoMin > 0 so a small bound
// is exceeded with certainty and must come back all-zero without touching
// the recursion.
func TestBatchCertainlyExceeded(t *testing.T) {
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 1).Rate(1, 2, 2).Rate(2, 0, 1)
	b.Reward(0, 1)
	b.Reward(1, 2)
	b.Reward(2, 3)
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	goal := mrm.NewStateSetOf(3, 2)
	// rhoMin·t = 2, so r = 1 is certainly exceeded; r = 2.5 is banded.
	rs := []float64{1, 2.5}
	batch, err := ReachProbBatch(m, goal, 2, rs, Options{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for s, v := range batch[0].Values {
		if v != 0 {
			t.Errorf("certainly-exceeded bound: state %d = %v, want 0", s, v)
		}
	}
	single, err := ReachProbAll(m, goal, 2, 2.5, Options{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "banded bound next to degenerate one", batch[1].Values, single.Values)
}

// TestBatchDegenerateInputs covers the edges: empty batch, t = 0, and
// negative bounds.
func TestBatchDegenerateInputs(t *testing.T) {
	m := fourState(t)
	goal := mrm.NewStateSetOf(m.N(), 3)
	out, err := ReachProbBatch(m, goal, 1, nil, Options{Epsilon: 1e-10})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	out, err = ReachProbBatch(m, goal, 0, []float64{0.5, 2}, Options{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range out {
		for s, v := range res.Values {
			want := 0.0
			if goal.Contains(s) {
				want = 1
			}
			if v != want {
				t.Errorf("t=0: state %d = %v, want %v", s, v, want)
			}
		}
	}
	if _, err := ReachProbBatch(m, goal, 1, []float64{0.5, -1}, Options{Epsilon: 1e-10}); err == nil {
		t.Fatal("negative r must error")
	}
	if _, err := ReachProbBatch(m, goal, -1, []float64{0.5}, Options{Epsilon: 1e-10}); err == nil {
		t.Fatal("negative t must error")
	}
}

// TestBatchSharesPool makes sure a pooled batch returns every recursion
// buffer: after the call the pool must hold as many free slabs as it
// handed out (nothing leaks, nothing double-frees).
func TestBatchSharesPool(t *testing.T) {
	m := fourState(t)
	goal := mrm.NewStateSetOf(m.N(), 1, 3)
	pool := sparse.NewVecPool()
	rs := []float64{0.4, 0.9, 2.2}
	if _, err := ReachProbBatch(m, goal, 1.5, rs, Options{Epsilon: 1e-10, Pool: pool}); err != nil {
		t.Fatal(err)
	}
	stats := pool.Stats()
	if stats.Gets == 0 {
		t.Fatal("pooled batch performed no pool traffic")
	}
	// Re-running the identical batch must be served from the free lists.
	before := stats.AllocBytes
	if _, err := ReachProbBatch(m, goal, 1.5, rs, Options{Epsilon: 1e-10, Pool: pool}); err != nil {
		t.Fatal(err)
	}
	if after := pool.Stats().AllocBytes; after != before {
		t.Errorf("second batch allocated %d fresh bytes; every buffer should have been recycled", after-before)
	}
}
