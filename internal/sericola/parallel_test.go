package sericola

import (
	"runtime"
	"testing"

	"github.com/performability/csrl/internal/mrm"
)

// gridModel builds an n-state chain with three distinct rewards, large
// enough (n² ≥ runGrain) that the per-level row sweeps actually fan out.
func gridModel(t *testing.T, n int) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(n)
	for s := 0; s < n; s++ {
		b.Rate(s, (s+1)%n, 2.0+0.01*float64(s%7))
		b.Rate(s, (s+n-1)%n, 0.5)
		b.Reward(s, float64(s%3)) // rewards {0, 1, 2}
		if s%4 == 0 {
			b.Label(s, "goal")
		}
	}
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestReachProbAllParallelEquivalence(t *testing.T) {
	m := gridModel(t, 60)
	goal := m.Label("goal")
	const tb, rb = 0.8, 0.9 // binds: max accumulable reward is 2·tb
	seq, err := ReachProbAll(m, goal, tb, rb, Options{Epsilon: 1e-9, Workers: 1})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, workers := range []int{0, 2, 3, runtime.NumCPU()} {
		par, err := ReachProbAll(m, goal, tb, rb, Options{Epsilon: 1e-9, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.N != seq.N {
			t.Fatalf("workers=%d: N=%d, sequential N=%d", workers, par.N, seq.N)
		}
		for s := range par.Values {
			// Row-partitioned sweeps preserve sequential per-row arithmetic
			// order, so the parallel result must be bitwise identical.
			if par.Values[s] != seq.Values[s] {
				t.Fatalf("workers=%d: state %d: %g != sequential %g",
					workers, s, par.Values[s], seq.Values[s])
			}
		}
	}
}

func TestReachProbAllParallelVacuousBound(t *testing.T) {
	// Vacuous reward bound exercises the transientGoal fallback's parallel
	// kernels instead of the recursion.
	m := gridModel(t, 60)
	goal := m.Label("goal")
	const tb = 0.8
	rb := 2*tb + 1 // exceeds max accumulable reward
	seq, err := ReachProbAll(m, goal, tb, rb, Options{Epsilon: 1e-9, Workers: 1})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := ReachProbAll(m, goal, tb, rb, Options{Epsilon: 1e-9, Workers: 0})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for s := range par.Values {
		if par.Values[s] != seq.Values[s] {
			t.Fatalf("state %d: %g != sequential %g", s, par.Values[s], seq.Values[s])
		}
	}
}
