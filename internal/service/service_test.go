package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/modelfile"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/obs"
)

// newTestServer starts an httptest server over a fresh Server with the
// given batch window and returns it with the uploaded station model's
// fingerprint.
func newTestServer(t *testing.T, window time.Duration) (*Server, *httptest.Server, *mrm.MRM, string) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Epsilon = 1e-7
	s, err := New(Options{Checker: opts, BatchWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	m, err := adhoc.Model()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := modelfile.Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != m.Fingerprint() {
		t.Fatalf("upload fingerprint %s != local %s", info.Fingerprint, m.Fingerprint())
	}
	if !info.Created {
		t.Fatal("first upload should report created")
	}
	return s, ts, m, info.Fingerprint
}

func postCheck(t *testing.T, url string, req CheckRequest) (int, CheckResponse, apiError) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr apiError
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		return resp.StatusCode, CheckResponse{}, apiErr
	}
	var out CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, apiError{}
}

func TestUploadIdempotentByFingerprint(t *testing.T) {
	_, ts, m, fp := newTestServer(t, -1)

	// Re-encode and re-upload: a different byte stream (fresh JSON
	// marshalling) must land on the same registry entry.
	var buf bytes.Buffer
	if err := modelfile.Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload: status %d, want 200", resp.StatusCode)
	}
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Created {
		t.Fatal("re-upload must not create a second entry")
	}
	if info.Fingerprint != fp {
		t.Fatalf("re-upload fingerprint %s != %s", info.Fingerprint, fp)
	}
	if info.Uploads != 2 {
		t.Fatalf("uploads = %d, want 2", info.Uploads)
	}

	list, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var models []ModelInfo
	if err := json.NewDecoder(list.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 {
		t.Fatalf("registry lists %d models, want 1", len(models))
	}
}

// TestCheckMatchesDirectChecker pins the service answers bitwise to a
// direct core.Checker run with the same options — the "identical to the
// one-shot CLI" guarantee, across batched and unbatched code paths.
func TestCheckMatchesDirectChecker(t *testing.T) {
	_, ts, m, fp := newTestServer(t, -1)

	opts := core.DefaultOptions()
	opts.Epsilon = 1e-7
	direct := core.New(m, opts)

	cases := []struct {
		formula string
		query   bool
	}{
		// Batchable shape: doubly bounded until.
		{"P=? [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]", true},
		{"P>=0.1 [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]", false},
		// Unbatchable shapes: time-only until, steady query, boolean.
		{"P=? [ !call_incoming U{t<=12} call_incoming ]", true},
		{"S=? [ doze ]", true},
		{"call_idle | call_incoming", false},
	}
	for _, tc := range cases {
		status, got, apiErr := postCheck(t, ts.URL, CheckRequest{Model: fp, Formula: tc.formula, States: true})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.formula, status, apiErr.Error)
		}
		if got.Report == nil {
			t.Fatalf("%s: response carries no numerics report", tc.formula)
		}
		if !got.BudgetOK {
			t.Fatalf("%s: budget proof failed: total %g", tc.formula, got.Report.BudgetTotal)
		}
		f := logic.MustParse(tc.formula)
		if tc.query {
			vals, err := direct.Values(f)
			if err != nil {
				t.Fatal(err)
			}
			var want float64
			for s, alpha := range m.InitView() {
				want += alpha * vals[s]
			}
			if got.Value == nil {
				t.Fatalf("%s: no value in query response", tc.formula)
			}
			if fmt.Sprintf("%x", *got.Value) != fmt.Sprintf("%x", want) {
				t.Fatalf("%s: service value %v != direct %v", tc.formula, *got.Value, want)
			}
			if fmt.Sprintf("%x", got.Values) != fmt.Sprintf("%x", vals) {
				t.Fatalf("%s: per-state values diverge from direct checker", tc.formula)
			}
		} else {
			sat, err := direct.Sat(f)
			if err != nil {
				t.Fatal(err)
			}
			holds, err := direct.Check(f)
			if err != nil {
				t.Fatal(err)
			}
			if got.Holds == nil || *got.Holds != holds {
				t.Fatalf("%s: service holds %v != direct %v", tc.formula, got.Holds, holds)
			}
			if got.Satisfying == nil || *got.Satisfying != sat.Len() {
				t.Fatalf("%s: service satisfying %v != direct %d", tc.formula, got.Satisfying, sat.Len())
			}
			for i, v := range got.Verdicts {
				if v != sat.Contains(i) {
					t.Fatalf("%s: verdict for state %d diverges", tc.formula, i)
				}
			}
		}
	}
}

// TestConcurrentRequestsCoalesceAndStayDisjoint is the service-level
// acceptance check: concurrent queries against one model coalesce into a
// batch, every response carries its own budget proof, answers are bitwise
// those of sequential one-at-a-time runs, and a second identical wave is
// served from the memo without new misses.
func TestConcurrentRequestsCoalesceAndStayDisjoint(t *testing.T) {
	// A generous window so that 8 goroutines firing together land in one
	// group even on a loaded CI machine.
	s, ts, m, fp := newTestServer(t, 200*time.Millisecond)

	rewards := []float64{100, 200, 300, 400, 500, 600, 700, 800}
	formula := func(r float64) string {
		return fmt.Sprintf("P=? [ (call_idle | doze) U{t<=24, r<=%g} call_initiated ]", r)
	}

	// Sequential baseline, direct checker (fresh per call: no shared memo
	// effects in the expectation).
	opts := core.DefaultOptions()
	opts.Epsilon = 1e-7
	want := make(map[float64]float64)
	for _, r := range rewards {
		direct := core.New(m, opts)
		vals, err := direct.Values(logic.MustParse(formula(r)))
		if err != nil {
			t.Fatal(err)
		}
		var v float64
		for st, alpha := range m.InitView() {
			v += alpha * vals[st]
		}
		want[r] = v
	}

	wave := func(assertBatched bool) (maxHits, maxMisses int64) {
		var wg sync.WaitGroup
		results := make([]CheckResponse, len(rewards))
		errs := make([]string, len(rewards))
		for i, r := range rewards {
			wg.Add(1)
			go func(i int, r float64) {
				defer wg.Done()
				status, resp, apiErr := postCheck(t, ts.URL, CheckRequest{Model: fp, Formula: formula(r)})
				if status != http.StatusOK {
					errs[i] = fmt.Sprintf("status %d: %s", status, apiErr.Error)
					return
				}
				results[i] = resp
			}(i, r)
		}
		wg.Wait()
		sawBatch := false
		for i, r := range rewards {
			if errs[i] != "" {
				t.Fatalf("r=%g: %s", r, errs[i])
			}
			resp := results[i]
			if resp.Value == nil {
				t.Fatalf("r=%g: no value", r)
			}
			if fmt.Sprintf("%x", *resp.Value) != fmt.Sprintf("%x", want[r]) {
				t.Fatalf("r=%g: concurrent value %v != sequential %v", r, *resp.Value, want[r])
			}
			if !resp.BudgetOK {
				t.Fatalf("r=%g: budget proof failed", r)
			}
			if resp.Batched {
				sawBatch = true
			}
			if resp.Memo.Hits > maxHits {
				maxHits = resp.Memo.Hits
			}
			if resp.Memo.Misses > maxMisses {
				maxMisses = resp.Memo.Misses
			}
		}
		if assertBatched && !sawBatch {
			t.Fatal("no request reports being batched despite a 200ms window and 8 concurrent companions")
		}
		return maxHits, maxMisses
	}

	_, misses1 := wave(true)
	hits2, misses2 := wave(false)

	// The second wave re-runs the identical queries: every uniformisation,
	// Fox–Glynn table and lump quotient is already memoised, so hits climb
	// and no new misses appear — the no-re-uniformisation guarantee.
	if hits2 == 0 {
		t.Fatal("second wave reports zero memo hits")
	}
	if misses2 != misses1 {
		t.Fatalf("second wave added memo misses: %d -> %d", misses1, misses2)
	}

	st := s.Snapshot()
	if st.Batches == 0 {
		t.Fatal("stats report zero batches fired")
	}
	if st.MaxBatch < 2 {
		t.Fatalf("stats report max batch %d, want >= 2", st.MaxBatch)
	}
	if st.Requests != int64(2*len(rewards)) {
		t.Fatalf("stats report %d requests, want %d", st.Requests, 2*len(rewards))
	}
}

// TestBatchedLedgerIsShared pins the documented ledger semantics of a
// batch: members share the computation, so they share one report whose
// budget holds for each of them.
func TestBatchedLedgerIsShared(t *testing.T) {
	m, err := adhoc.Model()
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Epsilon = 1e-7
	b := newBatcher(core.New(m, opts), 100*time.Millisecond)

	f := logic.MustParse("P=? [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]").(logic.Prob)
	u := f.Path.(logic.Until)
	u2 := u
	u2.Reward = logic.UpTo(300)

	var wg sync.WaitGroup
	var r1, r2 batchResult
	wg.Add(2)
	go func() { defer wg.Done(); r1, _ = b.admit(f, u) }()
	go func() { defer wg.Done(); r2, _ = b.admit(f, u2) }()
	wg.Wait()

	if r1.err != nil || r2.err != nil {
		t.Fatalf("batch errors: %v / %v", r1.err, r2.err)
	}
	if r1.size != 2 || r2.size != 2 {
		t.Fatalf("batch sizes %d/%d, want 2/2", r1.size, r2.size)
	}
	if r1.report != r2.report {
		t.Fatal("batch members must share the group's report")
	}
	if !r1.report.BudgetOK {
		t.Fatal("group budget proof failed")
	}
	if fmt.Sprintf("%x", r1.vals) == fmt.Sprintf("%x", r2.vals) {
		t.Fatal("different reward bounds produced identical columns")
	}
}

// TestPerRequestLedgersAreDisjoint runs unbatched requests concurrently
// and asserts each response's ledger is its own: a boolean query charges
// nothing even while numerical neighbours charge, and every numerical
// response's budget total equals the sequential value.
func TestPerRequestLedgersAreDisjoint(t *testing.T) {
	_, ts, m, fp := newTestServer(t, -1)

	numerical := "P=? [ !call_incoming U{t<=12} call_incoming ]"
	boolean := "call_idle | doze"

	opts := core.DefaultOptions()
	opts.Epsilon = 1e-7
	direct := core.New(m, opts)
	rec := obs.New()
	if _, err := direct.WithRecorder(rec).Values(logic.MustParse(numerical)); err != nil {
		t.Fatal(err)
	}
	wantTotal := rec.Report(opts.Epsilon).BudgetTotal

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				_, resp, _ := postCheck(t, ts.URL, CheckRequest{Model: fp, Formula: numerical})
				if resp.Report == nil {
					t.Error("numerical: missing report")
					return
				}
				if fmt.Sprintf("%x", resp.Report.BudgetTotal) != fmt.Sprintf("%x", wantTotal) {
					t.Errorf("numerical budget total %g != sequential %g (ledger bled across requests?)",
						resp.Report.BudgetTotal, wantTotal)
				}
			} else {
				_, resp, _ := postCheck(t, ts.URL, CheckRequest{Model: fp, Formula: boolean})
				if resp.Report == nil {
					t.Error("boolean: missing report")
					return
				}
				if len(resp.Report.Budget) != 0 || resp.Report.BudgetTotal != 0 {
					t.Errorf("boolean query charged the ledger: %+v", resp.Report.Budget)
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestCheckErrors(t *testing.T) {
	_, ts, _, fp := newTestServer(t, -1)

	status, _, apiErr := postCheck(t, ts.URL, CheckRequest{Model: "deadbeef", Formula: "true"})
	if status != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404 (%s)", status, apiErr.Error)
	}
	status, _, apiErr = postCheck(t, ts.URL, CheckRequest{Model: fp, Formula: "P=? [ oops"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad formula: status %d, want 400 (%s)", status, apiErr.Error)
	}
	status, _, apiErr = postCheck(t, ts.URL, CheckRequest{Model: fp, Formula: "no_such_label"})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown label: status %d, want 422 (%s)", status, apiErr.Error)
	}

	resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	get, err := http.Get(ts.URL + "/v1/check")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/check: status %d, want 405", get.StatusCode)
	}
}

func TestRecorderInOptionsRejected(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Obs = obs.New()
	if _, err := New(Options{Checker: opts}); err == nil {
		t.Fatal("New accepted a shared recorder in Options.Checker.Obs")
	}
}
