// Batched admission: concurrent queries against the same model that share
// an until shape — same Φ, Ψ and time bound, differing only in the reward
// bound — are coalesced onto one Checker.UntilProbBatch call. The batch
// kernels (PR 7) evaluate g reward columns through one Sericola recursion
// over the memoised uniformised matrix, bitwise-identically to g separate
// runs, so coalescing changes latency and cost but never answers.
//
// The mechanism is a short admission window: the first query of a group
// opens it, companions arriving within it join, and when the timer fires
// the whole group is computed once and every member receives its own
// column. Requests whose formula shape the batch kernels don't cover
// bypass admission entirely.

package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/obs"
)

// groupKey identifies queries that may share one batch: same bounded-until
// skeleton up to the reward bound. The formulas are keyed by their
// canonical String() rendering — the parser and printer round-trip, so
// syntactically different spellings of the same subformula coalesce iff
// they print the same.
type groupKey struct {
	left, right string
	t           float64
}

// pending is one admitted query waiting for its group to fire.
type pending struct {
	r  float64
	ch chan batchResult
}

// batchResult is what one group member receives: its own copy of the
// per-state probability column, the group's shared numerics report, and
// the group size.
type batchResult struct {
	vals   []float64
	report *obs.Report
	size   int
	err    error
}

// batcher runs the admission window for one model's checker.
type batcher struct {
	checker *core.Checker
	window  time.Duration

	mu     sync.Mutex
	groups map[groupKey]*group // guarded by mu

	// stats, guarded by mu
	batches   int64 // groups fired
	coalesced int64 // members of groups with size >= 2
	maxBatch  int64
}

// group is one open admission window.
type group struct {
	u       logic.Until // parsed formulas of the first member (all members agree up to String())
	members []pending
}

func newBatcher(c *core.Checker, window time.Duration) *batcher {
	return &batcher{checker: c, window: window, groups: make(map[groupKey]*group)}
}

// admit submits one eligible query and blocks until its batch fires,
// returning the member's own column of until probabilities (the P
// operator's bound/complement are the caller's to apply). With batching
// disabled (negative window) the query runs alone immediately.
func (b *batcher) admit(p logic.Prob, u logic.Until) (batchResult, error) {
	if b.window < 0 {
		return b.fire(u, []pending{{r: u.Reward.Hi}})[0], nil
	}
	key := groupKey{left: u.Left.String(), right: u.Right.String(), t: u.Time.Hi}
	ch := make(chan batchResult, 1)

	b.mu.Lock()
	g, open := b.groups[key]
	if !open {
		g = &group{u: u}
		b.groups[key] = g
		// The window timer closes the group; members joining after close
		// start a fresh one.
		time.AfterFunc(b.window, func() { b.close(key) })
	}
	g.members = append(g.members, pending{r: u.Reward.Hi, ch: ch})
	b.mu.Unlock()

	res := <-ch
	return res, res.err
}

// close detaches the group and fires it. Runs on the timer goroutine, so
// a slow batch never blocks admission of the next window.
func (b *batcher) close(key groupKey) {
	b.mu.Lock()
	g := b.groups[key]
	delete(b.groups, key)
	b.mu.Unlock()
	if g == nil {
		return
	}
	results := b.fire(g.u, g.members)
	for i, m := range g.members {
		m.ch <- results[i]
	}
}

// fire evaluates one group: deduplicate the reward bounds, run the batch
// under a recorder shared by the group (the members share the computation,
// so they share its ledger — each gets a pointer to the one report), and
// hand every member a private copy of its column.
func (b *batcher) fire(u logic.Until, members []pending) []batchResult {
	// Deduplicate and SORT the reward bounds: members arrive in scheduler
	// order, and an order-dependent rs slice would give the same logical
	// batch a different memo key on every wave — re-deriving work the
	// cache already holds.
	col := make(map[float64]int, len(members)) // reward bound -> batch column
	for _, m := range members {
		col[m.r] = 0
	}
	rs := make([]float64, 0, len(col))
	for r := range col {
		rs = append(rs, r)
	}
	sort.Float64s(rs)
	for i, r := range rs {
		col[r] = i
	}

	rec := obs.New()
	view := b.checker.WithRecorder(rec)
	out := make([]batchResult, len(members))
	cols, err := view.UntilProbBatch(u.Left, u.Right, u.Time.Hi, rs)
	if err != nil {
		err = fmt.Errorf("batched until (%d members): %w", len(members), err)
		for i := range out {
			out[i] = batchResult{err: err}
		}
		return out
	}
	rep := view.NumericsReport()

	for i, m := range members {
		vals := make([]float64, len(cols[col[m.r]]))
		copy(vals, cols[col[m.r]])
		out[i] = batchResult{vals: vals, report: rep, size: len(members)}
	}

	b.mu.Lock()
	b.batches++
	n := int64(len(members))
	if n > 1 {
		b.coalesced += n
	}
	if n > b.maxBatch {
		b.maxBatch = n
	}
	b.mu.Unlock()
	return out
}

// batchStats is the batcher's contribution to /v1/stats.
type batchStats struct {
	batches, coalesced, maxBatch int64
}

func (b *batcher) snapshot() batchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return batchStats{batches: b.batches, coalesced: b.coalesced, maxBatch: b.maxBatch}
}
