// Package service implements the long-running HTTP/JSON checker service
// behind cmd/csrld: the "millions of users" architecture move of the
// roadmap, where everything the batch CLI builds per process — parsed
// models, the checker memo (uniformised matrices, Fox–Glynn tables, lump
// quotients), the vector pools, the parallel engine — becomes shared
// infrastructure serving many concurrent requests.
//
// The moving parts:
//
//   - a parse-once model registry keyed by mrm.Fingerprint(): re-uploading
//     the same model file lands on the existing entry, whose shared
//     core.Checker keeps every cross-request cache warm (pointer-identity
//     memo keys don't survive re-parsing, content hashes do);
//   - per-request obs.Recorder instances grafted onto the shared checker
//     with Checker.WithRecorder, so each response carries its own error
//     ledger and Σ charges ≤ ε budget proof — a shared recorder would
//     merge concurrent requests' charges and falsify the proof;
//   - a batched admission layer (batch.go) that coalesces concurrent
//     queries against the same model, differing only in their reward
//     bound, onto one core.Checker.UntilProbBatch call — one Sericola
//     recursion over the memoised uniformised matrix for the whole batch.
//
// Numerical options (ε, procedure, workers, truncation, lump mode) are
// fixed per service instance rather than per request: batched requests
// must be exchangeable, and one configuration per deployment is what makes
// results reproducible across the fleet.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/modelfile"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/obs"
)

// DefaultMemoCap is the per-table memo bound for service checkers. A
// service holds the hot tables of many recurring queries, so the bound is
// two orders of magnitude above the CLI default; at ~n·nnz floats per
// uniformised matrix the cap, not the entry count, is what keeps a
// pathological query stream from growing the cache without bound.
const DefaultMemoCap = 4096

// DefaultBatchWindow is how long the admission layer holds the first
// query of a batch group open for companions. Two milliseconds is far
// below human-visible latency and far above the scheduling jitter of
// concurrently submitted requests — the coalescing case it exists for.
const DefaultBatchWindow = 2 * time.Millisecond

// DefaultMaxModels bounds the registry; uploads past the cap are refused
// rather than silently evicting a model another client is querying.
const DefaultMaxModels = 64

// maxUploadBytes bounds one model upload (16 MiB of JSON is ~10^5 states
// with names — past what the dense procedures handle anyway).
const maxUploadBytes = 16 << 20

// Options configures a Server.
type Options struct {
	// Checker is the numerical configuration every model's shared checker
	// runs with. Obs must be nil: recorders are per request by design.
	Checker core.Options
	// MemoCap overrides the per-table memo bound (0 = DefaultMemoCap).
	MemoCap int
	// BatchWindow is the admission coalescing window (0 = DefaultBatchWindow,
	// negative = batching off).
	BatchWindow time.Duration
	// MaxModels bounds the registry (0 = DefaultMaxModels).
	MaxModels int
}

// Server is the checker service: an http.Handler serving the /v1 API over
// a registry of models with shared checkers. All methods are safe for
// concurrent use.
type Server struct {
	opts Options

	mu     sync.RWMutex
	models map[string]*modelEntry // keyed by fingerprint, guarded by mu

	requests atomic.Int64 // /v1/check requests admitted
	failures atomic.Int64 // /v1/check requests answered with an error status
}

// modelEntry is one registered model with its cross-request shared state.
type modelEntry struct {
	fp      string
	m       *mrm.MRM
	checker *core.Checker // recorder-free base; requests graft their own
	batch   *batcher
	uploads atomic.Int64 // uploads that landed on this entry (first included)
}

// New builds a server. Options.Checker.Obs must be nil (ledgers are per
// request); a non-nil recorder is rejected loudly rather than silently
// shared.
func New(opts Options) (*Server, error) {
	if opts.Checker.Obs != nil {
		return nil, errors.New("service: Options.Checker.Obs must be nil; recorders are per-request")
	}
	if opts.MemoCap == 0 {
		opts.MemoCap = DefaultMemoCap
	}
	if opts.BatchWindow == 0 {
		opts.BatchWindow = DefaultBatchWindow
	}
	if opts.MaxModels == 0 {
		opts.MaxModels = DefaultMaxModels
	}
	opts.Checker.MemoCap = opts.MemoCap
	return &Server{opts: opts, models: make(map[string]*modelEntry)}, nil
}

// Register adds a model to the registry directly (the programmatic
// counterpart of POST /v1/models, used for preloading). It returns the
// fingerprint and whether the model was new.
func (s *Server) Register(m *mrm.MRM) (string, bool, error) {
	fp := m.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.models[fp]; ok {
		s.models[fp].uploads.Add(1)
		return fp, false, nil
	}
	if len(s.models) >= s.opts.MaxModels {
		return "", false, fmt.Errorf("service: registry full (%d models); raise -max-models or retire a deployment", s.opts.MaxModels)
	}
	entry := &modelEntry{fp: fp, m: m, checker: core.New(m, s.opts.Checker)}
	entry.batch = newBatcher(entry.checker, s.opts.BatchWindow)
	entry.uploads.Add(1)
	s.models[fp] = entry
	return fp, true, nil
}

func (s *Server) lookup(fp string) *modelEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.models[fp]
}

// Handler returns the service's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/check", s.handleCheck)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// apiError is the JSON error envelope; every non-2xx response carries one.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are out; nothing useful left to do on error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ModelInfo is one registry row of GET /v1/models and the response of a
// POST /v1/models upload.
type ModelInfo struct {
	Fingerprint string         `json:"fingerprint"`
	States      int            `json:"states"`
	Labels      []string       `json:"labels"`
	Created     bool           `json:"created,omitempty"` // true on first upload
	Uploads     int64          `json:"uploads"`
	Memo        core.MemoStats `json:"memo"`
}

func (e *modelEntry) info(created bool) ModelInfo {
	return ModelInfo{
		Fingerprint: e.fp,
		States:      e.m.N(),
		Labels:      e.m.Labels(),
		Created:     created,
		Uploads:     e.uploads.Load(),
		Memo:        e.checker.MemoStats(),
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		m, err := modelfile.Decode(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "model upload: %v", err)
			return
		}
		fp, created, err := s.Register(m)
		if err != nil {
			writeError(w, http.StatusInsufficientStorage, "%v", err)
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusCreated
		}
		writeJSON(w, status, s.lookup(fp).info(created))
	case http.MethodGet:
		s.mu.RLock()
		fps := make([]string, 0, len(s.models))
		for fp := range s.models {
			fps = append(fps, fp)
		}
		s.mu.RUnlock()
		sort.Strings(fps)
		out := make([]ModelInfo, 0, len(fps))
		for _, fp := range fps {
			if e := s.lookup(fp); e != nil {
				out = append(out, e.info(false))
			}
		}
		writeJSON(w, http.StatusOK, out)
	default:
		writeError(w, http.StatusMethodNotAllowed, "use POST to upload or GET to list")
	}
}

// CheckRequest is the body of POST /v1/check.
type CheckRequest struct {
	// Model is the fingerprint returned by the model upload.
	Model string `json:"model"`
	// Formula is the CSRL formula to check or query.
	Formula string `json:"formula"`
	// States requests the per-state value/verdict listing (costly at
	// scale; off by default).
	States bool `json:"states,omitempty"`
}

// CheckResponse is the body of a successful POST /v1/check.
type CheckResponse struct {
	Model   string `json:"model"`
	Formula string `json:"formula"`
	// Kind is "query" for P=?/S=? formulas, "bounded" otherwise.
	Kind string `json:"kind"`
	// Value is the α-weighted value from the initial distribution (query
	// formulas only).
	Value *float64 `json:"value,omitempty"`
	// Holds reports whether every positive-initial-mass state satisfies
	// the formula (bounded formulas only).
	Holds *bool `json:"holds,omitempty"`
	// Satisfying counts Sat(Φ) (bounded formulas only).
	Satisfying *int `json:"satisfying,omitempty"`
	// Values/Verdicts list per-state results when CheckRequest.States set.
	Values   []float64 `json:"values,omitempty"`
	Verdicts []bool    `json:"verdicts,omitempty"`
	// Batched reports the admission layer coalesced this request with
	// BatchSize-1 concurrent companions into one numerical computation;
	// the report's charges then bound every member's error (the members
	// share the computation, hence its ledger).
	Batched   bool `json:"batched,omitempty"`
	BatchSize int  `json:"batch_size,omitempty"`
	// Report is this request's numerics report: the error-budget ledger
	// with its Σ charges ≤ ε verdict (BudgetOK), counters, gauges, spans.
	Report *obs.Report `json:"report"`
	// BudgetOK mirrors Report.BudgetOK at the top level — the per-response
	// budget proof the smoke and the clients assert on.
	BudgetOK bool `json:"budget_ok"`
	// Memo snapshots the model's cross-request memo traffic after this
	// request; hits climbing while misses stay flat across identical
	// waves is the no-re-uniformisation signal.
	Memo core.MemoStats `json:"memo"`
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	s.requests.Add(1)
	var req CheckRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	entry := s.lookup(req.Model)
	if entry == nil {
		s.failures.Add(1)
		writeError(w, http.StatusNotFound, "unknown model %q; upload it via POST /v1/models first", req.Model)
		return
	}
	formula, err := logic.Parse(req.Formula)
	if err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, "parse formula: %v", err)
		return
	}
	if err := validAtoms(entry.m, formula); err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp, err := s.check(entry, formula, req.States)
	if err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "check: %v", err)
		return
	}
	resp.Model = entry.fp
	resp.Formula = formula.String()
	writeJSON(w, http.StatusOK, resp)
}

// check evaluates one request against the entry's shared checker. Eligible
// until queries go through the batched admission layer; everything else
// runs directly under a per-request recorder.
func (s *Server) check(entry *modelEntry, f logic.StateFormula, listStates bool) (*CheckResponse, error) {
	if p, u, ok := batchable(f); ok {
		res, err := entry.batch.admit(p, u)
		if err != nil {
			return nil, err
		}
		return s.respondFromVector(entry, p, res, listStates)
	}

	rec := obs.New()
	view := entry.checker.WithRecorder(rec)
	resp := &CheckResponse{}
	if isQuery(f) {
		vals, err := view.Values(f)
		if err != nil {
			return nil, err
		}
		resp.Kind = "query"
		v := initialValue(entry.m, vals)
		resp.Value = &v
		if listStates {
			resp.Values = vals
		}
	} else {
		sat, err := view.Sat(f)
		if err != nil {
			return nil, err
		}
		holds, err := view.Check(f)
		if err != nil {
			return nil, err
		}
		resp.Kind = "bounded"
		resp.Holds = &holds
		n := sat.Len()
		resp.Satisfying = &n
		if listStates {
			resp.Verdicts = make([]bool, entry.m.N())
			for i := range resp.Verdicts {
				resp.Verdicts[i] = sat.Contains(i)
			}
		}
	}
	resp.Report = view.NumericsReport()
	resp.BudgetOK = resp.Report.BudgetOK
	resp.Memo = entry.checker.MemoStats()
	return resp, nil
}

// respondFromVector folds a batch column — the per-state path
// probabilities of P's until — into the response for one request: the
// α-weighted value for queries, the per-initial-state verdict and Sat
// count for bounded formulas. The comparisons are exactly those of
// Checker.Sat/Check on the same vector, so batched answers are
// bitwise-faithful to unbatched ones.
func (s *Server) respondFromVector(entry *modelEntry, p logic.Prob, res batchResult, listStates bool) (*CheckResponse, error) {
	vals := res.vals
	if p.Complement {
		for i, v := range vals {
			vals[i] = 1 - v
		}
	}
	resp := &CheckResponse{
		Batched:   res.size > 1,
		BatchSize: res.size,
		Report:    res.report,
		BudgetOK:  res.report.BudgetOK,
	}
	if isQuery(p) {
		resp.Kind = "query"
		v := initialValue(entry.m, vals)
		resp.Value = &v
		if listStates {
			resp.Values = vals
		}
	} else {
		resp.Kind = "bounded"
		holds := true
		for st, alpha := range entry.m.InitView() {
			if alpha > 0 && !p.Op.Compare(vals[st], p.Bound) {
				holds = false
				break
			}
		}
		count := 0
		for _, v := range vals {
			if p.Op.Compare(v, p.Bound) {
				count++
			}
		}
		resp.Holds = &holds
		resp.Satisfying = &count
		if listStates {
			resp.Verdicts = make([]bool, len(vals))
			for i, v := range vals {
				resp.Verdicts[i] = p.Op.Compare(v, p.Bound)
			}
		}
	}
	resp.Memo = entry.checker.MemoStats()
	return resp, nil
}

// batchable reports whether f is a top-level P-formula over a doubly
// bounded until with both intervals starting at zero — the shape
// UntilProbBatch evaluates, hence the shape the admission layer coalesces.
func batchable(f logic.StateFormula) (logic.Prob, logic.Until, bool) {
	p, ok := f.(logic.Prob)
	if !ok {
		return logic.Prob{}, logic.Until{}, false
	}
	u, ok := p.Path.(logic.Until)
	if !ok || !u.Time.Valid() || !u.Reward.Valid() {
		return logic.Prob{}, logic.Until{}, false
	}
	if !u.Time.StartsAtZero() || u.Time.IsUnbounded() || !u.Reward.StartsAtZero() || u.Reward.IsUnbounded() {
		return logic.Prob{}, logic.Until{}, false
	}
	return p, u, true
}

// validAtoms rejects formulas naming labels the model does not carry. The
// checker itself treats an unknown atom as an empty satisfaction set —
// sound for one-shot CLI runs where the user sees the model and formula
// side by side, but in a service a typo would silently answer "false
// everywhere", so the API refuses it with the label inventory instead.
func validAtoms(m *mrm.MRM, f logic.StateFormula) error {
	known := make(map[string]bool)
	for _, l := range m.Labels() {
		known[l] = true
	}
	for _, a := range logic.Atoms(f) {
		if !known[a] {
			return fmt.Errorf("formula names label %q which the model does not carry (labels: %v)", a, m.Labels())
		}
	}
	return nil
}

func isQuery(f logic.StateFormula) bool {
	switch t := f.(type) {
	case logic.Prob:
		return t.Query
	case logic.Steady:
		return t.Query
	default:
		return false
	}
}

// initialValue is Σ_s α(s)·vals[s], accumulated in state order so the sum
// is bitwise-reproducible across requests and equal to the CLI's.
func initialValue(m *mrm.MRM, vals []float64) float64 {
	var total float64
	for st, alpha := range m.InitView() {
		total += alpha * vals[st]
	}
	return total
}

// Stats is the body of GET /v1/stats: the live health surface.
type Stats struct {
	Models   []ModelInfo `json:"models"`
	Requests int64       `json:"requests"`
	Failures int64       `json:"failures"`
	// Batches counts admission batches fired; Coalesced counts requests
	// that shared a batch with at least one companion; MaxBatch is the
	// largest batch so far.
	Batches   int64 `json:"batches"`
	Coalesced int64 `json:"coalesced"`
	MaxBatch  int64 `json:"max_batch"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// Snapshot assembles the service-wide statistics.
func (s *Server) Snapshot() Stats {
	s.mu.RLock()
	entries := make([]*modelEntry, 0, len(s.models))
	for _, e := range s.models {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].fp < entries[j].fp })
	st := Stats{Requests: s.requests.Load(), Failures: s.failures.Load()}
	for _, e := range entries {
		st.Models = append(st.Models, e.info(false))
		bs := e.batch.snapshot()
		st.Batches += bs.batches
		st.Coalesced += bs.coalesced
		if bs.maxBatch > st.MaxBatch {
			st.MaxBatch = bs.maxBatch
		}
	}
	return st
}
