package srn

import (
	"testing"
)

// refDedup is the straw-man the compact encoder must match: the decimal
// string key of every marking.
type refDedup map[string]int

// markingWalk produces a deterministic stream of markings over the given
// place count, cycling token counts through distinct ranges per place.
func markingWalk(places, count int) []Marking {
	out := make([]Marking, count)
	for i := range out {
		m := make(Marking, places)
		for p := range m {
			m[p] = (i*(p+3) + p) % (5 + 7*p)
		}
		out[i] = m
	}
	return out
}

func runEquivalence(t *testing.T, places, count int) {
	t.Helper()
	walk := markingWalk(places, count)
	store := newMarkingStore(places)
	d := newDedup(store, walk[0])
	ref := refDedup{}
	for _, m := range walk {
		wantIdx, seen := ref[m.Key()]
		got := d.lookup(m)
		if !seen && got != -1 {
			t.Fatalf("marking %v: unseen but lookup returned %d", m, got)
		}
		if seen && got != wantIdx {
			t.Fatalf("marking %v: want index %d, got %d", m, wantIdx, got)
		}
		if !seen {
			idx := store.add(m)
			d.insert(m, idx)
			ref[m.Key()] = idx
			// The arena view must reproduce the marking exactly.
			if stored := store.at(idx); stored.Key() != m.Key() {
				t.Fatalf("arena returned %v for %v", stored, m)
			}
		}
	}
	// Every stored marking must still be found after all growth rebuilds.
	for key, idx := range ref {
		if got := d.lookup(store.at(idx)); got != idx {
			t.Errorf("marking %s: want %d after growth, got %d", key, idx, got)
		}
	}
}

// TestDedupMatchesStringKeys drives the packed encoder through a marking
// stream whose counts keep outgrowing their bit fields, forcing repeated
// width growth and re-encoding, and checks every lookup against the
// decimal string-key reference.
func TestDedupMatchesStringKeys(t *testing.T) {
	runEquivalence(t, 4, 400)
}

// TestDedupWideFallback uses enough places with large counts that the
// packed layout exceeds 64 bits and the encoder must switch to the
// fixed-width byte-string fallback mid-run.
func TestDedupWideFallback(t *testing.T) {
	const places = 24
	runEquivalence(t, places, 600)

	// Confirm the fallback actually engaged for this shape: 24 places with
	// counts up to 7·23+4 need far more than 64 bits.
	walk := markingWalk(places, 600)
	store := newMarkingStore(places)
	d := newDedup(store, walk[0])
	for _, m := range walk {
		if d.lookup(m) == -1 {
			d.insert(m, store.add(m))
		}
	}
	if d.wide == nil {
		t.Fatalf("expected the wide fallback at %d total bits", d.total)
	}
}

// TestDedupPackedStays checks a small-bound shape never leaves the packed
// uint64 representation.
func TestDedupPackedStays(t *testing.T) {
	store := newMarkingStore(3)
	init := Marking{2, 0, 1}
	d := newDedup(store, init)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			m := Marking{a, b, (a + b) % 2}
			if d.lookup(m) == -1 {
				d.insert(m, store.add(m))
			}
		}
	}
	if d.packed == nil {
		t.Fatalf("small bounds should stay packed (total bits %d)", d.total)
	}
	if store.n != 64 {
		t.Fatalf("expected 64 distinct markings, got %d", store.n)
	}
}

// TestMarkingStoreChunkBoundary crosses the arena chunk boundary and
// checks views on both sides stay intact.
func TestMarkingStoreChunkBoundary(t *testing.T) {
	store := newMarkingStore(2)
	total := markingChunk + 10
	for i := 0; i < total; i++ {
		store.add(Marking{i, i * 2})
	}
	for _, i := range []int{0, markingChunk - 1, markingChunk, total - 1} {
		m := store.at(i)
		if m[0] != i || m[1] != i*2 {
			t.Errorf("store.at(%d) = %v", i, m)
		}
	}
	if got := len(store.all()); got != total {
		t.Errorf("all() returned %d markings, want %d", got, total)
	}
}
