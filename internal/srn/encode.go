package srn

import (
	"encoding/binary"
	"math/bits"
)

// markingStore is a chunked arena for explored markings: fixed-size chunks
// of place-count ints, each marking a contiguous window. Appends never
// move previously handed-out windows (chunks are immutable once full), so
// a Marking view obtained during exploration stays valid for the whole
// build — unlike a single growing slice — while avoiding one allocation
// and one slice header per marking.
type markingStore struct {
	places int
	chunks [][]int
	n      int
}

// markingChunk is the number of markings per arena chunk.
const markingChunk = 4096

func newMarkingStore(places int) *markingStore {
	return &markingStore{places: places}
}

// add copies m into the arena and returns its index.
func (s *markingStore) add(m Marking) int {
	ci, off := s.n/markingChunk, (s.n%markingChunk)*s.places
	if ci == len(s.chunks) {
		s.chunks = append(s.chunks, make([]int, markingChunk*s.places))
	}
	copy(s.chunks[ci][off:off+s.places], m)
	s.n++
	return s.n - 1
}

// at returns the stored marking as a view into the arena; the caller must
// not grow it (reads and in-place writes of existing entries are the
// arena's own business only).
func (s *markingStore) at(i int) Marking {
	ci, off := i/markingChunk, (i%markingChunk)*s.places
	return Marking(s.chunks[ci][off : off+s.places : off+s.places])
}

// all returns views of every stored marking, in exploration order.
func (s *markingStore) all() []Marking {
	out := make([]Marking, s.n)
	for i := range out {
		out[i] = s.at(i)
	}
	return out
}

// dedup indexes markings by a compact encoding derived from per-place
// token bounds: place p gets just enough bits for the largest count seen
// there, and while the widths sum to at most 64 the whole marking packs
// into one uint64 map key — no per-marking string, no per-lookup
// allocation. When a count outgrows its width the encoder grows that
// width and re-encodes the (deduplicated) store; each growth at least
// doubles a place's range, so there are at most 64 rebuilds over any run.
// Past 64 total bits it falls back to a fixed 4-bytes-per-place string
// key, still several times denser than the decimal Key form.
type dedup struct {
	store  *markingStore
	widths []uint8
	shifts []uint8
	total  int
	packed map[uint64]int // non-nil while total ≤ 64
	wide   map[string]int // non-nil once total > 64
	buf    []byte         // scratch for wide keys
}

func newDedup(store *markingStore, init Marking) *dedup {
	d := &dedup{
		store:  store,
		widths: make([]uint8, len(init)),
		shifts: make([]uint8, len(init)),
	}
	for p, c := range init {
		d.widths[p] = bitsFor(c)
	}
	d.layout()
	return d
}

// bitsFor returns the width needed to store counts 0..c (at least 1 bit,
// so every place owns a field even when currently empty).
func bitsFor(c int) uint8 {
	if c <= 1 {
		return 1
	}
	return uint8(bits.Len(uint(c)))
}

// layout recomputes the field offsets and switches the key representation
// to match the current total width.
func (d *dedup) layout() {
	d.total = 0
	for p, w := range d.widths {
		d.shifts[p] = uint8(d.total)
		d.total += int(w)
	}
	if d.total <= 64 {
		d.packed = make(map[uint64]int, d.store.n*2)
		d.wide = nil
	} else {
		d.packed = nil
		d.wide = make(map[string]int, d.store.n*2)
		d.buf = make([]byte, 4*len(d.widths))
	}
}

// fits reports whether every count of m lies inside its current field.
func (d *dedup) fits(m Marking) bool {
	for p, c := range m {
		if c < 0 || bitsFor(c) > d.widths[p] {
			return false
		}
	}
	return true
}

// grow widens the fields to admit m and re-encodes the store.
func (d *dedup) grow(m Marking) {
	for p, c := range m {
		if w := bitsFor(c); w > d.widths[p] {
			d.widths[p] = w
		}
	}
	d.layout()
	for i := 0; i < d.store.n; i++ {
		d.insert(d.store.at(i), i)
	}
}

func (d *dedup) packKey(m Marking) uint64 {
	var k uint64
	for p, c := range m {
		k |= uint64(c) << d.shifts[p]
	}
	return k
}

func (d *dedup) wideKey(m Marking) []byte {
	for p, c := range m {
		binary.LittleEndian.PutUint32(d.buf[4*p:], uint32(c))
	}
	return d.buf
}

// lookup returns the index of m, or -1 when unseen.
func (d *dedup) lookup(m Marking) int {
	if d.packed != nil {
		if !d.fits(m) {
			d.grow(m)
			return d.lookup(m)
		}
		if idx, ok := d.packed[d.packKey(m)]; ok {
			return idx
		}
		return -1
	}
	if idx, ok := d.wide[string(d.wideKey(m))]; ok {
		return idx
	}
	return -1
}

// insert records m at index idx. m must already fit (lookup grows).
func (d *dedup) insert(m Marking, idx int) {
	if d.packed != nil {
		d.packed[d.packKey(m)] = idx
		return
	}
	d.wide[string(d.wideKey(m))] = idx
}
