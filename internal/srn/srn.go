// Package srn implements stochastic reward nets (SRNs, ref [6] of the
// paper): stochastic Petri nets with exponentially timed transitions,
// guards, and a reward-rate function over markings. The reachability graph
// of an SRN with an initial marking is a Markov reward model; this is how
// the paper obtains the case-study MRM of Section 5 (Figure 2) and the role
// played there by the SPNP tool.
package srn

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/performability/csrl/internal/mrm"
)

// Marking assigns a token count to every place.
type Marking []int

// Clone returns an independent copy of the marking.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	copy(c, m)
	return c
}

// Key returns a canonical string for deduplication.
func (m Marking) Key() string {
	var b strings.Builder
	for i, v := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Arc connects a transition to a place with a weight (tokens consumed or
// produced per firing).
type Arc struct {
	Place  int
	Weight int
}

// Transition is an exponentially timed SRN transition.
type Transition struct {
	Name string
	// Rate is the firing rate when enabled. If RateFn is non-nil it
	// overrides Rate and may depend on the marking.
	Rate   float64
	RateFn func(Marking) float64
	// In are the input arcs (tokens required and consumed).
	In []Arc
	// Out are the output arcs (tokens produced).
	Out []Arc
	// Guard optionally restricts enabling beyond token availability.
	Guard func(Marking) bool
	// Impulse is an optional impulse reward earned each time the
	// transition fires (paper §6 future work; supported by the
	// discretisation procedure and the simulator).
	Impulse float64
}

// Net is a stochastic reward net.
type Net struct {
	Places      []string
	Transitions []Transition
}

var (
	// ErrExplosion reports that reachability-graph generation exceeded the
	// configured state budget.
	ErrExplosion = errors.New("srn: state space exceeds maximum")
	// ErrNet reports a structurally invalid net.
	ErrNet = errors.New("srn: invalid net")
)

// Validate checks structural consistency of the net.
func (n *Net) Validate() error {
	for ti, t := range n.Transitions {
		if t.Name == "" {
			return fmt.Errorf("%w: transition %d has no name", ErrNet, ti)
		}
		for _, a := range append(append([]Arc(nil), t.In...), t.Out...) {
			if a.Place < 0 || a.Place >= len(n.Places) {
				return fmt.Errorf("%w: transition %q references place %d of %d", ErrNet, t.Name, a.Place, len(n.Places))
			}
			if a.Weight <= 0 {
				return fmt.Errorf("%w: transition %q has non-positive arc weight %d", ErrNet, t.Name, a.Weight)
			}
		}
		if t.RateFn == nil && t.Rate <= 0 {
			return fmt.Errorf("%w: transition %q has non-positive rate %v", ErrNet, t.Name, t.Rate)
		}
		if t.Impulse < 0 {
			return fmt.Errorf("%w: transition %q has negative impulse %v", ErrNet, t.Name, t.Impulse)
		}
	}
	return nil
}

// Enabled reports whether transition ti is enabled in marking m.
func (n *Net) Enabled(ti int, m Marking) bool {
	t := &n.Transitions[ti]
	for _, a := range t.In {
		if m[a.Place] < a.Weight {
			return false
		}
	}
	if t.Guard != nil && !t.Guard(m) {
		return false
	}
	return true
}

// Fire returns the marking reached by firing transition ti in m. The caller
// must ensure the transition is enabled.
func (n *Net) Fire(ti int, m Marking) Marking {
	t := &n.Transitions[ti]
	next := m.Clone()
	for _, a := range t.In {
		next[a.Place] -= a.Weight
	}
	for _, a := range t.Out {
		next[a.Place] += a.Weight
	}
	return next
}

// rate returns the firing rate of transition ti in marking m.
func (n *Net) rate(ti int, m Marking) float64 {
	t := &n.Transitions[ti]
	if t.RateFn != nil {
		return t.RateFn(m)
	}
	return t.Rate
}

// Options configures reachability-graph generation.
type Options struct {
	// MaxStates bounds the explored state space (0 = 1<<20).
	MaxStates int
	// Reward maps a marking to its reward rate ρ (0 everywhere if nil).
	Reward func(Marking) float64
	// Labels optionally adds extra atomic propositions per marking.
	// Every place with at least one token always contributes its place
	// name as a label.
	Labels func(Marking) []string
	// NoNames skips the per-state name strings ("p1+p2+…"). At 10^5+
	// markings the concatenated names dominate the generator's residual
	// allocations, while the names are only read when printing states of
	// small models; MRM.Name falls back to "s<i>".
	NoNames bool
}

// BuildMRM explores the reachability graph breadth-first from init and
// returns the resulting MRM together with the marking of every state.
// State 0 is the initial marking.
//
// The explorer is built for large nets: markings live in a chunked arena
// and are deduplicated through the packed integer encoding of encode.go
// (no per-marking key strings), firing writes into one reused scratch
// marking, and transitions stream straight into parallel (from, to, rate)
// triple slices — the CSR builder's native diet — so the per-state
// footprint during exploration is the marking itself plus a map word.
// The breadth-first frontier is the tail of the arena, bounded by
// Options.MaxStates; exceeding the bound returns ErrExplosion.
func (n *Net) BuildMRM(init Marking, opts Options) (*mrm.MRM, []Marking, error) {
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	if len(init) != len(n.Places) {
		return nil, nil, fmt.Errorf("%w: initial marking has %d places, net has %d", ErrNet, len(init), len(n.Places))
	}
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 1 << 20
	}
	anyImpulse := false
	for ti := range n.Transitions {
		if n.Transitions[ti].Impulse != 0 {
			anyImpulse = true
			break
		}
	}

	store := newMarkingStore(len(n.Places))
	store.add(init)
	index := newDedup(store, init)
	index.insert(init, 0)
	var (
		eFrom, eTo []int
		eRate      []float64
		eImpulse   []float64 // parallel to eRate; nil when no transition carries one
	)
	scratch := make(Marking, len(n.Places))
	for head := 0; head < store.n; head++ {
		m := store.at(head)
		for ti := range n.Transitions {
			if !n.Enabled(ti, m) {
				continue
			}
			rate := n.rate(ti, m)
			if rate < 0 {
				return nil, nil, fmt.Errorf("%w: transition %q has negative rate %v in marking %v", ErrNet, n.Transitions[ti].Name, rate, m)
			}
			if rate == 0 {
				continue
			}
			n.fireInto(ti, m, scratch)
			idx := index.lookup(scratch)
			if idx < 0 {
				if store.n >= maxStates {
					return nil, nil, fmt.Errorf("%w: %d states", ErrExplosion, maxStates)
				}
				idx = store.add(scratch)
				index.insert(scratch, idx)
			}
			if idx != head { // a self-loop in a CTMC is unobservable; drop it
				eFrom = append(eFrom, head)
				eTo = append(eTo, idx)
				eRate = append(eRate, rate)
				if anyImpulse {
					eImpulse = append(eImpulse, n.Transitions[ti].Impulse)
				}
			}
		}
	}

	b := mrm.NewBuilder(store.n)
	for e := range eRate {
		b.Rate(eFrom[e], eTo[e], eRate[e])
	}
	if anyImpulse {
		// Competing transitions between the same pair of markings merge
		// into one CTMC rate; their impulse becomes the rate-weighted
		// average (exact for the expected reward, and exact outright when
		// the impulses agree).
		impulseSum := make(map[[2]int]float64)
		rateSum := make(map[[2]int]float64)
		for e := range eRate {
			key := [2]int{eFrom[e], eTo[e]}
			impulseSum[key] += eRate[e] * eImpulse[e]
			rateSum[key] += eRate[e]
		}
		for key, wsum := range impulseSum {
			if wsum > 0 {
				b.Impulse(key[0], key[1], wsum/rateSum[key])
			}
		}
	}
	var nameParts []string
	for si := 0; si < store.n; si++ {
		m := store.at(si)
		if opts.Reward != nil {
			b.Reward(si, opts.Reward(m))
		}
		nameParts = nameParts[:0]
		for pi, tokens := range m {
			if tokens > 0 {
				b.Label(si, n.Places[pi])
				if !opts.NoNames {
					nameParts = append(nameParts, n.Places[pi])
				}
			}
		}
		if opts.Labels != nil {
			for _, l := range opts.Labels(m) {
				b.Label(si, l)
			}
		}
		if !opts.NoNames {
			b.Name(si, strings.Join(nameParts, "+"))
		}
	}
	b.InitialState(0)
	model, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("srn: build MRM: %w", err)
	}
	return model, store.all(), nil
}

// fireInto writes the marking reached by firing transition ti in m into
// dst (the allocation-free Fire used by the explorer).
func (n *Net) fireInto(ti int, m Marking, dst Marking) {
	t := &n.Transitions[ti]
	copy(dst, m)
	for _, a := range t.In {
		dst[a.Place] -= a.Weight
	}
	for _, a := range t.Out {
		dst[a.Place] += a.Weight
	}
}
