package srn

import (
	"errors"
	"math"
	"testing"
)

// producerConsumer is a small net: a producer place cycles tokens through a
// buffer that a consumer drains.
func producerConsumer() (*Net, Marking) {
	net := &Net{
		Places: []string{"idle", "busy", "buffer"},
		Transitions: []Transition{
			{Name: "start", Rate: 2, In: []Arc{{Place: 0, Weight: 1}}, Out: []Arc{{Place: 1, Weight: 1}}},
			{Name: "produce", Rate: 3, In: []Arc{{Place: 1, Weight: 1}}, Out: []Arc{{Place: 0, Weight: 1}, {Place: 2, Weight: 1}}},
			{Name: "consume", Rate: 1, In: []Arc{{Place: 2, Weight: 1}}, Out: nil},
		},
	}
	init := Marking{1, 0, 0}
	return net, init
}

func TestMarkingKeyAndClone(t *testing.T) {
	m := Marking{1, 0, 2}
	if m.Key() != "1,0,2" {
		t.Errorf("Key = %q", m.Key())
	}
	c := m.Clone()
	c[0] = 9
	if m[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestEnabledAndFire(t *testing.T) {
	net, init := producerConsumer()
	if !net.Enabled(0, init) {
		t.Error("start should be enabled initially")
	}
	if net.Enabled(1, init) || net.Enabled(2, init) {
		t.Error("produce/consume should be disabled initially")
	}
	next := net.Fire(0, init)
	if next.Key() != "0,1,0" {
		t.Errorf("after start: %v", next)
	}
	next = net.Fire(1, next)
	if next.Key() != "1,0,1" {
		t.Errorf("after produce: %v", next)
	}
}

func TestGuard(t *testing.T) {
	net, init := producerConsumer()
	// Block production once the buffer holds 1 token.
	net.Transitions[1].Guard = func(m Marking) bool { return m[2] == 0 }
	m, _, err := net.BuildMRM(init, Options{})
	if err != nil {
		t.Fatalf("BuildMRM: %v", err)
	}
	// States: (1,0,0), (0,1,0), (1,0,1), (0,1,1); produce blocked in
	// (0,1,1) so no (1,0,2).
	if m.N() != 4 {
		t.Errorf("guarded net has %d states, want 4", m.N())
	}
}

func TestBuildMRMStateSpace(t *testing.T) {
	net, init := producerConsumer()
	// Unbounded buffer → explosion; cap it.
	_, _, err := net.BuildMRM(init, Options{MaxStates: 10})
	if !errors.Is(err, ErrExplosion) {
		t.Fatalf("want ErrExplosion, got %v", err)
	}
}

func TestBuildMRMLabelsAndRewards(t *testing.T) {
	net, init := producerConsumer()
	net.Transitions[1].Guard = func(m Marking) bool { return m[2] == 0 }
	m, markings, err := net.BuildMRM(init, Options{
		Reward: func(mk Marking) float64 { return float64(mk[2]) * 10 },
		Labels: func(mk Marking) []string {
			if mk[2] > 0 {
				return []string{"nonempty"}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("BuildMRM: %v", err)
	}
	if m.InitialState() != 0 {
		t.Errorf("initial state = %d", m.InitialState())
	}
	for si, mk := range markings {
		if mk[0] > 0 && !m.HasLabel(si, "idle") {
			t.Errorf("state %d should carry label idle", si)
		}
		if want := float64(mk[2]) * 10; m.Reward(si) != want {
			t.Errorf("state %d reward = %v, want %v", si, m.Reward(si), want)
		}
		if mk[2] > 0 && !m.HasLabel(si, "nonempty") {
			t.Errorf("state %d should carry custom label", si)
		}
	}
}

func TestMarkingDependentRate(t *testing.T) {
	net, init := producerConsumer()
	net.Transitions[1].Guard = func(m Marking) bool { return m[2] < 2 }
	// Consumption speed proportional to buffer occupancy.
	net.Transitions[2].RateFn = func(m Marking) float64 { return float64(m[2]) * 1.5 }
	m, markings, err := net.BuildMRM(init, Options{})
	if err != nil {
		t.Fatalf("BuildMRM: %v", err)
	}
	for si, mk := range markings {
		if mk[2] == 0 {
			continue
		}
		// Find the consume rate out of this state.
		var found bool
		m.Rates().Row(si, func(to int, v float64) {
			if markings[to][2] == mk[2]-1 && markings[to][0] == mk[0] {
				found = true
				if want := float64(mk[2]) * 1.5; math.Abs(v-want) > 1e-12 {
					t.Errorf("state %v: consume rate %v, want %v", mk, v, want)
				}
			}
		})
		if !found {
			t.Errorf("state %v has no consume transition", mk)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		net  *Net
	}{
		{"unnamed transition", &Net{Places: []string{"p"}, Transitions: []Transition{{Rate: 1}}}},
		{"bad place index", &Net{Places: []string{"p"}, Transitions: []Transition{
			{Name: "t", Rate: 1, In: []Arc{{Place: 3, Weight: 1}}},
		}}},
		{"zero weight", &Net{Places: []string{"p"}, Transitions: []Transition{
			{Name: "t", Rate: 1, In: []Arc{{Place: 0, Weight: 0}}},
		}}},
		{"non-positive rate", &Net{Places: []string{"p"}, Transitions: []Transition{
			{Name: "t", Rate: 0, In: []Arc{{Place: 0, Weight: 1}}},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.net.Validate(); err == nil {
				t.Errorf("%s not rejected", tc.name)
			}
		})
	}
}

func TestBuildMRMRejectsWrongMarkingLength(t *testing.T) {
	net, _ := producerConsumer()
	if _, _, err := net.BuildMRM(Marking{1}, Options{}); err == nil {
		t.Error("short marking accepted")
	}
}

func TestSelfLoopTransitionDropped(t *testing.T) {
	// A transition that reproduces its input marking is a CTMC self-loop
	// and must be dropped silently.
	net := &Net{
		Places: []string{"p"},
		Transitions: []Transition{
			{Name: "noop", Rate: 5, In: []Arc{{Place: 0, Weight: 1}}, Out: []Arc{{Place: 0, Weight: 1}}},
		},
	}
	m, _, err := net.BuildMRM(Marking{1}, Options{})
	if err != nil {
		t.Fatalf("BuildMRM: %v", err)
	}
	if m.N() != 1 || !m.IsAbsorbing(0) {
		t.Errorf("self-loop net should yield a single absorbing state")
	}
}

func TestImpulseMerging(t *testing.T) {
	// Two competing transitions between the same pair of markings with
	// different impulses: the merged CTMC transition carries the
	// rate-weighted average impulse.
	net := &Net{
		Places: []string{"a", "b"},
		Transitions: []Transition{
			{Name: "cheap", Rate: 3, In: []Arc{{Place: 0, Weight: 1}}, Out: []Arc{{Place: 1, Weight: 1}}, Impulse: 1},
			{Name: "pricey", Rate: 1, In: []Arc{{Place: 0, Weight: 1}}, Out: []Arc{{Place: 1, Weight: 1}}, Impulse: 5},
		},
	}
	m, _, err := net.BuildMRM(Marking{1, 0}, Options{})
	if err != nil {
		t.Fatalf("BuildMRM: %v", err)
	}
	if got := m.Rates().At(0, 1); got != 4 {
		t.Fatalf("merged rate = %v, want 4", got)
	}
	want := (3.0*1 + 1.0*5) / 4.0
	if got := m.Impulse(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("merged impulse = %v, want %v", got, want)
	}
}

func TestNegativeImpulseRejected(t *testing.T) {
	net := &Net{
		Places: []string{"a"},
		Transitions: []Transition{
			{Name: "t", Rate: 1, In: []Arc{{Place: 0, Weight: 1}}, Impulse: -2},
		},
	}
	if err := net.Validate(); err == nil {
		t.Error("negative impulse accepted")
	}
}
