package discretise

import (
	"math"
	"runtime"
	"testing"

	"github.com/performability/csrl/internal/mrm"
)

// referenceF1 is an independent straight-line implementation of the
// recursion under the F¹-initialisation convention documented in
// ReachProb: point mass at reward index ρ(from) followed by T−1 steps.
// It exists so TestConventionPinned can detect any change to either the
// initial reward index or the step count.
func referenceF1(m *mrm.MRM, goal *mrm.StateSet, t, r float64, from int, d float64) float64 {
	n := m.N()
	T := int(math.Round(t / d))
	R := int(math.Round(r / d))
	rho := make([]int, n)
	for s := 0; s < n; s++ {
		rho[s] = int(math.Round(m.Reward(s)))
	}
	rt := m.Rates().Transpose()
	cur := make([][]float64, n)
	next := make([][]float64, n)
	for s := 0; s < n; s++ {
		cur[s] = make([]float64, R+1)
		next[s] = make([]float64, R+1)
	}
	if rho[from] <= R {
		cur[from][rho[from]] = 1 / d
	}
	for j := 1; j < T; j++ {
		for s := 0; s < n; s++ {
			fs := next[s]
			for k := 0; k <= R; k++ {
				var v float64
				if k >= rho[s] {
					v = cur[s][k-rho[s]] * (1 - m.ExitRate(s)*d)
				}
				fs[k] = v
			}
			rt.Row(s, func(src int, rate float64) {
				w := rate * d
				for k := rho[src]; k <= R; k++ {
					fs[k] += cur[src][k-rho[src]] * w
				}
			})
		}
		cur, next = next, cur
	}
	var sum float64
	goal.Each(func(s int) {
		for k := 0; k <= R; k++ {
			sum += cur[s][k]
		}
	})
	return sum * d
}

func twoStateChain(t *testing.T) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 2.0).Rate(1, 0, 1.0).Rate(1, 2, 0.5)
	b.Reward(0, 1).Reward(1, 2)
	b.Label(2, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

// TestConventionPinned pins the F¹-initialisation convention (initial mass
// at reward index ρ(from), T−1 recursion steps — see the proof comment in
// ReachProb). The reward bound is chosen loose enough that the competing
// conventions (F⁰ init and/or T steps) differ from F¹ by far more than
// floating-point noise, so any change to the initial index or the loop
// bound makes this test fail.
func TestConventionPinned(t *testing.T) {
	m := twoStateChain(t)
	goal := m.Label("goal")
	// r = 3 > t·maxρ = 0.5·2: no path can exhaust the reward bound, the
	// regime where the init/step conventions do NOT coincide.
	tb, rb, d := 0.5, 3.0, 1.0/64
	got, err := ReachProb(m, goal, tb, rb, 0, Options{D: d})
	if err != nil {
		t.Fatal(err)
	}
	want := referenceF1(m, goal, tb, rb, 0, d)
	if got != want {
		t.Fatalf("ReachProb = %.15g, F1 reference = %.15g: the initialisation convention changed", got, want)
	}
	// Sanity: the loose bound makes the reward constraint vacuous, so the
	// value must approach the plain transient reachability; mostly this
	// guards the reference itself.
	if got <= 0 || got >= 1 {
		t.Fatalf("implausible probability %v", got)
	}
}

// TestClosedFormHalvingConvergence is the satellite regression test: on a
// 2-state model with known closed form, halving d must converge to the
// exact value at first order.
func TestClosedFormHalvingConvergence(t *testing.T) {
	const mu = 1.25
	m := singleJump(t, mu)
	goal := m.Label("goal")
	tb, rb := 2.0, 1.0
	want := 1 - math.Exp(-mu*rb) // Pr{Y ≤ r, X_t = goal}, r < t
	var prev float64
	for i, d := range []float64{1.0 / 16, 1.0 / 32, 1.0 / 64, 1.0 / 128, 1.0 / 256} {
		got, err := ReachProb(m, goal, tb, rb, 0, Options{D: d})
		if err != nil {
			t.Fatalf("d=%v: %v", d, err)
		}
		e := math.Abs(got - want)
		if i > 0 {
			ratio := prev / e
			if ratio < 1.6 || ratio > 2.6 {
				t.Errorf("d=%v: halving ratio %.3f not ≈ 2 (errors %g → %g)", d, ratio, prev, e)
			}
		}
		prev = e
	}
	// First-order scheme: the d = 1/256 error is ≈ 5e-4 and halves with d.
	if prev > 1e-3 {
		t.Errorf("finest-step error %g too large", prev)
	}
}

func TestReachProbAllParallelEquivalence(t *testing.T) {
	m := twoStateChain(t)
	goal := m.Label("goal")
	tb, rb, d := 0.5, 1.0, 1.0/256
	seq, err := ReachProbAll(m, goal, tb, rb, Options{D: d, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, runtime.NumCPU()} {
		par, err := ReachProbAll(m, goal, tb, rb, Options{D: d, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for s := range par {
			if par[s] != seq[s] {
				t.Fatalf("workers=%d: state %d: %g != sequential %g", workers, s, par[s], seq[s])
			}
		}
	}
}

// TestInnerLoopParallelEquivalence exercises the per-state parallel inner
// loop (needs n·(R+1) ≥ recursionGrain) and checks bitwise agreement with
// the sequential path.
func TestInnerLoopParallelEquivalence(t *testing.T) {
	const n = 40
	b := mrm.NewBuilder(n)
	for s := 0; s < n-1; s++ {
		b.Rate(s, s+1, 1.0+0.05*float64(s%4))
		if s > 0 {
			b.Rate(s, s-1, 0.4)
		}
		b.Reward(s, float64(1+s%2))
	}
	b.Label(n-1, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	goal := m.Label("goal")
	tb, rb, d := 1.0, 2.0, 1.0/128 // n·(R+1) = 40·257 ≫ grain
	seq, err := ReachProb(m, goal, tb, rb, 0, Options{D: d, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5} {
		par, err := ReachProb(m, goal, tb, rb, 0, Options{D: d, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par != seq {
			t.Fatalf("workers=%d: %g != sequential %g", workers, par, seq)
		}
	}
}
