package discretise

import (
	"errors"
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sparse"
)

func singleJump(t *testing.T, mu float64) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, mu)
	b.Reward(0, 1)
	b.Label(1, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestSingleJumpAnalytic(t *testing.T) {
	const mu = 1.25
	m := singleJump(t, mu)
	goal := m.Label("goal")
	// Pr{Y ≤ r, X_t = goal} = 1 − e^{-mu r} for r < t.
	tb, rb := 2.0, 1.0
	want := 1 - math.Exp(-mu*rb)
	prevErr := math.Inf(1)
	for _, d := range []float64{1.0 / 16, 1.0 / 64, 1.0 / 256} {
		got, err := ReachProb(m, goal, tb, rb, 0, Options{D: d})
		if err != nil {
			t.Fatalf("d=%v: %v", d, err)
		}
		e := math.Abs(got - want)
		if e > prevErr*0.75 && prevErr < math.Inf(1) {
			t.Errorf("error not shrinking fast enough at d=%v: %v vs %v", d, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 1e-2 {
		t.Errorf("finest step error %v too large", prevErr)
	}
}

func TestFirstOrderConvergence(t *testing.T) {
	// Halving d should roughly halve the error (the scheme is first order).
	const mu = 2.0
	m := singleJump(t, mu)
	goal := m.Label("goal")
	tb, rb := 1.0, 0.5
	want := 1 - math.Exp(-mu*rb)
	e1, err := ReachProb(m, goal, tb, rb, 0, Options{D: 1.0 / 32})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ReachProb(m, goal, tb, rb, 0, Options{D: 1.0 / 64})
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := math.Abs(e1-want), math.Abs(e2-want)
	ratio := r1 / r2
	if ratio < 1.5 || ratio > 3 {
		t.Errorf("error ratio %v not ≈ 2 (errors %v, %v)", ratio, r1, r2)
	}
}

func TestValidation(t *testing.T) {
	m := singleJump(t, 3)
	goal := m.Label("goal")
	if _, err := ReachProb(m, goal, 1, 1, 0, Options{D: 0}); !errors.Is(err, ErrStep) {
		t.Errorf("d=0: %v", err)
	}
	if _, err := ReachProb(m, goal, 1, 1, 0, Options{D: 0.5}); !errors.Is(err, ErrStep) {
		t.Errorf("d too coarse: %v", err)
	}
	if _, err := ReachProb(m, goal, 1, 1, 0, Options{D: 0.5, AllowCoarse: true}); err != nil {
		t.Errorf("AllowCoarse should permit the step: %v", err)
	}
	if _, err := ReachProb(m, goal, 1.03, 1, 0, Options{D: 0.125}); !errors.Is(err, ErrStep) {
		t.Errorf("non-multiple t: %v", err)
	}
	if _, err := ReachProb(m, goal, 1, 1, 5, Options{D: 0.125}); err == nil {
		t.Error("bad initial state accepted")
	}
	if _, err := ReachProb(m, goal, -1, 1, 0, Options{D: 0.125}); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestNonNaturalRewardsRejected(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	b.Reward(0, 1.5)
	b.Label(1, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReachProb(m, m.Label("goal"), 1, 1, 0, Options{D: 0.125}); !errors.Is(err, ErrRewards) {
		t.Errorf("fractional reward: %v", err)
	}
	// Scaling by 2 makes them natural.
	scaled, rb, err := ScaleRewards(m, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rb != 2 || scaled.Reward(0) != 3 {
		t.Errorf("scaled: rb=%v ρ(0)=%v", rb, scaled.Reward(0))
	}
	if _, err := ReachProb(scaled, scaled.Label("goal"), 1, rb, 0, Options{D: 0.125}); err != nil {
		t.Errorf("scaled model rejected: %v", err)
	}
	if _, _, err := ScaleRewards(m, 1, -1); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestScalingInvariance(t *testing.T) {
	// P{Y ≤ r} is invariant under joint scaling of rewards and bound.
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 2).Rate(1, 2, 1).Rate(1, 0, 2)
	b.Reward(0, 1).Reward(1, 2)
	b.Label(2, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	goal := m.Label("goal")
	v1, err := ReachProb(m, goal, 2, 3, 0, Options{D: 1.0 / 64})
	if err != nil {
		t.Fatal(err)
	}
	scaled, rb, err := ScaleRewards(m, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ReachProb(scaled, goal, 2, rb, 0, Options{D: 1.0 / 64})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-v2) > 1e-12 {
		t.Errorf("scaling changed the value: %v vs %v", v1, v2)
	}
}

func TestImpulseRewards(t *testing.T) {
	// Extension: an impulse of 3 on the only transition. With state
	// rewards zero, Y at the jump is exactly 3, so the bound decides
	// success sharply: r=2 → 0, r=3 → CDF of the jump by time t.
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 2)
	b.Label(1, "goal")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	goal := m.Label("goal")
	imp, err := sparse.NewFromTriplets(2, []sparse.Triplet{{Row: 0, Col: 1, Val: 3}})
	if err != nil {
		t.Fatal(err)
	}
	tb := 1.0
	got, err := ReachProb(m, goal, tb, 2, 0, Options{D: 1.0 / 64, Impulses: imp})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("r below impulse: got %v, want 0", got)
	}
	got, err = ReachProb(m, goal, tb, 3, 0, Options{D: 1.0 / 64, Impulses: imp})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-2*tb)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("r at impulse: got %v, want ≈ %v", got, want)
	}
	// Impulses that are not multiples of d are rejected.
	impBad, err := sparse.NewFromTriplets(2, []sparse.Triplet{{Row: 0, Col: 1, Val: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReachProb(m, goal, tb, 3, 0, Options{D: 1.0 / 64, Impulses: impBad}); !errors.Is(err, ErrRewards) {
		t.Errorf("non-grid impulse: %v", err)
	}
	// A fractional impulse that IS a multiple of d is fine.
	impOK, err := sparse.NewFromTriplets(2, []sparse.Triplet{{Row: 0, Col: 1, Val: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReachProb(m, goal, tb, 3, 0, Options{D: 1.0 / 64, Impulses: impOK}); err != nil {
		t.Errorf("grid-aligned impulse rejected: %v", err)
	}
}

func TestReachProbAllConsistent(t *testing.T) {
	m := singleJump(t, 1)
	goal := m.Label("goal")
	all, err := ReachProbAll(m, goal, 1, 1, Options{D: 1.0 / 32})
	if err != nil {
		t.Fatal(err)
	}
	one, err := ReachProb(m, goal, 1, 1, 0, Options{D: 1.0 / 32})
	if err != nil {
		t.Fatal(err)
	}
	if all[0] != one {
		t.Errorf("ReachProbAll[0] = %v, ReachProb = %v", all[0], one)
	}
	// From the absorbing goal state the probability is 1 (zero reward).
	if math.Abs(all[1]-1) > 1e-9 {
		t.Errorf("from goal state: %v, want 1", all[1])
	}
}
