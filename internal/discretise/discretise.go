// Package discretise implements the Tijms–Veldman discretisation method of
// Section 4.3 of the paper (H.C. Tijms, R. Veldman, "A fast algorithm for
// the transient reward distribution in continuous-time Markov chains",
// Oper. Res. Lett. 26, 2000), a generalisation of Goyal–Tantawi. Both time
// and accumulated reward are discretised in multiples of the same step d;
// the joint density F^j(s,k) of being in state s at time j·d with
// accumulated reward k·d is computed by the recursion
//
//	F^{j+1}(s,k) = F^j(s, k−ρ(s))·(1−E(s)·d) +
//	               Σ_{s'} F^j(s', k−ρ(s'))·R(s',s)·d
//
// which requires natural-number reward rates (rational rewards can be
// scaled; see ScaleRewards). The method has no a-priori error bound; its
// cost grows as d⁻² (Table 4).
package discretise

import (
	"errors"
	"fmt"
	"math"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/parallel"
	"github.com/performability/csrl/internal/sparse"
)

// Options configures the discretisation.
type Options struct {
	// D is the discretisation step for both time and accumulated reward.
	// It must satisfy d ≤ 1/max_s E(s) so that 1−E(s)·d stays a
	// probability, and should be small enough that the probability of two
	// transitions within d is negligible (the method's error source).
	D float64
	// Impulses optionally assigns impulse (transition) rewards: entry
	// (s,s') is the reward earned instantaneously when the transition
	// s→s' fires, in the same unit as the state rewards. Impulse rewards
	// must be multiples of the step D. This is the paper's future-work
	// extension, which the Tijms–Veldman scheme supports directly.
	Impulses *sparse.CSR
	// AllowCoarse permits steps d > 1/max_s E(s), for which the "stay"
	// factor 1−E(s)·d of some state is negative. The recursion is then no
	// longer a probability scheme but remains a (poorer) first-order
	// approximation; the paper's Table 4 contains such a row (d = 1/16
	// with max E(s) = 19.5), so reproduction needs this escape hatch.
	AllowCoarse bool
	// Workers bounds the parallelism of the recursion's per-state inner
	// loop and of ReachProbAll's per-source fan-out: 0 = runtime.NumCPU(),
	// 1 = the exact sequential legacy path. The per-state loop writes only
	// state-owned rows, so results are bitwise independent of Workers.
	Workers int
}

var (
	// ErrStep reports an invalid discretisation step.
	ErrStep = errors.New("discretise: invalid step")
	// ErrRewards reports non-natural reward rates.
	ErrRewards = errors.New("discretise: rewards must be natural numbers (use ScaleRewards)")
)

const intTol = 1e-9

// recursionGrain is the minimum state-space × reward-grid size n·(R+1)
// before the recursion's inner loop fans out across workers.
const recursionGrain = 4096

func asNatural(v float64) (int, bool) {
	r := math.Round(v)
	if r < 0 || math.Abs(v-r) > intTol*(1+math.Abs(v)) {
		return 0, false
	}
	return int(r), true
}

// ScaleRewards returns a copy of the model whose rewards are multiplied by
// factor, together with the scaled reward bound. Use it to turn rational
// rewards into the natural numbers the recursion requires; the reachability
// probability is invariant under simultaneous scaling of ρ and r.
func ScaleRewards(m *mrm.MRM, r, factor float64) (*mrm.MRM, float64, error) {
	if factor <= 0 {
		return nil, 0, fmt.Errorf("discretise: scale factor %v must be positive", factor)
	}
	b := mrm.NewBuilder(m.N())
	for s := 0; s < m.N(); s++ {
		b.Name(s, m.Name(s))
		b.Reward(s, m.Reward(s)*factor)
		m.Rates().Row(s, func(t int, v float64) {
			if v != 0 {
				b.Rate(s, t, v)
			}
		})
		for _, a := range m.Labels() {
			if m.HasLabel(s, a) {
				b.Label(s, a)
			}
		}
	}
	for s, p := range m.Init() {
		if p > 0 {
			b.InitialProb(s, p)
		}
	}
	scaled, err := b.Build()
	if err != nil {
		return nil, 0, fmt.Errorf("discretise: scale rewards: %w", err)
	}
	return scaled, r * factor, nil
}

// ReachProb computes the Theorem 2 quantity Pr{Y_t ≤ r, X_t ∈ goal}
// starting from the single initial state `from`, by the Tijms–Veldman
// recursion with step opts.D. t and r must be (near-)multiples of d.
func ReachProb(m *mrm.MRM, goal *mrm.StateSet, t, r float64, from int, opts Options) (float64, error) {
	n := m.N()
	if from < 0 || from >= n {
		return 0, fmt.Errorf("discretise: initial state %d out of range", from)
	}
	if goal.Universe() != n {
		return 0, fmt.Errorf("discretise: goal universe %d for %d states", goal.Universe(), n)
	}
	d := opts.D
	if d <= 0 {
		return 0, fmt.Errorf("%w: d=%v", ErrStep, d)
	}
	if t <= 0 || r <= 0 {
		return 0, fmt.Errorf("discretise: bounds t=%v r=%v must be positive", t, r)
	}
	T, okT := asNatural(t / d)
	R, okR := asNatural(r / d)
	if !okT || !okR || T == 0 || R == 0 {
		return 0, fmt.Errorf("%w: t/d=%v and r/d=%v must be positive integers", ErrStep, t/d, r/d)
	}

	rho := make([]int, n)
	for s := 0; s < n; s++ {
		v, ok := asNatural(m.Reward(s))
		if !ok {
			return 0, fmt.Errorf("%w: ρ(%d)=%v", ErrRewards, s, m.Reward(s))
		}
		rho[s] = v
		if m.ExitRate(s)*d > 1 && !opts.AllowCoarse {
			return 0, fmt.Errorf("%w: d=%v exceeds 1/E(%d)=%v (set AllowCoarse to force)", ErrStep, d, s, 1/m.ExitRate(s))
		}
	}

	// Impulse rewards: an explicit option overrides the model's own
	// impulse matrix. A state reward ρ(s) advances the reward
	// index by ρ(s) per time step (reward ρ(s)·d earned in a step of size
	// d), whereas an impulse ι is a one-off quantity: its index shift is
	// ι/d, which must therefore be integral.
	impulseMat := opts.Impulses
	if impulseMat == nil {
		impulseMat = m.Impulses()
	}
	var impulse map[[2]int]int
	if impulseMat != nil {
		if impulseMat.Dim() != n {
			return 0, fmt.Errorf("discretise: impulse matrix dimension %d for %d states", impulseMat.Dim(), n)
		}
		impulse = make(map[[2]int]int)
		var impErr error
		impulseMat.Each(func(i, j int, v float64) {
			k, ok := asNatural(v / d)
			if !ok {
				impErr = fmt.Errorf("%w: impulse ι(%d,%d)=%v is not a multiple of d=%v", ErrRewards, i, j, v, d)
				return
			}
			if k != 0 {
				impulse[[2]int{i, j}] = k
			}
		})
		if impErr != nil {
			return 0, impErr
		}
	}

	// Transposed rates: for target s we need the incoming transitions.
	rt := m.Rates().Transpose()
	stay := make([]float64, n)
	for s := 0; s < n; s++ {
		stay[s] = 1 - m.ExitRate(s)*d
	}

	// F[s][k], k = 0..R. F is a density in the reward dimension (1/d
	// scaling), exactly as in the paper.
	cur := make([][]float64, n)
	next := make([][]float64, n)
	for s := 0; s < n; s++ {
		cur[s] = make([]float64, R+1)
		next[s] = make([]float64, R+1)
	}
	// Initialisation convention (audited against the Sericola procedure and
	// the paper's Table 4; see TestConventionPinned): the state below is F¹,
	// not F⁰ — the first time step is charged up front and approximated as
	// jump-free, placing the point mass at reward index ρ(from) at time d.
	// Together with the T−1 recursion steps of the loop below the final sum
	// is therefore taken exactly at time T·d = t, with accumulated reward
	// the left-Riemann sum Σ_{j=0}^{T−1} ρ(X_{j·d})·d of the reward path.
	// This is the scheme the paper ran: with the "textbook" alternative
	// (F⁰ = mass at reward 0, T recursion steps) the d = 1/32…1/128 values
	// miss the published Table 4 entries by up to 1.3e-4, well outside the
	// reproduction tolerance, while this convention matches them to ≤ 8e-6
	// and halves the error against the exact Sericola value. Note that when
	// the reward bound binds (R < T·max ρ), F¹-init with T−1 steps and
	// F⁰-init with T steps coincide exactly — the extra shift and the extra
	// step cancel — so the loop bound below is only "off by one" relative
	// to a different, inferior initialisation convention.
	if rho[from] <= R {
		cur[from][rho[from]] = 1 / d
	}
	// If the very first step already exceeds the reward bound, the mass is
	// absorbed by the barrier immediately and the probability is 0.

	// The per-state inner loop writes only next[s] for its own s and reads
	// cur (immutable within a step), so partitioning states across workers
	// preserves the sequential arithmetic order per state: results are
	// bitwise identical for every workers value.
	workers := opts.Workers
	if n*(R+1) < recursionGrain {
		workers = 1
	}
	for j := 1; j < T; j++ {
		parallel.For(workers, n, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				fs := next[s]
				shift := rho[s]
				sStay := stay[s]
				curS := cur[s]
				for k := 0; k <= R; k++ {
					var v float64
					if k >= shift {
						v = curS[k-shift] * sStay
					}
					fs[k] = v
				}
				rt.Row(s, func(src int, rate float64) {
					w := rate * d
					shiftSrc := rho[src]
					if impulse != nil {
						if imp, ok := impulse[[2]int{src, s}]; ok {
							shiftSrc += imp
						}
					}
					curSrc := cur[src]
					for k := shiftSrc; k <= R; k++ {
						fs[k] += curSrc[k-shiftSrc] * w
					}
				})
			}
		})
		cur, next = next, cur
	}

	var sum float64
	goal.Each(func(s int) {
		for k := 0; k <= R; k++ {
			sum += cur[s][k]
		}
	})
	return sum * d, nil
}

// ReachProbAll runs ReachProb from every state. Because the recursion is a
// forward propagation from a point mass, this costs |S| independent runs;
// they are embarrassingly parallel and fan out across opts.Workers. Each
// per-source run is forced sequential (Workers: 1) — the fan-out already
// saturates the pool, and run-level parallelism keeps the arithmetic of
// every run identical to the sequential path.
func ReachProbAll(m *mrm.MRM, goal *mrm.StateSet, t, r float64, opts Options) ([]float64, error) {
	n := m.N()
	out := make([]float64, n)
	inner := opts
	inner.Workers = 1
	errs := make([]error, n)
	parallel.For(opts.Workers, n, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			out[s], errs[s] = ReachProb(m, goal, t, r, s, inner)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
