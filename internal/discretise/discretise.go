// Package discretise implements the Tijms–Veldman discretisation method of
// Section 4.3 of the paper (H.C. Tijms, R. Veldman, "A fast algorithm for
// the transient reward distribution in continuous-time Markov chains",
// Oper. Res. Lett. 26, 2000), a generalisation of Goyal–Tantawi. Both time
// and accumulated reward are discretised in multiples of the same step d;
// the joint density F^j(s,k) of being in state s at time j·d with
// accumulated reward k·d is computed by the recursion
//
//	F^{j+1}(s,k) = F^j(s, k−ρ(s))·(1−E(s)·d) +
//	               Σ_{s'} F^j(s', k−ρ(s'))·R(s',s)·d
//
// which requires natural-number reward rates (rational rewards can be
// scaled; see ScaleRewards). The method has no a-priori error bound; its
// cost grows as d⁻² (Table 4).
package discretise

import (
	"errors"
	"fmt"
	"math"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/obs"
	"github.com/performability/csrl/internal/parallel"
	"github.com/performability/csrl/internal/sparse"
)

// Options configures the discretisation.
type Options struct {
	// D is the discretisation step for both time and accumulated reward.
	// It must satisfy d ≤ 1/max_s E(s) so that 1−E(s)·d stays a
	// probability, and should be small enough that the probability of two
	// transitions within d is negligible (the method's error source).
	D float64
	// Impulses optionally assigns impulse (transition) rewards: entry
	// (s,s') is the reward earned instantaneously when the transition
	// s→s' fires, in the same unit as the state rewards. Impulse rewards
	// must be multiples of the step D. This is the paper's future-work
	// extension, which the Tijms–Veldman scheme supports directly.
	Impulses *sparse.CSR
	// AllowCoarse permits steps d > 1/max_s E(s), for which the "stay"
	// factor 1−E(s)·d of some state is negative. The recursion is then no
	// longer a probability scheme but remains a (poorer) first-order
	// approximation; the paper's Table 4 contains such a row (d = 1/16
	// with max E(s) = 19.5), so reproduction needs this escape hatch.
	AllowCoarse bool
	// Workers bounds the parallelism of the recursion's per-state inner
	// loop and of ReachProbAll's per-source fan-out: 0 = runtime.NumCPU(),
	// 1 = the exact sequential legacy path. The per-state loop writes only
	// state-owned rows, so results are bitwise independent of Workers.
	Workers int
	// Pool, when non-nil, supplies the n·(R+1) recursion grids. Each
	// worker of the ReachProbAll fan-out checks its grids out at the start
	// of its chunk and back in at the end — never across the parallel
	// region boundary — so the |S| per-source runs stop allocating fresh
	// grids per source.
	Pool *sparse.VecPool
	// Obs, when non-nil, receives the numerics-observability signals: the
	// O(d) discretisation term as an indicative ledger entry (the method
	// has no a-priori error bound — §4.3), source counters, grid gauges and
	// the recursion span.
	Obs *obs.Recorder
}

var (
	// ErrStep reports an invalid discretisation step.
	ErrStep = errors.New("discretise: invalid step")
	// ErrRewards reports non-natural reward rates.
	ErrRewards = errors.New("discretise: rewards must be natural numbers (use ScaleRewards)")
)

const intTol = 1e-9

// recursionGrain is the minimum state-space × reward-grid size n·(R+1)
// before the recursion's inner loop fans out across workers.
const recursionGrain = 4096

func asNatural(v float64) (int, bool) {
	r := math.Round(v)
	if r < 0 || math.Abs(v-r) > intTol*(1+math.Abs(v)) {
		return 0, false
	}
	return int(r), true
}

// ScaleRewards returns a copy of the model whose rewards are multiplied by
// factor, together with the scaled reward bound. Use it to turn rational
// rewards into the natural numbers the recursion requires; the reachability
// probability is invariant under simultaneous scaling of ρ and r.
func ScaleRewards(m *mrm.MRM, r, factor float64) (*mrm.MRM, float64, error) {
	if factor <= 0 {
		return nil, 0, fmt.Errorf("discretise: scale factor %v must be positive", factor)
	}
	b := mrm.NewBuilder(m.N())
	for s := 0; s < m.N(); s++ {
		b.Name(s, m.Name(s))
		b.Reward(s, m.Reward(s)*factor)
		m.Rates().Row(s, func(t int, v float64) {
			if v != 0 {
				b.Rate(s, t, v)
			}
		})
		for _, a := range m.Labels() {
			if m.HasLabel(s, a) {
				b.Label(s, a)
			}
		}
	}
	for s, p := range m.InitView() {
		if p > 0 {
			b.InitialProb(s, p)
		}
	}
	scaled, err := b.Build()
	if err != nil {
		return nil, 0, fmt.Errorf("discretise: scale rewards: %w", err)
	}
	return scaled, r * factor, nil
}

// prepared carries the source-independent precomputation of the recursion:
// validated grid dimensions, integer rewards, stay factors, the transposed
// rate matrix and the integer impulse shifts. Building it once and running
// it from many sources is what makes the |S|-source fan-out of
// ReachProbAll cheap — the transpose and the validation used to be redone
// per source.
type prepared struct {
	m       *mrm.MRM
	goal    *mrm.StateSet
	n, T, R int
	d       float64
	rho     []int
	stay    []float64
	rt      *sparse.CSR
	impulse map[[2]int]int
	workers int
}

// prepare validates the inputs and assembles the source-independent state.
func prepare(m *mrm.MRM, goal *mrm.StateSet, t, r float64, opts Options) (*prepared, error) {
	n := m.N()
	if goal.Universe() != n {
		return nil, fmt.Errorf("discretise: goal universe %d for %d states", goal.Universe(), n)
	}
	d := opts.D
	if d <= 0 {
		return nil, fmt.Errorf("%w: d=%v", ErrStep, d)
	}
	if t <= 0 || r <= 0 {
		return nil, fmt.Errorf("discretise: bounds t=%v r=%v must be positive", t, r)
	}
	T, okT := asNatural(t / d)
	R, okR := asNatural(r / d)
	if !okT || !okR || T == 0 || R == 0 {
		return nil, fmt.Errorf("%w: t/d=%v and r/d=%v must be positive integers", ErrStep, t/d, r/d)
	}

	rho := make([]int, n)
	for s := 0; s < n; s++ {
		v, ok := asNatural(m.Reward(s))
		if !ok {
			return nil, fmt.Errorf("%w: ρ(%d)=%v", ErrRewards, s, m.Reward(s))
		}
		rho[s] = v
		if m.ExitRate(s)*d > 1 && !opts.AllowCoarse {
			return nil, fmt.Errorf("%w: d=%v exceeds 1/E(%d)=%v (set AllowCoarse to force)", ErrStep, d, s, 1/m.ExitRate(s))
		}
	}

	// Impulse rewards: an explicit option overrides the model's own
	// impulse matrix. A state reward ρ(s) advances the reward
	// index by ρ(s) per time step (reward ρ(s)·d earned in a step of size
	// d), whereas an impulse ι is a one-off quantity: its index shift is
	// ι/d, which must therefore be integral.
	impulseMat := opts.Impulses
	if impulseMat == nil {
		impulseMat = m.Impulses()
	}
	var impulse map[[2]int]int
	if impulseMat != nil {
		if impulseMat.Dim() != n {
			return nil, fmt.Errorf("discretise: impulse matrix dimension %d for %d states", impulseMat.Dim(), n)
		}
		impulse = make(map[[2]int]int)
		var impErr error
		impulseMat.Each(func(i, j int, v float64) {
			k, ok := asNatural(v / d)
			if !ok {
				impErr = fmt.Errorf("%w: impulse ι(%d,%d)=%v is not a multiple of d=%v", ErrRewards, i, j, v, d)
				return
			}
			if k != 0 {
				impulse[[2]int{i, j}] = k
			}
		})
		if impErr != nil {
			return nil, impErr
		}
	}

	// Transposed rates: for target s we need the incoming transitions.
	rt := m.Rates().Transpose()
	stay := make([]float64, n)
	for s := 0; s < n; s++ {
		stay[s] = 1 - m.ExitRate(s)*d
	}

	workers := opts.Workers
	if n*(R+1) < recursionGrain {
		workers = 1
	}
	if opts.Obs != nil {
		// The scheme's error is O(d) with an unknown constant (no a-priori
		// bound, §4.3), so the step itself is the honest indicative entry.
		opts.Obs.ChargeIndicative("discretise", "step", d)
		opts.Obs.Gauge("discretise.grid").SetMax(float64(n * (R + 1)))
	}
	return &prepared{
		m: m, goal: goal, n: n, T: T, R: R, d: d,
		rho: rho, stay: stay, rt: rt, impulse: impulse, workers: workers,
	}, nil
}

// scratch holds the two recursion grids of one run, as row views over flat
// pool-sized buffers so they can be checked out and in as two Gets/Puts.
type scratch struct {
	curFlat, nextFlat []float64
	cur, next         [][]float64
}

// newScratch checks a grid pair out of pool (nil-safe).
func (p *prepared) newScratch(pool *sparse.VecPool) *scratch {
	stride := p.R + 1
	sc := &scratch{
		curFlat:  pool.Get(p.n * stride),
		nextFlat: pool.Get(p.n * stride),
		cur:      make([][]float64, p.n),
		next:     make([][]float64, p.n),
	}
	for s := 0; s < p.n; s++ {
		sc.cur[s] = sc.curFlat[s*stride : (s+1)*stride]
		sc.next[s] = sc.nextFlat[s*stride : (s+1)*stride]
	}
	return sc
}

// release checks the grid pair back in.
func (sc *scratch) release(pool *sparse.VecPool) {
	pool.Put(sc.curFlat)
	pool.Put(sc.nextFlat)
}

// reachProb runs the recursion from the single initial state `from`,
// reusing sc across calls. The arithmetic per (state, reward index) is
// identical to the historical per-source implementation, so results are
// bitwise unchanged and independent of both Workers and scratch reuse.
func (p *prepared) reachProb(from int, sc *scratch) float64 {
	// F[s][k], k = 0..R. F is a density in the reward dimension (1/d
	// scaling), exactly as in the paper. The cur grid carries the previous
	// run's values when the scratch is reused: clear it. The next grid
	// needs no clearing — every step fully overwrites each row before
	// accumulating into it.
	for i := range sc.curFlat {
		sc.curFlat[i] = 0
	}
	cur, next := sc.cur, sc.next
	// Initialisation convention (audited against the Sericola procedure and
	// the paper's Table 4; see TestConventionPinned): the state below is F¹,
	// not F⁰ — the first time step is charged up front and approximated as
	// jump-free, placing the point mass at reward index ρ(from) at time d.
	// Together with the T−1 recursion steps of the loop below the final sum
	// is therefore taken exactly at time T·d = t, with accumulated reward
	// the left-Riemann sum Σ_{j=0}^{T−1} ρ(X_{j·d})·d of the reward path.
	// This is the scheme the paper ran: with the "textbook" alternative
	// (F⁰ = mass at reward 0, T recursion steps) the d = 1/32…1/128 values
	// miss the published Table 4 entries by up to 1.3e-4, well outside the
	// reproduction tolerance, while this convention matches them to ≤ 8e-6
	// and halves the error against the exact Sericola value. Note that when
	// the reward bound binds (R < T·max ρ), F¹-init with T−1 steps and
	// F⁰-init with T steps coincide exactly — the extra shift and the extra
	// step cancel — so the loop bound below is only "off by one" relative
	// to a different, inferior initialisation convention.
	if p.rho[from] <= p.R {
		cur[from][p.rho[from]] = 1 / p.d
	}
	// If the very first step already exceeds the reward bound, the mass is
	// absorbed by the barrier immediately and the probability is 0.

	// The per-state inner loop writes only next[s] for its own s and reads
	// cur (immutable within a step), so partitioning states across workers
	// preserves the sequential arithmetic order per state: results are
	// bitwise identical for every workers value.
	R := p.R
	for j := 1; j < p.T; j++ {
		parallel.For(p.workers, p.n, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				fs := next[s]
				shift := p.rho[s]
				sStay := p.stay[s]
				curS := cur[s]
				for k := 0; k <= R; k++ {
					var v float64
					if k >= shift {
						v = curS[k-shift] * sStay
					}
					fs[k] = v
				}
				p.rt.Row(s, func(src int, rate float64) {
					w := rate * p.d
					shiftSrc := p.rho[src]
					if p.impulse != nil {
						if imp, ok := p.impulse[[2]int{src, s}]; ok {
							shiftSrc += imp
						}
					}
					curSrc := cur[src]
					for k := shiftSrc; k <= R; k++ {
						fs[k] += curSrc[k-shiftSrc] * w
					}
				})
			}
		})
		cur, next = next, cur
	}

	var sum float64
	p.goal.Each(func(s int) {
		for k := 0; k <= R; k++ {
			sum += cur[s][k]
		}
	})
	return sum * p.d
}

// ReachProb computes the Theorem 2 quantity Pr{Y_t ≤ r, X_t ∈ goal}
// starting from the single initial state `from`, by the Tijms–Veldman
// recursion with step opts.D. t and r must be (near-)multiples of d.
func ReachProb(m *mrm.MRM, goal *mrm.StateSet, t, r float64, from int, opts Options) (float64, error) {
	if from < 0 || from >= m.N() {
		return 0, fmt.Errorf("discretise: initial state %d out of range", from)
	}
	p, err := prepare(m, goal, t, r, opts)
	if err != nil {
		return 0, err
	}
	span := opts.Obs.StartSpan("discretise.recursion")
	sc := p.newScratch(opts.Pool)
	v := p.reachProb(from, sc)
	sc.release(opts.Pool)
	span.End()
	opts.Obs.Counter("discretise.sources").Inc()
	return v, nil
}

// ReachProbAll runs the recursion from every state. Because it is a
// forward propagation from a point mass, this costs |S| independent runs;
// they are embarrassingly parallel and fan out across opts.Workers, with
// the source-independent precomputation (validation, rate transpose,
// reward classification) shared by all of them. Each per-source run is
// forced sequential (Workers: 1) — the fan-out already saturates the pool,
// and run-level parallelism keeps the arithmetic of every run identical to
// the sequential path. Each fan-out worker reuses one scratch grid pair
// across all sources of its chunk, checked out of opts.Pool inside the
// chunk, so the fan-out no longer allocates n·(R+1) floats per source.
func ReachProbAll(m *mrm.MRM, goal *mrm.StateSet, t, r float64, opts Options) ([]float64, error) {
	inner := opts
	inner.Workers = 1
	p, err := prepare(m, goal, t, r, inner)
	if err != nil {
		return nil, err
	}
	n := m.N()
	out := make([]float64, n)
	span := opts.Obs.StartSpan("discretise.recursion")
	parallel.For(opts.Workers, n, func(lo, hi int) {
		sc := p.newScratch(opts.Pool)
		for s := lo; s < hi; s++ {
			out[s] = p.reachProb(s, sc)
		}
		sc.release(opts.Pool)
	})
	span.End()
	opts.Obs.Counter("discretise.sources").Add(int64(n))
	return out, nil
}
