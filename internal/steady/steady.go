// Package steady implements steady-state analysis of CTMCs for the CSRL
// steady-state operator S⋈p(Φ) (the paper defers its model-checking
// procedure to ref [2]): for each state s,
//
//	π_s(Φ) = Σ_B Pr_s{reach BSCC B} · π_B(Sat(Φ) ∩ B)
//
// where the sum ranges over the bottom strongly connected components of the
// chain and π_B is the stationary distribution of B.
package steady

import (
	"fmt"

	"github.com/performability/csrl/internal/graph"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/sparse"
)

// StationaryBSCC solves the stationary distribution of a single BSCC given
// by its member states. It solves π·Q_B = 0, Σπ = 1 directly (the BSCCs of
// dependability models are typically small; Gaussian elimination is exact
// and avoids iteration-tuning).
func StationaryBSCC(m *mrm.MRM, members []int) (map[int]float64, error) {
	k := len(members)
	if k == 0 {
		return nil, fmt.Errorf("steady: empty BSCC")
	}
	if k == 1 {
		return map[int]float64{members[0]: 1}, nil
	}
	idx := make(map[int]int, k)
	for i, s := range members {
		idx[s] = i
	}
	// Build Qᵀ restricted to the component, replacing the last equation by
	// the normalisation Σπ = 1.
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
	}
	for _, s := range members {
		col := idx[s]
		var exitInside float64
		m.Rates().Row(s, func(t int, v float64) {
			row, ok := idx[t]
			if !ok {
				return // cannot happen for a true BSCC; defensive
			}
			a[row][col] += v
			exitInside += v
		})
		a[col][col] -= exitInside
	}
	rhs := make([]float64, k)
	for j := 0; j < k; j++ {
		a[k-1][j] = 1
	}
	rhs[k-1] = 1
	x, err := numeric.GaussianEliminate(a, rhs)
	if err != nil {
		return nil, fmt.Errorf("steady: stationary solve: %w", err)
	}
	out := make(map[int]float64, k)
	for i, s := range members {
		out[s] = x[i]
	}
	return out, nil
}

// Probabilities returns, for every state s, the long-run probability of
// being in a Φ-state when starting from s.
func Probabilities(m *mrm.MRM, phi *mrm.StateSet) ([]float64, error) {
	if phi.Universe() != m.N() {
		return nil, fmt.Errorf("steady: Φ universe %d for %d states", phi.Universe(), m.N())
	}
	g := graph.FromRates(m.Rates())
	bsccs := g.BSCCs()
	n := m.N()
	result := make([]float64, n)
	for _, comp := range bsccs {
		pi, err := StationaryBSCC(m, comp)
		if err != nil {
			return nil, err
		}
		// Sum in the component's member order, not map order: float
		// addition rounds differently per permutation, and map iteration
		// is randomised.
		var phiMass float64
		for _, s := range comp {
			if phi.Contains(s) {
				phiMass += pi[s]
			}
		}
		if phiMass == 0 {
			continue
		}
		// Pr_s{reach this BSCC}: unbounded reachability of the component.
		target := mrm.NewStateSetOf(n, comp...)
		reach, err := ReachProbability(m, target)
		if err != nil {
			return nil, err
		}
		for s := 0; s < n; s++ {
			result[s] += reach[s] * phiMass
		}
	}
	return result, nil
}

// ReachProbability returns Pr_s{◊ target} for every state s (unbounded
// reachability), via graph precomputation and a Gauss–Seidel solve of the
// embedded DTMC equations — the procedure the paper cites from
// Hansson & Jonsson [13] for P0-type properties.
func ReachProbability(m *mrm.MRM, target *mrm.StateSet) ([]float64, error) {
	n := m.N()
	g := graph.FromRates(m.Rates())
	all := mrm.NewStateSet(n).Complement()
	canReach := g.BackwardReachable(all, target)
	x := make([]float64, n)
	target.Each(func(s int) { x[s] = 1 })
	maybe := canReach.Minus(target)
	if maybe.IsEmpty() {
		return x, nil
	}
	// Solve x = A·x + b over the maybe states, where A is the embedded
	// DTMC restricted to maybe and b collects one-step hits of target.
	states := maybe.Slice()
	idx := make(map[int]int, len(states))
	for i, s := range states {
		idx[s] = i
	}
	b := make([]float64, len(states))
	builder := sparse.NewBuilder(len(states))
	for i, s := range states {
		e := m.ExitRate(s)
		if e == 0 {
			continue // absorbing non-target state: probability 0
		}
		m.Rates().Row(s, func(t int, v float64) {
			p := v / e
			switch {
			case target.Contains(t):
				b[i] += p
			case maybe.Contains(t):
				builder.Add(i, idx[t], p)
			}
		})
	}
	a, err := builder.Build()
	if err != nil {
		return nil, fmt.Errorf("steady: reach system: %w", err)
	}
	sol, err := numeric.SolveGaussSeidel(a, b, numeric.DefaultSolveOptions())
	if err != nil {
		return nil, fmt.Errorf("steady: reach solve: %w", err)
	}
	for i, s := range states {
		x[s] = sol[i]
	}
	return x, nil
}
