package steady

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
)

func TestStationaryBSCCBirthDeath(t *testing.T) {
	// Birth-death chain with birth rate 1, death rate 2:
	// π_i ∝ (1/2)^i over states 0..3 (truncated).
	b := mrm.NewBuilder(4)
	for i := 0; i < 3; i++ {
		b.Rate(i, i+1, 1)
		b.Rate(i+1, i, 2)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := StationaryBSCC(m, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	z := 1 + 0.5 + 0.25 + 0.125
	for i := 0; i < 4; i++ {
		want := math.Pow(0.5, float64(i)) / z
		if math.Abs(pi[i]-want) > 1e-12 {
			t.Errorf("π[%d] = %v, want %v", i, pi[i], want)
		}
	}
}

func TestStationarySingleton(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := StationaryBSCC(m, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if pi[1] != 1 {
		t.Errorf("singleton stationary = %v", pi)
	}
	if _, err := StationaryBSCC(m, nil); err == nil {
		t.Error("empty component accepted")
	}
}

func TestProbabilitiesTwoAbsorbingStates(t *testing.T) {
	// 1 <--1-- 0 --3--> 2: from 0 the chain ends in 1 w.p. 1/4, in 2
	// w.p. 3/4.
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 1).Rate(0, 2, 3)
	b.Label(1, "left")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := Probabilities(m, m.Label("left"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-0.25) > 1e-10 {
		t.Errorf("from 0: %v, want 0.25", vals[0])
	}
	if vals[1] != 1 || vals[2] != 0 {
		t.Errorf("absorbing values: %v", vals)
	}
}

func TestProbabilitiesIrreducible(t *testing.T) {
	// Irreducible two-state chain: steady-state independent of the start.
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1).Rate(1, 0, 3)
	b.Label(0, "up")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := Probabilities(m, m.Label("up"))
	if err != nil {
		t.Fatal(err)
	}
	for s, v := range vals {
		if math.Abs(v-0.75) > 1e-10 {
			t.Errorf("from %d: %v, want 0.75", s, v)
		}
	}
}

func TestProbabilitiesBSCCWithInternalStructure(t *testing.T) {
	// Transient state 0 feeds a 2-state recurrent class {1,2}.
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 5)
	b.Rate(1, 2, 1).Rate(2, 1, 4)
	b.Label(1, "phi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := Probabilities(m, m.Label("phi"))
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 / 5.0 // π(1) within the class
	for s := 0; s < 3; s++ {
		if math.Abs(vals[s]-want) > 1e-10 {
			t.Errorf("from %d: %v, want %v", s, vals[s], want)
		}
	}
}

func TestReachProbabilityUnreachable(t *testing.T) {
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 1)
	b.Label(2, "island")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := ReachProbability(m, m.Label("island"))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 || vals[1] != 0 || vals[2] != 1 {
		t.Errorf("reach = %v, want [0 0 1]", vals)
	}
}

func TestProbabilitiesUniverseMismatch(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Probabilities(m, mrm.NewStateSet(5)); err == nil {
		t.Error("universe mismatch accepted")
	}
}
