package duality

import (
	"errors"
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/transient"
)

func model(t *testing.T) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 4).Rate(1, 2, 6).Rate(1, 0, 2)
	b.Reward(0, 2).Reward(1, 0.5).Reward(2, 1)
	b.Label(0, "x").Label(1, "y").Label(2, "x")
	b.InitialProb(0, 0.25).InitialProb(1, 0.75)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestDualRatesAndRewards(t *testing.T) {
	m := model(t)
	d, err := Dual(m)
	if err != nil {
		t.Fatal(err)
	}
	// R̄(s,s') = R(s,s')/ρ(s); ρ̄(s) = 1/ρ(s).
	if got := d.Rates().At(0, 1); got != 2 {
		t.Errorf("R̄(0,1) = %v, want 2", got)
	}
	if got := d.Rates().At(1, 2); got != 12 {
		t.Errorf("R̄(1,2) = %v, want 12", got)
	}
	if got := d.Rates().At(1, 0); got != 4 {
		t.Errorf("R̄(1,0) = %v, want 4", got)
	}
	if d.Reward(0) != 0.5 || d.Reward(1) != 2 || d.Reward(2) != 1 {
		t.Errorf("dual rewards = %v", d.Rewards())
	}
}

func TestDualPreservesLabelsNamesInit(t *testing.T) {
	m := model(t)
	d, err := Dual(m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasLabel(0, "x") || !d.HasLabel(2, "x") || !d.HasLabel(1, "y") {
		t.Error("labels lost in dual")
	}
	init := d.Init()
	if init[0] != 0.25 || init[1] != 0.75 {
		t.Errorf("initial distribution lost: %v", init)
	}
}

func TestDualZeroRewardAbsorbingAllowed(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	b.Reward(0, 2) // state 1 absorbing with reward 0
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Dual(m)
	if err != nil {
		t.Fatalf("absorbing zero-reward state must be allowed: %v", err)
	}
	if !d.IsAbsorbing(1) || d.Reward(1) != 0 {
		t.Error("absorbing zero-reward state changed")
	}
}

func TestDualZeroRewardTransientRejected(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1) // state 0 reward 0 with a transition
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dual(m); !errors.Is(err, ErrZeroReward) {
		t.Errorf("err = %v, want ErrZeroReward", err)
	}
}

func TestRewardBoundedUntilPassesDualAndBound(t *testing.T) {
	m := model(t)
	phi := m.Label("x")
	psi := m.Label("y")
	var gotT float64
	var gotMax float64
	_, err := RewardBoundedUntil(m, phi, psi, 7.5,
		func(d *mrm.MRM, p, q *mrm.StateSet, tb float64) ([]float64, error) {
			gotT = tb
			gotMax = d.Reward(1)
			return make([]float64, d.N()), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if gotT != 7.5 {
		t.Errorf("time bound on dual = %v, want 7.5", gotT)
	}
	if gotMax != 2 {
		t.Errorf("callback did not receive the dual model (ρ̄(1)=%v)", gotMax)
	}
}

// The duality theorem in action: for a model with constant reward c,
// Φ U_{≤r} Ψ equals Φ U^{≤r/c} Ψ on the original model, because earning
// reward r takes exactly time r/c.
func TestDualityConstantRewardEquivalence(t *testing.T) {
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 1).Rate(1, 2, 2).Rate(1, 0, 1)
	const c = 4.0
	for s := 0; s < 3; s++ {
		b.Reward(s, c)
	}
	b.Label(0, "phi").Label(1, "phi").Label(2, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	phi, psi := m.Label("phi"), m.Label("psi")
	const r = 6.0
	viaDual, err := RewardBoundedUntil(m, phi, psi, r,
		func(d *mrm.MRM, p, q *mrm.StateSet, tb float64) ([]float64, error) {
			return transient.TimeBoundedUntil(d, p, q, tb, transient.DefaultOptions())
		})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := transient.TimeBoundedUntil(m, phi, psi, r/c, transient.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for s := range direct {
		if math.Abs(viaDual[s]-direct[s]) > 1e-10 {
			t.Errorf("state %d: via dual %v, direct %v", s, viaDual[s], direct[s])
		}
	}
}
