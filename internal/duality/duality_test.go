package duality

import (
	"errors"
	"math"
	"testing"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/transient"
)

func model(t *testing.T) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 4).Rate(1, 2, 6).Rate(1, 0, 2)
	b.Reward(0, 2).Reward(1, 0.5).Reward(2, 1)
	b.Label(0, "x").Label(1, "y").Label(2, "x")
	b.InitialProb(0, 0.25).InitialProb(1, 0.75)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestDualRatesAndRewards(t *testing.T) {
	m := model(t)
	d, err := Dual(m)
	if err != nil {
		t.Fatal(err)
	}
	// R̄(s,s') = R(s,s')/ρ(s); ρ̄(s) = 1/ρ(s).
	if got := d.Rates().At(0, 1); got != 2 {
		t.Errorf("R̄(0,1) = %v, want 2", got)
	}
	if got := d.Rates().At(1, 2); got != 12 {
		t.Errorf("R̄(1,2) = %v, want 12", got)
	}
	if got := d.Rates().At(1, 0); got != 4 {
		t.Errorf("R̄(1,0) = %v, want 4", got)
	}
	if d.Reward(0) != 0.5 || d.Reward(1) != 2 || d.Reward(2) != 1 {
		t.Errorf("dual rewards = %v", d.Rewards())
	}
}

func TestDualPreservesLabelsNamesInit(t *testing.T) {
	m := model(t)
	d, err := Dual(m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasLabel(0, "x") || !d.HasLabel(2, "x") || !d.HasLabel(1, "y") {
		t.Error("labels lost in dual")
	}
	init := d.Init()
	if init[0] != 0.25 || init[1] != 0.75 {
		t.Errorf("initial distribution lost: %v", init)
	}
}

func TestDualZeroRewardAbsorbingAllowed(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	b.Reward(0, 2) // state 1 absorbing with reward 0
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Dual(m)
	if err != nil {
		t.Fatalf("absorbing zero-reward state must be allowed: %v", err)
	}
	if !d.IsAbsorbing(1) || d.Reward(1) != 0 {
		t.Error("absorbing zero-reward state changed")
	}
}

func TestDualZeroRewardTransientRejected(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1) // state 0 reward 0 with a transition
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dual(m); !errors.Is(err, ErrZeroReward) {
		t.Errorf("err = %v, want ErrZeroReward", err)
	}
}

func TestRewardBoundedUntilPassesDualAndBound(t *testing.T) {
	m := model(t)
	phi := m.Label("x")
	psi := m.Label("y")
	var gotT float64
	var gotMax float64
	_, err := RewardBoundedUntil(m, phi, psi, 7.5,
		func(d *mrm.MRM, p, q *mrm.StateSet, tb float64) ([]float64, error) {
			gotT = tb
			gotMax = d.Reward(1)
			return make([]float64, d.N()), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if gotT != 7.5 {
		t.Errorf("time bound on dual = %v, want 7.5", gotT)
	}
	if gotMax != 2 {
		t.Errorf("callback did not receive the dual model (ρ̄(1)=%v)", gotMax)
	}
}

// ftmsModel is the shape of the fault-tolerant multiprocessor of the
// paper's introduction (examples/ftms): states 0..4 count operational
// processors, reward i in state i, failures downward, one repair facility
// upward. downReward parameterises the reward of the down state: the true
// system has 0 there — and the down state is NOT absorbing (repair 0→1),
// which is exactly the configuration the duality transform must reject.
func ftmsModel(t *testing.T, downReward float64) *mrm.MRM {
	t.Helper()
	const processors = 4
	b := mrm.NewBuilder(processors + 1)
	for i := 1; i <= processors; i++ {
		b.Rate(i, i-1, float64(i)*0.01)
		b.Reward(i, float64(i))
		b.Label(i, "operational")
	}
	b.Reward(0, downReward)
	b.Label(0, "down")
	for i := 0; i < processors; i++ {
		b.Rate(i, i+1, 0.5)
	}
	b.InitialState(processors)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build ftms: %v", err)
	}
	return m
}

// ulps measures |a−b| in units in the last place of the larger magnitude.
func ulps(a, b float64) float64 {
	if a == b {
		return 0
	}
	mag := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / (math.Nextafter(mag, math.Inf(1)) - mag)
}

// requireRoundTrip asserts Dual(Dual(m)) ≈ m entry for entry. The rewards
// round-trip through x → 1/x → 1/(1/x) and the rates through v → v/ρ →
// (v/ρ)·ρ; either chain is two correctly-rounded operations, so each entry
// may drift by at most one ulp from the original.
func requireRoundTrip(t *testing.T, m *mrm.MRM) {
	t.Helper()
	d, err := Dual(m)
	if err != nil {
		t.Fatalf("Dual: %v", err)
	}
	dd, err := Dual(d)
	if err != nil {
		t.Fatalf("Dual(Dual): %v", err)
	}
	if dd.N() != m.N() {
		t.Fatalf("state count changed: %d -> %d", m.N(), dd.N())
	}
	for s := 0; s < m.N(); s++ {
		if u := ulps(dd.Reward(s), m.Reward(s)); u > 1 {
			t.Errorf("reward(%d): %v -> %v (%.1f ulps)", s, m.Reward(s), dd.Reward(s), u)
		}
		if dd.Name(s) != m.Name(s) {
			t.Errorf("name(%d): %q -> %q", s, m.Name(s), dd.Name(s))
		}
		m.Rates().Row(s, func(tgt int, v float64) {
			if u := ulps(dd.Rates().At(s, tgt), v); u > 1 {
				t.Errorf("rate(%d,%d): %v -> %v (%.1f ulps)", s, tgt, v, dd.Rates().At(s, tgt), u)
			}
		})
		dd.Rates().Row(s, func(tgt int, v float64) {
			if v != 0 && m.Rates().At(s, tgt) == 0 {
				t.Errorf("round trip invented rate (%d,%d) = %v", s, tgt, v)
			}
		})
		for _, a := range m.Labels() {
			if m.HasLabel(s, a) != dd.HasLabel(s, a) {
				t.Errorf("label %q flipped at state %d", a, s)
			}
		}
	}
	init, ddInit := m.Init(), dd.Init()
	for s := range init {
		if init[s] != ddInit[s] {
			t.Errorf("init(%d): %v -> %v", s, init[s], ddInit[s])
		}
	}
}

// TestDualInvolution pins Dual∘Dual ≈ id on the two models the duality
// path actually sees in the examples: the 9-state ad-hoc network (all
// power rewards ≥ 20, so the transform is total) and the FTMS variant with
// a positive down-state reward.
func TestDualInvolution(t *testing.T) {
	m, err := adhoc.Model()
	if err != nil {
		t.Fatalf("adhoc model: %v", err)
	}
	requireRoundTrip(t, m)
	requireRoundTrip(t, ftmsModel(t, 0.125))
	requireRoundTrip(t, model(t))
}

// TestDualRejectsFTMS pins that the true FTMS shape — reward 0 in the down
// state, which repair keeps non-absorbing — has no dual: P2-type
// properties on it must fail loudly with ErrZeroReward rather than divide
// by zero.
func TestDualRejectsFTMS(t *testing.T) {
	if _, err := Dual(ftmsModel(t, 0)); !errors.Is(err, ErrZeroReward) {
		t.Errorf("err = %v, want ErrZeroReward", err)
	}
}

// The duality theorem in action: for a model with constant reward c,
// Φ U_{≤r} Ψ equals Φ U^{≤r/c} Ψ on the original model, because earning
// reward r takes exactly time r/c.
func TestDualityConstantRewardEquivalence(t *testing.T) {
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 1).Rate(1, 2, 2).Rate(1, 0, 1)
	const c = 4.0
	for s := 0; s < 3; s++ {
		b.Reward(s, c)
	}
	b.Label(0, "phi").Label(1, "phi").Label(2, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	phi, psi := m.Label("phi"), m.Label("psi")
	const r = 6.0
	viaDual, err := RewardBoundedUntil(m, phi, psi, r,
		func(d *mrm.MRM, p, q *mrm.StateSet, tb float64) ([]float64, error) {
			return transient.TimeBoundedUntil(d, p, q, tb, transient.DefaultOptions())
		})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := transient.TimeBoundedUntil(m, phi, psi, r/c, transient.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for s := range direct {
		if math.Abs(viaDual[s]-direct[s]) > 1e-10 {
			t.Errorf("state %d: via dual %v, direct %v", s, viaDual[s], direct[s])
		}
	}
}
