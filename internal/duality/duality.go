// Package duality implements the time/reward duality transformation of
// [Baier, Haverkort, Katoen, Hermanns, "On the logical specification of
// performability properties", Theorem 1] that the paper uses for P2-type
// (reward-bounded, time-unbounded) properties: a residence of x time units
// in state s of the dual model M̄ corresponds to earning reward x in s of M,
// and vice versa. Concretely R̄(s,s') = R(s,s')/ρ(s) and ρ̄(s) = 1/ρ(s).
// The transformation requires strictly positive rewards.
package duality

import (
	"errors"
	"fmt"

	"github.com/performability/csrl/internal/mrm"
)

// ErrZeroReward reports that the dual model is undefined because some state
// has reward zero. (The duality of [4] is stated for positive reward
// structures; zero-reward states would need infinite rates.)
var ErrZeroReward = errors.New("duality: model has a zero-reward state")

// Dual returns the dual MRM M̄ of m. Applying Dual twice yields a model
// equal to the original (up to floating-point rounding).
func Dual(m *mrm.MRM) (*mrm.MRM, error) {
	n := m.N()
	if m.HasImpulses() {
		return nil, fmt.Errorf("duality: %w", mrm.ErrImpulsesUnsupported)
	}
	for s := 0; s < n; s++ {
		if m.Reward(s) == 0 && !m.IsAbsorbing(s) {
			return nil, fmt.Errorf("%w: state %d (%s)", ErrZeroReward, s, m.Name(s))
		}
	}
	b := mrm.NewBuilder(n)
	for s := 0; s < n; s++ {
		rho := m.Reward(s)
		b.Name(s, m.Name(s))
		if rho > 0 {
			b.Reward(s, 1/rho)
			m.Rates().Row(s, func(t int, v float64) {
				if v != 0 {
					b.Rate(s, t, v/rho)
				}
			})
		} else {
			// Absorbing zero-reward state: it stays absorbing in the dual
			// and accumulates no reward there either (reward 0 kept).
			b.Reward(s, 0)
		}
		for _, a := range m.Labels() {
			if m.HasLabel(s, a) {
				b.Label(s, a)
			}
		}
	}
	init := m.InitView()
	for s, p := range init {
		if p > 0 {
			b.InitialProb(s, p)
		}
	}
	d, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("duality: %w", err)
	}
	return d, nil
}

// RewardBoundedUntil computes Pr_s{Φ U_{≤r} Ψ} (reward bound only, time
// unbounded) for every state s via the duality transformation: the property
// is checked as a time-bounded until with bound r on the dual model
// (paper §3, P2 procedure). The timeBounded callback is the P1 procedure to
// run on the dual model; injecting it avoids an import cycle and lets tests
// substitute reference implementations.
func RewardBoundedUntil(
	m *mrm.MRM,
	phi, psi *mrm.StateSet,
	r float64,
	timeBounded func(dual *mrm.MRM, phi, psi *mrm.StateSet, t float64) ([]float64, error),
) ([]float64, error) {
	d, err := Dual(m)
	if err != nil {
		return nil, err
	}
	res, err := timeBounded(d, phi, psi, r)
	if err != nil {
		return nil, fmt.Errorf("duality: dual time-bounded until: %w", err)
	}
	return res, nil
}
