package sim

import (
	"fmt"
	"math"
)

// Window is a closed interval [Lo, Hi] used for the general-interval until
// estimator; Hi may be +Inf.
type Window struct {
	Lo, Hi float64
}

// UntilProbInterval estimates Pr{Φ U^I_J Ψ} for arbitrary intervals I
// (time) and J (reward) directly on path semantics (paper §2.3): a path
// satisfies the formula if there is an instant t' ∈ I at which it occupies
// a Ψ-state with accumulated reward Y(t') ∈ J, and it occupies Φ-states at
// every instant before t'. This estimator is the reference oracle for the
// general-interval extension (future work in the paper's §6).
func (s *Simulator) UntilProbInterval(from int, phi, psi StateSetLike, timeI, rewardJ Window, paths int) (Estimate, error) {
	if paths <= 0 {
		return Estimate{}, fmt.Errorf("sim: path count %d must be positive", paths)
	}
	if timeI.Lo < 0 || timeI.Lo > timeI.Hi || rewardJ.Lo < 0 || rewardJ.Lo > rewardJ.Hi {
		return Estimate{}, fmt.Errorf("sim: invalid windows I=%+v J=%+v", timeI, rewardJ)
	}
	hits := 0
	for i := 0; i < paths; i++ {
		if s.sampleUntilInterval(from, phi, psi, timeI, rewardJ) {
			hits++
		}
	}
	pHat := float64(hits) / float64(paths)
	hw := 1.96 * math.Sqrt(pHat*(1-pHat)/float64(paths))
	return Estimate{Value: pHat, HalfWidth: hw, Paths: paths}, nil
}

// StateSetLike is the minimal membership interface the estimator needs;
// *mrm.StateSet satisfies it.
type StateSetLike interface {
	Contains(i int) bool
}

func (s *Simulator) sampleUntilInterval(from int, phi, psi StateSetLike, timeI, rewardJ Window) bool {
	var (
		state = from
		now   float64
		y     float64
	)
	// Horizon beyond which no instant can fall into I.
	horizon := timeI.Hi
	for {
		e := s.m.ExitRate(state)
		var sojourn float64
		if e == 0 {
			sojourn = math.Inf(1)
		} else {
			sojourn = s.rng.ExpFloat64() / e
		}
		exit := now + sojourn
		rho := s.m.Reward(state)

		if psi.Contains(state) {
			// Candidate instants within this sojourn. At the entry instant
			// the prefix consists of strictly earlier states only; for an
			// interior instant the current state must also satisfy Φ.
			if hitWithin(now, now, y, rho, timeI, rewardJ) {
				return true
			}
			if phi.Contains(state) && hitWithin(now, exit, y, rho, timeI, rewardJ) {
				return true
			}
		}
		if !phi.Contains(state) {
			return false // the prefix condition fails for every later t'
		}
		if exit > horizon || e == 0 {
			return false // no future instant can fall into I
		}
		now = exit
		y += sojourn * rho
		var imp float64
		state, imp = s.next(state, e)
		y += imp
	}
}

// hitWithin reports whether some instant t' in the sojourn window
// [entry, exit] satisfies t' ∈ I and y + (t'−entry)·rho ∈ J.
func hitWithin(entry, exit, y, rho float64, timeI, rewardJ Window) bool {
	lo := math.Max(entry, timeI.Lo)
	hi := math.Min(exit, timeI.Hi)
	if lo > hi {
		return false
	}
	// Reward constraint as a window on t'.
	if rho == 0 {
		if y < rewardJ.Lo || y > rewardJ.Hi {
			return false
		}
		return true
	}
	rLo := entry + (rewardJ.Lo-y)/rho
	rHi := entry + (rewardJ.Hi-y)/rho
	lo = math.Max(lo, rLo)
	hi = math.Min(hi, rHi)
	return lo <= hi
}
