// Package sim provides discrete-event Monte-Carlo simulation of Markov
// reward models. It realises the two-dimensional stochastic process
// (X_t, Y_t) of Figure 1 of the paper — the CTMC state combined with the
// continuously accumulated reward — and serves two purposes: it regenerates
// Figure 1 as trajectory data, and it is an implementation-independent
// oracle against which the three numerical procedures are validated.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/performability/csrl/internal/mrm"
)

// Event is one step of a simulated path: the state entered, the time of
// entry and the accumulated reward at entry.
type Event struct {
	State  int
	Time   float64
	Reward float64
}

// Path is an alternating state/sojourn sequence (paper §2.2) realised as
// entry events; the path remains in Events[i].State until Events[i+1].Time.
type Path struct {
	Events []Event
}

// StateAt returns the state occupied at time t (t within the simulated
// horizon; later times return the last state).
func (p *Path) StateAt(t float64) int {
	s := p.Events[0].State
	for _, e := range p.Events {
		if e.Time > t {
			break
		}
		s = e.State
	}
	return s
}

// RewardAt returns the accumulated reward Y_t at time t, interpolating
// linearly within the sojourn of the occupied state.
func (p *Path) RewardAt(t float64, m *mrm.MRM) float64 {
	last := p.Events[0]
	for _, e := range p.Events[1:] {
		if e.Time > t {
			break
		}
		last = e
	}
	return last.Reward + (t-last.Time)*m.Reward(last.State)
}

// Simulator draws paths from an MRM.
type Simulator struct {
	m   *mrm.MRM
	rng *rand.Rand
	// cumulative transition distributions per state
	targets [][]int
	cum     [][]float64
	// impulse[s][i] is the impulse reward of the i-th outgoing transition
	// of s (parallel to targets[s]); nil when the model has none.
	impulse [][]float64
}

// New creates a simulator with a deterministic seed (tests) or any seed the
// caller chooses.
func New(m *mrm.MRM, seed int64) *Simulator {
	n := m.N()
	s := &Simulator{
		m:       m,
		rng:     rand.New(rand.NewSource(seed)),
		targets: make([][]int, n),
		cum:     make([][]float64, n),
	}
	if m.HasImpulses() {
		s.impulse = make([][]float64, n)
	}
	for st := 0; st < n; st++ {
		var acc float64
		m.Rates().Row(st, func(j int, v float64) {
			if v > 0 {
				acc += v
				s.targets[st] = append(s.targets[st], j)
				s.cum[st] = append(s.cum[st], acc)
				if s.impulse != nil {
					s.impulse[st] = append(s.impulse[st], m.Impulse(st, j))
				}
			}
		})
	}
	return s
}

// SamplePath simulates one path from state `from` until time horizon or
// until maxEvents transitions occurred, whichever comes first.
func (s *Simulator) SamplePath(from int, horizon float64, maxEvents int) (*Path, error) {
	if from < 0 || from >= s.m.N() {
		return nil, fmt.Errorf("sim: initial state %d out of range", from)
	}
	p := &Path{Events: []Event{{State: from}}}
	t, y := 0.0, 0.0
	state := from
	for i := 0; i < maxEvents; i++ {
		e := s.m.ExitRate(state)
		if e == 0 {
			break // absorbing
		}
		dt := s.rng.ExpFloat64() / e
		if t+dt > horizon {
			break
		}
		t += dt
		y += dt * s.m.Reward(state)
		var imp float64
		state, imp = s.next(state, e)
		y += imp
		p.Events = append(p.Events, Event{State: state, Time: t, Reward: y})
	}
	return p, nil
}

// next samples the successor state and returns it together with the
// impulse reward earned by the chosen transition.
func (s *Simulator) next(state int, exit float64) (int, float64) {
	u := s.rng.Float64() * exit
	cum := s.cum[state]
	idx := len(cum) - 1
	for i, c := range cum {
		if u <= c {
			idx = i
			break
		}
	}
	var imp float64
	if s.impulse != nil {
		imp = s.impulse[state][idx]
	}
	return s.targets[state][idx], imp
}

// Estimate is a Monte-Carlo estimate with a normal-approximation confidence
// half-width.
type Estimate struct {
	Value     float64
	HalfWidth float64 // 95% confidence half-width
	Paths     int
}

// String renders the estimate as value ± half-width.
func (e Estimate) String() string {
	return fmt.Sprintf("%.6f ± %.6f (n=%d)", e.Value, e.HalfWidth, e.Paths)
}

// ReachProb estimates Pr{Y_t ≤ r, X_t ∈ goal} from state `from` — the
// Theorem 2 quantity — over the given number of independent paths. A
// non-positive r disables the reward bound only when math.IsInf(r, 1).
func (s *Simulator) ReachProb(from int, goal *mrm.StateSet, t, r float64, paths int) (Estimate, error) {
	if paths <= 0 {
		return Estimate{}, fmt.Errorf("sim: path count %d must be positive", paths)
	}
	hits := 0
	for i := 0; i < paths; i++ {
		ok, err := s.sampleHit(from, goal, t, r)
		if err != nil {
			return Estimate{}, err
		}
		if ok {
			hits++
		}
	}
	pHat := float64(hits) / float64(paths)
	hw := 1.96 * math.Sqrt(pHat*(1-pHat)/float64(paths))
	return Estimate{Value: pHat, HalfWidth: hw, Paths: paths}, nil
}

func (s *Simulator) sampleHit(from int, goal *mrm.StateSet, t, r float64) (bool, error) {
	state := from
	time, y := 0.0, 0.0
	for {
		e := s.m.ExitRate(state)
		var dt float64
		if e == 0 {
			dt = t - time // absorbing: sit out the remaining horizon
		} else {
			dt = s.rng.ExpFloat64() / e
		}
		if time+dt >= t {
			y += (t - time) * s.m.Reward(state)
			return goal.Contains(state) && y <= r, nil
		}
		time += dt
		y += dt * s.m.Reward(state)
		if y > r {
			// Absorbing reward barrier of Figure 1: once Y exceeds r the
			// outcome can no longer satisfy Y_t ≤ r.
			return false, nil
		}
		if e == 0 {
			return goal.Contains(state) && y <= r, nil
		}
		var imp float64
		state, imp = s.next(state, e)
		y += imp
		if y > r {
			return false, nil
		}
	}
}

// UntilProb estimates Pr{Φ U^{≤t}_{≤r} Ψ} directly on path semantics
// (paper §2.3): a path satisfies the until if a Ψ-state is reached at some
// time t' ≤ t with accumulated reward ≤ r while all earlier states satisfy
// Φ. This estimator deliberately does NOT use the Theorem 1 reduction, so
// it provides an independent check of that theorem.
func (s *Simulator) UntilProb(from int, phi, psi *mrm.StateSet, t, r float64, paths int) (Estimate, error) {
	if paths <= 0 {
		return Estimate{}, fmt.Errorf("sim: path count %d must be positive", paths)
	}
	hits := 0
	for i := 0; i < paths; i++ {
		ok := s.sampleUntil(from, phi, psi, t, r)
		if ok {
			hits++
		}
	}
	pHat := float64(hits) / float64(paths)
	hw := 1.96 * math.Sqrt(pHat*(1-pHat)/float64(paths))
	return Estimate{Value: pHat, HalfWidth: hw, Paths: paths}, nil
}

func (s *Simulator) sampleUntil(from int, phi, psi *mrm.StateSet, t, r float64) bool {
	state := from
	time, y := 0.0, 0.0
	for {
		if psi.Contains(state) {
			return time <= t && y <= r
		}
		if !phi.Contains(state) {
			return false
		}
		e := s.m.ExitRate(state)
		if e == 0 {
			return false // stuck in a Φ∧¬Ψ state forever
		}
		dt := s.rng.ExpFloat64() / e
		time += dt
		y += dt * s.m.Reward(state)
		var imp float64
		state, imp = s.next(state, e)
		y += imp // the impulse of the entering transition counts toward J
		if time > t || y > r {
			return false
		}
	}
}
