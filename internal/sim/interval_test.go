package sim

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
)

func TestHitWithin(t *testing.T) {
	tests := []struct {
		name                string
		entry, exit, y, rho float64
		timeI, rewardJ      Window
		want                bool
	}{
		{
			name:  "plain overlap",
			entry: 0, exit: 2, y: 0, rho: 1,
			timeI: Window{0, 10}, rewardJ: Window{0, 10},
			want: true,
		},
		{
			name:  "time window misses sojourn",
			entry: 0, exit: 1, y: 0, rho: 1,
			timeI: Window{2, 3}, rewardJ: Window{0, 10},
			want: false,
		},
		{
			name:  "reward reached mid-sojourn",
			entry: 0, exit: 4, y: 0, rho: 1,
			timeI: Window{0, 10}, rewardJ: Window{2, 3},
			want: true, // Y crosses [2,3] at t' ∈ [2,3]
		},
		{
			name:  "reward window already passed",
			entry: 0, exit: 4, y: 5, rho: 1,
			timeI: Window{0, 10}, rewardJ: Window{2, 3},
			want: false,
		},
		{
			name:  "zero reward rate inside window",
			entry: 0, exit: 4, y: 2.5, rho: 0,
			timeI: Window{1, 2}, rewardJ: Window{2, 3},
			want: true,
		},
		{
			name:  "zero reward rate outside window",
			entry: 0, exit: 4, y: 5, rho: 0,
			timeI: Window{1, 2}, rewardJ: Window{2, 3},
			want: false,
		},
		{
			name:  "joint feasibility needs intersection",
			entry: 0, exit: 10, y: 0, rho: 1,
			// time allows [0,2], reward needs t' ≥ 5: incompatible.
			timeI: Window{0, 2}, rewardJ: Window{5, 6},
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := hitWithin(tt.entry, tt.exit, tt.y, tt.rho, tt.timeI, tt.rewardJ)
			if got != tt.want {
				t.Errorf("hitWithin = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestUntilProbIntervalDegeneratesToUntilProb(t *testing.T) {
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 2).Rate(1, 2, 3).Rate(1, 0, 1)
	b.Reward(0, 1).Reward(1, 2)
	b.Label(0, "phi").Label(1, "phi").Label(2, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	phi, psi := m.Label("phi"), m.Label("psi")
	// With I=[0,t], J=[0,r] the interval estimator measures the same event
	// as the plain estimator.
	a, err := New(m, 5).UntilProb(0, phi, psi, 2, 3, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	bEst, err := New(m, 6).UntilProbInterval(0, phi, psi, Window{0, 2}, Window{0, 3}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Value-bEst.Value) > a.HalfWidth+bEst.HalfWidth {
		t.Errorf("plain %v vs interval %v", a, bEst)
	}
}

func TestUntilProbIntervalStartInPsi(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	b.Label(0, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, 1)
	psi := m.Label("psi")
	phi := mrm.NewStateSet(2) // empty: only the entry instant can satisfy
	// 0 ∈ I and 0 ∈ J: satisfied at t' = 0.
	est, err := s.UntilProbInterval(0, phi, psi, Window{0, 1}, Window{0, 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 1 {
		t.Errorf("entry-instant satisfaction: %v, want 1", est.Value)
	}
	// t1 > 0 and Φ empty: the prefix condition fails for any t' > 0.
	est, err = s.UntilProbInterval(0, phi, psi, Window{0.5, 1}, Window{0, 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 {
		t.Errorf("prefix violation: %v, want 0", est.Value)
	}
}

func TestUntilProbIntervalValidation(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	b.Label(1, "psi")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, 1)
	psi := m.Label("psi")
	all := mrm.NewStateSet(2).Complement()
	if _, err := s.UntilProbInterval(0, all, psi, Window{2, 1}, Window{0, 1}, 10); err == nil {
		t.Error("inverted time window accepted")
	}
	if _, err := s.UntilProbInterval(0, all, psi, Window{0, 1}, Window{-1, 1}, 10); err == nil {
		t.Error("negative reward window accepted")
	}
	if _, err := s.UntilProbInterval(0, all, psi, Window{0, 1}, Window{0, 1}, 0); err == nil {
		t.Error("zero paths accepted")
	}
}

func TestSimulatorImpulseAccounting(t *testing.T) {
	// Deterministic check through SamplePath: impulses appear in the
	// cumulative reward at entry events.
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1000) // jump almost immediately
	b.Reward(0, 0)
	b.Impulse(0, 1, 7)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(m, 9).SamplePath(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 2 {
		t.Fatalf("events: %+v", p.Events)
	}
	// Rate reward is ~0 (tiny sojourn, ρ=0); the impulse dominates.
	if got := p.Events[1].Reward; got != 7 {
		t.Errorf("reward at entry = %v, want exactly 7 (impulse only)", got)
	}
}
