package sim

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/transient"
)

func chain(t *testing.T) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 2).Rate(1, 2, 3).Rate(1, 0, 1)
	b.Reward(0, 1).Reward(1, 2)
	b.Label(2, "goal").Label(0, "phi").Label(1, "phi")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestSamplePathStructure(t *testing.T) {
	m := chain(t)
	s := New(m, 1)
	p, err := s.SamplePath(0, 10, 1000)
	if err != nil {
		t.Fatalf("SamplePath: %v", err)
	}
	if p.Events[0].State != 0 || p.Events[0].Time != 0 {
		t.Fatalf("path must start at (0, t=0): %+v", p.Events[0])
	}
	// Times strictly increase; rewards are consistent with sojourns.
	for i := 1; i < len(p.Events); i++ {
		prev, cur := p.Events[i-1], p.Events[i]
		if cur.Time <= prev.Time {
			t.Fatalf("times not increasing at %d", i)
		}
		dt := cur.Time - prev.Time
		wantR := prev.Reward + dt*m.Reward(prev.State)
		if math.Abs(cur.Reward-wantR) > 1e-12 {
			t.Fatalf("reward accounting wrong at %d: %v vs %v", i, cur.Reward, wantR)
		}
	}
	// Absorbing state 2 ends the path.
	last := p.Events[len(p.Events)-1]
	if last.State != 2 && last.Time < 10 && len(p.Events) < 1000 {
		t.Errorf("path ended early in non-absorbing state %d", last.State)
	}
}

func TestStateAtAndRewardAt(t *testing.T) {
	m := chain(t)
	p := &Path{Events: []Event{
		{State: 0, Time: 0, Reward: 0},
		{State: 1, Time: 2, Reward: 2},
		{State: 2, Time: 3, Reward: 4},
	}}
	if got := p.StateAt(1); got != 0 {
		t.Errorf("StateAt(1) = %d", got)
	}
	if got := p.StateAt(2.5); got != 1 {
		t.Errorf("StateAt(2.5) = %d", got)
	}
	if got := p.StateAt(99); got != 2 {
		t.Errorf("StateAt(99) = %d", got)
	}
	// Reward interpolation: at t=1, accumulated = 1·ρ(0) = 1.
	if got := p.RewardAt(1, m); got != 1 {
		t.Errorf("RewardAt(1) = %v", got)
	}
	// At t=2.5: 2 + 0.5·ρ(1) = 3.
	if got := p.RewardAt(2.5, m); got != 3 {
		t.Errorf("RewardAt(2.5) = %v", got)
	}
}

func TestReachProbMatchesTransient(t *testing.T) {
	// Without a reward bound (r = ∞) the estimate must match the
	// uniformisation-based transient probability.
	m := chain(t)
	goal := m.Label("goal")
	ref, err := transient.ReachProbAll(m, goal, 1.0, transient.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, 42)
	est, err := s.ReachProb(0, goal, 1.0, math.Inf(1), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-ref[0]) > est.HalfWidth+1e-3 {
		t.Errorf("sim %v vs transient %v", est, ref[0])
	}
}

func TestReachProbDeterministicSeed(t *testing.T) {
	m := chain(t)
	goal := m.Label("goal")
	a, err := New(m, 7).ReachProb(0, goal, 1, 3, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(m, 7).ReachProb(0, goal, 1, 3, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Errorf("same seed, different estimates: %v vs %v", a, b)
	}
}

func TestUntilProbViolations(t *testing.T) {
	// Ψ unreachable without leaving Φ ⇒ probability 0.
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 1).Rate(1, 2, 1)
	b.Label(0, "phi").Label(2, "psi") // state 1 is neither
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, 3)
	est, err := s.UntilProb(0, m.Label("phi"), m.Label("psi"), math.Inf(1), math.Inf(1), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 {
		t.Errorf("blocked until = %v, want 0", est.Value)
	}
	// Starting in Ψ satisfies immediately.
	est, err = s.UntilProb(2, m.Label("phi"), m.Label("psi"), 1, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 1 {
		t.Errorf("start-in-psi until = %v, want 1", est.Value)
	}
}

func TestErrorsOnBadInput(t *testing.T) {
	m := chain(t)
	s := New(m, 1)
	if _, err := s.SamplePath(-1, 1, 10); err == nil {
		t.Error("negative initial state accepted")
	}
	if _, err := s.ReachProb(0, m.Label("goal"), 1, 1, 0); err == nil {
		t.Error("zero path count accepted")
	}
	if _, err := s.UntilProb(0, m.Label("phi"), m.Label("goal"), 1, 1, -1); err == nil {
		t.Error("negative path count accepted")
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Value: 0.5, HalfWidth: 0.01, Paths: 100}
	if got := e.String(); got != "0.500000 ± 0.010000 (n=100)" {
		t.Errorf("String = %q", got)
	}
}
