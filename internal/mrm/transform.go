package mrm

import (
	"fmt"

	"github.com/performability/csrl/internal/sparse"
)

// MakeAbsorbing returns a copy of the model in which every state of the set
// has all outgoing transitions removed. When zeroReward is true the reward
// of those states is also set to 0, as required by Theorem 1 of the paper.
func (m *MRM) MakeAbsorbing(set *StateSet, zeroReward bool) (*MRM, error) {
	if set.Universe() != m.n {
		return nil, fmt.Errorf("%w: set universe %d for model with %d states", ErrModel, set.Universe(), m.n)
	}
	b := sparse.NewBuilder(m.n)
	for s := 0; s < m.n; s++ {
		if set.Contains(s) {
			continue
		}
		m.rates.Row(s, func(t int, v float64) {
			if v != 0 {
				b.Add(s, t, v)
			}
		})
	}
	rates, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("mrm: make absorbing: %w", err)
	}
	reward := sparse.Clone(m.reward)
	if zeroReward {
		set.Each(func(s int) { reward[s] = 0 })
	}
	exit := make([]float64, m.n)
	for s := 0; s < m.n; s++ {
		exit[s] = rates.RowSum(s)
	}
	labels := make(map[string]*StateSet, len(m.labels))
	for a, l := range m.labels {
		labels[a] = l.Clone()
	}
	var impulses *sparse.CSR
	if m.impulses != nil {
		// Impulses of removed (outgoing) transitions disappear with them.
		ib := sparse.NewBuilder(m.n)
		m.impulses.Each(func(i, j int, v float64) {
			if v != 0 && !set.Contains(i) {
				ib.Add(i, j, v)
			}
		})
		if ib.Len() > 0 {
			var err error
			impulses, err = ib.Build()
			if err != nil {
				return nil, fmt.Errorf("mrm: make absorbing: %w", err)
			}
		}
	}
	return &MRM{
		n:        m.n,
		rates:    rates,
		exit:     exit,
		reward:   reward,
		init:     sparse.Clone(m.init),
		names:    append([]string(nil), m.names...),
		labels:   labels,
		impulses: impulses,
	}, nil
}

// UntilReduction is the result of applying Theorem 1: the reduced MRM M'
// in which all Ψ-states are amalgamated into a single absorbing goal state
// and all ¬(Φ∨Ψ)-states into a single absorbing fail state, both with
// reward 0. Checking P⋈p(Φ U^{≤t}_{≤r} Ψ) in the original model from state
// s is equivalent to computing Pr{Y_t ≤ r, X_t = Goal} in Model starting
// from StateMap[s].
type UntilReduction struct {
	Model *MRM
	// Goal is the index of the amalgamated Ψ state in Model.
	Goal int
	// Fail is the index of the amalgamated ¬(Φ∨Ψ) state, or -1 when no such
	// state was reachable (every original state satisfied Φ or Ψ).
	Fail int
	// StateMap maps original state indices to reduced indices. Ψ-states map
	// to Goal and ¬(Φ∨Ψ)-states map to Fail.
	StateMap []int
}

// ReduceForUntil builds the reduced model of Theorem 1 for the path formula
// Φ U^{≤t}_{≤r} Ψ, where phi = Sat(Φ) and psi = Sat(Ψ).
func ReduceForUntil(m *MRM, phi, psi *StateSet) (*UntilReduction, error) {
	if phi.Universe() != m.n || psi.Universe() != m.n {
		return nil, fmt.Errorf("%w: satisfaction-set universe mismatch", ErrModel)
	}
	// Partition: transient = Φ ∧ ¬Ψ; goal = Ψ; fail = ¬(Φ ∨ Ψ).
	goalSet := psi
	transSet := phi.Minus(psi)
	failSet := phi.Union(psi).Complement()

	stateMap := make([]int, m.n)
	var transStates []int
	transSet.Each(func(s int) {
		stateMap[s] = len(transStates)
		transStates = append(transStates, s)
	})
	goal := len(transStates)
	fail := goal + 1
	n := goal + 2
	goalSet.Each(func(s int) { stateMap[s] = goal })
	hasFail := !failSet.IsEmpty()
	if hasFail {
		failSet.Each(func(s int) { stateMap[s] = fail })
	} else {
		n = goal + 1
		fail = -1
	}

	b := NewBuilder(n)
	var impulseErr error
	for ri, s := range transStates {
		b.Reward(ri, m.reward[s])
		b.Name(ri, m.Name(s))
		// Impulse of the first merged transition into each reduced target;
		// amalgamation is only sound when merged transitions agree.
		seenImpulse := make(map[int]float64)
		m.rates.Row(s, func(t int, v float64) {
			if v == 0 {
				return
			}
			target := stateMap[t]
			b.Rate(ri, target, v)
			if m.impulses == nil {
				return
			}
			// Impulses on transitions into the fail state never influence
			// the formula (the path has already failed), so drop them.
			if target == fail {
				return
			}
			iv := m.Impulse(s, t)
			if prev, ok := seenImpulse[target]; ok {
				//lint:ignore floatcmp amalgamation soundness needs exact agreement of impulses copied verbatim from the model
				if prev != iv && impulseErr == nil {
					impulseErr = fmt.Errorf("%w: transitions from %s amalgamated into one carry different impulse rewards (%v vs %v); Theorem 1 amalgamation is not applicable", ErrModel, m.Name(s), prev, iv)
				}
				return
			}
			seenImpulse[target] = iv
			if iv != 0 {
				b.Impulse(ri, target, iv)
			}
		})
	}
	if impulseErr != nil {
		return nil, impulseErr
	}
	b.Name(goal, "goal").Reward(goal, 0).Label(goal, "goal")
	if hasFail {
		b.Name(fail, "fail").Reward(fail, 0).Label(fail, "fail")
	}
	// Initial distribution: project the original α. Mass on goal/fail states
	// stays there (they trivially satisfy / violate the path formula).
	initIdx := m.InitialState()
	if initIdx >= 0 {
		b.InitialState(stateMap[initIdx])
	} else {
		proj := make([]float64, n)
		for s, a := range m.init {
			proj[stateMap[s]] += a
		}
		for s, p := range proj {
			if p > 0 {
				b.InitialProb(s, p)
			}
		}
	}
	reduced, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("mrm: until reduction: %w", err)
	}
	return &UntilReduction{Model: reduced, Goal: goal, Fail: fail, StateMap: stateMap}, nil
}

// WithInitialState returns a copy of the model whose initial distribution is
// a point mass on s.
func (m *MRM) WithInitialState(s int) (*MRM, error) {
	if s < 0 || s >= m.n {
		return nil, fmt.Errorf("%w: %d", ErrState, s)
	}
	c := *m
	c.init = make([]float64, m.n)
	c.init[s] = 1
	return &c, nil
}
