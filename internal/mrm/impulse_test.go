package mrm

import (
	"math"
	"testing"
)

func impulseModel(t *testing.T) *MRM {
	t.Helper()
	b := NewBuilder(3)
	b.Rate(0, 1, 2).Rate(1, 2, 1).Rate(1, 0, 3)
	b.Reward(0, 1)
	b.Impulse(0, 1, 0.5)
	b.Impulse(1, 2, 2)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestImpulseAccessors(t *testing.T) {
	m := impulseModel(t)
	if !m.HasImpulses() {
		t.Fatal("HasImpulses = false")
	}
	if got := m.Impulse(0, 1); got != 0.5 {
		t.Errorf("ι(0,1) = %v", got)
	}
	if got := m.Impulse(1, 0); got != 0 {
		t.Errorf("ι(1,0) = %v, want 0", got)
	}
	if m.Impulses() == nil {
		t.Error("Impulses() = nil")
	}
}

func TestNoImpulses(t *testing.T) {
	b := NewBuilder(2)
	b.Rate(0, 1, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.HasImpulses() || m.Impulses() != nil || m.Impulse(0, 1) != 0 {
		t.Error("impulse state leaked into a plain model")
	}
}

func TestImpulseValidation(t *testing.T) {
	cases := []struct {
		name string
		prep func(*Builder)
	}{
		{"negative", func(b *Builder) { b.Impulse(0, 1, -1) }},
		{"NaN", func(b *Builder) { b.Impulse(0, 1, math.NaN()) }},
		{"out of range", func(b *Builder) { b.Impulse(0, 9, 1) }},
		{"no transition", func(b *Builder) { b.Impulse(1, 0, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(2)
			b.Rate(0, 1, 1)
			tc.prep(b)
			if _, err := b.Build(); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
	// A zero impulse is a no-op, not an error, and does not force an
	// impulse matrix into existence.
	b := NewBuilder(2)
	b.Rate(0, 1, 1)
	b.Impulse(0, 1, 0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("zero impulse rejected: %v", err)
	}
	if m.HasImpulses() {
		t.Error("zero impulse materialised a matrix")
	}
}

func TestMakeAbsorbingDropsOutgoingImpulses(t *testing.T) {
	m := impulseModel(t)
	abs, err := m.MakeAbsorbing(NewStateSetOf(3, 1), true)
	if err != nil {
		t.Fatal(err)
	}
	if got := abs.Impulse(1, 2); got != 0 {
		t.Errorf("outgoing impulse of absorbed state kept: %v", got)
	}
	if got := abs.Impulse(0, 1); got != 0.5 {
		t.Errorf("incoming impulse lost: %v", got)
	}
	// Absorbing everything with impulses leaves none.
	all, err := m.MakeAbsorbing(NewStateSet(3).Complement(), true)
	if err != nil {
		t.Fatal(err)
	}
	if all.HasImpulses() {
		t.Error("fully absorbed model still has impulses")
	}
}
