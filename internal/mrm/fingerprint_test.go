package mrm

import "testing"

// fpModel builds a small labelled model; mutate tweaks the builder before
// Build so each test case can perturb exactly one ingredient.
func fpModel(t *testing.T, mutate func(*Builder)) *MRM {
	t.Helper()
	b := NewBuilder(3)
	b.Rate(0, 1, 2.5).Rate(1, 0, 1.0).Rate(1, 2, 0.5)
	b.Reward(0, 1).Reward(1, 3)
	b.Label(0, "up").Label(1, "up").Label(2, "down")
	b.Name(0, "a").Name(1, "b").Name(2, "c")
	b.InitialState(0)
	if mutate != nil {
		mutate(b)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestFingerprintStableAcrossRebuilds(t *testing.T) {
	a := fpModel(t, nil)
	b := fpModel(t, nil)
	if a == b {
		t.Fatal("want two distinct model values")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical builds disagree: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if got := a.Fingerprint(); got != a.Fingerprint() {
		t.Errorf("fingerprint not deterministic: %s vs %s", got, a.Fingerprint())
	}
	if len(a.Fingerprint()) != 64 {
		t.Errorf("want 64 hex chars, got %d", len(a.Fingerprint()))
	}
}

func TestFingerprintBuilderOrderIndependent(t *testing.T) {
	base := fpModel(t, nil)
	b := NewBuilder(3)
	// Same content, reversed call order.
	b.InitialState(0)
	b.Name(2, "c").Name(1, "b").Name(0, "a")
	b.Label(2, "down").Label(1, "up").Label(0, "up")
	b.Reward(1, 3).Reward(0, 1)
	b.Rate(1, 2, 0.5).Rate(1, 0, 1.0).Rate(0, 1, 2.5)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if base.Fingerprint() != m.Fingerprint() {
		t.Error("builder call order changed the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpModel(t, nil).Fingerprint()
	cases := map[string]func(*Builder){
		"rate value":   func(b *Builder) { b.Rate(0, 1, 0.5) }, // rates accumulate
		"new edge":     func(b *Builder) { b.Rate(2, 0, 1.0) },
		"reward":       func(b *Builder) { b.Reward(2, 7) },
		"label member": func(b *Builder) { b.Label(2, "up") },
		"new label":    func(b *Builder) { b.Label(0, "fresh") },
		"init":         func(b *Builder) { b.InitialState(1) },
		"name":         func(b *Builder) { b.Name(2, "z") },
		"impulse":      func(b *Builder) { b.Impulse(0, 1, 4) },
	}
	for name, mutate := range cases {
		if got := fpModel(t, mutate).Fingerprint(); got == base {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
}

func TestFingerprintSizeMatters(t *testing.T) {
	small, err := NewBuilder(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewBuilder(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if small.Fingerprint() == big.Fingerprint() {
		t.Error("state-count change did not change the fingerprint")
	}
}
