package mrm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestStateSetBasics(t *testing.T) {
	s := NewStateSet(130) // spans multiple words
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	s.Add(500) // ignored
	s.Add(-1)  // ignored
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Contains(i) {
			t.Errorf("missing %d", i)
		}
	}
	if s.Contains(1) || s.Contains(500) || s.Contains(-3) {
		t.Error("spurious membership")
	}
	s.Remove(64)
	if s.Contains(64) || s.Len() != 2 {
		t.Error("Remove failed")
	}
	if got := s.Slice(); !reflect.DeepEqual(got, []int{0, 129}) {
		t.Errorf("Slice = %v", got)
	}
	if got := s.String(); got != "{0, 129}" {
		t.Errorf("String = %q", got)
	}
}

func TestStateSetAlgebra(t *testing.T) {
	a := NewStateSetOf(10, 1, 2, 3)
	b := NewStateSetOf(10, 3, 4)
	if got := a.Union(b).Slice(); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Slice(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b).Slice(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Minus = %v", got)
	}
	if got := a.Complement().Len(); got != 7 {
		t.Errorf("Complement size = %d, want 7", got)
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal")
	}
	if a.Equal(b) {
		t.Error("unequal sets reported equal")
	}
	if a.Equal(NewStateSet(11)) {
		t.Error("different universes reported equal")
	}
}

func TestComplementBoundary(t *testing.T) {
	// Universe sizes at and around word boundaries.
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129} {
		s := NewStateSet(n)
		c := s.Complement()
		if c.Len() != n {
			t.Errorf("n=%d: complement of empty has %d members", n, c.Len())
		}
		if c.Contains(n) {
			t.Errorf("n=%d: complement contains out-of-universe element", n)
		}
		if cc := c.Complement(); !cc.IsEmpty() {
			t.Errorf("n=%d: double complement not empty: %v", n, cc)
		}
	}
}

func TestIndicator(t *testing.T) {
	s := NewStateSetOf(4, 1, 3)
	if got := s.Indicator(); !reflect.DeepEqual(got, []float64{0, 1, 0, 1}) {
		t.Errorf("Indicator = %v", got)
	}
}

func TestSetLawsProperty(t *testing.T) {
	gen := func(rng *rand.Rand, n int) *StateSet {
		s := NewStateSet(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Add(i)
			}
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := gen(rng, n), gen(rng, n)
		// De Morgan: ¬(a ∪ b) == ¬a ∩ ¬b
		if !a.Union(b).Complement().Equal(a.Complement().Intersect(b.Complement())) {
			return false
		}
		// a \ b == a ∩ ¬b
		if !a.Minus(b).Equal(a.Intersect(b.Complement())) {
			return false
		}
		// |a| + |¬a| == n
		return a.Len()+a.Complement().Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on universe mismatch")
		}
	}()
	NewStateSet(3).Union(NewStateSet(4))
}

func TestStateSetKey(t *testing.T) {
	a := NewStateSetOf(100, 1, 63, 64, 99)
	b := NewStateSetOf(100, 1, 63, 64, 99)
	if a.Key() != b.Key() {
		t.Error("equal sets must have equal keys")
	}
	c := NewStateSetOf(100, 1, 63, 64)
	if a.Key() == c.Key() {
		t.Error("different sets must have different keys")
	}
	// Same members, different universe: keys must differ.
	d := NewStateSetOf(101, 1, 63, 64, 99)
	if a.Key() == d.Key() {
		t.Error("different universes must have different keys")
	}
	if NewStateSet(0).Key() == NewStateSet(64).Key() {
		t.Error("empty sets over different universes must differ")
	}
}
