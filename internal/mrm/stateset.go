package mrm

import (
	"fmt"
	"math/bits"
	"strings"
)

// StateSet is a fixed-universe set of state indices, used for satisfaction
// sets Sat(Φ) and for the goal/absorbing sets of the numerical procedures.
type StateSet struct {
	bits []uint64
	n    int
}

// NewStateSet returns an empty set over the universe {0, …, n-1}.
func NewStateSet(n int) *StateSet {
	return &StateSet{bits: make([]uint64, (n+63)/64), n: n}
}

// NewStateSetOf returns a set over {0,…,n-1} containing the given states.
func NewStateSetOf(n int, states ...int) *StateSet {
	s := NewStateSet(n)
	for _, st := range states {
		s.Add(st)
	}
	return s
}

// Universe returns the size of the universe.
func (s *StateSet) Universe() int { return s.n }

// Add inserts state i; out-of-universe indices are ignored.
func (s *StateSet) Add(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.bits[i>>6] |= 1 << (uint(i) & 63)
}

// Remove deletes state i.
func (s *StateSet) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.bits[i>>6] &^= 1 << (uint(i) & 63)
}

// Contains reports membership of i.
func (s *StateSet) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Len returns the number of members.
func (s *StateSet) Len() int {
	c := 0
	for _, w := range s.bits {
		c += popcount(w)
	}
	return c
}

// IsEmpty reports whether the set has no members.
func (s *StateSet) IsEmpty() bool {
	for _, w := range s.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *StateSet) Clone() *StateSet {
	c := NewStateSet(s.n)
	copy(c.bits, s.bits)
	return c
}

// Union returns s ∪ t (universes must match).
func (s *StateSet) Union(t *StateSet) *StateSet {
	s.mustMatch(t)
	u := s.Clone()
	for i, w := range t.bits {
		u.bits[i] |= w
	}
	return u
}

// Intersect returns s ∩ t.
func (s *StateSet) Intersect(t *StateSet) *StateSet {
	s.mustMatch(t)
	u := s.Clone()
	for i, w := range t.bits {
		u.bits[i] &= w
	}
	return u
}

// Minus returns s \ t.
func (s *StateSet) Minus(t *StateSet) *StateSet {
	s.mustMatch(t)
	u := s.Clone()
	for i, w := range t.bits {
		u.bits[i] &^= w
	}
	return u
}

// Complement returns the universe minus s.
func (s *StateSet) Complement() *StateSet {
	u := NewStateSet(s.n)
	for i := range u.bits {
		u.bits[i] = ^s.bits[i]
	}
	// Clear bits beyond the universe.
	if rem := uint(s.n) & 63; rem != 0 && len(u.bits) > 0 {
		u.bits[len(u.bits)-1] &= (1 << rem) - 1
	}
	return u
}

// Equal reports set equality.
func (s *StateSet) Equal(t *StateSet) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.bits {
		if w != t.bits[i] {
			return false
		}
	}
	return true
}

// Each calls fn for every member in increasing order.
func (s *StateSet) Each(fn func(i int)) {
	for wi, w := range s.bits {
		for w != 0 {
			b := w & (-w)
			fn(wi*64 + trailingZeros(w))
			w ^= b
		}
	}
}

// Slice returns the members in increasing order.
func (s *StateSet) Slice() []int {
	out := make([]int, 0, s.Len())
	s.Each(func(i int) { out = append(out, i) })
	return out
}

// Indicator returns the 0/1 membership vector of length Universe().
func (s *StateSet) Indicator() []float64 {
	v := make([]float64, s.n)
	s.Each(func(i int) { v[i] = 1 })
	return v
}

// Key returns a compact string that identifies the set contents and
// universe exactly — two sets have equal keys iff Equal reports true.
// It is intended as a map key for memoisation.
func (s *StateSet) Key() string {
	buf := make([]byte, 0, 8*(len(s.bits)+1))
	buf = appendUint64(buf, uint64(s.n))
	for _, w := range s.bits {
		buf = appendUint64(buf, w)
	}
	return string(buf)
}

func appendUint64(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

// String renders the set as {i, j, …}.
func (s *StateSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.Each(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
		first = false
	})
	b.WriteByte('}')
	return b.String()
}

func (s *StateSet) mustMatch(t *StateSet) {
	if s.n != t.n {
		//lint:ignore bannedcall mixing universes is a programmer error, like an out-of-bounds index; set algebra stays error-free
		panic(fmt.Sprintf("mrm: state-set universe mismatch %d vs %d", s.n, t.n))
	}
}

func popcount(w uint64) int { return bits.OnesCount64(w) }

func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }
