package mrm

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func buildTiny(t *testing.T) *MRM {
	t.Helper()
	b := NewBuilder(3)
	b.Rate(0, 1, 2).Rate(0, 2, 1).Rate(1, 2, 3)
	b.Reward(0, 5).Reward(1, 1)
	b.Label(0, "start").Label(1, "mid").Label(2, "end").Label(0, "odd").Label(2, "odd")
	b.Name(0, "s").Name(1, "m").Name(2, "e")
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestBuilderBasics(t *testing.T) {
	m := buildTiny(t)
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	if got := m.ExitRate(0); got != 3 {
		t.Errorf("E(0) = %v, want 3", got)
	}
	if !m.IsAbsorbing(2) {
		t.Error("state 2 should be absorbing")
	}
	if m.Reward(0) != 5 || m.Reward(2) != 0 {
		t.Errorf("rewards wrong: %v", m.Rewards())
	}
	if m.MaxReward() != 5 {
		t.Errorf("MaxReward = %v", m.MaxReward())
	}
	if got := m.DistinctRewards(); !reflect.DeepEqual(got, []float64{0, 1, 5}) {
		t.Errorf("DistinctRewards = %v", got)
	}
	if m.InitialState() != 0 {
		t.Errorf("InitialState = %d", m.InitialState())
	}
	if m.Name(1) != "m" {
		t.Errorf("Name(1) = %q", m.Name(1))
	}
	if m.StateIndex("e") != 2 || m.StateIndex("zz") != -1 {
		t.Error("StateIndex lookup broken")
	}
	if got := m.Labels(); !reflect.DeepEqual(got, []string{"end", "mid", "odd", "start"}) {
		t.Errorf("Labels = %v", got)
	}
	if !m.HasLabel(0, "odd") || m.HasLabel(1, "odd") {
		t.Error("HasLabel wrong")
	}
}

func TestBuilderValidation(t *testing.T) {
	cases := []struct {
		name string
		prep func(*Builder)
	}{
		{"negative rate", func(b *Builder) { b.Rate(0, 1, -1) }},
		{"self loop", func(b *Builder) { b.Rate(0, 0, 1) }},
		{"state out of range", func(b *Builder) { b.Rate(0, 9, 1) }},
		{"negative reward", func(b *Builder) { b.Reward(0, -2) }},
		{"NaN reward", func(b *Builder) { b.Reward(0, math.NaN()) }},
		{"empty label", func(b *Builder) { b.Label(0, "") }},
		{"bad initial prob", func(b *Builder) { b.InitialProb(0, 1.5) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(2)
			b.Rate(0, 1, 1)
			tc.prep(b)
			if _, err := b.Build(); err == nil {
				t.Errorf("%s not rejected", tc.name)
			}
		})
	}
	t.Run("initial distribution must sum to 1", func(t *testing.T) {
		b := NewBuilder(2)
		b.Rate(0, 1, 1)
		b.InitialProb(0, 0.3)
		if _, err := b.Build(); err == nil {
			t.Error("partial distribution accepted")
		}
	})
	t.Run("zero states", func(t *testing.T) {
		if _, err := NewBuilder(0).Build(); err == nil {
			t.Error("empty model accepted")
		}
	})
}

func TestDefaultInitialDistribution(t *testing.T) {
	b := NewBuilder(2)
	b.Rate(0, 1, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.InitialState() != 0 {
		t.Errorf("default initial state = %d, want 0", m.InitialState())
	}
}

func TestUniformised(t *testing.T) {
	m := buildTiny(t)
	lambda := m.UniformisationRate()
	if lambda < 3 {
		t.Fatalf("uniformisation rate %v below max exit rate 3", lambda)
	}
	p, err := m.Uniformised(lambda)
	if err != nil {
		t.Fatalf("Uniformised: %v", err)
	}
	// Rows must be stochastic.
	for i := 0; i < 3; i++ {
		if got := p.RowSum(i); math.Abs(got-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, got)
		}
	}
	if _, err := m.Uniformised(1); err == nil {
		t.Error("rate below max exit accepted")
	}
	if _, err := m.Uniformised(0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestGenerator(t *testing.T) {
	m := buildTiny(t)
	q, err := m.Generator()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := q.RowSum(i); math.Abs(got) > 1e-12 {
			t.Errorf("generator row %d sums to %v, want 0", i, got)
		}
	}
	if q.At(0, 0) != -3 {
		t.Errorf("Q(0,0) = %v, want -3", q.At(0, 0))
	}
}

func TestMakeAbsorbing(t *testing.T) {
	m := buildTiny(t)
	abs, err := m.MakeAbsorbing(NewStateSetOf(3, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if !abs.IsAbsorbing(0) {
		t.Error("state 0 not absorbing")
	}
	if abs.Reward(0) != 0 {
		t.Error("reward not zeroed")
	}
	if abs.IsAbsorbing(1) {
		t.Error("state 1 wrongly absorbing")
	}
	// Original untouched.
	if m.IsAbsorbing(0) || m.Reward(0) != 5 {
		t.Error("MakeAbsorbing mutated the original model")
	}
	// Universe mismatch.
	if _, err := m.MakeAbsorbing(NewStateSet(5), false); err == nil {
		t.Error("universe mismatch accepted")
	}
}

func TestReduceForUntil(t *testing.T) {
	m := buildTiny(t)
	phi := NewStateSetOf(3, 0, 1)
	psi := NewStateSetOf(3, 2)
	red, err := ReduceForUntil(m, phi, psi)
	if err != nil {
		t.Fatal(err)
	}
	// 2 transient + goal; no fail states (all states in Φ∨Ψ).
	if red.Model.N() != 3 {
		t.Fatalf("reduced N = %d, want 3", red.Model.N())
	}
	if red.Fail != -1 {
		t.Errorf("Fail = %d, want -1", red.Fail)
	}
	if !red.Model.IsAbsorbing(red.Goal) || red.Model.Reward(red.Goal) != 0 {
		t.Error("goal must be absorbing with zero reward")
	}
	if red.StateMap[2] != red.Goal {
		t.Error("Ψ-state not mapped to goal")
	}
	// Rates into goal merge the two original transitions of state 0? No:
	// state 0 had rates to 1 (transient) and 2 (goal).
	if got := red.Model.Rates().At(red.StateMap[0], red.Goal); got != 1 {
		t.Errorf("rate(0→goal) = %v, want 1", got)
	}
	if got := red.Model.Rates().At(red.StateMap[0], red.StateMap[1]); got != 2 {
		t.Errorf("rate(0→1) = %v, want 2", got)
	}
}

func TestReduceForUntilWithFail(t *testing.T) {
	m := buildTiny(t)
	phi := NewStateSetOf(3, 0)
	psi := NewStateSetOf(3, 2)
	red, err := ReduceForUntil(m, phi, psi)
	if err != nil {
		t.Fatal(err)
	}
	// transient {0}, goal {2}, fail {1}.
	if red.Model.N() != 3 || red.Fail < 0 {
		t.Fatalf("unexpected shape: N=%d fail=%d", red.Model.N(), red.Fail)
	}
	if red.StateMap[1] != red.Fail {
		t.Error("state 1 should map to fail")
	}
	if got := red.Model.Rates().At(red.StateMap[0], red.Fail); got != 2 {
		t.Errorf("rate(0→fail) = %v, want 2", got)
	}
}

func TestWithInitialState(t *testing.T) {
	m := buildTiny(t)
	m2, err := m.WithInitialState(1)
	if err != nil {
		t.Fatal(err)
	}
	if m2.InitialState() != 1 {
		t.Errorf("new initial state = %d", m2.InitialState())
	}
	if m.InitialState() != 0 {
		t.Error("WithInitialState mutated the original")
	}
	if _, err := m.WithInitialState(7); !errors.Is(err, ErrState) {
		t.Errorf("out of range: err = %v", err)
	}
}

func TestLabelReturnsCopy(t *testing.T) {
	m := buildTiny(t)
	l := m.Label("start")
	l.Add(2)
	if m.Label("start").Contains(2) {
		t.Error("Label leaked internal state")
	}
}
