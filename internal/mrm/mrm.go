// Package mrm implements Markov reward models (MRMs): finite labelled
// continuous-time Markov chains equipped with a state-based reward
// structure, as defined in Section 2.1 of the paper. An MRM is the tuple
// M = (S, R, ρ) together with a labelling of states by atomic propositions
// and an initial distribution α.
package mrm

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/performability/csrl/internal/sparse"
)

// MRM is an immutable Markov reward model. Construct one with a Builder.
type MRM struct {
	n      int
	rates  *sparse.CSR // R: rate matrix, R(s,s') ≥ 0, zero diagonal
	exit   []float64   // E(s) = Σ_{s'} R(s,s')
	reward []float64   // ρ: state reward (gain) rates, ≥ 0
	init   []float64   // α: initial distribution
	names  []string    // optional human-readable state names
	labels map[string]*StateSet
	// impulses is the optional impulse-reward matrix ι (nil = none);
	// see impulse.go.
	impulses *sparse.CSR
}

var (
	// ErrState reports a state index outside the model.
	ErrState = errors.New("mrm: state index out of range")
	// ErrModel reports an inconsistency in model construction.
	ErrModel = errors.New("mrm: invalid model")
)

// N returns the number of states.
func (m *MRM) N() int { return m.n }

// Rates returns the rate matrix R (shared, do not modify).
func (m *MRM) Rates() *sparse.CSR { return m.rates }

// ExitRate returns E(s), the total rate out of state s.
func (m *MRM) ExitRate(s int) float64 { return m.exit[s] }

// ExitRates returns a copy of the exit-rate vector E.
func (m *MRM) ExitRates() []float64 { return sparse.Clone(m.exit) }

// ExitRatesView returns the exit-rate vector E (shared, do not modify).
// The no-copy view exists for the internal sweep loops, which read the
// vector once per call on their hot path; external callers should prefer
// ExitRates.
//
//lint:ignore aliasret sharing is the documented contract of the View accessors; callers must not modify
func (m *MRM) ExitRatesView() []float64 { return m.exit }

// Reward returns ρ(s).
func (m *MRM) Reward(s int) float64 { return m.reward[s] }

// Rewards returns a copy of the reward vector ρ.
func (m *MRM) Rewards() []float64 { return sparse.Clone(m.reward) }

// RewardsView returns the reward vector ρ (shared, do not modify). See
// ExitRatesView for the sharing contract.
//
//lint:ignore aliasret sharing is the documented contract of the View accessors; callers must not modify
func (m *MRM) RewardsView() []float64 { return m.reward }

// MaxReward returns max_s ρ(s).
func (m *MRM) MaxReward() float64 {
	var mx float64
	for _, r := range m.reward {
		if r > mx {
			mx = r
		}
	}
	return mx
}

// DistinctRewards returns the sorted distinct reward values of the model.
func (m *MRM) DistinctRewards() []float64 {
	seen := make(map[float64]bool, len(m.reward))
	var out []float64
	for _, r := range m.reward {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Float64s(out)
	return out
}

// Init returns a copy of the initial distribution α.
func (m *MRM) Init() []float64 { return sparse.Clone(m.init) }

// InitView returns the initial distribution α (shared, do not modify). See
// ExitRatesView for the sharing contract.
//
//lint:ignore aliasret sharing is the documented contract of the View accessors; callers must not modify
func (m *MRM) InitView() []float64 { return m.init }

// InitialState returns the unique initial state if α is a point mass,
// or -1 otherwise.
func (m *MRM) InitialState() int {
	idx := -1
	for s, a := range m.init {
		if a > 0 {
			if idx != -1 {
				return -1
			}
			//lint:ignore floatcmp a point mass is stored as exactly 1 by the Builder; any other value means a proper distribution
			if a != 1 {
				return -1
			}
			idx = s
		}
	}
	return idx
}

// Name returns the state's name ("s<i>" when unnamed).
func (m *MRM) Name(s int) string {
	if s >= 0 && s < len(m.names) && m.names[s] != "" {
		return m.names[s]
	}
	return fmt.Sprintf("s%d", s)
}

// StateIndex returns the index of the state with the given name, or -1.
func (m *MRM) StateIndex(name string) int {
	for i, n := range m.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Labels returns the sorted list of atomic propositions used in the model.
func (m *MRM) Labels() []string {
	out := make([]string, 0, len(m.labels))
	for l := range m.labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Label returns the set of states carrying atomic proposition a. The result
// is empty (not nil semantics surprises) for unknown propositions.
func (m *MRM) Label(a string) *StateSet {
	if s, ok := m.labels[a]; ok {
		return s.Clone()
	}
	return NewStateSet(m.n)
}

// HasLabel reports whether state s carries atomic proposition a.
func (m *MRM) HasLabel(s int, a string) bool {
	set, ok := m.labels[a]
	return ok && set.Contains(s)
}

// IsAbsorbing reports whether state s has no outgoing transitions.
func (m *MRM) IsAbsorbing(s int) bool { return m.exit[s] == 0 }

// UniformisationRate returns a rate λ ≥ max_s E(s) suitable for
// uniformisation. A small headroom factor keeps the diagonal of the
// uniformised matrix strictly positive, which improves convergence of the
// underlying DTMC iteration (standard practice).
func (m *MRM) UniformisationRate() float64 {
	var mx float64
	for _, e := range m.exit {
		if e > mx {
			mx = e
		}
	}
	if mx == 0 {
		return 1 // all states absorbing; any positive rate works
	}
	return mx * 1.02
}

// Uniformised returns the DTMC transition matrix P = I + Q/λ of the
// uniformised chain, where Q = R - diag(E). λ must be ≥ max_s E(s).
func (m *MRM) Uniformised(lambda float64) (*sparse.CSR, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("%w: uniformisation rate %v must be positive", ErrModel, lambda)
	}
	b := sparse.NewBuilder(m.n)
	for s := 0; s < m.n; s++ {
		if m.exit[s] > lambda*(1+1e-12) {
			return nil, fmt.Errorf("%w: exit rate E(%d)=%v exceeds uniformisation rate %v", ErrModel, s, m.exit[s], lambda)
		}
		diag := 1 - m.exit[s]/lambda
		if diag < 0 {
			diag = 0
		}
		b.Add(s, s, diag)
		m.rates.Row(s, func(t int, v float64) {
			if v != 0 {
				b.Add(s, t, v/lambda)
			}
		})
	}
	return b.Build()
}

// Generator returns the infinitesimal generator Q = R - diag(E).
func (m *MRM) Generator() (*sparse.CSR, error) {
	d := make([]float64, m.n)
	for i, e := range m.exit {
		d[i] = -e
	}
	q, err := m.rates.AddDiagonal(d)
	if err != nil {
		return nil, fmt.Errorf("mrm: generator: %w", err)
	}
	return q, nil
}

// Builder assembles an MRM incrementally.
type Builder struct {
	n       int
	b       *sparse.Builder
	reward  []float64
	init    []float64
	names   []string
	labels  map[string]*StateSet
	impulse *sparse.Builder
	errs    []error
}

// NewBuilder returns a builder for an MRM with n states. All rewards start
// at zero and the initial distribution is unset (point mass on state 0 by
// default at Build time if never specified).
func NewBuilder(n int) *Builder {
	return &Builder{
		n:      n,
		b:      sparse.NewBuilder(n),
		reward: make([]float64, n),
		init:   make([]float64, n),
		names:  make([]string, n),
		labels: make(map[string]*StateSet),
	}
}

// N returns the number of states the builder was created with.
func (b *Builder) N() int { return b.n }

func (b *Builder) checkState(s int) bool {
	if s < 0 || s >= b.n {
		b.errs = append(b.errs, fmt.Errorf("%w: %d (model has %d states)", ErrState, s, b.n))
		return false
	}
	return true
}

// Rate adds rate R(from, to) += rate. Self-loop rates are rejected at Build
// (a CTMC self-loop is unobservable and the paper's R has zero diagonal).
func (b *Builder) Rate(from, to int, rate float64) *Builder {
	if !b.checkState(from) || !b.checkState(to) {
		return b
	}
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		b.errs = append(b.errs, fmt.Errorf("%w: rate R(%d,%d)=%v", ErrModel, from, to, rate))
		return b
	}
	if rate == 0 {
		return b
	}
	if from == to {
		b.errs = append(b.errs, fmt.Errorf("%w: self-loop rate on state %d", ErrModel, from))
		return b
	}
	b.b.Add(from, to, rate)
	return b
}

// Reward sets ρ(s) = r.
func (b *Builder) Reward(s int, r float64) *Builder {
	if !b.checkState(s) {
		return b
	}
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		b.errs = append(b.errs, fmt.Errorf("%w: reward ρ(%d)=%v", ErrModel, s, r))
		return b
	}
	b.reward[s] = r
	return b
}

// Label attaches atomic proposition a to state s.
func (b *Builder) Label(s int, a string) *Builder {
	if !b.checkState(s) {
		return b
	}
	if a == "" {
		b.errs = append(b.errs, fmt.Errorf("%w: empty atomic proposition on state %d", ErrModel, s))
		return b
	}
	set, ok := b.labels[a]
	if !ok {
		set = NewStateSet(b.n)
		b.labels[a] = set
	}
	set.Add(s)
	return b
}

// Name names state s for diagnostics and formula output.
func (b *Builder) Name(s int, name string) *Builder {
	if !b.checkState(s) {
		return b
	}
	b.names[s] = name
	return b
}

// InitialState makes the initial distribution a point mass on s.
func (b *Builder) InitialState(s int) *Builder {
	if !b.checkState(s) {
		return b
	}
	for i := range b.init {
		b.init[i] = 0
	}
	b.init[s] = 1
	return b
}

// InitialProb sets α(s) = p. The distribution must sum to 1 at Build time.
func (b *Builder) InitialProb(s int, p float64) *Builder {
	if !b.checkState(s) {
		return b
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		b.errs = append(b.errs, fmt.Errorf("%w: initial probability α(%d)=%v", ErrModel, s, p))
		return b
	}
	b.init[s] = p
	return b
}

// Build validates and assembles the MRM.
func (b *Builder) Build() (*MRM, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.n == 0 {
		return nil, fmt.Errorf("%w: model has no states", ErrModel)
	}
	rates, err := b.b.Build()
	if err != nil {
		return nil, fmt.Errorf("mrm: %w", err)
	}
	initSum := sparse.Sum(b.init)
	init := sparse.Clone(b.init)
	if initSum == 0 {
		init[0] = 1
	} else if math.Abs(initSum-1) > 1e-9 {
		return nil, fmt.Errorf("%w: initial distribution sums to %v", ErrModel, initSum)
	}
	exit := make([]float64, b.n)
	for s := 0; s < b.n; s++ {
		exit[s] = rates.RowSum(s)
	}
	labels := make(map[string]*StateSet, len(b.labels))
	for a, set := range b.labels {
		labels[a] = set.Clone()
	}
	var impulses *sparse.CSR
	if b.impulse != nil {
		impulses, err = b.impulse.Build()
		if err != nil {
			return nil, fmt.Errorf("mrm: impulses: %w", err)
		}
		// Every impulse must sit on an actual transition.
		var impErr error
		impulses.Each(func(i, j int, v float64) {
			if v != 0 && rates.At(i, j) == 0 && impErr == nil {
				impErr = fmt.Errorf("%w: impulse ι(%d,%d)=%v on a transition with rate 0", ErrModel, i, j, v)
			}
		})
		if impErr != nil {
			return nil, impErr
		}
	}
	return &MRM{
		n:        b.n,
		rates:    rates,
		exit:     exit,
		reward:   sparse.Clone(b.reward),
		init:     init,
		names:    append([]string(nil), b.names...),
		labels:   labels,
		impulses: impulses,
	}, nil
}
