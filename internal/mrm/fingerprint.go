package mrm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"github.com/performability/csrl/internal/sparse"
)

// fingerprintVersion is folded into every fingerprint so a change to the
// serialisation below can never collide with hashes minted by an earlier
// scheme.
const fingerprintVersion = "csrl-mrm-fp-v1"

// Fingerprint returns a stable content hash of the model: the hex-encoded
// sha256 over the CSR rate structure, the reward and initial-distribution
// vectors, the impulse matrix, the label sets and the state names. Two
// models built from the same description — in particular the same model
// file decoded twice, or re-uploaded to a checker service — have equal
// fingerprints, while any semantic difference (a rate, a reward, a label
// membership, the initial mass) changes the hash.
//
// This is the cross-process complement of the pointer-keyed memo keys
// inside the checker: pointer identity is free and exact within one
// process, but does not survive re-parsing the same model, so long-lived
// registries key their entries by Fingerprint instead.
//
// Everything serialised is in canonical order (CSR rows are sorted by
// column at Build, labels are sorted by name, set members enumerate in
// increasing state order), so the hash is independent of builder call
// order. Float values hash by their IEEE-754 bit pattern: fingerprint
// equality means bitwise-equal numerics, which is the equality the
// bitwise-reproducibility tests hold the procedures to.
func (m *MRM) Fingerprint() string {
	// hash.Hash.Write never returns an error (documented contract), so
	// every write below discards the return values explicitly.
	h := sha256.New()
	_, _ = h.Write([]byte(fingerprintVersion))
	writeUint64(h, uint64(m.n))

	writeCSR(h, m.rates)
	writeFloats(h, m.reward)
	writeFloats(h, m.init)

	labels := m.Labels() // sorted
	writeUint64(h, uint64(len(labels)))
	for _, a := range labels {
		writeString(h, a)
		set := m.labels[a]
		writeUint64(h, uint64(set.Len()))
		set.Each(func(s int) { writeUint64(h, uint64(s)) })
	}

	if m.impulses != nil {
		_, _ = h.Write([]byte{1})
		writeCSR(h, m.impulses)
	} else {
		_, _ = h.Write([]byte{0})
	}

	for s := 0; s < m.n; s++ {
		writeString(h, m.Name(s))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeCSR serialises a sparse matrix row by row; Row enumerates entries
// in increasing column order, the canonical form Build establishes.
func writeCSR(h hash.Hash, c *sparse.CSR) {
	n := c.Dim()
	writeUint64(h, uint64(n))
	for i := 0; i < n; i++ {
		c.Row(i, func(j int, v float64) {
			writeUint64(h, uint64(j))
			writeUint64(h, math.Float64bits(v))
		})
		writeUint64(h, ^uint64(0)) // row terminator
	}
}

func writeFloats(h hash.Hash, vs []float64) {
	writeUint64(h, uint64(len(vs)))
	for _, v := range vs {
		writeUint64(h, math.Float64bits(v))
	}
}

func writeString(h hash.Hash, s string) {
	writeUint64(h, uint64(len(s)))
	_, _ = h.Write([]byte(s))
}

func writeUint64(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, _ = h.Write(b[:])
}
