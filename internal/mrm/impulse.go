package mrm

import (
	"errors"
	"fmt"
	"math"

	"github.com/performability/csrl/internal/sparse"
)

// Impulse rewards (paper §2.1 mentions them as excluded "for the sake of
// simplicity"; §6 lists them as future work): ι(s,s') is earned
// instantaneously when the transition s→s' fires, in addition to the
// rate-based reward ρ(s)·t. Of the three computational procedures only the
// Tijms–Veldman discretisation supports them (the paper's own observation:
// "the algorithms we develop in this paper are tailored to state-based
// rewards only"); the simulator supports them exactly.

// Impulse adds ι(from, to) = v to the builder. The transition must also be
// given a positive rate; this is validated at Build time.
func (b *Builder) Impulse(from, to int, v float64) *Builder {
	if !b.checkState(from) || !b.checkState(to) {
		return b
	}
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		b.errs = append(b.errs, fmt.Errorf("%w: impulse ι(%d,%d)=%v", ErrModel, from, to, v))
		return b
	}
	if v == 0 {
		return b
	}
	if b.impulse == nil {
		b.impulse = sparse.NewBuilder(b.n)
	}
	b.impulse.Add(from, to, v)
	return b
}

// HasImpulses reports whether the model carries any impulse rewards.
func (m *MRM) HasImpulses() bool { return m.impulses != nil }

// Impulses returns the impulse-reward matrix, or nil when the model has
// none. The matrix is shared; do not modify.
func (m *MRM) Impulses() *sparse.CSR { return m.impulses }

// Impulse returns ι(from, to), zero when no impulse is attached.
func (m *MRM) Impulse(from, to int) float64 {
	if m.impulses == nil {
		return 0
	}
	return m.impulses.At(from, to)
}

// ErrImpulsesUnsupported is returned by procedures that are defined for
// state-based rewards only (the occupation-time and pseudo-Erlang methods
// and the duality transform); use the discretisation procedure for models
// with impulse rewards.
var ErrImpulsesUnsupported = errors.New("mrm: model has impulse rewards, which this procedure does not support")
