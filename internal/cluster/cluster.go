// Package cluster provides the parametric fault-tolerant workstation
// cluster SRN family — the scale corpus of the repository. Two symmetric
// sub-clusters of N workstations each are joined by a backbone; any
// workstation fails and is repaired by its side's repair unit, which needs
// the backbone up to coordinate, and the backbone itself fails and is
// repaired. The reachability graph has exactly 2·(N+1)² markings, so the
// N knob sweeps the family smoothly past 10^5 states (N = 224 gives
// 101 250) while the probability mass stays concentrated near the
// all-up corner — the regime the truncated forward sweeps are built for.
//
// The family deliberately carries no impulse rewards: every procedure
// (lumping included) applies. The rate reward is the number of broken
// workstations, the classic performability measure.
package cluster

import (
	"fmt"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/srn"
)

// Params fixes one instance of the family. All rates are per hour.
type Params struct {
	// N is the number of workstations on each side.
	N int
	// WorkFail is the failure rate of one workstation; a side with k
	// working stations fails at rate k·WorkFail.
	WorkFail float64
	// WorkRepair is the rate of each side's single repair unit.
	WorkRepair float64
	// BackFail and BackRepair govern the backbone.
	BackFail, BackRepair float64
	// MaxStates bounds reachability-graph generation (0 = srn default).
	MaxStates int
	// NoNames skips per-state name strings (recommended at scale).
	NoNames bool
}

// Default returns the reference parameterisation for n workstations per
// side: rare workstation faults against a fast repair unit, and a much
// rarer backbone fault, keeping the transient mass near the all-up corner.
// n must be at least 1: a non-positive side has no workstation to fail and
// the family degenerates, so the guard sits here — at the constructor every
// user-supplied N flows through — as well as in Build.
func Default(n int) (Params, error) {
	if n < 1 {
		return Params{}, fmt.Errorf("cluster: need at least one workstation per side, got N=%d", n)
	}
	return Params{
		N:          n,
		WorkFail:   0.005,
		WorkRepair: 2.0,
		BackFail:   0.0002,
		BackRepair: 2.0,
		NoNames:    n > 40,
	}, nil
}

// States returns the reachable-marking count of the instance: both sides
// range over 0..N working stations and the backbone is up or down.
func (p Params) States() int { return 2 * (p.N + 1) * (p.N + 1) }

// place indices of the net.
const (
	plLeftUp = iota
	plLeftDown
	plRightUp
	plRightDown
	plBackUp
	plBackDown
	numPlaces
)

// Net returns the SRN and its initial (pristine) marking.
func (p Params) Net() (*srn.Net, srn.Marking) {
	n := &srn.Net{
		Places: []string{"left_up", "left_down", "right_up", "right_down", "backbone_up", "backbone_down"},
	}
	side := func(up, down int, tag string) {
		n.Transitions = append(n.Transitions,
			srn.Transition{
				Name:   tag + "_fail",
				In:     []srn.Arc{{Place: up, Weight: 1}},
				Out:    []srn.Arc{{Place: down, Weight: 1}},
				RateFn: func(m srn.Marking) float64 { return p.WorkFail * float64(m[up]) },
			},
			srn.Transition{
				Name: tag + "_repair",
				In:   []srn.Arc{{Place: down, Weight: 1}},
				Out:  []srn.Arc{{Place: up, Weight: 1}},
				Rate: p.WorkRepair,
				// The repair unit coordinates over the backbone.
				Guard: func(m srn.Marking) bool { return m[plBackUp] > 0 },
			},
		)
	}
	side(plLeftUp, plLeftDown, "left")
	side(plRightUp, plRightDown, "right")
	n.Transitions = append(n.Transitions,
		srn.Transition{
			Name: "backbone_fail",
			In:   []srn.Arc{{Place: plBackUp, Weight: 1}},
			Out:  []srn.Arc{{Place: plBackDown, Weight: 1}},
			Rate: p.BackFail,
		},
		srn.Transition{
			Name: "backbone_repair",
			In:   []srn.Arc{{Place: plBackDown, Weight: 1}},
			Out:  []srn.Arc{{Place: plBackUp, Weight: 1}},
			Rate: p.BackRepair,
		},
	)
	init := make(srn.Marking, numPlaces)
	init[plLeftUp] = p.N
	init[plRightUp] = p.N
	init[plBackUp] = 1
	return n, init
}

// Build explores the family instance into an MRM. The reward of a marking
// is its number of broken workstations; the labels are
//
//	pristine — every workstation and the backbone up
//	degraded — at least one workstation down
//	down     — the backbone is down, or either side has no working station
//	qos      — at least ¾ of each side is working and the backbone is up
func (p Params) Build() (*mrm.MRM, error) {
	if p.N < 1 {
		return nil, fmt.Errorf("cluster: need at least one workstation per side, got N=%d", p.N)
	}
	net, init := p.Net()
	quorum := (3*p.N + 3) / 4 // ceil(3N/4)
	m, _, err := net.BuildMRM(init, srn.Options{
		MaxStates: p.MaxStates,
		NoNames:   p.NoNames,
		Reward: func(m srn.Marking) float64 {
			return float64(m[plLeftDown] + m[plRightDown])
		},
		Labels: func(m srn.Marking) []string {
			var ls []string
			if m[plLeftDown] == 0 && m[plRightDown] == 0 && m[plBackUp] > 0 {
				ls = append(ls, "pristine")
			}
			if m[plLeftDown] > 0 || m[plRightDown] > 0 {
				ls = append(ls, "degraded")
			}
			if m[plBackDown] > 0 || m[plLeftUp] == 0 || m[plRightUp] == 0 {
				ls = append(ls, "down")
			}
			if m[plLeftUp] >= quorum && m[plRightUp] >= quorum && m[plBackUp] > 0 {
				ls = append(ls, "qos")
			}
			return ls
		},
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: N=%d: %w", p.N, err)
	}
	return m, nil
}
