package cluster

import (
	"strings"
	"testing"
)

// TestStatesFormula checks the reachability-graph size against the closed
// form 2·(N+1)² for several instances, including the scale reference.
func TestStatesFormula(t *testing.T) {
	for _, n := range []int{1, 2, 5, 12} {
		p, err := Default(n)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		m, err := p.Build()
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if m.N() != p.States() {
			t.Errorf("N=%d: %d reachable markings, closed form says %d", n, m.N(), p.States())
		}
	}
	big, err := Default(224)
	if err != nil {
		t.Fatal(err)
	}
	if got := big.States(); got != 101250 {
		t.Errorf("N=224 closed form %d, want 101250", got)
	}
}

// TestLabelPartition checks the label semantics by exhaustive recount: the
// labels are defined by marking predicates, so their cardinalities over
// the full (side×side×backbone) grid have closed forms.
func TestLabelPartition(t *testing.T) {
	const n = 4
	p, err := Default(n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	grid := n + 1
	counts := map[string]int{
		// Both sides fully up, backbone up: one marking.
		"pristine": 1,
		// At least one workstation down, either backbone state.
		"degraded": 2 * (grid*grid - 1),
		// Backbone down (grid²) plus backbone up with a side at zero
		// (2·grid − 1 markings by inclusion–exclusion).
		"down": grid*grid + 2*grid - 1,
		// quorum = ceil(3n/4) = 3 up per side at n = 4, backbone up.
		"qos": 2 * 2,
	}
	for label, want := range counts {
		if got := m.Label(label).Len(); got != want {
			t.Errorf("label %q: %d states, want %d", label, got, want)
		}
	}
	// The initial marking is the pristine corner and satisfies qos.
	init := m.InitialState()
	if !m.Label("pristine").Contains(init) || !m.Label("qos").Contains(init) {
		t.Errorf("initial state %d should be pristine and qos", init)
	}
	if m.Label("degraded").Contains(init) || m.Label("down").Contains(init) {
		t.Errorf("initial state %d should be neither degraded nor down", init)
	}
}

// TestRewardCountsBrokenStations spot-checks the performability reward on
// the named small instance: the reward of a state is the number of broken
// workstations encoded in its marking name.
func TestRewardCountsBrokenStations(t *testing.T) {
	p, err := Default(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Reward(m.InitialState()) != 0 {
		t.Errorf("pristine reward %v, want 0", m.Reward(m.InitialState()))
	}
	var maxReward float64
	for s := 0; s < m.N(); s++ {
		if r := m.Reward(s); r > maxReward {
			maxReward = r
		}
	}
	if maxReward != 4 {
		t.Errorf("max reward %v, want 4 (both sides fully broken at N=2)", maxReward)
	}
}

// TestNoNamesAtScaleDefault checks the Default knee: big instances skip
// the per-state name strings, small ones keep them for readable output.
func TestNoNamesAtScaleDefault(t *testing.T) {
	p40, err40 := Default(40)
	p41, err41 := Default(41)
	if err40 != nil || err41 != nil {
		t.Fatal(err40, err41)
	}
	if p40.NoNames || !p41.NoNames {
		t.Errorf("NoNames knee should sit at N=40: got %v/%v", p40.NoNames, p41.NoNames)
	}
	p2, err := Default(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if name := m.Name(m.InitialState()); !strings.Contains(name, "left_up") {
		t.Errorf("small instance should carry marking names, got %q", name)
	}
}

// TestBuildRejectsBadParams covers the validation path.
func TestBuildRejectsBadParams(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := (Params{N: n}).Build(); err == nil {
			t.Errorf("N=%d accepted", n)
		}
	}
	// A MaxStates cap below the reachable count must surface as an error.
	p, err := Default(3)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxStates = 5
	if _, err := p.Build(); err == nil {
		t.Errorf("MaxStates below the reachable count accepted")
	}
}

// TestDefaultRejectsNonPositiveN covers the constructor guard: N <= 0 must
// fail at Default itself, before any caller reaches Build.
func TestDefaultRejectsNonPositiveN(t *testing.T) {
	for _, n := range []int{0, -1, -224} {
		if _, err := Default(n); err == nil {
			t.Errorf("Default(%d) accepted", n)
		}
	}
}
