package transient

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/performability/csrl/internal/mrm"
)

// randCTMC builds a random labelled CTMC with a couple of goal states.
func randCTMC(rng *rand.Rand) (*mrm.MRM, *mrm.StateSet) {
	n := 3 + rng.Intn(6)
	b := mrm.NewBuilder(n)
	goal := mrm.NewStateSet(n)
	for s := 0; s < n; s++ {
		if rng.Float64() < 0.3 {
			goal.Add(s)
			b.Label(s, "goal")
		}
		deg := rng.Intn(3)
		for k := 0; k < deg; k++ {
			to := rng.Intn(n)
			if to != s {
				b.Rate(s, to, 0.1+5*rng.Float64())
			}
		}
	}
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m, goal
}

// Property: transient distributions are probability vectors and
// reachability values live in [0,1] with goal states at their transient
// membership probability.
func TestDistributionIsStochasticProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		m, _ := randCTMC(rng)
		horizon := rng.Float64() * 5
		pi, err := Distribution(m, horizon, DefaultOptions())
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range pi {
			if p < -1e-12 || p > 1+1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Pr_s{X_t ∈ goal} from the backward sweep equals the forward
// transient probability for a random start state.
func TestBackwardForwardConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func() bool {
		m, goal := randCTMC(rng)
		horizon := 0.1 + rng.Float64()*3
		back, err := ReachProbAll(m, goal, horizon, DefaultOptions())
		if err != nil {
			return false
		}
		s := rng.Intn(m.N())
		init := make([]float64, m.N())
		init[s] = 1
		pi, err := DistributionFrom(m, init, horizon, DefaultOptions())
		if err != nil {
			return false
		}
		var fwd float64
		goal.Each(func(j int) { fwd += pi[j] })
		return math.Abs(back[s]-fwd) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: time-bounded until probabilities are monotone nondecreasing in
// the bound and bounded by the unbounded reach probability... here simply
// by 1; Ψ-states pin to 1, ¬(Φ∨Ψ) to 0.
func TestUntilMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func() bool {
		m, psi := randCTMC(rng)
		phi := mrm.NewStateSet(m.N()).Complement()
		t1 := rng.Float64() * 2
		t2 := t1 + rng.Float64()*3
		v1, err := TimeBoundedUntil(m, phi, psi, t1, DefaultOptions())
		if err != nil {
			return false
		}
		v2, err := TimeBoundedUntil(m, phi, psi, t2, DefaultOptions())
		if err != nil {
			return false
		}
		for s := range v1 {
			if v2[s] < v1[s]-1e-9 {
				return false
			}
			if psi.Contains(s) && math.Abs(v1[s]-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
