package transient

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sparse"
)

// multiWorkers is the worker grid the ISSUE pins for the bitwise suite.
var multiWorkers = []int{1, 2, 4, 8}

// ringModel builds a CTMC large enough that the uniformised matrix clears
// the parallel kernels' grain, with an absorbing tail so steady-state
// detection has something to detect: states 0..n-3 hop forward along a
// ring with a drift towards the two absorbing sinks n-2 and n-1.
func ringModel(t *testing.T, n int) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(n)
	for i := 0; i < n-2; i++ {
		b.Rate(i, (i+1)%(n-2), 1.0+float64(i%5))
		b.Rate(i, (i+7)%(n-2), 0.5+float64(i%3))
		b.Rate(i, (i+13)%(n-2), 0.25)
		b.Rate(i, n-2, 0.1+0.01*float64(i%7))
		b.Rate(i, n-1, 0.05)
	}
	b.Label(n-2, "sinkA")
	b.Label(n-1, "sinkB")
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

// weightVecs returns g deterministic weighting vectors, including exact
// zeros so the transpose kernels' zero skip is exercised.
func weightVecs(n, g int) [][]float64 {
	vs := make([][]float64, g)
	seed := uint64(g*977 + n)
	for j := range vs {
		vs[j] = make([]float64, n)
		for i := range vs[j] {
			seed = seed*6364136223846793005 + 1442695040888963407
			x := float64(seed>>11) / float64(1<<53)
			if x < 0.2 {
				x = 0
			}
			vs[j][i] = x
		}
	}
	return vs
}

func bitwiseCols(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d = %x (%g), want %x (%g) — must be bitwise equal",
				label, i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

func TestBackwardWeightedMultiBitwiseEqualsSingle(t *testing.T) {
	m := ringModel(t, 300)
	vs := weightVecs(m.N(), 4)
	for _, mode := range []SteadyMode{SteadyOff, SteadyAuto} {
		for _, workers := range multiWorkers {
			opts := Options{Epsilon: 1e-10, Workers: workers, SteadyDetect: mode, Pool: sparse.NewVecPool()}
			multi, err := BackwardWeightedMulti(m, vs, 2.5, opts)
			if err != nil {
				t.Fatalf("multi: %v", err)
			}
			for j, v := range vs {
				single, err := BackwardWeighted(m, v, 2.5, opts)
				if err != nil {
					t.Fatalf("single %d: %v", j, err)
				}
				bitwiseCols(t, "backward mode/workers/vec", multi[j], single)
			}
		}
	}
}

func TestDistributionFromMultiBitwiseEqualsSingle(t *testing.T) {
	m := ringModel(t, 300)
	n := m.N()
	inits := make([][]float64, 3)
	for j := range inits {
		inits[j] = make([]float64, n)
		inits[j][j*17%n] = 0.5
		inits[j][(j*29+3)%n] = 0.5
	}
	for _, mode := range []SteadyMode{SteadyOff, SteadyAuto} {
		for _, workers := range multiWorkers {
			opts := Options{Epsilon: 1e-10, Workers: workers, SteadyDetect: mode, Pool: sparse.NewVecPool()}
			multi, err := DistributionFromMulti(m, inits, 2.0, opts)
			if err != nil {
				t.Fatalf("multi: %v", err)
			}
			for j, v := range inits {
				single, err := DistributionFrom(m, v, 2.0, opts)
				if err != nil {
					t.Fatalf("single %d: %v", j, err)
				}
				bitwiseCols(t, "forward mode/workers/init", multi[j], single)
			}
		}
	}
}

// TestMultiSteadyDetectPerColumn pins the per-column freeze in two
// regimes. (a) All columns at the sweep's fixed point (scaled all-ones
// vectors — P is stochastic): every column freezes at the first step and
// the block sweep's pass count collapses to a handful, versus the full
// Fox–Glynn window with detection off. (b) A frozen column next to a live
// one: block passes run as long as the live column needs (passes track the
// slowest column, not the sum), and compacting the frozen column out must
// not disturb the live column's bitwise value.
func TestMultiSteadyDetectPerColumn(t *testing.T) {
	m := ringModel(t, 300)
	n := m.N()
	const tb, eps = 60.0, 1e-10
	lambda := m.UniformisationRate()
	q := lambda * tb
	p, err := m.Uniformised(lambda)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Epsilon: eps, Workers: 1}
	fgEps, _, _ := opts.budgetSplit(false)
	w, err := opts.poissonWeights(q, fgEps)
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, n)
	quarter := make([]float64, n)
	for i := range ones {
		ones[i] = 1
		quarter[i] = 0.25
	}
	on := Options{Epsilon: eps, Workers: 1, SteadyDetect: SteadyOn}
	off := Options{Epsilon: eps, Workers: 1, SteadyDetect: SteadyOff}

	// (a) Both columns are exact fixed points: all freeze, passes collapse.
	fixed := [][]float64{ones, quarter}
	accOn, prodOn := sweepMulti(p, fixed, w, q, on, false)
	_, prodOff := sweepMulti(p, fixed, w, q, off, false)
	if prodOff != w.Right {
		t.Fatalf("detection off applied %d block passes, want the full window %d", prodOff, w.Right)
	}
	if prodOn >= prodOff/10 {
		t.Fatalf("all-frozen block sweep still applied %d of %d passes", prodOn, prodOff)
	}
	for j, v := range fixed {
		want, _ := sweep(p, v, w, q, on, false)
		bitwiseCols(t, "all-frozen column", accOn[j], want)
	}

	// (b) One frozen column, one live: passes track the live column, and
	// the frozen column's compaction leaves the live result bitwise intact.
	mixed := [][]float64{ones, weightVecs(n, 1)[0]}
	accMix, prodMix := sweepMulti(p, mixed, w, q, on, false)
	for j, v := range mixed {
		want, prodSingle := sweep(p, v, w, q, on, false)
		bitwiseCols(t, "mixed column", accMix[j], want)
		if j == 1 && prodMix != prodSingle {
			t.Errorf("block passes %d, live column alone needs %d — passes must track the slowest column", prodMix, prodSingle)
		}
	}
	// Detection stays within ε of the full summation, per column.
	accOffMix, _ := sweepMulti(p, mixed, w, q, off, false)
	for j := range mixed {
		if d := sparse.MaxDiff(accMix[j], accOffMix[j]); d > eps {
			t.Errorf("column %d: steady-detect differs from full summation by %g > ε", j, d)
		}
	}
}

func TestMultiDegenerateInputs(t *testing.T) {
	m := ringModel(t, 50)
	if out, err := BackwardWeightedMulti(m, nil, 1, DefaultOptions()); err != nil || out != nil {
		t.Fatalf("empty input: out=%v err=%v", out, err)
	}
	vs := weightVecs(m.N(), 2)
	out, err := BackwardWeightedMulti(m, vs, 0, DefaultOptions())
	if err != nil {
		t.Fatalf("t=0: %v", err)
	}
	for j := range vs {
		bitwiseCols(t, "t=0 clone", out[j], vs[j])
	}
	if _, err := BackwardWeightedMulti(m, [][]float64{{1, 2}}, 1, DefaultOptions()); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := BackwardWeightedMulti(m, vs, -1, DefaultOptions()); err == nil {
		t.Fatal("negative t must error")
	}
	// g==1 delegates to the vector path and must still match it bitwise.
	one := [][]float64{vs[0]}
	got, err := BackwardWeightedMulti(m, one, 1.5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := BackwardWeighted(m, vs[0], 1.5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bitwiseCols(t, "g=1 delegate", got[0], want)
}
