package transient

import (
	"fmt"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/sparse"
)

// sweepMulti evaluates the uniformisation series of sweep for g initial
// vectors at once, advancing all of them through each matrix pass as one
// n×g block — one read of the matrix per step instead of g. Column j of
// the outcome is bitwise equal to the single-vector sweep on vs[j]: the
// block kernels preserve the per-column arithmetic order exactly
// (MulBlockPar against MulVec for backward sweeps, MulBlockTPar against
// MulVecTPar at the same workers value for forward ones), the accumulator
// updates visit rows in the same ascending order as AXPY, and steady-state
// detection runs per column with the identical ColMaxDiff/δ test — a
// column that converges is charged its Poisson tail exactly as the vector
// path would and is then compacted out of the block, which cannot disturb
// the surviving columns because every block element accumulates only its
// own column's products.
//
// The returned accumulators are pool-born; ownership transfers to the
// caller. The products count is the number of block matrix passes — the
// matrix-traffic metric the multi-vector refactor reduces (the vector path
// would report g× as many).
func sweepMulti(p *sparse.CSR, vs [][]float64, w *numeric.PoissonWeights, q float64, opts Options, forward bool) ([][]float64, int) {
	n := p.Dim()
	g := len(vs)
	pool := opts.Pool
	cur := sparse.NewBlock(n, g, pool)
	for j, v := range vs {
		cur.SetCol(j, v)
	}
	next := sparse.NewBlock(n, g, pool)
	accs := make([][]float64, g)
	for j := range accs {
		accs[j] = pool.Get(n)
	}
	// active[c] is the original vector index held by block column c;
	// steady-state compaction shrinks it in step with the blocks.
	active := make([]int, g)
	for j := range active {
		active[j] = j
	}
	detect := opts.SteadyDetect.enabled()
	_, steadyEps, _ := opts.budgetSplit(false)
	delta := steadyEps / q
	products := 0
	for step := 0; step <= w.Right && len(active) > 0; step++ {
		if step >= w.Left {
			for c, j := range active {
				cur.ColAXPY(w.Weight(step), c, accs[j])
			}
		}
		if step == w.Right {
			break
		}
		if forward {
			p.MulBlockTPar(next, cur, opts.Workers) // row vectors: next = cur·P
		} else {
			p.MulBlockPar(next, cur, opts.Workers) // column vectors: next = P·cur
		}
		products++
		if detect {
			// tail and kSum depend only on the step, so one computation
			// serves every column that converges at it.
			tailDone := false
			var tail, kSum float64
			for c := len(active) - 1; c >= 0; c-- {
				diff := next.ColMaxDiff(cur, c)
				if diff >= delta {
					continue
				}
				if !tailDone {
					for k := step + 1; k <= w.Right; k++ {
						tail += w.Weight(k)
						kSum += float64(k-step) * w.Weight(k)
					}
					tailDone = true
				}
				j := active[c]
				next.ColAXPY(tail, c, accs[j])
				if opts.Obs != nil {
					opts.Obs.Counter("steady.detections").Inc()
					opts.Obs.Charge("steady", "tail-charge", diff*kSum)
				}
				// Compact the frozen column out of both blocks; descending
				// c keeps the remaining indices valid.
				cur.DropCol(c)
				next.DropCol(c)
				active = append(active[:c], active[c+1:]...)
			}
		}
		cur, next = next, cur
	}
	cur.Release(pool)
	next.Release(pool)
	if opts.Obs != nil {
		opts.Obs.Counter("sweep.products").Add(int64(products))
	}
	return accs, products
}

// BackwardWeightedMulti is BackwardWeighted for several terminal weight
// vectors over the same model and time bound: one block sweep advances all
// of them through each matrix pass. result[j] is bitwise equal to
// BackwardWeighted(m, vs[j], t, opts) at the same Workers value. When
// opts.Pool is set the returned slices are pool-born; ownership transfers
// to the caller.
//
//numerics:domain t=rate
func BackwardWeightedMulti(m *mrm.MRM, vs [][]float64, t float64, opts Options) ([][]float64, error) {
	return multi(m, vs, t, opts, false)
}

// DistributionFromMulti is DistributionFrom for several initial
// distributions over the same model and time bound, advanced together as
// one block per forward pass. result[j] is bitwise equal to
// DistributionFrom(m, inits[j], t, opts) at the same Workers value.
//
//numerics:domain prob inits=prob t=rate
func DistributionFromMulti(m *mrm.MRM, inits [][]float64, t float64, opts Options) ([][]float64, error) {
	return multi(m, inits, t, opts, true)
}

// multi is the shared body of the two public multi-vector sweeps.
func multi(m *mrm.MRM, vs [][]float64, t float64, opts Options, forward bool) ([][]float64, error) {
	opts = opts.normalise()
	for j, v := range vs {
		if len(v) != m.N() {
			return nil, fmt.Errorf("transient: vector %d length %d for %d states", j, len(v), m.N())
		}
	}
	if t < 0 {
		return nil, fmt.Errorf("transient: negative time bound %v", t)
	}
	if len(vs) == 0 {
		return nil, nil
	}
	if forward && opts.Truncate > 0 {
		// The truncated forward sweep keeps a per-vector active window; a
		// block advance would force the union of all windows on every
		// column. Run the vectors through the truncating vector path
		// one by one instead.
		out := make([][]float64, len(vs))
		for j, v := range vs {
			//lint:ignore epsbudget each vector is an independent distribution with its own full-epsilon guarantee, exactly as if the caller had made the calls one by one
			r, err := DistributionFrom(m, v, t, opts)
			if err != nil {
				return nil, err
			}
			out[j] = r
		}
		return out, nil
	}
	if len(vs) == 1 {
		// A single vector gains nothing from the block layout; keep it on
		// the (bitwise identical) vector path.
		var out []float64
		var err error
		if forward {
			out, err = DistributionFrom(m, vs[0], t, opts)
		} else {
			out, err = BackwardWeighted(m, vs[0], t, opts)
		}
		if err != nil {
			return nil, err
		}
		return [][]float64{out}, nil
	}
	if t == 0 {
		out := make([][]float64, len(vs))
		for j, v := range vs {
			out[j] = sparse.Clone(v)
		}
		return out, nil
	}
	lambda := opts.Lambda
	if lambda == 0 {
		lambda = m.UniformisationRate()
	}
	span := opts.Obs.StartSpan("transient.uniformise")
	p, err := opts.uniformised(m, lambda)
	if err != nil {
		return nil, fmt.Errorf("transient: %w", err)
	}
	fgEps, _, _ := opts.budgetSplit(false)
	w, err := opts.poissonWeights(lambda*t, fgEps)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("transient: %w", err)
	}
	span = opts.Obs.StartSpan("transient.sweep")
	accs, _ := sweepMulti(p, vs, w, lambda*t, opts, forward)
	span.End()
	return accs, nil
}
