// Package transient implements transient analysis of CTMCs by
// uniformisation (Jensen's randomisation, refs [12, 17] of the paper):
// π(t) = Σ_n PoissonPMF(λt; n) · α·Pⁿ with Fox–Glynn weights. Both the
// forward variant (distribution at time t from an initial distribution) and
// the backward variant (reachability probabilities for all start states in
// one sweep) are provided; the backward variant is the work-horse for
// P1-type time-bounded until formulas.
package transient

import (
	"fmt"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/obs"
	"github.com/performability/csrl/internal/sparse"
)

// Cache memoises the model-independent intermediates of uniformisation.
// Implementations must be safe for concurrent use; a nil Cache (or a nil
// concrete value behind the interface) disables memoisation. The concrete
// implementation lives in internal/core so this package stays leaf-level.
type Cache interface {
	// Uniformised returns the uniformised DTMC matrix of m at rate lambda,
	// computing and retaining it on first use.
	Uniformised(m *mrm.MRM, lambda float64) (*sparse.CSR, error)
	// Poisson returns the Fox–Glynn weight table for Poisson parameter q
	// and truncation budget eps, computing and retaining it on first use.
	// The table drops the Poisson tails outside the Fox–Glynn window, so
	// callers owe the ledger both tail charges.
	//numerics:truncates foxglynn/left-tail foxglynn/right-tail
	Poisson(q, eps float64) (*numeric.PoissonWeights, error)
	// Absorbing returns the model with the given set made absorbing,
	// deriving and retaining it on first use. Derived models are shared
	// between callers and must be treated as immutable. Without this, the
	// until procedures rebuild the restricted model per call and its fresh
	// pointer defeats the Uniformised memo.
	Absorbing(m *mrm.MRM, set *mrm.StateSet, zeroReward bool) (*mrm.MRM, error)
}

// SteadyMode controls steady-state detection in the uniformisation sweeps:
// once the iterate stops moving, every further Pⁿ application is a no-op
// and the remaining Poisson tail can be charged to the converged vector in
// one step. The zero value enables detection, so existing Options literals
// pick it up automatically; SteadyOff restores the full Fox–Glynn sweep.
type SteadyMode int

const (
	// SteadyAuto is the default: detection enabled.
	SteadyAuto SteadyMode = iota
	// SteadyOn enables detection explicitly (same behaviour as SteadyAuto).
	SteadyOn
	// SteadyOff disables detection; the full weight window is summed.
	SteadyOff
)

// enabled reports whether the mode turns detection on.
func (s SteadyMode) enabled() bool { return s != SteadyOff }

// Options controls uniformisation.
type Options struct {
	// Epsilon is the truncation error budget for the Poisson series.
	Epsilon float64
	// Lambda overrides the uniformisation rate; 0 selects
	// MRM.UniformisationRate automatically.
	Lambda float64
	// Workers bounds the parallelism of the matrix–vector sweeps:
	// 0 = runtime.NumCPU(), 1 = the exact sequential legacy path.
	Workers int
	// Truncate, when positive, turns on truncation in the forward sweeps:
	// after each uniformisation step, active states whose probability mass
	// lies below the threshold are dropped from the sweep window, as long
	// as the total dropped mass stays within the ledgered share of Epsilon
	// (budgetSplit reserves a third of the budget for it; the exact dropped
	// mass is charged to the truncation/state-drop ledger term). The
	// iterate of a forward sweep is a sub-distribution, so the dropped mass
	// directly bounds the ℓ1 error of the result. Zero (the default)
	// disables truncation and keeps every existing result bitwise
	// unchanged. Backward sweeps ignore the field: their iterate is not a
	// distribution and small entries carry no mass bound.
	Truncate float64
	// SteadyDetect controls steady-state detection: when the sweep iterate
	// moves by less than (ε/2)/(λt) in the ∞-norm, the remaining Poisson
	// tail is charged to the converged vector and the sweep stops early.
	// The default (zero value) is on; Epsilon is then split evenly between
	// the Fox–Glynn truncation and the detection tail so the combined error
	// stays within ε (see DESIGN.md for the tail bound). Detection is
	// deterministic, so results stay bitwise independent of Workers either
	// way.
	SteadyDetect SteadyMode
	// Cache, when non-nil, memoises uniformised matrices and Fox–Glynn
	// weight tables across calls.
	Cache Cache
	// Pool, when non-nil, supplies the sweep scratch vectors and the result
	// accumulator. The two scratch vectors are returned to the pool before
	// the sweep returns; ownership of the pool-born result slice transfers
	// to the caller, who may Put it back once dead or simply drop it.
	Pool *sparse.VecPool
	// Obs, when non-nil, receives the numerics-observability signals of
	// every sweep: the Fox–Glynn truncation masses and the steady-state
	// tail charge in the error-budget ledger, product/window counters and
	// the uniformise/sweep spans. Nil (the default) compiles the
	// instrumentation down to pointer comparisons.
	Obs *obs.Recorder
}

// DefaultOptions returns the accuracy used throughout the test-suite.
func DefaultOptions() Options { return Options{Epsilon: 1e-12} }

func (o Options) normalise() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-12
	}
	return o
}

// uniformised returns the uniformised DTMC matrix, consulting the cache
// when one is configured.
func (o Options) uniformised(m *mrm.MRM, lambda float64) (*sparse.CSR, error) {
	if o.Cache != nil {
		return o.Cache.Uniformised(m, lambda)
	}
	return m.Uniformised(lambda)
}

// absorbing returns the model with set made absorbing, consulting the
// cache when one is configured.
func (o Options) absorbing(m *mrm.MRM, set *mrm.StateSet, zeroReward bool) (*mrm.MRM, error) {
	if o.Cache != nil {
		return o.Cache.Absorbing(m, set, zeroReward)
	}
	return m.MakeAbsorbing(set, zeroReward)
}

// budgetSplit divides Epsilon among the truncation error sources active in
// a sweep: the Fox–Glynn series truncation, steady-state detection, and —
// for the truncated forward sweeps, which the truncating parameter
// declares — the state-drop truncation. Every active source gets an equal
// share (halves for two, thirds for three), and a solo Fox–Glynn leg keeps
// the whole budget, so configurations that existed before truncation keep
// their exact historical split and their bitwise-identical results. The
// even split exists for the same reason as the original ε/2 one: each
// source charges its real mass to the ledger, and the shares must sum to
// at most ε for the advertised bound to hold.
func (o Options) budgetSplit(truncating bool) (fgEps, steadyEps, truncEps float64) {
	steady := o.SteadyDetect.enabled()
	switch {
	case steady && truncating:
		return o.Epsilon / 3, o.Epsilon / 3, o.Epsilon / 3
	case steady:
		return o.Epsilon / 2, o.Epsilon / 2, 0
	case truncating:
		return o.Epsilon / 2, 0, o.Epsilon / 2
	default:
		return o.Epsilon, 0, 0
	}
}

// poissonWeights returns the Fox–Glynn table for truncation budget fgEps,
// consulting the cache when one is configured, and ledgers the table's
// truncation masses — the cache stores the masses with the table, so hits
// charge the same amounts as the original computation.
func (o Options) poissonWeights(q, fgEps float64) (*numeric.PoissonWeights, error) {
	var w *numeric.PoissonWeights
	var err error
	if o.Cache != nil {
		w, err = o.Cache.Poisson(q, fgEps)
	} else {
		w, err = numeric.FoxGlynn(q, fgEps)
	}
	if err != nil {
		return nil, err
	}
	if o.Obs != nil {
		o.Obs.Charge("foxglynn", "left-tail", w.LeftTailMass)
		o.Obs.Charge("foxglynn", "right-tail", w.RightTailMass)
		o.Obs.Gauge("foxglynn.window").SetMax(float64(w.Right - w.Left + 1))
	}
	return w, nil
}

// sweep evaluates the uniformisation series Σ_n w(n)·vₙ with v₀ = v and
// vₙ₊₁ = P·vₙ (forward = false) or vₙ₊₁ = vₙ·P (forward = true), returning
// the accumulator and the number of matrix products actually applied.
//
// Steady-state detection: P is stochastic, so the iteration is
// non-expansive in the ∞-norm. Once one application moves the iterate by
// δ' < δ = (ε/2)/q (q = λt), every later iterate vₙ₊ₖ stays within k·δ'
// of the converged vector, and charging the whole remaining Poisson tail
// to it mis-weights the series by at most Σ_k w(n+k)·k·δ' ≤ E[N]·δ ≈
// q·δ = ε/2 — the half of the budget that budgetSplit reserved for it
// (the Fox–Glynn truncation holds the other half). The ledger records the
// sharper measured charge δ'·Σ_k (k−n)·w(k) rather than the worst case.
// The tail mass and the convergence test are computed identically for
// every Workers value, so the early exit preserves bitwise determinism
// across worker counts.
//
// Scratch vectors come from opts.Pool (nil-safe) and are returned to it;
// the accumulator is pool-born and handed to the caller.
func sweep(p *sparse.CSR, v []float64, w *numeric.PoissonWeights, q float64, opts Options, forward bool) ([]float64, int) {
	n := p.Dim()
	pool := opts.Pool
	cur := pool.Get(n)
	copy(cur, v)
	next := pool.Get(n)
	acc := pool.Get(n)
	detect := opts.SteadyDetect.enabled()
	_, steadyEps, _ := opts.budgetSplit(false)
	delta := steadyEps / q
	products := 0
	for step := 0; step <= w.Right; step++ {
		if step >= w.Left {
			sparse.AXPY(w.Weight(step), cur, acc)
		}
		if step == w.Right {
			break
		}
		if forward {
			p.MulVecTPar(next, cur, opts.Workers) // row vector: next = cur·P
		} else {
			p.MulVecPar(next, cur, opts.Workers) // column vector: next = P·cur
		}
		products++
		if detect {
			if diff := sparse.MaxDiff(next, cur); diff < delta {
				// Converged: charge the remaining Poisson mass to the fixed
				// point instead of applying w.Right − step more no-op
				// products. kSum = Σ (k − step)·w(k) weights the measured
				// step size diff into the exact series mis-weighting this
				// shortcut causes.
				var tail, kSum float64
				for k := step + 1; k <= w.Right; k++ {
					tail += w.Weight(k)
					kSum += float64(k-step) * w.Weight(k)
				}
				sparse.AXPY(tail, next, acc)
				if opts.Obs != nil {
					opts.Obs.Counter("steady.detections").Inc()
					opts.Obs.Charge("steady", "tail-charge", diff*kSum)
				}
				break
			}
		}
		cur, next = next, cur
	}
	pool.Put(cur)
	pool.Put(next)
	if opts.Obs != nil {
		opts.Obs.Counter("sweep.products").Add(int64(products))
	}
	return acc, products
}

// Distribution returns the transient state distribution π(t) of the model's
// CTMC starting from its initial distribution α.
//
//numerics:domain prob t=rate
func Distribution(m *mrm.MRM, t float64, opts Options) ([]float64, error) {
	return DistributionFrom(m, m.InitView(), t, opts)
}

// DistributionFrom returns π(t) starting from the given distribution.
// When opts.Pool is set the returned slice is pool-born; ownership
// transfers to the caller.
//
//numerics:domain prob init=prob t=rate
func DistributionFrom(m *mrm.MRM, init []float64, t float64, opts Options) ([]float64, error) {
	opts = opts.normalise()
	if len(init) != m.N() {
		return nil, fmt.Errorf("transient: initial vector length %d for %d states", len(init), m.N())
	}
	if t < 0 {
		return nil, fmt.Errorf("transient: negative time bound %v", t)
	}
	if t == 0 {
		return sparse.Clone(init), nil
	}
	lambda := opts.Lambda
	if lambda == 0 {
		lambda = m.UniformisationRate()
	}
	truncating := opts.Truncate > 0
	span := opts.Obs.StartSpan("transient.uniformise")
	p, err := opts.uniformised(m, lambda)
	if err != nil {
		return nil, fmt.Errorf("transient: %w", err)
	}
	fgEps, _, _ := opts.budgetSplit(truncating)
	w, err := opts.poissonWeights(lambda*t, fgEps)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("transient: %w", err)
	}
	span = opts.Obs.StartSpan("transient.sweep")
	var acc []float64
	if truncating {
		var dropped float64
		acc, dropped, _ = sweepForwardTruncated(p, init, w, lambda*t, opts)
		if opts.Obs != nil {
			opts.Obs.Charge("truncation", "state-drop", dropped)
		}
	} else {
		acc, _ = sweep(p, init, w, lambda*t, opts, true)
	}
	span.End()
	return acc, nil
}

// ReachProbAll returns, for every state s, the probability that the CTMC is
// in the goal set at time t when started in s:
// result[s] = Pr_s{X_t ∈ goal}. Combined with making states absorbing this
// computes time-bounded until probabilities (P1 procedure, ref [3]).
//
//numerics:domain prob t=rate
func ReachProbAll(m *mrm.MRM, goal *mrm.StateSet, t float64, opts Options) ([]float64, error) {
	opts = opts.normalise()
	if goal.Universe() != m.N() {
		return nil, fmt.Errorf("transient: goal universe %d for %d states", goal.Universe(), m.N())
	}
	if t < 0 {
		return nil, fmt.Errorf("transient: negative time bound %v", t)
	}
	return BackwardWeighted(m, goal.Indicator(), t, opts)
}

// BackwardWeighted returns, for every state s, the expectation
// result[s] = Σ_j Pr_s{X_t = j}·v[j], i.e. one backward uniformisation
// sweep applied to the terminal weight vector v. This generalisation is
// used for interval-bounded until (two-phase computation). When opts.Pool
// is set the returned slice is pool-born; ownership transfers to the
// caller.
//
//numerics:domain t=rate
func BackwardWeighted(m *mrm.MRM, v []float64, t float64, opts Options) ([]float64, error) {
	opts = opts.normalise()
	if len(v) != m.N() {
		return nil, fmt.Errorf("transient: terminal vector length %d for %d states", len(v), m.N())
	}
	if t == 0 {
		return sparse.Clone(v), nil
	}
	lambda := opts.Lambda
	if lambda == 0 {
		lambda = m.UniformisationRate()
	}
	span := opts.Obs.StartSpan("transient.uniformise")
	p, err := opts.uniformised(m, lambda)
	if err != nil {
		return nil, fmt.Errorf("transient: %w", err)
	}
	fgEps, _, _ := opts.budgetSplit(false)
	w, err := opts.poissonWeights(lambda*t, fgEps)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("transient: %w", err)
	}
	span = opts.Obs.StartSpan("transient.sweep")
	acc, _ := sweep(p, v, w, lambda*t, opts, false)
	span.End()
	return acc, nil
}

// TimeBoundedUntil computes Pr_s{Φ U^{≤t} Ψ} for every state s: the P1
// procedure of the paper (§3): make Ψ and ¬(Φ∨Ψ) states absorbing, then a
// transient analysis at time t decides the formula.
//
//numerics:domain prob t=rate
func TimeBoundedUntil(m *mrm.MRM, phi, psi *mrm.StateSet, t float64, opts Options) ([]float64, error) {
	absorb := phi.Union(psi).Complement().Union(psi)
	abs, err := opts.absorbing(m, absorb, false)
	if err != nil {
		return nil, fmt.Errorf("transient: until: %w", err)
	}
	res, err := ReachProbAll(abs, psi, t, opts)
	if err != nil {
		return nil, fmt.Errorf("transient: until: %w", err)
	}
	// Ψ-states satisfy the until trivially (t ≥ 0) — already 1 by the
	// absorbing construction; ¬(Φ∨Ψ) states are exactly 0 likewise.
	return res, nil
}
