package transient

import (
	"math"
	"runtime"
	"testing"

	"github.com/performability/csrl/internal/mrm"
)

// bigRing builds a ring CTMC with forward/backward/skip transitions, large
// enough (nnz ≈ 3n) that the parallel sparse kernels fan out rather than
// falling back to the sequential path.
func bigRing(t *testing.T, n int) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(n)
	for s := 0; s < n; s++ {
		b.Rate(s, (s+1)%n, 1.5+0.001*float64(s))
		b.Rate(s, (s+n-1)%n, 0.7)
		b.Rate(s, (s+7)%n, 0.2)
		if s%5 == 0 {
			b.Label(s, "goal")
		}
	}
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestBackwardWeightedParallelEquivalence(t *testing.T) {
	m := bigRing(t, 600)
	goal := m.Label("goal")
	seqOpts := Options{Epsilon: 1e-12, Workers: 1}
	want, err := ReachProbAll(m, goal, 1.3, seqOpts)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, workers := range []int{0, 2, 4, runtime.NumCPU()} {
		got, err := ReachProbAll(m, goal, 1.3, Options{Epsilon: 1e-12, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for s := range got {
			// The backward sweep uses MulVecPar, which is bitwise-stable
			// under partitioning.
			if got[s] != want[s] {
				t.Fatalf("workers=%d: state %d: %g != sequential %g", workers, s, got[s], want[s])
			}
		}
	}
}

func TestDistributionParallelEquivalence(t *testing.T) {
	m := bigRing(t, 600)
	want, err := Distribution(m, 0.9, Options{Epsilon: 1e-12, Workers: 1})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, workers := range []int{0, 2, 4} {
		got, err := Distribution(m, 0.9, Options{Epsilon: 1e-12, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var sum float64
		for s := range got {
			// The forward sweep uses MulVecTPar whose reduce step may
			// reassociate additions; allow roundoff-level slack.
			if d := math.Abs(got[s] - want[s]); d > 1e-13 {
				t.Fatalf("workers=%d: state %d: %g vs sequential %g (Δ=%g)", workers, s, got[s], want[s], d)
			}
			sum += got[s]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("workers=%d: distribution sums to %g", workers, sum)
		}
	}
}
