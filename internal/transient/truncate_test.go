package transient

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/obs"
)

// birthDeath builds an n-state chain 0 ⇄ 1 ⇄ … ⇄ n−1 with birth rate up
// and death rate down; the last state carries the "goal" label. Started in
// state 0 with down > up, the transient mass hugs the low states — the
// shape where window truncation actually bites.
func birthDeath(t *testing.T, n int, up, down float64) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.Rate(i, i+1, up)
		b.Rate(i+1, i, down)
	}
	b.Label(n-1, "goal")
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

// TestTruncatedSweepBitwiseDense is the no-regression contract of the
// truncated kernel: with a threshold too small to ever drop an entry, its
// accumulator must equal the dense forward sweep bit for bit on the same
// matrix and Poisson table. Steady detection is off so both kernels sum
// the identical weight window.
func TestTruncatedSweepBitwiseDense(t *testing.T) {
	m := birthDeath(t, 30, 1.0, 0.5)
	lambda := m.UniformisationRate()
	p, err := m.Uniformised(lambda)
	if err != nil {
		t.Fatal(err)
	}
	q := lambda * 2.5
	w, err := numeric.FoxGlynn(q, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, m.N())
	v[0] = 1
	opts := Options{Epsilon: 1e-9, SteadyDetect: SteadyOff}
	dense, _ := sweep(p, v, w, q, opts, true)
	opts.Truncate = 1e-300
	got, dropped, _ := sweepForwardTruncated(p, v, w, q, opts)
	if dropped != 0 {
		t.Fatalf("threshold 1e-300 dropped mass %g", dropped)
	}
	for s := range dense {
		if got[s] != dense[s] {
			t.Errorf("state %d: truncated %v != dense %v (bitwise)", s, got[s], dense[s])
		}
	}
}

// TestTruncatedSweepSoundBound drives an aggressive threshold and checks
// the two halves of the soundness argument: the dropped mass never exceeds
// the budget share reserved for it, and the result is a pointwise
// underestimate of the dense sweep whose total deficit the dropped mass
// bounds — the ℓ1 guarantee the ledger charge advertises.
func TestTruncatedSweepSoundBound(t *testing.T) {
	m := birthDeath(t, 60, 1.0, 2.0)
	lambda := m.UniformisationRate()
	p, err := m.Uniformised(lambda)
	if err != nil {
		t.Fatal(err)
	}
	q := lambda * 4
	w, err := numeric.FoxGlynn(q, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, m.N())
	v[0] = 1
	opts := Options{Epsilon: 1e-6, SteadyDetect: SteadyOff}
	dense, _ := sweep(p, v, w, q, opts, true)
	opts.Truncate = 1e-9
	got, dropped, _ := sweepForwardTruncated(p, v, w, q, opts)
	if dropped <= 0 {
		t.Fatalf("threshold 1e-9 on a %d-state chain dropped nothing", m.N())
	}
	_, _, truncEps := opts.budgetSplit(true)
	if dropped > truncEps {
		t.Fatalf("dropped %g exceeds budget share %g", dropped, truncEps)
	}
	var deficit float64
	for s := range dense {
		d := dense[s] - got[s]
		if d < -1e-15 {
			t.Fatalf("state %d: truncated %v above dense %v", s, got[s], dense[s])
		}
		deficit += d
	}
	if deficit > dropped+1e-15 {
		t.Errorf("accumulator deficit %g exceeds dropped mass %g", deficit, dropped)
	}
}

// TestDistributionFromTruncatedLedger checks the DistributionFrom plumbing
// around the kernel: the dropped mass appears as the truncation/state-drop
// ledger term, the whole budget still proves within epsilon, and the
// counters and window gauge record the sweep shape.
func TestDistributionFromTruncatedLedger(t *testing.T) {
	m := birthDeath(t, 80, 1.0, 2.0)
	rec := obs.New()
	opts := Options{Epsilon: 1e-7, Truncate: 1e-10, Obs: rec}
	dist, err := DistributionFrom(m, m.InitView(), 6.0, opts)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, x := range dist {
		sum += x
	}
	if sum > 1+1e-12 || sum < 1-opts.Epsilon {
		t.Errorf("truncated distribution sums to %v, want within %g of 1", sum, opts.Epsilon)
	}
	rep := rec.Report(opts.Epsilon)
	var charge float64
	found := false
	for _, c := range rep.Budget {
		if c.Component == "truncation" && c.Term == "state-drop" {
			charge, found = c.Amount, true
		}
	}
	if !found {
		t.Fatalf("no truncation/state-drop ledger entry; budget: %v", rep.Budget)
	}
	if charge <= 0 || charge > opts.Epsilon/3 {
		t.Errorf("state-drop charge %g outside (0, eps/3]", charge)
	}
	if !rep.BudgetOK {
		t.Errorf("budget total %g not proved within %g", rep.BudgetTotal, opts.Epsilon)
	}
	if rep.Counters["truncation.dropped-states"] == 0 {
		t.Errorf("dropped-states counter empty: %v", rep.Counters)
	}
	if win := rep.Gauges["truncation.active-window"]; !(win > 0 && win <= float64(m.N())) {
		t.Errorf("active-window gauge %v out of range (0, %d]", win, m.N())
	}
}

// TestTimeBoundedUntilFromMatchesBackward cross-checks the forward
// single-state procedure against the dense backward P1 sweep: for several
// start states the truncated forward probability must agree with the
// all-states answer within the epsilon both runs were given.
func TestTimeBoundedUntilFromMatchesBackward(t *testing.T) {
	m := birthDeath(t, 40, 1.0, 1.5)
	phi := m.Label("goal").Complement()
	psi := m.Label("goal")
	const horizon = 8.0
	opts := Options{Epsilon: 1e-9}
	dense, err := TimeBoundedUntil(m, phi, psi, horizon, opts)
	if err != nil {
		t.Fatal(err)
	}
	topts := opts
	topts.Truncate = 1e-13
	for _, from := range []int{0, m.N() / 2, m.N() - 2} {
		got, err := TimeBoundedUntilFrom(m, phi, psi, from, horizon, topts)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got - dense[from]); d > opts.Epsilon {
			t.Errorf("from=%d: forward %v vs backward %v, |diff| = %.3g > %g",
				from, got, dense[from], d, opts.Epsilon)
		}
	}
	// A Ψ start state is absorbed immediately; only the Fox–Glynn tail
	// keeps the answer from exactly 1.
	if got, err := TimeBoundedUntilFrom(m, phi, psi, m.N()-1, horizon, topts); err != nil || math.Abs(got-1) > opts.Epsilon {
		t.Errorf("Ψ start state: got %v, %v; want 1 within %g", got, err, opts.Epsilon)
	}
	if _, err := TimeBoundedUntilFrom(m, phi, psi, m.N(), horizon, topts); err == nil {
		t.Errorf("out-of-range start state accepted")
	}
}
