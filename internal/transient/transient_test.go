package transient

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
)

// twoState builds 0 --λ--> 1 --μ--> 0.
func twoState(t *testing.T, lambda, mu float64) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, lambda).Rate(1, 0, mu)
	b.Label(1, "one")
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

// Analytic transient solution of the two-state chain starting in 0:
// π_1(t) = λ/(λ+μ)·(1 − e^{−(λ+μ)t}).
func analyticPi1(lambda, mu, t float64) float64 {
	s := lambda + mu
	return lambda / s * (1 - math.Exp(-s*t))
}

func TestDistributionTwoState(t *testing.T) {
	for _, tc := range []struct{ lambda, mu, t float64 }{
		{1, 2, 0.5},
		{1, 2, 3},
		{10, 0.1, 1},
		{100, 100, 0.01},
	} {
		m := twoState(t, tc.lambda, tc.mu)
		pi, err := Distribution(m, tc.t, DefaultOptions())
		if err != nil {
			t.Fatalf("Distribution: %v", err)
		}
		want := analyticPi1(tc.lambda, tc.mu, tc.t)
		if math.Abs(pi[1]-want) > 1e-10 {
			t.Errorf("λ=%v μ=%v t=%v: π₁ = %v, want %v", tc.lambda, tc.mu, tc.t, pi[1], want)
		}
		if math.Abs(pi[0]+pi[1]-1) > 1e-10 {
			t.Errorf("distribution does not sum to 1: %v", pi)
		}
	}
}

func TestDistributionZeroTime(t *testing.T) {
	m := twoState(t, 1, 1)
	pi, err := Distribution(m, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 1 || pi[1] != 0 {
		t.Errorf("π(0) = %v, want point mass on 0", pi)
	}
}

func TestDistributionRejectsBadInput(t *testing.T) {
	m := twoState(t, 1, 1)
	if _, err := Distribution(m, -1, DefaultOptions()); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := DistributionFrom(m, []float64{1}, 1, DefaultOptions()); err == nil {
		t.Error("wrong-length initial vector accepted")
	}
}

func TestReachProbAllMatchesForward(t *testing.T) {
	// Backward sweep from each state must equal the forward transient
	// probability of the goal set.
	m := twoState(t, 1.5, 0.5)
	goal := m.Label("one")
	tHorizon := 0.8
	back, err := ReachProbAll(m, goal, tHorizon, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < m.N(); s++ {
		init := make([]float64, m.N())
		init[s] = 1
		pi, err := DistributionFrom(m, init, tHorizon, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back[s]-pi[1]) > 1e-10 {
			t.Errorf("state %d: backward %v vs forward %v", s, back[s], pi[1])
		}
	}
}

func TestTimeBoundedUntilAbsorbing(t *testing.T) {
	// 3-state chain 0→1→2 with rates 2 and 3; a U{<=t} c has the
	// hypoexponential CDF.
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 2).Rate(1, 2, 3)
	b.Label(0, "a").Label(1, "a").Label(2, "c")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	phi := m.Label("a")
	psi := m.Label("c")
	for _, horizon := range []float64{0.1, 1, 5} {
		vals, err := TimeBoundedUntil(m, phi, psi, horizon, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - 3*math.Exp(-2*horizon) + 2*math.Exp(-3*horizon)
		if math.Abs(vals[0]-want) > 1e-10 {
			t.Errorf("t=%v: got %v, want %v", horizon, vals[0], want)
		}
		if math.Abs(vals[2]-1) > 1e-12 {
			t.Errorf("Ψ-state value %v, want 1", vals[2])
		}
	}
}

func TestTimeBoundedUntilBlockedPath(t *testing.T) {
	// 0→1→2 where 1 ∉ Φ: the until can only be satisfied if 0 ∈ Ψ, so the
	// probability from 0 is 0.
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 2).Rate(1, 2, 3)
	b.Label(0, "a").Label(2, "c")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := TimeBoundedUntil(m, m.Label("a"), m.Label("c"), 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 {
		t.Errorf("blocked path: got %v, want 0", vals[0])
	}
}

func TestBackwardWeightedZeroTime(t *testing.T) {
	m := twoState(t, 1, 1)
	v := []float64{0.25, 0.75}
	got, err := BackwardWeighted(m, v, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.25 || got[1] != 0.75 {
		t.Errorf("t=0 should be identity: %v", got)
	}
}

func TestAllAbsorbingModel(t *testing.T) {
	// A model with no transitions at all: distribution stays put.
	b := mrm.NewBuilder(2)
	b.Label(0, "x")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := Distribution(m, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-1) > 1e-12 || pi[1] != 0 {
		t.Errorf("π = %v, want point mass on 0", pi)
	}
}
