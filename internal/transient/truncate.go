package transient

import (
	"fmt"
	"math"
	"sort"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/sparse"
)

// sweepForwardTruncated is the truncating variant of the forward sweep:
// Σ_n w(n)·vₙ with vₙ₊₁ = vₙ·P, where each step keeps only an active
// window of states and drops entries whose mass lies below opts.Truncate,
// as long as the cumulative dropped mass stays inside the budget share
// reserved by budgetSplit. vₙ is a sub-distribution (v is one and P is
// stochastic), so every dropped entry removes exactly its own mass from
// all later iterates and from the accumulator: the total dropped mass is a
// sound ℓ1 bound on the truncation error. Callers owe the ledger the
// returned mass.
//
// The step kernel is a row-scatter over the active states via CSR row
// views — the matrix is read only at the rows the window touches, which is
// the whole point: cost per step is O(active·row-nnz), not O(nnz). The
// active lists are kept in ascending state order and the accumulator
// updates mirror the dense kernels' per-entry arithmetic, so with a
// threshold too low to drop anything the result equals the dense forward
// sweep bit for bit (the skipped entries are exact zeros, which add
// nothing); steady-state detection runs the same |next−cur|∞ < δ test
// over the union of the two windows.
//
// The accumulator is pool-born and handed to the caller, along with the
// dropped mass and the number of matrix passes.
//
//numerics:truncates truncation/state-drop
func sweepForwardTruncated(p *sparse.CSR, v []float64, w *numeric.PoissonWeights, q float64, opts Options) (accOut []float64, dropped float64, products int) {
	n := p.Dim()
	pool := opts.Pool
	acc := pool.Get(n)
	curVals := pool.Get(n)
	nextVals := pool.Get(n)
	curMark := make([]bool, n)
	nextMark := make([]bool, n)
	curList := make([]int, 0, 64)
	nextList := make([]int, 0, 64)
	for s, x := range v {
		if x != 0 {
			curVals[s] = x
			curMark[s] = true
			curList = append(curList, s)
		}
	}
	detect := opts.SteadyDetect.enabled()
	_, steadyEps, truncEps := opts.budgetSplit(true)
	delta := steadyEps / q
	thr := opts.Truncate
	peak := len(curList)
	var droppedStates int64
	for step := 0; step <= w.Right; step++ {
		if step >= w.Left {
			wt := w.Weight(step)
			for _, s := range curList {
				acc[s] += wt * curVals[s]
			}
		}
		if step == w.Right {
			break
		}
		// next = cur·P restricted to the rows of the active window.
		for _, t := range nextList {
			nextVals[t] = 0
			nextMark[t] = false
		}
		nextList = nextList[:0]
		for _, s := range curList {
			x := curVals[s]
			if x == 0 {
				continue
			}
			cols, vals := p.RowRange(s)
			for k, t := range cols {
				if !nextMark[t] {
					nextMark[t] = true
					nextList = append(nextList, t)
				}
				nextVals[t] += x * vals[k]
			}
		}
		sort.Ints(nextList)
		products++
		// Drop the newly negligible states, eldest-index first, while the
		// budget lasts. An entry at or above thr always survives, so the
		// window never loses a state that carries real mass.
		keep := nextList[:0]
		for _, t := range nextList {
			if x := nextVals[t]; x < thr && dropped+x <= truncEps {
				dropped += x
				droppedStates++
				nextVals[t] = 0
				nextMark[t] = false
				continue
			}
			keep = append(keep, t)
		}
		nextList = keep
		if len(nextList) > peak {
			peak = len(nextList)
		}
		if detect {
			var diff float64
			for _, t := range nextList {
				if d := math.Abs(nextVals[t] - curVals[t]); d > diff {
					diff = d
				}
			}
			for _, s := range curList {
				if !nextMark[s] {
					// Absent from the next window: the entry went to zero.
					if d := curVals[s]; d > diff {
						diff = d
					}
				}
			}
			if diff < delta {
				var tail, kSum float64
				for k := step + 1; k <= w.Right; k++ {
					tail += w.Weight(k)
					kSum += float64(k-step) * w.Weight(k)
				}
				for _, t := range nextList {
					acc[t] += tail * nextVals[t]
				}
				if opts.Obs != nil {
					opts.Obs.Counter("steady.detections").Inc()
					opts.Obs.Charge("steady", "tail-charge", diff*kSum)
				}
				break
			}
		}
		curVals, nextVals = nextVals, curVals
		curMark, nextMark = nextMark, curMark
		curList, nextList = nextList, curList
	}
	pool.Put(curVals)
	pool.Put(nextVals)
	if opts.Obs != nil {
		opts.Obs.Counter("sweep.products").Add(int64(products))
		opts.Obs.Counter("truncation.dropped-states").Add(droppedStates)
		opts.Obs.Gauge("truncation.active-window").SetMax(float64(peak))
	}
	return acc, dropped, products
}

// TimeBoundedUntilFrom computes Pr_from{Φ U^{≤t} Ψ} for one start state by
// a single forward sweep: make Ψ and ¬(Φ∨Ψ) states absorbing, push the
// point mass at from through the uniformised chain, and sum the Ψ mass at
// time t. This is the P1 procedure turned around — TimeBoundedUntil
// answers the same question for every start state in one backward sweep,
// but its iterate is a value vector, not a distribution, so it cannot
// truncate soundly. The forward orientation is what Options.Truncate needs
// at scale: when the chain cannot drift far from the start state within t,
// the active window stays a vanishing fraction of the state space.
//
//numerics:domain prob t=rate
func TimeBoundedUntilFrom(m *mrm.MRM, phi, psi *mrm.StateSet, from int, t float64, opts Options) (float64, error) {
	if from < 0 || from >= m.N() {
		return 0, fmt.Errorf("transient: until-from: state %d out of range [0,%d)", from, m.N())
	}
	absorb := phi.Union(psi).Complement().Union(psi)
	abs, err := opts.absorbing(m, absorb, false)
	if err != nil {
		return 0, fmt.Errorf("transient: until-from: %w", err)
	}
	opts = opts.normalise()
	init := opts.Pool.Get(m.N())
	init[from] = 1
	dist, err := DistributionFrom(abs, init, t, opts)
	opts.Pool.Put(init)
	if err != nil {
		return 0, fmt.Errorf("transient: until-from: %w", err)
	}
	var pr float64
	psi.Each(func(s int) { pr += dist[s] })
	opts.Pool.Put(dist)
	return pr, nil
}
