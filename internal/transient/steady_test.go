package transient

import (
	"math"
	"testing"

	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/numeric"
	"github.com/performability/csrl/internal/sparse"
)

// absorbingFunnel builds 0 --2--> 1 --3--> 2 with state 2 absorbing: every
// path ends in the absorbing BSCC {2}, so the backward iterate converges to
// the indicator's fixed point long before a long Fox–Glynn window closes.
func absorbingFunnel(t *testing.T) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(3)
	b.Rate(0, 1, 2).Rate(1, 2, 3)
	b.Label(2, "sink")
	b.InitialState(0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

// TestSteadyDetectStopsEarly drives the sweep directly: with detection on,
// the absorbing-BSCC model must bail out well before the Fox–Glynn right
// truncation point, and the charged tail must keep the result within ε of
// the full summation.
func TestSteadyDetectStopsEarly(t *testing.T) {
	m := absorbingFunnel(t)
	const tb, eps = 50.0, 1e-10
	lambda := m.UniformisationRate()
	q := lambda * tb
	p, err := m.Uniformised(lambda)
	if err != nil {
		t.Fatal(err)
	}
	w, err := numeric.FoxGlynn(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	v := m.Label("sink").Indicator()

	off, prodOff := sweep(p, v, w, q, Options{Epsilon: eps, Workers: 1, SteadyDetect: SteadyOff}, false)
	if prodOff != w.Right {
		t.Fatalf("detection off applied %d products, want the full window %d", prodOff, w.Right)
	}
	on, prodOn := sweep(p, v, w, q, Options{Epsilon: eps, Workers: 1}, false)
	if prodOn >= prodOff {
		t.Fatalf("steady-state detection did not stop early: %d products vs %d", prodOn, prodOff)
	}
	// At t = 50 with rates 2 and 3 the chain is absorbed almost surely
	// within the first few mean holding times; expect convergence far
	// before the ≈ q-sized window.
	if prodOn > w.Right/2 {
		t.Errorf("early exit after %d of %d products — later than the absorbing structure warrants", prodOn, w.Right)
	}
	if d := sparse.MaxDiff(on, off); d > eps {
		t.Errorf("steady-detect result differs from full summation by %g > ε=%g", d, eps)
	}
	for s, x := range on {
		if x < -eps || x > 1+eps {
			t.Errorf("state %d: result %v outside [0,1]", s, x)
		}
	}
}

// TestSteadyModeZeroValueIsOn pins the knob's default: a zero Options
// literal must run with detection enabled, and all three mode values must
// agree with the detection-off reference within ε on the public API.
func TestSteadyModeZeroValueIsOn(t *testing.T) {
	if !SteadyAuto.enabled() || !SteadyOn.enabled() {
		t.Fatal("SteadyAuto/SteadyOn must enable detection")
	}
	if SteadyOff.enabled() {
		t.Fatal("SteadyOff must disable detection")
	}
	m := absorbingFunnel(t)
	goal := m.Label("sink")
	const tb, eps = 50.0, 1e-12
	ref, err := ReachProbAll(m, goal, tb, Options{Epsilon: eps, SteadyDetect: SteadyOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []SteadyMode{SteadyAuto, SteadyOn} {
		got, err := ReachProbAll(m, goal, tb, Options{Epsilon: eps, SteadyDetect: mode})
		if err != nil {
			t.Fatal(err)
		}
		for s := range got {
			if d := math.Abs(got[s] - ref[s]); d > eps {
				t.Errorf("mode %d state %d: differs from full summation by %g", mode, s, d)
			}
		}
	}
}

// TestSweepPoolRoundTrip checks the ownership contract: the two scratch
// vectors go back to the pool before sweep returns, the accumulator stays
// checked out, and pooled and unpooled sweeps agree bitwise.
func TestSweepPoolRoundTrip(t *testing.T) {
	m := absorbingFunnel(t)
	goal := m.Label("sink")
	const tb, eps = 5.0, 1e-12
	plain, err := ReachProbAll(m, goal, tb, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	pool := sparse.NewVecPool()
	pooled, err := ReachProbAll(m, goal, tb, Options{Epsilon: eps, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	for s := range pooled {
		if math.Float64bits(pooled[s]) != math.Float64bits(plain[s]) {
			t.Errorf("state %d: pooled %v vs plain %v not bitwise equal", s, pooled[s], plain[s])
		}
	}
	// cur and next went back: two free buffers of the state size.
	if got := pool.Len(m.N()); got != 2 {
		t.Errorf("pool holds %d free buffers of size %d, want 2 (cur and next)", got, m.N())
	}
}
