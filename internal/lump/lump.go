// Package lump implements ordinary lumpability (Markov-chain bisimulation)
// quotienting for Markov reward models, the state-space reduction that the
// successor tools of this paper's line of work (most notably MRMC) apply
// before CSRL model checking. Two states are lumpable when they carry the
// same atomic propositions and reward rate and have identical aggregate
// rates into every equivalence class; the quotient MRM then satisfies
// exactly the same CSRL formulas (over the preserved propositions) as the
// original, with every state inheriting the verdict of its block.
//
// The implementation is a straightforward partition refinement: start from
// the (labels, reward) signature partition and split blocks by their
// aggregate-rate signature vectors until a fixpoint is reached.
package lump

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/performability/csrl/internal/mrm"
)

// Result is a lumped model together with the surjection onto its blocks.
type Result struct {
	// Model is the quotient MRM; block b is state b of Model.
	Model *mrm.MRM
	// BlockOf maps each original state to its block index.
	BlockOf []int
	// Blocks lists the original states of every block.
	Blocks [][]int
}

// Quotient computes the coarsest ordinary-lumpability quotient of m that
// respects all state labels and rewards. Models with impulse rewards are
// not lumped (aggregating transitions with distinct impulses is lossy).
func Quotient(m *mrm.MRM) (*Result, error) {
	return QuotientRespecting(m, m.Labels())
}

// QuotientRespecting lumps with respect to only the given atomic
// propositions — formula-dependent lumping: pass logic.Atoms(formula) to
// obtain the coarsest quotient that is exact for that formula. Propositions
// outside the list may be merged away and are absent from the quotient.
func QuotientRespecting(m *mrm.MRM, respect []string) (*Result, error) {
	if m.HasImpulses() {
		return nil, fmt.Errorf("lump: %w", mrm.ErrImpulsesUnsupported)
	}
	n := m.N()
	labels := append([]string(nil), respect...)
	sort.Strings(labels)

	// Initial partition: identical label sets, rewards and initial-state
	// status. (Initial probability masses are summed per block, which is
	// only faithful if blocks do not mix initial and non-initial states
	// with different masses; keeping the initial signature avoids the
	// common pitfall.)
	blockOf := make([]int, n)
	{
		sig := make(map[string]int)
		init := m.Init()
		for s := 0; s < n; s++ {
			var b strings.Builder
			for _, l := range labels {
				if m.HasLabel(s, l) {
					b.WriteString(l)
					b.WriteByte(';')
				}
			}
			b.WriteString(strconv.FormatFloat(m.Reward(s), 'g', -1, 64))
			b.WriteByte('|')
			b.WriteString(strconv.FormatFloat(init[s], 'g', -1, 64))
			key := b.String()
			id, ok := sig[key]
			if !ok {
				id = len(sig)
				sig[key] = id
			}
			blockOf[s] = id
		}
	}

	// Refinement: split blocks by the aggregate rate into every block.
	for {
		type stateSig struct {
			state int
			key   string
		}
		changed := false
		// Group states by current block.
		byBlock := make(map[int][]int)
		for s, b := range blockOf {
			byBlock[b] = append(byBlock[b], s)
		}
		next := make([]int, n)
		nextID := 0
		blockIDs := make([]int, 0, len(byBlock))
		for b := range byBlock {
			blockIDs = append(blockIDs, b)
		}
		sort.Ints(blockIDs)
		for _, b := range blockIDs {
			states := byBlock[b]
			sigs := make([]stateSig, 0, len(states))
			for _, s := range states {
				// Ordinary lumpability constrains the aggregate rate into
				// every OTHER block; internal transitions are invisible at
				// the block level and excluded from the signature.
				agg := make(map[int]float64)
				m.Rates().Row(s, func(t int, v float64) {
					if v != 0 && blockOf[t] != b {
						agg[blockOf[t]] += v
					}
				})
				keys := make([]int, 0, len(agg))
				for k := range agg {
					keys = append(keys, k)
				}
				sort.Ints(keys)
				var sb strings.Builder
				for _, k := range keys {
					fmt.Fprintf(&sb, "%d:%s;", k, strconv.FormatFloat(agg[k], 'g', -1, 64))
				}
				sigs = append(sigs, stateSig{state: s, key: sb.String()})
			}
			seen := make(map[string]int)
			for _, ss := range sigs {
				id, ok := seen[ss.key]
				if !ok {
					id = nextID
					seen[ss.key] = id
					nextID++
				}
				next[ss.state] = id
			}
			if len(seen) > 1 {
				changed = true
			}
		}
		blockOf = next
		if !changed {
			break
		}
	}

	// Build the quotient.
	numBlocks := 0
	for _, b := range blockOf {
		if b+1 > numBlocks {
			numBlocks = b + 1
		}
	}
	blocks := make([][]int, numBlocks)
	for s, b := range blockOf {
		blocks[b] = append(blocks[b], s)
	}
	qb := mrm.NewBuilder(numBlocks)
	init := m.Init()
	for b, members := range blocks {
		rep := members[0]
		qb.Reward(b, m.Reward(rep))
		qb.Name(b, m.Name(rep))
		for _, l := range labels {
			if m.HasLabel(rep, l) {
				qb.Label(b, l)
			}
		}
		var mass float64
		for _, s := range members {
			mass += init[s]
		}
		if mass > 0 {
			qb.InitialProb(b, mass)
		}
		agg := make(map[int]float64)
		m.Rates().Row(rep, func(t int, v float64) {
			if v != 0 {
				agg[blockOf[t]] += v
			}
		})
		targets := make([]int, 0, len(agg))
		for t := range agg {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			if t != b {
				qb.Rate(b, t, agg[t])
			}
			// Aggregate rates within the block are self-loops of the
			// quotient CTMC; they are unobservable and dropped.
		}
	}
	qm, err := qb.Build()
	if err != nil {
		return nil, fmt.Errorf("lump: quotient: %w", err)
	}
	return &Result{Model: qm, BlockOf: blockOf, Blocks: blocks}, nil
}

// Lift expands per-block values back to per-state values.
func (r *Result) Lift(blockValues []float64) []float64 {
	out := make([]float64, len(r.BlockOf))
	for s, b := range r.BlockOf {
		out[s] = blockValues[b]
	}
	return out
}
