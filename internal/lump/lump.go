// Package lump implements ordinary lumpability (Markov-chain bisimulation)
// quotienting for Markov reward models, the state-space reduction that the
// successor tools of this paper's line of work (most notably MRMC) apply
// before CSRL model checking. Two states are lumpable when they carry the
// same atomic propositions and reward rate and have identical aggregate
// rates into every equivalence class; the quotient MRM then satisfies
// exactly the same CSRL formulas (over the preserved propositions) as the
// original, with every state inheriting the verdict of its block.
//
// The implementation is a partition refinement: start from the (labels,
// reward, initial-mass) signature partition and split blocks by their
// aggregate-rate signature vectors until a fixpoint is reached. Signatures
// are hashed as integers (block IDs and float64 bit patterns through an
// FNV-1a mix) rather than formatted into strings; hash buckets are
// verified by exact signature comparison, so a hash collision can slow a
// split down but can never merge two non-bisimilar states.
package lump

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/performability/csrl/internal/mrm"
)

// ErrRoundsExceeded is returned by QuotientLimited when the refinement has
// not reached a fixpoint within the allowed number of rounds. Each round
// strictly refines the partition, so hitting the limit means the quotient
// is close to trivial anyway; callers use the error to fall back to the
// unlumped model rather than pay O(n) rounds for no reduction.
var ErrRoundsExceeded = errors.New("lump: refinement round limit exceeded")

// Result is a lumped model together with the surjection onto its blocks.
type Result struct {
	// Model is the quotient MRM; block b is state b of Model.
	Model *mrm.MRM
	// BlockOf maps each original state to its block index.
	BlockOf []int
	// Blocks lists the original states of every block.
	Blocks [][]int
}

// Quotient computes the coarsest ordinary-lumpability quotient of m that
// respects all state labels and rewards. Models with impulse rewards are
// not lumped (aggregating transitions with distinct impulses is lossy).
func Quotient(m *mrm.MRM) (*Result, error) {
	return QuotientRespecting(m, m.Labels())
}

// QuotientRespecting lumps with respect to only the given atomic
// propositions — formula-dependent lumping: pass logic.Atoms(formula) to
// obtain the coarsest quotient that is exact for that formula. Propositions
// outside the list may be merged away and are absent from the quotient.
func QuotientRespecting(m *mrm.MRM, respect []string) (*Result, error) {
	return QuotientLimited(m, respect, 0)
}

// QuotientLimited is QuotientRespecting with a cap on refinement rounds:
// maxRounds > 0 returns ErrRoundsExceeded instead of continuing past that
// many splitting rounds (a partition refined r times has at least r+1
// blocks, so a cap of r only ever abandons quotients with more than r
// blocks). maxRounds ≤ 0 refines to the fixpoint unconditionally.
func QuotientLimited(m *mrm.MRM, respect []string, maxRounds int) (*Result, error) {
	if m.HasImpulses() {
		return nil, fmt.Errorf("lump: %w", mrm.ErrImpulsesUnsupported)
	}
	n := m.N()
	labels := append([]string(nil), respect...)
	sort.Strings(labels)
	init := m.InitView()
	rates := m.Rates()

	// Initial partition: identical label sets, rewards and initial-state
	// masses. (Initial probability masses are summed per block, which is
	// only faithful if blocks do not mix initial and non-initial states
	// with different masses; keeping the initial signature avoids the
	// common pitfall.) Per-state label membership is packed into a bitset
	// both for hashing and for the exact collision check.
	words := (len(labels) + 63) / 64
	var labelBits []uint64
	if words > 0 {
		labelBits = make([]uint64, n*words)
		for s := 0; s < n; s++ {
			for li, l := range labels {
				if m.HasLabel(s, l) {
					labelBits[s*words+li/64] |= 1 << uint(li%64)
				}
			}
		}
	}
	sameInitial := func(s, r int) bool {
		if math.Float64bits(m.Reward(s)) != math.Float64bits(m.Reward(r)) {
			return false
		}
		if math.Float64bits(init[s]) != math.Float64bits(init[r]) {
			return false
		}
		for w := 0; w < words; w++ {
			if labelBits[s*words+w] != labelBits[r*words+w] {
				return false
			}
		}
		return true
	}
	blockOf := make([]int, n)
	numBlocks := 0
	{
		type cand struct{ id, rep int }
		buckets := make(map[uint64][]cand)
		for s := 0; s < n; s++ {
			h := uint64(fnvOffset64)
			for w := 0; w < words; w++ {
				h = hashWord(h, labelBits[s*words+w])
			}
			h = hashWord(h, math.Float64bits(m.Reward(s)))
			h = hashWord(h, math.Float64bits(init[s]))
			id := -1
			for _, c := range buckets[h] {
				if sameInitial(s, c.rep) {
					id = c.id
					break
				}
			}
			if id < 0 {
				id = numBlocks
				numBlocks++
				buckets[h] = append(buckets[h], cand{id: id, rep: s})
			}
			blockOf[s] = id
		}
	}

	// Refinement: split blocks by the aggregate rate into every block.
	// Aggregate rates accumulate into a dense scratch indexed by block ID
	// with an epoch stamp marking the touched entries, so no per-state map
	// is allocated; the touched IDs are sorted to make the signature (and
	// hence the new block numbering) deterministic.
	acc := make([]float64, n)
	stamp := make([]int, n)
	epoch := 0
	var sig []sigEntry
	cnt := make([]int, n+1)
	order := make([]int, n)
	next := make([]int, n)
	type subBlock struct {
		id  int
		sig []sigEntry
	}
	buckets := make(map[uint64][]subBlock)
	for round := 0; ; round++ {
		if maxRounds > 0 && round >= maxRounds {
			return nil, ErrRoundsExceeded
		}
		// Group states by current block: order holds the states of block b
		// at order[cnt[b]:cnt[b+1]], in ascending state order.
		for b := 0; b <= numBlocks; b++ {
			cnt[b] = 0
		}
		for _, b := range blockOf {
			cnt[b+1]++
		}
		for b := 1; b <= numBlocks; b++ {
			cnt[b] += cnt[b-1]
		}
		pos := append([]int(nil), cnt[:numBlocks]...)
		for s := 0; s < n; s++ {
			b := blockOf[s]
			order[pos[b]] = s
			pos[b]++
		}
		changed := false
		nextID := 0
		for b := 0; b < numBlocks; b++ {
			states := order[cnt[b]:cnt[b+1]]
			clear(buckets)
			subCount := 0
			for _, s := range states {
				// Ordinary lumpability constrains the aggregate rate into
				// every OTHER block; internal transitions are invisible at
				// the block level and excluded from the signature.
				epoch++
				sig = sig[:0]
				cols, vals := rates.RowRange(s)
				for k, t := range cols {
					v := vals[k]
					tb := blockOf[t]
					if v == 0 || tb == b {
						continue
					}
					if stamp[tb] != epoch {
						stamp[tb] = epoch
						acc[tb] = 0
						sig = append(sig, sigEntry{block: tb})
					}
					acc[tb] += v
				}
				sort.Slice(sig, func(i, j int) bool { return sig[i].block < sig[j].block })
				h := uint64(fnvOffset64)
				for i := range sig {
					sig[i].rate = acc[sig[i].block]
					h = hashWord(h, uint64(sig[i].block))
					h = hashWord(h, math.Float64bits(sig[i].rate))
				}
				id := -1
				for _, c := range buckets[h] {
					if sigEqual(c.sig, sig) {
						id = c.id
						break
					}
				}
				if id < 0 {
					id = nextID
					nextID++
					subCount++
					buckets[h] = append(buckets[h], subBlock{id: id, sig: append([]sigEntry(nil), sig...)})
				}
				next[s] = id
			}
			if subCount > 1 {
				changed = true
			}
		}
		copy(blockOf, next)
		numBlocks = nextID
		if !changed {
			break
		}
	}

	// Build the quotient.
	blocks := make([][]int, numBlocks)
	for s, b := range blockOf {
		blocks[b] = append(blocks[b], s)
	}
	qb := mrm.NewBuilder(numBlocks)
	for b, members := range blocks {
		rep := members[0]
		qb.Reward(b, m.Reward(rep))
		qb.Name(b, m.Name(rep))
		for _, l := range labels {
			if m.HasLabel(rep, l) {
				qb.Label(b, l)
			}
		}
		var mass float64
		for _, s := range members {
			mass += init[s]
		}
		if mass > 0 {
			qb.InitialProb(b, mass)
		}
		epoch++
		var targets []int
		cols, vals := rates.RowRange(rep)
		for k, t := range cols {
			v := vals[k]
			if v == 0 {
				continue
			}
			tb := blockOf[t]
			if stamp[tb] != epoch {
				stamp[tb] = epoch
				acc[tb] = 0
				targets = append(targets, tb)
			}
			acc[tb] += v
		}
		sort.Ints(targets)
		for _, t := range targets {
			if t != b {
				qb.Rate(b, t, acc[t])
			}
			// Aggregate rates within the block are self-loops of the
			// quotient CTMC; they are unobservable and dropped.
		}
	}
	qm, err := qb.Build()
	if err != nil {
		return nil, fmt.Errorf("lump: quotient: %w", err)
	}
	return &Result{Model: qm, BlockOf: blockOf, Blocks: blocks}, nil
}

// sigEntry is one (target block, aggregate rate) component of a state's
// refinement signature.
type sigEntry struct {
	block int
	rate  float64
}

// sigEqual compares two signatures exactly (bit equality on rates), the
// collision check behind the hash buckets.
func sigEqual(a, b []sigEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].block != b[i].block || math.Float64bits(a[i].rate) != math.Float64bits(b[i].rate) {
			return false
		}
	}
	return true
}

// FNV-1a 64-bit, folded over the bytes of each 64-bit word.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashWord(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= fnvPrime64
		w >>= 8
	}
	return h
}

// Lift expands per-block values back to per-state values.
func (r *Result) Lift(blockValues []float64) []float64 {
	out := make([]float64, len(r.BlockOf))
	for s, b := range r.BlockOf {
		out[s] = blockValues[b]
	}
	return out
}

// LiftSet expands a set of blocks back to the set of original states whose
// block is in it.
func (r *Result) LiftSet(blockSet *mrm.StateSet) *mrm.StateSet {
	out := mrm.NewStateSet(len(r.BlockOf))
	for s, b := range r.BlockOf {
		if blockSet.Contains(b) {
			out.Add(s)
		}
	}
	return out
}
