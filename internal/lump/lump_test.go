package lump_test

import (
	"errors"
	"math"
	"testing"

	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/lump"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/srn"
	"github.com/performability/csrl/internal/transient"
)

// symmetricModel has two interchangeable middle states: 0 → {1, 2} → 3,
// where 1 and 2 carry identical labels, rewards and rates.
func symmetricModel(t *testing.T) *mrm.MRM {
	t.Helper()
	b := mrm.NewBuilder(4)
	b.Rate(0, 1, 1).Rate(0, 2, 1)
	b.Rate(1, 3, 2).Rate(2, 3, 2)
	b.Reward(0, 1).Reward(1, 5).Reward(2, 5)
	b.Label(0, "start").Label(1, "mid").Label(2, "mid").Label(3, "end")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestQuotientMergesSymmetricStates(t *testing.T) {
	m := symmetricModel(t)
	res, err := lump.Quotient(m)
	if err != nil {
		t.Fatalf("Quotient: %v", err)
	}
	if res.Model.N() != 3 {
		t.Fatalf("quotient has %d states, want 3", res.Model.N())
	}
	if res.BlockOf[1] != res.BlockOf[2] {
		t.Error("symmetric states not merged")
	}
	if res.BlockOf[0] == res.BlockOf[1] {
		t.Error("distinct states merged")
	}
	// Aggregate rate from the start block into the merged block is 2.
	q := res.Model
	if got := q.Rates().At(res.BlockOf[0], res.BlockOf[1]); got != 2 {
		t.Errorf("aggregate rate = %v, want 2", got)
	}
	// Labels and rewards survive.
	if !q.HasLabel(res.BlockOf[1], "mid") || q.Reward(res.BlockOf[1]) != 5 {
		t.Error("block signature lost")
	}
}

func TestQuotientRefinesOnRates(t *testing.T) {
	// Same labels/rewards, but different aggregate rates: must NOT merge.
	b := mrm.NewBuilder(4)
	b.Rate(0, 1, 1).Rate(0, 2, 1)
	b.Rate(1, 3, 2).Rate(2, 3, 7) // asymmetric
	b.Label(1, "mid").Label(2, "mid")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lump.Quotient(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockOf[1] == res.BlockOf[2] {
		t.Error("states with different rate signatures merged")
	}
}

func TestQuotientPreservesTransientProbabilities(t *testing.T) {
	m := symmetricModel(t)
	res, err := lump.Quotient(m)
	if err != nil {
		t.Fatal(err)
	}
	goal := m.Label("end")
	want, err := transient.ReachProbAll(m, goal, 0.8, transient.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	qGoal := res.Model.Label("end")
	got, err := transient.ReachProbAll(res.Model, qGoal, 0.8, transient.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lifted := res.Lift(got)
	for s := range want {
		if math.Abs(lifted[s]-want[s]) > 1e-12 {
			t.Errorf("state %d: lumped %v vs original %v", s, lifted[s], want[s])
		}
	}
}

// TestQuotientPreservesCSRLOnCluster lumps the left/right-symmetric
// workstation cluster and checks that a doubly-bounded until evaluates to
// the same probabilities on the quotient.
func TestQuotientPreservesCSRLOnCluster(t *testing.T) {
	m := clusterModel(t, 4)
	// Formula-dependent lumping: respect only the atoms the formula uses;
	// the place-derived labels (lu, ld, …) would otherwise break the
	// left/right symmetry.
	res, err := lump.QuotientRespecting(m, []string{"qos", "pristine"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.N() >= m.N() {
		t.Fatalf("no reduction: %d -> %d", m.N(), res.Model.N())
	}
	t.Logf("cluster lumped %d -> %d states", m.N(), res.Model.N())

	formula := logic.MustParse("P=? [ qos U{t<=24, r<=20} pristine ]")
	opts := core.DefaultOptions()
	opts.Epsilon = 1e-9
	orig, err := core.New(m, opts).Values(formula)
	if err != nil {
		t.Fatal(err)
	}
	lumped, err := core.New(res.Model, opts).Values(formula)
	if err != nil {
		t.Fatal(err)
	}
	lifted := res.Lift(lumped)
	for s := range orig {
		if math.Abs(lifted[s]-orig[s]) > 1e-7 {
			t.Errorf("state %d (%s): lumped %v vs original %v", s, m.Name(s), lifted[s], orig[s])
		}
	}
}

// clusterModel builds a small left/right-symmetric cluster (no impulses so
// every procedure applies).
func clusterModel(t *testing.T, perSide int) *mrm.MRM {
	t.Helper()
	arc := func(p int) []srn.Arc { return []srn.Arc{{Place: p, Weight: 1}} }
	net := &srn.Net{
		Places: []string{"lu", "ld", "ru", "rd"},
		Transitions: []srn.Transition{
			{Name: "fl", In: arc(0), Out: arc(1), RateFn: func(m srn.Marking) float64 { return 0.1 * float64(m[0]) }},
			{Name: "fr", In: arc(2), Out: arc(3), RateFn: func(m srn.Marking) float64 { return 0.1 * float64(m[2]) }},
			{Name: "rl", In: arc(1), Out: arc(0), Rate: 2},
			{Name: "rr", In: arc(3), Out: arc(2), Rate: 2},
		},
	}
	init := srn.Marking{perSide, 0, perSide, 0}
	m, _, err := net.BuildMRM(init, srn.Options{
		Reward: func(mk srn.Marking) float64 { return float64(mk[1] + mk[3]) },
		Labels: func(mk srn.Marking) []string {
			var ls []string
			if mk[0]+mk[2] >= perSide {
				ls = append(ls, "qos")
			}
			if mk[1]+mk[3] == 0 {
				ls = append(ls, "pristine")
			}
			return ls
		},
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return m
}

func TestQuotientRejectsImpulses(t *testing.T) {
	b := mrm.NewBuilder(2)
	b.Rate(0, 1, 1)
	b.Impulse(0, 1, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lump.Quotient(m); !errors.Is(err, mrm.ErrImpulsesUnsupported) {
		t.Errorf("err = %v", err)
	}
}

func TestQuotientKeepsInitialDistribution(t *testing.T) {
	m := symmetricModel(t)
	res, err := lump.Quotient(m)
	if err != nil {
		t.Fatal(err)
	}
	init := res.Model.Init()
	if init[res.BlockOf[0]] != 1 {
		t.Errorf("initial mass = %v", init)
	}
}
