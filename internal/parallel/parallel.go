// Package parallel provides a small bounded worker pool shared by the
// numerical kernels. It depends only on the standard library (sync,
// runtime) and is safe to use from nested parallel regions: submission
// never blocks (tasks run inline on the caller when the queue is full)
// and waiters help drain the queue, so the pool cannot deadlock even
// when every worker is itself waiting on subtasks.
//
// The pool is global and lazily started: the first parallel call spawns
// runtime.NumCPU() daemon goroutines that live for the remainder of the
// process. Workers idle on a channel receive and consume no CPU between
// calls.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers option value to an effective worker count:
// 0 (the default) means runtime.NumCPU(), negative values clamp to 1,
// and positive values are used as given.
func Resolve(workers int) int {
	if workers == 0 {
		return runtime.NumCPU()
	}
	if workers < 1 {
		return 1
	}
	return workers
}

var (
	startOnce sync.Once
	queue     chan func()
	// chunks counts every task dispatched by a multi-task Do — the
	// work-partition dimension the observability layer reports. Global
	// and monotonic like the pool itself; consumers snapshot it into a
	// gauge (inline single-task runs are not parallel chunks and are not
	// counted).
	chunks atomic.Int64
)

// ChunkCount returns the cumulative number of tasks dispatched by
// multi-task Do calls across the process, including tasks that ran
// inline on the caller because the queue was full.
func ChunkCount() int64 { return chunks.Load() }

func start() {
	n := runtime.NumCPU()
	queue = make(chan func(), 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for task := range queue {
				task()
			}
		}()
	}
}

// Do runs the given tasks, possibly concurrently, and returns when all of
// them have completed. Tasks that cannot be handed to an idle slot of the
// global queue run inline on the caller, so Do never blocks on submission
// and degrades gracefully to sequential execution under load or on a
// single-core machine.
func Do(tasks ...func()) {
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0]()
		return
	}
	chunks.Add(int64(len(tasks)))
	startOnce.Do(start)
	var wg sync.WaitGroup
	// Keep the last task for the caller: it would otherwise idle in Wait.
	for _, task := range tasks[:len(tasks)-1] {
		task := task
		wg.Add(1)
		wrapped := func() {
			defer wg.Done()
			task()
		}
		select {
		case queue <- wrapped:
		default:
			// Queue full: run inline rather than block. This is what makes
			// nested parallel regions deadlock-free.
			wrapped()
		}
	}
	tasks[len(tasks)-1]()
	// Help drain the queue before blocking: a worker waiting here may be
	// the only goroutine able to execute the subtasks it is waiting for.
	for {
		select {
		case task := <-queue:
			task()
		default:
			wg.Wait()
			return
		}
	}
}

// For splits the index range [0, n) into at most `workers` contiguous
// chunks of equal ceiling size and calls fn(lo, hi) for each chunk,
// possibly concurrently. The chunk boundaries depend only on (workers, n),
// so any fn whose per-index results are independent of the partition
// (e.g. row-partitioned matrix kernels) produces bitwise-identical output
// for every workers value. workers is passed through Resolve; with an
// effective worker count of 1, or n <= 1, fn runs inline on the caller.
func For(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	tasks := make([]func(), 0, w)
	for lo := 0; lo < n; lo += chunk {
		lo := lo
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		tasks = append(tasks, func() { fn(lo, hi) })
	}
	Do(tasks...)
}
