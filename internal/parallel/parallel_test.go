package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.NumCPU() {
		t.Errorf("Resolve(0) = %d, want NumCPU = %d", got, runtime.NumCPU())
	}
	if got := Resolve(1); got != 1 {
		t.Errorf("Resolve(1) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d, want 7", got)
	}
	if got := Resolve(-3); got != 1 {
		t.Errorf("Resolve(-3) = %d, want 1", got)
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	for _, count := range []int{0, 1, 2, 3, 17, 100} {
		var ran int64
		tasks := make([]func(), count)
		for i := range tasks {
			tasks[i] = func() { atomic.AddInt64(&ran, 1) }
		}
		Do(tasks...)
		if ran != int64(count) {
			t.Errorf("Do with %d tasks ran %d", count, ran)
		}
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int64, n)
			For(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunkingIsDeterministic(t *testing.T) {
	// The chunk boundaries must depend only on (workers, n): collect them
	// twice and compare as sets.
	collect := func() map[[2]int]bool {
		var mu sync.Mutex
		chunks := make(map[[2]int]bool)
		For(4, 103, func(lo, hi int) {
			mu.Lock()
			chunks[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return chunks
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("chunk count differs between runs: %d vs %d", len(a), len(b))
	}
	for c := range a {
		if !b[c] {
			t.Fatalf("chunk %v missing from second run", c)
		}
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	// Oversubscribe deliberately: each outer chunk spawns an inner For.
	// With a blocking pool this would deadlock once all workers are
	// parked in inner waits; the help-drain submit policy must not.
	var total int64
	outer := 4 * runtime.NumCPU()
	For(0, outer, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(0, 100, func(ilo, ihi int) {
				atomic.AddInt64(&total, int64(ihi-ilo))
			})
		}
	})
	if total != int64(outer*100) {
		t.Fatalf("nested For ran %d inner indices, want %d", total, outer*100)
	}
}

func TestDoSaturation(t *testing.T) {
	// Far more tasks than queue capacity: the non-blocking submit must
	// fall back to inline execution and still run everything.
	const tasks = 10000
	var ran int64
	fns := make([]func(), tasks)
	for i := range fns {
		fns[i] = func() { atomic.AddInt64(&ran, 1) }
	}
	Do(fns...)
	if ran != tasks {
		t.Fatalf("saturated Do ran %d of %d tasks", ran, tasks)
	}
}

func TestConcurrentDoCallers(t *testing.T) {
	// Many goroutines using the pool at once (as ReachProbAll's fan-out
	// plus nested kernels will); mostly a -race exercise.
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			For(0, 500, func(lo, hi int) {
				atomic.AddInt64(&total, int64(hi-lo))
			})
		}()
	}
	wg.Wait()
	if total != 8*500 {
		t.Fatalf("concurrent callers covered %d indices, want %d", total, 8*500)
	}
}

func TestChunkCountMetersMultiTaskDo(t *testing.T) {
	before := ChunkCount()
	Do(func() {}) // single task runs inline, not a parallel chunk
	if got := ChunkCount(); got != before {
		t.Errorf("single-task Do counted as chunks: %d -> %d", before, got)
	}
	Do(func() {}, func() {}, func() {})
	if got := ChunkCount(); got != before+3 {
		t.Errorf("ChunkCount = %d after 3-task Do, want %d", got, before+3)
	}
}
