// Package modelfile defines the on-disk JSON representation of Markov
// reward models used by the command-line tools. The format is deliberately
// simple and explicit:
//
//	{
//	  "states": [
//	    {"name": "idle", "reward": 100, "labels": ["call_idle"], "init": 1},
//	    {"name": "busy", "reward": 200, "labels": ["call_active"]}
//	  ],
//	  "transitions": [
//	    {"from": "idle", "to": "busy", "rate": 0.75}
//	  ]
//	}
//
// States are referenced by name; "init" gives the initial probability
// (omitted = 0; if all are omitted, the first state is initial).
package modelfile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/performability/csrl/internal/mrm"
)

// File is the JSON document structure.
type File struct {
	States      []State      `json:"states"`
	Transitions []Transition `json:"transitions"`
}

// State describes one state of the MRM.
type State struct {
	Name   string   `json:"name"`
	Reward float64  `json:"reward,omitempty"`
	Labels []string `json:"labels,omitempty"`
	Init   float64  `json:"init,omitempty"`
}

// Transition is one rate-matrix entry, optionally carrying an impulse
// reward earned when the transition fires.
type Transition struct {
	From    string  `json:"from"`
	To      string  `json:"to"`
	Rate    float64 `json:"rate"`
	Impulse float64 `json:"impulse,omitempty"`
}

// Decode reads and validates a model from JSON.
func Decode(r io.Reader) (*mrm.MRM, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("modelfile: decode: %w", err)
	}
	return f.Build()
}

// Load reads a model from a file path.
func Load(path string) (*mrm.MRM, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("modelfile: %w", err)
	}
	defer fh.Close()
	m, err := Decode(fh)
	if err != nil {
		return nil, fmt.Errorf("modelfile: %s: %w", path, err)
	}
	return m, nil
}

// Build assembles the MRM from the document.
func (f *File) Build() (*mrm.MRM, error) {
	if len(f.States) == 0 {
		return nil, fmt.Errorf("modelfile: no states")
	}
	idx := make(map[string]int, len(f.States))
	for i, s := range f.States {
		if s.Name == "" {
			return nil, fmt.Errorf("modelfile: state %d has no name", i)
		}
		if _, dup := idx[s.Name]; dup {
			return nil, fmt.Errorf("modelfile: duplicate state name %q", s.Name)
		}
		idx[s.Name] = i
	}
	b := mrm.NewBuilder(len(f.States))
	var initSum float64
	for i, s := range f.States {
		b.Name(i, s.Name)
		b.Reward(i, s.Reward)
		for _, l := range s.Labels {
			b.Label(i, l)
		}
		if s.Init != 0 {
			b.InitialProb(i, s.Init)
			initSum += s.Init
		}
	}
	if initSum == 0 {
		b.InitialState(0)
	}
	for _, tr := range f.Transitions {
		from, ok := idx[tr.From]
		if !ok {
			return nil, fmt.Errorf("modelfile: transition from unknown state %q", tr.From)
		}
		to, ok := idx[tr.To]
		if !ok {
			return nil, fmt.Errorf("modelfile: transition to unknown state %q", tr.To)
		}
		b.Rate(from, to, tr.Rate)
		if tr.Impulse != 0 {
			b.Impulse(from, to, tr.Impulse)
		}
	}
	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("modelfile: %w", err)
	}
	return m, nil
}

// Encode writes a model as (indented) JSON.
func Encode(w io.Writer, m *mrm.MRM) error {
	f := FromMRM(m)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("modelfile: encode: %w", err)
	}
	return nil
}

// FromMRM converts a model into its document form.
func FromMRM(m *mrm.MRM) *File {
	f := &File{}
	init := m.InitView()
	labels := m.Labels()
	for s := 0; s < m.N(); s++ {
		st := State{
			Name:   m.Name(s),
			Reward: m.Reward(s),
			Init:   init[s],
		}
		for _, l := range labels {
			if m.HasLabel(s, l) {
				st.Labels = append(st.Labels, l)
			}
		}
		sort.Strings(st.Labels)
		f.States = append(f.States, st)
	}
	m.Rates().Each(func(i, j int, v float64) {
		if v != 0 {
			f.Transitions = append(f.Transitions, Transition{
				From: m.Name(i), To: m.Name(j), Rate: v, Impulse: m.Impulse(i, j),
			})
		}
	})
	return f
}
