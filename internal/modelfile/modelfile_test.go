package modelfile

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/performability/csrl/internal/adhoc"
)

const sample = `{
  "states": [
    {"name": "idle", "reward": 100, "labels": ["call_idle"], "init": 1},
    {"name": "busy", "reward": 200, "labels": ["call_active", "hot"]}
  ],
  "transitions": [
    {"from": "idle", "to": "busy", "rate": 0.75},
    {"from": "busy", "to": "idle", "rate": 15}
  ]
}`

func TestDecode(t *testing.T) {
	m, err := Decode(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if m.N() != 2 {
		t.Fatalf("N = %d", m.N())
	}
	if m.Name(0) != "idle" || m.Reward(1) != 200 {
		t.Error("states decoded wrong")
	}
	if !m.HasLabel(1, "hot") || !m.HasLabel(0, "call_idle") {
		t.Error("labels decoded wrong")
	}
	if got := m.Rates().At(0, 1); got != 0.75 {
		t.Errorf("rate = %v", got)
	}
	if m.InitialState() != 0 {
		t.Errorf("initial = %d", m.InitialState())
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []struct {
		name string
		doc  string
	}{
		{"empty states", `{"states": [], "transitions": []}`},
		{"nameless state", `{"states": [{"reward": 1}]}`},
		{"duplicate name", `{"states": [{"name":"a"},{"name":"a"}]}`},
		{"unknown from", `{"states": [{"name":"a"}], "transitions":[{"from":"x","to":"a","rate":1}]}`},
		{"unknown to", `{"states": [{"name":"a"}], "transitions":[{"from":"a","to":"x","rate":1}]}`},
		{"negative rate", `{"states": [{"name":"a"},{"name":"b"}], "transitions":[{"from":"a","to":"b","rate":-1}]}`},
		{"unknown field", `{"states": [{"name":"a","bogus":1}]}`},
		{"not json", `hello`},
		{"bad init sum", `{"states": [{"name":"a","init":0.4},{"name":"b","init":0.3}]}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(tc.doc)); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	m, err := adhoc.Model()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	m2, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode round trip: %v", err)
	}
	if m2.N() != m.N() {
		t.Fatalf("N: %d vs %d", m2.N(), m.N())
	}
	for s := 0; s < m.N(); s++ {
		if m2.Name(s) != m.Name(s) {
			t.Errorf("name %d: %q vs %q", s, m2.Name(s), m.Name(s))
		}
		if m2.Reward(s) != m.Reward(s) {
			t.Errorf("reward %d: %v vs %v", s, m2.Reward(s), m.Reward(s))
		}
		if math.Abs(m2.ExitRate(s)-m.ExitRate(s)) > 1e-12 {
			t.Errorf("exit %d: %v vs %v", s, m2.ExitRate(s), m.ExitRate(s))
		}
		for _, l := range m.Labels() {
			if m.HasLabel(s, l) != m2.HasLabel(s, l) {
				t.Errorf("label %q mismatch on state %d", l, s)
			}
		}
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if m.N() != 2 {
		t.Errorf("N = %d", m.N())
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestImpulseRoundTrip(t *testing.T) {
	doc := `{
  "states": [
    {"name": "a", "reward": 1},
    {"name": "b"}
  ],
  "transitions": [
    {"from": "a", "to": "b", "rate": 2, "impulse": 3.5}
  ]
}`
	m, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got := m.Impulse(0, 1); got != 3.5 {
		t.Fatalf("impulse = %v", got)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	m2, err := Decode(&buf)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if got := m2.Impulse(0, 1); got != 3.5 {
		t.Errorf("round-trip impulse = %v", got)
	}
}
