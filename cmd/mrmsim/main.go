// Command mrmsim simulates the two-dimensional stochastic process
// (X_t, Y_t) of Figure 1 on a Markov reward model: it draws sample paths,
// optionally writes them as CSV for plotting, and estimates the Theorem 2
// quantity Pr{Y_t ≤ r, X_t ∈ goal} by Monte Carlo.
//
//	mrmsim -model station.json -t 24 -r 600 -goal call_initiated -paths 100000
//	mrmsim -model station.json -t 24 -trajectories 10 -csv traj.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"github.com/performability/csrl/internal/modelfile"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mrmsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mrmsim", flag.ContinueOnError)
	var (
		modelPath    = fs.String("model", "", "path to the model JSON file (required)")
		horizon      = fs.Float64("t", 1, "time horizon")
		reward       = fs.Float64("r", math.Inf(1), "reward barrier (default: none)")
		goalLabel    = fs.String("goal", "", "goal label for the reachability estimate")
		paths        = fs.Int("paths", 100_000, "Monte-Carlo paths for the estimate")
		trajectories = fs.Int("trajectories", 0, "sample trajectories to print/export")
		csvPath      = fs.String("csv", "", "write trajectories as CSV to this file")
		seed         = fs.Int64("seed", 1, "random seed")
		from         = fs.String("from", "", "start state name (default: the model's initial state)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		fs.Usage()
		return fmt.Errorf("-model is required")
	}
	m, err := modelfile.Load(*modelPath)
	if err != nil {
		return err
	}
	start := m.InitialState()
	if *from != "" {
		start = m.StateIndex(*from)
		if start < 0 {
			return fmt.Errorf("unknown state %q; states are: %s", *from, stateNames(m))
		}
	}
	if start < 0 {
		return fmt.Errorf("model has no point-mass initial state; pass -from")
	}
	s := sim.New(m, *seed)

	if *trajectories > 0 {
		var w *csv.Writer
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = csv.NewWriter(f)
			defer w.Flush()
			if err := w.Write([]string{"trajectory", "time", "state", "state_name", "accumulated_reward"}); err != nil {
				return err
			}
		}
		for i := 0; i < *trajectories; i++ {
			p, err := s.SamplePath(start, *horizon, 100_000)
			if err != nil {
				return err
			}
			if w == nil {
				fmt.Printf("trajectory %d:\n", i+1)
			}
			for _, e := range p.Events {
				if w != nil {
					if err := w.Write([]string{
						strconv.Itoa(i + 1),
						strconv.FormatFloat(e.Time, 'g', -1, 64),
						strconv.Itoa(e.State),
						m.Name(e.State),
						strconv.FormatFloat(e.Reward, 'g', -1, 64),
					}); err != nil {
						return err
					}
					continue
				}
				fmt.Printf("  t=%10.5f  X=%-30s Y=%10.3f\n", e.Time, m.Name(e.State), e.Reward)
			}
		}
		if w != nil {
			fmt.Printf("wrote %d trajectories to %s\n", *trajectories, *csvPath)
		}
	}

	if *goalLabel != "" {
		goal := m.Label(*goalLabel)
		if goal.IsEmpty() {
			return fmt.Errorf("no state carries label %q", *goalLabel)
		}
		est, err := s.ReachProb(start, goal, *horizon, *reward, *paths)
		if err != nil {
			return err
		}
		fmt.Printf("Pr{Y_%g ≤ %g, X_%g ∈ %q} ≈ %v (from %s)\n",
			*horizon, *reward, *horizon, *goalLabel, est, m.Name(start))
	}
	return nil
}

func stateNames(m *mrm.MRM) string {
	names := make([]string, m.N())
	for s := range names {
		names[s] = m.Name(s)
	}
	return strings.Join(names, ", ")
}
