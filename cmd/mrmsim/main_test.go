package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/modelfile"
)

func writeStationModel(t *testing.T) string {
	t.Helper()
	m, err := adhoc.Model()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "station.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := modelfile.Encode(f, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCSVExport(t *testing.T) {
	model := writeStationModel(t)
	csvPath := filepath.Join(t.TempDir(), "traj.csv")
	err := run([]string{
		"-model", model, "-t", "2", "-trajectories", "3", "-csv", csvPath, "-seed", "7",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("read csv: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 4 {
		t.Fatalf("csv too short: %d lines", len(lines))
	}
	if lines[0] != "trajectory,time,state,state_name,accumulated_reward" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,0,") {
		t.Errorf("first event should be trajectory 1 at time 0: %q", lines[1])
	}
}

func TestGoalEstimate(t *testing.T) {
	model := writeStationModel(t)
	err := run([]string{
		"-model", model, "-t", "24", "-goal", "call_incoming", "-paths", "1000", "-seed", "3",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestFromFlag(t *testing.T) {
	model := writeStationModel(t)
	if err := run([]string{"-model", model, "-from", "doze", "-t", "1", "-trajectories", "1"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-model", model, "-from", "nonexistent", "-t", "1", "-trajectories", "1"}); err == nil {
		t.Error("unknown -from state accepted")
	}
}

func TestErrors(t *testing.T) {
	model := writeStationModel(t)
	cases := [][]string{
		{},                                    // no model
		{"-model", "missing.json", "-t", "1"}, // missing file
		{"-model", model, "-goal", "nope"},    // unknown goal label
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
