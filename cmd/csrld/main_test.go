package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives the full acceptance smoke — real listener, 8
// concurrent HTTP clients, two waves — through the run() entry point
// exactly as `csrld -smoke` and `make serve-smoke` do.
func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-smoke", "-epsilon", "1e-7"}, &out)
	if err != nil {
		t.Fatalf("smoke failed: %v\n%s", err, out.String())
	}
	if code != 0 {
		t.Fatalf("smoke exit code %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "smoke: PASS") {
		t.Fatalf("smoke output missing PASS line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "batches fired") {
		t.Fatalf("smoke output missing batch statistics:\n%s", out.String())
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	for _, flag := range []string{"-h", "-help", "--help"} {
		var out bytes.Buffer
		code, err := run([]string{flag}, &out)
		if err != nil {
			t.Errorf("%s: err = %v, want nil", flag, err)
		}
		if code != 0 {
			t.Errorf("%s: exit code %d, want 0", flag, code)
		}
	}
}

func TestRunRejectsPositionalArgs(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"stray"}, &out)
	if code != 1 || err == nil {
		t.Fatalf("stray argument: code %d err %v, want 1 and an error", code, err)
	}
}

func TestRunRejectsBadPreload(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-preload", "cluster:0", "-addr", "127.0.0.1:0"}, &out)
	if code != 1 || err == nil || !strings.Contains(err.Error(), "N >= 1") {
		t.Fatalf("cluster:0 preload: code %d err %v, want guard error", code, err)
	}
}

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-algorithm", "nope", "-smoke"}, &out)
	if code != 1 || err == nil {
		t.Fatalf("unknown algorithm: code %d err %v, want 1 and an error", code, err)
	}
}
