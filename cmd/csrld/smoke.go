// The -smoke mode: the service acceptance check as a self-contained
// binary run, so CI and `make serve-smoke` exercise the real HTTP stack —
// listener, routing, JSON round-trips, concurrent admission — without
// shell plumbing. The assertions mirror internal/service's tests but run
// against a live socket:
//
//  1. upload the embedded station model, once per wave (the re-upload must
//     land on the same fingerprint — parse-once across clients);
//  2. fire 8 concurrent queries of mixed shape; every response must be a
//     200 whose budget proof passes and whose answer is bitwise identical
//     to a one-shot direct checker with the same configuration;
//  3. fire the identical wave again; every response must now report memo
//     hits, and the wave must add no new misses — nothing was
//     re-uniformised.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/modelfile"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/service"
)

// smokeQuery is one of the 8 concurrent requests with its expected answer.
type smokeQuery struct {
	formula string
	// query formulas pin wantValue; bounded ones pin wantHolds+wantSat.
	query     bool
	wantValue float64
	wantHolds bool
	wantSat   int
}

func runSmoke(svcOpts service.Options, out io.Writer) (int, error) {
	// The smoke wants to see coalescing happen, so it stretches the
	// admission window well past goroutine-launch jitter.
	svcOpts.BatchWindow = 100 * time.Millisecond
	srv, err := service.New(svcOpts)
	if err != nil {
		return 1, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 1, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	//lint:ignore goroutinemisuse server lifecycle goroutine, torn down with the process; not numerical fan-out work
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "smoke: csrld on %s\n", base)

	m, err := adhoc.Model()
	if err != nil {
		return 1, err
	}
	fp, err := smokeUpload(base, m, http.StatusCreated)
	if err != nil {
		return 1, fmt.Errorf("upload: %w", err)
	}
	fmt.Fprintf(out, "smoke: station model registered, fingerprint %s\n", fp[:16])

	queries, err := smokeQueries(m, svcOpts.Checker)
	if err != nil {
		return 1, fmt.Errorf("one-shot reference: %w", err)
	}

	var missesAfter [2]int64
	for wave := 0; wave < 2; wave++ {
		// Parse-once: a second client uploading the same model must land on
		// the existing entry, keeping its memo.
		if _, err := smokeUpload(base, m, http.StatusOK); err != nil {
			return 1, fmt.Errorf("wave %d re-upload: %w", wave+1, err)
		}
		responses, err := smokeWave(base, fp, queries)
		if err != nil {
			return 1, fmt.Errorf("wave %d: %w", wave+1, err)
		}
		var batched int
		for i, q := range queries {
			resp := responses[i]
			if !resp.BudgetOK {
				return 1, fmt.Errorf("wave %d: %s: budget proof failed (total %g)", wave+1, q.formula, resp.Report.BudgetTotal)
			}
			if q.query {
				if resp.Value == nil {
					return 1, fmt.Errorf("wave %d: %s: no value", wave+1, q.formula)
				}
				if fmt.Sprintf("%x", *resp.Value) != fmt.Sprintf("%x", q.wantValue) {
					return 1, fmt.Errorf("wave %d: %s: service value %v differs from one-shot checker %v",
						wave+1, q.formula, *resp.Value, q.wantValue)
				}
			} else {
				if resp.Holds == nil || *resp.Holds != q.wantHolds {
					return 1, fmt.Errorf("wave %d: %s: service verdict %v, one-shot checker %v",
						wave+1, q.formula, resp.Holds, q.wantHolds)
				}
				if resp.Satisfying == nil || *resp.Satisfying != q.wantSat {
					return 1, fmt.Errorf("wave %d: %s: service Sat count %v, one-shot checker %d",
						wave+1, q.formula, resp.Satisfying, q.wantSat)
				}
			}
			if resp.Batched {
				batched++
			}
			if wave == 1 && resp.Memo.Hits == 0 {
				return 1, fmt.Errorf("wave 2: %s: memo reports zero hits", q.formula)
			}
			if resp.Memo.Misses > missesAfter[wave] {
				missesAfter[wave] = resp.Memo.Misses
			}
		}
		fmt.Fprintf(out, "smoke: wave %d: %d/%d responses OK (budget proofs pass, answers bitwise match one-shot), %d batched\n",
			wave+1, len(queries), len(queries), batched)
	}
	if missesAfter[1] != missesAfter[0] {
		return 1, fmt.Errorf("wave 2 added memo misses (%d -> %d): something was re-uniformised", missesAfter[0], missesAfter[1])
	}

	st := srv.Snapshot()
	fmt.Fprintf(out, "smoke: second wave served from memo (misses flat at %d)\n", missesAfter[1])
	fmt.Fprintf(out, "smoke: %d requests, %d batches fired, largest batch %d\n", st.Requests, st.Batches, st.MaxBatch)
	fmt.Fprintln(out, "smoke: PASS")
	return 0, nil
}

// smokeQueries builds the 8-query mix and computes each expected answer
// with a fresh one-shot checker — the direct-API equivalent of running
// csrlcheck once per formula.
func smokeQueries(m *mrm.MRM, opts core.Options) ([]smokeQuery, error) {
	queries := []smokeQuery{
		// Four batchable doubly-bounded until queries sharing a skeleton:
		// the admission layer should coalesce these.
		{formula: "P=? [ (call_idle | doze) U{t<=24, r<=150} call_initiated ]", query: true},
		{formula: "P=? [ (call_idle | doze) U{t<=24, r<=300} call_initiated ]", query: true},
		{formula: "P=? [ (call_idle | doze) U{t<=24, r<=450} call_initiated ]", query: true},
		{formula: "P=? [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]", query: true},
		// Bounded variant of the same shape (batchable, different duty).
		{formula: "P>=0.001 [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]"},
		// Time-only until query (direct path).
		{formula: "P=? [ !call_incoming U{t<=12} call_incoming ]", query: true},
		// Steady-state query (direct path).
		{formula: "S=? [ doze ]", query: true},
		// Boolean (charges nothing; its ledger must stay empty).
		{formula: "call_idle | call_incoming"},
	}
	for i := range queries {
		checker := core.New(m, opts)
		f, err := logic.Parse(queries[i].formula)
		if err != nil {
			return nil, err
		}
		if queries[i].query {
			vals, err := checker.Values(f)
			if err != nil {
				return nil, err
			}
			for s, alpha := range m.InitView() {
				queries[i].wantValue += alpha * vals[s]
			}
		} else {
			holds, err := checker.Check(f)
			if err != nil {
				return nil, err
			}
			sat, err := checker.Sat(f)
			if err != nil {
				return nil, err
			}
			queries[i].wantHolds = holds
			queries[i].wantSat = sat.Len()
		}
	}
	return queries, nil
}

// smokeWave fires all queries concurrently and collects the decoded
// responses in query order.
func smokeWave(base, fp string, queries []smokeQuery) ([]service.CheckResponse, error) {
	responses := make([]service.CheckResponse, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		//lint:ignore goroutinemisuse the smoke exists to exercise concurrent HTTP clients; parallel.For would serialise under Workers=1 and defeat the point
		go func(i int, formula string) {
			defer wg.Done()
			body, _ := json.Marshal(service.CheckRequest{Model: fp, Formula: formula})
			resp, err := http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("%s: status %d: %s", formula, resp.StatusCode, msg)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i, q.formula)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return responses, nil
}

// smokeUpload POSTs the model and asserts the expected status (201 on
// first upload, 200 when the fingerprint already exists).
func smokeUpload(base string, m *mrm.MRM, wantStatus int) (string, error) {
	var buf bytes.Buffer
	if err := modelfile.Encode(&buf, m); err != nil {
		return "", err
	}
	resp, err := http.Post(base+"/v1/models", "application/json", &buf)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("status %d, want %d: %s", resp.StatusCode, wantStatus, msg)
	}
	var info service.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", err
	}
	return info.Fingerprint, nil
}
