// Command csrld runs the long-running CSRL checker service: models are
// uploaded once, parsed once, and checked many times by many concurrent
// clients over a shared checker whose memo keeps the uniformised matrices,
// Fox–Glynn tables and lump quotients warm across requests.
//
//	csrld -addr :8344
//	csrld -addr :8344 -preload cluster:64 -epsilon 1e-8 -truncate 1e-14
//	csrld -smoke
//
// The API (see internal/service and the README's service section):
//
//	POST /v1/models   upload a modelfile JSON; returns its fingerprint
//	GET  /v1/models   list registered models with memo statistics
//	POST /v1/check    {"model": fp, "formula": "..."} -> value/verdict,
//	                  per-request error ledger and Σ ≤ ε budget proof
//	GET  /v1/stats    service-wide request, batch and memo counters
//	GET  /healthz     liveness
//
// Numerical options are per deployment, not per request — batched
// requests must be exchangeable and results reproducible fleet-wide.
//
// -smoke runs the acceptance smoke against an in-process instance: upload
// the embedded station model, fire 8 concurrent queries, assert every
// response is a 200 carrying a passing budget proof and bitwise matches a
// one-shot direct checker, then repeat the wave and assert it was served
// from the memo (hits > 0, no new misses). Exit 0 on success.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/performability/csrl/internal/cluster"
	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/modelfile"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/service"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrld:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("csrld", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8344", "listen address")
		algorithm   = fs.String("algorithm", "sericola", "P3 procedure: sericola | erlang | discretise")
		epsilon     = fs.Float64("epsilon", 1e-9, "accuracy for uniformisation-based computations")
		k           = fs.Int("k", 256, "phase count for -algorithm erlang")
		d           = fs.Float64("d", 0, "step for -algorithm discretise (0 = automatic)")
		workers     = fs.Int("workers", 0, "worker goroutines for the numerical procedures (0 = all CPUs)")
		doLump      = fs.Bool("lump", true, "quotient models by formula-respecting lumpability before checking")
		truncate    = fs.Float64("truncate", 0, "drop states below this mass from forward transient sweeps (0 = off)")
		memoCap     = fs.Int("memo-cap", service.DefaultMemoCap, "per-table memo entries per model before LRU eviction")
		batchWindow = fs.Duration("batch-window", service.DefaultBatchWindow, "admission window for coalescing concurrent queries (negative = off)")
		maxModels   = fs.Int("max-models", service.DefaultMaxModels, "registry capacity")
		preload     = fs.String("preload", "", "comma-separated models to register at startup: modelfile paths or cluster:N")
		smoke       = fs.Bool("smoke", false, "run the in-process acceptance smoke and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: csrld [flags]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0, nil
		}
		return 1, err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 1, fmt.Errorf("csrld takes no positional arguments, got %d", fs.NArg())
	}

	opts := core.DefaultOptions()
	opts.Epsilon = *epsilon
	opts.ErlangK = *k
	opts.DiscretiseStep = *d
	opts.Workers = *workers
	opts.Truncate = *truncate
	if !*doLump {
		opts.Lump = core.LumpOff
	}
	switch strings.ToLower(*algorithm) {
	case "sericola", "occupation-time":
		opts.P3 = core.AlgSericola
	case "erlang", "pseudo-erlang":
		opts.P3 = core.AlgErlang
	case "discretise", "discretisation", "tijms-veldman":
		opts.P3 = core.AlgDiscretise
	default:
		return 1, fmt.Errorf("unknown algorithm %q", *algorithm)
	}

	svcOpts := service.Options{
		Checker:     opts,
		MemoCap:     *memoCap,
		BatchWindow: *batchWindow,
		MaxModels:   *maxModels,
	}
	if *smoke {
		return runSmoke(svcOpts, out)
	}
	srv, err := service.New(svcOpts)
	if err != nil {
		return 1, err
	}

	if *preload != "" {
		for _, spec := range strings.Split(*preload, ",") {
			spec = strings.TrimSpace(spec)
			m, err := loadModel(spec)
			if err != nil {
				return 1, fmt.Errorf("-preload %s: %w", spec, err)
			}
			fp, _, err := srv.Register(m)
			if err != nil {
				return 1, fmt.Errorf("-preload %s: %w", spec, err)
			}
			fmt.Fprintf(out, "preloaded %s: %d states, fingerprint %s\n", spec, m.N(), fp)
		}
	}

	fmt.Fprintf(out, "csrld listening on %s (epsilon %g, memo cap %d, batch window %v)\n",
		*addr, *epsilon, *memoCap, *batchWindow)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return 1, err
	}
	return 0, nil
}

// loadModel resolves a model spec exactly as csrlcheck's -model flag: a
// cluster:N family instance or a modelfile JSON path.
func loadModel(spec string) (*mrm.MRM, error) {
	if rest, ok := strings.CutPrefix(spec, "cluster:"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("cluster:N needs an integer N, got %q", rest)
		}
		if n < 1 {
			return nil, fmt.Errorf("cluster:N needs N >= 1 (workstations per side), got %d", n)
		}
		p, err := cluster.Default(n)
		if err != nil {
			return nil, err
		}
		return p.Build()
	}
	return modelfile.Load(spec)
}
