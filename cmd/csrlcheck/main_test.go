package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/performability/csrl/internal/adhoc"
	"github.com/performability/csrl/internal/modelfile"
)

func writeStationModel(t *testing.T) string {
	t.Helper()
	m, err := adhoc.Model()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "station.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := modelfile.Encode(f, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQueryFormula(t *testing.T) {
	path := writeStationModel(t)
	var out bytes.Buffer
	code, err := run([]string{"-model", path, "P=? [ F{t<=24} call_incoming ]"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out.String(), "0.99444") {
		t.Errorf("expected Q2 value in output:\n%s", out.String())
	}
}

func TestRunBoundedFormulaHolds(t *testing.T) {
	path := writeStationModel(t)
	var out bytes.Buffer
	code, err := run([]string{"-model", path, "-states", "P>0.5 [ F{t<=24} call_incoming ]"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if !strings.Contains(out.String(), "holds in the initial state(s): true") {
		t.Errorf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "adhoc_idle+call_idle") {
		t.Errorf("-states listing missing:\n%s", out.String())
	}
}

func TestRunBoundedFormulaFails(t *testing.T) {
	path := writeStationModel(t)
	var out bytes.Buffer
	code, err := run([]string{"-model", path,
		"P>0.5 [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 2 {
		t.Fatalf("exit code %d, want 2 for a failing property", code)
	}
}

func TestRunAlgorithmSelection(t *testing.T) {
	path := writeStationModel(t)
	const formula = "P=? [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]"
	for _, alg := range []string{"sericola", "erlang", "discretise"} {
		var out bytes.Buffer
		args := []string{"-model", path, "-algorithm", alg, "-epsilon", "1e-7", "-k", "128", "-d", "0.03125", formula}
		code, err := run(args, &out)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if code != 0 {
			t.Fatalf("%s: exit code %d", alg, code)
		}
		if !strings.Contains(out.String(), "0.49") {
			t.Errorf("%s: expected a value near 0.497:\n%s", alg, out.String())
		}
	}
}

// TestRunStatsBudget is the acceptance check of the observability layer:
// for the paper's three queries, under each procedure that applies, the
// -stats numerics report must prove that the summed error-budget ledger
// stays within the configured epsilon.
func TestRunStatsBudget(t *testing.T) {
	path := writeStationModel(t)
	cases := []struct {
		name    string
		args    []string
		formula string
		ledger  string // entry each procedure is expected to charge
	}{
		{"Q1 duality", nil, "P=? [ F{r<=600} call_incoming ]", "foxglynn/"},
		{"Q2 transient", nil, "P=? [ F{t<=24} call_incoming ]", "foxglynn/"},
		{"Q3 sericola", []string{"-algorithm", "sericola"},
			"P=? [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]",
			"sericola/series-remainder"},
		{"Q3 erlang", []string{"-algorithm", "erlang", "-k", "128"},
			"P=? [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]",
			"foxglynn/"},
		{"Q3 discretise", []string{"-algorithm", "discretise", "-d", "0.03125"},
			"P=? [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]",
			"discretise/step"},
	}
	const eps = 1e-7
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-model", path, "-stats", "-epsilon", "1e-7"}, tc.args...)
			args = append(args, tc.formula)
			var out bytes.Buffer
			code, err := run(args, &out)
			if err != nil {
				t.Fatal(err)
			}
			if code != 0 {
				t.Fatalf("exit code %d:\n%s", code, out.String())
			}
			text := out.String()
			if !strings.Contains(text, "numerics report:") {
				t.Fatalf("-stats produced no report:\n%s", text)
			}
			if !strings.Contains(text, "error budget (epsilon = 1e-07)") {
				t.Errorf("epsilon missing from the report:\n%s", text)
			}
			// The budget line carries the machine verdict; OK means the
			// summed bounded charges were proved <= eps.
			if !strings.Contains(text, ": OK") || strings.Contains(text, "EXCEEDED") {
				t.Errorf("budget not proved within %g:\n%s", eps, text)
			}
			if !strings.Contains(text, tc.ledger) {
				t.Errorf("expected ledger entry %q missing:\n%s", tc.ledger, text)
			}
		})
	}
	// Without -stats the report must stay disabled.
	var out bytes.Buffer
	if _, err := run([]string{"-model", path, "P=? [ F{t<=24} call_incoming ]"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "numerics report") {
		t.Errorf("report printed without -stats:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeStationModel(t)
	cases := []struct {
		name string
		args []string
	}{
		{"no model", []string{"P>0 [ F doze ]"}},
		{"missing file", []string{"-model", "nope.json", "P>0 [ F doze ]"}},
		{"no formula", []string{"-model", path}},
		{"two formulas", []string{"-model", path, "a", "b"}},
		{"bad formula", []string{"-model", path, "P>0.5 [ a U"}},
		{"bad algorithm", []string{"-model", path, "-algorithm", "magic", "P>0 [ F doze ]"}},
		{"bad cluster spec", []string{"-model", "cluster:x", "P>0 [ F down ]"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if _, err := run(tc.args, &out); err == nil {
				t.Errorf("%v accepted", tc.args)
			}
		})
	}
}

func TestRunWithLumping(t *testing.T) {
	// A left/right-symmetric model that lumps 3 -> 2 states.
	doc := `{
  "states": [
    {"name": "mid", "reward": 1, "labels": ["start"], "init": 1},
    {"name": "left", "reward": 2, "labels": ["edge"]},
    {"name": "right", "reward": 2, "labels": ["edge"]}
  ],
  "transitions": [
    {"from": "mid", "to": "left", "rate": 1},
    {"from": "mid", "to": "right", "rate": 1}
  ]
}`
	path := filepath.Join(t.TempDir(), "sym.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var plain, lumped bytes.Buffer
	if _, err := run([]string{"-model", path, "-lump=false", "-states", "P=? [ F{t<=1} edge ]"}, &plain); err != nil {
		t.Fatalf("plain: %v", err)
	}
	if _, err := run([]string{"-model", path, "-states", "P=? [ F{t<=1} edge ]"}, &lumped); err != nil {
		t.Fatalf("lumped: %v", err)
	}
	// Lumping is on by default; the stats gauges prove the pre-pass really
	// quotiented 3 states into 2 on the default run.
	var stats bytes.Buffer
	if _, err := run([]string{"-model", path, "-stats", "P=? [ F{t<=1} edge ]"}, &stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(stats.String(), "lump.blocks") || !strings.Contains(stats.String(), "lump.states") {
		t.Errorf("expected lump gauges in the stats report:\n%s", stats.String())
	}
	// The per-state values must agree between the two runs.
	extract := func(out string) []string {
		var vals []string
		for _, line := range strings.Split(out, "\n") {
			f := strings.Fields(line)
			if len(f) == 2 && strings.Contains(f[1], ".") {
				if _, err := strconv.ParseFloat(f[1], 64); err == nil {
					vals = append(vals, f[0]+"="+f[1])
				}
			}
		}
		return vals
	}
	a, b := extract(plain.String()), extract(lumped.String())
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("state listings: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("state %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestRunClusterTruncated exercises the generated-model scheme together
// with the truncated fast path: the verdict comes from forward sweeps over
// the initial state only, the satisfying-state listing is skipped, and the
// dropped mass shows up as a bounded ledger charge.
func TestRunClusterTruncated(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-model", "cluster:8", "-truncate", "1e-14", "-stats",
		"P<=0.021 [ !down U{t<=96} down ]"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "(162 states)") {
		t.Errorf("cluster:8 should have 162 states:\n%s", text)
	}
	if !strings.Contains(text, "satisfying states: not computed") {
		t.Errorf("truncated run should skip the full listing:\n%s", text)
	}
	if !strings.Contains(text, "holds in the initial state(s): true") {
		t.Errorf("property should hold:\n%s", text)
	}
	if !strings.Contains(text, "truncation/state-drop") {
		t.Errorf("ledger should carry the truncation term:\n%s", text)
	}
	if !strings.Contains(text, ": OK") {
		t.Errorf("budget should be proved:\n%s", text)
	}
	// -states forces the dense listing even when truncating.
	var listed bytes.Buffer
	code, err = run([]string{"-model", "cluster:8", "-truncate", "1e-14", "-states",
		"P<=0.021 [ !down U{t<=96} down ]"}, &listed)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, listed.String())
	}
	if !strings.Contains(listed.String(), "of 162") || strings.Contains(listed.String(), "not computed") {
		t.Errorf("-states should compute the full listing:\n%s", listed.String())
	}
}

// TestRunHelpExitsZero pins the -h/-help contract: asking for usage is a
// successful invocation, so run must return exit code 0 and no error (the
// old behaviour surfaced flag.ErrHelp, printing "csrlcheck: flag: help
// requested" to stderr and exiting 1).
func TestRunHelpExitsZero(t *testing.T) {
	for _, flagName := range []string{"-h", "-help", "--help"} {
		var out bytes.Buffer
		code, err := run([]string{flagName}, &out)
		if err != nil {
			t.Errorf("%s: err = %v, want nil", flagName, err)
		}
		if code != 0 {
			t.Errorf("%s: exit code %d, want 0", flagName, code)
		}
	}
}

// TestRunClusterRejectsNonPositiveN pins the -model cluster:N validation:
// N <= 0 must fail with a clear message instead of being handed to the
// generator.
func TestRunClusterRejectsNonPositiveN(t *testing.T) {
	for _, spec := range []string{"cluster:0", "cluster:-1", "cluster:-224"} {
		var out bytes.Buffer
		_, err := run([]string{"-model", spec, "P>0 [ F down ]"}, &out)
		if err == nil {
			t.Errorf("%s accepted", spec)
			continue
		}
		if !strings.Contains(err.Error(), "N >= 1") {
			t.Errorf("%s: error %q should explain the N >= 1 requirement", spec, err)
		}
	}
}

// TestRunQueryTruncatedFastPath pins the satellite fix: a P=? query with
// -truncate must route the initial-distribution value through the forward
// truncated sweep instead of the dense all-states Values computation, and
// the value must agree with the dense run to within the accuracy.
func TestRunQueryTruncatedFastPath(t *testing.T) {
	const formula = "P=? [ !down U{t<=96} down ]"
	var dense, fast bytes.Buffer
	if _, err := run([]string{"-model", "cluster:8", formula}, &dense); err != nil {
		t.Fatal(err)
	}
	code, err := run([]string{"-model", "cluster:8", "-truncate", "1e-14", "-stats", formula}, &fast)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, fast.String())
	}
	text := fast.String()
	if !strings.Contains(text, "per-state values: not computed") {
		t.Errorf("truncated query should skip the dense sweep:\n%s", text)
	}
	if !strings.Contains(text, "truncation/state-drop") {
		t.Errorf("forward sweep should charge the truncation term:\n%s", text)
	}
	extract := func(out string) float64 {
		for _, line := range strings.Split(out, "\n") {
			if rest, ok := strings.CutPrefix(line, "value from the initial distribution: "); ok {
				v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
				if err != nil {
					t.Fatalf("parse %q: %v", rest, err)
				}
				return v
			}
		}
		t.Fatalf("no value line in:\n%s", out)
		return 0
	}
	dv, fv := extract(dense.String()), extract(fast.String())
	if diff := dv - fv; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("truncated value %g diverges from dense %g", fv, dv)
	}
	// -states keeps the dense sweep (the listing needs every state).
	var listed bytes.Buffer
	if _, err := run([]string{"-model", "cluster:8", "-truncate", "1e-14", "-states", formula}, &listed); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(listed.String(), "not computed") {
		t.Errorf("-states should force the full sweep:\n%s", listed.String())
	}
	// An ineligible shape (S=? has no forward-sweep route) falls back with
	// a printed note rather than failing.
	var fallback bytes.Buffer
	if _, err := run([]string{"-model", "cluster:8", "-truncate", "1e-14", "S=? [ down ]"}, &fallback); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fallback.String(), "fast path does not apply") {
		t.Errorf("ineligible shape should print the fallback note:\n%s", fallback.String())
	}
	if !strings.Contains(fallback.String(), "value from the initial distribution:") {
		t.Errorf("fallback should still produce the value:\n%s", fallback.String())
	}
}
