// Command csrlcheck model-checks a CSRL formula over a Markov reward model
// stored in the JSON format of internal/modelfile:
//
//	csrlcheck -model station.json 'P>0.5 [ (call_idle | doze) U{t<=24, r<=600} call_initiated ]'
//	csrlcheck -model station.json -algorithm erlang -k 512 'P=? [ F{r<=600} call_incoming ]'
//	csrlcheck -model station.json -states 'S>=0.9 [ call_idle ]'
//	csrlcheck -model cluster:224 -truncate 1e-14 'P<=0.021 [ !down U{t<=96} down ]'
//
// The -model argument is either a JSON file path or cluster:N, which
// generates the parametric workstation-cluster instance with N stations
// per side (2·(N+1)² states) on the fly. For bounded formulas it prints
// the satisfying states and whether the model's initial distribution
// satisfies the formula; for P=? / S=? query formulas it prints the
// numeric value per state.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/performability/csrl/internal/cluster"
	"github.com/performability/csrl/internal/core"
	"github.com/performability/csrl/internal/logic"
	"github.com/performability/csrl/internal/modelfile"
	"github.com/performability/csrl/internal/mrm"
	"github.com/performability/csrl/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrlcheck:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// loadModel resolves the -model argument: a cluster:N family instance or a
// modelfile JSON path.
func loadModel(spec string) (*mrm.MRM, error) {
	if rest, ok := strings.CutPrefix(spec, "cluster:"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("-model cluster:N needs an integer N, got %q", rest)
		}
		if n < 1 {
			return nil, fmt.Errorf("-model cluster:N needs N >= 1 (workstations per side), got %d", n)
		}
		p, err := cluster.Default(n)
		if err != nil {
			return nil, err
		}
		return p.Build()
	}
	return modelfile.Load(spec)
}

// run returns the process exit code: 0 when the formula holds (or for
// query formulas), 2 when a bounded formula does not hold.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("csrlcheck", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "", "model JSON file, or cluster:N for the parametric workstation cluster (required)")
		algorithm = fs.String("algorithm", "sericola", "P3 procedure: sericola | erlang | discretise")
		epsilon   = fs.Float64("epsilon", 1e-9, "accuracy for uniformisation-based computations")
		k         = fs.Int("k", 256, "phase count for -algorithm erlang")
		d         = fs.Float64("d", 0, "step for -algorithm discretise (0 = automatic)")
		workers   = fs.Int("workers", 0, "worker goroutines for the numerical procedures (0 = all CPUs, 1 = sequential)")
		states    = fs.Bool("states", false, "list every state with its verdict/value")
		doLump    = fs.Bool("lump", true, "quotient the model by formula-respecting lumpability before checking (automatic pre-pass)")
		truncate  = fs.Float64("truncate", 0, "drop states below this mass from the forward transient sweeps; the dropped mass is charged to the error ledger (0 = off)")
		stats     = fs.Bool("stats", false, "print the numerics report: error-budget ledger, counters and spans")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: csrlcheck -model FILE [flags] FORMULA\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// -h/-help is a successful invocation that asked for usage (the
			// FlagSet already printed it), not a tool failure: exit 0 with
			// no "csrlcheck: flag: help requested" noise on stderr.
			return 0, nil
		}
		return 1, err
	}
	if *modelPath == "" {
		fs.Usage()
		return 1, fmt.Errorf("-model is required")
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 1, fmt.Errorf("exactly one formula argument expected, got %d", fs.NArg())
	}
	formulaSrc := fs.Arg(0)

	m, err := loadModel(*modelPath)
	if err != nil {
		return 1, err
	}
	formula, err := logic.Parse(formulaSrc)
	if err != nil {
		return 1, err
	}
	opts := core.DefaultOptions()
	opts.Epsilon = *epsilon
	opts.ErlangK = *k
	opts.DiscretiseStep = *d
	opts.Workers = *workers
	opts.Truncate = *truncate
	if !*doLump {
		opts.Lump = core.LumpOff
	}
	switch strings.ToLower(*algorithm) {
	case "sericola", "occupation-time":
		opts.P3 = core.AlgSericola
	case "erlang", "pseudo-erlang":
		opts.P3 = core.AlgErlang
	case "discretise", "discretisation", "tijms-veldman":
		opts.P3 = core.AlgDiscretise
	default:
		return 1, fmt.Errorf("unknown algorithm %q", *algorithm)
	}
	if *stats {
		opts.Obs = obs.New()
	}
	checker := core.New(m, opts)

	fmt.Fprintf(out, "model:   %s (%d states)\n", *modelPath, m.N())
	fmt.Fprintf(out, "formula: %s\n", formula)

	// printStats emits the numerics report after the check so the ledger
	// covers every procedure the formula actually exercised; no-op unless
	// -stats armed a recorder.
	printStats := func() {
		if rep := checker.NumericsReport(); rep != nil {
			fmt.Fprint(out, rep.Format())
		}
	}

	if isQuery(formula) {
		// With truncation on, the initial-distribution value can come from
		// truncated forward sweeps alone; the dense all-states Values sweep
		// would defeat the truncation the flag asked for. The per-state
		// listing still needs the full sweep, so -states opts out.
		if *truncate > 0 && !*states {
			initVal, ok, err := checker.QueryInitial(formula)
			if err != nil {
				return 1, err
			}
			if ok {
				fmt.Fprintf(out, "value from the initial distribution: %0.10f\n", initVal)
				fmt.Fprintf(out, "per-state values: not computed (truncated run; pass -states to force the full sweep)\n")
				printStats()
				return 0, nil
			}
			fmt.Fprintf(out, "note: -truncate fast path does not apply to this formula shape; falling back to the dense all-states sweep\n")
		}
		vals, err := checker.Values(formula)
		if err != nil {
			return 1, err
		}
		var initVal float64
		for s, p := range m.InitView() {
			initVal += p * vals[s]
		}
		fmt.Fprintf(out, "value from the initial distribution: %0.10f\n", initVal)
		if *states {
			for s, v := range vals {
				fmt.Fprintf(out, "  %-30s %0.10f\n", m.Name(s), v)
			}
		}
		printStats()
		return 0, nil
	}

	// With truncation on, Check can answer for the initial states by
	// forward sweeps over the active window alone; the full satisfying-state
	// listing would force the dense all-states computation truncation is
	// there to avoid, so it is only produced when -states demands it.
	if *truncate > 0 && !*states {
		holds, err := checker.Check(formula)
		if err != nil {
			return 1, err
		}
		fmt.Fprintf(out, "satisfying states: not computed (truncated run; pass -states to force the full sweep)\n")
		fmt.Fprintf(out, "holds in the initial state(s): %v\n", holds)
		printStats()
		if !holds {
			return 2, nil
		}
		return 0, nil
	}

	sat, err := checker.Sat(formula)
	if err != nil {
		return 1, err
	}
	holds, err := checker.Check(formula)
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(out, "satisfying states: %d of %d\n", sat.Len(), m.N())
	if *states {
		for s := 0; s < m.N(); s++ {
			verdict := "no"
			if sat.Contains(s) {
				verdict = "YES"
			}
			fmt.Fprintf(out, "  %-30s %s\n", m.Name(s), verdict)
		}
	}
	fmt.Fprintf(out, "holds in the initial state(s): %v\n", holds)
	printStats()
	if !holds {
		// Distinguish "property fails" (2) from tool failure (1).
		return 2, nil
	}
	return 0, nil
}

func isQuery(f logic.StateFormula) bool {
	switch t := f.(type) {
	case logic.Prob:
		return t.Query
	case logic.Steady:
		return t.Query
	default:
		return false
	}
}
