package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/performability/csrl/internal/lint"
)

func TestSelectAnalyzers(t *testing.T) {
	all := lint.All()

	got, err := selectAnalyzers("", "")
	if err != nil {
		t.Fatalf("default selection: %v", err)
	}
	if len(got) != len(all) {
		t.Errorf("default selection has %d analyzers, want %d", len(got), len(all))
	}

	got, err = selectAnalyzers("floatcmp,aliasret", "")
	if err != nil {
		t.Fatalf("enable selection: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("enable=floatcmp,aliasret selected %d analyzers, want 2", len(got))
	}

	got, err = selectAnalyzers("", "bannedcall")
	if err != nil {
		t.Fatalf("disable selection: %v", err)
	}
	if len(got) != len(all)-1 {
		t.Errorf("disable=bannedcall selected %d analyzers, want %d", len(got), len(all)-1)
	}
	for _, a := range got {
		if a.Name == "bannedcall" {
			t.Error("disabled analyzer still selected")
		}
	}

	if _, err := selectAnalyzers("nosuch", ""); err == nil {
		t.Error("unknown analyzer name was accepted")
	}
	if _, err := selectAnalyzers("floatcmp", "floatcmp"); err == nil {
		t.Error("empty selection was accepted")
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-enable=nosuch"}); code != 2 {
		t.Errorf("unknown analyzer exited %d, want 2", code)
	}
	if code := run(&stdout, &stderr, []string{"-nosuchflag"}); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
}

// TestModuleIsClean is the baseline guarantee: the tool reports zero
// findings over its own module. New code that trips an analyzer must be
// fixed or carry a //lint:ignore with a reason.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	var out bytes.Buffer
	n, err := lintPackages(&out, loader.ModuleDir, []string{"./..."}, lint.All())
	if err != nil {
		t.Fatalf("lintPackages: %v", err)
	}
	if n != 0 {
		t.Errorf("module has %d lint findings:\n%s", n, out.String())
	}
}

func TestLintPackagesNoMatch(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	if _, err := lintPackages(io.Discard, loader.ModuleDir, []string{"./nosuchdir"}, lint.All()); err == nil {
		t.Error("nonexistent package pattern did not error")
	}
}
