package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"github.com/performability/csrl/internal/lint"
)

func TestSelectAnalyzers(t *testing.T) {
	all := lint.All()

	got, err := selectAnalyzers("", "")
	if err != nil {
		t.Fatalf("default selection: %v", err)
	}
	if len(got) != len(all) {
		t.Errorf("default selection has %d analyzers, want %d", len(got), len(all))
	}

	got, err = selectAnalyzers("floatcmp,aliasret", "")
	if err != nil {
		t.Fatalf("enable selection: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("enable=floatcmp,aliasret selected %d analyzers, want 2", len(got))
	}

	got, err = selectAnalyzers("", "bannedcall")
	if err != nil {
		t.Fatalf("disable selection: %v", err)
	}
	if len(got) != len(all)-1 {
		t.Errorf("disable=bannedcall selected %d analyzers, want %d", len(got), len(all)-1)
	}
	for _, a := range got {
		if a.Name == "bannedcall" {
			t.Error("disabled analyzer still selected")
		}
	}

	if _, err := selectAnalyzers("nosuch", ""); err == nil {
		t.Error("unknown analyzer name was accepted")
	}
	if _, err := selectAnalyzers("floatcmp", "floatcmp"); err == nil {
		t.Error("empty selection was accepted")
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-enable=nosuch"}); code != 2 {
		t.Errorf("unknown analyzer exited %d, want 2", code)
	}
	if code := run(&stdout, &stderr, []string{"-nosuchflag"}); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
}

// TestModuleIsClean is the baseline guarantee: the tool reports zero
// findings over its own module. New code that trips an analyzer must be
// fixed or carry a //lint:ignore with a reason.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	var out bytes.Buffer
	n, err := lintPackages(&out, loader.ModuleDir, []string{"./..."}, lint.All(), emitPlain)
	if err != nil {
		t.Fatalf("lintPackages: %v", err)
	}
	if n != 0 {
		t.Errorf("module has %d lint findings:\n%s", n, out.String())
	}
}

func TestLintPackagesNoMatch(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	if _, err := lintPackages(io.Discard, loader.ModuleDir, []string{"./nosuchdir"}, lint.All(), emitPlain); err == nil {
		t.Error("nonexistent package pattern did not error")
	}
}

func TestRunModeFlagsExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-json", "-github"}); code != 2 {
		t.Errorf("-json -github exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("stderr %q does not explain the flag conflict", stderr.String())
	}
}

func sampleDiagnostic() lint.Diagnostic {
	d := lint.Diagnostic{Analyzer: "floatcmp", Message: "50% of a == b\nis wrong"}
	d.Pos.Filename = "/mod/internal/sparse/csr.go"
	d.Pos.Line = 7
	d.Pos.Column = 3
	d.End.Filename = "/mod/internal/sparse/csr.go"
	d.End.Line = 9
	return d
}

func TestEmitJSON(t *testing.T) {
	var out bytes.Buffer
	emitJSON(&out, "/mod", sampleDiagnostic())
	var got struct {
		File            string `json:"file"`
		Line            int    `json:"line"`
		Column          int    `json:"column"`
		EndLine         int    `json:"endLine"`
		Analyzer        string `json:"analyzer"`
		AnalyzerVersion int    `json:"analyzerVersion"`
		Registry        string `json:"registry"`
		Message         string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("output %q is not valid JSON: %v", out.String(), err)
	}
	if got.File != "internal/sparse/csr.go" {
		t.Errorf("file %q, want module-relative slash path", got.File)
	}
	if got.Line != 7 || got.Column != 3 || got.EndLine != 9 {
		t.Errorf("position %d:%d end %d, want 7:3 end 9", got.Line, got.Column, got.EndLine)
	}
	if got.Analyzer != "floatcmp" || !strings.Contains(got.Message, "50%") {
		t.Errorf("payload %+v does not round-trip analyzer/message", got)
	}
	if got.AnalyzerVersion < 1 {
		t.Errorf("analyzerVersion %d, want >= 1", got.AnalyzerVersion)
	}
	if got.Registry == "" || got.Registry != lint.RegistryHash() {
		t.Errorf("registry stamp %q does not match lint.RegistryHash() %q", got.Registry, lint.RegistryHash())
	}
	if strings.Count(out.String(), "\n") != 1 {
		t.Errorf("output %q is not exactly one line", out.String())
	}
}

func TestEmitGitHub(t *testing.T) {
	var out bytes.Buffer
	emitGitHub(&out, "/mod", sampleDiagnostic())
	line := out.String()
	if !strings.HasPrefix(line, "::error file=internal/sparse/csr.go,line=7,endLine=9,col=3,title=mrmlint(floatcmp)::") {
		t.Errorf("annotation %q has the wrong command/properties", line)
	}
	if !strings.Contains(line, "50%25 of a == b%0Ais wrong") {
		t.Errorf("annotation %q does not escape %% and newline", line)
	}
	if strings.Count(line, "\n") != 1 {
		t.Errorf("annotation %q is not exactly one line", line)
	}
}
