package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/performability/csrl/internal/lint"
)

// writeCacheModule lays out a two-package module (a imports b) in a temp
// dir. Package b carries a deliberate floatcmp finding so the diagnostic
// stream is non-empty and replay can be compared byte for byte.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/cachemod\n\ngo 1.22\n",
		"b/b.go": `package b

// Eq compares two floats the wrong way on purpose: the fixture needs a
// stable finding to replay from the cache.
func Eq(a, b float64) bool { return a == b }
`,
		"a/a.go": `package a

import "example.com/cachemod/b"

// IsUnit reports whether x equals one, via the helper package.
func IsUnit(x float64) bool { return b.Eq(x, 1) }
`,
	}
	for name, src := range files {
		full := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// lintModule runs the cached pipeline over the whole temp module with
// -json rendering and returns the finding count, the cache and the exact
// output bytes.
func lintModule(t *testing.T, dir, cacheDir string) (int, *lintCache, []byte) {
	t.Helper()
	var out bytes.Buffer
	n, cache, err := lintPackagesCached(&out, dir, []string{"./..."}, lint.All(), emitJSON, cacheDir)
	if err != nil {
		t.Fatalf("lintPackagesCached: %v", err)
	}
	return n, cache, out.Bytes()
}

func TestCacheWarmRunByteIdentical(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := filepath.Join(dir, ".mrmlint-cache")

	nCold, cold, coldOut := lintModule(t, dir, cacheDir)
	if cold.Cold != 2 || cold.Warm != 0 {
		t.Errorf("cold run counters = %d cold / %d warm, want 2/0", cold.Cold, cold.Warm)
	}
	if nCold == 0 {
		t.Fatalf("fixture module produced no findings; output:\n%s", coldOut)
	}

	nWarm, warm, warmOut := lintModule(t, dir, cacheDir)
	if warm.Cold != 0 || warm.Warm != 2 {
		t.Errorf("warm run counters = %d cold / %d warm, want 0/2", warm.Cold, warm.Warm)
	}
	if nWarm != nCold {
		t.Errorf("warm run found %d diagnostics, cold found %d", nWarm, nCold)
	}
	if !bytes.Equal(coldOut, warmOut) {
		t.Errorf("warm -json output differs from cold:\ncold:\n%swarm:\n%s", coldOut, warmOut)
	}
}

func TestCacheSourceChangeInvalidatesDependents(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := filepath.Join(dir, ".mrmlint-cache")
	lintModule(t, dir, cacheDir) // prime

	// Touching the dependency must cool both b and its importer a.
	bFile := filepath.Join(dir, "b", "b.go")
	src, err := os.ReadFile(bFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bFile, append(src, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, cache, _ := lintModule(t, dir, cacheDir)
	if cache.Cold != 2 || cache.Warm != 0 {
		t.Errorf("after editing b: %d cold / %d warm, want 2/0 (dependent a must re-analyze)", cache.Cold, cache.Warm)
	}

	// Touching only the leaf importer leaves the dependency warm.
	aFile := filepath.Join(dir, "a", "a.go")
	src, err = os.ReadFile(aFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aFile, append(src, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, cache, _ = lintModule(t, dir, cacheDir)
	if cache.Cold != 1 || cache.Warm != 1 {
		t.Errorf("after editing a: %d cold / %d warm, want 1/1", cache.Cold, cache.Warm)
	}
}

func TestCacheSaltCoversAnalyzerSet(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := filepath.Join(dir, ".mrmlint-cache")
	lintModule(t, dir, cacheDir) // prime with the full registry

	// A different enabled set changes the salt (the same mechanism that
	// folds in lint.RegistryHash, so an analyzer version bump invalidates
	// the same way), and every package must re-analyze.
	var out bytes.Buffer
	subset, err := selectAnalyzers("floatcmp", "")
	if err != nil {
		t.Fatal(err)
	}
	_, cache, err := lintPackagesCached(&out, dir, []string{"./..."}, subset, emitJSON, cacheDir)
	if err != nil {
		t.Fatalf("lintPackagesCached: %v", err)
	}
	if cache.Cold != 2 || cache.Warm != 0 {
		t.Errorf("subset run counters = %d cold / %d warm, want 2/0", cache.Cold, cache.Warm)
	}

	// Directly: caches built over different analyzer sets must key the
	// same package differently.
	full, err := newLintCache(cacheDir, dir, "example.com/cachemod", "1.22", lint.All())
	if err != nil {
		t.Fatal(err)
	}
	partial, err := newLintCache(cacheDir, dir, "example.com/cachemod", "1.22", subset)
	if err != nil {
		t.Fatal(err)
	}
	bDir := filepath.Join(dir, "b")
	kFull, err := full.key(bDir)
	if err != nil {
		t.Fatal(err)
	}
	kPartial, err := partial.key(bDir)
	if err != nil {
		t.Fatal(err)
	}
	if kFull == kPartial {
		t.Error("cache key did not change with the enabled analyzer set")
	}
}

func TestCacheCorruptEntryIsCold(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := filepath.Join(dir, ".mrmlint-cache")
	_, _, coldOut := lintModule(t, dir, cacheDir)

	// Truncate every stored entry; the next run must fall back to a full
	// cold analysis (not error, not emit garbage) and rewrite the store.
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(cacheDir, e.Name()), []byte("{corrupt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, cache, out := lintModule(t, dir, cacheDir)
	if cache.Cold != 2 || cache.Warm != 0 {
		t.Errorf("corrupt store served %d warm package(s), want pure cold", cache.Warm)
	}
	if !bytes.Equal(out, coldOut) {
		t.Error("recovery run output differs from the original cold run")
	}

	_, cache, _ = lintModule(t, dir, cacheDir)
	if cache.Warm != 2 {
		t.Errorf("store was not repaired: %d warm, want 2", cache.Warm)
	}
}

// BenchmarkLintModule times the real module, cold (fresh cache every
// iteration) versus warm (primed cache). The committed BENCH_PR8.json
// ratio comes from `mrmlint -bench-json`, which wraps the same pipeline.
func BenchmarkLintModule(b *testing.B) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		b.Fatalf("loader: %v", err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cacheDir, err := os.MkdirTemp(b.TempDir(), "cache")
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := lintPackagesCached(io.Discard, loader.ModuleDir, []string{"./..."}, lint.All(), emitPlain, cacheDir); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cacheDir := b.TempDir()
		if _, _, err := lintPackagesCached(io.Discard, loader.ModuleDir, []string{"./..."}, lint.All(), emitPlain, cacheDir); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := lintPackagesCached(io.Discard, loader.ModuleDir, []string{"./..."}, lint.All(), emitPlain, cacheDir); err != nil {
				b.Fatal(err)
			}
		}
	})
}
