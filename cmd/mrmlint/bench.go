package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/performability/csrl/internal/lint"
)

// lintBenchReport is the committed performance trail for the incremental
// cache (BENCH_PR8.json), shaped like the perfbench reports: a records
// list for cross-PR tooling plus a lint block with the gate inputs. The
// gate is warm_over_cold < 0.5 — a cache that saves less than half the
// wall time is not pulling its weight — checked both here (the command
// exits 1) and by `make bench-check`.
type lintBenchReport struct {
	Generated string            `json:"generated"`
	GoVersion string            `json:"go_version"`
	NumCPU    int               `json:"num_cpu"`
	Records   []lintBenchRecord `json:"records"`
	Lint      lintBenchStats    `json:"lint"`
}

type lintBenchRecord struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

type lintBenchStats struct {
	Packages      int     `json:"packages"`
	Findings      int     `json:"findings"`
	WarmOverCold  float64 `json:"warm_over_cold"`
	ByteIdentical bool    `json:"byte_identical"`
}

// runLintBench times one cold and one warm cached run over the module,
// verifies the two -json diagnostic streams are byte-identical, writes
// the report to outFile and returns the exit code (1 when the warm run is
// not at least twice as fast as cold, or when replay diverges).
func runLintBench(stderr io.Writer, outFile, dir string, patterns []string, analyzers []*lint.Analyzer) int {
	cacheDir, err := os.MkdirTemp("", "mrmlint-bench-")
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}
	defer func() {
		_ = os.RemoveAll(cacheDir) // best-effort temp cleanup
	}()

	var coldOut bytes.Buffer
	start := time.Now()
	n, cold, err := lintPackagesCached(&coldOut, dir, patterns, analyzers, emitJSON, cacheDir)
	coldDur := time.Since(start)
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}

	var warmOut bytes.Buffer
	start = time.Now()
	_, warm, err := lintPackagesCached(&warmOut, dir, patterns, analyzers, emitJSON, cacheDir)
	warmDur := time.Since(start)
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}

	identical := bytes.Equal(coldOut.Bytes(), warmOut.Bytes())
	ratio := float64(warmDur) / float64(coldDur)
	report := lintBenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Records: []lintBenchRecord{
			{Name: "LintModule/cold", NsPerOp: float64(coldDur.Nanoseconds())},
			{Name: "LintModule/warm", NsPerOp: float64(warmDur.Nanoseconds())},
		},
		Lint: lintBenchStats{
			Packages:      cold.Cold,
			Findings:      n,
			WarmOverCold:  ratio,
			ByteIdentical: identical,
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}
	data = append(data, '\n')
	if err := os.WriteFile(outFile, data, 0o644); err != nil {
		fmt.Fprintln(stderr, "mrmlint:", err)
		return 2
	}

	fmt.Fprintf(stderr, "mrmlint: bench: cold %s, warm %s over %d package(s) (warm/cold %.3f) -> %s\n",
		coldDur.Round(time.Millisecond), warmDur.Round(time.Millisecond), cold.Cold, ratio, outFile)
	if warm.Warm != cold.Cold {
		fmt.Fprintf(stderr, "mrmlint: bench: warm run served %d of %d package(s) from the cache\n", warm.Warm, cold.Cold)
		return 1
	}
	if !identical {
		fmt.Fprintln(stderr, "mrmlint: bench: warm -json output is not byte-identical to cold")
		return 1
	}
	if ratio >= 0.5 {
		fmt.Fprintf(stderr, "mrmlint: bench: warm run is %.0f%% of cold, want < 50%%\n", ratio*100)
		return 1
	}
	return 0
}
